// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one testing.B benchmark per exhibit. Each benchmark runs a
// representative slice of the paper's parameter sweep and prints the same
// series rows the paper plots; cmd/ddemos-bench runs the full sweeps.
// Parameter scales (ballot pools, cast counts) are documented in DESIGN.md
// ("Substitutions"); measured trends live in docs/BENCH.md.
package ddemos

import (
	"fmt"
	"os"
	"testing"
	"time"

	"ddemos/internal/benchmark"
)

// Benchmark workload sizes: a single-host slice of the paper's testbed
// workload (12 machines, 200k cast ballots). Each figure keeps the paper's
// relative parameter ranges.
const (
	benchBallots = 4000
	benchVotes   = 2000
	benchOptions = 4
)

var (
	benchVCPoints     = []int{4, 10, 16}
	benchClientPoints = []int{200, 500}
)

// runFig4 is shared by the four vote-collection-vs-Nv benchmarks.
func runFig4(b *testing.B, wan bool, latency bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var lastTput float64
		var lastLat time.Duration
		for _, nv := range benchVCPoints {
			res, err := benchmark.Run(benchmark.Config{
				Ballots: benchBallots, Options: benchOptions, VC: nv,
				Clients: benchClientPoints[0], Votes: benchVotes, WAN: wan,
				Seed: b.Name(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("nv=%d cc=%d latency=%v throughput=%.1f op/s",
				nv, benchClientPoints[0], res.AvgLatency.Round(time.Microsecond), res.Throughput)
			lastTput = res.Throughput
			lastLat = res.AvgLatency
		}
		if latency {
			b.ReportMetric(float64(lastLat.Milliseconds()), "ms/vote@16vc")
		} else {
			b.ReportMetric(lastTput, "votes/sec@16vc")
		}
	}
}

// BenchmarkFig4aLatencyVsVCLan — Fig. 4a: receipt latency vs #VC, LAN.
func BenchmarkFig4aLatencyVsVCLan(b *testing.B) { runFig4(b, false, true) }

// BenchmarkFig4bThroughputVsVCLan — Fig. 4b: throughput vs #VC, LAN.
func BenchmarkFig4bThroughputVsVCLan(b *testing.B) { runFig4(b, false, false) }

// BenchmarkFig4dLatencyVsVCWan — Fig. 4d: receipt latency vs #VC, WAN
// (25 ms inter-VC links).
func BenchmarkFig4dLatencyVsVCWan(b *testing.B) { runFig4(b, true, true) }

// BenchmarkFig4eThroughputVsVCWan — Fig. 4e: throughput vs #VC, WAN.
func BenchmarkFig4eThroughputVsVCWan(b *testing.B) { runFig4(b, true, false) }

// runFig4Clients is shared by the throughput-vs-concurrency benchmarks.
func runFig4Clients(b *testing.B, wan bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var last float64
		for _, cc := range benchClientPoints {
			res, err := benchmark.Run(benchmark.Config{
				Ballots: benchBallots, Options: benchOptions, VC: 4,
				Clients: cc, Votes: benchVotes, WAN: wan,
				Seed: b.Name(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("cc=%d nv=4 throughput=%.1f op/s", cc, res.Throughput)
			last = res.Throughput
		}
		b.ReportMetric(last, "votes/sec")
	}
}

// BenchmarkFig4cThroughputVsClientsLan — Fig. 4c: throughput vs #cc, LAN.
func BenchmarkFig4cThroughputVsClientsLan(b *testing.B) { runFig4Clients(b, false) }

// BenchmarkFig4fThroughputVsClientsWan — Fig. 4f: throughput vs #cc, WAN.
func BenchmarkFig4fThroughputVsClientsWan(b *testing.B) { runFig4Clients(b, true) }

// BenchmarkFig5aThroughputVsPool — Fig. 5a: throughput vs ballot-pool size
// with the disk-backed store (the paper sweeps 50M–250M on PostgreSQL;
// scaled here, same ×5 pool growth).
func BenchmarkFig5aThroughputVsPool(b *testing.B) {
	dir := b.TempDir()
	pools := []int{10000, 30000, 50000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var last float64
		for _, n := range pools {
			res, err := benchmark.Run(benchmark.Config{
				Ballots: n, Options: 2, VC: 4,
				Clients: 400, Votes: 2000, Disk: true, DiskDir: dir,
				Seed: b.Name(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("n=%d throughput=%.1f op/s", n, res.Throughput)
			last = res.Throughput
		}
		b.ReportMetric(last, "votes/sec@maxpool")
	}
}

// BenchmarkFig5bThroughputVsOptions — Fig. 5b: throughput vs number of
// options m (paper: 2–10; throughput should stay nearly flat), extended with
// the batched-vs-unbatched transport ablation: each m is measured on plain
// channels, on authenticated channels (one signature per message), and on
// authenticated channels over the batched pipeline (one signature per
// batch). The signed-vs-batched delta isolates the coalescing win on the
// LAN profile.
func BenchmarkFig5bThroughputVsOptions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var last benchmark.Fig5bRow
		var lastSpeedup float64
		for _, m := range []int{2, 6, 10} {
			row, err := benchmark.Fig5bPoint(m, benchBallots, benchVotes, 400, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			lastSpeedup = 0
			if row.Signed > 0 {
				lastSpeedup = row.Batched / row.Signed
			}
			b.Logf("m=%d plain=%.1f signed=%.1f signed+batched=%.1f op/s (batching speedup %.2fx)",
				m, row.Plain, row.Signed, row.Batched, lastSpeedup)
			last = row
		}
		// votes/sec@m=10 keeps its pre-ablation meaning (the plain
		// configuration) so cross-commit benchstat series stay comparable.
		b.ReportMetric(last.Plain, "votes/sec@m=10")
		b.ReportMetric(last.Batched, "batched-votes/sec@m=10")
		b.ReportMetric(lastSpeedup, "batched-speedup@m=10")
	}
}

// BenchmarkFig5cPhaseBreakdown — Fig. 5c: duration of every system phase
// (vote collection, vote-set consensus, push-to-BB + encrypted tally,
// publish result) vs ballots cast, full pipeline with BB and trustees.
func BenchmarkFig5cPhaseBreakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{500, 1000} {
			res, err := benchmark.RunPhases(benchmark.PhasesConfig{
				Ballots: n, Options: benchOptions, VC: 4, Clients: 100,
				Seed: b.Name(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("cast=%d collect=%v consensus=%v push+tally=%v publish=%v",
				n, res.Collection.Round(time.Millisecond), res.Consensus.Round(time.Millisecond),
				res.Push.Round(time.Millisecond), res.Publish.Round(time.Millisecond))
			if n == 1000 {
				b.ReportMetric(res.Publish.Seconds(), "publish-sec@1000")
			}
		}
	}
}

// BenchmarkWALAblation — the durability tax: the identical vote-collection
// workload with runtime-state journaling (WAL + snapshot, batched fsync)
// off and on. The on/off ratio is machine-independent and is the metric the
// CI benchmark-tracking job gates on: at default group-commit batching, the
// journaled hot path must stay within 30% of memory-only throughput.
func BenchmarkWALAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := benchmark.RunWALAblation(benchBallots, benchVotes, 400, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("wal-off=%.1f op/s wal-on=%.1f op/s ratio=%.3f", row.Off, row.On, row.Ratio())
		b.ReportMetric(row.Off, "wal-off-votes/sec")
		b.ReportMetric(row.On, "wal-on-votes/sec")
		b.ReportMetric(row.Ratio(), "wal-ratio")
	}
}

// BenchmarkPoolAblation — the journal pool sweep (the paper's Fig. 5a
// applied to runtime state): concurrent appenders writing protocol-shaped
// transition records through the single-WAL engine and through sharded
// pools of 2, 4 and 8 WAL lanes, per-append fsync. One column per pool
// size lands in the benchjson artifact; the baseline gates the pooled
// speedups (pool>=4 must stay >= 1.3x single-WAL).
func BenchmarkPoolAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := benchmark.RunPoolAblation(benchmark.PoolAblationConfig{
			Duration: 500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range points {
			b.Logf("pool=%d appends/sec=%.0f speedup=%.2f", pt.Pool, pt.AppendsPerSec, pt.Speedup)
			b.ReportMetric(pt.AppendsPerSec, fmt.Sprintf("pool%d-appends/sec", pt.Pool))
			if pt.Pool > 1 {
				b.ReportMetric(pt.Speedup, fmt.Sprintf("pool-speedup@%d", pt.Pool))
			}
		}
	}
}

// BenchmarkStoreAblation — the ballot-store read path (the paper's Fig.
// 4/5a database-vs-cache ablation): the same protocol-shaped read workload
// (every serial touched ~3 times within a short window, streaming once
// through a pool that outgrows the cache budget) against the in-memory
// store, the v1 flat file, the segmented store, and the segmented store
// behind the admission-controlled LRU. The CI baseline gates cache-speedup
// (segmented+cache vs uncached flat-disk) — a ratio, so runner speed and
// page-cache state cannot flap the gate.
func BenchmarkStoreAblation(b *testing.B) {
	cfg := benchmark.StoreAblationConfig{Ballots: 60_000, CacheBytes: 4 << 20}
	for i := 0; i < b.N; i++ {
		points, err := benchmark.RunStoreAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]benchmark.StorePoint{}
		for _, pt := range points {
			byName[pt.Config] = pt
			b.Logf("config=%s gets/sec=%.0f vs-flat=%.2f", pt.Config, pt.GetsPerSec, pt.Speedup)
		}
		b.ReportMetric(byName["mem"].GetsPerSec, "mem-gets/sec")
		b.ReportMetric(byName["flat-disk"].GetsPerSec, "flat-gets/sec")
		b.ReportMetric(byName["segmented"].GetsPerSec, "seg-gets/sec")
		b.ReportMetric(byName["segmented+cache"].GetsPerSec, "segcache-gets/sec")
		b.ReportMetric(byName["segmented"].Speedup, "seg-speedup")
		b.ReportMetric(byName["segmented+cache"].Speedup, "cache-speedup")
		b.ReportMetric(byName["segmented+cache"].HitRate, "cache-hit-rate")
	}
}

// BenchmarkSetupAblation — the EA → VC setup handoff (the zero-copy
// setup-to-vote path): the identical seeded election generated and handed
// to a VC through the legacy whole-pool gob route (materialize, encode,
// decode, build segments on first boot) and through the streaming route
// (SetupStream emits straight into per-VC segment directories the VC opens
// directly). Reported per route: setup wall time, peak heap while setting
// up, and the VC's cold-start time. The CI baseline gates setup-mem-ratio
// (legacy peak heap / streaming peak heap) — a ratio, machine-independent,
// and it grows with pool size (legacy is O(pool), streaming O(segment)),
// so the bench-size pool floors it.
func BenchmarkSetupAblation(b *testing.B) {
	cfg := benchmark.SetupAblationConfig{Ballots: 10_000, SegmentBallots: 1_000}
	for i := 0; i < b.N; i++ {
		points, err := benchmark.RunSetupAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]benchmark.SetupPoint{}
		for _, pt := range points {
			byName[pt.Route] = pt
			b.Logf("route=%s setup=%.2fs peak-heap=%.1fMB coldstart=%.3fs mem-ratio=%.2f",
				pt.Route, pt.SetupSec, pt.PeakHeapMB, pt.ColdStartSec, pt.MemRatio)
		}
		b.ReportMetric(byName["legacy"].SetupSec, "legacy-setup-sec")
		b.ReportMetric(byName["streaming"].SetupSec, "streaming-setup-sec")
		b.ReportMetric(byName["legacy"].PeakHeapMB, "legacy-peak-heap-mb")
		b.ReportMetric(byName["streaming"].PeakHeapMB, "streaming-peak-heap-mb")
		b.ReportMetric(byName["legacy"].ColdStartSec, "legacy-coldstart-sec")
		b.ReportMetric(byName["streaming"].ColdStartSec, "streaming-coldstart-sec")
		b.ReportMetric(byName["streaming"].MemRatio, "setup-mem-ratio")
	}
}

// BenchmarkTallyAblation — the publish-phase pipeline sweep: the same
// trustee posts combined sequentially (the seed's per-element verification),
// in parallel, and through the batched random-linear-combination verifier.
// The CI baseline gates tally-speedup (parallel+batched vs sequential) — a
// ratio of combine times over identical work, so runner speed cannot flap
// the gate; on a single-CPU runner the win comes from batching alone. The
// Byzantine sweep rides along: combine cost must grow linearly with the
// number of garbage-share trustees (blame, not the seed's exponential
// subset search).
func BenchmarkTallyAblation(b *testing.B) {
	cfg := benchmark.TallyAblationConfig{Ballots: 2_000, Votes: 200}
	sweepCfg := benchmark.TallyAblationConfig{Ballots: 200, Votes: 30, Trustees: 7}
	for i := 0; i < b.N; i++ {
		points, err := benchmark.RunTallyAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]benchmark.TallyPoint{}
		for _, pt := range points {
			byName[pt.Config] = pt
			b.Logf("config=%s combine=%.3fs audit=%.3fs speedup=%.2f fallbacks=%d",
				pt.Config, pt.CombineSec, pt.AuditSec, pt.Speedup, pt.Fallbacks)
		}
		b.ReportMetric(byName["sequential"].CombineSec, "seq-combine-sec")
		b.ReportMetric(byName["parallel+batched"].CombineSec, "batched-combine-sec")
		b.ReportMetric(byName["parallel+batched"].AuditSec, "batched-audit-sec")
		b.ReportMetric(byName["parallel+batched"].Speedup, "tally-speedup")

		sweep, err := benchmark.RunByzantineTallySweep(sweepCfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range sweep {
			b.Logf("garbage=%d combine=%.3fs attempts=%d blames=%d",
				pt.Garbage, pt.CombineSec, pt.Attempts, pt.Blames)
		}
		if n := len(sweep); n >= 2 && sweep[0].CombineSec > 0 {
			b.ReportMetric(sweep[n-1].CombineSec/sweep[0].CombineSec,
				fmt.Sprintf("byz-combine-cost@%d", sweep[n-1].Garbage))
		}
	}
}

// BenchmarkTable1StepBounds — Table I: evaluates the liveness time upper
// bounds for every protocol step from measured Tcomp and the simulated
// network's δ, and checks the measured end-to-end latency against Twait.
func BenchmarkTable1StepBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tcomp, avgVote, err := benchmark.VoteMetricsSample(benchmark.Config{
			Ballots: 500, Options: benchOptions, VC: 4,
			Clients: 50, Votes: 500, Seed: b.Name(),
		})
		if err != nil {
			b.Fatal(err)
		}
		delay := 300 * time.Microsecond // LAN profile latency + jitter/2
		benchmark.PrintTableOne(os.Stdout, 4, tcomp, 0, delay, avgVote)
		tw := benchmark.Twait(4, tcomp, 0, delay)
		b.ReportMetric(float64(tw.Microseconds()), "Twait-us")
	}
}

// BenchmarkAblationSMRBaseline quantifies §II's design argument: the same
// pipeline with per-vote total ordering versus D-DEMOS's coordination-free
// collection, in both LAN and WAN settings.
func BenchmarkAblationSMRBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, wan := range []bool{false, true} {
			res, err := benchmark.RunAblation(1000, 200, 4, wan)
			if err != nil {
				b.Fatal(err)
			}
			net := "LAN"
			if wan {
				net = "WAN"
			}
			b.Logf("%s: d-demos %.1f op/s / %v ; +total-order %.1f op/s / %v",
				net, res.DDemosThroughput, res.DDemosLatency.Round(time.Microsecond),
				res.SMRThroughput, res.SMRLatency.Round(time.Microsecond))
			if wan {
				b.ReportMetric(res.DDemosThroughput/res.SMRThroughput, "speedup-wan")
			}
		}
	}
}
