// ddemos-audit verifies a complete election from the Bulletin Board nodes:
// every commitment opening, every zero-knowledge proof, the homomorphic
// tally, and the structural checks (a)-(e) of §III-I. Anyone can run it;
// it needs no secrets.
//
//	ddemos-audit -bb http://localhost:9100,http://localhost:9101,http://localhost:9102
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ddemos/internal/auditor"
	"ddemos/internal/bb"
	"ddemos/internal/httpapi"
)

func main() {
	bbS := flag.String("bb", "", "comma-separated BB base URLs")
	flag.Parse()
	if *bbS == "" {
		log.Fatal("-bb is required")
	}
	ctx := context.Background()
	var apis []bb.API
	for _, base := range strings.Split(*bbS, ",") {
		apis = append(apis, (&httpapi.BBClient{BaseURL: base}).API(ctx))
	}
	reader := bb.NewReader(apis)
	report, err := auditor.Audit(reader, nil)
	if err != nil {
		log.Fatalf("audit could not run: %v", err)
	}
	man, _ := reader.Manifest()
	result, _ := reader.Result()
	fmt.Printf("election %q\n", man.ElectionID)
	if result != nil {
		for i, o := range man.Options {
			fmt.Printf("  %-20s %d\n", o, result.Counts[i])
		}
	}
	fmt.Printf("checked: %d ballots, %d proofs, %d openings\n",
		report.BallotsChecked, report.ProofsChecked, report.OpeningsChecked)
	if !report.OK() {
		fmt.Println("AUDIT FAILED:")
		for _, f := range report.Failures {
			fmt.Println("  ✗", f)
		}
		os.Exit(1)
	}
	fmt.Println("audit PASSED: the election verifies end-to-end")
}
