// ddemos-bb runs one Bulletin Board replica: a public, anonymous HTTP read
// API plus signature-verified write endpoints. BB nodes never talk to each
// other (§III-G); readers query several and take the majority answer.
//
//	ddemos-bb -init election/bb.gob -http :9100
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
)

func main() {
	initPath := flag.String("init", "", "path to bb.gob")
	httpAddr := flag.String("http", ":9100", "public HTTP address")
	flag.Parse()
	if *initPath == "" {
		log.Fatal("-init is required")
	}
	var init ea.BBInit
	if err := httpapi.ReadGobFile(*initPath, &init); err != nil {
		log.Fatal(err)
	}
	node, err := bb.NewNode(&init)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("bb node serving election %q on %s", init.Manifest.ElectionID, *httpAddr)
	srv := &http.Server{Addr: *httpAddr, Handler: httpapi.BBHandler(node), ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}
