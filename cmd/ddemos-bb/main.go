// ddemos-bb runs one Bulletin Board replica: a public, anonymous HTTP read
// API plus signature-verified write endpoints. BB nodes never talk to each
// other (§III-G); readers query several and take the majority answer.
//
//	ddemos-bb -init election/bb.gob -http :9100
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
)

func main() {
	initPath := flag.String("init", "", "path to bb.gob")
	httpAddr := flag.String("http", ":9100", "public HTTP address")
	combineWorkers := flag.Int("combine-workers", 0, "parallelism of tally combine attempts (0 = GOMAXPROCS)")
	noBatchVerify := flag.Bool("no-batch-verify", false, "disable batched opening verification (per-element checks)")
	metricsEvery := flag.Duration("metrics-every", 0, "log publish-phase metrics at this interval (0 = off; also served at GET /metrics)")
	flag.Parse()
	if *initPath == "" {
		log.Fatal("-init is required")
	}
	var init ea.BBInit
	if err := httpapi.ReadGobFile(*initPath, &init); err != nil {
		log.Fatal(err)
	}
	node, err := bb.NewNode(&init)
	if err != nil {
		log.Fatal(err)
	}
	node.CombineWorkers = *combineWorkers
	node.DisableBatchVerify = *noBatchVerify
	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				s := node.Metrics()
				log.Printf("metrics: posts=%d rejected=%d blamed=%d attempts=%d combine=%s fallbacks=%d published=%v",
					s.PostsAccepted, s.PostsRejected, s.BadPostBlames,
					s.CombineAttempts, s.CombineTime, s.BatchFallbacks, s.ResultPublished)
			}
		}()
	}
	log.Printf("bb node serving election %q on %s", init.Manifest.ElectionID, *httpAddr)
	srv := &http.Server{Addr: *httpAddr, Handler: httpapi.BBHandler(node), ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}
