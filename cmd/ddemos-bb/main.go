// ddemos-bb runs one Bulletin Board replica: a public, anonymous HTTP read
// API plus signature-verified write endpoints. BB nodes never talk to each
// other (§III-G); readers query several and take the majority answer.
//
//	ddemos-bb -init election/bb.gob -http :9100
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/httpapi"
	"ddemos/internal/vc"
)

func main() {
	initPath := flag.String("init", "", "path to bb.gob")
	httpAddr := flag.String("http", ":9100", "public HTTP address")
	combineWorkers := flag.Int("combine-workers", 0, "parallelism of tally combine attempts (0 = GOMAXPROCS)")
	noBatchVerify := flag.Bool("no-batch-verify", false, "disable batched opening verification (per-element checks)")
	metricsEvery := flag.Duration("metrics-every", 0, "log publish-phase metrics at this interval (0 = off; also served at GET /metrics)")
	dataDir := flag.String("data-dir", "",
		"directory for durable runtime state (WAL + snapshot); the node recovers accepted vote sets, "+
			"msk shares, trustee posts and the published result from it on startup, so a crashed replica "+
			"rejoins the board instead of staying down (empty = memory-only)")
	fsync := flag.Bool("fsync", false,
		"fsync the journal before every ack instead of on the batched group-commit cadence "+
			"(per-submission durability against power loss; requires -data-dir)")
	journalPool := flag.Int("journal-pool", 1,
		"number of journal WAL lanes (>1 shards runtime state by submission key with per-lane "+
			"group-commit fsync and copy-on-write snapshots; requires -data-dir)")
	journalPolicy := flag.String("journal-policy", "available",
		"journal-append-error ack policy: 'available' counts errors and keeps serving from memory, "+
			"'strict' refuses submission acks whose record did not land "+
			"(the safer election-day setting; requires -data-dir, pair with -fsync for "+
			"power-loss durability of every ack)")
	flag.Parse()
	if *initPath == "" {
		log.Fatal("-init is required")
	}
	init, err := httpapi.ReadBBInitFile(*initPath)
	if err != nil {
		log.Fatal(err)
	}
	node, err := bb.NewNode(init)
	if err != nil {
		log.Fatal(err)
	}
	node.CombineWorkers = *combineWorkers
	node.DisableBatchVerify = *noBatchVerify
	policy, err := vc.ParseAckPolicy(*journalPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		jopts := vc.JournalOptions{Fsync: *fsync, Pool: *journalPool, Policy: policy}
		if err := node.RecoverWithOptions(*dataDir, jopts); err != nil {
			log.Fatalf("recovering runtime state from %s: %v", *dataDir, err)
		}
		defer node.Close()
		log.Printf("recovered runtime state from %s (fsync=%v pool=%d policy=%s)",
			*dataDir, *fsync, *journalPool, policy)
	} else {
		switch {
		case *fsync:
			log.Fatal("-fsync requires -data-dir")
		case *journalPool > 1:
			log.Fatal("-journal-pool requires -data-dir")
		case policy != vc.PolicyAvailable:
			log.Fatal("-journal-policy strict requires -data-dir")
		}
	}
	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				s := node.Metrics()
				log.Printf("metrics: posts=%d rejected=%d equiv=%d/%d blamed=%d attempts=%d combine=%s "+
					"fallbacks=%d journal=%d jerr=%d snaps=%d published=%v",
					s.PostsAccepted, s.PostsRejected, s.SetEquivocations, s.PostEquivocations,
					s.BadPostBlames, s.CombineAttempts, s.CombineTime, s.BatchFallbacks,
					s.JournalRecords, s.JournalErrors, s.Snapshots, s.ResultPublished)
			}
		}()
	}
	log.Printf("bb node serving election %q on %s", init.Manifest.ElectionID, *httpAddr)
	srv := &http.Server{Addr: *httpAddr, Handler: httpapi.BBHandler(node), ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}
