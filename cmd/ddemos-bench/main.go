// ddemos-bench regenerates the tables and figures of the paper's evaluation
// (§V), printing the same series the paper plots. Each figure is a sweep;
// see DESIGN.md ("Substitutions") for the scaled parameter mapping.
//
//	ddemos-bench -fig 4b            # one figure
//	ddemos-bench -fig all           # everything (takes a while)
//	ddemos-bench -fig table1
//	ddemos-bench -fig ablation
//	ddemos-bench -quick             # smaller sweeps
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ddemos/internal/benchmark"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a,4b,4c,4d,4e,4f,5a,5b,5c,table1,ablation,pool,pool-election,store,store-election,tally,setup,all")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	authenticated := flag.Bool("authenticated", false, "sign inter-VC channels (Fig4 sweeps)")
	batchWindow := flag.Duration("batch-window", 0,
		"enable the batched message pipeline with this flush window (Fig4 sweeps; Fig5b always runs the batching ablation and uses this window when set)")
	batchMax := flag.Int("batch-max", 0, "max messages per batch (0 = transport default)")
	consensus := flag.String("consensus", "interlocked",
		"vote-set-consensus engine for full-election runs: 'interlocked' or 'acs' (times the "+
			"consensus phase of Fig5c on the chosen engine)")
	flag.Parse()

	tr := benchmark.TransportOptions{
		Authenticated:    *authenticated,
		BatchWindow:      *batchWindow,
		BatchMaxMessages: *batchMax,
	}

	ballots, votes := 10000, 5000
	vcs, clients, series := benchmark.VCSweep, benchmark.ClientSweep, benchmark.ClientSeries
	pools := benchmark.PoolSweep
	optionSweep := benchmark.OptionSweep
	casts := benchmark.CastSweep
	if *quick {
		ballots, votes = 3000, 1500
		vcs, clients, series = []int{4, 10, 16}, []int{200, 1000}, []int{500}
		pools = []int{10000, 30000, 50000}
		optionSweep = []int{2, 6, 10}
		casts = []int{500, 1000}
	}

	runs := map[string]func() error{
		"4a": func() error { return benchmark.Fig4(os.Stdout, false, vcs, series, ballots, votes, 4, tr) },
		"4b": func() error { return benchmark.Fig4(os.Stdout, false, vcs, series, ballots, votes, 4, tr) },
		"4c": func() error {
			return benchmark.Fig4Clients(os.Stdout, false, []int{4, 7, 10, 13, 16}, clients, ballots, votes, 4, tr)
		},
		"4d": func() error { return benchmark.Fig4(os.Stdout, true, vcs, series, ballots, votes, 4, tr) },
		"4e": func() error { return benchmark.Fig4(os.Stdout, true, vcs, series, ballots, votes, 4, tr) },
		"4f": func() error {
			return benchmark.Fig4Clients(os.Stdout, true, []int{4, 7, 10, 13, 16}, clients, ballots, votes, 4, tr)
		},
		"5a": func() error { return benchmark.Fig5a(os.Stdout, pools, 2000, 400) },
		"5b": func() error {
			return benchmark.Fig5b(os.Stdout, optionSweep, ballots, votes, 400, *batchWindow, *batchMax)
		},
		"5c": func() error { return benchmark.Fig5c(os.Stdout, casts, 4, 100, *consensus) },
		"table1": func() error {
			tcomp, avgVote, err := benchmark.VoteMetricsSample(benchmark.Config{
				Ballots: 1000, Options: 4, VC: 4, Clients: 100, Votes: 1000, Seed: "table1",
			})
			if err != nil {
				return err
			}
			benchmark.PrintTableOne(os.Stdout, 4, tcomp, 0, 300*time.Microsecond, avgVote)
			return nil
		},
		"ablation": func() error {
			for _, wan := range []bool{false, true} {
				res, err := benchmark.RunAblation(2000, 200, 4, wan)
				if err != nil {
					return err
				}
				benchmark.PrintAblation(os.Stdout, res, wan)
			}
			return nil
		},
		"pool": func() error {
			points, err := benchmark.RunPoolAblation(benchmark.PoolAblationConfig{})
			if err != nil {
				return err
			}
			benchmark.PrintPoolAblation(os.Stdout, points)
			return nil
		},
		"store": func() error {
			// The pool deliberately outgrows the cache: the default 240k
			// ballots (~125MiB of records) against a 16MiB budget is the
			// regime where the paper's database-vs-cache ablation runs.
			cfg := benchmark.StoreAblationConfig{Ballots: 240_000, CacheBytes: 16 << 20}
			if *quick {
				cfg = benchmark.StoreAblationConfig{Ballots: 40_000, CacheBytes: 2 << 20}
			}
			points, err := benchmark.RunStoreAblation(cfg)
			if err != nil {
				return err
			}
			benchmark.PrintStoreAblation(os.Stdout, points, cfg)
			return nil
		},
		"store-election": func() error {
			ballotsS, votesS, clientsS := 20_000, 2000, 200
			cacheBytes := int64(1 << 20)
			if *quick {
				ballotsS, votesS, clientsS = 4000, 600, 100
				cacheBytes = 256 << 10
			}
			points, err := benchmark.RunStoreElectionAblation(ballotsS, votesS, clientsS, 4, cacheBytes)
			if err != nil {
				return err
			}
			benchmark.PrintStoreElectionAblation(os.Stdout, points, ballotsS, cacheBytes)
			return nil
		},
		"tally": func() error {
			// Publish-phase pipeline ablation plus the Byzantine combine-cost
			// sweep. The 10k-ballot pool is the regime the ISSUE gates: the
			// batched opening check dominates combine time, so the speedup
			// holds even on a single CPU.
			cfg := benchmark.TallyAblationConfig{Ballots: 10_000, Votes: 500}
			sweepCfg := benchmark.TallyAblationConfig{Ballots: 600, Votes: 60, Trustees: 7}
			if *quick {
				cfg = benchmark.TallyAblationConfig{Ballots: 1500, Votes: 150}
				sweepCfg = benchmark.TallyAblationConfig{Ballots: 200, Votes: 30, Trustees: 7}
			}
			points, err := benchmark.RunTallyAblation(cfg)
			if err != nil {
				return err
			}
			benchmark.PrintTallyAblation(os.Stdout, points, cfg)
			sweep, err := benchmark.RunByzantineTallySweep(sweepCfg, 3)
			if err != nil {
				return err
			}
			benchmark.PrintByzantineTallySweep(os.Stdout, sweep, sweepCfg)
			return nil
		},
		"setup": func() error {
			// The zero-copy setup-to-vote handoff at figure scale: 1M
			// ballots is the pool where the legacy route's O(pool) peak is
			// undeniable (GiBs) while the streaming route stays at
			// O(segment). Expect minutes of EA key material generation.
			cfg := benchmark.SetupAblationConfig{Ballots: 1_000_000}
			if *quick {
				cfg = benchmark.SetupAblationConfig{Ballots: 50_000, SegmentBallots: 10_000}
			}
			points, err := benchmark.RunSetupAblation(cfg)
			if err != nil {
				return err
			}
			benchmark.PrintSetupAblation(os.Stdout, points, cfg)
			return nil
		},
		"pool-election": func() error {
			votesP, clientsP := 1200, 200
			if *quick {
				votesP, clientsP = 400, 100
			}
			points, err := benchmark.RunPoolElectionAblation([]int{1, 2, 4}, votesP, votesP, clientsP, 4)
			if err != nil {
				return err
			}
			benchmark.PrintPoolElectionAblation(os.Stdout, points)
			return nil
		},
	}

	// 4a/4b and 4d/4e share one sweep (latency and throughput of the same
	// runs); dedupe when running everything.
	order := []string{"4a", "4c", "4d", "4f", "5a", "5b", "5c", "table1", "ablation", "pool", "store", "tally", "setup"}
	if *fig == "all" {
		for _, name := range order {
			fmt.Printf("\n===== figure %s =====\n", name)
			if err := runs[name](); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		}
		return
	}
	run, ok := runs[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	if err := run(); err != nil {
		log.Fatalf("figure %s: %v", *fig, err)
	}
}
