// ddemos-benchjson converts `go test -bench` output into the machine-readable
// BENCH_<date>.json artifact, gates it against the checked-in baseline, and
// maintains the per-commit history chain:
//
//	go test -bench 'Fig5bThroughputVsOptions|WALAblation|PoolAblation' -benchtime 1x -run XXX . | tee bench.out
//	ddemos-benchjson -in bench.out -out BENCH_$(date +%F).json \
//	    -baseline BENCH_BASELINE.json -history BENCH_HISTORY.jsonl
//	ddemos-benchjson -trend -history BENCH_HISTORY.jsonl -baseline BENCH_BASELINE.json
//
// -history appends the run to the JSONL chain (one Report per line, oldest
// first). -trend reads the chain instead of bench output and flags metrics
// that moved monotonically against their baseline direction across the last
// three runs — absolute numbers, so slow erosion that stays inside each
// run's ratio tolerance still surfaces.
//
// Exit status: 0 = gate/trend passed, 1 = regression beyond tolerance, a
// gated benchmark missing from the run, or a flagged trend decline,
// 2 = usage or parse error.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"ddemos/internal/benchjson"
)

func main() {
	in := flag.String("in", "-", "bench output file (- = stdin)")
	out := flag.String("out", "", "JSON artifact path (empty = stdout)")
	baselinePath := flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "date stamped into the artifact")
	historyPath := flag.String("history", "", "BENCH_HISTORY.jsonl chain: appended to after a run, read by -trend")
	trend := flag.Bool("trend", false,
		"trend mode: read -history and flag 3-run monotone declines of baseline-registered metrics (absolute numbers)")
	trendMinDrop := flag.Float64("trend-min-drop", benchjson.DefaultTrendMinDrop,
		"cumulative relative change below which a monotone 3-run move is treated as noise")
	flag.Parse()
	log.SetFlags(0)

	if *trend {
		runTrend(*historyPath, *baselinePath, *trendMinDrop)
		return
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Printf("benchjson: %v", err)
			os.Exit(2)
		}
		defer func() { _ = f.Close() }()
		src = f
	}
	rows, err := benchjson.Parse(src)
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	if len(rows) == 0 {
		log.Print("benchjson: no benchmark rows found in input")
		os.Exit(2)
	}
	rep := benchjson.Report{Date: *date, Go: runtime.Version(), Rows: rows}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Printf("benchjson: %v", err)
			os.Exit(2)
		}
		defer func() { _ = f.Close() }()
		dst = f
	}
	if err := benchjson.WriteReport(dst, rep); err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(rows))
	}
	if *historyPath != "" {
		if err := benchjson.AppendHistoryFile(*historyPath, rep); err != nil {
			log.Printf("benchjson: %v", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "appended to %s\n", *historyPath)
	}

	if *baselinePath == "" {
		return
	}
	bf, err := os.Open(*baselinePath)
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	base, err := benchjson.ReadBaseline(bf)
	_ = bf.Close()
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	if violations := benchjson.Compare(rows, base); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "baseline gate passed (%d entries)\n", len(base.Entries))
}

// runTrend is the -trend mode: flag 3-run monotone declines in the history
// chain's absolute numbers.
func runTrend(historyPath, baselinePath string, minDrop float64) {
	if historyPath == "" || baselinePath == "" {
		log.Print("benchjson: -trend requires -history and -baseline")
		os.Exit(2)
	}
	hf, err := os.Open(historyPath)
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	history, err := benchjson.ReadHistory(hf)
	_ = hf.Close()
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	base, err := benchjson.ReadBaseline(bf)
	_ = bf.Close()
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	flags := benchjson.Trend(history, base, minDrop)
	if len(flags) > 0 {
		for _, f := range flags {
			fmt.Fprintln(os.Stderr, "TREND:", f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trend check passed (%d runs in chain, %d tracked metrics)\n",
		len(history), len(base.Entries))
}
