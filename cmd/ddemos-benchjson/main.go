// ddemos-benchjson converts `go test -bench` output into the machine-readable
// BENCH_<date>.json artifact and gates it against the checked-in baseline:
//
//	go test -bench 'Fig5bThroughputVsOptions|WALAblation' -benchtime 1x -run XXX . | tee bench.out
//	ddemos-benchjson -in bench.out -out BENCH_$(date +%F).json -baseline BENCH_BASELINE.json
//
// Exit status: 0 = gate passed, 1 = regression beyond tolerance (or a gated
// benchmark missing from the run), 2 = usage or parse error.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"ddemos/internal/benchjson"
)

func main() {
	in := flag.String("in", "-", "bench output file (- = stdin)")
	out := flag.String("out", "", "JSON artifact path (empty = stdout)")
	baselinePath := flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "date stamped into the artifact")
	flag.Parse()
	log.SetFlags(0)

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Printf("benchjson: %v", err)
			os.Exit(2)
		}
		defer func() { _ = f.Close() }()
		src = f
	}
	rows, err := benchjson.Parse(src)
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	if len(rows) == 0 {
		log.Print("benchjson: no benchmark rows found in input")
		os.Exit(2)
	}
	rep := benchjson.Report{Date: *date, Go: runtime.Version(), Rows: rows}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Printf("benchjson: %v", err)
			os.Exit(2)
		}
		defer func() { _ = f.Close() }()
		dst = f
	}
	if err := benchjson.WriteReport(dst, rep); err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(rows))
	}

	if *baselinePath == "" {
		return
	}
	bf, err := os.Open(*baselinePath)
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	base, err := benchjson.ReadBaseline(bf)
	_ = bf.Close()
	if err != nil {
		log.Printf("benchjson: %v", err)
		os.Exit(2)
	}
	if violations := benchjson.Compare(rows, base); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "baseline gate passed (%d entries)\n", len(base.Entries))
}
