// ddemos-cluster is the one-command load harness: it runs the EA setup,
// launches a real multi-process cluster (VC nodes with TCP inter-VC links
// and HTTP voter endpoints, BB replicas, trustees) as child processes on
// localhost, drives paced open-loop vote traffic through ddemos-loadgen,
// waits for vote-set consensus, the BB push and the trustee tally, and
// verifies a majority-readable published Result — then writes the whole run
// as one benchjson Report artifact.
//
//	ddemos-cluster -vc 4 -bb 3 -ballots 1000 -rate 200 -duration 60s \
//	               -out cluster.json -history BENCH_HISTORY.jsonl
//
// With -churn > 0 and -durable, the harness SIGKILLs a round-robin victim
// (VC or BB) at that interval during the load phase and relaunches it
// against its journal directory — the crash-restart composition under live
// traffic.
//
// Exit status: 0 = result published and consistent with the load, 1 = any
// phase failed, 2 = usage error.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/benchjson"
	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
	"ddemos/internal/store"
)

func main() {
	os.Exit(run())
}

// harnessConfig collects the flag values.
type harnessConfig struct {
	nv, nb, nt, threshold int
	ballots               int
	options               string
	segmentBallots        int
	consensus             string
	rate                  float64
	duration              time.Duration
	workers               int
	timeout               time.Duration
	boot                  time.Duration
	binDir                string
	workdir               string
	keep                  bool
	durable               bool
	fsync                 bool
	journalPool           int
	journalPolicy         string
	batchWindow           time.Duration
	churn                 time.Duration
	churnBB               bool
	maxErrRate            float64
	out                   string
	history               string
	verbose               bool
}

func run() int {
	var cfg harnessConfig
	flag.IntVar(&cfg.nv, "vc", 4, "vote collector nodes (the consensus floor is 4: 3f+1 with f ≥ 1)")
	flag.IntVar(&cfg.nb, "bb", 3, "bulletin board replicas")
	flag.IntVar(&cfg.nt, "trustees", 3, "trustees")
	flag.IntVar(&cfg.threshold, "threshold", 0, "trustee threshold (0 = majority)")
	flag.IntVar(&cfg.ballots, "ballots", 1000, "ballot pool size")
	flag.StringVar(&cfg.options, "options", "yes,no", "comma-separated election options")
	flag.IntVar(&cfg.segmentBallots, "segment-ballots", 0, "ballots per EA-emitted segment file (0 = store default)")
	flag.StringVar(&cfg.consensus, "consensus", "interlocked",
		"vote-set-consensus engine passed to every VC: 'interlocked' or 'acs'")
	flag.Float64Var(&cfg.rate, "rate", 200, "loadgen target rate, votes/sec")
	flag.DurationVar(&cfg.duration, "duration", 60*time.Second, "loadgen schedule length")
	flag.IntVar(&cfg.workers, "workers", 0, "loadgen in-flight bound (0 = loadgen default)")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "loadgen per-request timeout")
	flag.DurationVar(&cfg.boot, "boot", 15*time.Second, "time budget for processes to come up before voting starts")
	flag.StringVar(&cfg.binDir, "bin", "", "directory holding the ddemos-* binaries (default: this binary's directory)")
	flag.StringVar(&cfg.workdir, "workdir", "", "working directory for election files, journals and artifacts (default: temp dir)")
	flag.BoolVar(&cfg.keep, "keep", false, "keep the workdir after the run")
	flag.BoolVar(&cfg.durable, "durable", false, "give every VC and BB a journal -data-dir (required for -churn)")
	flag.BoolVar(&cfg.fsync, "fsync", false, "pass -fsync to VC/BB nodes (requires -durable)")
	flag.IntVar(&cfg.journalPool, "journal-pool", 1, "journal WAL lanes for VC/BB nodes (requires -durable)")
	flag.StringVar(&cfg.journalPolicy, "journal-policy", "available", "journal ack policy for VC/BB nodes")
	flag.DurationVar(&cfg.batchWindow, "batch-window", 0, "inter-VC message batching window (0 = off)")
	flag.DurationVar(&cfg.churn, "churn", 0, "SIGKILL + restart one node at this interval during load (0 = off; requires -durable)")
	flag.BoolVar(&cfg.churnBB, "churn-bb", false, "include BB replicas in the churn victim rotation")
	flag.Float64Var(&cfg.maxErrRate, "max-error-rate", 0.01, "loadgen error fraction above which the run fails")
	flag.StringVar(&cfg.out, "out", "", "write the combined benchjson Report artifact here")
	flag.StringVar(&cfg.history, "history", "", "append the report to this BENCH_HISTORY.jsonl chain")
	flag.BoolVar(&cfg.verbose, "v", false, "forward child process output")
	flag.Parse()
	log.SetFlags(0)

	if cfg.churn > 0 && !cfg.durable {
		log.Print("cluster: -churn requires -durable (a killed node must recover from its journal)")
		return 2
	}
	if cfg.binDir == "" {
		exe, err := os.Executable()
		if err != nil {
			log.Printf("cluster: %v", err)
			return 2
		}
		cfg.binDir = filepath.Dir(exe)
	}
	for _, b := range []string{"ddemos-ea", "ddemos-vc", "ddemos-bb", "ddemos-trustee", "ddemos-loadgen"} {
		if _, err := os.Stat(filepath.Join(cfg.binDir, b)); err != nil {
			log.Printf("cluster: missing binary %s in %s (go build -o <dir> ./cmd/...)", b, cfg.binDir)
			return 2
		}
	}
	if cfg.workdir == "" {
		dir, err := os.MkdirTemp("", "ddemos-cluster-")
		if err != nil {
			log.Printf("cluster: %v", err)
			return 2
		}
		cfg.workdir = dir
	} else if err := os.MkdirAll(cfg.workdir, 0o700); err != nil {
		log.Printf("cluster: %v", err)
		return 2
	}

	o := &orch{cfg: cfg}
	defer o.teardown()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := o.runElection(ctx); err != nil {
		log.Printf("cluster: FAIL — %v", err)
		return 1
	}
	return 0
}

// orch owns the child processes and the port plan of one harness run.
type orch struct {
	cfg harnessConfig

	mu    sync.Mutex
	procs []*proc // every live process, for teardown
	vcs   []*proc // current process per VC index (churn swaps entries)
	bbs   []*proc // current process per BB index

	vcURLs []string
	bbURLs []string

	churnRestarts int
}

// proc is one supervised child process.
type proc struct {
	name string
	cmd  *exec.Cmd
	done chan error // receives cmd.Wait's result exactly once
}

// startProc launches a binary with line-prefixed output forwarding.
func (o *orch) startProc(name, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(filepath.Join(o.cfg.binDir, bin), args...) //nolint:gosec // our own binaries
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &proc{name: name, cmd: cmd, done: make(chan error, 1)}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			if o.cfg.verbose {
				log.Printf("[%s] %s", name, sc.Text())
			}
		}
		p.done <- cmd.Wait()
	}()
	o.mu.Lock()
	o.procs = append(o.procs, p)
	o.mu.Unlock()
	return p, nil
}

// wait blocks until the process exits or the deadline passes.
func (p *proc) wait(d time.Duration) error {
	select {
	case err := <-p.done:
		p.done <- err // re-arm for teardown
		return err
	case <-time.After(d):
		return fmt.Errorf("%s: still running after %v", p.name, d)
	}
}

// kill SIGKILLs the process and reaps it.
func (p *proc) kill() {
	_ = p.cmd.Process.Kill()
	<-p.done
	p.done <- nil
}

func (o *orch) teardown() {
	o.mu.Lock()
	procs := o.procs
	o.procs = nil
	o.mu.Unlock()
	for _, p := range procs {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
		}
	}
	for _, p := range procs {
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
		}
	}
	if !o.cfg.keep {
		_ = os.RemoveAll(o.cfg.workdir)
	} else {
		log.Printf("cluster: workdir kept at %s", o.cfg.workdir)
	}
}

// freePorts reserves n distinct localhost TCP ports by listening and
// closing; the tiny reuse race is acceptable for a test harness.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			_ = l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

func (o *orch) runElection(ctx context.Context) error {
	cfg := o.cfg
	electionDir := filepath.Join(cfg.workdir, "election")

	// Phase 0: EA setup. The voting window opens after the boot budget and
	// closes when the load schedule has drained.
	start := time.Now().Add(cfg.boot).Truncate(time.Second)
	end := start.Add(cfg.duration + 10*time.Second)
	log.Printf("cluster: EA setup — %d ballots, %d VC, %d BB, %d trustees; voting %s → %s",
		cfg.ballots, cfg.nv, cfg.nb, cfg.nt, start.Format(time.RFC3339), end.Format(time.RFC3339))
	eaArgs := []string{
		"-out", electionDir,
		"-ballots", fmt.Sprint(cfg.ballots),
		"-options", cfg.options,
		"-vc", fmt.Sprint(cfg.nv),
		"-bb", fmt.Sprint(cfg.nb),
		"-trustees", fmt.Sprint(cfg.nt),
		"-threshold", fmt.Sprint(cfg.threshold),
		"-start", start.Format(time.RFC3339),
		"-end", end.Format(time.RFC3339),
	}
	if cfg.segmentBallots > 0 {
		eaArgs = append(eaArgs, "-segment-ballots", fmt.Sprint(cfg.segmentBallots))
	}
	eaProc, err := o.startProc("ea", "ddemos-ea", eaArgs...)
	if err != nil {
		return err
	}
	if err := eaProc.wait(2 * time.Minute); err != nil {
		return fmt.Errorf("ea setup: %w", err)
	}
	// The zero-copy handoff contract: the EA emitted one pre-built segment
	// directory per VC, and the VCs will open them directly (vc-<i>.gob
	// names the directory, carries no inline pool). Verify here so a silent
	// regression to inline pools fails the harness.
	for i := 0; i < cfg.nv; i++ {
		manifest := filepath.Join(electionDir, fmt.Sprintf("vc-%d-ballots", i), store.ManifestName)
		if _, err := os.Stat(manifest); err != nil {
			return fmt.Errorf("segment handoff: EA did not emit %s: %w", manifest, err)
		}
	}
	log.Printf("cluster: EA emitted %d per-VC segment directories (zero-copy handoff)", cfg.nv)

	// Port plan: TCP + HTTP per VC, HTTP per BB.
	ports, err := freePorts(2*cfg.nv + cfg.nb)
	if err != nil {
		return err
	}
	vcTCP, vcHTTP, bbHTTP := ports[:cfg.nv], ports[cfg.nv:2*cfg.nv], ports[2*cfg.nv:]
	peers := make([]string, cfg.nv)
	for i := range peers {
		peers[i] = fmt.Sprintf("127.0.0.1:%d", vcTCP[i])
	}
	o.vcURLs = make([]string, cfg.nv)
	for i := range o.vcURLs {
		o.vcURLs[i] = fmt.Sprintf("http://127.0.0.1:%d", vcHTTP[i])
	}
	o.bbURLs = make([]string, cfg.nb)
	for i := range o.bbURLs {
		o.bbURLs[i] = fmt.Sprintf("http://127.0.0.1:%d", bbHTTP[i])
	}

	// Phase 1: launch BB replicas and VC nodes.
	o.bbs = make([]*proc, cfg.nb)
	for i := 0; i < cfg.nb; i++ {
		p, err := o.startProc(fmt.Sprintf("bb-%d", i), "ddemos-bb", o.bbArgs(i)...)
		if err != nil {
			return err
		}
		o.bbs[i] = p
	}
	o.vcs = make([]*proc, cfg.nv)
	for i := 0; i < cfg.nv; i++ {
		p, err := o.startProc(fmt.Sprintf("vc-%d", i), "ddemos-vc", o.vcArgs(i, peers)...)
		if err != nil {
			return err
		}
		o.vcs[i] = p
	}
	if err := o.awaitReady(ctx, start); err != nil {
		return err
	}
	log.Printf("cluster: %d VC + %d BB nodes ready", cfg.nv, cfg.nb)

	// Phase 2: paced load (+ optional churn) over the voting window.
	if wait := time.Until(start); wait > 0 {
		time.Sleep(wait)
	}
	churnDone := make(chan struct{})
	var churnWG sync.WaitGroup
	if cfg.churn > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			o.churnLoop(peers, churnDone)
		}()
	}
	loadOut := filepath.Join(cfg.workdir, "load.json")
	loadArgs := []string{
		"-vc", strings.Join(o.vcURLs, ","),
		"-ballots", filepath.Join(electionDir, "ballots.gob"),
		"-rate", fmt.Sprint(cfg.rate),
		"-duration", cfg.duration.String(),
		"-timeout", cfg.timeout.String(),
		"-max-error-rate", fmt.Sprint(cfg.maxErrRate),
		"-out", loadOut,
		"-label", fmt.Sprintf("ClusterLoad/vc=%d/bb=%d/rate=%g", cfg.nv, cfg.nb, cfg.rate),
		"-scrape",
	}
	if cfg.workers > 0 {
		loadArgs = append(loadArgs, "-workers", fmt.Sprint(cfg.workers))
	}
	log.Printf("cluster: driving %g votes/sec for %v against %d VC nodes", cfg.rate, cfg.duration, cfg.nv)
	lg, err := o.startProc("loadgen", "ddemos-loadgen", loadArgs...)
	if err != nil {
		close(churnDone)
		churnWG.Wait()
		return err
	}
	lgErr := lg.wait(cfg.duration + 2*time.Minute)
	close(churnDone)
	churnWG.Wait()
	if lgErr != nil {
		return fmt.Errorf("loadgen: %w", lgErr)
	}

	// Phase 3: the VCs run vote-set consensus at the election end and push
	// to the BBs, then exit. Their exit marks the consensus+push phase done.
	votingEnd := end
	for i, p := range o.currentVCs() {
		if err := p.wait(time.Until(votingEnd) + 3*time.Minute); err != nil {
			return fmt.Errorf("vc-%d consensus/push: %w", i, err)
		}
	}
	consensusPush := time.Since(votingEnd)
	if consensusPush < 0 {
		consensusPush = 0
	}
	lastVCExit := time.Now()
	log.Printf("cluster: all VCs exited %v after voting end (consensus + BB push)",
		consensusPush.Round(time.Millisecond))

	// Phase 4: trustees read the cast data and post their shares.
	for i := 0; i < cfg.nt; i++ {
		p, err := o.startProc(fmt.Sprintf("trustee-%d", i), "ddemos-trustee",
			"-init", filepath.Join(electionDir, fmt.Sprintf("trustee-%d.gob", i)),
			"-bb", strings.Join(o.bbURLs, ","),
			"-wait", "2s")
		if err != nil {
			return err
		}
		if err := p.wait(3 * time.Minute); err != nil {
			return fmt.Errorf("trustee-%d: %w", i, err)
		}
	}

	// Phase 5: poll the majority reader until the Result publishes.
	result, err := o.awaitResult(ctx, 3*time.Minute)
	if err != nil {
		return err
	}
	publish := time.Since(lastVCExit)

	return o.report(electionDir, loadOut, result, consensusPush, publish)
}

func (o *orch) bbArgs(i int) []string {
	cfg := o.cfg
	args := []string{
		"-init", filepath.Join(cfg.workdir, "election", "bb.gob"),
		"-http", strings.TrimPrefix(o.bbURLs[i], "http://"),
	}
	if cfg.durable {
		args = append(args,
			"-data-dir", filepath.Join(cfg.workdir, fmt.Sprintf("bb-%d", i)),
			"-journal-pool", fmt.Sprint(cfg.journalPool),
			"-journal-policy", cfg.journalPolicy)
		if cfg.fsync {
			args = append(args, "-fsync")
		}
	}
	return args
}

func (o *orch) vcArgs(i int, peers []string) []string {
	cfg := o.cfg
	args := []string{
		"-init", filepath.Join(cfg.workdir, "election", fmt.Sprintf("vc-%d.gob", i)),
		"-listen", peers[i],
		"-peers", strings.Join(peers, ","),
		"-http", strings.TrimPrefix(o.vcURLs[i], "http://"),
		"-bb", strings.Join(o.bbURLs, ","),
	}
	if cfg.consensus != "" && cfg.consensus != "interlocked" {
		args = append(args, "-consensus", cfg.consensus)
	}
	if cfg.batchWindow > 0 {
		args = append(args, "-batch-window", cfg.batchWindow.String())
	}
	if cfg.durable {
		args = append(args,
			"-data-dir", filepath.Join(cfg.workdir, fmt.Sprintf("vc-%d", i)),
			"-journal-pool", fmt.Sprint(cfg.journalPool),
			"-journal-policy", cfg.journalPolicy)
		if cfg.fsync {
			args = append(args, "-fsync")
		}
	}
	return args
}

// awaitReady polls every node's HTTP endpoint until all answer or the boot
// budget runs out.
func (o *orch) awaitReady(ctx context.Context, deadline time.Time) error {
	to := httpapi.Timeouts{Dial: 500 * time.Millisecond, Request: 2 * time.Second}
	for {
		ready := 0
		for _, u := range o.vcURLs {
			c := &httpapi.VCClient{BaseURL: u, Timeouts: to}
			if _, err := c.Metrics(ctx); err == nil {
				ready++
			}
		}
		for _, u := range o.bbURLs {
			c := &httpapi.BBClient{BaseURL: u, Timeouts: to}
			if _, err := c.Manifest(ctx); err == nil {
				ready++
			}
		}
		if ready == len(o.vcURLs)+len(o.bbURLs) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("boot: only %d/%d nodes ready before the voting window",
				ready, len(o.vcURLs)+len(o.bbURLs))
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// churnLoop SIGKILLs and relaunches a round-robin victim until done closes.
// VC victims rotate always; BB victims join the rotation with -churn-bb.
func (o *orch) churnLoop(peers []string, done <-chan struct{}) {
	victims := len(o.vcs)
	if o.cfg.churnBB {
		victims += len(o.bbs)
	}
	next := 0
	for {
		select {
		case <-done:
			return
		case <-time.After(o.cfg.churn):
		}
		v := next % victims
		next++
		if v < len(o.vcs) {
			o.mu.Lock()
			victim := o.vcs[v]
			o.mu.Unlock()
			log.Printf("cluster: churn — killing vc-%d", v)
			victim.kill()
			p, err := o.startProc(fmt.Sprintf("vc-%d", v), "ddemos-vc", o.vcArgs(v, peers)...)
			if err != nil {
				log.Printf("cluster: churn restart vc-%d: %v", v, err)
				return
			}
			o.mu.Lock()
			o.vcs[v] = p
			o.churnRestarts++
			o.mu.Unlock()
		} else {
			b := v - len(o.vcs)
			o.mu.Lock()
			victim := o.bbs[b]
			o.mu.Unlock()
			log.Printf("cluster: churn — killing bb-%d", b)
			victim.kill()
			p, err := o.startProc(fmt.Sprintf("bb-%d", b), "ddemos-bb", o.bbArgs(b)...)
			if err != nil {
				log.Printf("cluster: churn restart bb-%d: %v", b, err)
				return
			}
			o.mu.Lock()
			o.bbs[b] = p
			o.churnRestarts++
			o.mu.Unlock()
		}
	}
}

func (o *orch) currentVCs() []*proc {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*proc(nil), o.vcs...)
}

// awaitResult polls the BB majority reader until fb+1 replicas agree on a
// published Result.
func (o *orch) awaitResult(ctx context.Context, patience time.Duration) (*bb.Result, error) {
	var apis []bb.API
	for _, u := range o.bbURLs {
		c := &httpapi.BBClient{BaseURL: u, Timeouts: httpapi.Timeouts{Request: 10 * time.Second}}
		apis = append(apis, c.API(ctx))
	}
	reader := bb.NewReader(apis)
	deadline := time.Now().Add(patience)
	for {
		res, err := reader.Result()
		if err == nil {
			return res, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("result not published after %v: %w", patience, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Second):
		}
	}
}

// report merges the loadgen artifact with the orchestrator's phase metrics,
// verifies the tally against the load, and writes -out / -history.
func (o *orch) report(electionDir, loadOut string, result *bb.Result, consensusPush, publish time.Duration) error {
	cfg := o.cfg
	f, err := os.Open(loadOut)
	if err != nil {
		return fmt.Errorf("loadgen artifact: %w", err)
	}
	rep, err := benchjson.ReadReport(f)
	_ = f.Close()
	if err != nil {
		return fmt.Errorf("loadgen artifact: %w", err)
	}

	var manifest ea.Manifest
	if err := httpapi.ReadGobFile(filepath.Join(electionDir, "manifest.gob"), &manifest); err != nil {
		return err
	}
	var total int64
	parts := make([]string, len(result.Counts))
	for i, c := range result.Counts {
		total += c
		name := fmt.Sprint(i)
		if i < len(manifest.Options) {
			name = manifest.Options[i]
		}
		parts[i] = fmt.Sprintf("%s=%d", name, c)
	}
	log.Printf("cluster: result published — %s (%d votes tallied)", strings.Join(parts, " "), total)

	// With zero load errors every distinct serial's vote must be in the
	// tally; with errors the tally can only miss those serials.
	lm := rep.Rows[0].Metrics
	distinct, errs := int64(lm[benchjson.MetricDistinctSerials]), int64(lm[benchjson.MetricErrors])
	if total > distinct || total < distinct-errs {
		return fmt.Errorf("tally %d inconsistent with load (%d distinct serials, %d errors)",
			total, distinct, errs)
	}

	o.mu.Lock()
	restarts := o.churnRestarts
	o.mu.Unlock()
	rep.Rows = append(rep.Rows, benchjson.Row{
		Benchmark:  fmt.Sprintf("ClusterPhases/vc=%d/bb=%d/ballots=%d", cfg.nv, cfg.nb, cfg.ballots),
		Iterations: 1,
		Metrics: map[string]float64{
			benchjson.MetricConsensusPushSec: consensusPush.Seconds(),
			benchjson.MetricPublishSec:       publish.Seconds(),
			benchjson.MetricChurnRestarts:    float64(restarts),
		},
	})
	log.Printf("cluster: consensus+push %.1fs, publish %.1fs, churn restarts %d",
		consensusPush.Seconds(), publish.Seconds(), restarts)

	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		if err := benchjson.WriteReport(f, rep); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("cluster: wrote %s", cfg.out)
	}
	if cfg.history != "" {
		if err := benchjson.AppendHistoryFile(cfg.history, rep); err != nil {
			return err
		}
		log.Printf("cluster: appended to %s", cfg.history)
	}
	log.Print("cluster: PASS — result published")
	return nil
}
