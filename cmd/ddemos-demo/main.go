// ddemos-demo runs a complete election in-process: setup, concurrent
// voting, vote-set consensus, tally, voter verification and a full audit.
//
//	ddemos-demo -ballots 500 -options yes,no,maybe -vc 4 -bb 3 -trustees 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"ddemos"
)

func main() {
	ballots := flag.Int("ballots", 200, "number of eligible voters")
	turnout := flag.Float64("turnout", 0.8, "fraction of voters who vote")
	options := flag.String("options", "yes,no", "comma-separated options")
	nv := flag.Int("vc", 4, "vote collector nodes")
	nb := flag.Int("bb", 3, "bulletin board nodes")
	nt := flag.Int("trustees", 3, "trustees")
	seed := flag.String("seed", "", "deterministic setup seed (empty = crypto/rand)")
	flag.Parse()

	opts := strings.Split(*options, ",")
	start := time.Now()
	params := ddemos.Params{
		ElectionID:  fmt.Sprintf("demo-%d", start.Unix()),
		Options:     opts,
		NumBallots:  *ballots,
		NumVC:       *nv,
		NumBB:       *nb,
		NumTrustees: *nt,
		VotingStart: start,
		VotingEnd:   start.Add(24 * time.Hour),
	}
	if *seed != "" {
		params.Seed = []byte(*seed)
	}

	fmt.Printf("setting up election (%d ballots, %d options, %d VC, %d BB, %d trustees)…\n",
		*ballots, len(opts), *nv, *nb, *nt)
	t0 := time.Now()
	data, err := ddemos.Setup(params)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	fmt.Printf("setup done in %v\n", time.Since(t0).Round(time.Millisecond))

	cluster, err := ddemos.NewCluster(data, ddemos.ClusterOptions{})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	services := cluster.VoterServices()
	rng := rand.New(rand.NewPCG(1, 2))
	voted := 0
	t0 = time.Now()
	for i := 0; i < *ballots; i++ {
		if rng.Float64() > *turnout {
			continue
		}
		v := ddemos.NewVoter(data.Ballots[i], services)
		if _, err := v.Cast(ctx, rng.IntN(len(opts))); err != nil {
			log.Fatalf("voter %d: %v", i+1, err)
		}
		voted++
	}
	collect := time.Since(t0)
	fmt.Printf("%d/%d voters cast ballots in %v (%.1f votes/sec)\n",
		voted, *ballots, collect.Round(time.Millisecond), float64(voted)/collect.Seconds())

	result, err := cluster.RunPipeline(ctx)
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	fmt.Println("\nfinal tally:")
	for i, o := range opts {
		fmt.Printf("  %-20s %d\n", o, result.Counts[i])
	}
	report, err := ddemos.Audit(cluster.Reader, nil)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	if !report.OK() {
		fmt.Println("AUDIT FAILED:")
		for _, f := range report.Failures {
			fmt.Println("  ✗", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\naudit passed (%d ballots, %d proofs, %d openings)\n",
		report.BallotsChecked, report.ProofsChecked, report.OpeningsChecked)
	for name, d := range cluster.Phases() {
		fmt.Printf("phase %-32s %v\n", name+":", d.Round(time.Millisecond))
	}
}
