// ddemos-ea runs the Election Authority: it generates all initialization
// data and writes one payload file per component into -out. Distribute the
// files over secure channels, then delete the directory — the EA must not
// survive setup (§III-B of the paper).
//
//	ddemos-ea -out ./election -ballots 1000 -options yes,no -vc 4 -bb 3 -trustees 3 \
//	          -start 2026-06-10T08:00:00Z -end 2026-06-10T20:00:00Z
//
// Output files:
//
//	manifest.gob            public election description (give to everyone)
//	ballots.gob             all voter ballots (for the distribution channel)
//	vc-<i>.gob              VC node i's private initialization data
//	bb.gob                  BB node initialization data (identical per node)
//	trustee-<i>.gob         trustee i's private shares
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ddemos"
	"ddemos/internal/httpapi"
)

func main() {
	out := flag.String("out", "election", "output directory")
	ballots := flag.Int("ballots", 100, "number of eligible voters")
	options := flag.String("options", "yes,no", "comma-separated options")
	nv := flag.Int("vc", 4, "vote collector nodes")
	nb := flag.Int("bb", 3, "bulletin board nodes")
	nt := flag.Int("trustees", 3, "trustees")
	ht := flag.Int("threshold", 0, "trustee threshold (default majority)")
	startS := flag.String("start", "", "voting start, RFC3339 (default now)")
	endS := flag.String("end", "", "voting end, RFC3339 (default start+12h)")
	flag.Parse()

	start := time.Now()
	if *startS != "" {
		var err error
		if start, err = time.Parse(time.RFC3339, *startS); err != nil {
			log.Fatalf("bad -start: %v", err)
		}
	}
	end := start.Add(12 * time.Hour)
	if *endS != "" {
		var err error
		if end, err = time.Parse(time.RFC3339, *endS); err != nil {
			log.Fatalf("bad -end: %v", err)
		}
	}

	data, err := ddemos.Setup(ddemos.Params{
		ElectionID:       fmt.Sprintf("election-%d", start.Unix()),
		Options:          strings.Split(*options, ","),
		NumBallots:       *ballots,
		NumVC:            *nv,
		NumBB:            *nb,
		NumTrustees:      *nt,
		TrusteeThreshold: *ht,
		VotingStart:      start,
		VotingEnd:        end,
	})
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	if err := os.MkdirAll(*out, 0o700); err != nil {
		log.Fatal(err)
	}
	write := func(name string, v any) {
		if err := httpapi.WriteGobFile(filepath.Join(*out, name), v); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", filepath.Join(*out, name))
	}
	write("manifest.gob", &data.Manifest)
	write("ballots.gob", data.Ballots)
	for i, v := range data.VC {
		write(fmt.Sprintf("vc-%d.gob", i), v)
	}
	write("bb.gob", data.BB)
	for i, t := range data.Trustees {
		write(fmt.Sprintf("trustee-%d.gob", i), t)
	}
	fmt.Println("\nsetup complete — distribute the files, then DELETE this directory.")
}
