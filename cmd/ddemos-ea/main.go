// ddemos-ea runs the Election Authority: it generates all initialization
// data and writes one payload file per component into -out. Distribute the
// files over secure channels, then delete the directory — the EA must not
// survive setup (§III-B of the paper).
//
//	ddemos-ea -out ./election -ballots 1000 -options yes,no -vc 4 -bb 3 -trustees 3 \
//	          -start 2026-06-10T08:00:00Z -end 2026-06-10T20:00:00Z
//
// Output files:
//
//	manifest.gob            public election description (give to everyone)
//	ballots.gob             all voter ballots (for the distribution channel)
//	vc-<i>.gob              VC node i's private initialization data
//	vc-<i>-ballots/         VC node i's pre-built segment store (default mode)
//	bb.gob                  BB node initialization data (identical per node)
//	trustee-<i>.gob         trustee i's private shares
//
// Ballots stream straight to disk as they are generated — each VC's pool
// lands in a vc-<i>-ballots/ segment directory (store.Writer) the node
// opens directly, and ballots.gob/bb.gob/trustee-<i>.gob are gob streams —
// so setup memory is O(segment), not O(pool). The whole-pool -legacy-payload
// route was removed after its one-release deprecation window.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ddemos"
	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
	"ddemos/internal/store"
)

func main() {
	cfg := eaConfig{}
	flag.StringVar(&cfg.out, "out", "election", "output directory")
	flag.IntVar(&cfg.ballots, "ballots", 100, "number of eligible voters")
	flag.StringVar(&cfg.options, "options", "yes,no", "comma-separated options")
	flag.IntVar(&cfg.nv, "vc", 4, "vote collector nodes")
	flag.IntVar(&cfg.nb, "bb", 3, "bulletin board nodes")
	flag.IntVar(&cfg.nt, "trustees", 3, "trustees")
	flag.IntVar(&cfg.ht, "threshold", 0, "trustee threshold (default majority)")
	flag.StringVar(&cfg.startS, "start", "", "voting start, RFC3339 (default now)")
	flag.StringVar(&cfg.endS, "end", "", "voting end, RFC3339 (default start+12h)")
	flag.IntVar(&cfg.segmentBallots, "segment-ballots", store.DefaultSegmentBallots, "ballots per segment file")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsetup complete — distribute the files, then DELETE this directory.")
}

type eaConfig struct {
	out            string
	ballots        int
	options        string
	nv, nb, nt, ht int
	startS, endS   string
	segmentBallots int

	// electionID overrides the generated ID (tests and the cluster
	// harness); empty means newElectionID(start).
	electionID string
	// seed makes the setup deterministic (tests only).
	seed []byte
}

// newElectionID derives a collision-free election identifier: the start
// time for human greppability plus 8 bytes of crypto/rand, so two setups in
// the same second (parallel CI runs) can never collide on ID or data dirs.
func newElectionID(start time.Time) (string, error) {
	var suffix [8]byte
	if _, err := rand.Read(suffix[:]); err != nil {
		return "", fmt.Errorf("election id entropy: %w", err)
	}
	return fmt.Sprintf("election-%d-%s", start.Unix(), hex.EncodeToString(suffix[:])), nil
}

func run(cfg eaConfig, w io.Writer) error {
	start := time.Now()
	if cfg.startS != "" {
		var err error
		if start, err = time.Parse(time.RFC3339, cfg.startS); err != nil {
			return fmt.Errorf("bad -start: %w", err)
		}
	}
	end := start.Add(12 * time.Hour)
	if cfg.endS != "" {
		var err error
		if end, err = time.Parse(time.RFC3339, cfg.endS); err != nil {
			return fmt.Errorf("bad -end: %w", err)
		}
	}
	electionID := cfg.electionID
	if electionID == "" {
		var err error
		if electionID, err = newElectionID(start); err != nil {
			return err
		}
	}
	p := ddemos.Params{
		ElectionID:       electionID,
		Options:          strings.Split(cfg.options, ","),
		NumBallots:       cfg.ballots,
		NumVC:            cfg.nv,
		NumBB:            cfg.nb,
		NumTrustees:      cfg.nt,
		TrusteeThreshold: cfg.ht,
		VotingStart:      start,
		VotingEnd:        end,
		Seed:             cfg.seed,
	}
	if err := os.MkdirAll(cfg.out, 0o700); err != nil {
		return err
	}
	return runStreaming(cfg, p, w)
}

// runStreaming is the zero-copy path: SetupStream emits each ballot once,
// and every per-ballot artifact goes straight to disk — voter ballots and
// BB/trustee payloads as gob streams, each VC's pool through a store.Writer
// into its own segment directory. Peak memory is O(segment + stream
// window) regardless of pool size.
func runStreaming(cfg eaConfig, p ddemos.Params, w io.Writer) error {
	wrote := func(name string) {
		fmt.Fprintln(w, "wrote", filepath.Join(cfg.out, name))
	}

	ballotsOut, err := httpapi.CreateGobStream(filepath.Join(cfg.out, "ballots.gob"))
	if err != nil {
		return err
	}
	var streams []*httpapi.GobStream // everything to abort on failure
	streams = append(streams, ballotsOut)
	var segWriters []*store.Writer
	fail := func(err error) error {
		for _, s := range streams {
			s.Abort()
		}
		for _, sw := range segWriters {
			sw.Abort()
		}
		return err
	}
	if err := ballotsOut.Encode(httpapi.BallotsStreamHeader{
		Magic:      httpapi.BallotsStreamMagic,
		NumBallots: p.NumBallots,
	}); err != nil {
		return fail(err)
	}

	var bbOut *httpapi.GobStream
	var trusteeOuts []*httpapi.GobStream
	vcDirs := make([]string, p.NumVC)
	for i := range vcDirs {
		vcDirs[i] = fmt.Sprintf("vc-%d-ballots", i)
		sw, err := store.NewWriter(filepath.Join(cfg.out, vcDirs[i]), store.WriterOptions{
			SegmentBallots: cfg.segmentBallots,
			ClearStale:     true,
		})
		if err != nil {
			return fail(err)
		}
		segWriters = append(segWriters, sw)
	}

	// OnComponents fires after key generation and before the first ballot:
	// open the BB/trustee streams and write their slim init headers, so
	// the sink below only ever appends per-ballot values.
	opts := ea.StreamOptions{
		OnComponents: func(sd *ea.StreamData) error {
			if sd.BB == nil {
				return nil
			}
			var err error
			if bbOut, err = httpapi.CreateGobStream(filepath.Join(cfg.out, "bb.gob")); err != nil {
				return err
			}
			streams = append(streams, bbOut)
			if err := bbOut.Encode(sd.BB); err != nil {
				return err
			}
			trusteeOuts = make([]*httpapi.GobStream, len(sd.Trustees))
			for i, t := range sd.Trustees {
				if trusteeOuts[i], err = httpapi.CreateGobStream(filepath.Join(cfg.out, fmt.Sprintf("trustee-%d.gob", i))); err != nil {
					return err
				}
				streams = append(streams, trusteeOuts[i])
				if err := trusteeOuts[i].Encode(t); err != nil {
					return err
				}
			}
			return nil
		},
	}
	sd, err := ea.SetupStream(p, opts, func(e *ea.Emission) error {
		if err := ballotsOut.Encode(e.Voter); err != nil {
			return err
		}
		for i, sw := range segWriters {
			if err := sw.Append(e.VC[i]); err != nil {
				return err
			}
		}
		if e.BB != nil {
			if err := bbOut.Encode(e.BB); err != nil {
				return err
			}
			for i := range e.Trustees {
				if err := trusteeOuts[i].Encode(&e.Trustees[i]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("setup: %w", err))
	}
	if err := ballotsOut.Close(); err != nil {
		return fail(err)
	}
	wrote("ballots.gob")
	for i, sw := range segWriters {
		seg, err := sw.Finish()
		if err != nil {
			return fail(err)
		}
		_ = seg.Close()
		wrote(vcDirs[i] + string(os.PathSeparator))
	}
	if bbOut != nil {
		if err := bbOut.Close(); err != nil {
			return fail(err)
		}
		wrote("bb.gob")
		for i, t := range trusteeOuts {
			if err := t.Close(); err != nil {
				return fail(err)
			}
			wrote(fmt.Sprintf("trustee-%d.gob", i))
		}
	}
	if err := httpapi.WriteGobFile(filepath.Join(cfg.out, "manifest.gob"), &sd.Manifest); err != nil {
		return fail(err)
	}
	wrote("manifest.gob")
	for i, v := range sd.VC {
		v.BallotsDir = vcDirs[i] // relative to the payload file's directory
		if err := httpapi.WriteGobFile(filepath.Join(cfg.out, fmt.Sprintf("vc-%d.gob", i)), v); err != nil {
			return fail(err)
		}
		wrote(fmt.Sprintf("vc-%d.gob", i))
	}
	return nil
}
