package main

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
	"ddemos/internal/store"
)

// TestNewElectionIDUnique pins the same-second collision fix: the old ID
// was election-<start.Unix()>, so two setups started in the same second
// (parallel CI runs, scripted re-runs) collided on ID — and on everything
// keyed by it. The ID now mixes in crypto/rand, so same-instant setups
// must still be unique, while keeping the greppable time prefix.
func TestNewElectionIDUnique(t *testing.T) {
	start := time.Unix(1750000000, 0)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id, err := newElectionID(start)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(id, "election-1750000000-") {
			t.Fatalf("ID %q lost the greppable time prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate election ID %q for the same start second", id)
		}
		seen[id] = true
	}
}

func hashU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func hashBytes(h hash.Hash, b []byte) {
	hashU64(h, uint64(len(b)))
	h.Write(b)
}

// pinnedStreamingDigest is the canonical hash of everything the streaming
// route emits for the fixed "route-differential" seed below, recorded while
// the removed -legacy-payload route still existed and was verified
// byte-identical against it (the PR 9 differential test). It freezes the
// whole-pool bytes of that fixture: a change in ballot generation, the
// shuffle, share derivation, or the segment writer shows up as a digest
// mismatch here exactly as it would have shown up as a route divergence.
const pinnedStreamingDigest = "4de4e1527cedbb5f35dfe55c69eba26e30f99dee26b75d73526a18688d57f59b"

// TestStreamingRoutePinnedElection is the regression successor of the
// streaming-vs-legacy differential test: the legacy route is gone, so the
// seeded election it cross-checked is pinned by digest instead. It also
// keeps the structural handoff contract: slim vc-<i>.gob payloads (no
// inline pool), a BallotsDir that resolves the way ddemos-vc resolves it,
// and segment directories that open and serve every ballot.
func TestStreamingRoutePinnedElection(t *testing.T) {
	const nBallots, nVC, nTrustees = 40, 4, 3
	out := filepath.Join(t.TempDir(), "streaming")
	cfg := eaConfig{
		out: out, ballots: nBallots, options: "yes,no", nv: nVC, nb: 3, nt: nTrustees,
		startS: "2026-06-10T08:00:00Z", endS: "2026-06-10T20:00:00Z",
		segmentBallots: 16, // several segments from the 40-ballot pool
		electionID:     "route-differential", seed: []byte("route-differential"),
	}
	if err := run(cfg, io.Discard); err != nil {
		t.Fatalf("streaming route: %v", err)
	}

	h := sha256.New()

	// Voter ballots, in pool order.
	ballots, err := httpapi.ReadBallotsFile(filepath.Join(out, "ballots.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ballots) != nBallots {
		t.Fatalf("pool size %d, want %d", len(ballots), nBallots)
	}
	for _, b := range ballots {
		hashU64(h, b.Serial)
		for p := 0; p < 2; p++ {
			hashU64(h, uint64(len(b.Parts[p].Lines)))
			for _, l := range b.Parts[p].Lines {
				hashBytes(h, l.VoteCode)
				hashBytes(h, []byte(l.Option))
				hashBytes(h, l.Receipt)
			}
		}
	}

	// Per-VC payloads: slim init plus every stored ballot line, opened the
	// way ddemos-vc opens them.
	for i := 0; i < nVC; i++ {
		initPath := filepath.Join(out, fmt.Sprintf("vc-%d.gob", i))
		var init ea.VCInit
		if err := httpapi.ReadGobFile(initPath, &init); err != nil {
			t.Fatal(err)
		}
		if len(init.Ballots) != 0 {
			t.Fatalf("vc-%d: payload carries %d inline ballots, want none", i, len(init.Ballots))
		}
		if init.BallotsDir == "" {
			t.Fatalf("vc-%d: payload has no BallotsDir", i)
		}
		segPath := init.BallotsDir
		if !filepath.IsAbs(segPath) {
			segPath = filepath.Join(filepath.Dir(initPath), segPath)
		}
		seg, err := store.OpenSegmented(segPath)
		if err != nil {
			t.Fatalf("vc-%d: opening emitted segment dir: %v", i, err)
		}
		if seg.Count() != nBallots {
			t.Fatalf("vc-%d: segment dir holds %d ballots, want %d", i, seg.Count(), nBallots)
		}
		for serial := uint64(1); serial <= nBallots; serial++ {
			bd, err := seg.Get(serial)
			if err != nil {
				t.Fatalf("vc-%d Get(%d): %v", i, serial, err)
			}
			hashU64(h, bd.Serial)
			for p := 0; p < 2; p++ {
				hashU64(h, uint64(len(bd.Lines[p])))
				for _, l := range bd.Lines[p] {
					h.Write(l.Hash[:])
					h.Write(l.Salt[:])
					h.Write(l.Share[:])
					h.Write(l.ShareSig[:])
				}
			}
		}
		_ = seg.Close()
	}

	got := hex.EncodeToString(h.Sum(nil))
	if got != pinnedStreamingDigest {
		t.Fatalf("streaming route digest changed:\n got %s\nwant %s\n"+
			"(ballot generation or the segment writer changed the emitted bytes; "+
			"re-pin only if the change is intentional)", got, pinnedStreamingDigest)
	}
}
