package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
	"ddemos/internal/store"
)

// TestNewElectionIDUnique pins the same-second collision fix: the old ID
// was election-<start.Unix()>, so two setups started in the same second
// (parallel CI runs, scripted re-runs) collided on ID — and on everything
// keyed by it. The ID now mixes in crypto/rand, so same-instant setups
// must still be unique, while keeping the greppable time prefix.
func TestNewElectionIDUnique(t *testing.T) {
	start := time.Unix(1750000000, 0)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id, err := newElectionID(start)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(id, "election-1750000000-") {
			t.Fatalf("ID %q lost the greppable time prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate election ID %q for the same start second", id)
		}
		seen[id] = true
	}
}

// gobBytes canonicalizes a value through gob for byte comparison.
func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingAndLegacyRoutesEmitIdenticalElections is the differential
// end-to-end setup test: the same seeded election generated through the
// default streaming route (-segments: slim vc-<i>.gob + segment dirs, gob
// streams for ballots/BB/trustees) and the legacy route (-legacy-payload:
// whole-pool single-value gobs) must contain byte-identical ballots and
// identical component payloads — and the streaming VC payload must be
// openable exactly the way ddemos-vc opens it (BallotsDir resolved against
// the payload file, store.OpenSegmented, no pool decode).
func TestStreamingAndLegacyRoutesEmitIdenticalElections(t *testing.T) {
	const nBallots, nVC, nTrustees = 40, 4, 3
	base := t.TempDir()
	streamDir := filepath.Join(base, "streaming")
	legacyDir := filepath.Join(base, "legacy")
	common := eaConfig{
		ballots: nBallots, options: "yes,no", nv: nVC, nb: 3, nt: nTrustees,
		startS: "2026-06-10T08:00:00Z", endS: "2026-06-10T20:00:00Z",
		segments: true, segmentBallots: 16, // several segments from the 40-ballot pool
		electionID: "route-differential", seed: []byte("route-differential"),
	}
	streamCfg, legacyCfg := common, common
	streamCfg.out = streamDir
	legacyCfg.out = legacyDir
	legacyCfg.legacyPayload = true
	if err := run(streamCfg, io.Discard); err != nil {
		t.Fatalf("streaming route: %v", err)
	}
	if err := run(legacyCfg, io.Discard); err != nil {
		t.Fatalf("legacy route: %v", err)
	}

	// Voter ballots: the streamed ballots.gob and the legacy whole-slice
	// ballots.gob must decode to byte-identical pools.
	streamBallots, err := httpapi.ReadBallotsFile(filepath.Join(streamDir, "ballots.gob"))
	if err != nil {
		t.Fatal(err)
	}
	legacyBallots, err := httpapi.ReadBallotsFile(filepath.Join(legacyDir, "ballots.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamBallots) != nBallots || len(legacyBallots) != nBallots {
		t.Fatalf("pool sizes: streaming %d, legacy %d, want %d", len(streamBallots), len(legacyBallots), nBallots)
	}
	for i := range legacyBallots {
		if !bytes.Equal(gobBytes(t, streamBallots[i]), gobBytes(t, legacyBallots[i])) {
			t.Fatalf("voter ballot %d differs between routes", i)
		}
	}

	// Manifests identical.
	var streamMan, legacyMan ea.Manifest
	if err := httpapi.ReadGobFile(filepath.Join(streamDir, "manifest.gob"), &streamMan); err != nil {
		t.Fatal(err)
	}
	if err := httpapi.ReadGobFile(filepath.Join(legacyDir, "manifest.gob"), &legacyMan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, &streamMan), gobBytes(t, &legacyMan)) {
		t.Fatal("manifests differ between routes")
	}

	// Per-VC payloads: open the streaming one the way ddemos-vc does —
	// resolve BallotsDir against the payload file and OpenSegmented — and
	// compare every stored ballot against the legacy inline pool.
	for i := 0; i < nVC; i++ {
		initPath := filepath.Join(streamDir, fmt.Sprintf("vc-%d.gob", i))
		var streamInit, legacyInit ea.VCInit
		if err := httpapi.ReadGobFile(initPath, &streamInit); err != nil {
			t.Fatal(err)
		}
		if err := httpapi.ReadGobFile(filepath.Join(legacyDir, fmt.Sprintf("vc-%d.gob", i)), &legacyInit); err != nil {
			t.Fatal(err)
		}
		if len(streamInit.Ballots) != 0 {
			t.Fatalf("vc-%d: streaming payload carries %d inline ballots, want none", i, len(streamInit.Ballots))
		}
		if streamInit.BallotsDir == "" {
			t.Fatalf("vc-%d: streaming payload has no BallotsDir", i)
		}
		if len(legacyInit.Ballots) != nBallots {
			t.Fatalf("vc-%d: legacy payload carries %d ballots, want %d", i, len(legacyInit.Ballots), nBallots)
		}
		segPath := streamInit.BallotsDir
		if !filepath.IsAbs(segPath) {
			segPath = filepath.Join(filepath.Dir(initPath), segPath)
		}
		seg, err := store.OpenSegmented(segPath)
		if err != nil {
			t.Fatalf("vc-%d: opening emitted segment dir: %v", i, err)
		}
		if seg.Count() != nBallots {
			t.Fatalf("vc-%d: segment dir holds %d ballots, want %d", i, seg.Count(), nBallots)
		}
		for _, want := range legacyInit.Ballots {
			got, err := seg.Get(want.Serial)
			if err != nil {
				t.Fatalf("vc-%d Get(%d): %v", i, want.Serial, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("vc-%d: ballot %d differs between routes", i, want.Serial)
			}
		}
		_ = seg.Close()
		// Everything but the pool carrier must match: same keys, same
		// manifest, same index.
		streamInit.BallotsDir = ""
		legacyInit.Ballots = nil
		if !bytes.Equal(gobBytes(t, &streamInit), gobBytes(t, &legacyInit)) {
			t.Fatalf("vc-%d: non-pool payload fields differ between routes", i)
		}
	}

	// BB and trustee payloads via their streaming-aware readers.
	streamBB, err := httpapi.ReadBBInitFile(filepath.Join(streamDir, "bb.gob"))
	if err != nil {
		t.Fatal(err)
	}
	legacyBB, err := httpapi.ReadBBInitFile(filepath.Join(legacyDir, "bb.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, streamBB), gobBytes(t, legacyBB)) {
		t.Fatal("BB payloads differ between routes")
	}
	for i := 0; i < nTrustees; i++ {
		name := fmt.Sprintf("trustee-%d.gob", i)
		st, err := httpapi.ReadTrusteeInitFile(filepath.Join(streamDir, name))
		if err != nil {
			t.Fatal(err)
		}
		lt, err := httpapi.ReadTrusteeInitFile(filepath.Join(legacyDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gobBytes(t, st), gobBytes(t, lt)) {
			t.Fatalf("trustee %d payloads differ between routes", i)
		}
	}
}
