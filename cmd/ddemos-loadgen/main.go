// ddemos-loadgen drives sustained open-loop vote traffic at a target rate
// against the VC nodes of a running cluster, over the same HTTP API real
// voters use. Send times are fixed on a rate grid before the run starts and
// every latency is measured against that schedule, so a saturated cluster
// shows its queueing delay in the tail instead of silently slowing the
// generator down (coordinated omission).
//
//	ddemos-loadgen -vc http://localhost:8100,http://localhost:8101 \
//	               -ballots election/ballots.gob -rate 500 -duration 60s \
//	               -out load.json -history BENCH_HISTORY.jsonl
//
// Each scheduled op casts a deterministic (serial, part, option) tuple;
// serials cycle through the ballot pool, and re-votes of the same line are
// idempotent on the VC (same receipt), so the generator can run longer than
// the pool without manufacturing rejections. -out writes the run as a
// benchjson Report JSON document — the format ddemos-benchjson -in accepts
// and -history/-dashboard chain and render.
//
// Exit status: 0 = run completed within -max-error-rate, 1 = too many
// errors or nothing completed, 2 = usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/benchjson"
	"ddemos/internal/benchmark"
	"ddemos/internal/httpapi"
)

func main() {
	vcS := flag.String("vc", "", "comma-separated VC base URLs (round-robin per op)")
	ballotsPath := flag.String("ballots", "", "path to ballots.gob (the serial/code pool)")
	rate := flag.Float64("rate", 500, "target send rate, ops/sec (open loop)")
	duration := flag.Duration("duration", 60*time.Second, "length of the send schedule")
	workers := flag.Int("workers", 0, "max in-flight requests (0 = 512); size ≥ rate × expected p99")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	votes := flag.Int("votes", 0, "distinct serials to cycle through (0 = whole pool)")
	seed := flag.Int64("seed", 1, "seed for the part/option choice per serial")
	label := flag.String("label", "", "benchmark row name (default ClusterLoad/vc=<n>/rate=<rate>)")
	out := flag.String("out", "", "write the run as a benchjson Report JSON artifact")
	historyPath := flag.String("history", "", "append the report to this BENCH_HISTORY.jsonl chain")
	maxErrRate := flag.Float64("max-error-rate", 0.01, "error fraction above which the run exits 1")
	scrape := flag.Bool("scrape", false, "log each VC's /v1/metrics snapshot after the run")
	flag.Parse()
	log.SetFlags(0)

	if *vcS == "" || *ballotsPath == "" {
		log.Print("loadgen: -vc and -ballots are required")
		os.Exit(2)
	}
	var clients []*httpapi.VCClient
	for _, base := range strings.Split(*vcS, ",") {
		if base = strings.TrimSpace(base); base != "" {
			clients = append(clients, &httpapi.VCClient{BaseURL: base})
		}
	}
	if len(clients) == 0 {
		log.Print("loadgen: -vc holds no URLs")
		os.Exit(2)
	}
	ballots, err := httpapi.ReadBallotsFile(*ballotsPath)
	if err != nil {
		log.Printf("loadgen: %v", err)
		os.Exit(2)
	}
	if len(ballots) == 0 {
		log.Print("loadgen: ballot pool is empty")
		os.Exit(2)
	}
	pool := len(ballots)
	if *votes > 0 && *votes < pool {
		pool = *votes
	}

	// Precompute one deterministic (part, option, code) per serial: the hot
	// loop then only indexes — no rand, no hashing, no allocation beyond the
	// request itself.
	type plannedVote struct {
		serial uint64
		code   []byte
	}
	rng := rand.New(rand.NewSource(*seed)) //nolint:gosec // load plan, not crypto
	plan := make([]plannedVote, pool)
	for i := range plan {
		b := ballots[i]
		part := ballot.PartID(rng.Intn(2)) //nolint:gosec // 0 or 1
		opt := rng.Intn(len(b.Parts[part].Lines))
		code, err := b.CodeFor(part, opt)
		if err != nil {
			log.Printf("loadgen: ballot %d: %v", b.Serial, err)
			os.Exit(2)
		}
		plan[i] = plannedVote{serial: b.Serial, code: code}
	}

	name := *label
	if name == "" {
		name = fmt.Sprintf("ClusterLoad/vc=%d/rate=%g", len(clients), *rate)
	}
	log.Printf("loadgen: %s — %d VC nodes, %d-serial pool, %v schedule at %g/sec",
		name, len(clients), pool, *duration, *rate)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := benchmark.RunLoad(ctx, benchmark.LoadConfig{
		Rate:     *rate,
		Duration: *duration,
		Workers:  *workers,
		Timeout:  *timeout,
	}, func(ctx context.Context, op int) error {
		pv := plan[op%pool]
		_, err := clients[op%len(clients)].SubmitVote(ctx, pv.serial, pv.code)
		return err
	})
	if err != nil {
		log.Printf("loadgen: %v", err)
		os.Exit(2)
	}
	fmt.Println(res.Summary(*rate))
	if res.FirstErr != nil {
		log.Printf("loadgen: first error: %v", res.FirstErr)
	}

	distinct := pool
	if res.Scheduled < distinct {
		distinct = res.Scheduled
	}
	rep := benchjson.Report{
		Date: time.Now().UTC().Format("2006-01-02"),
		Go:   runtime.Version(),
		Rows: []benchjson.Row{{
			Benchmark:  name,
			Iterations: int64(res.Completed),
			Metrics: map[string]float64{
				benchjson.MetricTargetRate:      *rate,
				benchjson.MetricVotesPerSec:     res.Throughput,
				benchjson.MetricP50Ms:           benchjson.Ms(res.Hist.Quantile(0.50)),
				benchjson.MetricP99Ms:           benchjson.Ms(res.Hist.Quantile(0.99)),
				benchjson.MetricP999Ms:          benchjson.Ms(res.Hist.Quantile(0.999)),
				benchjson.MetricMaxMs:           benchjson.Ms(res.Hist.Max()),
				benchjson.MetricSent:            float64(res.Scheduled),
				benchjson.MetricErrors:          float64(res.Errors),
				benchjson.MetricSkipped:         float64(res.Skipped),
				benchjson.MetricSchedLagMs:      benchjson.Ms(res.MaxStartLag),
				benchjson.MetricDistinctSerials: float64(distinct),
			},
		}},
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Printf("loadgen: %v", err)
			os.Exit(2)
		}
		if err := benchjson.WriteReport(f, rep); err != nil {
			log.Printf("loadgen: %v", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			log.Printf("loadgen: %v", err)
			os.Exit(2)
		}
		log.Printf("loadgen: wrote %s", *out)
	}
	if *historyPath != "" {
		if err := benchjson.AppendHistoryFile(*historyPath, rep); err != nil {
			log.Printf("loadgen: %v", err)
			os.Exit(2)
		}
		log.Printf("loadgen: appended to %s", *historyPath)
	}

	if *scrape {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		for i, c := range clients {
			s, err := c.Metrics(sctx)
			if err != nil {
				log.Printf("loadgen: vc-%d metrics: %v", i, err)
				continue
			}
			log.Printf("loadgen: vc-%d: accepted=%d bad=%d avg-vote=%v journal=%d jerr=%d",
				i, s.VotesAccepted, s.BadMessages, s.AvgVote, s.JournalRecords, s.JournalErrors)
		}
		cancel()
	}

	if res.Completed == 0 {
		log.Print("loadgen: FAIL — no operation completed")
		os.Exit(1)
	}
	if frac := float64(res.Errors) / float64(res.Scheduled); frac > *maxErrRate {
		log.Printf("loadgen: FAIL — error rate %.2f%% exceeds %.2f%%", frac*100, *maxErrRate*100)
		os.Exit(1)
	}
}
