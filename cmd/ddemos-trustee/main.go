// ddemos-trustee runs one trustee: it reads the published cast data from
// the BB nodes (majority), computes its shares of the tally opening and the
// zero-knowledge final moves, and posts them to every BB node (§III-H).
//
//	ddemos-trustee -init election/trustee-0.gob \
//	               -bb http://localhost:9100,http://localhost:9101,http://localhost:9102
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/httpapi"
	"ddemos/internal/trustee"
)

func main() {
	initPath := flag.String("init", "", "path to trustee-<i>.gob")
	bbS := flag.String("bb", "", "comma-separated BB base URLs")
	wait := flag.Duration("wait", 5*time.Second, "poll interval while cast data is unpublished")
	flag.Parse()
	if *initPath == "" || *bbS == "" {
		log.Fatal("-init and -bb are required")
	}
	init, err := httpapi.ReadTrusteeInitFile(*initPath)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trustee.New(init)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	var apis []bb.API
	var clients []*httpapi.BBClient
	for _, base := range strings.Split(*bbS, ",") {
		c := &httpapi.BBClient{BaseURL: base}
		apis = append(apis, c.API(ctx))
		clients = append(clients, c)
	}
	reader := bb.NewReader(apis)

	var post *bb.TrusteePost
	for {
		post, err = tr.ComputePost(reader)
		if err == nil {
			break
		}
		log.Printf("cast data not ready (%v); retrying in %v", err, *wait)
		time.Sleep(*wait)
	}
	for _, c := range clients {
		if err := c.SubmitTrusteePost(ctx, post); err != nil {
			log.Printf("post to %s: %v", c.BaseURL, err)
			continue
		}
		fmt.Println("posted shares to", c.BaseURL)
	}
	log.Printf("trustee %d done", init.Index)
}
