// ddemos-vc runs one Vote Collector node in a multi-process deployment:
// inter-VC traffic over TCP, the public voter endpoint over HTTP. At the
// election end time it runs vote-set consensus and pushes the agreed set
// (and its master-key share) to every BB node.
//
//	ddemos-vc -init election/vc-0.gob \
//	          -listen :7100 -peers :7100,:7101,:7102,:7103 \
//	          -http :8100 -bb http://localhost:9100,http://localhost:9101
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
	"ddemos/internal/store"
	"ddemos/internal/transport"
	"ddemos/internal/vc"
)

// openOrBuildSegments serves the -store-segments flag and the init
// payload's BallotsDir reference: open an existing segment directory, or
// materialize one from the init payload's ballot pool (a one-time streaming
// build) when the manifest is missing. A crash mid-build leaves orphaned
// ballots-*.seg files and no manifest; the rebuild clears them explicitly
// so a reboot converges on a clean store instead of mixing stale and fresh
// segments. With cacheBytes > 0 the opened store is wrapped in the
// admission-controlled LRU.
func openOrBuildSegments(dir string, init *ea.VCInit, cacheBytes int64) (store.Store, error) {
	var seg *store.Segmented
	if _, err := os.Stat(filepath.Join(dir, store.ManifestName)); err == nil {
		seg, err = store.OpenSegmented(dir)
		if err != nil {
			return nil, err
		}
		log.Printf("ballot store: %d ballots from %d segments in %s", seg.Count(), seg.Segments(), dir)
	} else {
		if len(init.Ballots) == 0 {
			return nil, fmt.Errorf("segment dir %s has no %s and the init payload carries no inline pool — "+
				"point the node at the EA-emitted segment directory (BallotsDir/-store-segments)",
				dir, store.ManifestName)
		}
		w, err := store.NewWriter(dir, store.WriterOptions{})
		if err != nil {
			// A crash mid-build leaves segment files without a manifest;
			// NewWriter refuses them so a rebuild cannot silently mix stale
			// and fresh segments. Clearing them here is safe — without a
			// manifest the directory never served anything.
			log.Printf("ballot store: %v; clearing and rebuilding", err)
			if w, err = store.NewWriter(dir, store.WriterOptions{ClearStale: true}); err != nil {
				return nil, err
			}
		}
		for _, b := range init.Ballots {
			if err := w.Append(b); err != nil {
				w.Abort()
				return nil, err
			}
		}
		seg, err = w.Finish()
		if err != nil {
			return nil, err
		}
		log.Printf("ballot store: built %d segments (%d ballots) in %s", seg.Segments(), seg.Count(), dir)
	}
	if cacheBytes <= 0 {
		return seg, nil
	}
	cached, err := store.NewCached(seg, store.CachedOptions{MaxBytes: cacheBytes})
	if err != nil {
		_ = seg.Close()
		return nil, err
	}
	log.Printf("ballot store: %d byte LRU cache (admission-controlled, single-flight)", cacheBytes)
	return cached, nil
}

func main() {
	initPath := flag.String("init", "", "path to vc-<i>.gob")
	listen := flag.String("listen", ":7100", "TCP listen address for inter-VC traffic")
	peersS := flag.String("peers", "", "comma-separated peer TCP addresses, in node-index order")
	httpAddr := flag.String("http", ":8100", "public HTTP voting endpoint")
	bbS := flag.String("bb", "", "comma-separated BB base URLs for the election-end push")
	batchWindow := flag.Duration("batch-window", 0,
		"coalesce outgoing inter-VC messages per peer for up to this window (0 disables batching)")
	batchMax := flag.Int("batch-max", 0, "max messages per batch (0 = transport default)")
	dataDir := flag.String("data-dir", "",
		"directory for durable runtime state (WAL + snapshot); the node recovers from it on startup, "+
			"so a crashed collector rejoins the election instead of staying down (empty = memory-only)")
	fsync := flag.Bool("fsync", false,
		"fsync the journal before every ack instead of on the batched group-commit cadence "+
			"(per-transition durability against power loss; requires -data-dir)")
	journalPool := flag.Int("journal-pool", 1,
		"number of journal WAL lanes (>1 shards runtime state by ballot serial with per-lane "+
			"group-commit fsync and copy-on-write snapshots — the Fig. 5a pool knob; requires -data-dir)")
	storeSegments := flag.String("store-segments", "",
		"segment directory for the ballot store (serial-range-sharded fixed-record files + manifest). "+
			"If the directory has no manifest yet it is built once, streamed from the init payload; "+
			"afterwards the node serves ballots from segments instead of holding the pool in memory — "+
			"the millions-of-ballots configuration (empty = in-memory store)")
	storeCache := flag.Int64("store-cache", 0,
		"ballot-store cache budget in bytes (e.g. 67108864 for 64MiB): wraps the segmented store with "+
			"an admission-controlled LRU with single-flight loading, so the protocol's per-ballot fan-in "+
			"costs one positional read (0 = no cache; requires -store-segments)")
	consensusEngine := flag.String("consensus", "interlocked",
		"vote-set-consensus engine: 'interlocked' (the paper's per-ballot binary consensus) or "+
			"'acs' (BKR common-subset: reliable broadcast per node + one binary agreement per "+
			"broadcaster). Every node of a deployment must run the same engine")
	journalPolicy := flag.String("journal-policy", "available",
		"journal-append-error ack policy: 'available' counts errors and keeps serving from memory, "+
			"'strict' refuses ENDORSEMENT replies and receipts whose record did not land "+
			"(the safer election-day setting; requires -data-dir, pair with -fsync for "+
			"power-loss durability of every ack)")
	flag.Parse()
	if *initPath == "" {
		log.Fatal("-init is required")
	}

	var init ea.VCInit
	if err := httpapi.ReadGobFile(*initPath, &init); err != nil {
		log.Fatal(err)
	}
	peers := map[transport.NodeID]string{}
	for i, addr := range strings.Split(*peersS, ",") {
		if i != init.Index && addr != "" {
			peers[transport.NodeID(i)] = addr //nolint:gosec // small
		}
	}
	tcp, err := transport.NewTCPNode(transport.NodeID(init.Index), *listen, peers) //nolint:gosec // small
	if err != nil {
		log.Fatal(err)
	}
	// Batching is symmetric: every node of a deployment must run the same
	// -batch-window setting (the receive path splits batches regardless, but
	// mixed settings forfeit the coalescing win).
	var ep transport.Endpoint = tcp
	if *batchWindow > 0 {
		ep = transport.NewBatcher(tcp, transport.BatcherOptions{
			Window:      *batchWindow,
			MaxMessages: *batchMax,
			// Timer flushes have no caller to return an error to; log the
			// drops or an unreachable peer is invisible.
			OnSendError: func(to transport.NodeID, err error) {
				log.Printf("batch flush to vc-%d failed: %v", to, err)
			},
		})
	}
	// Resolve the ballot store: an explicit -store-segments dir wins;
	// otherwise a segment-emitting EA handoff names its pre-built directory
	// in the init payload (relative paths resolve against the payload
	// file), and the node opens it without ever decoding a pool.
	segDir := *storeSegments
	if segDir == "" && init.BallotsDir != "" {
		segDir = init.BallotsDir
		if !filepath.IsAbs(segDir) {
			segDir = filepath.Join(filepath.Dir(*initPath), segDir)
		}
		log.Printf("ballot store: init payload references segment dir %s", segDir)
	}
	if *storeCache > 0 && segDir == "" {
		log.Fatal("-store-cache requires -store-segments (or a segment-emitting init payload)")
	}
	var ballotStore store.Store
	if segDir != "" {
		ballotStore, err = openOrBuildSegments(segDir, &init, *storeCache)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = ballotStore.Close() }()
		// The gob-decoded pool (if any) has served its purpose (segment
		// build); drop it so the process actually runs at cache-budget
		// memory — holding it would defeat the flag at the
		// millions-of-ballots scale.
		init.Ballots = nil
	}
	engine, err := vc.ParseEngine(*consensusEngine)
	if err != nil {
		log.Fatal(err)
	}
	node, err := vc.New(vc.Config{Init: &init, Endpoint: ep, Store: ballotStore, Engine: engine})
	if err != nil {
		log.Fatal(err)
	}
	policy, err := vc.ParseAckPolicy(*journalPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		jopts := vc.JournalOptions{Fsync: *fsync, Pool: *journalPool, Policy: policy}
		if err := node.RecoverWithOptions(*dataDir, jopts); err != nil {
			log.Fatalf("recovering runtime state from %s: %v", *dataDir, err)
		}
		log.Printf("recovered runtime state from %s (fsync=%v pool=%d policy=%s)",
			*dataDir, *fsync, *journalPool, policy)
	} else {
		switch {
		case *fsync:
			log.Fatal("-fsync requires -data-dir")
		case *journalPool > 1:
			log.Fatal("-journal-pool requires -data-dir")
		case policy != vc.PolicyAvailable:
			log.Fatal("-journal-policy strict requires -data-dir")
		}
	}
	node.Start()
	defer node.Stop()
	log.Printf("vc node %d: inter-VC on %s, voters on %s", init.Index, tcp.Addr(), *httpAddr)

	// Public voter endpoint.
	srv := &http.Server{Addr: *httpAddr, Handler: httpapi.VCHandler(node), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	defer func() { _ = srv.Close() }()

	// Wait for election end, then run vote-set consensus and push to BB.
	if d := time.Until(init.Manifest.VotingEnd); d > 0 {
		log.Printf("collecting votes until %s (%s)", init.Manifest.VotingEnd, d.Round(time.Second))
		time.Sleep(d)
	}
	log.Printf("election ended; running vote set consensus")
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	set, err := node.VoteSetConsensus(ctx)
	if err != nil {
		log.Fatalf("vote set consensus: %v", err)
	}
	log.Printf("agreed on %d voted ballots", len(set))

	sg := node.SignVoteSet(set)
	for _, base := range strings.Split(*bbS, ",") {
		if base == "" {
			continue
		}
		client := &httpapi.BBClient{BaseURL: base}
		if err := client.SubmitVoteSet(ctx, init.Index, set, sg); err != nil {
			log.Printf("push to %s: %v", base, err)
			continue
		}
		if err := client.SubmitMskShare(ctx, node.MskShare()); err != nil {
			log.Printf("msk share to %s: %v", base, err)
			continue
		}
		fmt.Println("pushed vote set and key share to", base)
	}
}
