// ddemos-voter casts one vote over HTTP — the complete client a voter
// needs: no keys, no crypto, just a serial, a vote code and a receipt to
// compare (§III-F). It can also verify the vote after the election.
//
//	ddemos-voter -ballots election/ballots.gob -serial 3 -part A -option yes \
//	             -vc http://localhost:8100,http://localhost:8101
//
//	ddemos-voter -verify -ballots election/ballots.gob -serial 3 \
//	             -code <hex> -part A -option yes \
//	             -bb http://localhost:9100,http://localhost:9101,http://localhost:9102
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/bb"
	"ddemos/internal/httpapi"
	"ddemos/internal/voter"
)

func main() {
	ballotsPath := flag.String("ballots", "", "path to ballots.gob (stands in for the secure ballot channel)")
	serial := flag.Uint64("serial", 0, "ballot serial number")
	partS := flag.String("part", "", "ballot part to use: A or B (empty = random)")
	option := flag.String("option", "", "option name to vote for")
	vcS := flag.String("vc", "", "comma-separated VC base URLs")
	bbS := flag.String("bb", "", "comma-separated BB base URLs (for -verify)")
	verify := flag.Bool("verify", false, "verify a previously cast vote instead of voting")
	codeS := flag.String("code", "", "previously cast vote code (hex, with -verify)")
	patience := flag.Duration("patience", 5*time.Second, "per-node receipt patience ([d]-patience)")
	flag.Parse()

	if *ballotsPath == "" || *serial == 0 {
		log.Fatal("-ballots and -serial are required")
	}
	ballots, err := httpapi.ReadBallotsFile(*ballotsPath)
	if err != nil {
		log.Fatal(err)
	}
	if *serial > uint64(len(ballots)) {
		log.Fatalf("serial %d out of range", *serial)
	}
	b := ballots[*serial-1]

	optIdx := -1
	for i, l := range b.Parts[0].Lines {
		if l.Option == *option {
			optIdx = i
		}
	}

	if *verify {
		var apis []bb.API
		for _, base := range strings.Split(*bbS, ",") {
			apis = append(apis, (&httpapi.BBClient{BaseURL: base}).API(context.Background()))
		}
		reader := bb.NewReader(apis)
		code, err := ballot.ParseCode(*codeS)
		if err != nil {
			log.Fatal(err)
		}
		part := ballot.PartA
		if strings.EqualFold(*partS, "B") {
			part = ballot.PartB
		}
		cl := &voter.Client{Ballot: b}
		res := &voter.CastResult{Serial: *serial, Part: part, OptionIndex: optIdx, Code: code}
		if err := cl.Verify(reader, res); err != nil {
			log.Fatalf("VERIFICATION FAILED: %v", err)
		}
		fmt.Println("verified: vote is in the tally set and the ballot was not tampered with")
		return
	}

	if optIdx < 0 {
		log.Fatalf("option %q not on the ballot", *option)
	}
	var services []voter.Service
	for _, base := range strings.Split(*vcS, ",") {
		services = append(services, &httpapi.VCClient{BaseURL: base})
	}
	cl := &voter.Client{Ballot: b, Services: services, Patience: *patience}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var res *voter.CastResult
	switch strings.ToUpper(*partS) {
	case "A":
		res, err = cl.CastWithPart(ctx, optIdx, ballot.PartA)
	case "B":
		res, err = cl.CastWithPart(ctx, optIdx, ballot.PartB)
	default:
		res, err = cl.Cast(ctx, optIdx)
	}
	if err != nil {
		log.Fatalf("vote failed: %v", err)
	}
	fmt.Printf("vote recorded as cast.\n  part:    %s\n  code:    %x\n  receipt: %x (matches your ballot)\n  attempts: %d\n",
		res.Part, res.Code, res.Receipt, res.Attempts)
	fmt.Println("keep the code and part for post-election verification (-verify).")
}
