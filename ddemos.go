// Package ddemos is a from-scratch Go implementation of D-DEMOS
// (Chondros et al., ICDCS 2016): a distributed, end-to-end verifiable
// internet voting system with no single point of failure after setup.
//
// The system consists of four component families:
//
//   - The Election Authority (Setup) generates ballots, keys and the
//     initialization data of every other component, then is destroyed.
//   - Vote Collectors (Nv nodes, fv < Nv/3 Byzantine) issue
//     recorded-as-cast receipts to voters without any client-side
//     cryptography, and agree on the final vote set asynchronously.
//   - Bulletin Boards (Nb isolated replicas, fb < Nb/2 Byzantine) publish
//     everything; readers trust the majority answer.
//   - Trustees (ht-of-Nt threshold) jointly open the homomorphic tally and
//     complete the zero-knowledge proofs, so that voters and third parties
//     can verify the entire election.
//
// Quick start:
//
//	data, _ := ddemos.Setup(ddemos.Params{
//	    ElectionID: "demo", Options: []string{"yes", "no"},
//	    NumBallots: 100, NumVC: 4, NumBB: 3, NumTrustees: 3,
//	    VotingStart: time.Now(), VotingEnd: time.Now().Add(time.Hour),
//	})
//	cluster, _ := ddemos.NewCluster(data, ddemos.ClusterOptions{})
//	defer cluster.Stop()
//	v := ddemos.NewVoter(data.Ballots[0], cluster.VoterServices())
//	res, _ := v.Cast(ctx, 0)                  // vote "yes", get a receipt
//	result, _ := cluster.RunPipeline(ctx)     // close polls, tally
//	report, _ := ddemos.Audit(cluster.Reader, nil)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package ddemos

import (
	"context"
	"time"

	"ddemos/internal/auditor"
	"ddemos/internal/ballot"
	"ddemos/internal/bb"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/voter"
)

// Params configures an election. See ea.Params for field documentation.
type Params = ea.Params

// ElectionData is the complete output of Setup.
type ElectionData = ea.ElectionData

// Manifest is the public election description.
type Manifest = ea.Manifest

// Ballot is a voter's two-part ballot.
type Ballot = ballot.Ballot

// AuditPackage is the delegation payload a voter hands to an auditor.
type AuditPackage = ballot.AuditPackage

// Result is the published election outcome.
type Result = bb.Result

// Report is an auditor's verification report.
type Report = auditor.Report

// CastResult records a voter's successful vote.
type CastResult = voter.CastResult

// ClusterOptions configures an in-process deployment.
type ClusterOptions = core.Options

// Cluster is an in-process deployment of the full system.
type Cluster struct {
	*core.Cluster
}

// Setup runs the Election Authority and returns all initialization data.
// After distributing the payloads, discard the ElectionData except for the
// public Manifest — the EA must be destroyed (§III-B of the paper).
func Setup(p Params) (*ElectionData, error) {
	return ea.Setup(p)
}

// NewCluster wires a complete in-process election from setup data.
func NewCluster(data *ElectionData, opts ClusterOptions) (*Cluster, error) {
	c, err := core.NewCluster(data, opts)
	if err != nil {
		return nil, err
	}
	return &Cluster{Cluster: c}, nil
}

// VoterServices returns the VC endpoints a voter client needs.
func (c *Cluster) VoterServices() []voter.Service {
	out := make([]voter.Service, len(c.VCs))
	for i, n := range c.VCs {
		out[i] = n
	}
	return out
}

// NewVoter builds a voter client for a ballot.
func NewVoter(b *Ballot, services []voter.Service) *voter.Client {
	return &voter.Client{Ballot: b, Services: services, Patience: 5 * time.Second}
}

// Audit verifies the complete election from the Bulletin Board, plus any
// delegated voter packages. The report lists every violated check.
func Audit(reader *bb.Reader, packages []*AuditPackage) (*Report, error) {
	return auditor.Audit(reader, packages)
}

// RunElection is the batteries-included helper: it sets up an election,
// casts the given votes (votes[i] is voter i's option index, -1 abstains),
// runs the full pipeline and returns the published result. Intended for
// demos and tests; real deployments drive the components individually.
func RunElection(ctx context.Context, p Params, votes []int) (*Result, *Report, error) {
	data, err := Setup(p)
	if err != nil {
		return nil, nil, err
	}
	cluster, err := NewCluster(data, ClusterOptions{})
	if err != nil {
		return nil, nil, err
	}
	defer cluster.Stop()
	services := cluster.VoterServices()
	for i, opt := range votes {
		if opt < 0 || i >= len(data.Ballots) {
			continue
		}
		v := NewVoter(data.Ballots[i], services)
		if _, err := v.Cast(ctx, opt); err != nil {
			return nil, nil, err
		}
	}
	result, err := cluster.RunPipeline(ctx)
	if err != nil {
		return nil, nil, err
	}
	report, err := Audit(cluster.Reader, nil)
	if err != nil {
		return nil, nil, err
	}
	return result, report, nil
}
