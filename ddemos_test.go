package ddemos

import (
	"context"
	"testing"
	"time"
)

func TestRunElection(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	result, report, err := RunElection(ctx, Params{
		ElectionID:  "api-test",
		Options:     []string{"yes", "no"},
		NumBallots:  5,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("api-test"),
	}, []int{0, 0, 1, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if result.Counts[0] != 3 || result.Counts[1] != 1 {
		t.Fatalf("counts = %v, want [3 1]", result.Counts)
	}
	if !report.OK() {
		t.Fatalf("audit failed: %v", report.Failures)
	}
}

func TestPublicAPIVoterFlow(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := Setup(Params{
		ElectionID:  "api-flow",
		Options:     []string{"a", "b"},
		NumBallots:  2,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("api-flow"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(data, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v := NewVoter(data.Ballots[0], cluster.VoterServices())
	res, err := v.Cast(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.RunPipeline(ctx); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(cluster.Reader, res); err != nil {
		t.Fatalf("voter verification: %v", err)
	}
	pkg, err := v.AuditPackage(res)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Audit(cluster.Reader, []*AuditPackage{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit failed: %v", report.Failures)
	}
}
