// Delegated audit: demonstrates the end-to-end verifiability mechanism of
// §III-F/§IV-C. A malicious Election Authority prints a ballot whose
// code↔option association differs from what it committed to on the Bulletin
// Board (a "modification attack": the voter believes she votes X while her
// code counts for Y). The voter cannot detect this herself at voting time —
// but she delegates her unused ballot part to an auditor, who catches the
// tampering against the opened BB commitments with probability 1/2 per
// audited ballot (the part the EA tampered with is the unused one half the
// time). With θ independent auditing voters, fraud escapes with probability
// only 2^-θ.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ddemos"
)

func main() {
	start := time.Now()
	params := ddemos.Params{
		ElectionID:  "delegated-audit-2026",
		Options:     []string{"incumbent", "challenger"},
		NumBallots:  8,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
	}
	data, err := ddemos.Setup(params)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}

	// THE ATTACK: the EA prints voter 1's ballot with the options swapped
	// on BOTH parts (the committed BB data is unchanged). Whatever the
	// voter picks, her vote counts for the opposite option.
	tampered := data.Ballots[0]
	for p := 0; p < 2; p++ {
		lines := tampered.Parts[p].Lines
		lines[0].Option, lines[1].Option = lines[1].Option, lines[0].Option
	}
	fmt.Println("malicious EA printed voter 1's ballot with swapped options on both parts")

	cluster, err := ddemos.NewCluster(data, ddemos.ClusterOptions{})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Stop()
	services := cluster.VoterServices()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Voter 1 wants "incumbent": she finds the line so labeled on her
	// printed ballot — which, thanks to the swap, carries a challenger code.
	victim := ddemos.NewVoter(tampered, services)
	wantIdx := -1
	for i, l := range tampered.Parts[0].Lines {
		if l.Option == "incumbent" {
			wantIdx = i
		}
	}
	victimRes, err := victim.Cast(ctx, wantIdx)
	if err != nil {
		log.Fatalf("victim: %v", err)
	}
	fmt.Printf("voter 1 voted the line labeled %q (receipt %x) — receipt checks out, nothing looks wrong\n",
		tampered.Parts[victimRes.Part].Lines[wantIdx].Option, victimRes.Receipt)

	// Honest voters 2-5 vote challenger, challenger, incumbent, incumbent.
	honestResults := make([]*ddemos.CastResult, 0, 4)
	for i, opt := range []int{1, 1, 0, 0} {
		v := ddemos.NewVoter(data.Ballots[i+1], services)
		res, err := v.Cast(ctx, opt)
		if err != nil {
			log.Fatalf("voter %d: %v", i+2, err)
		}
		honestResults = append(honestResults, res)
	}

	if _, err := cluster.RunPipeline(ctx); err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	result, _ := cluster.Reader.Result()
	fmt.Printf("published tally: incumbent=%d challenger=%d (voter 1's vote was flipped!)\n",
		result.Counts[0], result.Counts[1])

	// THE DEFENSE: voter 1 delegates auditing — hands over her cast code
	// and the unused ballot part. She reveals nothing about her choice.
	pkg, err := victim.AuditPackage(victimRes)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ddemos.Audit(cluster.Reader, []*ddemos.AuditPackage{pkg})
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	if report.OK() {
		log.Fatal("AUDIT MISSED THE ATTACK — this must never print")
	}
	fmt.Println("\ndelegated audit DETECTED the modification attack:")
	for _, f := range report.Failures {
		fmt.Printf("  ✗ %s\n", f)
	}

	// Contrast: an honest voter's delegated audit passes.
	honest := ddemos.NewVoter(data.Ballots[1], services)
	honestPkg, err := honest.AuditPackage(honestResults[0])
	if err != nil {
		log.Fatal(err)
	}
	cleanReport, err := ddemos.Audit(cluster.Reader, []*ddemos.AuditPackage{honestPkg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhonest voter 2's delegated audit: ok=%v\n", cleanReport.OK())
	fmt.Println("\nmoral: each auditing voter catches printed-ballot fraud with prob 1/2;")
	fmt.Println("θ auditors ⇒ fraud survives with prob 2^-θ (Theorem 3).")
}
