// Quickstart: a complete small election — setup, voting, tally, audit — on
// an in-process cluster, in under a minute of reading.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ddemos"
)

func main() {
	start := time.Now()
	params := ddemos.Params{
		ElectionID:  "quickstart-2026",
		Options:     []string{"yes", "no", "abstain-formally"},
		NumBallots:  25,
		NumVC:       4, // tolerates 1 Byzantine vote collector
		NumBB:       3, // tolerates 1 Byzantine bulletin board
		NumTrustees: 3, // any 2 honest trustees can produce the tally
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
	}

	// 1. The Election Authority generates everything, then is destroyed.
	data, err := ddemos.Setup(params)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	fmt.Printf("election %q: %d ballots, %d options\n",
		params.ElectionID, params.NumBallots, len(params.Options))

	// 2. Boot the distributed system.
	cluster, err := ddemos.NewCluster(data, ddemos.ClusterOptions{})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Stop()

	// 3. Voters cast vote codes and check receipts — no client crypto.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	votes := []int{0, 0, 0, 1, 1, 2, 0, 1, 0, 0} // first 10 voters vote
	services := cluster.VoterServices()
	var firstResult *ddemos.CastResult
	for i, opt := range votes {
		v := ddemos.NewVoter(data.Ballots[i], services)
		res, err := v.Cast(ctx, opt)
		if err != nil {
			log.Fatalf("voter %d: %v", i, err)
		}
		if firstResult == nil {
			firstResult = res
		}
		fmt.Printf("voter %2d cast part %s code %x… receipt %x (attempt %d)\n",
			i+1, res.Part, res.Code[:4], res.Receipt, res.Attempts)
	}

	// 4. Close the polls and run the full pipeline: vote-set consensus,
	// push to the bulletin boards, trustee tally.
	result, err := cluster.RunPipeline(ctx)
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	fmt.Println("\nfinal tally:")
	for i, opt := range params.Options {
		fmt.Printf("  %-18s %d\n", opt, result.Counts[i])
	}

	// 5. The first voter verifies her vote was tallied as intended.
	v := ddemos.NewVoter(data.Ballots[0], services)
	if err := v.Verify(cluster.Reader, firstResult); err != nil {
		log.Fatalf("voter verification failed: %v", err)
	}
	fmt.Println("\nvoter 1 verified: vote recorded as cast, ballot not tampered")

	// 6. Anyone can audit the complete election from the bulletin boards.
	report, err := ddemos.Audit(cluster.Reader, nil)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	if !report.OK() {
		log.Fatalf("audit FAILED: %v", report.Failures)
	}
	fmt.Printf("audit passed: %d ballots, %d proofs, %d openings checked\n",
		report.BallotsChecked, report.ProofsChecked, report.OpeningsChecked)
}
