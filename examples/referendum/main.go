// Referendum: a large-scale two-option election in the spirit of the
// paper's scalability experiments (§V): a big ballot pool served from the
// disk-backed store, hundreds of concurrent voters, end-to-end timing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ddemos"
	"ddemos/internal/ballot"
	"ddemos/internal/store"
)

func main() {
	pool := flag.Int("pool", 20000, "ballot pool size (eligible voters)")
	votes := flag.Int("votes", 4000, "ballots actually cast")
	clients := flag.Int("clients", 200, "concurrent voting clients")
	flag.Parse()

	start := time.Now()
	params := ddemos.Params{
		ElectionID:  "referendum-2026",
		Options:     []string{"approve", "reject"},
		NumBallots:  *pool,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(24 * time.Hour),
		VCOnly:      true, // vote-collection study: no tally crypto needed
	}
	fmt.Printf("generating %d ballots… ", *pool)
	t0 := time.Now()
	data, err := ddemos.Setup(params)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	fmt.Printf("done in %v\n", time.Since(t0).Round(time.Millisecond))

	// Disk-backed ballot stores, one file per VC node (the paper's
	// PostgreSQL role).
	dir, err := os.MkdirTemp("", "referendum")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	stores := make(map[int]store.Store, params.NumVC)
	for i := 0; i < params.NumVC; i++ {
		ds, err := store.CreateDisk(filepath.Join(dir, fmt.Sprintf("vc%d.store", i)), data.VC[i].Ballots)
		if err != nil {
			log.Fatalf("store %d: %v", i, err)
		}
		stores[i] = ds
	}

	cluster, err := ddemos.NewCluster(data, ddemos.ClusterOptions{Stores: stores})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Stop()

	// Concurrent voters, paper-style: each thread grabs the next unvoted
	// ballot, picks a random part/option/VC node, submits, awaits receipt.
	fmt.Printf("casting %d ballots with %d concurrent clients…\n", *votes, *clients)
	var next, errs atomic.Uint64
	var latSum atomic.Int64
	var wg sync.WaitGroup
	wall := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 42))
			for {
				serial := next.Add(1)
				if serial > uint64(*votes) {
					return
				}
				b := data.Ballots[serial-1]
				part := ballot.PartID(rng.IntN(2))
				code, err := b.CodeFor(part, rng.IntN(2))
				if err != nil {
					errs.Add(1)
					continue
				}
				node := cluster.VCs[rng.IntN(len(cluster.VCs))]
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				t := time.Now()
				_, err = node.SubmitVote(ctx, serial, code)
				cancel()
				if err != nil {
					errs.Add(1)
					continue
				}
				latSum.Add(int64(time.Since(t)))
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(wall)
	ok := int64(*votes) - int64(errs.Load())
	fmt.Printf("collected %d receipts in %v — %.1f votes/sec, avg latency %v, %d errors\n",
		ok, elapsed.Round(time.Millisecond), float64(ok)/elapsed.Seconds(),
		(time.Duration(latSum.Load() / max(ok, 1))).Round(time.Microsecond), errs.Load())

	// Close polls: all VC nodes agree on the final vote set.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	sets, err := cluster.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		log.Fatalf("vote set consensus: %v", err)
	}
	for i, set := range sets {
		fmt.Printf("VC node %d agreed on %d voted ballots\n", i, len(set))
		break // all identical by agreement
	}
	fmt.Printf("phases: %v\n", cluster.Phases())
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
