// WAN + faults: an election across simulated wide-area links (25 ms
// inter-VC latency, the paper's netem setup) while every subsystem runs at
// its Byzantine fault threshold simultaneously:
//
//   - 7 vote collectors: 1 crashed + 1 sending corrupt shares (fv=2),
//   - 3 bulletin boards: 1 lying to readers (fb=1),
//   - 3 trustees: 1 posting garbage shares (ht=2).
//
// The election must still complete, produce the right tally and pass a full
// audit — the no-single-point-of-failure claim, exercised.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ddemos"
	"ddemos/internal/transport"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
)

func main() {
	start := time.Now()
	params := ddemos.Params{
		ElectionID:  "wan-faults-2026",
		Options:     []string{"north", "south", "east", "west"},
		NumBallots:  40,
		NumVC:       7,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
	}
	data, err := ddemos.Setup(params)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}

	wan := transport.WANProfile
	cluster, err := ddemos.NewCluster(data, ddemos.ClusterOptions{
		LinkProfile:       &wan,
		VCByzantine:       map[int]vc.Byzantine{5: vc.ShareCorruptor},
		LyingBB:           map[int]bool{2: true},
		ByzantineTrustees: map[int]trustee.Byzantine{1: trustee.GarbageShares},
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Stop()
	cluster.CrashVC(6)
	fmt.Println("cluster: 7 VC (1 crashed, 1 Byzantine), 3 BB (1 lying), 3 trustees (1 Byzantine)")
	fmt.Println("network: 25ms WAN links between vote collectors")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	services := cluster.VoterServices()[:5] // voters know a subset of nodes
	votes := []int{0, 1, 2, 3, 0, 1, 0, 0, 2, 0}
	for i, opt := range votes {
		v := ddemos.NewVoter(data.Ballots[i], services)
		v.Patience = 3 * time.Second // [d]-patience: retry elsewhere on timeout
		res, err := v.Cast(ctx, opt)
		if err != nil {
			log.Fatalf("voter %d: %v", i, err)
		}
		fmt.Printf("voter %2d: receipt %x after %d attempt(s), latency includes WAN hops\n",
			i+1, res.Receipt, res.Attempts)
	}

	// The crashed node stays down through the tally: skip it in consensus.
	sets, err := cluster.RunVoteSetConsensus(ctx, map[int]bool{6: true})
	if err != nil {
		log.Fatalf("vote set consensus: %v", err)
	}
	if err := cluster.PushToBB(sets); err != nil {
		log.Fatalf("push: %v", err)
	}
	if err := cluster.RunTrustees(); err != nil {
		log.Fatalf("trustees: %v", err)
	}
	result, err := cluster.Reader.Result()
	if err != nil {
		log.Fatalf("result: %v", err)
	}
	fmt.Println("\ntally (read by majority, immune to the lying BB node):")
	for i, opt := range params.Options {
		fmt.Printf("  %-8s %d\n", opt, result.Counts[i])
	}

	report, err := ddemos.Audit(cluster.Reader, nil)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	if !report.OK() {
		log.Fatalf("audit FAILED: %v", report.Failures)
	}
	fmt.Printf("\naudit passed despite all injected faults (%d proofs checked)\n", report.ProofsChecked)
	fmt.Printf("phases: %v\n", cluster.Phases())
}
