module ddemos

go 1.22
