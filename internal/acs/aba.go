package acs

import (
	"ddemos/internal/clock"
	"ddemos/internal/wire"
)

// maxRoundAhead bounds how far ahead of our current round we accept
// messages, limiting memory a Byzantine flooder can consume.
const maxRoundAhead = 8

// abaInstance is one broadcaster's binary-agreement instance: the MMR
// protocol of internal/consensus with late-binding input and an explicit
// per-round COIN exchange. Round 0 is unused; an instance without input yet
// sits at round 0 and buffers (bounded) early-round traffic.
type abaInstance struct {
	hasInput   bool
	round      uint16
	est        byte
	decided    bool
	halted     bool
	value      byte
	decideSent bool
	decideFrom uint64
	decideRecv [2]uint64
	rounds     map[uint16]*roundState
}

type roundState struct {
	bvalRecv    [2]uint64 // sender bitmasks per value
	bvalSent    [2]bool
	binValues   [2]bool
	auxFrom     uint64
	auxRecv     [2]uint64
	auxSent     bool
	coinFrom    uint64 // senders whose COIN reveal arrived
	coinSent    bool
	coinExpired bool // fallback timer fired; complete without f+1 reveals
	coinTimer   clock.Timer
}

func newABAInstance() *abaInstance {
	return &abaInstance{rounds: make(map[uint16]*roundState, 2)}
}

func (i *abaInstance) getRound(r uint16) *roundState {
	if i.rounds == nil {
		i.rounds = make(map[uint16]*roundState, 2)
	}
	rs, ok := i.rounds[r]
	if !ok {
		rs = &roundState{}
		i.rounds[r] = rs
	}
	return rs
}

// provideInput starts an instance: 1 when its broadcaster's payload
// delivered, 0 by the BKR completion rule. Later inputs are ignored.
func (e *Engine) provideInput(idx uint32, v byte) {
	inst := e.inst[idx]
	if inst.hasInput || inst.halted || inst.decided {
		return
	}
	inst.hasInput = true
	inst.est = v
	e.startRound(idx, inst, 1)
}

func (e *Engine) onABA(from uint16, m *wire.ABA) {
	for gi := range m.Groups {
		g := &m.Groups[gi]
		if g.Value > 1 {
			continue
		}
		for _, idx := range g.Instances {
			if int(idx) >= e.n {
				continue
			}
			e.deliverABA(from, idx, g.Step, g.Round, g.Value)
		}
	}
}

func (e *Engine) deliverABA(from uint16, idx uint32, step uint8, round uint16, value byte) {
	inst := e.inst[idx]
	if inst.halted {
		return
	}
	switch step {
	case wire.ABAStepEst:
		e.onEst(from, idx, inst, round, value)
	case wire.ABAStepAux:
		e.onAux(from, idx, inst, round, value)
	case wire.ABAStepCoin:
		e.onCoin(from, idx, inst, round)
	case wire.ABAStepDecide:
		e.onDecide(from, idx, inst, value)
	}
}

func (e *Engine) startRound(idx uint32, inst *abaInstance, round uint16) {
	inst.round = round
	r := inst.getRound(round)
	if !r.bvalSent[inst.est] {
		r.bvalSent[inst.est] = true
		e.sendABA(idx, wire.ABAStepEst, round, inst.est)
	}
	// Messages for this round may have arrived while the instance was
	// inputless or in an earlier round; thresholds could already hold.
	e.progressRound(idx, inst, round)
}

func (e *Engine) onEst(from uint16, idx uint32, inst *abaInstance, round uint16, v byte) {
	if round == 0 || round > inst.round+maxRoundAhead {
		return
	}
	r := inst.getRound(round)
	bit := uint64(1) << from
	if r.bvalRecv[v]&bit != 0 {
		return
	}
	r.bvalRecv[v] |= bit
	cnt := popcount(r.bvalRecv[v])
	// Relay after f+1 distinct ESTs (so honest values propagate), add to
	// bin_values after 2f+1.
	if cnt >= e.f+1 && !r.bvalSent[v] {
		r.bvalSent[v] = true
		e.sendABA(idx, wire.ABAStepEst, round, v)
	}
	if cnt >= 2*e.f+1 && !r.binValues[v] {
		r.binValues[v] = true
		e.progressRound(idx, inst, round)
	}
}

func (e *Engine) onAux(from uint16, idx uint32, inst *abaInstance, round uint16, v byte) {
	if round == 0 || round > inst.round+maxRoundAhead {
		return
	}
	r := inst.getRound(round)
	bit := uint64(1) << from
	if r.auxFrom&bit != 0 {
		return // one AUX per sender per round
	}
	r.auxFrom |= bit
	r.auxRecv[v] |= bit
	e.progressRound(idx, inst, round)
}

func (e *Engine) onCoin(from uint16, idx uint32, inst *abaInstance, round uint16) {
	if round == 0 || round > inst.round+maxRoundAhead {
		return
	}
	r := inst.getRound(round)
	bit := uint64(1) << from
	if r.coinFrom&bit != 0 {
		return
	}
	r.coinFrom |= bit
	e.progressRound(idx, inst, round)
}

// progressRound advances an instance's current round through its three
// gates: bin_values non-empty triggers the AUX broadcast; n-f covered AUXes
// trigger the COIN reveal; f+1 reveals (or the fallback) complete the round.
func (e *Engine) progressRound(idx uint32, inst *abaInstance, round uint16) {
	if inst.halted || !inst.hasInput || round != inst.round {
		return
	}
	r := inst.getRound(round)
	if !r.auxSent {
		w := byte(255)
		switch {
		case r.binValues[inst.est]:
			w = inst.est // prefer own estimate when certified
		case r.binValues[0]:
			w = 0
		case r.binValues[1]:
			w = 1
		}
		if w != 255 {
			r.auxSent = true
			e.sendABA(idx, wire.ABAStepAux, round, w)
			// Self-delivery may have cascaded the instance past this round.
			if inst.halted || round != inst.round {
				return
			}
		}
	}
	if !r.auxSent {
		return
	}
	// Count AUX messages whose value is in bin_values.
	var covered uint64
	vals := [2]bool{}
	for v := byte(0); v <= 1; v++ {
		if r.binValues[v] && r.auxRecv[v] != 0 {
			covered |= r.auxRecv[v]
			vals[v] = true
		}
	}
	if popcount(covered) < e.n-e.f {
		return
	}
	c := e.coin.Flip(idx, round)
	if !r.coinSent {
		r.coinSent = true
		e.sendABA(idx, wire.ABAStepCoin, round, c)
		// Self-delivery above may have cascaded the instance past this
		// round; do not complete it twice from a stale frame.
		if inst.halted || round != inst.round {
			return
		}
		// Arm the fallback so a round never hangs on reveals lost to the
		// network: the flip value is locally computable regardless.
		r.coinTimer = clock.AfterFunc(e.clk, coinFallback, func() {
			e.mu.Lock()
			if !inst.halted && !r.coinExpired {
				r.coinExpired = true
				e.progressRound(idx, inst, round)
			}
			frames := e.drainLocked()
			e.mu.Unlock()
			e.emit(frames)
		})
	}
	if popcount(r.coinFrom) < e.f+1 && !r.coinExpired {
		return
	}
	if r.coinTimer != nil {
		r.coinTimer.Stop()
		r.coinTimer = nil
	}
	// Round completes.
	switch {
	case vals[0] != vals[1]: // single value v
		var v byte
		if vals[1] {
			v = 1
		}
		inst.est = v
		if v == c && !inst.decided {
			e.decide(idx, inst, v)
		}
	default: // both values seen
		inst.est = c
	}
	if inst.halted {
		return
	}
	delete(inst.rounds, round-1)
	e.startRound(idx, inst, round+1)
}

func (e *Engine) decide(idx uint32, inst *abaInstance, v byte) {
	if inst.decided {
		return
	}
	inst.decided = true
	inst.value = v
	e.pending--
	if v == 1 {
		e.ones++
	}
	if !inst.decideSent {
		inst.decideSent = true
		e.sendABA(idx, wire.ABAStepDecide, 0, v)
	}
	// BKR completion rule: once n-f instances carry the subset, input 0 to
	// every instance still waiting on a broadcast that may never arrive.
	if e.ones >= e.n-e.f && !e.filled {
		e.filled = true
		for i, other := range e.inst {
			if !other.hasInput {
				e.provideInput(uint32(i), 0) //nolint:gosec // i < n <= 64
			}
		}
	}
	e.checkOutput()
}

func (e *Engine) onDecide(from uint16, idx uint32, inst *abaInstance, v byte) {
	bit := uint64(1) << from
	if inst.decideFrom&bit != 0 {
		return
	}
	inst.decideFrom |= bit
	inst.decideRecv[v] |= bit
	cnt := popcount(inst.decideRecv[v])
	// f+1 DECIDEs contain one from an honest decider: safe to adopt.
	if cnt >= e.f+1 && !inst.decided {
		e.decide(idx, inst, v)
	}
	// 2f+1 DECIDEs mean every honest node will eventually decide without
	// our help: halt the instance.
	if cnt >= 2*e.f+1 {
		inst.halted = true
		for _, r := range inst.rounds {
			if r.coinTimer != nil {
				r.coinTimer.Stop()
				r.coinTimer = nil
			}
		}
		inst.rounds = nil
	}
}
