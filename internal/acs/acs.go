// Package acs implements the BKR Agreement-on-Common-Subset vote-set
// consensus engine (Ben-Or–Kelmer–Rabin, the HoneyBadger/BEAT lineage): each
// node reliably broadcasts its candidate vote set with a Bracha-style
// broadcast, one asynchronous binary-agreement instance per broadcaster
// decides whether that broadcast is in the common subset, and the agreed
// vote set is the union of the certified entries of every proposal whose
// instance decided 1.
//
// The engine is an alternative to the paper's interlocked per-ballot
// protocol (internal/consensus): instead of one binary consensus per ballot
// seeded by ANNOUNCE dispersal, it runs one reliable broadcast + one binary
// agreement per *node*. The engine-agnostic recovery layer in internal/vc
// (ANNOUNCE echo, VSC-FINAL adoption, RECOVER for missing codes, journaled
// result) is unchanged; this package only decides the set.
//
// The binary agreement is the same Mostéfaoui–Moumen–Raynal protocol the
// interlocked engine batches, with two additions: a COIN message exchange
// per round — nodes reveal their deterministic hash-coin flip and wait for
// f+1 reveals (or a clock fallback) before completing the round, standing in
// for the share exchange of a threshold-signature common coin (see DESIGN.md
// for the substitution and its trust caveat) — and late-binding inputs: an
// instance receives input 1 when its broadcaster's payload delivers, and 0
// once n-f instances have decided 1 (the BKR completion rule).
package acs

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"ddemos/internal/clock"
	"ddemos/internal/consensus"
	"ddemos/internal/wire"
)

// coinFallback bounds how long a round waits for f+1 COIN reveals before
// completing with the locally computed flip. The deterministic hash coin
// makes the reveal exchange informational (every honest node computes the
// same value), so falling back cannot diverge honest nodes — it only drops
// the "heard from an honest coin holder" pacing a real threshold coin gives.
const coinFallback = 500 * time.Millisecond

// Config wires an Engine into the host node.
type Config struct {
	N, F    int    // cluster size and fault bound, n > 3f, n <= 64
	Self    uint16 // this node's index in [0, n)
	Ballots uint32 // ballot pool size; decisions index serial-1

	Coin  consensus.Coin // shared deterministic coin
	Clock clock.Clock    // timer domain for the coin fallback

	// Send multicasts an encoded frame to the other n-1 nodes. It must not
	// call back into the engine.
	Send func(frame []byte)

	// Validate reports whether an announce entry carries a well-formed
	// uniqueness certificate for an in-range ballot. It must be a pure
	// function of the entry (no node-local state): every honest node filters
	// a delivered proposal identically, so the union below is identical too.
	Validate func(entry *wire.AnnounceEntry) bool

	// Adopt installs a validated certified code into the host node (and its
	// journal) so the final set can be assembled locally. Optional.
	Adopt func(entry *wire.AnnounceEntry) bool
}

// Engine is one election's ACS run. Feed inbound frames via Handle, start
// with Start, await Results. All exported methods are safe for concurrent
// use; reliable-broadcast traffic is processed from construction onward, so
// an engine installed before its Start still counts peers that raced ahead.
type Engine struct {
	n, f    int
	self    uint16
	ballots uint32
	coin    consensus.Coin
	clk     clock.Clock
	send    func([]byte)
	valid   func(*wire.AnnounceEntry) bool
	adopt   func(*wire.AnnounceEntry) bool

	mu       sync.Mutex
	started  bool
	rbc      []*rbcState
	inst     []*abaInstance
	pending  int
	ones     int // instances decided 1
	filled   bool
	flushBuf map[groupKey][]uint32
	outBox   [][]byte
	ready    chan struct{}
	closed   bool
}

type groupKey struct {
	step  uint8
	round uint16
	value uint8
}

// New builds an engine for n nodes tolerating f faults.
func New(cfg Config) (*Engine, error) {
	if cfg.N <= 3*cfg.F {
		return nil, fmt.Errorf("acs: n=%d does not tolerate f=%d (need n > 3f)", cfg.N, cfg.F)
	}
	if int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("acs: self=%d out of range", cfg.Self)
	}
	if cfg.N > 64 {
		return nil, errors.New("acs: at most 64 nodes supported (bitmask sender sets)")
	}
	if cfg.Send == nil || cfg.Coin == nil {
		return nil, errors.New("acs: Send and Coin are required")
	}
	valid := cfg.Validate
	if valid == nil {
		valid = func(*wire.AnnounceEntry) bool { return true }
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	e := &Engine{
		n: cfg.N, f: cfg.F, self: cfg.Self, ballots: cfg.Ballots,
		coin: cfg.Coin, clk: clk, send: cfg.Send,
		valid: valid, adopt: cfg.Adopt,
		rbc:      make([]*rbcState, cfg.N),
		inst:     make([]*abaInstance, cfg.N),
		pending:  cfg.N,
		flushBuf: make(map[groupKey][]uint32),
		ready:    make(chan struct{}),
	}
	for i := range e.rbc {
		e.rbc[i] = newRBCState()
		e.inst[i] = newABAInstance()
	}
	return e, nil
}

// Start reliably broadcasts this node's proposal. The per-ballot inputs
// vector of the interlocked engine is unused here: ACS inputs bind per
// broadcaster, 1 on payload delivery and 0 by the completion rule.
func (e *Engine) Start(proposal []wire.AnnounceEntry, _ []byte) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("acs: already started")
	}
	e.started = true
	// The broadcaster's own ECHO doubles as the Bracha SEND step; peers
	// receiving it echo the full payload onward.
	e.deliverFrame(&wire.RBCEcho{Sender: e.self, Broadcaster: e.self, Entries: proposal})
	frames := e.drainLocked()
	e.mu.Unlock()
	e.emit(frames)
	return nil
}

// Handle processes one inbound engine frame from peer `from`. Non-engine
// messages are ignored.
func (e *Engine) Handle(from uint16, msg wire.Message) {
	if int(from) >= e.n {
		return
	}
	e.mu.Lock()
	switch m := msg.(type) {
	case *wire.RBCEcho:
		if m.Sender == from {
			e.onEcho(from, m)
		}
	case *wire.RBCReady:
		if m.Sender == from {
			e.onReady(from, m)
		}
	case *wire.ABA:
		if m.Sender == from {
			e.onABA(from, m)
		}
	}
	frames := e.drainLocked()
	e.mu.Unlock()
	e.emit(frames)
}

// Results blocks until the common subset is agreed and every decided-1
// proposal has delivered, then returns the per-ballot decision vector: 1 for
// every ballot some agreed proposal certifies.
func (e *Engine) Results(ctx context.Context) ([]byte, error) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, fmt.Errorf("acs: awaiting common subset: %w", ctx.Err())
	}
	decisions := make([]byte, e.ballots)
	e.mu.Lock()
	for i, inst := range e.inst {
		if inst.value != 1 {
			continue
		}
		for j := range e.rbc[i].validated {
			// The production Validate predicate range-checks serials; guard
			// here too so a permissive one cannot index out of the pool.
			if s := e.rbc[i].validated[j].Serial; s >= 1 && s <= uint64(e.ballots) {
				decisions[s-1] = 1
			}
		}
	}
	e.mu.Unlock()
	return decisions, nil
}

// Decided returns how many agreement instances have decided so far.
func (e *Engine) Decided() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n - e.pending
}

// --- reliable broadcast -----------------------------------------------------

type rbcState struct {
	echoSent  bool
	readySent bool
	delivered bool
	echoes    map[[32]byte]*payloadTally
	readies   map[[32]byte]uint64
	validated []wire.AnnounceEntry
}

type payloadTally struct {
	senders uint64
	entries []wire.AnnounceEntry
}

func newRBCState() *rbcState {
	return &rbcState{
		echoes:  make(map[[32]byte]*payloadTally, 1),
		readies: make(map[[32]byte]uint64, 1),
	}
}

// payloadHash binds a proposal payload to its broadcaster. It reuses the
// canonical wire encoding so byte-identical frames hash identically.
func payloadHash(broadcaster uint16, entries []wire.AnnounceEntry) [32]byte {
	return sha256.Sum256(wire.Encode(&wire.RBCEcho{Broadcaster: broadcaster, Entries: entries}))
}

func (e *Engine) onEcho(from uint16, m *wire.RBCEcho) {
	if int(m.Broadcaster) >= e.n {
		return
	}
	st := e.rbc[m.Broadcaster]
	if st.delivered {
		return
	}
	h := payloadHash(m.Broadcaster, m.Entries)
	t := st.echoes[h]
	if t == nil {
		t = &payloadTally{entries: m.Entries}
		st.echoes[h] = t
	}
	bit := uint64(1) << from
	if t.senders&bit != 0 {
		return
	}
	t.senders |= bit
	// The broadcaster's own ECHO is the SEND step: echo the payload onward
	// exactly once per broadcaster.
	if from == m.Broadcaster && !st.echoSent {
		st.echoSent = true
		e.deliverFrame(&wire.RBCEcho{Sender: e.self, Broadcaster: m.Broadcaster, Entries: m.Entries})
	}
	if popcount(t.senders) >= e.n-e.f && !st.readySent {
		st.readySent = true
		e.deliverFrame(&wire.RBCReady{Sender: e.self, Broadcaster: m.Broadcaster, Hash: h[:]})
	}
	// A READY quorum may have formed before the payload arrived.
	e.maybeDeliver(m.Broadcaster, st, h)
}

func (e *Engine) onReady(from uint16, m *wire.RBCReady) {
	if int(m.Broadcaster) >= e.n || len(m.Hash) != 32 {
		return
	}
	st := e.rbc[m.Broadcaster]
	if st.delivered {
		return
	}
	var h [32]byte
	copy(h[:], m.Hash)
	bit := uint64(1) << from
	if st.readies[h]&bit != 0 {
		return
	}
	st.readies[h] |= bit
	// f+1 READYs contain an honest one: amplify (without needing the
	// payload), which gives Bracha totality.
	if popcount(st.readies[h]) >= e.f+1 && !st.readySent {
		st.readySent = true
		e.deliverFrame(&wire.RBCReady{Sender: e.self, Broadcaster: m.Broadcaster, Hash: h[:]})
	}
	e.maybeDeliver(m.Broadcaster, st, h)
}

// maybeDeliver completes the broadcast once 2f+1 READYs agree on a hash
// whose payload we hold.
func (e *Engine) maybeDeliver(b uint16, st *rbcState, h [32]byte) {
	if st.delivered || popcount(st.readies[h]) < 2*e.f+1 {
		return
	}
	t := st.echoes[h]
	if t == nil {
		return // payload not yet seen; a later ECHO completes it
	}
	st.delivered = true
	st.validated = st.validated[:0]
	for i := range t.entries {
		entry := &t.entries[i]
		if !e.valid(entry) {
			continue // deterministic filter: every honest node drops it
		}
		st.validated = append(st.validated, *entry)
		if e.adopt != nil {
			e.adopt(entry)
		}
	}
	st.echoes, st.readies = nil, nil
	e.provideInput(uint32(b), 1)
	e.checkOutput()
}

// --- plumbing ---------------------------------------------------------------

// deliverFrame queues a frame for multicast and self-delivers it: the node
// is one of the n parties and must process its own broadcasts.
func (e *Engine) deliverFrame(msg wire.Message) {
	e.outBox = append(e.outBox, wire.Encode(msg))
	switch m := msg.(type) {
	case *wire.RBCEcho:
		e.onEcho(e.self, m)
	case *wire.RBCReady:
		e.onReady(e.self, m)
	}
}

// sendABA queues one per-instance agreement message for the next flush and
// self-delivers it.
func (e *Engine) sendABA(idx uint32, step uint8, round uint16, value byte) {
	k := groupKey{step: step, round: round, value: value}
	e.flushBuf[k] = append(e.flushBuf[k], idx)
	e.deliverABA(e.self, idx, step, round, value)
}

// drainLocked flushes batched agreement traffic and the outbox into the
// frame list to emit after the lock is released.
func (e *Engine) drainLocked() [][]byte {
	if len(e.flushBuf) != 0 {
		msg := &wire.ABA{Sender: e.self, Groups: make([]wire.ABAGroup, 0, len(e.flushBuf))}
		for k, idxs := range e.flushBuf {
			msg.Groups = append(msg.Groups, wire.ABAGroup{
				Step: k.step, Round: k.round, Value: k.value, Instances: idxs,
			})
		}
		e.flushBuf = make(map[groupKey][]uint32)
		e.outBox = append(e.outBox, wire.Encode(msg))
	}
	out := e.outBox
	e.outBox = nil
	return out
}

func (e *Engine) emit(frames [][]byte) {
	for _, f := range frames {
		e.send(f)
	}
}

// checkOutput closes the ready channel once every instance has decided and
// every decided-1 broadcaster has delivered its payload (RBC totality
// guarantees delivery: a 1-decision implies an honest node input 1, which
// implies it delivered).
func (e *Engine) checkOutput() {
	if e.closed || e.pending != 0 {
		return
	}
	for i, inst := range e.inst {
		if inst.value == 1 && !e.rbc[i].delivered {
			return
		}
	}
	e.closed = true
	close(e.ready)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
