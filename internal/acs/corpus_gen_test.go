package acs

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenerateFuzzCorpus rewrites the checked-in FuzzABAReplay seed
// corpus under testdata/fuzz — interleaving schedules, not wire frames:
// each byte picks a queued delivery (with a duplicate bit) or fires the
// coin fallback (0xFF). Guarded by an env var so normal test runs never
// touch the tree:
//
//	DDEMOS_REGEN_CORPUS=1 go test ./internal/acs -run TestRegenerateFuzzCorpus
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("DDEMOS_REGEN_CORPUS") == "" {
		t.Skip("set DDEMOS_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	write := func(name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", "FuzzABAReplay")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("seed-empty", []byte{})                                  // pure drain-phase run
	write("seed-fifo", []byte{0, 0, 0, 0, 0, 0, 0, 0})             // in-order head delivery
	write("seed-lifo", bytes.Repeat([]byte{0x3F}, 32))             // tail-biased reordering
	write("seed-duplicates", bytes.Repeat([]byte{0x45, 0x80}, 16)) // heavy duplication bits
	write("seed-fallbacks", []byte{0xFF, 0x00, 0xFF, 0x01, 0xFF})  // coin fallback pressure
	write("seed-mixed", bytes.Repeat([]byte{0x45, 0x80, 0xFF, 0x13}, 16))
}
