package acs

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ddemos/internal/clock"
	"ddemos/internal/consensus"
	"ddemos/internal/wire"
)

// replayNodes is the fuzz cluster shape: n=4, f=1 — the smallest
// configuration with a real quorum structure (n−f=3, f+1=2).
const replayNodes, replayFaults = 4, 1

// buildReplayEngines wires four engines over an in-memory queue of
// (from, to, frame) deliveries. Send fans each frame out to the other
// three; self-delivery happens inside the engine.
func buildReplayEngines(t *testing.T, queue *[]replayDelivery) []*Engine {
	t.Helper()
	engines := make([]*Engine, replayNodes)
	clk := clock.NewFake(time.Unix(0, 0))
	for i := range engines {
		self := uint16(i)
		e, err := New(Config{
			N: replayNodes, F: replayFaults, Self: self, Ballots: replayNodes,
			Coin:  consensus.NewHashCoin([]byte("fuzz-aba-replay")),
			Clock: clk,
			Send: func(frame []byte) {
				for to := uint16(0); to < replayNodes; to++ {
					if to != self {
						*queue = append(*queue, replayDelivery{from: self, to: to, frame: frame})
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	// Distinct overlapping proposals: node i certifies serials 1..i+1, so
	// the union depends on which broadcasts land in the common subset.
	for i, e := range engines {
		var proposal []wire.AnnounceEntry
		for s := uint64(1); s <= uint64(i+1); s++ {
			proposal = append(proposal, wire.AnnounceEntry{Serial: s, Code: []byte{byte(s)}})
		}
		if err := e.Start(proposal, nil); err != nil {
			t.Fatal(err)
		}
	}
	return engines
}

type replayDelivery struct {
	from, to uint16
	frame    []byte
}

// fakeOf extracts the shared fake clock (all engines were built on one).
func fakeOf(engines []*Engine) *clock.Fake { return engines[0].clk.(*clock.Fake) }

// FuzzABAReplay replays one honest four-node ACS run under a fuzz-chosen
// message interleaving: each input byte either delivers a queued frame
// (position and a duplicate bit taken from the byte) or fires the
// coin-fallback timers by advancing the fake clock. Channels are reliable —
// frames are reordered and duplicated, never dropped — so the run must
// terminate: after the schedule, draining the queue (with fallback
// advances for rounds stuck waiting on COIN reveals) must bring every
// engine to a fully decided, closed state within a bounded step count, with
// no instance double-decided (decision counters consistent) and all four
// engines agreeing on the identical decision vector.
func FuzzABAReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x45, 0x80, 0xFF, 0x13}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		var queue []replayDelivery
		engines := buildReplayEngines(t, &queue)
		clk := fakeOf(engines)

		deliver := func(pick, flags byte) {
			if len(queue) == 0 {
				return
			}
			i := int(pick) % len(queue)
			d := queue[i]
			if flags&0x40 == 0 { // consume; a set bit re-delivers (duplication)
				queue[i] = queue[len(queue)-1]
				queue = queue[:len(queue)-1]
			}
			msg, err := wire.Decode(d.frame)
			if err != nil {
				t.Fatalf("engine %d emitted a malformed frame: %v", d.from, err)
			}
			engines[d.to].Handle(d.from, msg)
		}

		// Fuzz-scheduled phase: the input bytes pick the interleaving.
		for _, b := range data {
			if b == 0xFF {
				clk.Advance(coinFallback)
				continue
			}
			deliver(b&0x3F, b)
		}

		// Drain phase: FIFO-deliver everything still in flight; when the
		// queue runs dry without all engines done, fire the coin fallbacks.
		// 10k steps is far beyond any legal run at this size.
		done := func() bool {
			for _, e := range engines {
				e.mu.Lock()
				ok := e.pending == 0 && e.closed
				e.mu.Unlock()
				if !ok {
					return false
				}
			}
			return true
		}
		for steps := 0; !done(); steps++ {
			if steps > 10000 {
				t.Fatalf("replay hung: %d frames queued, decided %d/%d/%d/%d",
					len(queue), engines[0].Decided(), engines[1].Decided(),
					engines[2].Decided(), engines[3].Decided())
			}
			if len(queue) == 0 {
				clk.Advance(coinFallback)
				continue
			}
			deliver(0, 0)
		}

		// Terminal invariants: every instance decided exactly once (the
		// counters decide() maintains must match a fresh recount), and all
		// engines return the identical decision vector.
		var want []byte
		for i, e := range engines {
			e.mu.Lock()
			ones := 0
			for idx, inst := range e.inst {
				if !inst.decided {
					e.mu.Unlock()
					t.Fatalf("engine %d: instance %d not decided after close", i, idx)
				}
				if inst.value == 1 {
					ones++
				}
			}
			if e.ones != ones || e.pending != 0 {
				e.mu.Unlock()
				t.Fatalf("engine %d: decision counters corrupt (ones=%d recount=%d pending=%d) — double decide?",
					i, e.ones, ones, e.pending)
			}
			e.mu.Unlock()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			got, err := e.Results(ctx)
			cancel()
			if err != nil {
				t.Fatalf("engine %d: results after close: %v", i, err)
			}
			if i == 0 {
				want = got
			} else if !bytes.Equal(got, want) {
				t.Fatalf("engine %d decided %x, engine 0 decided %x", i, got, want)
			}
		}
	})
}
