// Package auditor implements the election auditors of §III-I: any party can
// read the Bulletin Board (by majority) and verify the complete election,
// and voters can delegate their private checks without revealing their
// choices. The checks map one-to-one onto the paper's list:
//
//	(a) within each opened ballot, no two vote codes are equal;
//	(b) no ballot part has more than MaxSelections submitted vote codes;
//	(c) within each ballot, at most one part was used;
//	(d) all published commitment openings are valid unit vectors;
//	(e) all ZK proofs on used ballot parts are complete and valid under the
//	    voter-coin challenge;
//	(f) delegated: submitted vote codes match what the voters report;
//	(g) delegated: the opened unused parts match the voters' ballot copies.
//
// Plus the global checks that make the tally end-to-end verifiable: the
// published counts open the homomorphic sum of exactly the cast
// commitments, and the challenge coins are consistent with the cast codes.
//
// The expensive checks — (d) and (e) — run in parallel across rows, and
// (d) uses the batched random-linear-combination opening check; failure
// messages are still reported in deterministic board order.
package auditor

import (
	"fmt"
	"math/big"

	"ddemos/internal/ballot"
	"ddemos/internal/bb"
	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/votecode"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/ea"
	"ddemos/internal/parallel"
	"ddemos/internal/voter"
)

// auditBatchChunk is the number of openings per batched verification; the
// multi-scalar multiplication behind the batch check only wins past a few
// hundred terms, so chunks are large.
const auditBatchChunk = 2048

// Options tunes how the audit runs; the zero value matches Audit.
type Options struct {
	// Workers bounds the parallelism of checks (d) and (e)
	// (0 = GOMAXPROCS).
	Workers int
	// DisableBatchVerify forces per-element opening verification instead of
	// the batched random-linear-combination check.
	DisableBatchVerify bool
}

// Report is the outcome of an audit.
type Report struct {
	// Failures lists every violated check, human-readable.
	Failures []string
	// BallotsChecked / ProofsChecked / OpeningsChecked count the work done.
	BallotsChecked  int
	ProofsChecked   int
	OpeningsChecked int
	DelegatedChecks int
}

// OK reports whether the election verified completely.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// Audit runs the full election verification, plus delegated checks for any
// provided voter packages.
func Audit(reader *bb.Reader, packages []*ballot.AuditPackage) (*Report, error) {
	return AuditWith(reader, packages, Options{})
}

// AuditWith is Audit with explicit tuning options.
func AuditWith(reader *bb.Reader, packages []*ballot.AuditPackage, opts Options) (*Report, error) {
	rep := &Report{}
	man, err := reader.Manifest()
	if err != nil {
		return nil, fmt.Errorf("auditor: reading manifest: %w", err)
	}
	init, err := reader.Init()
	if err != nil {
		return nil, fmt.Errorf("auditor: reading init data: %w", err)
	}
	voteSet, err := reader.VoteSet()
	if err != nil {
		return nil, fmt.Errorf("auditor: reading vote set: %w", err)
	}
	cast, err := reader.Cast()
	if err != nil {
		return nil, fmt.Errorf("auditor: reading cast data: %w", err)
	}
	result, err := reader.Result()
	if err != nil {
		return nil, fmt.Errorf("auditor: reading result: %w", err)
	}

	m := len(man.Options)
	ck := man.CommitmentKey()
	master := zkp.MasterChallenge(man.ElectionID, cast.Coins)

	// Check coins are consistent with the cast marks (challenge integrity).
	if len(cast.Coins) != len(cast.Marks) {
		rep.failf("coins length %d != marks %d", len(cast.Coins), len(cast.Marks))
	} else {
		for i, mk := range cast.Marks {
			if cast.Coins[i] != mk.Part {
				rep.failf("coin %d inconsistent with cast mark part", i)
			}
		}
	}

	// (a) vote codes distinct within each opened ballot.
	for bi := range cast.Codes {
		seen := make(map[string]bool, 2*m)
		for part := 0; part < 2; part++ {
			for row, code := range cast.Codes[bi][part] {
				if code == nil {
					rep.failf("ballot %d part %d row %d failed to decrypt", bi+1, part, row)
					continue
				}
				if seen[string(code)] {
					rep.failf("ballot %d: duplicate vote code", bi+1)
				}
				seen[string(code)] = true
			}
		}
		rep.BallotsChecked++
	}

	// (b) and (c): at most MaxSelections codes per part, one part per
	// ballot, every cast code actually on the claimed ballot.
	type usage struct {
		parts map[uint8]int
	}
	used := make(map[uint64]*usage)
	for _, mk := range cast.Marks {
		u := used[mk.Serial]
		if u == nil {
			u = &usage{parts: make(map[uint8]int, 2)}
			used[mk.Serial] = u
		}
		u.parts[mk.Part]++
	}
	for serial, u := range used {
		if len(u.parts) > 1 {
			rep.failf("ballot %d: both parts used", serial)
		}
		for part, cnt := range u.parts {
			if cnt > man.MaxSelections {
				rep.failf("ballot %d part %d: %d codes submitted (max %d)", serial, part, cnt, man.MaxSelections)
			}
		}
	}
	// Every vote-set entry must map to a mark (i.e., the code exists on the
	// ballot it claims).
	if len(voteSet) != len(cast.Marks) {
		rep.failf("vote set has %d entries but %d were located on ballots", len(voteSet), len(cast.Marks))
	}

	auditOpenings(rep, &man, init, result, ck, opts)
	auditProofs(rep, &man, init, result, ck, master, opts)

	// Completeness: every row of every used part must carry proofs, every
	// other row must be opened.
	provenRows := make(map[[3]uint64]bool, len(result.Proofs))
	for _, p := range result.Proofs {
		provenRows[[3]uint64{p.Serial, uint64(p.Part), uint64(p.Row)}] = true
	}
	openedRows := make(map[[3]uint64]bool, len(result.Openings))
	for _, o := range result.Openings {
		openedRows[[3]uint64{o.Serial, uint64(o.Part), uint64(o.Row)}] = true
	}
	// The expectation of which rows carry proofs vs openings follows the
	// same §III-H validation BB nodes and trustees apply: an invalidly-used
	// ballot (both parts, too many codes) is treated as unvoted, so both
	// parts must be opened. Checks (b)/(c) above still flag the anomaly.
	usedPart := bb.UsedParts(man.MaxSelections, cast.Marks)
	for serial := uint64(1); serial <= uint64(man.NumBallots); serial++ {
		up, voted := usedPart[serial]
		for part := uint8(0); part < 2; part++ {
			for row := 0; row < m; row++ {
				k := [3]uint64{serial, uint64(part), uint64(row)}
				if voted && part == up {
					if !provenRows[k] {
						rep.failf("used part (%d,%d,%d) lacks a completed proof", serial, part, row)
					}
				} else if !openedRows[k] {
					rep.failf("audit row (%d,%d,%d) was not opened", serial, part, row)
				}
			}
		}
	}

	// Tally: published counts must open the homomorphic sum of exactly the
	// cast commitments.
	auditTally(rep, &man, init, cast, result)

	// (f)+(g): delegated voter checks.
	for _, pkg := range packages {
		rep.DelegatedChecks++
		if pkg.CastCode != nil {
			found := false
			for _, vb := range voteSet {
				if vb.Serial == pkg.Serial && votecode.Equal(vb.Code, pkg.CastCode) {
					found = true
					break
				}
			}
			if !found {
				rep.failf("delegated: ballot %d cast code missing from tally set", pkg.Serial)
			}
		}
		if err := voter.VerifyUnusedPart(reader, pkg); err != nil {
			rep.failf("delegated: ballot %d unused part: %v", pkg.Serial, err)
		}
	}
	return rep, nil
}

// auditOpenings runs check (d): every published opening matches its
// commitment and encodes a correctly-labeled unit vector. Per-opening
// failure messages are buffered and merged in board order so parallelism
// and batching never reorder the report.
func auditOpenings(rep *Report, man *ea.Manifest, init *ea.BBInit, result *bb.Result, ck elgamal.CommitmentKey, opts Options) {
	m := len(man.Options)
	n := len(result.Openings)
	msgs := make([][]string, n)
	colOK := make([]bool, n)

	// Cheap structural pass (sequential): coordinates and arity.
	type ref struct{ oi, col int }
	var cts []elgamal.Ciphertext
	var ms, rs []*big.Int
	var refs []ref
	for oi := range result.Openings {
		o := &result.Openings[oi]
		if o.Serial == 0 || o.Serial > uint64(man.NumBallots) || o.Part > 1 || o.Row >= m || o.Row < 0 {
			msgs[oi] = append(msgs[oi], fmt.Sprintf("opening with invalid coordinates (%d,%d,%d)", o.Serial, o.Part, o.Row))
			continue
		}
		if len(o.Ms) != m || len(o.Rs) != m {
			msgs[oi] = append(msgs[oi], fmt.Sprintf("opening (%d,%d,%d) has wrong arity", o.Serial, o.Part, o.Row))
			continue
		}
		colOK[oi] = true
		if !opts.DisableBatchVerify {
			row := init.Ballots[o.Serial-1].Parts[o.Part][o.Row]
			for col := 0; col < m; col++ {
				cts = append(cts, row.Commitment[col])
				ms = append(ms, o.Ms[col])
				rs = append(rs, o.Rs[col])
				refs = append(refs, ref{oi, col})
			}
		}
	}

	if opts.DisableBatchVerify {
		parallel.Run(opts.Workers, n, func(oi int) {
			o := &result.Openings[oi]
			if !colOK[oi] {
				return
			}
			row := init.Ballots[o.Serial-1].Parts[o.Part][o.Row]
			for col := 0; col < m; col++ {
				if !ck.VerifyOpening(row.Commitment[col], o.Ms[col], o.Rs[col]) {
					msgs[oi] = append(msgs[oi], fmt.Sprintf("opening (%d,%d,%d) col %d does not match commitment", o.Serial, o.Part, o.Row, col))
					colOK[oi] = false
				}
			}
		})
	} else {
		// Batched verification in large chunks; a failing chunk falls back
		// to per-element checks to produce exact failure locations.
		nChunks := (len(cts) + auditBatchChunk - 1) / auditBatchChunk
		chunkMsgs := make([][][2]int, nChunks) // per chunk: failing (oi, col)
		parallel.Run(opts.Workers, nChunks, func(ci int) {
			lo := ci * auditBatchChunk
			hi := lo + auditBatchChunk
			if hi > len(cts) {
				hi = len(cts)
			}
			ok, err := ck.VerifyOpeningsBatch(cts[lo:hi], ms[lo:hi], rs[lo:hi], nil)
			if err == nil && ok {
				return
			}
			for i := lo; i < hi; i++ {
				if !ck.VerifyOpening(cts[i], ms[i], rs[i]) {
					chunkMsgs[ci] = append(chunkMsgs[ci], [2]int{refs[i].oi, refs[i].col})
				}
			}
		})
		for _, fails := range chunkMsgs {
			for _, f := range fails {
				o := &result.Openings[f[0]]
				msgs[f[0]] = append(msgs[f[0]], fmt.Sprintf("opening (%d,%d,%d) col %d does not match commitment", o.Serial, o.Part, o.Row, f[1]))
				colOK[f[0]] = false
			}
		}
	}

	parallel.Run(opts.Workers, n, func(oi int) {
		if !colOK[oi] {
			return
		}
		o := &result.Openings[oi]
		op := elgamal.VectorOpening{Ms: o.Ms, Rs: o.Rs}
		hot, err := op.HotIndex()
		if err != nil {
			msgs[oi] = append(msgs[oi], fmt.Sprintf("opening (%d,%d,%d) is not a unit vector: %v", o.Serial, o.Part, o.Row, err))
		} else if hot != o.HotIndex {
			msgs[oi] = append(msgs[oi], fmt.Sprintf("opening (%d,%d,%d) hot index mislabeled", o.Serial, o.Part, o.Row))
		}
	})

	for oi := 0; oi < n; oi++ {
		rep.Failures = append(rep.Failures, msgs[oi]...)
		rep.OpeningsChecked++
	}
}

// auditProofs runs check (e): every published proof verifies under the
// voter-coin challenge. Proofs are independent, so they verify in parallel;
// messages merge in board order.
func auditProofs(rep *Report, man *ea.Manifest, init *ea.BBInit, result *bb.Result, ck elgamal.CommitmentKey, master []byte, opts Options) {
	m := len(man.Options)
	n := len(result.Proofs)
	msgs := make([][]string, n)
	checked := make([]int, n)
	parallel.Run(opts.Workers, n, func(pi int) {
		p := &result.Proofs[pi]
		if p.Serial == 0 || p.Serial > uint64(man.NumBallots) || p.Part > 1 || p.Row >= m || p.Row < 0 || len(p.Bits) != m {
			msgs[pi] = append(msgs[pi], fmt.Sprintf("proof with invalid coordinates (%d,%d,%d)", p.Serial, p.Part, p.Row))
			return
		}
		row := init.Ballots[p.Serial-1].Parts[p.Part][p.Row]
		for col := 0; col < m; col++ {
			c := zkp.DeriveChallenge(master, p.Serial, p.Part, p.Row, col)
			if !zkp.VerifyBit(ck, row.Commitment[col], row.BitCommits[col], p.Bits[col], c) {
				msgs[pi] = append(msgs[pi], fmt.Sprintf("bit proof (%d,%d,%d) col %d invalid", p.Serial, p.Part, p.Row, col))
			}
			checked[pi]++
		}
		c := zkp.DeriveChallenge(master, p.Serial, p.Part, p.Row, zkp.SumProofCol)
		if !zkp.VerifySum(ck, row.Commitment, 1, row.SumCommit, p.Sum, c) {
			msgs[pi] = append(msgs[pi], fmt.Sprintf("sum proof (%d,%d,%d) invalid", p.Serial, p.Part, p.Row))
		}
		checked[pi]++
	})
	for pi := 0; pi < n; pi++ {
		rep.Failures = append(rep.Failures, msgs[pi]...)
		rep.ProofsChecked += checked[pi]
	}
}

// auditTally recomputes the homomorphic sum of the cast commitments and
// verifies the published opening and counts. It deliberately does NOT use
// the BB nodes' incremental aggregate: an independent recomputation is the
// whole point of the audit.
func auditTally(rep *Report, man *ea.Manifest, init *ea.BBInit, cast *bb.CastData, result *bb.Result) {
	m := len(man.Options)
	ck := man.CommitmentKey()
	var sum elgamal.VectorCiphertext
	for _, mk := range cast.Marks {
		ct := init.Ballots[mk.Serial-1].Parts[mk.Part][mk.Row].Commitment
		if sum == nil {
			sum = append(elgamal.VectorCiphertext(nil), ct...)
			continue
		}
		var err error
		if sum, err = sum.Add(ct); err != nil {
			rep.failf("tally: %v", err)
			return
		}
	}
	if sum == nil {
		for _, c := range result.Counts {
			if c != 0 {
				rep.failf("tally: votes reported but none cast")
			}
		}
		return
	}
	if len(result.TallyMs) != m || len(result.TallyRs) != m || len(result.Counts) != m {
		rep.failf("tally: wrong arity")
		return
	}
	for j := 0; j < m; j++ {
		if !ck.VerifyOpening(sum[j], result.TallyMs[j], result.TallyRs[j]) {
			rep.failf("tally: opening for option %d does not match the homomorphic sum", j)
		}
		if result.TallyMs[j].Cmp(big.NewInt(result.Counts[j])) != 0 {
			rep.failf("tally: published count %d != opened value for option %d", result.Counts[j], j)
		}
	}
}
