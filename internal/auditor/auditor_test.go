package auditor_test

import (
	"context"
	"testing"
	"time"

	"ddemos/internal/auditor"
	"ddemos/internal/ballot"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/voter"
)

// election runs a small full election and returns everything an auditor
// needs, plus the voters' results for delegation.
func election(t *testing.T, votes []int) (*core.Cluster, *ea.ElectionData, []*voter.CastResult) {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "audit-test",
		Options:     []string{"red", "blue"},
		NumBallots:  len(votes),
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("audit-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := core.NewCluster(data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	services := make([]voter.Service, len(cluster.VCs))
	for i, n := range cluster.VCs {
		services[i] = n
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results := make([]*voter.CastResult, len(votes))
	for i, opt := range votes {
		if opt < 0 {
			continue
		}
		cl := &voter.Client{Ballot: data.Ballots[i], Services: services, Patience: 10 * time.Second}
		res, err := cl.Cast(ctx, opt)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if _, err := cluster.RunPipeline(ctx); err != nil {
		t.Fatal(err)
	}
	return cluster, data, results
}

func TestCleanElectionAudits(t *testing.T) {
	cluster, data, results := election(t, []int{0, 1, 0, -1})
	var pkgs []*ballot.AuditPackage
	for i, res := range results {
		cl := &voter.Client{Ballot: data.Ballots[i]}
		pkg, err := cl.AuditPackage(res)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	rep, err := auditor.Audit(cluster.Reader, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean election failed audit: %v", rep.Failures)
	}
	if rep.BallotsChecked != 4 || rep.DelegatedChecks != 4 {
		t.Fatalf("coverage: %+v", rep)
	}
	if rep.ProofsChecked == 0 || rep.OpeningsChecked == 0 {
		t.Fatal("no proofs/openings checked")
	}
}

func TestDetectsModificationAttack(t *testing.T) {
	// Malicious EA prints a ballot whose options are swapped relative to the
	// BB commitments. The victim's delegated package must fail the audit.
	cluster, data, _ := election(t, []int{-1, 1})
	victim := data.Ballots[0]
	lines := victim.Parts[ballot.PartA].Lines
	lines[0].Option, lines[1].Option = lines[1].Option, lines[0].Option

	pkg := victim.AbstainAuditPackage() // part A is handed to the auditor
	rep, err := auditor.Audit(cluster.Reader, []*ballot.AuditPackage{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("modification attack not detected")
	}
}

func TestDetectsWrongCastCodeClaim(t *testing.T) {
	// A voter claims a cast code that is not in the tally set: the
	// delegated check (f) must flag it.
	cluster, data, results := election(t, []int{0, -1})
	cl := &voter.Client{Ballot: data.Ballots[0]}
	pkg, err := cl.AuditPackage(results[0])
	if err != nil {
		t.Fatal(err)
	}
	pkg.CastCode = append([]byte(nil), pkg.CastCode...)
	pkg.CastCode[0] ^= 0xFF
	rep, err := auditor.Audit(cluster.Reader, []*ballot.AuditPackage{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing cast code not detected")
	}
}

func TestDetectsLyingMinorityTransparently(t *testing.T) {
	// One lying BB of three: the majority reader hides it, audit passes.
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "audit-liar",
		Options:     []string{"red", "blue"},
		NumBallots:  2,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("audit-liar"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := core.NewCluster(data, core.Options{LyingBB: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	services := make([]voter.Service, len(cluster.VCs))
	for i, n := range cluster.VCs {
		services[i] = n
	}
	cl := &voter.Client{Ballot: data.Ballots[0], Services: services, Patience: 10 * time.Second}
	if _, err := cl.Cast(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.RunPipeline(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := auditor.Audit(cluster.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("audit failed despite honest majority: %v", rep.Failures)
	}
}
