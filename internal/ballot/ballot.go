// Package ballot defines the paper-faithful ballot model (§III-D): each
// voter receives a ballot with a unique 64-bit serial number and two
// functionally equivalent parts A and B; each part holds one
// ⟨vote-code, option, receipt⟩ line per election option. The part not used
// for voting becomes audit material.
package ballot

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// PartID identifies one of the two ballot parts.
type PartID uint8

// The two ballot parts. Their byte values double as the voter "coins" that
// seed the zero-knowledge challenge (§III-B).
const (
	PartA PartID = 0
	PartB PartID = 1
)

// String implements fmt.Stringer.
func (p PartID) String() string {
	switch p {
	case PartA:
		return "A"
	case PartB:
		return "B"
	default:
		return fmt.Sprintf("PartID(%d)", uint8(p))
	}
}

// Other returns the opposite part.
func (p PartID) Other() PartID { return 1 - p }

// Valid reports whether p is A or B.
func (p PartID) Valid() bool { return p == PartA || p == PartB }

// Line is one ⟨vote-code, option, receipt⟩ tuple of a ballot part.
type Line struct {
	VoteCode []byte // 160-bit random code, unique within the ballot
	Option   string // human-readable option this line votes for
	Receipt  []byte // 64-bit receipt returned on successful vote
}

// Part is one of the two halves of a ballot.
type Part struct {
	Lines []Line
}

// Ballot is the complete ballot a voter receives from the Election
// Authority over the (out-of-scope) secure distribution channel.
type Ballot struct {
	Serial uint64
	Parts  [2]Part
}

// ErrNoSuchOption is returned when an option name is not on the ballot.
var ErrNoSuchOption = errors.New("ballot: no such option")

// CodeFor returns the vote code on the given part for the option with the
// given index.
func (b *Ballot) CodeFor(part PartID, optionIndex int) ([]byte, error) {
	if !part.Valid() {
		return nil, fmt.Errorf("ballot: invalid part %d", part)
	}
	lines := b.Parts[part].Lines
	if optionIndex < 0 || optionIndex >= len(lines) {
		return nil, fmt.Errorf("ballot: option index %d out of range [0,%d)", optionIndex, len(lines))
	}
	return lines[optionIndex].VoteCode, nil
}

// LineByCode finds the line carrying the given vote code, returning the part
// and option index, or ok=false.
func (b *Ballot) LineByCode(code []byte) (part PartID, optionIndex int, ok bool) {
	for p := PartA; p <= PartB; p++ {
		for i, l := range b.Parts[p].Lines {
			if hex.EncodeToString(l.VoteCode) == hex.EncodeToString(code) {
				return p, i, true
			}
		}
	}
	return 0, 0, false
}

// AuditPackage is the information a voter hands to a third-party auditor to
// delegate verification without revealing her vote (§III-F): the cast vote
// code (which does not reveal the choice) and the complete unused part.
type AuditPackage struct {
	Serial       uint64
	CastCode     []byte // the code submitted for voting; nil if the voter abstained
	UsedPart     PartID // which part was used (meaningful only if CastCode != nil)
	UnusedPart   Part   // full content of the part not used
	UnusedPartID PartID
}

// NewAuditPackage builds the delegation package after a successful vote.
func (b *Ballot) NewAuditPackage(used PartID, castCode []byte) (*AuditPackage, error) {
	if !used.Valid() {
		return nil, fmt.Errorf("ballot: invalid part %d", used)
	}
	return &AuditPackage{
		Serial:       b.Serial,
		CastCode:     castCode,
		UsedPart:     used,
		UnusedPart:   clonePart(b.Parts[used.Other()]),
		UnusedPartID: used.Other(),
	}, nil
}

// AbstainAuditPackage builds an audit package for a voter who did not vote:
// both parts should be opened on the BB, and she may audit either. We hand
// over part A by convention.
func (b *Ballot) AbstainAuditPackage() *AuditPackage {
	return &AuditPackage{
		Serial:       b.Serial,
		UnusedPart:   clonePart(b.Parts[PartA]),
		UnusedPartID: PartA,
	}
}

func clonePart(p Part) Part {
	out := Part{Lines: make([]Line, len(p.Lines))}
	for i, l := range p.Lines {
		out.Lines[i] = Line{
			VoteCode: append([]byte(nil), l.VoteCode...),
			Option:   l.Option,
			Receipt:  append([]byte(nil), l.Receipt...),
		}
	}
	return out
}

// FormatCode renders a vote code the way it would be printed on a paper
// ballot (hex).
func FormatCode(code []byte) string { return hex.EncodeToString(code) }

// ParseCode parses a printed vote code.
func ParseCode(s string) ([]byte, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("ballot: invalid vote code: %w", err)
	}
	return b, nil
}
