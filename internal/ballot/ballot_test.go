package ballot

import (
	"bytes"
	"testing"
)

func sample() *Ballot {
	mk := func(b byte) []byte { return bytes.Repeat([]byte{b}, 20) }
	return &Ballot{
		Serial: 7,
		Parts: [2]Part{
			{Lines: []Line{
				{VoteCode: mk(1), Option: "yes", Receipt: []byte{1, 1, 1, 1, 1, 1, 1, 1}},
				{VoteCode: mk(2), Option: "no", Receipt: []byte{2, 2, 2, 2, 2, 2, 2, 2}},
			}},
			{Lines: []Line{
				{VoteCode: mk(3), Option: "yes", Receipt: []byte{3, 3, 3, 3, 3, 3, 3, 3}},
				{VoteCode: mk(4), Option: "no", Receipt: []byte{4, 4, 4, 4, 4, 4, 4, 4}},
			}},
		},
	}
}

func TestPartID(t *testing.T) {
	if PartA.Other() != PartB || PartB.Other() != PartA {
		t.Fatal("Other() broken")
	}
	if !PartA.Valid() || !PartB.Valid() || PartID(2).Valid() {
		t.Fatal("Valid() broken")
	}
	if PartA.String() != "A" || PartB.String() != "B" || PartID(9).String() == "" {
		t.Fatal("String() broken")
	}
}

func TestCodeFor(t *testing.T) {
	b := sample()
	code, err := b.CodeFor(PartB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if code[0] != 4 {
		t.Fatalf("wrong code %x", code)
	}
	if _, err := b.CodeFor(PartID(5), 0); err == nil {
		t.Fatal("invalid part must fail")
	}
	if _, err := b.CodeFor(PartA, 2); err == nil {
		t.Fatal("out-of-range option must fail")
	}
	if _, err := b.CodeFor(PartA, -1); err == nil {
		t.Fatal("negative option must fail")
	}
}

func TestLineByCode(t *testing.T) {
	b := sample()
	part, idx, ok := b.LineByCode(bytes.Repeat([]byte{3}, 20))
	if !ok || part != PartB || idx != 0 {
		t.Fatalf("got part=%v idx=%d ok=%v", part, idx, ok)
	}
	if _, _, ok := b.LineByCode(bytes.Repeat([]byte{9}, 20)); ok {
		t.Fatal("unknown code must not be found")
	}
}

func TestAuditPackage(t *testing.T) {
	b := sample()
	cast, _ := b.CodeFor(PartA, 0)
	pkg, err := b.NewAuditPackage(PartA, cast)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Serial != 7 || pkg.UsedPart != PartA || pkg.UnusedPartID != PartB {
		t.Fatal("package metadata wrong")
	}
	if len(pkg.UnusedPart.Lines) != 2 || pkg.UnusedPart.Lines[0].VoteCode[0] != 3 {
		t.Fatal("unused part content wrong")
	}
	// The clone must be independent of the ballot.
	pkg.UnusedPart.Lines[0].VoteCode[0] = 99
	if b.Parts[PartB].Lines[0].VoteCode[0] == 99 {
		t.Fatal("audit package aliases ballot memory")
	}
	if _, err := b.NewAuditPackage(PartID(9), cast); err == nil {
		t.Fatal("invalid part must fail")
	}
}

func TestAbstainAuditPackage(t *testing.T) {
	b := sample()
	pkg := b.AbstainAuditPackage()
	if pkg.CastCode != nil {
		t.Fatal("abstain package must have no cast code")
	}
	if pkg.UnusedPartID != PartA || len(pkg.UnusedPart.Lines) != 2 {
		t.Fatal("abstain package content wrong")
	}
}

func TestFormatParseCode(t *testing.T) {
	code := bytes.Repeat([]byte{0xab}, 20)
	s := FormatCode(code)
	got, err := ParseCode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, code) {
		t.Fatal("round trip mismatch")
	}
	if _, err := ParseCode("zz"); err == nil {
		t.Fatal("invalid hex must fail")
	}
}
