package bb_test

import (
	"context"
	"testing"
	"time"

	"ddemos/internal/bb"
	ddcore "ddemos/internal/core"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/ea"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
	"ddemos/internal/voter"
)

// pipeline runs a small election and returns the cluster with published
// results on all BB nodes.
func pipeline(t *testing.T, votes []int, opts ddcore.Options) (*ddcore.Cluster, *ea.ElectionData) {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "bb-test",
		Options:     []string{"x", "y"},
		NumBallots:  len(votes),
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("bb-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ddcore.NewCluster(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	services := make([]voter.Service, len(cluster.VCs))
	for i, n := range cluster.VCs {
		services[i] = n
	}
	for i, opt := range votes {
		if opt < 0 {
			continue
		}
		cl := &voter.Client{Ballot: data.Ballots[i], Services: services, Patience: 10 * time.Second}
		if _, err := cl.Cast(ctx, opt); err != nil {
			t.Fatalf("voter %d: %v", i, err)
		}
	}
	if _, err := cluster.RunPipeline(ctx); err != nil {
		t.Fatal(err)
	}
	return cluster, data
}

func TestBBRejectsBadSubmissions(t *testing.T) {
	cluster, _ := pipeline(t, []int{0, 1}, ddcore.Options{})
	node := cluster.BBs[0]

	set, _ := node.VoteSet()
	// Wrong signer index.
	sg := cluster.VCs[0].SignVoteSet(set)
	if err := node.SubmitVoteSet(1, set, sg); err == nil {
		t.Fatal("signature from wrong node accepted")
	}
	if err := node.SubmitVoteSet(99, set, sg); err == nil {
		t.Fatal("out-of-range vc index accepted")
	}
	// Unsorted set.
	if len(set) >= 2 {
		bad := []vc.VotedBallot{set[1], set[0]}
		sg2 := cluster.VCs[0].SignVoteSet(bad)
		if err := node.SubmitVoteSet(0, bad, sg2); err == nil {
			t.Fatal("unsorted set accepted")
		}
	}
	// Bad msk share signature.
	share := cluster.VCs[0].MskShare()
	share.Value = shamir.Share{Index: share.Index, Value: share.Value}.Value // copy
	badShare := ea.MskShare{Index: share.Index, Value: share.Value, Sig: make([]byte, 64)}
	if err := node.SubmitMskShare(badShare); err == nil {
		t.Fatal("unsigned msk share accepted")
	}
	// Bad trustee post.
	if err := node.SubmitTrusteePost(&bb.TrusteePost{Trustee: 0, ShareIndex: 1, Sig: make([]byte, 64)}); err == nil {
		t.Fatal("unsigned trustee post accepted")
	}
	if err := node.SubmitTrusteePost(&bb.TrusteePost{Trustee: 9, ShareIndex: 10}); err == nil {
		t.Fatal("out-of-range trustee accepted")
	}
}

func TestBBNeedsQuorumOfIdenticalSets(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "bb-quorum",
		Options:     []string{"x", "y"},
		NumBallots:  2,
		NumVC:       4,
		NumBB:       1,
		NumTrustees: 1,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("bb-quorum"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ddcore.NewCluster(data, ddcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	node := cluster.BBs[0]

	// One submission (fv=1 requires fv+1=2 identical): not yet published.
	var empty []vc.VotedBallot
	if err := node.SubmitVoteSet(0, empty, cluster.VCs[0].SignVoteSet(empty)); err != nil {
		t.Fatal(err)
	}
	if _, err := node.VoteSet(); err == nil {
		t.Fatal("vote set published with a single submission")
	}
	// Second identical submission publishes it.
	if err := node.SubmitVoteSet(1, empty, cluster.VCs[1].SignVoteSet(empty)); err != nil {
		t.Fatal(err)
	}
	if _, err := node.VoteSet(); err != nil {
		t.Fatal("vote set not published after fv+1 identical submissions")
	}
}

func TestReaderMajorityAgainstMinorityLiars(t *testing.T) {
	cluster, _ := pipeline(t, []int{0, 0, 1}, ddcore.Options{LyingBB: map[int]bool{2: true}})
	res, err := cluster.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 2 || res.Counts[1] != 1 {
		t.Fatalf("majority read returned corrupted counts %v", res.Counts)
	}
}

func TestReaderFailsWithoutMajority(t *testing.T) {
	cluster, data := pipeline(t, []int{0}, ddcore.Options{})
	// A 3-node reader needs fb+1 = 2 identical replies. Compose one lying
	// node, one honest node and one node that has published nothing (fresh
	// replica): every reply differs, so the reader must refuse rather than
	// guess.
	cluster.BBs[0].Lying = true
	fresh, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	reader := bb.NewReader([]bb.API{cluster.BBs[0], cluster.BBs[1], fresh})
	if _, err := reader.Result(); err == nil {
		t.Fatal("reader returned a result without two matching replies")
	}
	// Restoring honesty restores the majority.
	cluster.BBs[0].Lying = false
	if _, err := reader.Result(); err != nil {
		t.Fatalf("reader failed with an honest majority: %v", err)
	}
}

func TestByzantineTrusteeSubsetSearch(t *testing.T) {
	cluster, _ := pipeline(t, []int{1, 1, 0}, ddcore.Options{
		ByzantineTrustees: map[int]trustee.Byzantine{0: trustee.GarbageShares},
	})
	res, err := cluster.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 1 || res.Counts[1] != 2 {
		t.Fatalf("counts %v despite honest trustee quorum", res.Counts)
	}
	// The surviving combination must not include the garbage trustee
	// (share index 1).
	for _, idx := range res.Trustees {
		if idx == 1 {
			t.Fatal("result combined from the Byzantine trustee's shares")
		}
	}
}

func TestCastDataConsistency(t *testing.T) {
	cluster, data := pipeline(t, []int{0, 1, -1}, ddcore.Options{})
	cast, err := cluster.Reader.Cast()
	if err != nil {
		t.Fatal(err)
	}
	if len(cast.Marks) != 2 || len(cast.Coins) != 2 {
		t.Fatalf("marks=%d coins=%d", len(cast.Marks), len(cast.Coins))
	}
	for i, mk := range cast.Marks {
		if cast.Coins[i] != mk.Part {
			t.Fatal("coins inconsistent with marks")
		}
		// The decrypted code at the mark must equal the vote-set code.
		code := cast.Codes[mk.Serial-1][mk.Part][mk.Row]
		found := false
		for _, vb := range cast.VoteSet {
			if vb.Serial == mk.Serial && string(vb.Code) == string(code) {
				found = true
			}
		}
		if !found {
			t.Fatal("mark points at a code not in the vote set")
		}
	}
	// All decrypted codes match the ballots.
	for bi, b := range data.Ballots {
		for part := 0; part < 2; part++ {
			want := map[string]bool{}
			for _, l := range b.Parts[part].Lines {
				want[string(l.VoteCode)] = true
			}
			for _, code := range cast.Codes[bi][part] {
				if !want[string(code)] {
					t.Fatalf("ballot %d part %d: decrypted code not on ballot", bi+1, part)
				}
			}
		}
	}
}
