package bb

import (
	"fmt"
	"math/big"
	"sort"
	"sync/atomic"
	"time"

	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/ea"
	"ddemos/internal/parallel"
)

// Tuning knobs for the combine pipeline.
const (
	// batchChunk is the number of openings verified per random-linear-
	// combination batch. Chunks must be large: the multi-scalar
	// multiplication only beats per-element verification past a couple
	// hundred terms (see internal/crypto/group).
	batchChunk = 2048
	// maxBlamedFailures caps how many failed rows the blame pass analyses
	// per attempt. One failure suffices to identify one bad trustee;
	// remaining bad posts are caught on subsequent attempts.
	maxBlamedFailures = 8
	// abortFailures aborts an attempt once this many rows have failed: the
	// attempt cannot succeed anymore, and the cap bounds the EC work a
	// fully-garbage post can cause per attempt.
	abortFailures = 64
)

// combinedBallot caches one ballot's verified combination across attempts.
// Lifted-ElGamal commitments are perfectly binding — (A, B) determines
// (m, r) uniquely — so openings verified against the public commitments
// are THE openings, independent of which subset produced them, and never
// need recomputation when the subset changes.
type combinedBallot struct {
	openings []OpenedRow
	proofs   []ProvenRow
}

// rowCheck re-verifies one failed row under an arbitrary subset of posts;
// the blame protocol uses it to classify candidates. A nil check marks an
// unrecoverable failure that no trustee can be blamed for (e.g. the
// opened row is not a unit vector — an EA fault).
type rowCheck struct {
	desc  string
	check func(sub []*TrusteePost) bool
}

// combineEnv is the immutable context of one combine attempt, snapshotted
// under n.mu so the attempt itself runs entirely off-lock.
type combineEnv struct {
	man     *ea.Manifest
	ck      elgamal.CommitmentKey
	m       int
	order   *big.Int
	master  []byte
	used    map[uint64]uint8
	agg     elgamal.VectorCiphertext
	shares  map[int]*postShares
	workers int
	noBatch bool
}

func shareIndices(posts []*TrusteePost) []uint32 {
	out := make([]uint32, len(posts))
	for i, p := range posts {
		out[i] = p.ShareIndex
	}
	return out
}

// kickCombineLocked starts (or re-arms) the background combine worker.
// Callers hold n.mu.
func (n *Node) kickCombineLocked() {
	if n.result != nil || n.tallyAggErr != nil || n.closed {
		return
	}
	if n.combineRunning {
		n.combinePending = true
		return
	}
	if len(n.posts) < n.init.Manifest.TrusteeThreshold {
		return
	}
	n.combineRunning = true
	go n.combineWorker()
}

// candidatesLocked returns the posts eligible for the next attempt, sorted
// by trustee index: the non-blamed posts, or — if blame has eaten into the
// pool so deeply that fewer than ht remain — every post, so a mis-blame
// under colluding trustees degrades liveness only until more posts arrive,
// never permanently.
func (n *Node) candidatesLocked() []*TrusteePost {
	ht := n.init.Manifest.TrusteeThreshold
	var out []*TrusteePost
	for _, p := range n.posts {
		if !n.badPosts[p.Trustee] {
			out = append(out, p)
		}
	}
	if len(out) < ht {
		out = out[:0]
		for _, p := range n.posts {
			out = append(out, p)
		}
		if len(out) < ht {
			return nil
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trustee < out[j].Trustee })
	return out
}

// combineWorker runs combine attempts until a result is published or no
// further progress is possible; it exits when idle and is restarted by the
// next post. Exactly one worker runs at a time (combineRunning), which
// also makes it the sole owner of n.combineCache.
func (n *Node) combineWorker() {
	for {
		n.mu.Lock()
		if n.result != nil || n.closed {
			n.combineRunning = false
			n.mu.Unlock()
			return
		}
		n.combinePending = false
		cands := n.candidatesLocked()
		if cands == nil {
			n.combineRunning = false
			n.mu.Unlock()
			return
		}
		man := &n.init.Manifest
		env := &combineEnv{
			man:     man,
			ck:      man.CommitmentKey(),
			m:       len(man.Options),
			order:   group.Order(),
			master:  zkp.MasterChallenge(man.ElectionID, n.cast.Coins),
			used:    n.usedParts,
			agg:     n.tallyAgg,
			shares:  make(map[int]*postShares, len(n.shareIdx)),
			workers: n.CombineWorkers,
			noBatch: n.DisableBatchVerify,
		}
		for t, ps := range n.shareIdx {
			env.shares[t] = ps
		}
		gate := n.CombineGate
		n.mu.Unlock()

		if gate != nil {
			gate()
		}
		start := time.Now()
		res, blamed := n.combineAttempt(env, cands)
		n.metrics.CombineAttempts.Add(1)
		n.metrics.CombineNanos.Add(time.Since(start).Nanoseconds())

		n.mu.Lock()
		if res != nil {
			installed := false
			if n.result == nil && !n.closed {
				n.result = res
				installed = true
			}
			n.combineRunning = false
			n.mu.Unlock()
			if installed {
				// Journal.go's ordering discipline, applied to the publish:
				// install, then append (off-lock — snapshots capture under
				// n.mu), then release WaitResult waiters. A waiter that saw
				// the publish can therefore immediately hard-stop the node
				// and still find the result record on disk.
				n.journalResult(res)
				close(n.resultCh)
			}
			return
		}
		progress := false
		var fresh [][]byte
		for _, t := range blamed {
			if !n.badPosts[t] {
				n.badPosts[t] = true
				n.metrics.BadPostBlames.Add(1)
				progress = true
				fresh = append(fresh, encBBBlame(t))
			}
		}
		stop := !progress && !n.combinePending
		if stop {
			n.combineRunning = false
		}
		n.mu.Unlock()
		// Blame verdicts are best-effort durable: a lost record only costs
		// the recovered node one combine attempt to re-derive the blame.
		_ = n.journalAppend(fresh...)
		if stop {
			return
		}
	}
}

// combineAttempt runs one full combination over the first ht candidates.
// It returns either a verified Result, or the trustees blamed for the
// failures (empty when inconclusive — e.g. every candidate subset fails,
// which means more posts are needed).
func (n *Node) combineAttempt(env *combineEnv, cands []*TrusteePost) (*Result, []int) {
	ht := env.man.TrusteeThreshold
	if len(cands) < ht {
		return nil, nil
	}
	subset := append([]*TrusteePost(nil), cands[:ht]...)
	lam, err := shamir.LagrangeCoefficients(shareIndices(subset))
	if err != nil {
		return nil, nil
	}
	ballots := n.init.Ballots

	// Stage A: per-ballot scalar combination + ZK verification, parallel
	// across ballots. Openings are combined here but (in batch mode) only
	// verified in stage B.
	type pendRef struct {
		bi, row, col int
	}
	type ballotOut struct {
		cb      *combinedBallot
		cached  bool
		skipped bool
		pendCt  []elgamal.Ciphertext
		pendM   []*big.Int
		pendR   []*big.Int
		pendRef []pendRef
		fails   []rowCheck
	}
	outs := make([]ballotOut, len(ballots))
	var failCount atomic.Int64
	parallel.Run(env.workers, len(ballots), func(bi int) {
		out := &outs[bi]
		bbb := &ballots[bi]
		if cb, ok := n.combineCache[bbb.Serial]; ok {
			out.cb, out.cached = cb, true
			return
		}
		if failCount.Load() >= abortFailures {
			out.skipped = true
			return
		}
		cb := &combinedBallot{}
		usedPart, voted := env.used[bbb.Serial]
		for part := 0; part < 2; part++ {
			rows := bbb.Parts[part]
			if voted && uint8(part) == usedPart { //nolint:gosec // part<2
				for row := range rows {
					pr, checks := env.combineProofRow(subset, bbb, part, row)
					if len(checks) > 0 {
						out.fails = append(out.fails, checks...)
						failCount.Add(int64(len(checks)))
						continue
					}
					cb.proofs = append(cb.proofs, pr)
				}
				continue
			}
			for row := range rows {
				k := combineKey{bbb.Serial, uint8(part), row} //nolint:gosec // part<2
				ms, rs := env.combineOpeningRow(subset, lam, k)
				if ms == nil {
					out.fails = append(out.fails, rowCheck{desc: fmt.Sprintf("missing opening shares at %v", k)})
					failCount.Add(1)
					continue
				}
				rowIdx := len(cb.openings)
				rowFailed := false
				for col := 0; col < env.m; col++ {
					ct := rows[row].Commitment[col]
					if env.noBatch {
						if !env.ck.VerifyOpening(ct, ms[col], rs[col]) {
							out.fails = append(out.fails, env.openingCheck(k, col, ct))
							failCount.Add(1)
							rowFailed = true
						}
						continue
					}
					out.pendCt = append(out.pendCt, ct)
					out.pendM = append(out.pendM, ms[col])
					out.pendR = append(out.pendR, rs[col])
					out.pendRef = append(out.pendRef, pendRef{bi: bi, row: rowIdx, col: col})
				}
				if rowFailed {
					continue
				}
				cb.openings = append(cb.openings, OpenedRow{
					Serial: bbb.Serial, Part: uint8(part), Row: row, //nolint:gosec // part<2
					Ms: ms, Rs: rs, HotIndex: -1,
				})
			}
		}
		out.cb = cb
	})

	// Stage B: batched opening verification in large chunks. A failing
	// chunk falls back to per-element checks to locate the culprit rows.
	if !env.noBatch {
		var cts []elgamal.Ciphertext
		var ms, rs []*big.Int
		var refs []pendRef
		for bi := range outs {
			cts = append(cts, outs[bi].pendCt...)
			ms = append(ms, outs[bi].pendM...)
			rs = append(rs, outs[bi].pendR...)
			refs = append(refs, outs[bi].pendRef...)
		}
		nChunks := (len(cts) + batchChunk - 1) / batchChunk
		badBallot := make([]map[int]rowCheck, nChunks) // per-chunk: bi → first failing check
		parallel.Run(env.workers, nChunks, func(ci int) {
			lo := ci * batchChunk
			hi := lo + batchChunk
			if hi > len(cts) {
				hi = len(cts)
			}
			ok, err := env.ck.VerifyOpeningsBatch(cts[lo:hi], ms[lo:hi], rs[lo:hi], nil)
			if err != nil || ok {
				return
			}
			n.metrics.BatchFallbacks.Add(1)
			bad := make(map[int]rowCheck)
			for i := lo; i < hi; i++ {
				if !env.ck.VerifyOpening(cts[i], ms[i], rs[i]) {
					ref := refs[i]
					ob := &outs[ref.bi].cb.openings[ref.row]
					k := combineKey{ob.Serial, ob.Part, ob.Row}
					if _, dup := bad[ref.bi]; !dup {
						bad[ref.bi] = env.openingCheck(k, ref.col, cts[i])
					}
					failCount.Add(1)
				}
			}
			badBallot[ci] = bad
		})
		for _, bad := range badBallot {
			for bi, chk := range bad {
				outs[bi].fails = append(outs[bi].fails, chk)
			}
		}
	}

	// Stage C: hot-index computation for verified openings, then install
	// fully-clean ballots into the cache (worker-owned; stages A/B only
	// read it).
	for bi := range outs {
		out := &outs[bi]
		if out.cb == nil || out.cached || out.skipped || len(out.fails) > 0 {
			continue
		}
		for i := range out.cb.openings {
			or := &out.cb.openings[i]
			hot, err := (elgamal.VectorOpening{Ms: or.Ms, Rs: or.Rs}).HotIndex()
			if err != nil {
				out.fails = append(out.fails, rowCheck{
					desc: fmt.Sprintf("row %d/%d/%d is not a unit vector: %v", or.Serial, or.Part, or.Row, err),
				})
				break
			}
			or.HotIndex = hot
		}
		if len(out.fails) > 0 {
			continue
		}
		n.combineCache[ballots[bi].Serial] = out.cb
	}

	// Stage D: tally combination and verification against the incremental
	// homomorphic aggregate.
	var fails []rowCheck
	for bi := range outs {
		fails = append(fails, outs[bi].fails...)
	}
	counts, tms, trs, tallyFails := env.combineTally(subset, lam)
	fails = append(fails, tallyFails...)
	if len(fails) > 0 {
		return nil, n.blameFailures(env, cands, fails)
	}
	for bi := range outs {
		if outs[bi].skipped || outs[bi].cb == nil {
			return nil, nil // aborted attempt without locatable failures
		}
	}

	res := &Result{
		Counts:   counts,
		TallyMs:  tms,
		TallyRs:  trs,
		Trustees: shareIndices(subset),
	}
	for bi := range ballots {
		cb := n.combineCache[ballots[bi].Serial]
		if cb == nil {
			return nil, nil
		}
		res.Openings = append(res.Openings, cb.openings...)
		res.Proofs = append(res.Proofs, cb.proofs...)
	}
	return res, nil
}

// combineOpeningRow interpolates one audit row's opening under lam.
// Returns nils if any share is missing (cannot happen for ingress-validated
// posts; defensive).
func (env *combineEnv) combineOpeningRow(subset []*TrusteePost, lam []*big.Int, k combineKey) (ms, rs []*big.Int) {
	ms = make([]*big.Int, env.m)
	rs = make([]*big.Int, env.m)
	tmp := new(big.Int)
	for col := 0; col < env.m; col++ {
		mv := new(big.Int)
		rv := new(big.Int)
		for i, p := range subset {
			o := env.shares[p.Trustee].open[k]
			if o == nil {
				return nil, nil
			}
			mv.Add(mv, tmp.Mul(lam[i], o.Ms[col]))
			rv.Add(rv, tmp.Mul(lam[i], o.Rs[col]))
		}
		ms[col] = mv.Mod(mv, env.order)
		rs[col] = rv.Mod(rv, env.order)
	}
	return ms, rs
}

// combineProofRow combines and verifies the ZK final moves for one row of
// a used part.
func (env *combineEnv) combineProofRow(subset []*TrusteePost, bbb *ea.BBBallot, part, row int) (ProvenRow, []rowCheck) {
	rows := bbb.Parts[part]
	k := combineKey{bbb.Serial, uint8(part), row} //nolint:gosec // part<2
	var fails []rowCheck
	bits := make([]zkp.BitFinal, env.m)
	finals := make([]zkp.IndexedBitFinal, len(subset))
	for col := 0; col < env.m; col++ {
		for i, p := range subset {
			pf := env.shares[p.Trustee].proof[k]
			if pf == nil {
				return ProvenRow{}, []rowCheck{{desc: fmt.Sprintf("missing proof share at %v", k)}}
			}
			finals[i] = zkp.IndexedBitFinal{Index: p.ShareIndex, Final: pf.Bits[col]}
		}
		fin, err := zkp.CombineBitFinals(finals, len(subset))
		if err != nil {
			return ProvenRow{}, []rowCheck{{desc: fmt.Sprintf("combining bit finals at %v: %v", k, err)}}
		}
		c := zkp.DeriveChallenge(env.master, bbb.Serial, uint8(part), row, col) //nolint:gosec // part<2
		if !zkp.VerifyBit(env.ck, rows[row].Commitment[col], rows[row].BitCommits[col], fin, c) {
			fails = append(fails, env.bitProofCheck(k, rows[row].Commitment[col], rows[row].BitCommits[col], col, c))
			continue
		}
		bits[col] = fin
	}
	sumFinals := make([]zkp.IndexedSumFinal, len(subset))
	for i, p := range subset {
		sumFinals[i] = zkp.IndexedSumFinal{Index: p.ShareIndex, Final: env.shares[p.Trustee].proof[k].Sum}
	}
	sumFin, err := zkp.CombineSumFinals(sumFinals, len(subset))
	if err != nil {
		return ProvenRow{}, []rowCheck{{desc: fmt.Sprintf("combining sum finals at %v: %v", k, err)}}
	}
	cSum := zkp.DeriveChallenge(env.master, bbb.Serial, uint8(part), row, zkp.SumProofCol) //nolint:gosec // part<2
	if !zkp.VerifySum(env.ck, rows[row].Commitment, 1, rows[row].SumCommit, sumFin, cSum) {
		fails = append(fails, env.sumProofCheck(k, rows[row].Commitment, rows[row].SumCommit, cSum))
	}
	if len(fails) > 0 {
		return ProvenRow{}, fails
	}
	return ProvenRow{
		Serial: bbb.Serial, Part: uint8(part), Row: row, Bits: bits, Sum: sumFin, //nolint:gosec // part<2
	}, nil
}

// combineTally interpolates and verifies the tally opening against the
// incremental aggregate.
func (env *combineEnv) combineTally(subset []*TrusteePost, lam []*big.Int) (counts []int64, tms, trs []*big.Int, fails []rowCheck) {
	m := env.m
	counts = make([]int64, m)
	tms = make([]*big.Int, m)
	trs = make([]*big.Int, m)
	if env.agg == nil {
		// No votes cast: all counts zero, nothing to open.
		for j := 0; j < m; j++ {
			tms[j] = new(big.Int)
			trs[j] = new(big.Int)
		}
		return counts, tms, trs, nil
	}
	tmp := new(big.Int)
	for j := 0; j < m; j++ {
		mv := new(big.Int)
		rv := new(big.Int)
		for i, p := range subset {
			mv.Add(mv, tmp.Mul(lam[i], p.TallyMs[j]))
			rv.Add(rv, tmp.Mul(lam[i], p.TallyRs[j]))
		}
		mv.Mod(mv, env.order)
		rv.Mod(rv, env.order)
		if !env.ck.VerifyOpening(env.agg[j], mv, rv) {
			fails = append(fails, env.tallyCheck(j))
			continue
		}
		if !mv.IsInt64() {
			fails = append(fails, rowCheck{desc: fmt.Sprintf("tally count overflows for option %d", j)})
			continue
		}
		tms[j] = mv
		trs[j] = rv
		counts[j] = mv.Int64()
	}
	return counts, tms, trs, fails
}

// --- blame protocol -------------------------------------------------------

// openingCheck builds a rowCheck re-verifying one opening column under an
// arbitrary subset.
func (env *combineEnv) openingCheck(k combineKey, col int, ct elgamal.Ciphertext) rowCheck {
	return rowCheck{
		desc: fmt.Sprintf("opening %d/%d/%d col %d", k.serial, k.part, k.row, col),
		check: func(sub []*TrusteePost) bool {
			lam, err := shamir.LagrangeCoefficients(shareIndices(sub))
			if err != nil {
				return false
			}
			mv := new(big.Int)
			rv := new(big.Int)
			tmp := new(big.Int)
			for i, p := range sub {
				o := env.shares[p.Trustee].open[k]
				if o == nil {
					return false
				}
				mv.Add(mv, tmp.Mul(lam[i], o.Ms[col]))
				rv.Add(rv, tmp.Mul(lam[i], o.Rs[col]))
			}
			mv.Mod(mv, env.order)
			rv.Mod(rv, env.order)
			return env.ck.VerifyOpening(ct, mv, rv)
		},
	}
}

// bitProofCheck builds a rowCheck re-verifying one bit proof column.
func (env *combineEnv) bitProofCheck(k combineKey, ct elgamal.Ciphertext, bc zkp.BitCommit, col int, c *big.Int) rowCheck {
	return rowCheck{
		desc: fmt.Sprintf("bit proof %d/%d/%d col %d", k.serial, k.part, k.row, col),
		check: func(sub []*TrusteePost) bool {
			finals := make([]zkp.IndexedBitFinal, len(sub))
			for i, p := range sub {
				pf := env.shares[p.Trustee].proof[k]
				if pf == nil {
					return false
				}
				finals[i] = zkp.IndexedBitFinal{Index: p.ShareIndex, Final: pf.Bits[col]}
			}
			fin, err := zkp.CombineBitFinals(finals, len(sub))
			if err != nil {
				return false
			}
			return zkp.VerifyBit(env.ck, ct, bc, fin, c)
		},
	}
}

// sumProofCheck builds a rowCheck re-verifying one sum proof.
func (env *combineEnv) sumProofCheck(k combineKey, cts elgamal.VectorCiphertext, sc zkp.SumCommit, c *big.Int) rowCheck {
	return rowCheck{
		desc: fmt.Sprintf("sum proof %d/%d/%d", k.serial, k.part, k.row),
		check: func(sub []*TrusteePost) bool {
			finals := make([]zkp.IndexedSumFinal, len(sub))
			for i, p := range sub {
				pf := env.shares[p.Trustee].proof[k]
				if pf == nil {
					return false
				}
				finals[i] = zkp.IndexedSumFinal{Index: p.ShareIndex, Final: pf.Sum}
			}
			fin, err := zkp.CombineSumFinals(finals, len(sub))
			if err != nil {
				return false
			}
			return zkp.VerifySum(env.ck, cts, 1, sc, fin, c)
		},
	}
}

// tallyCheck builds a rowCheck re-verifying one tally column.
func (env *combineEnv) tallyCheck(j int) rowCheck {
	return rowCheck{
		desc: fmt.Sprintf("tally option %d", j),
		check: func(sub []*TrusteePost) bool {
			lam, err := shamir.LagrangeCoefficients(shareIndices(sub))
			if err != nil {
				return false
			}
			mv := new(big.Int)
			rv := new(big.Int)
			tmp := new(big.Int)
			for i, p := range sub {
				mv.Add(mv, tmp.Mul(lam[i], p.TallyMs[j]))
				rv.Add(rv, tmp.Mul(lam[i], p.TallyRs[j]))
			}
			mv.Mod(mv, env.order)
			rv.Mod(rv, env.order)
			return env.ck.VerifyOpening(env.agg[j], mv, rv)
		},
	}
}

// blameFailures identifies the specific bad trustees behind failed rows.
// For each failure it first finds a passing subset for that single row
// (spare swaps first, then full per-row enumeration — cheap, since it
// re-verifies one row, not the whole board), then classifies every other
// candidate against that known-good base: replace one member with the
// candidate; if the row check fails, the candidate's share for the row is
// bad. k garbage trustees therefore cost O(k·rows) extra work instead of
// the seed's exponential full re-combinations.
func (n *Node) blameFailures(env *combineEnv, cands []*TrusteePost, fails []rowCheck) []int {
	ht := env.man.TrusteeThreshold
	blamed := make(map[int]bool)
	analyzed := 0
	for _, f := range fails {
		if f.check == nil {
			continue // unrecoverable, not a trustee fault
		}
		if analyzed >= maxBlamedFailures {
			break
		}
		analyzed++
		good := findGoodSubset(cands, ht, f)
		if good == nil {
			continue // inconclusive: every subset fails; need more posts
		}
		inGood := make(map[int]bool, ht)
		for _, p := range good {
			inGood[p.Trustee] = true
		}
		for _, p := range cands {
			if inGood[p.Trustee] || blamed[p.Trustee] {
				continue
			}
			probe := append([]*TrusteePost(nil), good...)
			probe[0] = p
			if !f.check(probe) {
				blamed[p.Trustee] = true
			}
		}
	}
	out := make([]int, 0, len(blamed))
	for t := range blamed {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// findGoodSubset searches for a size-ht subset passing the row check:
// single spare-swaps against the primary subset first (the common case —
// one bad member, ht+1 posts available), then full enumeration over the
// candidates. Returns nil if nothing passes.
func findGoodSubset(cands []*TrusteePost, ht int, f rowCheck) []*TrusteePost {
	subset := cands[:ht]
	spares := cands[ht:]
	probe := make([]*TrusteePost, ht)
	for _, sp := range spares {
		for i := range subset {
			copy(probe, subset)
			probe[i] = sp
			if f.check(probe) {
				return append([]*TrusteePost(nil), probe...)
			}
		}
	}
	// Per-row subset enumeration: C(len(cands), ht) checks of ONE row.
	var rec func(start, depth int) []*TrusteePost
	rec = func(start, depth int) []*TrusteePost {
		if depth == ht {
			if f.check(probe) {
				return append([]*TrusteePost(nil), probe...)
			}
			return nil
		}
		for i := start; i <= len(cands)-(ht-depth); i++ {
			probe[depth] = cands[i]
			if got := rec(i+1, depth+1); got != nil {
				return got
			}
		}
		return nil
	}
	return rec(0, 0)
}
