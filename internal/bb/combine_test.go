package bb_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ddemos/internal/bb"
	ddcore "ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
	"ddemos/internal/voter"
)

// publishSetup runs an election up to (and including) the push-to-BB phase,
// leaving the trustee publish phase to the test.
func publishSetup(t *testing.T, votes []int, numTrustees int) (*ddcore.Cluster, *ea.ElectionData) {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "bb-combine-test",
		Options:     []string{"x", "y"},
		NumBallots:  len(votes),
		NumVC:       4,
		NumBB:       3,
		NumTrustees: numTrustees,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("bb-combine-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ddcore.NewCluster(data, ddcore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	services := make([]voter.Service, len(cluster.VCs))
	for i, n := range cluster.VCs {
		services[i] = n
	}
	for i, opt := range votes {
		if opt < 0 {
			continue
		}
		cl := &voter.Client{Ballot: data.Ballots[i], Services: services, Patience: 10 * time.Second}
		if _, err := cl.Cast(ctx, opt); err != nil {
			t.Fatalf("voter %d: %v", i, err)
		}
	}
	sets, err := cluster.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.PushToBB(sets); err != nil {
		t.Fatal(err)
	}
	return cluster, data
}

// TestCombineRunsOffLock pins the tentpole property of the publish-phase
// rebuild: the expensive combination runs in a background worker, so reads
// and further submissions complete while a combine attempt is in flight.
func TestCombineRunsOffLock(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3) // ht = 2
	node := cluster.BBs[0]

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	node.CombineGate = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	posts := make([]*bb.TrusteePost, 3)
	for i := range posts {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		if posts[i], err = tr.ComputePost(cluster.Reader); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.SubmitTrusteePost(posts[0]); err != nil {
		t.Fatal(err)
	}
	if err := node.SubmitTrusteePost(posts[1]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("combine worker never started")
	}

	// The worker is now parked inside a combine attempt. Every read and a
	// further submission must still complete promptly.
	done := make(chan error, 1)
	go func() {
		if _, err := node.VoteSet(); err != nil {
			done <- fmt.Errorf("vote set read: %w", err)
			return
		}
		if _, err := node.Cast(); err != nil {
			done <- fmt.Errorf("cast read: %w", err)
			return
		}
		done <- node.SubmitTrusteePost(posts[2])
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reads/submissions blocked behind an in-flight combine attempt")
	}
	if _, err := node.Result(); err == nil {
		t.Fatal("result published while the combine attempt was still gated")
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := node.WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 1 || res.Counts[1] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

// canonicalResult renders everything subset-independent about a Result.
// The commitments are perfectly binding, so honest nodes must agree on all
// of it no matter which trustee subsets their combines used.
func canonicalResult(res *bb.Result) string {
	c := *res
	c.Trustees = nil
	return fmt.Sprintf("%v", c)
}

// TestByzantineTrusteeSweep drives 100 seeded publish phases against fresh
// BB replica sets, rotating garbage-share trustees and an equivocating
// trustee (honest post to even nodes, corrupted post to odd nodes) through
// every position and shuffling submission order. Every honest node must
// publish the same correct result, blame only genuinely bad trustees, and
// converge in a bounded number of combine attempts (linear blame, not the
// seed's exponential subset search).
func TestByzantineTrusteeSweep(t *testing.T) {
	votes := []int{0, 1, 1, 0, -1, 1}
	const nt = 5 // ht = 3
	cluster, data := publishSetup(t, votes, nt)
	set, err := cluster.BBs[0].VoteSet()
	if err != nil {
		t.Fatal(err)
	}
	man := &data.BB.Manifest

	trustees := make([]*trustee.Trustee, nt)
	honest := make([]*bb.TrusteePost, nt)
	garbage := make([]*bb.TrusteePost, nt)
	for i := range trustees {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		trustees[i] = tr
		if honest[i], err = tr.ComputePost(cluster.Reader); err != nil {
			t.Fatal(err)
		}
		tr.SetByzantine(trustee.GarbageShares)
		if garbage[i], err = tr.ComputePost(cluster.Reader); err != nil {
			t.Fatal(err)
		}
		tr.SetByzantine(trustee.Honest)
	}

	// freshNodes boots a replica set and feeds it the agreed vote set and
	// enough master-key shares to publish the cast data. Node 0's durability
	// engine rotates by seed — memory-only, single WAL, 2-lane pooled WAL —
	// so the Byzantine mixes also exercise every journaling path (the same
	// rotation the VC restart sweeps run).
	journalDir := t.TempDir()
	freshNodes := func(seed int) []*bb.Node {
		nodes := make([]*bb.Node, 3)
		for ni := range nodes {
			node, err := bb.NewNode(data.BB)
			if err != nil {
				t.Fatal(err)
			}
			if ni == 0 && seed%3 != 0 {
				dir := filepath.Join(journalDir, fmt.Sprintf("seed-%d", seed))
				jopts := vc.JournalOptions{Pool: seed % 3} // 1 = single WAL, 2 = pooled
				if err := node.RecoverWithOptions(dir, jopts); err != nil {
					t.Fatal(err)
				}
			}
			for vi := 0; vi < man.FaultyVC()+1; vi++ {
				if err := node.SubmitVoteSet(vi, set, cluster.VCs[vi].SignVoteSet(set)); err != nil {
					t.Fatal(err)
				}
			}
			for vi := 0; vi < man.ReceiptThreshold(); vi++ {
				if err := node.SubmitMskShare(cluster.VCs[vi].MskShare()); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := node.Cast(); err != nil {
				t.Fatalf("fresh node did not publish cast data: %v", err)
			}
			nodes[ni] = node
		}
		return nodes
	}

	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	var want string
	for seed := 0; seed < seeds; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed))) //nolint:gosec // deterministic test
		bad := map[int]bool{}
		equiv := -1
		switch seed % 3 {
		case 0: // one garbage trustee
			bad[seed%nt] = true
		case 1: // two garbage trustees
			bad[seed%nt] = true
			bad[(seed+2)%nt] = true
		case 2: // one garbage + one equivocator
			bad[seed%nt] = true
			equiv = (seed + 2) % nt
		}

		nodes := freshNodes(seed)
		order := rnd.Perm(nt)
		for _, ti := range order {
			switch {
			case ti == equiv:
				trustees[ti].SetByzantine(trustee.Equivocate)
				if err := trustees[ti].PublishTo(cluster.Reader, nodes); err != nil {
					t.Fatalf("seed %d: equivocator publish: %v", seed, err)
				}
				trustees[ti].SetByzantine(trustee.Honest)
			case bad[ti]:
				for _, node := range nodes {
					if err := node.SubmitTrusteePost(garbage[ti]); err != nil {
						t.Fatalf("seed %d: garbage post rejected at ingress: %v", seed, err)
					}
				}
			default:
				for _, node := range nodes {
					if err := node.SubmitTrusteePost(honest[ti]); err != nil {
						t.Fatalf("seed %d: honest post: %v", seed, err)
					}
				}
			}
		}

		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		for ni, node := range nodes {
			res, err := node.WaitResult(ctx)
			if err != nil {
				t.Fatalf("seed %d node %d: no result: %v", seed, ni, err)
			}
			if res.Counts[0] != 2 || res.Counts[1] != 3 {
				t.Fatalf("seed %d node %d: counts = %v", seed, ni, res.Counts)
			}
			got := canonicalResult(res)
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("seed %d node %d: result diverges from other honest nodes", seed, ni)
			}
			for _, blamedIdx := range node.BlamedTrustees() {
				if !bad[blamedIdx] && blamedIdx != equiv {
					t.Fatalf("seed %d node %d: honest trustee %d blamed", seed, ni, blamedIdx)
				}
				if blamedIdx == equiv && ni%2 == 0 {
					t.Fatalf("seed %d node %d: equivocator blamed on a node that saw only its honest post", seed, ni)
				}
			}
			if att := node.Metrics().CombineAttempts; att > 12 {
				t.Fatalf("seed %d node %d: %d combine attempts (blame should bound retries)", seed, ni, att)
			}
		}
		cancel()
		for _, node := range nodes {
			if err := node.Close(); err != nil {
				t.Fatalf("seed %d: closing node: %v", seed, err)
			}
		}
	}
}
