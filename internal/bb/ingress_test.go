package bb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/trustee"
)

// TestSubmitVoteSetPinsFirstSubmission is the regression test for the
// overwrite bug: a VC's second, different (but validly signed) vote set
// silently replaced its first, letting a flip-flopping Byzantine VC retract
// a submission that had already counted toward the fv+1 quorum. The first
// signature-verified set per VC index is now pinned; equivocation is
// rejected and counted, identical resubmission is acked.
func TestSubmitVoteSetPinsFirstSubmission(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3)
	set, err := cluster.BBs[0].VoteSet()
	if err != nil {
		t.Fatal(err)
	}
	node, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.SubmitVoteSet(0, set, cluster.VCs[0].SignVoteSet(set)); err != nil {
		t.Fatal(err)
	}

	// Equivocation: same VC, validly signed, different content.
	if len(set) == 0 {
		t.Fatal("test needs a non-empty vote set")
	}
	forged := set[:len(set)-1]
	if err := node.SubmitVoteSet(0, forged, cluster.VCs[0].SignVoteSet(forged)); !errors.Is(err, bb.ErrBadSubmission) {
		t.Fatalf("equivocating vote set: err = %v, want ErrBadSubmission", err)
	}
	if got := node.Metrics().SetEquivocations; got != 1 {
		t.Fatalf("SetEquivocations = %d, want 1", got)
	}

	// Identical resubmission is a duplicate, not equivocation.
	if err := node.SubmitVoteSet(0, set, cluster.VCs[0].SignVoteSet(set)); err != nil {
		t.Fatalf("identical resubmission: %v", err)
	}
	if got := node.Metrics().SetEquivocations; got != 1 {
		t.Fatalf("SetEquivocations after resubmission = %d, want 1", got)
	}

	// The pinned set still counts toward the quorum: one more identical
	// submission reaches fv+1 and publishes.
	if err := node.SubmitVoteSet(1, set, cluster.VCs[1].SignVoteSet(set)); err != nil {
		t.Fatal(err)
	}
	got, err := node.VoteSet()
	if err != nil {
		t.Fatalf("vote set not agreed after fv+1 identical submissions: %v", err)
	}
	if len(got) != len(set) {
		t.Fatalf("agreed set has %d entries, want %d", len(got), len(set))
	}
}

// TestSubmitTrusteePostRejectsEquivocation is the regression test for the
// silent swallow: a duplicate trustee post with a *different* signed payload
// returned nil, acking an equivocation while keeping the first post. It is
// now detected by payload hash, rejected, and counted — and the pinned
// first post still combines into the correct result.
func TestSubmitTrusteePostRejectsEquivocation(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3) // ht = 2
	posts := honestPosts(t, cluster.Reader, data, 3)
	node := cluster.BBs[0]

	// A second validly-signed post from trustee 0 with different content.
	tr, err := trustee.New(data.Trustees[0])
	if err != nil {
		t.Fatal(err)
	}
	tr.SetByzantine(trustee.GarbageShares)
	garbage, err := tr.ComputePost(cluster.Reader)
	if err != nil {
		t.Fatal(err)
	}

	if err := node.SubmitTrusteePost(posts[0]); err != nil {
		t.Fatal(err)
	}
	if err := node.SubmitTrusteePost(garbage); !errors.Is(err, bb.ErrBadSubmission) {
		t.Fatalf("equivocating post: err = %v, want ErrBadSubmission", err)
	}
	m := node.Metrics()
	if m.PostEquivocations != 1 {
		t.Fatalf("PostEquivocations = %d, want 1", m.PostEquivocations)
	}

	// Identical resend is acked without a second acceptance.
	if err := node.SubmitTrusteePost(posts[0]); err != nil {
		t.Fatalf("identical resend: %v", err)
	}
	if got := node.Metrics().PostsAccepted; got != 1 {
		t.Fatalf("PostsAccepted = %d, want 1", got)
	}

	// The pinned honest post combines: one more honest post reaches ht.
	if err := node.SubmitTrusteePost(posts[1]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := node.WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 1 || res.Counts[1] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
	if blamed := node.BlamedTrustees(); len(blamed) != 0 {
		t.Fatalf("equivocation rejected at ingress must not reach blame, got %v", blamed)
	}
}
