package bb

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"ddemos/internal/crypto/group"
	"ddemos/internal/vc"
)

// This file is the durable-runtime-state layer of a BB replica, built on the
// same vc.JournalBackend engines (single-WAL, pooled, memory) the Vote
// Collector uses. The journal version of the paper (arXiv:1608.00849) runs
// all runtime state on durable storage; here every externally-visible BB
// transition — an accepted vote-set submission, an accepted master-key
// share, an accepted trustee post, a blame verdict, the installed Result —
// is logged as one record.
//
// Ordering discipline: mutate, then append, then ack. The single-WAL
// engine's snapshot captures the in-memory state and truncates the log
// atomically, so a record appended *before* its mutation is installed could
// be truncated away while the capture missed its effect — the record would
// be lost. Appending after the install closes that window: a crash between
// install and append loses the record, but no ack was given, so the
// submitter retries. The Strict ack policy strengthens this to "no ack
// without a durable record" via per-item durable flags: an append failure
// refuses the ack, and the duplicate fast path re-attempts the append on
// the retry. Result and blame installs have no ack to refuse and are
// journaled best-effort — a lost record is re-derived after recovery by
// recombining the journaled posts, and the perfectly-binding commitments
// make that recombination canonical (see combine.go).
//
// Record kinds (payload layout, big-endian; "bytes" = u32 length prefix):
//
//	set:    kind u8 | vcIndex u64 | count u32 | { serial u64 | code bytes }*
//	share:  kind u8 | index u64   | value bytes
//	post:   kind u8 | trustee u64 | gob(TrusteePost) bytes
//	blame:  kind u8 | trustee u64
//	result: kind u8 | 0 u64       | gob(Result) bytes
//
// Every record opens with `kind u8 | key u64` so the pooled engine's lane
// routing (bytes [1,9) of the record) applies unchanged; laneState mirrors
// it through vc.JournalKeyLane. Kinds start at 0x11 to stay disjoint from
// the VC's record kinds (1..6) — in particular recVSC (6), which the pooled
// router special-cases into lane 0 — so a VC directory mistakenly opened by
// a BB node fails loudly at replay instead of mis-routing.
const (
	bbRecSet byte = iota + 0x11
	bbRecShare
	bbRecPost
	bbRecBlame
	bbRecResult
)

// errBadBBRecord wraps journal decode failures (CRC passed but the payload
// does not parse: version skew or a foreign file).
var errBadBBRecord = errors.New("bb: malformed journal record")

// ErrClosed is returned by write paths after Close.
var ErrClosed = errors.New("bb: node closed")

// --- record encoding -------------------------------------------------------

func bbAppendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b))) //nolint:gosec // protocol-bounded
	return append(dst, b...)
}

func bbRecHeader(kind byte, key uint64) []byte {
	dst := append(make([]byte, 0, 9), kind)
	return binary.BigEndian.AppendUint64(dst, key)
}

func encBBSet(vcIndex int, set []vc.VotedBallot) []byte {
	dst := bbRecHeader(bbRecSet, uint64(vcIndex))              //nolint:gosec // validated index
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(set))) //nolint:gosec // protocol-bounded
	for _, vb := range set {
		dst = binary.BigEndian.AppendUint64(dst, vb.Serial)
		dst = bbAppendBytes(dst, vb.Code)
	}
	return dst
}

func encBBShare(index uint32, value *big.Int) []byte {
	dst := bbRecHeader(bbRecShare, uint64(index))
	return bbAppendBytes(dst, group.ScalarBytes(value))
}

// encBBPost gob-encodes the post. Gob is canonical here: TrusteePost holds
// no maps, big.Int marshals by value (sign + magnitude, normalized on
// decode), and nil/empty slices collapse to the same omitted zero field —
// so encode(decode(encode(p))) == encode(p), which is what makes recovery a
// StateHash fixpoint.
func encBBPost(p *TrusteePost) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, err
	}
	dst := bbRecHeader(bbRecPost, uint64(p.Trustee)) //nolint:gosec // validated index
	return bbAppendBytes(dst, buf.Bytes()), nil
}

func encBBBlame(trustee int) []byte {
	return bbRecHeader(bbRecBlame, uint64(trustee)) //nolint:gosec // validated index
}

func encBBResult(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return nil, err
	}
	dst := bbRecHeader(bbRecResult, 0)
	return bbAppendBytes(dst, buf.Bytes()), nil
}

// bdec is a cursor over one record payload.
type bdec struct {
	buf []byte
	bad bool
}

func (d *bdec) u8() byte {
	if d.bad || len(d.buf) < 1 {
		d.bad = true
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *bdec) u32() uint32 {
	if d.bad || len(d.buf) < 4 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *bdec) u64() uint64 {
	if d.bad || len(d.buf) < 8 {
		d.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *bdec) bytes() []byte {
	n := d.u32()
	if d.bad || uint64(n) > uint64(len(d.buf)) {
		d.bad = true
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

// --- node recovery ---------------------------------------------------------

// Recover rebuilds the node's runtime state (vote-set submissions, msk
// shares, trustee posts, blame verdicts, the Result) from the snapshot and
// write-ahead log in dir (both may be absent on first boot) and attaches
// the journal so every later transition is logged there. Recovery is
// idempotent: recovering the same directory twice yields an identical
// StateHash.
func (n *Node) Recover(dir string) error {
	return n.RecoverWithOptions(dir, vc.JournalOptions{})
}

// RecoverWithOptions is Recover with explicit durability tuning (engine
// selection, pool size, sync cadence, ack policy).
func (n *Node) RecoverWithOptions(dir string, opts vc.JournalOptions) error {
	j, err := vc.OpenJournal(dir, opts)
	if err != nil {
		return err
	}
	if err := n.RecoverBackend(j, opts.Policy); err != nil {
		_ = j.Close()
		return err
	}
	return nil
}

// RecoverBackend replays an already opened backend into the node and
// attaches it — the entry point for custom backends (in-memory, fault
// injection). The caller keeps ownership of the backend until this returns
// nil; afterwards Close closes it. The combine worker is re-kicked after
// the journal is attached, so blame verdicts and a Result derived from the
// replayed posts land in the journal like live ones.
func (n *Node) RecoverBackend(j vc.JournalBackend, policy vc.AckPolicy) error {
	if err := j.Replay(n.applyJournalRecord); err != nil {
		return err
	}
	n.mu.Lock()
	n.finishRecoveryLocked()
	n.journal = j
	n.journalPolicy = policy
	n.kickCombineLocked()
	n.mu.Unlock()
	return nil
}

// applyJournalRecord applies one persisted transition. Records are monotone
// first-wins facts, so application is idempotent and order-independent —
// snapshot/log overlap and duplicate retry appends are no-ops. Signatures
// verified before a record was logged are not re-verified; structural shape
// is, because a panic on hostile bytes is worse than a refused recovery.
func (n *Node) applyJournalRecord(payload []byte) error {
	man := &n.init.Manifest
	d := &bdec{buf: payload}
	kind := d.u8()
	key := d.u64()
	switch kind {
	case bbRecSet:
		cnt := d.u32()
		if d.bad || key >= uint64(man.NumVC) || uint64(cnt) > uint64(man.NumBallots) {
			return errBadBBRecord
		}
		set := make([]vc.VotedBallot, 0, cnt)
		for i := uint32(0); i < cnt; i++ {
			set = append(set, vc.VotedBallot{Serial: d.u64(), Code: d.bytes()})
		}
		if d.bad || len(d.buf) != 0 {
			return errBadBBRecord
		}
		vcIndex := int(key) //nolint:gosec // bounds-checked
		n.mu.Lock()
		if _, ok := n.setSubs[vcIndex]; !ok {
			n.setSubs[vcIndex] = set
		}
		n.setDurable[vcIndex] = true
		n.mu.Unlock()
	case bbRecShare:
		value := d.bytes()
		if d.bad || len(d.buf) != 0 || key == 0 || key > uint64(man.NumVC) {
			return errBadBBRecord
		}
		v, err := group.DecodeScalar(value)
		if err != nil {
			return fmt.Errorf("%w: share value: %v", errBadBBRecord, err)
		}
		index := uint32(key) //nolint:gosec // bounds-checked
		n.mu.Lock()
		if _, ok := n.mskShares[index]; !ok {
			n.mskShares[index] = v
		}
		n.shareDurable[index] = true
		n.mu.Unlock()
	case bbRecPost:
		blob := d.bytes()
		if d.bad || len(d.buf) != 0 {
			return errBadBBRecord
		}
		p := new(TrusteePost)
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(p); err != nil {
			return fmt.Errorf("%w: trustee post: %v", errBadBBRecord, err)
		}
		if p.Trustee < 0 || p.Trustee >= man.NumTrustees || uint64(p.Trustee) != key ||
			p.ShareIndex != uint32(p.Trustee)+1 { //nolint:gosec // bounds-checked
			return errBadBBRecord
		}
		if err := validatePostScalars(p, len(man.Options)); err != nil {
			return fmt.Errorf("%w: trustee post: %v", errBadBBRecord, err)
		}
		hash := HashPost(man.ElectionID, p)
		n.mu.Lock()
		if _, ok := n.posts[p.Trustee]; !ok {
			n.posts[p.Trustee] = p
			n.postHash[p.Trustee] = hash
		}
		n.postDurable[p.Trustee] = true
		n.mu.Unlock()
	case bbRecBlame:
		if d.bad || len(d.buf) != 0 || key >= uint64(man.NumTrustees) {
			return errBadBBRecord
		}
		n.mu.Lock()
		n.badPosts[int(key)] = true //nolint:gosec // bounds-checked
		n.mu.Unlock()
	case bbRecResult:
		blob := d.bytes()
		if d.bad || len(d.buf) != 0 || key != 0 {
			return errBadBBRecord
		}
		res := new(Result)
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(res); err != nil {
			return fmt.Errorf("%w: result: %v", errBadBBRecord, err)
		}
		if err := validateResultShape(res, len(man.Options)); err != nil {
			return fmt.Errorf("%w: result: %v", errBadBBRecord, err)
		}
		n.mu.Lock()
		if n.result == nil {
			n.result = res
			close(n.resultCh)
		}
		n.resultDurable = true
		n.mu.Unlock()
	default:
		return fmt.Errorf("%w: unknown kind %d", errBadBBRecord, kind)
	}
	return nil
}

// validateResultShape rejects a replayed Result whose scalar slices could
// panic later consumers (gob decodes absent fields to nil pointers).
func validateResultShape(res *Result, m int) error {
	if len(res.Counts) != m || len(res.TallyMs) != m || len(res.TallyRs) != m {
		return errors.New("tally arity")
	}
	for j := 0; j < m; j++ {
		if res.TallyMs[j] == nil || res.TallyRs[j] == nil {
			return errors.New("nil tally opening")
		}
	}
	for i := range res.Openings {
		o := &res.Openings[i]
		if len(o.Ms) != m || len(o.Rs) != m {
			return errors.New("opening arity")
		}
		for j := 0; j < m; j++ {
			if o.Ms[j] == nil || o.Rs[j] == nil {
				return errors.New("nil opening")
			}
		}
	}
	for i := range res.Proofs {
		pf := &res.Proofs[i]
		if len(pf.Bits) != m {
			return errors.New("proof arity")
		}
		for j := range pf.Bits {
			b := &pf.Bits[j]
			if b.C0 == nil || b.C1 == nil || b.Z0 == nil || b.Z1 == nil {
				return errors.New("nil bit final")
			}
		}
		if pf.Sum.Z == nil {
			return errors.New("nil sum final")
		}
	}
	return nil
}

// finishRecoveryLocked derives the published state the journal does not
// store directly: the fv+1 vote-set quorum, the reconstructed master key,
// the cast data, and the per-post share indexes. Each derivation is
// order-independent — at most one vote-set value can reach fv+1 (two
// quorums would each need an honest VC, and honest VCs agree), any hv
// EA-verified shares reconstruct the same secret, and indexing a post
// depends only on the post and the cast data — so recovery lands on the
// same state the live node had, whatever order records were appended in.
// Caller holds n.mu.
func (n *Node) finishRecoveryLocked() {
	man := &n.init.Manifest
	if !n.haveSet {
		need := man.FaultyVC() + 1
		idxs := make([]int, 0, len(n.setSubs))
		for i := range n.setSubs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			set := n.setSubs[i]
			count := 0
			for _, other := range n.setSubs {
				if voteSetsEqual(set, other) {
					count++
				}
			}
			if count >= need {
				n.voteSet = set
				n.haveSet = true
				break
			}
		}
	}
	n.tryReconstructMskLocked()
	// Re-index replayed posts against the republished cast data. A post
	// that cannot be indexed — a corrupt directory where the cast data (or
	// the post's required shares) went missing — is dropped and must be
	// resubmitted; its durable flag is cleared so a resubmission journals
	// a fresh record.
	for t, p := range n.posts {
		if n.shareIdx[t] != nil {
			continue
		}
		var idx *postShares
		if n.cast != nil {
			idx, _ = n.indexPost(p, n.usedParts)
		}
		if idx == nil {
			delete(n.posts, t)
			delete(n.postHash, t)
			delete(n.postDurable, t)
			continue
		}
		n.shareIdx[t] = idx
	}
}

// --- journaling hooks ------------------------------------------------------

// journaled reports whether a journal is attached (false after Close).
func (n *Node) journaled() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.journal != nil
}

// strictJournal reports whether a journal failure must refuse the dependent
// submission ack.
func (n *Node) strictJournal() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.journal != nil && n.journalPolicy == vc.PolicyStrict
}

// journalAppend logs transition records (no-op without a journal). Must not
// be called while holding n.mu: the single-WAL engine's snapshot runs
// synchronously inside MaybeSnapshot and serializes state via laneState,
// which takes n.mu.
func (n *Node) journalAppend(recs ...[]byte) error {
	n.mu.Lock()
	j := n.journal
	n.mu.Unlock()
	if j == nil || len(recs) == 0 {
		return nil
	}
	if err := j.Append(recs); err != nil {
		n.metrics.JournalErrors.Add(1)
		return err
	}
	n.metrics.JournalRecords.Add(int64(len(recs)))
	j.MaybeSnapshot(n.laneState, func(err error) {
		if err != nil {
			n.metrics.JournalErrors.Add(1)
		} else {
			n.metrics.Snapshots.Add(1)
		}
	})
	return nil
}

// journalSubmission logs the record behind an already-installed submission
// and settles the ack under the node's policy: Available counts an append
// failure and acks from memory; Strict refuses the ack, leaving the
// duplicate fast path to re-attempt the append when the submitter retries.
// mark runs under n.mu once the record is durable (it sets the per-item
// durable flag the fast path consults).
func (n *Node) journalSubmission(rec []byte, mark func()) error {
	if err := n.journalAppend(rec); err != nil {
		if n.strictJournal() {
			return fmt.Errorf("bb: submission accepted but not journaled under strict policy: %w", err)
		}
		return nil
	}
	n.mu.Lock()
	mark()
	n.mu.Unlock()
	return nil
}

// journalResult makes an installed Result durable. Best-effort by design:
// Strict governs submission acks, not installs — there is no ack to refuse
// here, and a lost result record is re-derived after recovery by
// recombining the journaled posts (canonically, since the commitments are
// perfectly binding).
func (n *Node) journalResult(res *Result) {
	if !n.journaled() {
		return
	}
	rec, err := encBBResult(res)
	if err != nil {
		n.metrics.JournalErrors.Add(1)
		return
	}
	if n.journalAppend(rec) == nil {
		n.mu.Lock()
		n.resultDurable = true
		n.mu.Unlock()
	}
}

// Close marks the node stopped and closes its journal, flushing buffered
// appends. Subsequent writes fail with ErrClosed; reads keep serving the
// in-memory state. A combine worker still in flight exits without
// installing, and its late appends hit the detached (closed) backend
// harmlessly — they can never touch the directory a restarted incarnation
// has reopened.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	j := n.journal
	n.journal = nil
	n.mu.Unlock()
	if j != nil {
		return j.Close()
	}
	return nil
}

// --- state serialization ---------------------------------------------------

// serializeState dumps the node's entire runtime state as journal records —
// the basis of StateHash and the single-lane snapshot payload.
func (n *Node) serializeState() [][]byte {
	return n.laneState(0, 1)
}

// laneState is the node's StateSource: lane's share of the runtime state as
// journal records, routed by each record's key through the same hash the
// pooled engine applied to the appends. Deterministic: every map walks in
// sorted key order. Unencodable entries (cannot happen for state that came
// through ingress or replay; defensive) are skipped and counted — the
// corresponding WAL records then simply survive the truncation.
func (n *Node) laneState(lane, lanes int) [][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out [][]byte
	vcIdxs := make([]int, 0, len(n.setSubs))
	for i := range n.setSubs {
		vcIdxs = append(vcIdxs, i)
	}
	sort.Ints(vcIdxs)
	for _, i := range vcIdxs {
		if vc.JournalKeyLane(uint64(i), lanes) != lane { //nolint:gosec // validated index
			continue
		}
		out = append(out, encBBSet(i, n.setSubs[i]))
	}
	shIdxs := make([]uint32, 0, len(n.mskShares))
	for idx := range n.mskShares {
		shIdxs = append(shIdxs, idx)
	}
	sort.Slice(shIdxs, func(i, k int) bool { return shIdxs[i] < shIdxs[k] })
	for _, idx := range shIdxs {
		if vc.JournalKeyLane(uint64(idx), lanes) != lane {
			continue
		}
		out = append(out, encBBShare(idx, n.mskShares[idx]))
	}
	tIdxs := make([]int, 0, len(n.posts))
	for t := range n.posts {
		tIdxs = append(tIdxs, t)
	}
	sort.Ints(tIdxs)
	for _, t := range tIdxs {
		if vc.JournalKeyLane(uint64(t), lanes) != lane { //nolint:gosec // validated index
			continue
		}
		rec, err := encBBPost(n.posts[t])
		if err != nil {
			n.metrics.JournalErrors.Add(1)
			continue
		}
		out = append(out, rec)
	}
	bIdxs := make([]int, 0, len(n.badPosts))
	for t := range n.badPosts {
		bIdxs = append(bIdxs, t)
	}
	sort.Ints(bIdxs)
	for _, t := range bIdxs {
		if vc.JournalKeyLane(uint64(t), lanes) != lane { //nolint:gosec // validated index
			continue
		}
		out = append(out, encBBBlame(t))
	}
	if n.result != nil && vc.JournalKeyLane(0, lanes) == lane {
		rec, err := encBBResult(n.result)
		if err != nil {
			n.metrics.JournalErrors.Add(1)
		} else {
			out = append(out, rec)
		}
	}
	return out
}

// StateHash digests the node's runtime state. Two nodes (or one node before
// and after a recover cycle) with identical state hash identically — the
// acceptance check for recovery idempotence, mirroring vc.Node.StateHash.
func (n *Node) StateHash() [32]byte {
	h := sha256.New()
	var lenBuf [4]byte
	for _, rec := range n.serializeState() {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec))) //nolint:gosec // record-sized
		h.Write(lenBuf[:])
		h.Write(rec)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
