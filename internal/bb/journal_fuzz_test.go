package bb

import (
	"math/big"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ea"
	"ddemos/internal/vc"
)

var (
	fuzzInitOnce sync.Once
	fuzzInit     *ea.BBInit
	fuzzInitErr  error
)

// fuzzBBInit builds one tiny election's BB init data, shared across fuzz
// iterations (EA setup does real EC math; doing it per input would starve
// the fuzzer).
func fuzzBBInit(tb testing.TB) *ea.BBInit {
	tb.Helper()
	fuzzInitOnce.Do(func() {
		start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
		data, err := ea.Setup(ea.Params{
			ElectionID:  "bb-journal-fuzz",
			Options:     []string{"x", "y"},
			NumBallots:  1,
			NumVC:       4,
			NumBB:       1,
			NumTrustees: 1,
			VotingStart: start,
			VotingEnd:   start.Add(time.Hour),
			Seed:        []byte("bb-journal-fuzz"),
		})
		if err != nil {
			fuzzInitErr = err
			return
		}
		fuzzInit = data.BB
	})
	if fuzzInitErr != nil {
		tb.Fatal(fuzzInitErr)
	}
	return fuzzInit
}

// FuzzBBJournalReplay feeds arbitrary bytes through the journal replay path.
// The bar is no-panic: a record that fails structural validation must be
// refused with an error (a poisoned directory aborts recovery loudly), never
// crash the process or install state that later panics a combine attempt.
func FuzzBBJournalReplay(f *testing.F) {
	fuzzBBInit(f) // fail fast if setup is broken
	post := &TrusteePost{
		Trustee:    0,
		ShareIndex: 1,
		TallyMs:    []*big.Int{big.NewInt(1), big.NewInt(2)},
		TallyRs:    []*big.Int{big.NewInt(3), big.NewInt(4)},
	}
	postRec, err := encBBPost(post)
	if err != nil {
		f.Fatal(err)
	}
	resRec, err := encBBResult(&Result{
		Counts:  []int64{1, 0},
		TallyMs: []*big.Int{big.NewInt(1), big.NewInt(0)},
		TallyRs: []*big.Int{big.NewInt(2), big.NewInt(0)},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encBBSet(0, []vc.VotedBallot{{Serial: 1, Code: []byte("code")}}))
	f.Add(encBBShare(1, big.NewInt(42)))
	f.Add(encBBBlame(0))
	f.Add(postRec)
	f.Add(resRec)
	f.Add([]byte{})
	f.Add([]byte{bbRecResult, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 1})

	f.Fuzz(func(t *testing.T, rec []byte) {
		node, err := NewNode(fuzzBBInit(t))
		if err != nil {
			t.Fatal(err)
		}
		mem := vc.NewMemJournal(vc.JournalOptions{})
		if err := mem.Append([][]byte{rec}); err != nil {
			t.Fatal(err)
		}
		if err := node.RecoverBackend(mem, vc.PolicyAvailable); err != nil {
			return // refused recovery is the correct response to garbage
		}
		// Accepted records must leave a node whose state round-trips: the
		// fixpoint property may not depend on which bytes got us here.
		h1 := node.StateHash()
		second, err := NewNode(fuzzBBInit(t))
		if err != nil {
			t.Fatal(err)
		}
		replay := vc.NewMemJournal(vc.JournalOptions{})
		if err := replay.Append(node.serializeState()); err != nil {
			t.Fatal(err)
		}
		if err := second.RecoverBackend(replay, vc.PolicyAvailable); err != nil {
			t.Fatalf("state serialized by a node failed to replay: %v", err)
		}
		if second.StateHash() != h1 {
			t.Fatal("serialize/replay is not a StateHash fixpoint")
		}
		_ = node.Close()
		_ = second.Close()
	})
}
