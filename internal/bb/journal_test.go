package bb_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
)

// honestPosts computes every trustee's honest post once.
func honestPosts(t *testing.T, reader *bb.Reader, data *ea.ElectionData, nt int) []*bb.TrusteePost {
	t.Helper()
	posts := make([]*bb.TrusteePost, nt)
	for i := range posts {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		if posts[i], err = tr.ComputePost(reader); err != nil {
			t.Fatal(err)
		}
	}
	return posts
}

// TestBBJournalRecoverMidPosting is the tentpole acceptance scenario: a
// journaled replica hard-stopped after accepting ht-1 trustee posts must
// recover its whole publish-phase state from disk, accept the remaining
// post, and publish a result canonically identical to a never-crashed
// replica's. Recovering the directory twice must be a StateHash fixpoint.
func TestBBJournalRecoverMidPosting(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3) // ht = 2
	posts := honestPosts(t, cluster.Reader, data, 3)
	dir := t.TempDir()

	node, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Recover(dir); err != nil {
		t.Fatal(err)
	}
	feedBBState(t, cluster, node)
	if err := node.SubmitTrusteePost(posts[0]); err != nil { // ht-1 = 1 post
		t.Fatal(err)
	}
	if err := node.Close(); err != nil { // hard stop
		t.Fatal(err)
	}
	if err := node.SubmitTrusteePost(posts[1]); err == nil {
		t.Fatal("closed node accepted a post")
	}

	recovered, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Cast(); err != nil {
		t.Fatalf("recovered node lost the cast data: %v", err)
	}
	// The journaled post survives: resubmitting it is a duplicate ack, and
	// one more post reaches ht.
	if err := recovered.SubmitTrusteePost(posts[0]); err != nil {
		t.Fatalf("recovered node rejected its own journaled post: %v", err)
	}
	if err := recovered.SubmitTrusteePost(posts[1]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := recovered.WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Never-crashed replica over the same election.
	baseline := cluster.BBs[1]
	for _, p := range posts[:2] {
		if err := baseline.SubmitTrusteePost(p); err != nil {
			t.Fatal(err)
		}
	}
	bres, err := baseline.WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalResult(res) != canonicalResult(bres) {
		t.Fatal("recovered replica's result diverges from the never-crashed replica")
	}

	// Recover-twice fixpoint: the published result was journaled, so a
	// second recovery reproduces the exact post-publication state.
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := again.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if again.StateHash() != recovered.StateHash() {
		t.Fatal("recover-twice is not a StateHash fixpoint")
	}
	if ares, err := again.Result(); err != nil {
		t.Fatalf("second recovery lost the result: %v", err)
	} else if canonicalResult(ares) != canonicalResult(res) {
		t.Fatal("second recovery changed the result")
	}
	_ = again.Close()
}

// feedBBState mirrors publishSetup's PushToBB for a standalone node.
func feedBBState(t *testing.T, cluster interface {
	VC(i int) *vc.Node
	BB(i int) *bb.Node
}, node *bb.Node) {
	t.Helper()
	set, err := cluster.BB(0).VoteSet()
	if err != nil {
		t.Fatal(err)
	}
	man, err := cluster.BB(0).Manifest()
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < man.FaultyVC()+1; vi++ {
		if err := node.SubmitVoteSet(vi, set, cluster.VC(vi).SignVoteSet(set)); err != nil {
			t.Fatal(err)
		}
	}
	for vi := 0; vi < man.ReceiptThreshold(); vi++ {
		if err := node.SubmitMskShare(cluster.VC(vi).MskShare()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := node.Cast(); err != nil {
		t.Fatalf("node did not publish cast data: %v", err)
	}
}

// TestBBJournalTornTail verifies recovery tolerates a torn WAL tail (the
// crash-mid-write case): the journal replays its intact prefix and the
// node finishes the election after resubmission.
func TestBBJournalTornTail(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3)
	posts := honestPosts(t, cluster.Reader, data, 3)
	dir := t.TempDir()

	node, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Recover(dir); err != nil {
		t.Fatal(err)
	}
	feedBBState(t, cluster, node)
	if err := node.SubmitTrusteePost(posts[0]); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the WAL tail mid-record.
	wal := filepath.Join(dir, "wal")
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 16 {
		t.Fatalf("wal unexpectedly small: %d bytes", info.Size())
	}
	if err := os.Truncate(wal, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	recovered, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Recover(dir); err != nil {
		t.Fatalf("torn-tail recovery failed: %v", err)
	}
	t.Cleanup(func() { _ = recovered.Close() })
	// Whatever the tear destroyed, resubmission restores it; the node must
	// still reach a correct result.
	feedBBState(t, cluster, recovered)
	for _, p := range posts[:2] {
		if err := recovered.SubmitTrusteePost(p); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := recovered.WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 1 || res.Counts[1] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

// TestBBJournalResultRecordLoss covers the crash window between result
// installation and its journal append: the record is best-effort, so a
// recovery that replays the posts but no result must re-derive the same
// result by recombining — canonically, because the commitments are
// perfectly binding.
func TestBBJournalResultRecordLoss(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3)
	posts := honestPosts(t, cluster.Reader, data, 3)

	mem := vc.NewMemJournal(vc.JournalOptions{})
	node, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.RecoverBackend(mem, vc.PolicyAvailable); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	gated := false
	node.CombineGate = func() {
		if !gated {
			gated = true
			close(entered)
		}
		<-release
	}
	feedBBState(t, cluster, node)
	for _, p := range posts[:2] {
		if err := node.SubmitTrusteePost(p); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("combine worker never started")
	}
	// Posts are journaled; now every further append fails, so the result
	// record is lost while the in-memory install still happens.
	mem.SetAppendError(errors.New("disk full"))
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := node.WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if node.Metrics().JournalErrors == 0 {
		t.Fatal("lost result append was not counted")
	}

	// "Crash" and recover from the same backend: no result record replays.
	mem.SetAppendError(nil)
	recovered, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.RecoverBackend(mem, vc.PolicyAvailable); err != nil {
		t.Fatal(err)
	}
	rres, err := recovered.WaitResult(ctx)
	if err != nil {
		t.Fatalf("recovered node did not recombine a result: %v", err)
	}
	if canonicalResult(rres) != canonicalResult(res) {
		t.Fatal("recombined result diverges from the lost one")
	}
}

// TestBBJournalStrictRefusal pins the Strict ack policy: an accepted
// submission whose record fails to land is refused, and the retry (the
// duplicate fast path) re-attempts the append until it sticks.
func TestBBJournalStrictRefusal(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1}, 3)
	posts := honestPosts(t, cluster.Reader, data, 3)
	man := &data.BB.Manifest

	mem := vc.NewMemJournal(vc.JournalOptions{})
	node, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.RecoverBackend(mem, vc.PolicyStrict); err != nil {
		t.Fatal(err)
	}
	set, err := cluster.BBs[0].VoteSet()
	if err != nil {
		t.Fatal(err)
	}

	mem.SetAppendError(errors.New("disk full"))
	if err := node.SubmitVoteSet(0, set, cluster.VCs[0].SignVoteSet(set)); err == nil {
		t.Fatal("strict node acked a vote set whose record did not land")
	}
	if err := node.SubmitMskShare(cluster.VCs[0].MskShare()); err == nil {
		t.Fatal("strict node acked an msk share whose record did not land")
	}
	// The submissions are installed in memory regardless — only the acks
	// were refused — so the retries go through the duplicate fast path.
	mem.SetAppendError(nil)
	before := mem.Records()
	if err := node.SubmitVoteSet(0, set, cluster.VCs[0].SignVoteSet(set)); err != nil {
		t.Fatalf("retry after journal recovery: %v", err)
	}
	if err := node.SubmitMskShare(cluster.VCs[0].MskShare()); err != nil {
		t.Fatalf("share retry after journal recovery: %v", err)
	}
	if mem.Records() != before+2 {
		t.Fatalf("retries appended %d records, want 2", mem.Records()-before)
	}

	// Same discipline for a trustee post, after publishing the cast data.
	for vi := 1; vi < man.FaultyVC()+1; vi++ {
		if err := node.SubmitVoteSet(vi, set, cluster.VCs[vi].SignVoteSet(set)); err != nil {
			t.Fatal(err)
		}
	}
	for vi := 1; vi < man.ReceiptThreshold(); vi++ {
		if err := node.SubmitMskShare(cluster.VCs[vi].MskShare()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := node.Cast(); err != nil {
		t.Fatal(err)
	}
	mem.SetAppendError(errors.New("disk full"))
	if err := node.SubmitTrusteePost(posts[0]); err == nil {
		t.Fatal("strict node acked a post whose record did not land")
	}
	mem.SetAppendError(nil)
	if err := node.SubmitTrusteePost(posts[0]); err != nil {
		t.Fatalf("post retry after journal recovery: %v", err)
	}
}

// TestBBJournalBackendDifferential runs one seeded publish phase on three
// replicas with different durability engines — memory-only, single WAL,
// pooled WAL — and requires identical canonical results live, plus
// identical StateHashes after the journaled replicas recover from disk.
func TestBBJournalBackendDifferential(t *testing.T) {
	cluster, data := publishSetup(t, []int{0, 1, 1, 0, -1, 1}, 3)
	posts := honestPosts(t, cluster.Reader, data, 3)

	singleDir, pooledDir := t.TempDir(), t.TempDir()
	memNode, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	singleNode, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := singleNode.Recover(singleDir); err != nil {
		t.Fatal(err)
	}
	pooledNode, err := bb.NewNode(data.BB)
	if err != nil {
		t.Fatal(err)
	}
	if err := pooledNode.RecoverWithOptions(pooledDir, vc.JournalOptions{Pool: 3}); err != nil {
		t.Fatal(err)
	}
	nodes := []*bb.Node{memNode, singleNode, pooledNode}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var want string
	for _, node := range nodes {
		feedBBState(t, cluster, node)
		for _, p := range posts {
			if err := node.SubmitTrusteePost(p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := node.WaitResult(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = canonicalResult(res)
		} else if canonicalResult(res) != want {
			t.Fatal("engines diverged on the canonical result")
		}
	}
	// StateHash is engine-independent: all three replicas hold the same
	// state, and recovery reproduces it bit-for-bit.
	if singleNode.StateHash() != memNode.StateHash() || pooledNode.StateHash() != memNode.StateHash() {
		t.Fatal("live StateHash differs across engines")
	}
	wantHash := memNode.StateHash()
	_ = singleNode.Close()
	_ = pooledNode.Close()
	for dir, opts := range map[string]vc.JournalOptions{
		singleDir: {},
		pooledDir: {Pool: 3},
	} {
		rec, err := bb.NewNode(data.BB)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.RecoverWithOptions(dir, opts); err != nil {
			t.Fatal(err)
		}
		if rec.StateHash() != wantHash {
			t.Fatalf("recovered StateHash from %s diverges", dir)
		}
		_ = rec.Close()
	}
}
