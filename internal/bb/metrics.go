package bb

import (
	"sync/atomic"
	"time"
)

// Metrics collects a BB node's operational counters for the publish phase,
// mirroring vc.Metrics. Everything is updated atomically; read a coherent
// copy with Node.Metrics().
type Metrics struct {
	PostsAccepted   atomic.Int64 // trustee posts stored after signature + shape checks
	PostsRejected   atomic.Int64 // trustee posts refused at ingress
	BadPostBlames   atomic.Int64 // posts identified as bad by the blame protocol
	CombineAttempts atomic.Int64 // combine passes over a candidate subset
	CombineNanos    atomic.Int64 // cumulative wall time spent in combine attempts
	BatchFallbacks  atomic.Int64 // batch-verify chunks re-checked per element
}

// Snapshot is a point-in-time copy of the metrics.
type Snapshot struct {
	PostsAccepted   int64
	PostsRejected   int64
	BadPostBlames   int64
	CombineAttempts int64
	CombineTime     time.Duration
	BatchFallbacks  int64
	ResultPublished bool
}

// Metrics returns a snapshot of the node's counters.
func (n *Node) Metrics() Snapshot {
	s := Snapshot{
		PostsAccepted:   n.metrics.PostsAccepted.Load(),
		PostsRejected:   n.metrics.PostsRejected.Load(),
		BadPostBlames:   n.metrics.BadPostBlames.Load(),
		CombineAttempts: n.metrics.CombineAttempts.Load(),
		CombineTime:     time.Duration(n.metrics.CombineNanos.Load()),
		BatchFallbacks:  n.metrics.BatchFallbacks.Load(),
	}
	n.mu.Lock()
	s.ResultPublished = n.result != nil
	n.mu.Unlock()
	return s
}
