package bb

import (
	"sync/atomic"
	"time"
)

// Metrics collects a BB node's operational counters for the publish phase,
// mirroring vc.Metrics. Everything is updated atomically; read a coherent
// copy with Node.Metrics().
type Metrics struct {
	PostsAccepted     atomic.Int64 // trustee posts stored after signature + shape checks
	PostsRejected     atomic.Int64 // trustee posts refused at ingress
	PostEquivocations atomic.Int64 // duplicate trustee posts with a different signed payload
	SetEquivocations  atomic.Int64 // vote-set submissions conflicting with the VC's pinned set
	BadPostBlames     atomic.Int64 // posts identified as bad by the blame protocol
	CombineAttempts   atomic.Int64 // combine passes over a candidate subset
	CombineNanos      atomic.Int64 // cumulative wall time spent in combine attempts
	BatchFallbacks    atomic.Int64 // batch-verify chunks re-checked per element
	JournalRecords    atomic.Int64 // records appended to the runtime-state journal
	JournalErrors     atomic.Int64 // journal append/snapshot/encode failures
	Snapshots         atomic.Int64 // completed journal snapshots
}

// Snapshot is a point-in-time copy of the metrics.
type Snapshot struct {
	PostsAccepted     int64
	PostsRejected     int64
	PostEquivocations int64
	SetEquivocations  int64
	BadPostBlames     int64
	CombineAttempts   int64
	CombineTime       time.Duration
	BatchFallbacks    int64
	JournalRecords    int64
	JournalErrors     int64
	Snapshots         int64
	ResultPublished   bool
}

// Metrics returns a snapshot of the node's counters.
func (n *Node) Metrics() Snapshot {
	s := Snapshot{
		PostsAccepted:     n.metrics.PostsAccepted.Load(),
		PostsRejected:     n.metrics.PostsRejected.Load(),
		PostEquivocations: n.metrics.PostEquivocations.Load(),
		SetEquivocations:  n.metrics.SetEquivocations.Load(),
		BadPostBlames:     n.metrics.BadPostBlames.Load(),
		CombineAttempts:   n.metrics.CombineAttempts.Load(),
		CombineTime:       time.Duration(n.metrics.CombineNanos.Load()),
		BatchFallbacks:    n.metrics.BatchFallbacks.Load(),
		JournalRecords:    n.metrics.JournalRecords.Load(),
		JournalErrors:     n.metrics.JournalErrors.Load(),
		Snapshots:         n.metrics.Snapshots.Load(),
	}
	n.mu.Lock()
	s.ResultPublished = n.result != nil
	n.mu.Unlock()
	return s
}
