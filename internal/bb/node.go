// Package bb implements the Bulletin Board subsystem (§III-G): a replicated
// service of isolated nodes that never talk to each other. Each node
// publishes its initialization data immediately, stays inert during
// election hours, accepts the final vote set once fv+1 identical copies
// arrive from VC nodes, reconstructs the vote-code master key from Nv-fv
// EA-signed shares, decrypts and publishes the cast vote codes, and finally
// combines ht trustee posts into the opened audit data, the completed
// zero-knowledge proofs and the election tally.
//
// Readers are expected to query all BB nodes and accept the answer returned
// by fb+1 of them; Reader automates that (the paper's Firefox extension).
package bb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/votecode"
	"ddemos/internal/ea"
	"ddemos/internal/vc"
)

// Errors returned by BB write paths.
var (
	// ErrNotReady is returned when reading a value not yet published.
	ErrNotReady = errors.New("bb: not published yet")
	// ErrBadSubmission is returned for invalid writes.
	ErrBadSubmission = errors.New("bb: invalid submission")
)

// CastMark locates one cast vote code on the shuffled BB lists.
type CastMark struct {
	Serial uint64
	Part   uint8
	Row    int
}

// CastData is everything published once the vote set is agreed and the
// master key reconstructed: the set itself, the decrypted per-row codes,
// the positions of the cast codes, and the voters' coins (the A/B choices
// in serial order) that seed the ZK challenge.
type CastData struct {
	VoteSet []vc.VotedBallot
	// Codes[serial-1][part][row] is the decrypted vote code.
	Codes [][2][][]byte
	Marks []CastMark
	Coins []byte
}

// Node is one Bulletin Board replica.
type Node struct {
	init *ea.BBInit

	mu          sync.Mutex
	setSubs     map[int][]vc.VotedBallot // per VC index, first signature-verified set (pinned)
	voteSet     []vc.VotedBallot
	haveSet     bool
	mskShares   map[uint32]*big.Int
	msk         []byte
	cast        *CastData
	usedParts   map[uint64]uint8 // serial → validly-used part (§III-H)
	tallyAgg    elgamal.VectorCiphertext
	tallyAggErr error
	posts       map[int]*TrusteePost
	postHash    map[int][32]byte    // per-trustee HashPost of the accepted post (equivocation check)
	shareIdx    map[int]*postShares // per-trustee share index, built at ingress
	badPosts    map[int]bool        // posts identified as bad by the blame protocol
	result      *Result
	resultCh    chan struct{} // closed when result is installed
	closed      bool

	// Durability layer (journal.go). The per-item flags record which
	// accepted submissions have a journal record on disk: Strict-policy
	// duplicate submissions re-attempt the append until the flag is set.
	journal       vc.JournalBackend
	journalPolicy vc.AckPolicy
	setDurable    map[int]bool
	shareDurable  map[uint32]bool
	postDurable   map[int]bool
	resultDurable bool

	combineRunning bool
	combinePending bool
	// combineCache holds per-ballot verified combinations; owned by the
	// single combine worker goroutine (handoff through combineRunning).
	combineCache map[uint64]*combinedBallot

	metrics Metrics

	// Lying simulates a Byzantine BB node: reads return corrupted data.
	// Writes are processed normally so the rest of the pipeline proceeds.
	Lying bool
	// CombineWorkers bounds the parallelism of combine attempts
	// (0 = GOMAXPROCS). Set before trustee posts arrive.
	CombineWorkers int
	// DisableBatchVerify forces per-element opening verification instead
	// of the batched random-linear-combination check.
	DisableBatchVerify bool
	// CombineGate, when set, is called (off-lock) at the start of every
	// combine attempt. Test hook for the off-lock property.
	CombineGate func()
}

// NewNode boots a BB replica from its initialization data (published
// immediately by definition).
func NewNode(init *ea.BBInit) (*Node, error) {
	if init == nil {
		return nil, errors.New("bb: missing init data")
	}
	return &Node{
		init:         init,
		setSubs:      make(map[int][]vc.VotedBallot),
		mskShares:    make(map[uint32]*big.Int),
		posts:        make(map[int]*TrusteePost),
		postHash:     make(map[int][32]byte),
		shareIdx:     make(map[int]*postShares),
		badPosts:     make(map[int]bool),
		resultCh:     make(chan struct{}),
		combineCache: make(map[uint64]*combinedBallot),
		setDurable:   make(map[int]bool),
		shareDurable: make(map[uint32]bool),
		postDurable:  make(map[int]bool),
	}, nil
}

// Manifest returns the public election description.
func (n *Node) Manifest() (ea.Manifest, error) {
	if n.Lying {
		m := n.init.Manifest
		m.ElectionID += "-forged"
		return m, nil
	}
	return n.init.Manifest, nil
}

// Init returns the full initialization data (commitments, encrypted codes,
// proof first moves) for verification by auditors.
func (n *Node) Init() (*ea.BBInit, error) {
	if n.Lying {
		forged := *n.init
		forged.SaltMsk[0] ^= 0xff
		return &forged, nil
	}
	return n.init, nil
}

// SubmitVoteSet records one VC node's final vote set. The set is accepted
// and published once fv+1 identical copies arrive (§III-G). The first
// signature-verified set per VC index is pinned: a later submission with a
// different set is equivocation and is rejected, so a flip-flopping
// Byzantine VC cannot retract a submission that already counted toward the
// fv+1 quorum. On a journaled node the record is appended after the install
// and before the ack (see journal.go for the ordering argument).
func (n *Node) SubmitVoteSet(vcIndex int, set []vc.VotedBallot, sigBytes []byte) error {
	man := &n.init.Manifest
	if vcIndex < 0 || vcIndex >= man.NumVC {
		return fmt.Errorf("%w: vc index %d", ErrBadSubmission, vcIndex)
	}
	if !vc.VerifyVoteSetSig(man, vcIndex, set, sigBytes) {
		return fmt.Errorf("%w: bad vote set signature from vc %d", ErrBadSubmission, vcIndex)
	}
	for i := range set {
		if set[i].Serial == 0 || set[i].Serial > uint64(man.NumBallots) {
			return fmt.Errorf("%w: serial %d out of range", ErrBadSubmission, set[i].Serial)
		}
		if i > 0 && set[i].Serial <= set[i-1].Serial {
			return fmt.Errorf("%w: vote set not sorted", ErrBadSubmission)
		}
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if prev, ok := n.setSubs[vcIndex]; ok {
		if !voteSetsEqual(prev, set) {
			n.metrics.SetEquivocations.Add(1)
			n.mu.Unlock()
			return fmt.Errorf("%w: vc %d equivocated on its vote set", ErrBadSubmission, vcIndex)
		}
		needRec := n.journal != nil && !n.setDurable[vcIndex]
		n.mu.Unlock()
		if !needRec {
			return nil
		}
		return n.journalSubmission(encBBSet(vcIndex, prev), func() { n.setDurable[vcIndex] = true })
	}
	n.setSubs[vcIndex] = set
	if !n.haveSet {
		// Count identical submissions.
		need := man.FaultyVC() + 1
		count := 0
		for _, other := range n.setSubs {
			if voteSetsEqual(set, other) {
				count++
			}
		}
		if count >= need {
			n.voteSet = set
			n.haveSet = true
			n.maybePublishCastLocked()
		}
	}
	journaled := n.journal != nil
	n.mu.Unlock()
	if !journaled {
		return nil
	}
	return n.journalSubmission(encBBSet(vcIndex, set), func() { n.setDurable[vcIndex] = true })
}

func voteSetsEqual(a, b []vc.VotedBallot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Serial != b[i].Serial || !bytes.Equal(a[i].Code, b[i].Code) {
			return false
		}
	}
	return true
}

// SubmitMskShare records one VC node's master-key share; with Nv-fv valid
// shares the key is reconstructed and verified against H_msk. On a
// journaled node the share is appended after the install and before the
// ack; shares arriving after the key is reconstructed add nothing and are
// acked without storage.
func (n *Node) SubmitMskShare(share ea.MskShare) error {
	man := &n.init.Manifest
	s := shamir.Share{Index: share.Index, Value: share.Value}
	if share.Index == 0 || int(share.Index) > man.NumVC ||
		!ea.VerifyMskShare(man.EAPublic, share.Sig, man.ElectionID, s) {
		return fmt.Errorf("%w: bad msk share", ErrBadSubmission)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.msk != nil {
		n.mu.Unlock()
		return nil
	}
	if _, dup := n.mskShares[share.Index]; dup {
		needRec := n.journal != nil && !n.shareDurable[share.Index]
		n.mu.Unlock()
		if !needRec {
			return nil
		}
		return n.journalSubmission(encBBShare(share.Index, share.Value),
			func() { n.shareDurable[share.Index] = true })
	}
	n.mskShares[share.Index] = share.Value
	n.tryReconstructMskLocked()
	journaled := n.journal != nil
	n.mu.Unlock()
	if !journaled {
		return nil
	}
	return n.journalSubmission(encBBShare(share.Index, share.Value),
		func() { n.shareDurable[share.Index] = true })
}

// tryReconstructMskLocked attempts master-key reconstruction from the
// currently-held shares and, on success, publishes the cast data. A failed
// combination is not an error — more shares may fix it. Caller holds n.mu.
// Shared by the submission path and recovery (finishRecoveryLocked): any hv
// EA-verified shares reconstruct the same secret, so the outcome does not
// depend on which subset or order the shares arrived in.
func (n *Node) tryReconstructMskLocked() {
	if n.msk != nil {
		return
	}
	hv := n.init.Manifest.ReceiptThreshold()
	if len(n.mskShares) < hv {
		return
	}
	shares := make([]shamir.Share, 0, hv)
	for idx, v := range n.mskShares {
		shares = append(shares, shamir.Share{Index: idx, Value: v})
		if len(shares) == hv {
			break
		}
	}
	secret, err := shamir.Combine(shares, hv)
	if err != nil {
		return // wait for more shares
	}
	msk, err := shamir.ScalarToSecret(secret)
	if err != nil || len(msk) != votecode.KeySize {
		return // wait for more shares
	}
	if !votecode.VerifyKey(n.init.HMsk, msk, n.init.SaltMsk[:]) {
		return // combination failed H_msk; more shares may fix it
	}
	n.msk = msk
	n.maybePublishCastLocked()
}

// maybePublishCastLocked decrypts all vote codes and locates the cast ones
// once both the vote set and the master key are available.
func (n *Node) maybePublishCastLocked() {
	if n.cast != nil || !n.haveSet || n.msk == nil {
		return
	}
	man := &n.init.Manifest
	cast := &CastData{
		VoteSet: n.voteSet,
		Codes:   make([][2][][]byte, man.NumBallots),
	}
	type loc struct {
		part uint8
		row  int
	}
	index := make(map[uint64]map[string]loc, man.NumBallots)
	for i := range n.init.Ballots {
		bbb := &n.init.Ballots[i]
		perBallot := make(map[string]loc, 2*len(bbb.Parts[0]))
		for part := 0; part < 2; part++ {
			rows := make([][]byte, len(bbb.Parts[part]))
			for row := range bbb.Parts[part] {
				code, err := votecode.Decrypt(n.msk, bbb.Parts[part][row].EncCode)
				if err != nil {
					continue // corrupt row: skip; auditors will notice
				}
				rows[row] = code
				perBallot[string(code)] = loc{part: uint8(part), row: row} //nolint:gosec // part<2
			}
			cast.Codes[i][part] = rows
		}
		index[bbb.Serial] = perBallot
	}
	for _, vb := range cast.VoteSet {
		l, ok := index[vb.Serial][string(vb.Code)]
		if !ok {
			continue // cast code not on this ballot: auditors will flag it
		}
		cast.Marks = append(cast.Marks, CastMark{Serial: vb.Serial, Part: l.part, Row: l.row})
		cast.Coins = append(cast.Coins, l.part)
	}
	sort.Slice(cast.Marks, func(i, j int) bool { return cast.Marks[i].Serial < cast.Marks[j].Serial })
	// Maintain the homomorphic tally aggregate incrementally: it is fixed
	// the moment the cast marks are published, so combine attempts (and
	// retries under Byzantine posts) never recompute the ciphertext sum.
	n.usedParts = UsedParts(man.MaxSelections, cast.Marks)
	n.tallyAgg, n.tallyAggErr = castTallyAggregate(n.init.Ballots, cast.Marks, n.usedParts)
	n.cast = cast
}

// UsedParts maps each validly-voted serial to its used part, applying the
// §III-H vote-set validation: a ballot with marks on both parts, or with
// more than maxSelections marks, is invalid and treated as unvoted (both
// parts are opened for audit, no tally contribution). Trustees and BB
// nodes share this helper so they cannot diverge on which rows enter the
// tally.
func UsedParts(maxSelections int, marks []CastMark) map[uint64]uint8 {
	per := make(map[uint64][]CastMark, len(marks))
	for _, mk := range marks {
		per[mk.Serial] = append(per[mk.Serial], mk)
	}
	out := make(map[uint64]uint8, len(per))
	for serial, ms := range per {
		part := ms[0].Part
		valid := len(ms) <= maxSelections
		for _, mk := range ms {
			if mk.Part != part {
				valid = false // both parts used: discard ballot
			}
		}
		if valid {
			out[serial] = part
		}
	}
	return out
}

// castTallyAggregate folds the commitment vectors of every validly-cast
// row into the homomorphic tally sum. An aggregation failure (malformed
// init data with inconsistent vector lengths) is reported, never silently
// truncated.
func castTallyAggregate(ballots []ea.BBBallot, marks []CastMark, used map[uint64]uint8) (elgamal.VectorCiphertext, error) {
	var agg elgamal.VectorCiphertext
	for _, mk := range marks {
		part, ok := used[mk.Serial]
		if !ok || part != mk.Part {
			continue
		}
		if mk.Serial == 0 || mk.Serial > uint64(len(ballots)) || mk.Part > 1 {
			continue
		}
		rows := ballots[mk.Serial-1].Parts[mk.Part]
		if mk.Row < 0 || mk.Row >= len(rows) {
			continue
		}
		ct := rows[mk.Row].Commitment
		if agg == nil {
			agg = append(elgamal.VectorCiphertext(nil), ct...)
			continue
		}
		var err error
		if agg, err = agg.Add(ct); err != nil {
			return nil, fmt.Errorf("bb: aggregating cast commitments at serial %d: %w", mk.Serial, err)
		}
	}
	return agg, nil
}

// VoteSet returns the agreed vote set once published.
func (n *Node) VoteSet() ([]vc.VotedBallot, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.haveSet {
		return nil, ErrNotReady
	}
	if n.Lying {
		// Drop the last vote — exactly the attack majority reads defeat.
		if len(n.voteSet) > 0 {
			return n.voteSet[:len(n.voteSet)-1], nil
		}
		return []vc.VotedBallot{{Serial: 1, Code: []byte("forged")}}, nil
	}
	return n.voteSet, nil
}

// Cast returns the published cast data (decrypted codes, marks, coins).
func (n *Node) Cast() (*CastData, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cast == nil {
		return nil, ErrNotReady
	}
	if n.Lying {
		forged := *n.cast
		forged.Coins = append([]byte(nil), n.cast.Coins...)
		for i := range forged.Coins {
			forged.Coins[i] = 1 - forged.Coins[i]
		}
		return &forged, nil
	}
	return n.cast, nil
}

// Result returns the final published result once trustees have posted.
func (n *Node) Result() (*Result, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.result == nil {
		return nil, ErrNotReady
	}
	if n.Lying {
		forged := *n.result
		forged.Counts = append([]int64(nil), n.result.Counts...)
		if len(forged.Counts) > 1 {
			forged.Counts[0], forged.Counts[1] = forged.Counts[1], forged.Counts[0]
		}
		return &forged, nil
	}
	return n.result, nil
}

// WaitResult blocks until the node publishes its Result or ctx is done.
// Combination runs in a background worker, so SubmitTrusteePost returning
// does not mean the result exists yet — this is the synchronization point.
func (n *Node) WaitResult(ctx context.Context) (*Result, error) {
	n.mu.Lock()
	ch := n.resultCh
	n.mu.Unlock()
	select {
	case <-ch:
		return n.Result()
	case <-ctx.Done():
		select {
		case <-ch: // result raced with cancellation; prefer it
			return n.Result()
		default:
		}
		return nil, ctx.Err()
	}
}

// BlamedTrustees returns the (sorted) trustee indices whose posts the
// blame protocol identified as bad on this node.
func (n *Node) BlamedTrustees() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]int, 0, len(n.badPosts))
	for t := range n.badPosts {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
