package bb

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"

	"ddemos/internal/ea"
	"ddemos/internal/vc"
)

// API is the Bulletin Board read interface, implemented by local nodes and
// by the HTTP client in cmd/. All methods are read-only and anonymous.
type API interface {
	Manifest() (ea.Manifest, error)
	Init() (*ea.BBInit, error)
	VoteSet() ([]vc.VotedBallot, error)
	Cast() (*CastData, error)
	Result() (*Result, error)
}

var _ API = (*Node)(nil)

// ErrNoMajority is returned when fewer than fb+1 BB nodes agree.
var ErrNoMajority = errors.New("bb: no majority among replies")

// Reader queries all BB nodes and returns the answer backed by at least
// fb+1 of them — the paper's replicated-service reader (§V implemented it
// as a Firefox extension; here it is a library any client embeds). Because
// at most fb nodes are Byzantine and honest nodes only ever serve correct
// (possibly stale) data, fb+1 identical replies are necessarily correct.
type Reader struct {
	nodes []API
	need  int
}

// NewReader builds a majority reader over the given replicas.
func NewReader(nodes []API) *Reader {
	fb := (len(nodes) - 1) / 2
	return &Reader{nodes: nodes, need: fb + 1}
}

// majority returns the first reply that gathers `need` matches.
func majority[T any](r *Reader, fetch func(API) (T, error)) (T, error) {
	return majorityBy(r, fetch, func(v T) any { return v })
}

// majorityBy is majority with a normalization hook: replies are compared by
// canon(reply), so per-node provenance that honest replicas legitimately
// disagree on (e.g. which trustee subset produced a Result) does not break
// the vote. The returned value is one of the agreeing replies, provenance
// intact.
//
// Replies are bucketed by a canonical-encoding digest, NOT by
// reflect.DeepEqual: replies reach the reader both in-process and
// gob-decoded over HTTP, and big.Int's internal representation is not
// canonical across that boundary (a decoded zero and new(big.Int) differ in
// abs nil vs empty), so memory equality would split value-equal honest
// replies into separate buckets and spuriously report ErrNoMajority.
func majorityBy[T any](r *Reader, fetch func(API) (T, error), canon func(T) any) (T, error) {
	var zero T
	type bucket struct {
		val   T
		key   string
		count int
	}
	var buckets []bucket
	for _, n := range r.nodes {
		v, err := fetch(n)
		if err != nil {
			continue
		}
		key := bucketKey(canon(v))
		matched := false
		for i := range buckets {
			if buckets[i].key == key {
				buckets[i].count++
				matched = true
				if buckets[i].count >= r.need {
					return buckets[i].val, nil
				}
				break
			}
		}
		if !matched {
			if r.need == 1 {
				return v, nil
			}
			buckets = append(buckets, bucket{val: v, key: key, count: 1})
		}
	}
	return zero, ErrNoMajority
}

// unencodableSeq disambiguates replies that fail to encode (each buckets
// alone — conservative, since a lone bucket can never fabricate agreement).
var unencodableSeq atomic.Uint64

// bucketKey renders a canonicalized reply as a comparable digest. Gob is
// the canonical encoding: big.Int marshals by value (sign + magnitude,
// normalized on decode), nil and empty slices inside structs collapse to
// the same omitted zero field, and encoding is deterministic for the
// map-free reply types — so two value-equal replies digest identically no
// matter which transport produced them.
func bucketKey(v any) string {
	if v == nil {
		return "<nil>"
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(v)); err != nil {
		return fmt.Sprintf("<unencodable %d>", unencodableSeq.Add(1))
	}
	sum := sha256.Sum256(buf.Bytes())
	return string(sum[:])
}

// Manifest reads the election manifest by majority.
func (r *Reader) Manifest() (ea.Manifest, error) {
	return majority(r, API.Manifest)
}

// Init reads the full initialization data by majority.
func (r *Reader) Init() (*ea.BBInit, error) {
	return majority(r, API.Init)
}

// VoteSet reads the agreed vote set by majority.
func (r *Reader) VoteSet() ([]vc.VotedBallot, error) {
	return majority(r, API.VoteSet)
}

// Cast reads the published cast data by majority.
func (r *Reader) Cast() (*CastData, error) {
	return majority(r, API.Cast)
}

// Result reads the final result by majority. Replies are compared without
// the Trustees provenance field: honest nodes publish identical election
// content (counts, openings, proofs reconstruct the same polynomials from
// any honest share subset), but may have combined different trustee subsets
// depending on post arrival order — a disagreement that says nothing about
// correctness and, uncanonicalized, made the majority vote fail spuriously
// (the full-pipeline flake fixed in PR 2).
func (r *Reader) Result() (*Result, error) {
	return majorityBy(r, API.Result, func(res *Result) any {
		if res == nil {
			return nil
		}
		c := *res
		c.Trustees = nil
		return &c
	})
}
