package bb_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/big"
	"reflect"
	"testing"

	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/vc"
)

// stubAPI serves fixed replies — the reader sees it exactly like an HTTP
// client for a remote BB node.
type stubAPI struct {
	res     *bb.Result
	set     []vc.VotedBallot
	failAll bool
}

var errStub = errors.New("stub: down")

func (s *stubAPI) Manifest() (ea.Manifest, error) {
	if s.failAll {
		return ea.Manifest{}, errStub
	}
	return ea.Manifest{}, nil
}

func (s *stubAPI) Init() (*ea.BBInit, error) {
	if s.failAll {
		return nil, errStub
	}
	return &ea.BBInit{}, nil
}

func (s *stubAPI) VoteSet() ([]vc.VotedBallot, error) {
	if s.failAll {
		return nil, errStub
	}
	return s.set, nil
}

func (s *stubAPI) Cast() (*bb.CastData, error) {
	if s.failAll {
		return nil, errStub
	}
	return &bb.CastData{}, nil
}

func (s *stubAPI) Result() (*bb.Result, error) {
	if s.failAll {
		return nil, errStub
	}
	return s.res, nil
}

func gobRoundTrip[T any](t *testing.T, v T) T {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	var out T
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// computedZero produces a zero big.Int whose internal slice is non-nil —
// the representation arithmetic leaves behind (Mod, Sub), which a
// gob-decoded zero never has. reflect.DeepEqual tells them apart even
// though they are the same number.
func computedZero() *big.Int {
	x := new(big.Int).Mul(big.NewInt(123), big.NewInt(456))
	return x.Sub(x, new(big.Int).Set(x))
}

// TestReaderMajorityAcrossGobBoundary is the regression test for the
// DeepEqual bucketing bug: a reply decoded from gob (the HTTP transport)
// and an in-process reply that are value-equal could land in different
// majority buckets, because big.Int's internal representation is not
// canonical across that boundary — with two honest replicas and one down,
// the reader then spuriously returned ErrNoMajority. Bucketing by
// canonical-encoding digest must count them as agreeing.
func TestReaderMajorityAcrossGobBoundary(t *testing.T) {
	res := &bb.Result{
		Counts:  []int64{0, 2},
		TallyMs: []*big.Int{computedZero(), big.NewInt(2)},
		TallyRs: []*big.Int{computedZero(), big.NewInt(77)},
		Openings: []bb.OpenedRow{{
			Serial: 1, Part: 0, Row: 0,
			Ms: []*big.Int{computedZero(), big.NewInt(1)},
			Rs: []*big.Int{big.NewInt(5), computedZero()},
		}},
		Trustees: []uint32{1, 2},
	}
	decoded := gobRoundTrip(t, res)

	// Premise of the regression: the two replies are the number-for-number
	// same value, yet memory comparison splits them.
	if decoded.TallyMs[0].Cmp(res.TallyMs[0]) != 0 {
		t.Fatal("round trip changed a value — test setup broken")
	}
	if reflect.DeepEqual(res, decoded) {
		t.Skip("representations converged — DeepEqual regression premise gone")
	}

	// Two honest replicas (one local, one across the gob boundary) and one
	// down: fb+1 = 2 identical replies are required.
	reader := bb.NewReader([]bb.API{
		&stubAPI{res: res},
		&stubAPI{res: decoded},
		&stubAPI{failAll: true},
	})
	got, err := reader.Result()
	if err != nil {
		t.Fatalf("majority read across the gob boundary: %v", err)
	}
	if got.Counts[1] != 2 {
		t.Fatalf("counts = %v", got.Counts)
	}

	// Genuinely different replies must still fail to reach a majority.
	forged := gobRoundTrip(t, res)
	forged.Counts = []int64{2, 0}
	bad := bb.NewReader([]bb.API{
		&stubAPI{res: res},
		&stubAPI{res: forged},
		&stubAPI{failAll: true},
	})
	if _, err := bad.Result(); !errors.Is(err, bb.ErrNoMajority) {
		t.Fatalf("divergent replies: err = %v, want ErrNoMajority", err)
	}
}

// TestReaderVoteSetAcrossGobBoundary covers the generic (non-canonicalized)
// majority path with a slice reply type round-tripped through gob.
func TestReaderVoteSetAcrossGobBoundary(t *testing.T) {
	set := []vc.VotedBallot{{Serial: 1, Code: []byte("abcd")}, {Serial: 3, Code: []byte("efgh")}}
	decoded := gobRoundTrip(t, set)
	reader := bb.NewReader([]bb.API{
		&stubAPI{set: set},
		&stubAPI{set: decoded},
		&stubAPI{failAll: true},
	})
	got, err := reader.VoteSet()
	if err != nil {
		t.Fatalf("majority vote-set read: %v", err)
	}
	if len(got) != 2 || got[1].Serial != 3 {
		t.Fatalf("got %v", got)
	}
}
