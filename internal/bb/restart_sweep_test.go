package bb_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/vc"
)

// sweepPools rotates the journal engine across seeds: single WAL, 2-lane
// pool, 4-lane pool — the same rotation the VC restart sweeps run.
var sweepPools = []int{1, 2, 4}

// TestBBRestartSweepPublishPhase is the crash-restart composition sweep of
// the BB durability layer: per seed, one journaled replica is hard-stopped
// either mid-trustee-posting (after accepting ht-1 posts) or mid-combine
// (worker parked inside an attempt via CombineGate), recovered from its
// snapshot+WAL, fed the remaining posts in a seed-shuffled order, and must
// publish a result byte-identical (canonical form) to two never-crashed
// replicas — with recover-twice as a StateHash fixpoint. Journal engines
// rotate by seed. Replay one seed with
// -run 'TestBBRestartSweepPublishPhase/seed=N'; CI adds a rotating seed via
// DDEMOS_BB_RESTART_SEED.
func TestBBRestartSweepPublishPhase(t *testing.T) {
	votes := []int{0, 1, 1, 0, -1, 1}
	const nt = 5 // ht = 3
	cluster, data := publishSetup(t, votes, nt)
	posts := honestPosts(t, cluster.Reader, data, nt)
	ht := data.BB.Manifest.TrusteeThreshold

	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]int, 0, numSeeds+1)
	for s := 1; s <= numSeeds; s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_BB_RESTART_SEED"); v != "" {
		extra, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("DDEMOS_BB_RESTART_SEED = %q: %v", v, err)
		}
		t.Logf("rotating restart seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}

	baseDir := t.TempDir()
	var want string
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(seed))) //nolint:gosec // deterministic test
			jopts := vc.JournalOptions{Pool: sweepPools[seed%len(sweepPools)]}
			dir := filepath.Join(baseDir, fmt.Sprintf("seed-%d", seed))
			order := rnd.Perm(nt)

			// One journaled replica plus two never-crashed memory witnesses.
			journaled, err := bb.NewNode(data.BB)
			if err != nil {
				t.Fatal(err)
			}
			if err := journaled.RecoverWithOptions(dir, jopts); err != nil {
				t.Fatal(err)
			}
			witnesses := make([]*bb.Node, 2)
			for i := range witnesses {
				if witnesses[i], err = bb.NewNode(data.BB); err != nil {
					t.Fatal(err)
				}
				feedBBState(t, cluster, witnesses[i])
				for _, ti := range order {
					if err := witnesses[i].SubmitTrusteePost(posts[ti]); err != nil {
						t.Fatal(err)
					}
				}
			}
			feedBBState(t, cluster, journaled)

			var crashed int // posts accepted by the journaled node before the stop
			if seed%2 == 0 {
				// Mid-posting crash: hard-stop after ht-1 accepted posts.
				crashed = ht - 1
				for _, ti := range order[:crashed] {
					if err := journaled.SubmitTrusteePost(posts[ti]); err != nil {
						t.Fatal(err)
					}
				}
				if err := journaled.Close(); err != nil {
					t.Fatal(err)
				}
			} else {
				// Mid-combine crash: park the worker inside an attempt, stop
				// the node under it, then let the attempt finish against the
				// closed node (it must not install or journal anything).
				entered := make(chan struct{})
				release := make(chan struct{})
				gated := false
				journaled.CombineGate = func() {
					if !gated {
						gated = true
						close(entered)
					}
					<-release
				}
				crashed = ht
				for _, ti := range order[:crashed] {
					if err := journaled.SubmitTrusteePost(posts[ti]); err != nil {
						t.Fatal(err)
					}
				}
				select {
				case <-entered:
				case <-time.After(10 * time.Second):
					t.Fatal("combine worker never started")
				}
				if err := journaled.Close(); err != nil {
					t.Fatal(err)
				}
				close(release)
			}

			// Recover in place from the same directory and engine.
			recovered, err := bb.NewNode(data.BB)
			if err != nil {
				t.Fatal(err)
			}
			if err := recovered.RecoverWithOptions(dir, jopts); err != nil {
				t.Fatal(err)
			}
			if _, err := recovered.Cast(); err != nil {
				t.Fatalf("recovered replica lost the cast data: %v", err)
			}
			// Resubmit everything (the journaled prefix acks as duplicates).
			for _, ti := range order {
				if err := recovered.SubmitTrusteePost(posts[ti]); err != nil {
					t.Fatal(err)
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := recovered.WaitResult(ctx)
			if err != nil {
				t.Fatalf("recovered replica published no result: %v", err)
			}
			if res.Counts[0] != 2 || res.Counts[1] != 3 {
				t.Fatalf("counts = %v", res.Counts)
			}
			got := canonicalResult(res)
			for wi, w := range witnesses {
				wres, err := w.WaitResult(ctx)
				if err != nil {
					t.Fatalf("witness %d published no result: %v", wi, err)
				}
				if canonicalResult(wres) != got {
					t.Fatalf("recovered replica diverges from never-crashed witness %d", wi)
				}
			}
			if want == "" {
				want = got
			} else if got != want {
				t.Fatal("result diverges across seeds")
			}

			// Recover-twice fixpoint over the post-publication state.
			if err := recovered.Close(); err != nil {
				t.Fatal(err)
			}
			again, err := bb.NewNode(data.BB)
			if err != nil {
				t.Fatal(err)
			}
			if err := again.RecoverWithOptions(dir, jopts); err != nil {
				t.Fatal(err)
			}
			if again.StateHash() != recovered.StateHash() {
				t.Fatal("recover-twice is not a StateHash fixpoint")
			}
			_ = again.Close()
		})
	}
}
