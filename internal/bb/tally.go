package bb

import (
	"crypto/sha256"
	"fmt"
	"math/big"

	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/sig"
)

// OpeningShare is one trustee's share of one row's commitment opening
// (unused ballot parts and unvoted ballots get opened, §III-H).
type OpeningShare struct {
	Serial uint64
	Part   uint8
	Row    int
	Ms     []*big.Int // message shares, one per vector element
	Rs     []*big.Int // randomness shares
}

// ProofFinalShare is one trustee's share of the ZK final moves for one row
// of a used ballot part.
type ProofFinalShare struct {
	Serial uint64
	Part   uint8
	Row    int
	Bits   []zkp.BitFinal
	Sum    zkp.SumFinal
}

// TrusteePost is everything one trustee submits to each BB node after the
// election: opening shares for audit rows, final-move shares for used
// parts, and its share T_ℓ of the homomorphic tally opening.
type TrusteePost struct {
	Trustee    int    // 0-based index
	ShareIndex uint32 // Trustee + 1
	Openings   []OpeningShare
	Proofs     []ProofFinalShare
	TallyMs    []*big.Int // per option: share of Σ messages
	TallyRs    []*big.Int // per option: share of Σ randomness
	Sig        []byte
}

const trusteePostDomain = "ddemos/v1/trustee-post"

// HashPost produces the canonical digest a trustee signs.
func HashPost(electionID string, p *TrusteePost) [32]byte {
	h := sha256.New()
	h.Write([]byte(electionID))
	h.Write(sig.Uint64Bytes(uint64(p.Trustee)))    //nolint:gosec // small
	h.Write(sig.Uint64Bytes(uint64(p.ShareIndex))) //nolint:gosec // small
	writeScalar := func(v *big.Int) { h.Write(group.ScalarBytes(v)) }
	for _, o := range p.Openings {
		h.Write(sig.Uint64Bytes(o.Serial))
		h.Write([]byte{o.Part})
		h.Write(sig.Uint64Bytes(uint64(o.Row))) //nolint:gosec // small
		for _, v := range o.Ms {
			writeScalar(v)
		}
		for _, v := range o.Rs {
			writeScalar(v)
		}
	}
	for _, pf := range p.Proofs {
		h.Write(sig.Uint64Bytes(pf.Serial))
		h.Write([]byte{pf.Part})
		h.Write(sig.Uint64Bytes(uint64(pf.Row))) //nolint:gosec // small
		for _, b := range pf.Bits {
			writeScalar(b.C0)
			writeScalar(b.C1)
			writeScalar(b.Z0)
			writeScalar(b.Z1)
		}
		writeScalar(pf.Sum.Z)
	}
	for _, v := range p.TallyMs {
		writeScalar(v)
	}
	for _, v := range p.TallyRs {
		writeScalar(v)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// OpenedRow is a published, reconstructed commitment opening for an audit
// row, including the option it encodes.
type OpenedRow struct {
	Serial   uint64
	Part     uint8
	Row      int
	Ms       []*big.Int
	Rs       []*big.Int
	HotIndex int // option index encoded by the unit vector
}

// ProvenRow is a published, completed ZK proof for a used-part row.
type ProvenRow struct {
	Serial uint64
	Part   uint8
	Row    int
	Bits   []zkp.BitFinal
	Sum    zkp.SumFinal
}

// Result is the final election outcome published by each BB node.
type Result struct {
	// Counts[i] is the tally of Manifest.Options[i].
	Counts []int64
	// TallyMs/TallyRs open the homomorphic sum of the cast commitments.
	TallyMs []*big.Int
	TallyRs []*big.Int
	// Openings cover every audit row (unused parts, unvoted ballots).
	Openings []OpenedRow
	// Proofs cover every row of every used part.
	Proofs []ProvenRow
	// Trustees lists the share indices whose posts produced this result.
	Trustees []uint32
}

// SubmitTrusteePost verifies and stores a trustee's post. Signature and
// structural validation run outside n.mu, and the expensive combination
// runs in a background worker (see combine.go), so readers and later
// submissions never stall behind EC math: the lock is held only to store
// the post and kick the worker.
func (n *Node) SubmitTrusteePost(p *TrusteePost) error {
	man := &n.init.Manifest
	if p == nil || p.Trustee < 0 || p.Trustee >= man.NumTrustees {
		n.metrics.PostsRejected.Add(1)
		return fmt.Errorf("%w: bad trustee index", ErrBadSubmission)
	}
	if p.ShareIndex != uint32(p.Trustee)+1 { //nolint:gosec // small
		n.metrics.PostsRejected.Add(1)
		return fmt.Errorf("%w: share index mismatch", ErrBadSubmission)
	}
	// Scalar-shape validation precedes hashing: a post with nil scalars
	// (e.g. hostile gob input) must be rejected, not panic HashPost.
	if err := validatePostScalars(p, len(man.Options)); err != nil {
		n.metrics.PostsRejected.Add(1)
		return err
	}
	hash := HashPost(man.ElectionID, p)
	if !sig.Verify(man.TrusteePublics[p.Trustee], p.Sig, trusteePostDomain, hash[:]) {
		n.metrics.PostsRejected.Add(1)
		return fmt.Errorf("%w: bad trustee signature", ErrBadSubmission)
	}
	n.mu.Lock()
	used := n.usedParts
	ready := n.cast != nil
	n.mu.Unlock()
	if !ready {
		return fmt.Errorf("%w: cast data not published yet", ErrNotReady)
	}
	// Completeness validation against the published cast data (§III-H): a
	// signed post missing required shares is rejected at ingress, so the
	// combine worker can assume every stored post is shape-complete.
	idx, err := n.indexPost(p, used)
	if err != nil {
		n.metrics.PostsRejected.Add(1)
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if prevHash, dup := n.postHash[p.Trustee]; dup {
		// The first accepted post per trustee is pinned. A duplicate with a
		// different signed payload is equivocation — rejected loudly, never
		// silently swallowed — while a byte-identical resend is acked (and,
		// under Strict, used to re-attempt a failed journal append).
		if prevHash != hash {
			n.metrics.PostEquivocations.Add(1)
			n.metrics.PostsRejected.Add(1)
			n.mu.Unlock()
			return fmt.Errorf("%w: trustee %d equivocated on its post", ErrBadSubmission, p.Trustee)
		}
		stored := n.posts[p.Trustee]
		needRec := n.journal != nil && !n.postDurable[p.Trustee]
		n.mu.Unlock()
		if !needRec {
			return nil
		}
		return n.journalPost(stored)
	}
	n.posts[p.Trustee] = p
	n.postHash[p.Trustee] = hash
	n.shareIdx[p.Trustee] = idx
	n.metrics.PostsAccepted.Add(1)
	n.kickCombineLocked()
	journaled := n.journal != nil
	n.mu.Unlock()
	if !journaled {
		return nil
	}
	return n.journalPost(p)
}

// journalPost logs an accepted trustee post and settles the ack under the
// node's policy. An encoding failure (cannot happen for ingress-validated
// posts; defensive) is treated like an append failure.
func (n *Node) journalPost(p *TrusteePost) error {
	rec, err := encBBPost(p)
	if err != nil {
		n.metrics.JournalErrors.Add(1)
		if n.strictJournal() {
			return fmt.Errorf("bb: submission accepted but not journaled under strict policy: %w", err)
		}
		return nil
	}
	return n.journalSubmission(rec, func() { n.postDurable[p.Trustee] = true })
}

// combineKey addresses one row of one ballot part.
type combineKey struct {
	serial uint64
	part   uint8
	row    int
}

// postShares indexes one post's shares by row, precomputed at ingress so
// combine attempts never scan the post slices.
type postShares struct {
	open  map[combineKey]*OpeningShare
	proof map[combineKey]*ProofFinalShare
}

// validatePostScalars rejects posts with nil or wrongly-sized scalar
// slices (the only shapes that could panic hashing or combination).
func validatePostScalars(p *TrusteePost, m int) error {
	if len(p.TallyMs) != m || len(p.TallyRs) != m {
		return fmt.Errorf("%w: tally share arity", ErrBadSubmission)
	}
	for j := 0; j < m; j++ {
		if p.TallyMs[j] == nil || p.TallyRs[j] == nil {
			return fmt.Errorf("%w: nil tally share", ErrBadSubmission)
		}
	}
	for i := range p.Openings {
		o := &p.Openings[i]
		if len(o.Ms) != m || len(o.Rs) != m {
			return fmt.Errorf("%w: opening share arity at serial %d", ErrBadSubmission, o.Serial)
		}
		for j := 0; j < m; j++ {
			if o.Ms[j] == nil || o.Rs[j] == nil {
				return fmt.Errorf("%w: nil opening share at serial %d", ErrBadSubmission, o.Serial)
			}
		}
	}
	for i := range p.Proofs {
		pf := &p.Proofs[i]
		if len(pf.Bits) != m {
			return fmt.Errorf("%w: proof share arity at serial %d", ErrBadSubmission, pf.Serial)
		}
		for j := range pf.Bits {
			b := &pf.Bits[j]
			if b.C0 == nil || b.C1 == nil || b.Z0 == nil || b.Z1 == nil {
				return fmt.Errorf("%w: nil bit final at serial %d", ErrBadSubmission, pf.Serial)
			}
		}
		if pf.Sum.Z == nil {
			return fmt.Errorf("%w: nil sum final at serial %d", ErrBadSubmission, pf.Serial)
		}
	}
	return nil
}

// indexPost builds the row → share maps for a post and checks it carries
// exactly what the published cast data requires: a proof share for every
// row of every used part, an opening share for every audit row.
func (n *Node) indexPost(p *TrusteePost, used map[uint64]uint8) (*postShares, error) {
	ps := &postShares{
		open:  make(map[combineKey]*OpeningShare, len(p.Openings)),
		proof: make(map[combineKey]*ProofFinalShare, len(p.Proofs)),
	}
	for i := range p.Openings {
		o := &p.Openings[i]
		ps.open[combineKey{o.Serial, o.Part, o.Row}] = o
	}
	for i := range p.Proofs {
		pf := &p.Proofs[i]
		ps.proof[combineKey{pf.Serial, pf.Part, pf.Row}] = pf
	}
	for bi := range n.init.Ballots {
		bbb := &n.init.Ballots[bi]
		usedPart, voted := used[bbb.Serial]
		for part := 0; part < 2; part++ {
			for row := range bbb.Parts[part] {
				k := combineKey{bbb.Serial, uint8(part), row} //nolint:gosec // part<2
				if voted && uint8(part) == usedPart {         //nolint:gosec // part<2
					if ps.proof[k] == nil {
						return nil, fmt.Errorf("%w: missing proof share at serial %d part %d row %d",
							ErrBadSubmission, bbb.Serial, part, row)
					}
				} else if ps.open[k] == nil {
					return nil, fmt.Errorf("%w: missing opening share at serial %d part %d row %d",
						ErrBadSubmission, bbb.Serial, part, row)
				}
			}
		}
	}
	return ps, nil
}
