package bb

import (
	"crypto/sha256"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/sig"
)

// OpeningShare is one trustee's share of one row's commitment opening
// (unused ballot parts and unvoted ballots get opened, §III-H).
type OpeningShare struct {
	Serial uint64
	Part   uint8
	Row    int
	Ms     []*big.Int // message shares, one per vector element
	Rs     []*big.Int // randomness shares
}

// ProofFinalShare is one trustee's share of the ZK final moves for one row
// of a used ballot part.
type ProofFinalShare struct {
	Serial uint64
	Part   uint8
	Row    int
	Bits   []zkp.BitFinal
	Sum    zkp.SumFinal
}

// TrusteePost is everything one trustee submits to each BB node after the
// election: opening shares for audit rows, final-move shares for used
// parts, and its share T_ℓ of the homomorphic tally opening.
type TrusteePost struct {
	Trustee    int    // 0-based index
	ShareIndex uint32 // Trustee + 1
	Openings   []OpeningShare
	Proofs     []ProofFinalShare
	TallyMs    []*big.Int // per option: share of Σ messages
	TallyRs    []*big.Int // per option: share of Σ randomness
	Sig        []byte
}

const trusteePostDomain = "ddemos/v1/trustee-post"

// HashPost produces the canonical digest a trustee signs.
func HashPost(electionID string, p *TrusteePost) [32]byte {
	h := sha256.New()
	h.Write([]byte(electionID))
	h.Write(sig.Uint64Bytes(uint64(p.Trustee)))    //nolint:gosec // small
	h.Write(sig.Uint64Bytes(uint64(p.ShareIndex))) //nolint:gosec // small
	writeScalar := func(v *big.Int) { h.Write(group.ScalarBytes(v)) }
	for _, o := range p.Openings {
		h.Write(sig.Uint64Bytes(o.Serial))
		h.Write([]byte{o.Part})
		h.Write(sig.Uint64Bytes(uint64(o.Row))) //nolint:gosec // small
		for _, v := range o.Ms {
			writeScalar(v)
		}
		for _, v := range o.Rs {
			writeScalar(v)
		}
	}
	for _, pf := range p.Proofs {
		h.Write(sig.Uint64Bytes(pf.Serial))
		h.Write([]byte{pf.Part})
		h.Write(sig.Uint64Bytes(uint64(pf.Row))) //nolint:gosec // small
		for _, b := range pf.Bits {
			writeScalar(b.C0)
			writeScalar(b.C1)
			writeScalar(b.Z0)
			writeScalar(b.Z1)
		}
		writeScalar(pf.Sum.Z)
	}
	for _, v := range p.TallyMs {
		writeScalar(v)
	}
	for _, v := range p.TallyRs {
		writeScalar(v)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// OpenedRow is a published, reconstructed commitment opening for an audit
// row, including the option it encodes.
type OpenedRow struct {
	Serial   uint64
	Part     uint8
	Row      int
	Ms       []*big.Int
	Rs       []*big.Int
	HotIndex int // option index encoded by the unit vector
}

// ProvenRow is a published, completed ZK proof for a used-part row.
type ProvenRow struct {
	Serial uint64
	Part   uint8
	Row    int
	Bits   []zkp.BitFinal
	Sum    zkp.SumFinal
}

// Result is the final election outcome published by each BB node.
type Result struct {
	// Counts[i] is the tally of Manifest.Options[i].
	Counts []int64
	// TallyMs/TallyRs open the homomorphic sum of the cast commitments.
	TallyMs []*big.Int
	TallyRs []*big.Int
	// Openings cover every audit row (unused parts, unvoted ballots).
	Openings []OpenedRow
	// Proofs cover every row of every used part.
	Proofs []ProvenRow
	// Trustees lists the share indices whose posts produced this result.
	Trustees []uint32
}

// SubmitTrusteePost verifies and stores a trustee's post; when ht usable
// posts are available the node combines them, verifies everything, and
// publishes the Result (§III-G "once enough trustees have posted valid
// data, the BB node combines them and publishes the final election
// result").
func (n *Node) SubmitTrusteePost(p *TrusteePost) error {
	man := &n.init.Manifest
	if p == nil || p.Trustee < 0 || p.Trustee >= man.NumTrustees {
		return fmt.Errorf("%w: bad trustee index", ErrBadSubmission)
	}
	if p.ShareIndex != uint32(p.Trustee)+1 { //nolint:gosec // small
		return fmt.Errorf("%w: share index mismatch", ErrBadSubmission)
	}
	hash := HashPost(man.ElectionID, p)
	if !sig.Verify(man.TrusteePublics[p.Trustee], p.Sig, trusteePostDomain, hash[:]) {
		return fmt.Errorf("%w: bad trustee signature", ErrBadSubmission)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cast == nil {
		return fmt.Errorf("%w: cast data not published yet", ErrNotReady)
	}
	if _, dup := n.posts[p.Trustee]; dup {
		return nil
	}
	n.posts[p.Trustee] = p
	n.maybeCombineLocked()
	return nil
}

// maybeCombineLocked attempts to combine subsets of ht posts until one
// verifies fully. Byzantine trustees can post garbage under a valid
// signature; subset search rejects them (their shares make verification
// fail) as long as ht honest posts exist.
func (n *Node) maybeCombineLocked() {
	if n.result != nil {
		return
	}
	man := &n.init.Manifest
	ht := man.TrusteeThreshold
	var candidates []*TrusteePost
	for _, p := range n.posts {
		if !n.badPosts[p.Trustee] {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) < ht {
		// Failed posts may still be needed if honest ones are scarce; retry
		// everything when the pool is small.
		candidates = candidates[:0]
		for _, p := range n.posts {
			candidates = append(candidates, p)
		}
		if len(candidates) < ht {
			return
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Trustee < candidates[j].Trustee })
	subset := make([]*TrusteePost, ht)
	n.combineSubsets(candidates, subset, 0, 0)
}

// combineSubsets enumerates size-ht subsets recursively; first success wins.
func (n *Node) combineSubsets(pool, subset []*TrusteePost, poolIdx, depth int) bool {
	if n.result != nil {
		return true
	}
	if depth == len(subset) {
		res, err := n.tryCombine(subset)
		if err == nil {
			n.result = res
			return true
		}
		for _, p := range subset {
			// Mark all members as suspect; honest-only subsets clear them.
			n.badPosts[p.Trustee] = true
		}
		return false
	}
	for i := poolIdx; i <= len(pool)-(len(subset)-depth); i++ {
		subset[depth] = pool[i]
		if n.combineSubsets(pool, subset, i+1, depth+1) {
			return true
		}
	}
	return false
}

// tryCombine reconstructs openings, proofs and the tally from one subset of
// posts, verifying every value against the public commitments.
func (n *Node) tryCombine(posts []*TrusteePost) (*Result, error) {
	man := &n.init.Manifest
	ck := man.CommitmentKey()
	ht := man.TrusteeThreshold
	m := len(man.Options)
	cast := n.cast
	master := zkp.MasterChallenge(man.ElectionID, cast.Coins)
	marks := cast.marksBySerial()

	indices := make([]uint32, ht)
	for i, p := range posts {
		indices[i] = p.ShareIndex
	}
	lam, err := shamir.LagrangeCoefficients(indices)
	if err != nil {
		return nil, err
	}
	combineScalars := func(get func(*TrusteePost) *big.Int) *big.Int {
		acc := new(big.Int)
		for i, p := range posts {
			v := get(p)
			if v == nil {
				return nil
			}
			acc = group.AddScalar(acc, group.MulScalar(lam[i], v))
		}
		return acc
	}

	// Index each post's shares by (serial, part, row).
	type key struct {
		serial uint64
		part   uint8
		row    int
	}
	openIdx := make([]map[key]*OpeningShare, ht)
	proofIdx := make([]map[key]*ProofFinalShare, ht)
	for i, p := range posts {
		openIdx[i] = make(map[key]*OpeningShare, len(p.Openings))
		for j := range p.Openings {
			o := &p.Openings[j]
			openIdx[i][key{o.Serial, o.Part, o.Row}] = o
		}
		proofIdx[i] = make(map[key]*ProofFinalShare, len(p.Proofs))
		for j := range p.Proofs {
			pf := &p.Proofs[j]
			proofIdx[i][key{pf.Serial, pf.Part, pf.Row}] = pf
		}
	}

	res := &Result{Trustees: indices}
	var tallySum elgamal.VectorCiphertext

	// Per-ballot combination is independent; parallelize across CPUs (the
	// publish phase is EC-multiplication bound).
	type ballotOut struct {
		openings []OpenedRow
		proofs   []ProvenRow
		tally    elgamal.VectorCiphertext
		err      error
	}
	outs := make([]ballotOut, len(n.init.Ballots))
	combineBallot := func(bi int) ballotOut {
		out := ballotOut{}
		bbb := &n.init.Ballots[bi]
		ballotMarks := marks[bbb.Serial]
		usedPart := -1
		if len(ballotMarks) > 0 {
			usedPart = int(ballotMarks[0].Part)
		}
		for part := 0; part < 2; part++ {
			rows := bbb.Parts[part]
			if part == usedPart {
				// Used part: complete the ZK proofs; add cast rows to tally.
				for row := range rows {
					k := key{bbb.Serial, uint8(part), row} //nolint:gosec // part<2
					bits := make([]zkp.BitFinal, m)
					for col := 0; col < m; col++ {
						finals := make([]zkp.IndexedBitFinal, ht)
						for i := range posts {
							pf := proofIdx[i][k]
							if pf == nil || len(pf.Bits) != m {
								out.err = fmt.Errorf("bb: trustee %d missing proof share %v", posts[i].Trustee, k)
								return out
							}
							finals[i] = zkp.IndexedBitFinal{Index: posts[i].ShareIndex, Final: pf.Bits[col]}
						}
						fin, err := zkp.CombineBitFinals(finals, ht)
						if err != nil {
							out.err = err
							return out
						}
						c := zkp.DeriveChallenge(master, bbb.Serial, uint8(part), row, col) //nolint:gosec // part<2
						if !zkp.VerifyBit(ck, rows[row].Commitment[col], rows[row].BitCommits[col], fin, c) {
							out.err = fmt.Errorf("bb: bit proof failed at %v col %d", k, col)
							return out
						}
						bits[col] = fin
					}
					sumFinals := make([]zkp.IndexedSumFinal, ht)
					for i := range posts {
						pf := proofIdx[i][k]
						sumFinals[i] = zkp.IndexedSumFinal{Index: posts[i].ShareIndex, Final: pf.Sum}
					}
					sumFin, err := zkp.CombineSumFinals(sumFinals, ht)
					if err != nil {
						out.err = err
						return out
					}
					c := zkp.DeriveChallenge(master, bbb.Serial, uint8(part), row, zkp.SumProofCol) //nolint:gosec // part<2
					if !zkp.VerifySum(ck, rows[row].Commitment, 1, rows[row].SumCommit, sumFin, c) {
						out.err = fmt.Errorf("bb: sum proof failed at %v", k)
						return out
					}
					out.proofs = append(out.proofs, ProvenRow{
						Serial: bbb.Serial, Part: uint8(part), Row: row, Bits: bits, Sum: sumFin, //nolint:gosec // part<2
					})
				}
				for _, mark := range ballotMarks {
					ct := rows[mark.Row].Commitment
					if out.tally == nil {
						out.tally = append(elgamal.VectorCiphertext(nil), ct...)
					} else if out.tally, out.err = out.tally.Add(ct); out.err != nil {
						out.err = err
						return out
					}
				}
				continue
			}
			// Audit part (unused, or any part of an unvoted ballot): open.
			for row := range rows {
				k := key{bbb.Serial, uint8(part), row} //nolint:gosec // part<2
				ms := make([]*big.Int, m)
				rs := make([]*big.Int, m)
				for col := 0; col < m; col++ {
					col := col
					mv := combineScalars(func(p *TrusteePost) *big.Int {
						o := openIdx[postIndex(posts, p)][k]
						if o == nil || len(o.Ms) != m {
							return nil
						}
						return o.Ms[col]
					})
					rv := combineScalars(func(p *TrusteePost) *big.Int {
						o := openIdx[postIndex(posts, p)][k]
						if o == nil || len(o.Rs) != m {
							return nil
						}
						return o.Rs[col]
					})
					if mv == nil || rv == nil {
						out.err = fmt.Errorf("bb: missing opening shares at %v", k)
						return out
					}
					if !ck.VerifyOpening(rows[row].Commitment[col], mv, rv) {
						out.err = fmt.Errorf("bb: opening failed at %v col %d", k, col)
						return out
					}
					ms[col], rs[col] = mv, rv
				}
				opening := elgamal.VectorOpening{Ms: ms, Rs: rs}
				hot, err := opening.HotIndex()
				if err != nil {
					out.err = fmt.Errorf("bb: row %v is not a unit vector: %w", k, err)
					return out
				}
				out.openings = append(out.openings, OpenedRow{
					Serial: bbb.Serial, Part: uint8(part), Row: row, //nolint:gosec // part<2
					Ms: ms, Rs: rs, HotIndex: hot,
				})
			}
		}
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	var wgB sync.WaitGroup
	idxCh := make(chan int, workers*2)
	for w := 0; w < workers; w++ {
		wgB.Add(1)
		go func() {
			defer wgB.Done()
			for bi := range idxCh {
				outs[bi] = combineBallot(bi)
			}
		}()
	}
	for bi := range n.init.Ballots {
		idxCh <- bi
	}
	close(idxCh)
	wgB.Wait()
	for bi := range outs {
		if outs[bi].err != nil {
			return nil, outs[bi].err
		}
		res.Openings = append(res.Openings, outs[bi].openings...)
		res.Proofs = append(res.Proofs, outs[bi].proofs...)
		if outs[bi].tally != nil {
			if tallySum == nil {
				tallySum = outs[bi].tally
			} else if tallySum, err = tallySum.Add(outs[bi].tally); err != nil {
				return nil, err
			}
		}
	}

	// Tally: combine T_ℓ shares and verify against the homomorphic sum.
	res.Counts = make([]int64, m)
	res.TallyMs = make([]*big.Int, m)
	res.TallyRs = make([]*big.Int, m)
	if tallySum == nil {
		// No votes cast: all counts zero, nothing to open.
		for j := 0; j < m; j++ {
			res.TallyMs[j] = new(big.Int)
			res.TallyRs[j] = new(big.Int)
		}
		return res, nil
	}
	for j := 0; j < m; j++ {
		j := j
		mv := combineScalars(func(p *TrusteePost) *big.Int {
			if len(p.TallyMs) != m {
				return nil
			}
			return p.TallyMs[j]
		})
		rv := combineScalars(func(p *TrusteePost) *big.Int {
			if len(p.TallyRs) != m {
				return nil
			}
			return p.TallyRs[j]
		})
		if mv == nil || rv == nil {
			return nil, fmt.Errorf("bb: missing tally shares")
		}
		if !ck.VerifyOpening(tallySum[j], mv, rv) {
			return nil, fmt.Errorf("bb: tally opening failed for option %d", j)
		}
		if !mv.IsInt64() {
			return nil, fmt.Errorf("bb: tally count overflows for option %d", j)
		}
		res.TallyMs[j] = mv
		res.TallyRs[j] = rv
		res.Counts[j] = mv.Int64()
	}
	return res, nil
}

func postIndex(posts []*TrusteePost, p *TrusteePost) int {
	for i := range posts {
		if posts[i] == p {
			return i
		}
	}
	return -1
}
