package bb

import (
	"math/big"
	"testing"

	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/ea"
)

func aggBallot(serial uint64, ck elgamal.CommitmentKey, rows ...[]int64) ea.BBBallot {
	b := ea.BBBallot{Serial: serial}
	for part := 0; part < 2; part++ {
		for _, row := range rows {
			var ct elgamal.VectorCiphertext
			for col, m := range row {
				ct = append(ct, ck.EncryptWith(big.NewInt(m), big.NewInt(int64(serial)*100+int64(col))))
			}
			b.Parts[part] = append(b.Parts[part], ea.BBRow{Commitment: ct})
		}
	}
	return b
}

func TestCastTallyAggregateMatchesNaiveSum(t *testing.T) {
	ck := elgamal.DeriveCommitmentKey("agg-test")
	ballots := []ea.BBBallot{
		aggBallot(1, ck, []int64{1, 0}, []int64{0, 1}),
		aggBallot(2, ck, []int64{0, 1}, []int64{1, 0}),
		aggBallot(3, ck, []int64{1, 0}, []int64{1, 0}),
	}
	marks := []CastMark{
		{Serial: 1, Part: 0, Row: 0},
		{Serial: 2, Part: 1, Row: 1},
		{Serial: 3, Part: 0, Row: 1}, // invalid below: not in used map
	}
	used := map[uint64]uint8{1: 0, 2: 1}

	agg, err := castTallyAggregate(ballots, marks, used)
	if err != nil {
		t.Fatal(err)
	}
	want := ballots[0].Parts[0][0].Commitment
	want, err = want.Add(ballots[1].Parts[1][1].Commitment)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != len(want) {
		t.Fatalf("aggregate arity %d != %d", len(agg), len(want))
	}
	for j := range agg {
		if !agg[j].Equal(want[j]) {
			t.Fatalf("aggregate col %d differs from naive sum", j)
		}
	}
}

// Regression test: an aggregation failure partway through the fold must be
// reported. The seed's tally loop captured the error into a variable that a
// later successful iteration overwrote with nil, silently publishing a
// truncated sum.
func TestCastTallyAggregatePropagatesAddError(t *testing.T) {
	ck := elgamal.DeriveCommitmentKey("agg-err")
	ballots := []ea.BBBallot{
		aggBallot(1, ck, []int64{1, 0}),
		aggBallot(2, ck, []int64{1}), // mismatched vector arity: Add must fail
		aggBallot(3, ck, []int64{0, 1}),
	}
	marks := []CastMark{
		{Serial: 1, Part: 0, Row: 0},
		{Serial: 2, Part: 0, Row: 0},
		{Serial: 3, Part: 0, Row: 0}, // would "succeed" and mask the error
	}
	used := map[uint64]uint8{1: 0, 2: 0, 3: 0}

	if _, err := castTallyAggregate(ballots, marks, used); err == nil {
		t.Fatal("arity mismatch in the fold was swallowed")
	}
}

func TestUsedPartsValidation(t *testing.T) {
	marks := []CastMark{
		{Serial: 1, Part: 0, Row: 0}, // valid single selection
		{Serial: 2, Part: 0, Row: 0}, // both parts → invalid
		{Serial: 2, Part: 1, Row: 1},
		{Serial: 3, Part: 1, Row: 0}, // two marks, maxSelections=1 → invalid
		{Serial: 3, Part: 1, Row: 1},
	}
	used := UsedParts(1, marks)
	if got, ok := used[1]; !ok || got != 0 {
		t.Fatalf("serial 1: used=%v ok=%v", got, ok)
	}
	if _, ok := used[2]; ok {
		t.Fatal("serial 2 used both parts but was treated as voted")
	}
	if _, ok := used[3]; ok {
		t.Fatal("serial 3 exceeded maxSelections but was treated as voted")
	}
	if used2 := UsedParts(2, marks[3:]); used2[3] != 1 {
		t.Fatal("serial 3 with maxSelections=2 should be valid on part 1")
	}
}
