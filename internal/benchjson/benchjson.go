// Package benchjson is the benchmark-tracking half of the CI pipeline,
// in four pieces:
//
//   - Parse/Compare (benchjson.go): `go test -bench` output becomes
//     machine-readable JSON, gated against the checked-in
//     BENCH_BASELINE.json. Raw throughputs vary with the runner, so the
//     baseline gates primarily on ratio metrics (batching speedup, WAL
//     durability tax, store cache speedup), which are machine-independent.
//   - History (trend.go): every run is appended to the committed
//     BENCH_HISTORY.jsonl chain, one Report per line, oldest first.
//   - Trend (trend.go): flags 3-run monotone declines in the chain's
//     absolute numbers — slow erosion that stays inside each run's ratio
//     tolerance still surfaces.
//   - Dashboard (dashboard.go): renders the chain into docs/BENCH.md —
//     per-metric trend tables with sparkline history plus the gated-metric
//     summary.
//
// cmd/ddemos-benchjson exposes all four as CLI modes.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Row is one parsed benchmark result: the benchmark name (CPU-count suffix
// stripped) and every reported metric, ns/op and allocations included.
type Row struct {
	Benchmark  string             `json:"benchmark"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact written on every main-branch CI run.
type Report struct {
	Date string `json:"date"`
	Go   string `json:"go,omitempty"`
	Rows []Row  `json:"rows"`
}

// Baseline is the checked-in regression gate.
type Baseline struct {
	// DefaultTolerance is the allowed relative regression when an entry
	// does not set its own (the CI policy: 0.20 = fail beyond 20%).
	DefaultTolerance float64         `json:"default_tolerance"`
	Entries          []BaselineEntry `json:"entries"`
}

// BaselineEntry gates one metric of one benchmark.
type BaselineEntry struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	// Direction is "higher" (throughput-like: regression = falling below)
	// or "lower" (latency-like: regression = rising above).
	Direction string `json:"direction"`
	// Tolerance overrides DefaultTolerance for this entry.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Note documents why the entry and its bound exist.
	Note string `json:"note,omitempty"`
}

// Parse reads `go test -bench` output. Lines that are not benchmark results
// (logs, headers, PASS/ok) are skipped.
func Parse(r io.Reader) ([]Row, error) {
	var rows []Row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		row := Row{
			Benchmark:  stripCPUSuffix(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		valid := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				valid = false
				break
			}
			row.Metrics[fields[i+1]] = v
		}
		if valid {
			rows = append(rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading bench output: %w", err)
	}
	return rows, nil
}

// stripCPUSuffix drops the -<GOMAXPROCS> tail go test appends to names.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare checks every baseline entry against the measured rows, returning
// one human-readable violation per regression (empty = gate passes). A
// baseline entry whose benchmark or metric is missing from the run is
// itself a violation: deleting a benchmark must not green the gate.
func Compare(rows []Row, base Baseline) []string {
	tol := base.DefaultTolerance
	if tol <= 0 {
		tol = 0.20
	}
	byName := make(map[string]Row, len(rows))
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	var violations []string
	for _, e := range base.Entries {
		row, ok := byName[e.Benchmark]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: benchmark missing from run (baseline gates %s)", e.Benchmark, e.Metric))
			continue
		}
		got, ok := row.Metrics[e.Metric]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: metric %q missing from run", e.Benchmark, e.Metric))
			continue
		}
		t := e.Tolerance
		if t <= 0 {
			t = tol
		}
		switch e.Direction {
		case "lower":
			if limit := e.Value * (1 + t); got > limit {
				violations = append(violations, fmt.Sprintf(
					"%s %s: %.4g exceeds baseline %.4g by more than %.0f%% (limit %.4g)",
					e.Benchmark, e.Metric, got, e.Value, t*100, limit))
			}
		default: // "higher"
			if limit := e.Value * (1 - t); got < limit {
				violations = append(violations, fmt.Sprintf(
					"%s %s: %.4g below baseline %.4g by more than %.0f%% (limit %.4g)",
					e.Benchmark, e.Metric, got, e.Value, t*100, limit))
			}
		}
	}
	return violations
}

// WriteReport serializes the artifact.
func WriteReport(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadBaseline parses a baseline file.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("benchjson: baseline: %w", err)
	}
	return b, nil
}
