package benchjson

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ddemos
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig5bThroughputVsOptions-8   	       1	31415926535 ns/op	       600.1 votes/sec@m=10	       1100.5 batched-votes/sec@m=10	         1.83 batched-speedup@m=10	123456 B/op	  7890 allocs/op
--- BENCH: BenchmarkFig5bThroughputVsOptions-8
    bench_test.go:145: m=10 plain=600.1 signed=580.0 signed+batched=1100.5 op/s (batching speedup 1.83x)
BenchmarkWALAblation 	       1	14541332474 ns/op	       598.5 wal-off-votes/sec	       493.4 wal-on-votes/sec	         0.8243 wal-ratio	865548784 B/op	15254798 allocs/op
PASS
ok  	ddemos	45.971s
`

func TestParse(t *testing.T) {
	rows, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(rows))
	}
	if rows[0].Benchmark != "BenchmarkFig5bThroughputVsOptions" {
		t.Fatalf("cpu suffix not stripped: %q", rows[0].Benchmark)
	}
	if got := rows[0].Metrics["batched-speedup@m=10"]; got != 1.83 {
		t.Fatalf("speedup = %v", got)
	}
	if rows[1].Benchmark != "BenchmarkWALAblation" || rows[1].Metrics["wal-ratio"] != 0.8243 {
		t.Fatalf("wal row mangled: %+v", rows[1])
	}
	if rows[1].Metrics["allocs/op"] != 15254798 {
		t.Fatal("standard metrics must be captured too")
	}
}

func baseline() Baseline {
	return Baseline{
		DefaultTolerance: 0.20,
		Entries: []BaselineEntry{
			{Benchmark: "BenchmarkWALAblation", Metric: "wal-ratio", Value: 1.0, Direction: "higher", Tolerance: 0.30},
			{Benchmark: "BenchmarkFig5bThroughputVsOptions", Metric: "batched-speedup@m=10", Value: 1.5, Direction: "higher"},
		},
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	rows, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if v := Compare(rows, baseline()); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	rows := []Row{
		{Benchmark: "BenchmarkWALAblation", Metrics: map[string]float64{"wal-ratio": 0.65}},
		{Benchmark: "BenchmarkFig5bThroughputVsOptions", Metrics: map[string]float64{"batched-speedup@m=10": 1.83}},
	}
	v := Compare(rows, baseline())
	if len(v) != 1 || !strings.Contains(v[0], "wal-ratio") {
		t.Fatalf("violations = %v", v)
	}
}

func TestCompareFlagsLatencyDirection(t *testing.T) {
	base := Baseline{Entries: []BaselineEntry{
		{Benchmark: "BenchmarkX", Metric: "ms/vote", Value: 10, Direction: "lower"},
	}}
	ok := []Row{{Benchmark: "BenchmarkX", Metrics: map[string]float64{"ms/vote": 11.5}}}
	if v := Compare(ok, base); len(v) != 0 {
		t.Fatalf("11.5 within 20%% of 10: %v", v)
	}
	bad := []Row{{Benchmark: "BenchmarkX", Metrics: map[string]float64{"ms/vote": 12.5}}}
	if v := Compare(bad, base); len(v) != 1 {
		t.Fatalf("12.5 must regress a 10ms baseline: %v", v)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	v := Compare(nil, baseline())
	if len(v) != 2 {
		t.Fatalf("missing benchmarks must violate the gate: %v", v)
	}
	rows := []Row{{Benchmark: "BenchmarkWALAblation", Metrics: map[string]float64{"other": 1}}}
	v = Compare(rows, baseline())
	if len(v) != 2 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing metric must violate the gate: %v", v)
	}
}
