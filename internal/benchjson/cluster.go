package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Cluster-level metric schema: the names ddemos-loadgen and the
// ddemos-cluster orchestrator stamp into their Rows, fixed here so the
// dashboard, the history chain and any future baseline entries agree on
// them. Latencies are milliseconds (benchmark rows are unit-suffixed
// float metrics, and ms keeps cluster numbers readable next to the
// in-process benches' ns/op).
const (
	// MetricTargetRate is the configured open-loop send rate (ops/sec).
	MetricTargetRate = "target/sec"
	// MetricVotesPerSec is the achieved successful-receipt throughput.
	MetricVotesPerSec = "votes/sec"
	// MetricP50Ms / MetricP99Ms / MetricP999Ms / MetricMaxMs are receipt
	// latencies measured against the scheduled send time (coordinated-
	// omission-corrected), in milliseconds.
	MetricP50Ms  = "p50-ms"
	MetricP99Ms  = "p99-ms"
	MetricP999Ms = "p999-ms"
	MetricMaxMs  = "max-ms"
	// MetricSent / MetricErrors / MetricSkipped count scheduled operations
	// by outcome.
	MetricSent    = "sent"
	MetricErrors  = "errors"
	MetricSkipped = "skipped"
	// MetricSchedLagMs is the generator's own worst pickup lateness — if
	// it rivals the tail, the generator (not the cluster) was saturated.
	MetricSchedLagMs = "sched-lag-ms"
	// MetricDistinctSerials is how many distinct ballot serials the run
	// voted (revotes past the pool are idempotent): with zero errors the
	// published tally must sum to exactly this.
	MetricDistinctSerials = "distinct-serials"
	// MetricConsensusPushSec and MetricPublishSec are the post-voting
	// phase durations the orchestrator observes from outside: election
	// end to the last VC's exit (vote-set consensus + BB push), and from
	// there to a majority-readable published Result.
	MetricConsensusPushSec = "consensus-push-sec"
	MetricPublishSec       = "publish-sec"
	// MetricChurnRestarts counts mid-run process restarts in -churn mode.
	MetricChurnRestarts = "churn-restarts"
)

// Ms converts a duration to the milliseconds float the cluster metrics use.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ReadReport parses a single Report JSON document, the format WriteReport
// emits and the cluster tools write with -out.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("benchjson: report: %w", err)
	}
	if len(rep.Rows) == 0 {
		return Report{}, fmt.Errorf("benchjson: report holds no rows")
	}
	return rep, nil
}

// ParseAny reads either `go test -bench` text output or a Report JSON
// document, sniffed by the first non-space byte — so ddemos-benchjson -in
// accepts the in-process benches and the cluster harness artifacts
// uniformly. Text input yields a Report with empty Date/Go for the caller
// to stamp.
func ParseAny(r io.Reader) (Report, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.ReadByte()
		if err != nil {
			return Report{}, fmt.Errorf("benchjson: empty input")
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return Report{}, err
		}
		if b == '{' {
			return ReadReport(br)
		}
		rows, err := Parse(br)
		if err != nil {
			return Report{}, err
		}
		return Report{Rows: rows}, nil
	}
}
