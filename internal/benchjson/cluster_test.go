package benchjson

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func clusterReport() Report {
	return Report{
		Date: "2026-08-07",
		Go:   "go1.22",
		Rows: []Row{{
			Benchmark:  "ClusterLoad/vc=3/rate=500",
			Iterations: 30000,
			Metrics: map[string]float64{
				MetricTargetRate:  500,
				MetricVotesPerSec: 498.2,
				MetricP50Ms:       3.1,
				MetricP99Ms:       18.4,
				MetricP999Ms:      41.0,
				MetricErrors:      0,
			},
		}},
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, clusterReport()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != "2026-08-07" || len(got.Rows) != 1 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Rows[0].Metrics[MetricP999Ms] != 41.0 {
		t.Fatalf("metrics mangled: %+v", got.Rows[0].Metrics)
	}
}

func TestParseAnySniffsJSONAndBenchText(t *testing.T) {
	// JSON (with leading whitespace, as an editor might leave it).
	var buf bytes.Buffer
	if err := WriteReport(&buf, clusterReport()); err != nil {
		t.Fatal(err)
	}
	rep, err := ParseAny(strings.NewReader("\n  " + buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Date != "2026-08-07" || rep.Rows[0].Benchmark != "ClusterLoad/vc=3/rate=500" {
		t.Fatalf("json path mangled: %+v", rep)
	}

	// Bench text.
	rep, err = ParseAny(strings.NewReader(
		"goos: linux\nBenchmarkFig5b/m=4-8 \t 1 \t 123456 ns/op \t 900.5 votes/sec\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Date != "" || len(rep.Rows) != 1 || rep.Rows[0].Benchmark != "BenchmarkFig5b/m=4" {
		t.Fatalf("text path mangled: %+v", rep)
	}

	// Garbage.
	if _, err := ParseAny(strings.NewReader("   ")); err == nil {
		t.Fatal("blank input must fail")
	}
	if _, err := ParseAny(strings.NewReader("{not json")); err == nil {
		t.Fatal("broken json must fail")
	}
}

// TestClusterReportFeedsHistoryAndDashboard pins the acceptance contract:
// a loadgen-written Report appends to a history chain and renders in the
// dashboard like any in-process bench run.
func TestClusterReportFeedsHistoryAndDashboard(t *testing.T) {
	var chain bytes.Buffer
	if err := AppendHistory(&chain, clusterReport()); err != nil {
		t.Fatal(err)
	}
	second := clusterReport()
	second.Date = "2026-08-08"
	second.Rows[0].Metrics[MetricVotesPerSec] = 502.7
	if err := AppendHistory(&chain, second); err != nil {
		t.Fatal(err)
	}
	history, err := ReadHistory(&chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("history = %d runs", len(history))
	}
	var md bytes.Buffer
	if err := WriteDashboard(&md, history, Baseline{}); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"ClusterLoad/vc=3/rate=500", MetricVotesPerSec, MetricP999Ms} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestMs(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != 1.5 {
		t.Fatalf("Ms = %v", got)
	}
}
