package benchjson

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file renders the BENCH_HISTORY.jsonl chain into docs/BENCH.md — the
// human half of the benchmark-tracking pipeline. The baseline gate and the
// trend check decide pass/fail; the dashboard shows the trajectory: one
// trend table per benchmark with sparkline history and deltas, plus a
// summary of every gated metric against its bound. CI regenerates it next
// to the history chain on main pushes and uploads it as an artifact on PRs.

// DashboardWindow is how many trailing runs the per-metric sparklines and
// deltas cover.
const DashboardWindow = 12

// sparkLevels are the eight block heights of a sparkline cell.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals (oldest first) as unicode blocks, normalizing to
// the series' own min..max. A flat series renders mid-height.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		idx := (len(sparkLevels) - 1) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// deltaCell formats the relative change from first to last with a
// direction arrow (→ below 0.5% either way).
func deltaCell(first, last float64) string {
	if first == 0 {
		return "n/a"
	}
	rel := (last - first) / math.Abs(first)
	switch {
	case rel > 0.005:
		return fmt.Sprintf("↑ +%.1f%%", rel*100)
	case rel < -0.005:
		return fmt.Sprintf("↓ %.1f%%", rel*100)
	default:
		return "→ ±0%"
	}
}

// fmtVal renders a metric value compactly.
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3g", v)
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteDashboard renders the history chain (oldest first) as markdown. The
// baseline contributes the gated-metrics summary; pass a zero Baseline to
// omit it. Output is deterministic for a given chain, so regenerating
// without new runs produces no diff.
func WriteDashboard(w io.Writer, history []Report, base Baseline) error {
	bw := &errWriter{w: w}
	bw.printf("# Benchmark dashboard\n\n")
	if len(history) == 0 {
		bw.printf("No runs in the history chain yet.\n")
		return bw.err
	}
	first, last := history[0], history[len(history)-1]
	bw.printf("Rendered from `BENCH_HISTORY.jsonl`: **%d run(s)**, %s → %s (last run on %s).\n\n",
		len(history), first.Date, last.Date, last.Go)
	bw.printf("Regenerate locally with:\n\n")
	bw.printf("```sh\ngo run ./cmd/ddemos-benchjson -dashboard -history BENCH_HISTORY.jsonl \\\n    -baseline BENCH_BASELINE.json -out docs/BENCH.md\n```\n\n")

	window := history
	if len(window) > DashboardWindow {
		window = window[len(window)-DashboardWindow:]
	}

	if len(base.Entries) > 0 {
		bw.printf("## Gated metrics\n\n")
		bw.printf("The CI baseline gate (`BENCH_BASELINE.json`) fails a run when a gated metric\n")
		bw.printf("regresses beyond its tolerance; ratio metrics make the gate machine-independent.\n\n")
		bw.printf("| benchmark | metric | direction | baseline | tolerance | latest | history |\n")
		bw.printf("|---|---|---|---:|---:|---:|---|\n")
		for _, e := range base.Entries {
			vals, _ := metricSeries(window, e.Benchmark, e.Metric, len(window))
			latest, spark := "n/a", ""
			if len(vals) > 0 {
				latest = fmtVal(vals[len(vals)-1])
				spark = sparkline(vals)
			}
			tol := e.Tolerance
			if tol <= 0 {
				tol = base.DefaultTolerance
			}
			if tol <= 0 {
				tol = 0.20
			}
			bw.printf("| %s | %s | %s | %s | %.0f%% | %s | %s |\n",
				strings.TrimPrefix(e.Benchmark, "Benchmark"), e.Metric,
				e.Direction, fmtVal(e.Value), tol*100, latest, spark)
		}
		bw.printf("\n")
	}

	bw.printf("## Metric trends (last %d run(s))\n\n", len(window))
	for _, bench := range benchNames(window) {
		bw.printf("### %s\n\n", strings.TrimPrefix(bench, "Benchmark"))
		bw.printf("| metric | first | latest | Δ window | history |\n")
		bw.printf("|---|---:|---:|---|---|\n")
		for _, metric := range metricNames(window, bench) {
			vals, _ := metricSeries(window, bench, metric, len(window))
			if len(vals) == 0 {
				continue
			}
			bw.printf("| %s | %s | %s | %s | %s |\n",
				metric, fmtVal(vals[0]), fmtVal(vals[len(vals)-1]),
				deltaCell(vals[0], vals[len(vals)-1]), sparkline(vals))
		}
		bw.printf("\n")
	}
	return bw.err
}

// benchNames collects the benchmarks appearing in the window, sorted.
func benchNames(window []Report) []string {
	seen := map[string]bool{}
	var out []string
	for _, rep := range window {
		for _, row := range rep.Rows {
			if !seen[row.Benchmark] {
				seen[row.Benchmark] = true
				out = append(out, row.Benchmark)
			}
		}
	}
	sort.Strings(out)
	return out
}

// metricNames collects a benchmark's metrics across the window, sorted.
func metricNames(window []Report, bench string) []string {
	seen := map[string]bool{}
	var out []string
	for _, rep := range window {
		for _, row := range rep.Rows {
			if row.Benchmark != bench {
				continue
			}
			for m := range row.Metrics {
				if !seen[m] {
					seen[m] = true
					out = append(out, m)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// errWriter folds the first write error through a printf chain.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
