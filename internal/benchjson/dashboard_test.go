package benchjson

import (
	"strings"
	"testing"
)

func dashboardHistory() []Report {
	mk := func(date string, tput, ratio float64) Report {
		return Report{Date: date, Go: "go1.22", Rows: []Row{
			{Benchmark: "BenchmarkX", Iterations: 1, Metrics: map[string]float64{
				"votes/sec": tput, "speedup": ratio,
			}},
		}}
	}
	return []Report{
		mk("2026-07-01", 100, 1.5),
		mk("2026-07-02", 120, 1.6),
		mk("2026-07-03", 110, 1.7),
	}
}

func TestWriteDashboard(t *testing.T) {
	base := Baseline{DefaultTolerance: 0.2, Entries: []BaselineEntry{
		{Benchmark: "BenchmarkX", Metric: "speedup", Value: 1.5, Direction: "higher"},
	}}
	var sb strings.Builder
	if err := WriteDashboard(&sb, dashboardHistory(), base); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Benchmark dashboard",
		"**3 run(s)**",
		"2026-07-01 → 2026-07-03",
		"## Gated metrics",
		"| X | speedup | higher | 1.5 | 20% | 1.7 |",
		"### X",
		"| votes/sec | 100 | 110 |",
		"↑ +13.3%", // speedup 1.5 -> 1.7
		"↑ +10.0%", // votes/sec 100 -> 110
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q\n---\n%s", want, out)
		}
	}
	// Sparklines: three data points render three cells.
	if !strings.Contains(out, "▁█▄") { // 100,120,110 normalized
		t.Errorf("expected sparkline ▁█▄ for votes/sec series\n%s", out)
	}
}

func TestWriteDashboardDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteDashboard(&a, dashboardHistory(), Baseline{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteDashboard(&b, dashboardHistory(), Baseline{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("dashboard output not deterministic")
	}
}

func TestWriteDashboardEmptyHistory(t *testing.T) {
	var sb strings.Builder
	if err := WriteDashboard(&sb, nil, Baseline{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "No runs") {
		t.Fatalf("unexpected empty-history output: %s", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{1, 1, 1}); got != "▄▄▄" {
		t.Fatalf("flat series = %q, want mid-height", got)
	}
	if got := sparkline([]float64{0, 7}); got != "▁█" {
		t.Fatalf("min-max series = %q", got)
	}
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty series = %q", got)
	}
}
