package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// This file is the per-commit benchmark trend half of the CI pipeline: the
// baseline gate (benchjson.go) compares one run against fixed ratio bounds,
// while the history chain accumulates every run's absolute numbers in a
// committed BENCH_HISTORY.jsonl (one Report per line) and the trend check
// flags slow monotone erosion the per-run gate cannot see — three runs each
// a little worse than the last stay inside any single-run tolerance.

// ReadHistory parses a BENCH_HISTORY.jsonl stream: one JSON-encoded Report
// per line, oldest first. Blank lines are skipped; a malformed line is an
// error (the chain is append-only, so corruption means a bad merge).
func ReadHistory(r io.Reader) ([]Report, error) {
	var out []Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rep Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			return nil, fmt.Errorf("benchjson: history line %d: %w", line, err)
		}
		out = append(out, rep)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading history: %w", err)
	}
	return out, nil
}

// AppendHistory writes one Report as a single JSONL line.
func AppendHistory(w io.Writer, rep Report) error {
	raw, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("benchjson: history entry: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := w.Write(raw); err != nil {
		return fmt.Errorf("benchjson: appending history: %w", err)
	}
	return nil
}

// AppendHistoryFile appends rep to the JSONL chain at path, creating it if
// needed.
func AppendHistoryFile(path string, rep Report) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("benchjson: history file: %w", err)
	}
	if err := AppendHistory(f, rep); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// TrendWindow is how many consecutive runs a monotone decline must span to
// be flagged.
const TrendWindow = 3

// DefaultTrendMinDrop is the cumulative relative change below which a
// monotone run is treated as noise (5% across the window).
const DefaultTrendMinDrop = 0.05

// AbsoluteTrendMinDrop is the noise floor for absolute throughput metrics:
// raw op/s numbers vary more across shared runners than ratios, so a
// monotone move must be larger to flag.
const AbsoluteTrendMinDrop = 0.10

// Trend flags metrics that moved monotonically against their direction
// across the last TrendWindow history entries. Two metric sets are
// examined: every baseline-registered metric (direction from the entry),
// and — the point of the chain — every *absolute* throughput metric in the
// history (names ending "/sec", higher-is-better by convention), which the
// per-run ratio gate cannot see: a change that slows both sides of a ratio
// keeps the ratio flat while the absolute numbers erode. A flag requires a
// strictly monotone move at every step plus a cumulative change of at
// least minDrop (default 5%; absolute metrics use at least 10%). Metrics
// present in fewer than TrendWindow of the trailing entries are skipped
// (the chain is still warming up, or the benchmark was dropped).
func Trend(history []Report, base Baseline, minDrop float64) []string {
	if minDrop <= 0 {
		minDrop = DefaultTrendMinDrop
	}
	var flags []string
	type key struct{ bench, metric string }
	seen := make(map[key]bool)
	check := func(bench, metric, direction string, drop float64) {
		k := key{bench, metric}
		if seen[k] {
			return
		}
		seen[k] = true
		vals, dates := metricSeries(history, bench, metric, TrendWindow)
		if len(vals) < TrendWindow {
			return
		}
		first, last := vals[0], vals[len(vals)-1]
		if first == 0 {
			return
		}
		switch direction {
		case "lower":
			if monotone(vals, +1) && (last-first)/first >= drop {
				flags = append(flags, fmt.Sprintf(
					"%s %s: rose monotonically across %d runs (%s): %.4g -> %.4g (+%.1f%%)",
					bench, metric, len(vals), dateRange(dates), first, last, (last-first)/first*100))
			}
		default: // "higher"
			if monotone(vals, -1) && (first-last)/first >= drop {
				flags = append(flags, fmt.Sprintf(
					"%s %s: declined monotonically across %d runs (%s): %.4g -> %.4g (-%.1f%%)",
					bench, metric, len(vals), dateRange(dates), first, last, (first-last)/first*100))
			}
		}
	}
	for _, e := range base.Entries {
		check(e.Benchmark, e.Metric, e.Direction, minDrop)
	}
	absDrop := minDrop
	if absDrop < AbsoluteTrendMinDrop {
		absDrop = AbsoluteTrendMinDrop
	}
	start := len(history) - TrendWindow
	if start < 0 {
		start = 0
	}
	for _, rep := range history[start:] {
		for _, row := range rep.Rows {
			for metric := range row.Metrics {
				if strings.HasSuffix(metric, "/sec") {
					check(row.Benchmark, metric, "higher", absDrop)
				}
			}
		}
	}
	sort.Strings(flags)
	return flags
}

// metricSeries extracts the metric's values from the trailing `window`
// history entries, oldest first. Only the last `window` reports are
// consulted — a metric that stopped being collected goes quiet instead of
// re-flagging its stale tail forever.
func metricSeries(history []Report, bench, metric string, window int) (vals []float64, dates []string) {
	start := len(history) - window
	if start < 0 {
		start = 0
	}
	for _, rep := range history[start:] {
		for _, row := range rep.Rows {
			if row.Benchmark != bench {
				continue
			}
			if v, ok := row.Metrics[metric]; ok {
				vals = append(vals, v)
				dates = append(dates, rep.Date)
			}
			break
		}
	}
	return vals, dates
}

// monotone reports whether vals move strictly in direction sign (+1 rising,
// -1 falling) at every step.
func monotone(vals []float64, sign int) bool {
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if sign > 0 && d <= 0 || sign < 0 && d >= 0 {
			return false
		}
	}
	return true
}

func dateRange(dates []string) string {
	if len(dates) == 0 {
		return ""
	}
	return dates[0] + " .. " + dates[len(dates)-1]
}
