package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func histReport(date string, bench, metric string, v float64) Report {
	return Report{Date: date, Rows: []Row{{
		Benchmark: bench, Iterations: 1, Metrics: map[string]float64{metric: v},
	}}}
}

func trendBase(direction string) Baseline {
	metric := "votes/sec"
	if direction == "lower" {
		metric = "ms/vote"
	}
	return Baseline{Entries: []BaselineEntry{{
		Benchmark: "BenchmarkX", Metric: metric, Value: 100, Direction: direction,
	}}}
}

func TestTrendFlagsMonotoneDecline(t *testing.T) {
	hist := []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkX", "votes/sec", 92),
		histReport("2026-07-03", "BenchmarkX", "votes/sec", 85),
	}
	flags := Trend(hist, trendBase("higher"), 0)
	if len(flags) != 1 {
		t.Fatalf("want 1 flag, got %v", flags)
	}
	if !strings.Contains(flags[0], "declined monotonically") {
		t.Fatalf("unexpected flag: %s", flags[0])
	}
}

func TestTrendUsesTrailingWindow(t *testing.T) {
	// An old decline followed by a recovery must not flag: only the last
	// three runs count.
	hist := []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkX", "votes/sec", 80),
		histReport("2026-07-03", "BenchmarkX", "votes/sec", 60),
		histReport("2026-07-04", "BenchmarkX", "votes/sec", 95),
	}
	if flags := Trend(hist, trendBase("higher"), 0); len(flags) != 0 {
		t.Fatalf("recovered series flagged: %v", flags)
	}
}

func TestTrendIgnoresNoiseAndNonMonotone(t *testing.T) {
	// Monotone but tiny (< minDrop): noise.
	hist := []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkX", "votes/sec", 99.5),
		histReport("2026-07-03", "BenchmarkX", "votes/sec", 99),
	}
	if flags := Trend(hist, trendBase("higher"), 0); len(flags) != 0 {
		t.Fatalf("1%% drift flagged: %v", flags)
	}
	// Large but non-monotone: a blip, not a trend.
	hist = []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkX", "votes/sec", 110),
		histReport("2026-07-03", "BenchmarkX", "votes/sec", 70),
	}
	if flags := Trend(hist, trendBase("higher"), 0); len(flags) != 0 {
		t.Fatalf("non-monotone drop flagged: %v", flags)
	}
}

func TestTrendLowerDirectionFlagsRise(t *testing.T) {
	hist := []Report{
		histReport("2026-07-01", "BenchmarkX", "ms/vote", 10),
		histReport("2026-07-02", "BenchmarkX", "ms/vote", 12),
		histReport("2026-07-03", "BenchmarkX", "ms/vote", 14),
	}
	flags := Trend(hist, trendBase("lower"), 0)
	if len(flags) != 1 || !strings.Contains(flags[0], "rose monotonically") {
		t.Fatalf("want rise flag, got %v", flags)
	}
}

func TestTrendScansAbsoluteThroughputMetricsBeyondBaseline(t *testing.T) {
	// The erosion case the ratio gate cannot see: a "/sec" metric with no
	// baseline entry declines monotonically — must flag (at the stricter
	// 10% absolute floor).
	hist := []Report{
		histReport("2026-07-01", "BenchmarkZ", "pool4-appends/sec", 10000),
		histReport("2026-07-02", "BenchmarkZ", "pool4-appends/sec", 8500),
		histReport("2026-07-03", "BenchmarkZ", "pool4-appends/sec", 7000),
	}
	flags := Trend(hist, Baseline{}, 0)
	if len(flags) != 1 || !strings.Contains(flags[0], "pool4-appends/sec") {
		t.Fatalf("absolute /sec decline not flagged: %v", flags)
	}
	// A monotone absolute move under the 10% floor stays quiet.
	hist = []Report{
		histReport("2026-07-01", "BenchmarkZ", "pool4-appends/sec", 10000),
		histReport("2026-07-02", "BenchmarkZ", "pool4-appends/sec", 9700),
		histReport("2026-07-03", "BenchmarkZ", "pool4-appends/sec", 9300),
	}
	if flags := Trend(hist, Baseline{}, 0); len(flags) != 0 {
		t.Fatalf("7%% absolute drift flagged: %v", flags)
	}
	// Non-/sec metrics without baseline entries are not scanned.
	hist = []Report{
		histReport("2026-07-01", "BenchmarkZ", "B/op", 100),
		histReport("2026-07-02", "BenchmarkZ", "B/op", 50),
		histReport("2026-07-03", "BenchmarkZ", "B/op", 10),
	}
	if flags := Trend(hist, Baseline{}, 0); len(flags) != 0 {
		t.Fatalf("unregistered non-throughput metric flagged: %v", flags)
	}
}

func TestTrendGoesQuietWhenMetricStopsAppearing(t *testing.T) {
	// A declining series followed by runs without the metric (benchmark
	// renamed/dropped) must stop flagging: only the trailing window counts.
	hist := []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkX", "votes/sec", 80),
		histReport("2026-07-03", "BenchmarkX", "votes/sec", 60),
		histReport("2026-07-04", "BenchmarkY", "other", 1),
		histReport("2026-07-05", "BenchmarkY", "other", 1),
		histReport("2026-07-06", "BenchmarkY", "other", 1),
	}
	if flags := Trend(hist, trendBase("higher"), 0); len(flags) != 0 {
		t.Fatalf("stale tail re-flagged: %v", flags)
	}
}

func TestTrendSkipsShortHistory(t *testing.T) {
	hist := []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkX", "votes/sec", 50),
	}
	if flags := Trend(hist, trendBase("higher"), 0); len(flags) != 0 {
		t.Fatalf("two-run chain flagged: %v", flags)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reps := []Report{
		histReport("2026-07-01", "BenchmarkX", "votes/sec", 100),
		histReport("2026-07-02", "BenchmarkY", "wal-ratio", 0.85),
	}
	for _, r := range reps {
		if err := AppendHistory(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Date != "2026-07-01" || got[1].Rows[0].Benchmark != "BenchmarkY" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// A corrupt line is an error, not a silent skip.
	if _, err := ReadHistory(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("corrupt history line must fail")
	}
}
