package benchmark

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/consensus"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/smr"
	"ddemos/internal/transport"
)

// AblationResult quantifies the §II design argument: D-DEMOS deliberately
// avoids state-machine replication, validating votes independently per node
// and coordinating only per-ballot uniqueness. The baseline runs the
// *identical* vote pipeline but additionally totally orders every request
// through a Byzantine consensus instance before acknowledging it — the
// minimum any SMR-based collector pays. The delta is the marginal cost of
// total ordering.
type AblationResult struct {
	DDemosThroughput float64
	DDemosLatency    time.Duration
	SMRThroughput    float64
	SMRLatency       time.Duration
}

// RunAblation measures both designs under the same client load, network
// profile and election parameters.
func RunAblation(votes, clients, nv int, wan bool) (*AblationResult, error) {
	base, err := Run(Config{
		Ballots: votes, Options: 4, VC: nv,
		Clients: clients, Votes: votes, WAN: wan,
		Seed: "ablation-ddemos",
	})
	if err != nil {
		return nil, err
	}
	ordered, err := runOrderedPipeline(votes, clients, nv, wan)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		DDemosThroughput: base.Throughput,
		DDemosLatency:    base.AvgLatency,
		SMRThroughput:    ordered.Throughput,
		SMRLatency:       ordered.AvgLatency,
	}, nil
}

// runOrderedPipeline is Run() with total ordering on the critical path:
// every vote is first sequenced by a per-request consensus instance among
// the same Nv nodes (sharing the same simulated network), then processed by
// the normal voting protocol.
func runOrderedPipeline(votes, clients, nv int, wan bool) (*Result, error) {
	opts := []string{"option-0", "option-1", "option-2", "option-3"}
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "bench-ablation-smr",
		Options:     opts,
		NumBallots:  votes,
		NumVC:       nv,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(24 * time.Hour),
		VCOnly:      true,
		Seed:        []byte("bench-ablation"),
	})
	if err != nil {
		return nil, err
	}
	lp := transport.LANProfile
	if wan {
		lp = transport.WANProfile
	}
	net := transport.NewMemnet(lp)
	cluster, err := core.NewCluster(data, core.Options{Network: net})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	// The sequencers live on the same network with the same link profile
	// (ids offset by 100 so link delays apply between them too).
	f := (nv - 1) / 3
	coin := consensus.NewHashCoin([]byte("ablation"))
	seqs := make([]*smr.Node, nv)
	for i := range seqs {
		seqs[i] = smr.NewNode(uint16(i), nv, f, 100, //nolint:gosec // small
			net.Endpoint(transport.NodeID(100+i)), coin) //nolint:gosec // small
		seqs[i].Start()
	}
	defer func() {
		for _, s := range seqs {
			s.Stop()
		}
	}()

	if clients > votes {
		clients = votes
	}
	var next atomic.Uint64
	var latSum atomic.Int64
	var errs atomic.Int64
	var wg sync.WaitGroup
	wall := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xFACE)) //nolint:gosec // workload
			for {
				serial := next.Add(1)
				if serial > uint64(votes) { //nolint:gosec // positive
					return
				}
				b := data.Ballots[serial-1]
				part := ballot.PartID(rng.IntN(2)) //nolint:gosec // 0/1
				code, err := b.CodeFor(part, rng.IntN(4))
				if err != nil {
					errs.Add(1)
					continue
				}
				which := rng.IntN(nv)
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				t0 := time.Now()
				// SMR critical path: order first, then execute.
				if err := seqs[which].Order(ctx, serial); err != nil {
					cancel()
					errs.Add(1)
					continue
				}
				_, err = cluster.VCs[which].SubmitVote(ctx, serial, code)
				cancel()
				if err != nil {
					errs.Add(1)
					continue
				}
				latSum.Add(int64(time.Since(t0)))
			}
		}(uint64(c + 1)) //nolint:gosec // positive
	}
	wg.Wait()
	elapsed := time.Since(wall)
	ok := int64(votes) - errs.Load()
	if ok <= 0 {
		return nil, fmt.Errorf("benchmark: ordered pipeline failed all requests")
	}
	return &Result{
		Votes:      int(ok),
		Errors:     int(errs.Load()),
		Wall:       elapsed,
		Throughput: float64(ok) / elapsed.Seconds(),
		AvgLatency: time.Duration(latSum.Load() / ok),
	}, nil
}

// PrintAblation formats the comparison.
func PrintAblation(w io.Writer, res *AblationResult, wan bool) {
	net := "LAN"
	if wan {
		net = "WAN"
	}
	fmt.Fprintf(w, "# Ablation (%s): D-DEMOS vote collection vs the same pipeline with per-vote total ordering\n", net)
	fmt.Fprintf(w, "%-34s %-18s %-14s\n", "design", "throughput(op/s)", "latency(ms)")
	fmt.Fprintf(w, "%-34s %-18.1f %-14.2f\n", "d-demos (no total order)",
		res.DDemosThroughput, float64(res.DDemosLatency.Microseconds())/1000)
	fmt.Fprintf(w, "%-34s %-18.1f %-14.2f\n", "with SMR-style total ordering",
		res.SMRThroughput, float64(res.SMRLatency.Microseconds())/1000)
}
