// Package benchmark is the harness that regenerates every table and figure
// of the paper's evaluation (§V). It is shared by the repository-root
// testing.B benchmarks (one per figure/table, representative points) and by
// cmd/ddemos-bench (full parameter sweeps printing the same series the
// paper plots). See DESIGN.md ("Substitutions") for the parameter scaling
// and docs/BENCH.md for the measured trend dashboard.
package benchmark

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/store"
	"ddemos/internal/transport"
)

// Config parameterizes one vote-collection benchmark run (the workload of
// Fig. 4 and Fig. 5a/5b: concurrent clients casting ballots against the VC
// subsystem).
type Config struct {
	Ballots int // n: ballot pool size
	Options int // m
	VC      int // Nv
	Clients int // concurrent clients ("cc" in the paper's figures)
	Votes   int // total ballots to cast (<= Ballots)
	WAN     bool
	// Disk stores each VC node's data in a fixed-record file instead of
	// memory (Fig. 5a).
	Disk    bool
	DiskDir string
	// Segmented stores each VC node's data in a serial-range-sharded
	// segment directory (store.Segmented) instead of one flat file — the
	// millions-of-ballots read path. Implies a disk-backed store; DiskDir
	// hosts the segment directories when set.
	Segmented bool
	// SegmentBallots overrides the ballots-per-segment capacity (0 = the
	// store default).
	SegmentBallots int
	// StoreCacheBytes wraps every node's disk-backed store with the
	// admission-controlled LRU of this byte budget (0 = uncached). The
	// cache-vs-database ablation sizes this deliberately below the pool.
	StoreCacheBytes int64
	// WAL gives every VC node a durable runtime-state journal (the
	// crash-recovery configuration); WALFsync syncs per transition instead
	// of on the batched group-commit cadence. The WAL-on/WAL-off delta is
	// the durability tax tracked by the CI benchmark pipeline.
	WAL      bool
	WALFsync bool
	WALDir   string
	// JournalPool shards the journal into this many WAL lanes when > 1
	// (the Fig. 5a pool knob applied to runtime state; requires WAL).
	JournalPool int
	// Consensus selects the vote-set-consensus engine every VC node runs:
	// "interlocked" (default) or "acs". Collection-only runs never reach the
	// engine, but validating it here keeps a typo from surviving until the
	// consensus phase of a long election benchmark.
	Consensus string
	Seed      string
	// TransportOptions selects the inter-VC channel configuration (the
	// batched-vs-unbatched ablation of Fig. 5b).
	TransportOptions
}

// TransportOptions selects the inter-VC channel configuration of a figure
// sweep; the zero value is the plain unbatched, unauthenticated network.
type TransportOptions struct {
	// Authenticated signs inter-VC channels (the paper's authenticated
	// channels; one Ed25519 sign+verify per message — or per batch).
	Authenticated bool
	// BatchWindow enables the batched message pipeline when > 0.
	BatchWindow time.Duration
	// BatchMaxMessages caps messages per batch (0 = transport default).
	BatchMaxMessages int
}

// DefaultBatchWindow is the flush window used by batched sweeps when the
// caller does not pick one — the transport's own default, so benchmarks
// measure the window deployments run.
const DefaultBatchWindow = transport.DefaultBatchWindow

// Result is the outcome of a vote-collection run.
type Result struct {
	Votes      int
	Errors     int
	Wall       time.Duration
	Throughput float64 // receipts per second
	AvgLatency time.Duration
	SetupTime  time.Duration
}

// Run executes one vote-collection benchmark.
func Run(cfg Config) (*Result, error) {
	if cfg.Votes > cfg.Ballots {
		cfg.Votes = cfg.Ballots
	}
	if cfg.Clients > cfg.Votes {
		cfg.Clients = cfg.Votes
	}
	opts := make([]string, cfg.Options)
	for i := range opts {
		opts[i] = fmt.Sprintf("option-%d", i)
	}
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	setupStart := time.Now()
	data, err := ea.Setup(ea.Params{
		ElectionID:  fmt.Sprintf("bench-%s-%d-%d", cfg.Seed, cfg.VC, cfg.Ballots),
		Options:     opts,
		NumBallots:  cfg.Ballots,
		NumVC:       cfg.VC,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(24 * time.Hour),
		VCOnly:      true,
		Seed:        []byte("bench-" + cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	setupTime := time.Since(setupStart)

	clusterOpts := core.Options{
		Authenticated:    cfg.Authenticated,
		BatchWindow:      cfg.BatchWindow,
		BatchMaxMessages: cfg.BatchMaxMessages,
		Consensus:        cfg.Consensus,
	}
	if cfg.WAN {
		lp := transport.WANProfile
		clusterOpts.LinkProfile = &lp
	}
	if cfg.WAL {
		dir := cfg.WALDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "ddemos-bench-wal")
			if err != nil {
				return nil, err
			}
			defer func() { _ = os.RemoveAll(dir) }()
		}
		clusterOpts.DataDir = dir
		clusterOpts.Fsync = cfg.WALFsync
		clusterOpts.JournalPool = cfg.JournalPool
	}
	if cfg.Disk || cfg.Segmented {
		dir := cfg.DiskDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "ddemos-bench")
			if err != nil {
				return nil, err
			}
			defer func() { _ = os.RemoveAll(dir) }()
		}
		clusterOpts.Stores = make(map[int]store.Store, cfg.VC)
		clusterOpts.StoreCache = cfg.StoreCacheBytes
		for i := 0; i < cfg.VC; i++ {
			var st store.Store
			if cfg.Segmented {
				segDir := filepath.Join(dir, fmt.Sprintf("vc-%d-seg", i))
				// A reused DiskDir (sweeps re-running configs) holds stale
				// segment builds; the writer refuses to overwrite them.
				if err := os.RemoveAll(segDir); err != nil {
					return nil, err
				}
				st, err = store.CreateSegmented(segDir, data.VC[i].Ballots,
					store.WriterOptions{SegmentBallots: cfg.SegmentBallots})
			} else {
				st, err = store.CreateDisk(
					filepath.Join(dir, fmt.Sprintf("vc-%d.store", i)), data.VC[i].Ballots)
			}
			if err != nil {
				return nil, err
			}
			clusterOpts.Stores[i] = st
		}
	}
	cluster, err := core.NewCluster(data, clusterOpts)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	res := castWorkload(cluster, data, cfg.Clients, cfg.Votes)
	res.SetupTime = setupTime
	return res, nil
}

// castWorkload runs the concurrent voting clients and measures throughput
// and latency, mirroring the paper's multi-threaded voting client (§V).
func castWorkload(cluster *core.Cluster, data *ea.ElectionData, clients, votes int) *Result {
	var next atomic.Uint64
	var latSum atomic.Int64
	var errs atomic.Int64
	var wg sync.WaitGroup
	wall := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xBEEF)) //nolint:gosec // workload gen
			for {
				serial := next.Add(1)
				if serial > uint64(votes) { //nolint:gosec // positive
					return
				}
				b := data.Ballots[serial-1]
				part := ballot.PartID(rng.IntN(2))     //nolint:gosec // 0/1
				opt := rng.IntN(len(b.Parts[0].Lines)) //nolint:gosec // small
				code, err := b.CodeFor(part, opt)
				if err != nil {
					errs.Add(1)
					continue
				}
				node := cluster.VCs[rng.IntN(len(cluster.VCs))]
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				t0 := time.Now()
				_, err = node.SubmitVote(ctx, serial, code)
				cancel()
				if err != nil {
					errs.Add(1)
					continue
				}
				latSum.Add(int64(time.Since(t0)))
			}
		}(uint64(c + 1)) //nolint:gosec // positive
	}
	wg.Wait()
	elapsed := time.Since(wall)
	ok := int64(votes) - errs.Load()
	res := &Result{
		Votes:  int(ok),
		Errors: int(errs.Load()),
		Wall:   elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(ok) / elapsed.Seconds()
	}
	if ok > 0 {
		res.AvgLatency = time.Duration(latSum.Load() / ok)
	}
	return res
}

// PhasesConfig parameterizes the full-pipeline benchmark (Fig. 5c).
type PhasesConfig struct {
	Ballots int
	Options int
	VC      int
	Clients int
	// Consensus selects the vote-set-consensus engine ("interlocked"
	// default or "acs") — the knob behind the Fig. 5c consensus-phase
	// series, since the phase pipeline is the one benchmark that times it.
	Consensus string
	Seed      string
}

// PhasesResult is the duration of each system phase (Fig. 5c's series).
type PhasesResult struct {
	Collection time.Duration
	Consensus  time.Duration
	Push       time.Duration
	Publish    time.Duration
	Counts     []int64
}

// RunPhases runs the complete pipeline — with the full cryptographic
// payload, BB nodes and trustees — casting every ballot, and reports the
// four phase durations of Fig. 5c.
func RunPhases(cfg PhasesConfig) (*PhasesResult, error) {
	opts := make([]string, cfg.Options)
	for i := range opts {
		opts[i] = fmt.Sprintf("option-%d", i)
	}
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "bench-phases-" + cfg.Seed,
		Options:     opts,
		NumBallots:  cfg.Ballots,
		NumVC:       cfg.VC,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(24 * time.Hour),
		Seed:        []byte("bench-phases-" + cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	cluster, err := core.NewCluster(data, core.Options{Consensus: cfg.Consensus})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	t0 := time.Now()
	w := castWorkload(cluster, data, cfg.Clients, cfg.Ballots)
	cluster.RecordVoteCollection(time.Since(t0))
	if w.Errors > 0 {
		return nil, fmt.Errorf("benchmark: %d votes failed during collection", w.Errors)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	result, err := cluster.RunPipeline(ctx)
	if err != nil {
		return nil, err
	}
	phases := cluster.Phases()
	return &PhasesResult{
		Collection: phases[core.PhaseVoteCollection],
		Consensus:  phases[core.PhaseVoteSetConsensus],
		Push:       phases[core.PhasePushAndTally],
		Publish:    phases[core.PhasePublishResult],
		Counts:     result.Counts,
	}, nil
}

// VoteMetricsSample measures the per-step compute time Tcomp and average
// receipt latency for the Table I analysis.
func VoteMetricsSample(cfg Config) (tcomp, avgVote time.Duration, err error) {
	if _, err := Run(cfg); err != nil {
		return 0, 0, err
	}
	// Re-run with direct cluster access to harvest node metrics.
	opts := make([]string, cfg.Options)
	for i := range opts {
		opts[i] = fmt.Sprintf("option-%d", i)
	}
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "bench-metrics-" + cfg.Seed,
		Options:     opts,
		NumBallots:  cfg.Ballots,
		NumVC:       cfg.VC,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(24 * time.Hour),
		VCOnly:      true,
		Seed:        []byte("bench-metrics"),
	})
	if err != nil {
		return 0, 0, err
	}
	cluster, err := core.NewCluster(data, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Stop()
	castWorkload(cluster, data, cfg.Clients, cfg.Votes)
	var maxEndorse, maxVote time.Duration
	for _, n := range cluster.VCs {
		s := n.Metrics()
		if s.AvgEndorse > maxEndorse {
			maxEndorse = s.AvgEndorse
		}
		if s.AvgVote > maxVote {
			maxVote = s.AvgVote
		}
	}
	// Tcomp approximates one protocol step's local compute: the endorsement
	// phase spans ~4 steps (validate, endorse round trip, verify, certify).
	return maxEndorse / 4, maxVote, nil
}
