package benchmark

import (
	"fmt"
	"io"
	"time"
)

// Standard sweep axes, matching the paper's figures. Scales are documented
// in DESIGN.md ("Substitutions").
var (
	// VCSweep is the x axis of Fig. 4a/4b/4d/4e (the paper uses 4..16).
	VCSweep = []int{4, 7, 10, 13, 16}
	// ClientSweep is the x axis of Fig. 4c/4f (paper: up to 2000).
	ClientSweep = []int{100, 500, 1000, 1500, 2000}
	// ClientSeries is the per-line concurrency of Fig. 4a/4b/4d/4e.
	ClientSeries = []int{500, 1000, 1500, 2000}
	// PoolSweep is the x axis of Fig. 5a (paper: 50M..250M, scaled ×500).
	PoolSweep = []int{100_000, 200_000, 300_000, 400_000, 500_000}
	// OptionSweep is the x axis of Fig. 5b (paper: 2..10).
	OptionSweep = []int{2, 4, 6, 8, 10}
	// CastSweep is the x axis of Fig. 5c (paper: 50k..200k, scaled ×100).
	CastSweep = []int{500, 1000, 1500, 2000}
)

// Fig4 runs the latency/throughput-vs-Nv sweeps (4a/4b LAN, 4d/4e WAN) and
// prints one row per (Nv, clients) point.
func Fig4(w io.Writer, wan bool, vcs, clients []int, ballots, votesPer, options int, tr TransportOptions) error {
	net := "LAN"
	if wan {
		net = "WAN"
	}
	fmt.Fprintf(w, "# Fig4 %s: vote collection vs #VC (n=%d ballots, m=%d%s)\n",
		net, ballots, options, tr.label())
	fmt.Fprintf(w, "%-6s %-8s %-14s %-16s\n", "#VC", "cc", "latency(ms)", "throughput(op/s)")
	for _, cc := range clients {
		for _, nv := range vcs {
			res, err := Run(Config{
				Ballots: ballots, Options: options, VC: nv,
				Clients: cc, Votes: votesPer, WAN: wan,
				TransportOptions: tr,
				Seed:             fmt.Sprintf("fig4-%s-%d-%d", net, nv, cc),
			})
			if err != nil {
				return fmt.Errorf("fig4 %s nv=%d cc=%d: %w", net, nv, cc, err)
			}
			fmt.Fprintf(w, "%-6d %-8d %-14.2f %-16.1f\n",
				nv, cc, float64(res.AvgLatency.Microseconds())/1000, res.Throughput)
		}
	}
	return nil
}

// Fig4Clients runs the throughput-vs-concurrency sweeps (4c LAN, 4f WAN).
func Fig4Clients(w io.Writer, wan bool, vcs, clients []int, ballots, votesPer, options int, tr TransportOptions) error {
	net := "LAN"
	if wan {
		net = "WAN"
	}
	fmt.Fprintf(w, "# Fig4 %s: throughput vs #cc (n=%d ballots, m=%d%s)\n",
		net, ballots, options, tr.label())
	fmt.Fprintf(w, "%-8s %-6s %-16s\n", "cc", "#VC", "throughput(op/s)")
	for _, nv := range vcs {
		for _, cc := range clients {
			res, err := Run(Config{
				Ballots: ballots, Options: options, VC: nv,
				Clients: cc, Votes: votesPer, WAN: wan,
				TransportOptions: tr,
				Seed:             fmt.Sprintf("fig4c-%s-%d-%d", net, nv, cc),
			})
			if err != nil {
				return fmt.Errorf("fig4c %s nv=%d cc=%d: %w", net, nv, cc, err)
			}
			fmt.Fprintf(w, "%-8d %-6d %-16.1f\n", cc, nv, res.Throughput)
		}
	}
	return nil
}

// Fig5a runs the throughput-vs-pool-size sweep on the disk store.
func Fig5a(w io.Writer, pools []int, votes, clients int) error {
	fmt.Fprintf(w, "# Fig5a: throughput vs n (disk store, m=2, %d votes, %d cc)\n", votes, clients)
	fmt.Fprintf(w, "%-12s %-16s %-12s\n", "n(ballots)", "throughput(op/s)", "setup(s)")
	for _, n := range pools {
		res, err := Run(Config{
			Ballots: n, Options: 2, VC: 4,
			Clients: clients, Votes: votes, Disk: true,
			Seed: fmt.Sprintf("fig5a-%d", n),
		})
		if err != nil {
			return fmt.Errorf("fig5a n=%d: %w", n, err)
		}
		fmt.Fprintf(w, "%-12d %-16.1f %-12.1f\n", n, res.Throughput, res.SetupTime.Seconds())
	}
	return nil
}

// label annotates a figure header with the non-default channel setup.
// engineLabel names the vote-set-consensus engine for figure headers.
func engineLabel(consensus string) string {
	if consensus == "" {
		return "interlocked"
	}
	return consensus
}

func (tr TransportOptions) label() string {
	switch {
	case tr.Authenticated && tr.BatchWindow > 0:
		return fmt.Sprintf(", signed+batched@%v", tr.BatchWindow)
	case tr.Authenticated:
		return ", signed"
	case tr.BatchWindow > 0:
		return fmt.Sprintf(", batched@%v", tr.BatchWindow)
	default:
		return ""
	}
}

// Fig5bRow is one row of the Fig. 5b ablation: throughput at m options for
// each channel configuration.
type Fig5bRow struct {
	Options int
	// Plain is the paper's configuration: unauthenticated, unbatched.
	Plain float64
	// Signed adds per-message Ed25519 channel authentication.
	Signed float64
	// Batched is Signed plus the batched message pipeline — like-for-like
	// with Signed, so the delta isolates the batching win.
	Batched float64
}

// Fig5bPoint measures one m for all three channel configurations.
func Fig5bPoint(m, ballots, votes, clients int, window time.Duration, maxMsgs int) (Fig5bRow, error) {
	if window <= 0 {
		window = DefaultBatchWindow
	}
	row := Fig5bRow{Options: m}
	base := Config{
		Ballots: ballots, Options: m, VC: 4,
		Clients: clients, Votes: votes,
	}
	// One seed per m across all three columns: every configuration votes
	// the identical generated election, so the signed-vs-batched delta is
	// transport-only.
	base.Seed = fmt.Sprintf("fig5b-%d", m)
	configs := []struct {
		out  *float64
		name string
		tr   TransportOptions
	}{
		{&row.Plain, "plain", TransportOptions{}},
		{&row.Signed, "signed", TransportOptions{Authenticated: true}},
		{&row.Batched, "batched", TransportOptions{Authenticated: true, BatchWindow: window, BatchMaxMessages: maxMsgs}},
	}
	for _, c := range configs {
		cfg := base
		cfg.TransportOptions = c.tr
		res, err := Run(cfg)
		if err != nil {
			return row, fmt.Errorf("fig5b m=%d %s: %w", m, c.name, err)
		}
		*c.out = res.Throughput
	}
	return row, nil
}

// Fig5b runs the throughput-vs-options sweep with the batched-vs-unbatched
// ablation columns: the paper's plain configuration, authenticated channels
// (one signature per message), and authenticated channels over the batched
// pipeline (one signature per batch). Signed vs batched is the like-for-like
// comparison quantifying the coalescing win on the LAN profile.
func Fig5b(w io.Writer, options []int, ballots, votes, clients int, window time.Duration, maxMsgs int) error {
	if window <= 0 {
		window = DefaultBatchWindow
	}
	fmt.Fprintf(w, "# Fig5b: throughput vs m (n=%d, %d votes, %d cc, 4 VC; batch window %v)\n",
		ballots, votes, clients, window)
	fmt.Fprintf(w, "%-6s %-16s %-16s %-20s %-10s\n",
		"m", "plain(op/s)", "signed(op/s)", "signed+batched(op/s)", "speedup")
	for _, m := range options {
		row, err := Fig5bPoint(m, ballots, votes, clients, window, maxMsgs)
		if err != nil {
			return err
		}
		speedup := 0.0
		if row.Signed > 0 {
			speedup = row.Batched / row.Signed
		}
		fmt.Fprintf(w, "%-6d %-16.1f %-16.1f %-20.1f %-10.2f\n",
			m, row.Plain, row.Signed, row.Batched, speedup)
	}
	return nil
}

// WALAblationRow quantifies the durability tax: the identical vote-collection
// workload with runtime-state journaling off and on (batched group-commit
// fsync). The On/Off ratio is the machine-independent number the CI
// benchmark pipeline tracks — at the default fsync batching it must stay
// within 30% of the memory-only configuration.
type WALAblationRow struct {
	Off float64 // throughput, memory-only runtime state (op/s)
	On  float64 // throughput, WAL + snapshot journaling (op/s)
}

// Ratio is On/Off (1.0 = free durability; 0 when Off is unmeasurable).
func (r WALAblationRow) Ratio() float64 {
	if r.Off <= 0 {
		return 0
	}
	return r.On / r.Off
}

// RunWALAblation measures both configurations under the same seed, client
// load and election parameters.
func RunWALAblation(ballots, votes, clients, nv int) (WALAblationRow, error) {
	var row WALAblationRow
	base := Config{
		Ballots: ballots, Options: 4, VC: nv,
		Clients: clients, Votes: votes,
		Seed: fmt.Sprintf("wal-ablation-%d-%d", nv, votes),
	}
	for _, c := range []struct {
		out *float64
		wal bool
	}{{&row.Off, false}, {&row.On, true}} {
		cfg := base
		cfg.WAL = c.wal
		res, err := Run(cfg)
		if err != nil {
			return row, fmt.Errorf("wal ablation (wal=%v): %w", c.wal, err)
		}
		*c.out = res.Throughput
	}
	return row, nil
}

// PrintWALAblation formats the comparison.
func PrintWALAblation(w io.Writer, row WALAblationRow) {
	fmt.Fprintf(w, "# WAL ablation: vote collection with durable runtime state off vs on\n")
	fmt.Fprintf(w, "%-28s %-18s\n", "configuration", "throughput(op/s)")
	fmt.Fprintf(w, "%-28s %-18.1f\n", "memory-only", row.Off)
	fmt.Fprintf(w, "%-28s %-18.1f\n", "wal+snapshot (batched sync)", row.On)
	fmt.Fprintf(w, "durability tax: on/off = %.3f\n", row.Ratio())
}

// Fig5c runs the phase-duration breakdown.
func Fig5c(w io.Writer, casts []int, options, clients int, consensus string) error {
	fmt.Fprintf(w, "# Fig5c: phase durations vs ballots cast (m=%d, 4 VC, 3 BB, 3 trustees, %s consensus)\n",
		options, engineLabel(consensus))
	fmt.Fprintf(w, "%-10s %-14s %-14s %-14s %-14s\n",
		"#cast", "collect(s)", "consensus(s)", "push+tally(s)", "publish(s)")
	for _, n := range casts {
		res, err := RunPhases(PhasesConfig{
			Ballots: n, Options: options, VC: 4, Clients: clients,
			Consensus: consensus,
			Seed:      fmt.Sprintf("fig5c-%d", n),
		})
		if err != nil {
			return fmt.Errorf("fig5c n=%d: %w", n, err)
		}
		fmt.Fprintf(w, "%-10d %-14.2f %-14.2f %-14.2f %-14.2f\n", n,
			res.Collection.Seconds(), res.Consensus.Seconds(),
			res.Push.Seconds(), res.Publish.Seconds())
	}
	return nil
}

// TableOneRow is one row of the paper's Table I: a protocol step and its
// time upper bound as coefficients of (Tcomp, Δ, δ) over the start time T.
type TableOneRow struct {
	Step string
	// Bound = A*Tcomp + B*Δ + C*δ, where A may depend on Nv.
	A, B, C int
}

// TableOne returns the 13 analysis rows of Table I (global-clock column)
// for a given Nv.
func TableOne(nv int) []TableOneRow {
	return []TableOneRow{
		{"V is initialized", 0, 0, 0},
		{"V submits her vote to VC", 1, 1, 0},
		{"VC receives V's ballot", 1, 1, 1},
		{"VC verifies validity, broadcasts ENDORSE", 2, 3, 1},
		{"other honest VCs receive ENDORSE", 2, 3, 2},
		{"other honest VCs verify, respond ENDORSEMENT", 3, 5, 2},
		{"VC receives the ENDORSEMENTs", 3, 5, 3},
		{"VC verifies Nv-1 messages for Nv-fv valid", nv + 2, 7, 3},
		{"VC forms UCERT, broadcasts share", nv + 3, 7, 3},
		{"other honest VCs receive share+UCERT", nv + 3, 7, 4},
		{"other honest VCs verify, broadcast shares", nv + 4, 9, 4},
		{"VC receives the shares", nv + 4, 9, 5},
		{"VC verifies Nv-1 messages for Nv-fv shares", 2*nv + 3, 11, 5},
		{"VC reconstructs receipt, sends to V", 2*nv + 4, 11, 5},
		{"V obtains her receipt", 2*nv + 4, 11, 6},
	}
}

// Twait evaluates the paper's patience bound (2Nv+4)Tcomp + 12Δ + 6δ.
func Twait(nv int, tcomp, drift, delay time.Duration) time.Duration {
	return time.Duration(2*nv+4)*tcomp + 12*drift + 6*delay
}

// PrintTableOne evaluates and prints Table I for measured parameters,
// alongside the measured end-to-end receipt latency for comparison.
func PrintTableOne(w io.Writer, nv int, tcomp, drift, delay, measuredVote time.Duration) {
	fmt.Fprintf(w, "# Table I: liveness time upper bounds (Nv=%d, Tcomp=%v, Δ=%v, δ=%v)\n",
		nv, tcomp, drift, delay)
	fmt.Fprintf(w, "%-50s %-28s %-12s\n", "step", "bound (formula)", "evaluated")
	for _, row := range TableOne(nv) {
		bound := time.Duration(row.A)*tcomp + time.Duration(row.B)*drift + time.Duration(row.C)*delay
		formula := fmt.Sprintf("T + %dTcomp + %dΔ + %dδ", row.A, row.B, row.C)
		fmt.Fprintf(w, "%-50s %-28s %-12v\n", row.Step, formula, bound.Round(time.Microsecond))
	}
	tw := Twait(nv, tcomp, drift, delay)
	fmt.Fprintf(w, "Twait = (2Nv+4)Tcomp + 12Δ + 6δ = %v\n", tw.Round(time.Microsecond))
	fmt.Fprintf(w, "measured avg end-to-end receipt latency: %v (must be <= Twait: %v)\n",
		measuredVote.Round(time.Microsecond), measuredVote <= tw)
}
