package benchmark

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histSubBits picks 32 log-linear sub-buckets per power of two: worst-case
// quantile error ~3%, the HDR-histogram precision class, at a fixed 1920
// buckets covering 1ns through ~290 years. Fixed buckets mean Record is one
// atomic add — safe to call from hundreds of load-generator workers with no
// lock and no allocation.
const (
	histSubBits   = 5
	histSubCount  = 1 << histSubBits
	histNumBucket = (64 - histSubBits) * histSubCount
)

// Histogram is a concurrency-safe HDR-style latency histogram; the zero
// value is ready to use.
type Histogram struct {
	counts [histNumBucket]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative duration (ns) to its bucket: identity
// below histSubCount, then histSubBits significant bits per octave.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // position of the leading 1, >= histSubBits
	shift := uint(e - histSubBits)
	sub := (u >> shift) & (histSubCount - 1)
	return (e-histSubBits+1)*histSubCount + int(sub)
}

// bucketUpper is the inclusive upper edge of bucket idx — quantiles report
// this edge, so they never understate a latency.
func bucketUpper(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	block := idx / histSubCount
	sub := uint64(idx % histSubCount)
	e := uint(block + histSubBits - 1)
	shift := e - histSubBits
	base := uint64(1) << e
	return int64(base + (sub << shift) + (uint64(1) << shift) - 1) //nolint:gosec // < 2^63
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of the recorded observations.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Quantile returns the latency at quantile q in [0,1] (bucket upper edge,
// exact max for q=1). Concurrent Records move the answer but never corrupt
// it; call after the run for stable numbers.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histNumBucket; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return h.Max()
}
