package benchmark

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func TestHistogramExactBelowSubCount(t *testing.T) {
	h := NewHistogram()
	for v := 0; v < histSubCount; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != histSubCount {
		t.Fatalf("count = %d", h.Count())
	}
	// Every value below histSubCount has its own bucket: quantiles are
	// exact there.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := h.Quantile(1); got != histSubCount-1 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestHistogramBucketsContiguousAndBounded(t *testing.T) {
	// Walk a dense range of values and check the bucket invariants: the
	// index is monotone non-decreasing and the upper edge always covers
	// the value within the ~2^-histSubBits relative error bound.
	prev := -1
	for v := int64(0); v < 1<<16; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, up, v)
		}
		if v >= histSubCount {
			if maxErr := v + v/histSubCount + 1; up > maxErr {
				t.Fatalf("bucketUpper(%d) = %d overshoots %d (bound %d)", idx, up, v, maxErr)
			}
		}
	}
	// Spot-check the large end: the top of the int64 range must not wrap.
	big := int64(1) << 62
	if up := bucketUpper(bucketIndex(big)); up < big {
		t.Fatalf("big value %d mapped to upper %d", big, up)
	}
}

func TestHistogramQuantilesOfKnownDistribution(t *testing.T) {
	h := NewHistogram()
	// 1000 samples: 990 at ~1ms, 10 at ~100ms.
	for i := 0; i < 990; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 < time.Millisecond || p50 > time.Millisecond+time.Millisecond/16 {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := h.Quantile(0.99); p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v (the 990th of 1000 sorted samples is still 1ms)", p99)
	}
	if p999 := h.Quantile(0.999); p999 < 100*time.Millisecond || p999 > 104*time.Millisecond {
		t.Fatalf("p999 = %v", p999)
	}
	if max := h.Max(); max != 100*time.Millisecond {
		t.Fatalf("max = %v", max)
	}
	if mean := h.Mean(); mean < 1900*time.Microsecond || mean > 2100*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 7))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int64N(int64(time.Second))))
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if q := h.Quantile(0.5); q <= 0 || q > time.Second+time.Second/16 {
		t.Fatalf("p50 = %v out of range", q)
	}
}
