package benchmark

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ddemos/internal/parallel"
)

// LoadConfig parameterizes one open-loop paced load run: ops are assigned
// scheduled send times on a fixed-rate grid before the run starts, and
// every latency is measured against that schedule — not against the moment
// the request actually left. A saturated system therefore shows its queue
// in the tail instead of silently slowing the generator down (coordinated
// omission).
type LoadConfig struct {
	// Rate is the target send rate in operations per second (> 0).
	Rate float64
	// Duration is the length of the send schedule; the run itself lasts
	// until the last response (or timeout) lands.
	Duration time.Duration
	// MaxOps caps the schedule length (0 = Rate*Duration ops).
	MaxOps int
	// Workers bounds in-flight operations (0 = DefaultLoadWorkers). If all
	// workers are busy when an op's scheduled time arrives, the op starts
	// late and the lateness is part of its measured latency — that is the
	// open-loop contract, so size Workers ≥ Rate × expected p99.
	Workers int
	// Timeout bounds each operation's context (0 = 10s).
	Timeout time.Duration
}

// DefaultLoadWorkers is the default in-flight bound: enough for 10k op/s
// at ~50ms backend latency before the generator itself queues.
const DefaultLoadWorkers = 512

// LoadResult is the outcome of one paced run.
type LoadResult struct {
	Scheduled int           // ops on the schedule
	Completed int           // ops that got a success response
	Errors    int           // ops that returned an error
	Skipped   int           // ops abandoned because the run context ended
	Wall      time.Duration // first scheduled send to last response
	// Throughput is successful ops per wall-clock second.
	Throughput float64
	// Hist holds per-op latency vs *scheduled* send time (successes only).
	Hist *Histogram
	// MaxStartLag is the worst lateness between an op's scheduled send
	// time and the moment a worker actually picked it up — the generator's
	// own saturation gauge. If this rivals the measured tail, raise
	// Workers before blaming the system under test.
	MaxStartLag time.Duration
	// FirstErr samples the first error for diagnostics.
	FirstErr error
}

// RunLoad drives send on the open-loop schedule described by cfg. send is
// called concurrently from the worker pool; op is the schedule index.
// RunLoad returns once every scheduled op completed, errored, or was
// skipped after ctx ended.
func RunLoad(ctx context.Context, cfg LoadConfig, send func(ctx context.Context, op int) error) (*LoadResult, error) {
	if cfg.Rate <= 0 {
		return nil, errors.New("benchmark: LoadConfig.Rate must be > 0")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("benchmark: LoadConfig.Duration must be > 0")
	}
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	if cfg.MaxOps > 0 && n > cfg.MaxOps {
		n = cfg.MaxOps
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultLoadWorkers
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	res := &LoadResult{Scheduled: n, Hist: NewHistogram()}
	var completed, failed, skipped atomic.Int64
	var maxLag atomic.Int64
	var firstErr atomic.Value

	start := time.Now()
	parallel.Run(workers, n, func(i int) {
		sched := start.Add(time.Duration(i) * interval)
		if wait := time.Until(sched); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				skipped.Add(1)
				return
			}
		} else if ctx.Err() != nil {
			skipped.Add(1)
			return
		}
		if lag := time.Since(sched); lag > 0 {
			for {
				cur := maxLag.Load()
				if int64(lag) <= cur || maxLag.CompareAndSwap(cur, int64(lag)) {
					break
				}
			}
		}
		opCtx, cancel := context.WithTimeout(ctx, timeout)
		err := send(opCtx, i)
		cancel()
		if err != nil {
			failed.Add(1)
			firstErr.CompareAndSwap(nil, err)
			return
		}
		completed.Add(1)
		res.Hist.Record(time.Since(sched))
	})
	res.Wall = time.Since(start)
	res.Completed = int(completed.Load())
	res.Errors = int(failed.Load())
	res.Skipped = int(skipped.Load())
	res.MaxStartLag = time.Duration(maxLag.Load())
	if err, ok := firstErr.Load().(error); ok {
		res.FirstErr = err
	}
	if res.Wall > 0 {
		res.Throughput = float64(res.Completed) / res.Wall.Seconds()
	}
	return res, nil
}

// Summary renders the one-line human-readable digest the load tools print.
func (r *LoadResult) Summary(targetRate float64) string {
	return fmt.Sprintf(
		"%d scheduled, %d ok, %d errors, %d skipped in %v (%.1f/sec achieved, target %.1f)\n"+
			"latency vs schedule: p50=%v p99=%v p999=%v max=%v (mean %v, max start lag %v)",
		r.Scheduled, r.Completed, r.Errors, r.Skipped, r.Wall.Round(time.Millisecond),
		r.Throughput, targetRate,
		r.Hist.Quantile(0.50).Round(10*time.Microsecond),
		r.Hist.Quantile(0.99).Round(10*time.Microsecond),
		r.Hist.Quantile(0.999).Round(10*time.Microsecond),
		r.Hist.Max().Round(10*time.Microsecond),
		r.Hist.Mean().Round(10*time.Microsecond),
		r.MaxStartLag.Round(10*time.Microsecond))
}
