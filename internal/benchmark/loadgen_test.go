package benchmark

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLoadPacesToSchedule(t *testing.T) {
	// 2000/s for 150ms = 300 ops with an instant sender: the run must
	// take at least the schedule length (open loop sends on the grid, it
	// does not blast back-to-back) and complete every op.
	var sent atomic.Int64
	res, err := RunLoad(context.Background(), LoadConfig{Rate: 2000, Duration: 150 * time.Millisecond},
		func(ctx context.Context, op int) error { sent.Add(1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 300 || res.Completed != 300 || res.Errors != 0 || res.Skipped != 0 {
		t.Fatalf("scheduled=%d completed=%d errors=%d skipped=%d",
			res.Scheduled, res.Completed, res.Errors, res.Skipped)
	}
	if sent.Load() != 300 {
		t.Fatalf("sender called %d times", sent.Load())
	}
	// The last op is scheduled at 299/2000 s ≈ 149.5ms after start.
	if res.Wall < 145*time.Millisecond {
		t.Fatalf("wall = %v: ops were not paced onto the schedule", res.Wall)
	}
	if res.Hist.Count() != 300 {
		t.Fatalf("hist count = %d", res.Hist.Count())
	}
}

func TestRunLoadMeasuresAgainstScheduleNotSendTime(t *testing.T) {
	// One worker, 100/s for 100ms = 10 ops, each taking 30ms: op k cannot
	// start before k*30ms while its schedule says k*10ms. A generator that
	// measured from the actual send time would report ~30ms for every op
	// (coordinated omission); measuring against the schedule must surface
	// the queueing delay — the last op's latency is ≥ 9*30 − 90 + 30 ≈
	// 210ms.
	res, err := RunLoad(context.Background(),
		LoadConfig{Rate: 100, Duration: 100 * time.Millisecond, Workers: 1},
		func(ctx context.Context, op int) error { time.Sleep(30 * time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if max := res.Hist.Max(); max < 180*time.Millisecond {
		t.Fatalf("max latency = %v: queueing delay not measured against the schedule", max)
	}
	if res.MaxStartLag < 100*time.Millisecond {
		t.Fatalf("max start lag = %v: generator saturation not surfaced", res.MaxStartLag)
	}
}

func TestRunLoadContextCancelSkipsRemainder(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunLoad(ctx, LoadConfig{Rate: 100, Duration: 10 * time.Second},
		func(ctx context.Context, op int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}
	if res.Skipped == 0 {
		t.Fatalf("no ops skipped after cancellation: %+v", res)
	}
	if res.Completed+res.Errors+res.Skipped != res.Scheduled {
		t.Fatalf("ops unaccounted for: %+v", res)
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := RunLoad(context.Background(), LoadConfig{Rate: 1000, Duration: 20 * time.Millisecond},
		func(ctx context.Context, op int) error {
			if op%2 == 1 {
				return boom
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Scheduled/2 || res.Completed != res.Scheduled-res.Errors {
		t.Fatalf("completed=%d errors=%d of %d", res.Completed, res.Errors, res.Scheduled)
	}
	if !errors.Is(res.FirstErr, boom) {
		t.Fatalf("FirstErr = %v", res.FirstErr)
	}
	// Only successes are in the histogram.
	if res.Hist.Count() != int64(res.Completed) {
		t.Fatalf("hist count = %d, completed = %d", res.Hist.Count(), res.Completed)
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{Rate: 0, Duration: time.Second}, nil); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{Rate: 1, Duration: 0}, nil); err == nil {
		t.Fatal("zero duration must be rejected")
	}
}
