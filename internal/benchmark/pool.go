package benchmark

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/vc"
)

// PoolPoint is one column of the pool-size ablation: the journal-append
// throughput of one backend configuration, Fig. 5a-style (the paper sweeps
// its PostgreSQL connection pool; here the pool is the sharded journal's
// WAL-lane count, the same knob applied to runtime state).
type PoolPoint struct {
	Pool          int     // WAL lanes (1 = the single-WAL engine)
	AppendsPerSec float64 // appended transition records per second
	Speedup       float64 // vs the first (single-WAL) point
}

// PoolAblationConfig tunes RunPoolAblation.
type PoolAblationConfig struct {
	// Pools is the x axis (default 1, 2, 4, 8). The first entry is the
	// speedup baseline and should be 1.
	Pools []int
	// Workers is the number of concurrent appenders — the election-side
	// equivalent of concurrent responder flows journaling transitions
	// (default 16).
	Workers int
	// Duration is the measured window per pool point (default 300ms).
	Duration time.Duration
	// NoFsync disables the per-append fsync. The zero value (fsync on) is
	// the strongest durability, where lane parallelism pays the most — and
	// the configuration the paper's database pool runs.
	NoFsync bool
	// Dir hosts the per-point journal directories (default: a temp dir).
	Dir string
}

func (c PoolAblationConfig) withDefaults() PoolAblationConfig {
	if len(c.Pools) == 0 {
		c.Pools = []int{1, 2, 4, 8}
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	return c
}

// RunPoolAblation measures journal-append throughput across pool sizes:
// Workers concurrent appenders write protocol-shaped voted-transition
// records (distinct serials, so pooled lanes spread) for Duration per
// point. With per-append fsync the single WAL serializes every append
// behind one disk flush; pooled lanes flush independently, which is the
// scaling the paper's Fig. 5a pool sweep shows for its database-backed
// runtime state.
func RunPoolAblation(cfg PoolAblationConfig) ([]PoolPoint, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ddemos-pool-ablation")
		if err != nil {
			return nil, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
	}
	var points []PoolPoint
	for i, pool := range cfg.Pools {
		tput, err := measurePoolPoint(fmt.Sprintf("%s/pool-%d-%d", dir, i, pool), pool, cfg)
		if err != nil {
			return nil, fmt.Errorf("pool ablation (pool=%d): %w", pool, err)
		}
		pt := PoolPoint{Pool: pool, AppendsPerSec: tput, Speedup: 1}
		if len(points) > 0 && points[0].AppendsPerSec > 0 {
			pt.Speedup = tput / points[0].AppendsPerSec
		}
		points = append(points, pt)
	}
	return points, nil
}

func measurePoolPoint(dir string, pool int, cfg PoolAblationConfig) (float64, error) {
	j, err := vc.OpenJournal(dir, vc.JournalOptions{
		Pool:  pool,
		Fsync: !cfg.NoFsync,
		// The measurement isolates append throughput; snapshots are the
		// concurrent-capture path benchmarked separately.
		SnapshotEvery: 1 << 30,
	})
	if err != nil {
		return 0, err
	}
	var total atomic.Int64
	errCh := make(chan error, cfg.Workers)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			code := []byte("pool-ablation-code-0")
			receipt := []byte("recv0000")
			serial := uint64(w + 1)
			for time.Now().Before(deadline) {
				rec := vc.EncodeVotedRecord(serial, code, receipt)
				if err := j.Append([][]byte{rec}); err != nil {
					errCh <- err
					return
				}
				total.Add(1)
				serial += uint64(cfg.Workers)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	// Workers check the deadline before each append, so the last appends
	// (full fsyncs) complete past it — divide by the time actually spent,
	// not the configured window.
	elapsed := time.Since(start)
	cerr := j.Close()
	if err := <-errCh; err != nil {
		return 0, err
	}
	if cerr != nil {
		return 0, cerr
	}
	return float64(total.Load()) / elapsed.Seconds(), nil
}

// RunPoolElectionAblation is the end-to-end flavour of the pool sweep: the
// same LAN-profile vote-collection workload per pool size, every node
// journaling with per-transition fsync (the configuration where the journal
// is the bottleneck, as the database is in the paper's Fig. 5a). Throughput
// is receipts per second.
func RunPoolElectionAblation(pools []int, ballots, votes, clients, nv int) ([]PoolPoint, error) {
	var points []PoolPoint
	for _, pool := range pools {
		res, err := Run(Config{
			Ballots: ballots, Options: 2, VC: nv,
			Clients: clients, Votes: votes,
			WAL: true, WALFsync: true, JournalPool: pool,
			Seed: fmt.Sprintf("pool-ablation-%d", pool),
		})
		if err != nil {
			return nil, fmt.Errorf("pool election ablation (pool=%d): %w", pool, err)
		}
		pt := PoolPoint{Pool: pool, AppendsPerSec: res.Throughput, Speedup: 1}
		if len(points) > 0 && points[0].AppendsPerSec > 0 {
			pt.Speedup = res.Throughput / points[0].AppendsPerSec
		}
		points = append(points, pt)
	}
	return points, nil
}

// PrintPoolElectionAblation formats the end-to-end sweep.
func PrintPoolElectionAblation(w io.Writer, points []PoolPoint) {
	fmt.Fprintf(w, "# Pool ablation (election): LAN vote collection vs journal pool size, per-transition fsync\n")
	fmt.Fprintf(w, "%-8s %-20s %-10s\n", "pool", "votes/sec", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%-8d %-20.1f %-10.2f\n", p.Pool, p.AppendsPerSec, p.Speedup)
	}
}

// PrintPoolAblation formats the sweep Fig. 5a-style: one row per pool size.
func PrintPoolAblation(w io.Writer, points []PoolPoint) {
	fmt.Fprintf(w, "# Pool ablation: journal append throughput vs WAL-lane pool size (Fig. 5a analogue)\n")
	fmt.Fprintf(w, "%-8s %-20s %-10s\n", "pool", "appends/sec", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%-8d %-20.0f %-10.2f\n", p.Pool, p.AppendsPerSec, p.Speedup)
	}
}
