package benchmark

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ddemos/internal/ea"
	"ddemos/internal/httpapi"
	"ddemos/internal/store"
)

// SetupPoint is one route of the EA → VC setup ablation: the legacy
// whole-pool handoff (materialize the pool, gob it, decode it, build
// segments on first VC boot) versus the streaming zero-copy handoff (EA
// emits segment directories through store.Writer as ballots generate; the
// VC opens them directly).
type SetupPoint struct {
	Route        string  // legacy | streaming
	SetupSec     float64 // EA generate + write every payload file
	PeakHeapMB   float64 // peak Go heap above the pre-route baseline, MiB
	ColdStartSec float64 // VC boot: payload on disk → first ballot served
	MemRatio     float64 // legacy peak heap / this route's peak heap
}

// SetupAblationConfig tunes RunSetupAblation.
type SetupAblationConfig struct {
	// Ballots is the pool size (default 50000; the figure run uses 1M —
	// see cmd/ddemos-bench -fig setup).
	Ballots int
	// Options is m, the per-part line count (default 2).
	Options int
	// VC is the number of vote-collector payloads generated (default 4).
	VC int
	// SegmentBallots is the emitted segment capacity (default 10000, so
	// the default pool spans several segments).
	SegmentBallots int
	// Dir hosts the payload files (default: a temp dir).
	Dir string
	// Seed makes both routes generate the identical election
	// (default "setup-ablation").
	Seed string
}

func (c SetupAblationConfig) withDefaults() SetupAblationConfig {
	if c.Ballots <= 0 {
		c.Ballots = 50_000
	}
	if c.Options <= 0 {
		c.Options = 2
	}
	if c.VC <= 0 {
		c.VC = 4
	}
	if c.SegmentBallots <= 0 {
		c.SegmentBallots = 10_000
	}
	if c.Seed == "" {
		c.Seed = "setup-ablation"
	}
	return c
}

// heapSampler tracks peak heap allocation over a measured region. Sampling
// (rather than a single before/after read) catches the transient peak —
// exactly what O(pool) routes produce and O(segment) routes must not.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
	base uint64
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{}), base: ms.HeapAlloc, peak: ms.HeapAlloc}
	go func() {
		defer close(s.done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

// Finish stops sampling and returns the peak heap growth in bytes.
func (s *heapSampler) Finish() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	close(s.stop)
	<-s.done
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	if s.peak < s.base {
		return 0
	}
	return s.peak - s.base
}

// setupParams builds the common (seeded, VC-only) election parameters: the
// ablation measures the EA → VC handoff, so the BB/trustee payloads — whose
// ElGamal/ZK work dwarfs the handoff and is identical on both routes — are
// left out.
func setupParams(cfg SetupAblationConfig) ea.Params {
	return ea.Params{
		ElectionID:  "setup-ablation",
		Options:     optionNames(cfg.Options),
		NumBallots:  cfg.Ballots,
		NumVC:       cfg.VC,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: time.Unix(1700000000, 0),
		VotingEnd:   time.Unix(1700000000, 0).Add(12 * time.Hour),
		Seed:        []byte(cfg.Seed),
		VCOnly:      true,
	}
}

func optionNames(m int) []string {
	out := make([]string, m)
	for i := range out {
		out[i] = fmt.Sprintf("option-%d", i)
	}
	return out
}

// runLegacySetup is the pre-streaming pipeline: materialize the whole
// election in memory, write whole-pool vc-<i>.gob payloads; cold start
// decodes the pool and stream-builds a segment directory (what ddemos-vc
// does on first boot from a legacy payload).
func runLegacySetup(cfg SetupAblationConfig, dir string) (SetupPoint, error) {
	pt := SetupPoint{Route: "legacy"}
	sampler := startHeapSampler()
	begin := time.Now()
	data, err := ea.Setup(setupParams(cfg))
	if err != nil {
		return pt, err
	}
	for i, v := range data.VC {
		if err := httpapi.WriteGobFile(filepath.Join(dir, fmt.Sprintf("vc-%d.gob", i)), v); err != nil {
			return pt, err
		}
	}
	pt.SetupSec = time.Since(begin).Seconds()
	data = nil //nolint:ineffassign,wastedassign // release the pool before the peak reading
	pt.PeakHeapMB = float64(sampler.Finish()) / (1 << 20)

	begin = time.Now()
	var init ea.VCInit
	if err := httpapi.ReadGobFile(filepath.Join(dir, "vc-0.gob"), &init); err != nil {
		return pt, err
	}
	w, err := store.NewWriter(filepath.Join(dir, "vc-0-ballots"), store.WriterOptions{SegmentBallots: cfg.SegmentBallots})
	if err != nil {
		return pt, err
	}
	for _, b := range init.Ballots {
		if err := w.Append(b); err != nil {
			w.Abort()
			return pt, err
		}
	}
	seg, err := w.Finish()
	if err != nil {
		return pt, err
	}
	defer func() { _ = seg.Close() }()
	if _, err := seg.Get(uint64(cfg.Ballots)); err != nil {
		return pt, err
	}
	pt.ColdStartSec = time.Since(begin).Seconds()
	return pt, nil
}

// runStreamingSetup is the zero-copy pipeline: SetupStream emits each
// ballot once, straight into per-VC segment directories and slim payloads;
// cold start opens the pre-built directory.
func runStreamingSetup(cfg SetupAblationConfig, dir string) (SetupPoint, error) {
	pt := SetupPoint{Route: "streaming"}
	sampler := startHeapSampler()
	begin := time.Now()
	writers := make([]*store.Writer, cfg.VC)
	for i := range writers {
		w, err := store.NewWriter(filepath.Join(dir, fmt.Sprintf("vc-%d-ballots", i)), store.WriterOptions{SegmentBallots: cfg.SegmentBallots})
		if err != nil {
			return pt, err
		}
		writers[i] = w
	}
	sd, err := ea.SetupStream(setupParams(cfg), ea.StreamOptions{}, func(e *ea.Emission) error {
		for i, w := range writers {
			if err := w.Append(e.VC[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		for _, w := range writers {
			w.Abort()
		}
		return pt, err
	}
	for _, w := range writers {
		seg, err := w.Finish()
		if err != nil {
			return pt, err
		}
		_ = seg.Close()
	}
	for i, v := range sd.VC {
		v.BallotsDir = fmt.Sprintf("vc-%d-ballots", i)
		if err := httpapi.WriteGobFile(filepath.Join(dir, fmt.Sprintf("vc-%d.gob", i)), v); err != nil {
			return pt, err
		}
	}
	pt.SetupSec = time.Since(begin).Seconds()
	pt.PeakHeapMB = float64(sampler.Finish()) / (1 << 20)

	begin = time.Now()
	var init ea.VCInit
	if err := httpapi.ReadGobFile(filepath.Join(dir, "vc-0.gob"), &init); err != nil {
		return pt, err
	}
	seg, err := store.OpenSegmented(filepath.Join(dir, init.BallotsDir))
	if err != nil {
		return pt, err
	}
	defer func() { _ = seg.Close() }()
	if _, err := seg.Get(uint64(cfg.Ballots)); err != nil {
		return pt, err
	}
	pt.ColdStartSec = time.Since(begin).Seconds()
	return pt, nil
}

// RunSetupAblation measures EA → VC setup end to end on both handoff
// routes over the identical seeded election: wall time to generate and
// write every payload, peak heap while doing it, and the VC's cold-start
// time from payload to first served ballot. The streaming route's peak
// must stay O(segment + reorder window) while the legacy route's grows
// O(pool) — their ratio (MemRatio) is machine-independent and is what the
// CI baseline gates.
func RunSetupAblation(cfg SetupAblationConfig) ([]SetupPoint, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ddemos-setup-ablation")
		if err != nil {
			return nil, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
	}
	legacyDir := filepath.Join(dir, "legacy")
	streamDir := filepath.Join(dir, "streaming")
	for _, d := range []string{legacyDir, streamDir} {
		if err := os.RemoveAll(d); err != nil {
			return nil, err
		}
		if err := os.MkdirAll(d, 0o700); err != nil {
			return nil, err
		}
	}
	legacy, err := runLegacySetup(cfg, legacyDir)
	if err != nil {
		return nil, fmt.Errorf("setup ablation (legacy): %w", err)
	}
	streaming, err := runStreamingSetup(cfg, streamDir)
	if err != nil {
		return nil, fmt.Errorf("setup ablation (streaming): %w", err)
	}
	points := []SetupPoint{legacy, streaming}
	for i := range points {
		if points[i].PeakHeapMB > 0 {
			points[i].MemRatio = legacy.PeakHeapMB / points[i].PeakHeapMB
		}
	}
	return points, nil
}

// PrintSetupAblation formats the ablation, one row per route.
func PrintSetupAblation(w io.Writer, points []SetupPoint, cfg SetupAblationConfig) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Setup ablation: EA → VC handoff, %d-ballot pool (m=%d, %d VC, %d-ballot segments)\n",
		cfg.Ballots, cfg.Options, cfg.VC, cfg.SegmentBallots)
	fmt.Fprintf(w, "%-12s %-12s %-14s %-16s %-10s\n", "route", "setup-sec", "peak-heap-MB", "vc-coldstart-sec", "mem-ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %-12.2f %-14.1f %-16.3f %-10.2f\n",
			p.Route, p.SetupSec, p.PeakHeapMB, p.ColdStartSec, p.MemRatio)
	}
}
