package benchmark

import (
	"testing"
	"time"
)

func TestSmokeRun(t *testing.T) {
	res, err := Run(Config{Ballots: 200, Options: 2, VC: 4, Clients: 20, Votes: 200, Seed: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tput=%.1f lat=%v errors=%d setup=%v", res.Throughput, res.AvgLatency, res.Errors, res.SetupTime)
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
}
func TestSmokePhases(t *testing.T) {
	res, err := RunPhases(PhasesConfig{Ballots: 60, Options: 3, VC: 4, Clients: 10, Seed: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("collect=%v consensus=%v push=%v publish=%v counts=%v", res.Collection, res.Consensus, res.Push, res.Publish, res.Counts)
}
func TestSmokePoolAblation(t *testing.T) {
	// A fast pass over the journal pool sweep: correctness of the harness,
	// not the speedup bound (CI's bench job gates that via the baseline).
	points, err := RunPoolAblation(PoolAblationConfig{
		Pools: []int{1, 4}, Workers: 8, Duration: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("pool=%d appends/sec=%.0f speedup=%.2f", p.Pool, p.AppendsPerSec, p.Speedup)
		if p.AppendsPerSec <= 0 {
			t.Fatalf("pool %d measured no appends", p.Pool)
		}
	}
	// No speedup assertion here: a 60ms window under full-suite load is
	// noise; the >=1.3x bound is gated by the bench job's baseline at a
	// pinned 500ms window.
}

func TestSmokePoolElection(t *testing.T) {
	if testing.Short() {
		t.Skip("fsync-per-transition election in short mode")
	}
	points, err := RunPoolElectionAblation([]int{1, 2}, 80, 80, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("pool=%d votes/sec=%.1f speedup=%.2f", p.Pool, p.AppendsPerSec, p.Speedup)
	}
}

func TestSmokeTallyAblation(t *testing.T) {
	// A fast pass over the publish-phase pipeline sweep: correctness of the
	// harness and result agreement across columns, not the speedup bound
	// (CI's bench job gates that via the baseline at a pinned pool size).
	cfg := TallyAblationConfig{Ballots: 40, Votes: 20, Seed: "smoke"}
	points, err := RunTallyAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("config=%s combine=%.3fs audit=%.3fs speedup=%.2f attempts=%d",
			p.Config, p.CombineSec, p.AuditSec, p.Speedup, p.Attempts)
		if p.CombineSec <= 0 {
			t.Fatalf("%s measured no combine time", p.Config)
		}
	}
	sweep, err := RunByzantineTallySweep(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sweep {
		t.Logf("garbage=%d combine=%.3fs attempts=%d blames=%d",
			p.Garbage, p.CombineSec, p.Attempts, p.Blames)
	}
	if sweep[1].Blames == 0 {
		t.Fatal("garbage trustee was never blamed")
	}
}

func TestSmokeAblation(t *testing.T) {
	res, err := RunAblation(100, 10, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ddemos=%.1f/%v smr=%.1f/%v", res.DDemosThroughput, res.DDemosLatency, res.SMRThroughput, res.SMRLatency)
}
