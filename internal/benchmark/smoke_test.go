package benchmark

import "testing"

func TestSmokeRun(t *testing.T) {
	res, err := Run(Config{Ballots: 200, Options: 2, VC: 4, Clients: 20, Votes: 200, Seed: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tput=%.1f lat=%v errors=%d setup=%v", res.Throughput, res.AvgLatency, res.Errors, res.SetupTime)
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
}
func TestSmokePhases(t *testing.T) {
	res, err := RunPhases(PhasesConfig{Ballots: 60, Options: 3, VC: 4, Clients: 10, Seed: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("collect=%v consensus=%v push=%v publish=%v counts=%v", res.Collection, res.Consensus, res.Push, res.Publish, res.Counts)
}
func TestSmokeAblation(t *testing.T) {
	res, err := RunAblation(100, 10, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ddemos=%.1f/%v smr=%.1f/%v", res.DDemosThroughput, res.DDemosLatency, res.SMRThroughput, res.SMRLatency)
}
