package benchmark

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/store"
)

// StorePoint is one column of the ballot-store read-path ablation — the
// paper's Fig. 4/5a "database vs. in-memory cache" comparison (the journal
// version runs the same sweep as a PostgreSQL pool vs. an eliminated-DB
// cache): the same protocol-shaped read workload against one store
// configuration.
type StorePoint struct {
	Config     string  // mem | flat-disk | segmented | segmented+cache
	GetsPerSec float64 // ballot reads per second
	Speedup    float64 // vs the flat-disk column (the uncached database stand-in)
	HitRate    float64 // cache hit rate (cache column only)
}

// StoreAblationConfig tunes RunStoreAblation.
type StoreAblationConfig struct {
	// Ballots is the pool size (default 120000). The default cache budget
	// covers only a few percent of it — the pool deliberately outgrows the
	// cache, which is the regime the paper's Fig. 5a studies.
	Ballots int
	// Options is m, the per-part line count (default 2).
	Options int
	// Workers is the number of concurrent readers (default 16) — the
	// election-side equivalent of concurrent message handlers hitting the
	// store.
	Workers int
	// Touches is how many times each serial is read (default 3): the
	// responder's validation plus the ENDORSE and VOTE_P handlers all Get
	// the same ballot within a short window. The reads for one serial land
	// within ~Window tasks of each other, giving the cache exactly the
	// temporal locality the protocol produces — and nothing more, since the
	// serial stream itself never repeats.
	Touches int
	// Window is the shuffle window, in tasks, within which one serial's
	// touches are scattered (default 256).
	Window int
	// CacheBytes is the segmented+cache column's budget (default 8 MiB,
	// ~2-4% of the default pool).
	CacheBytes int64
	// SegmentBallots is the segment capacity (default 25000, so the default
	// pool spans several segments).
	SegmentBallots int
	// Dir hosts the store files (default: a temp dir).
	Dir string
	// Seed drives the workload shuffle (default 1).
	Seed uint64
}

func (c StoreAblationConfig) withDefaults() StoreAblationConfig {
	if c.Ballots <= 0 {
		c.Ballots = 120_000
	}
	if c.Options <= 0 {
		c.Options = 2
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Touches <= 0 {
		c.Touches = 3
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 8 << 20
	}
	if c.SegmentBallots <= 0 {
		c.SegmentBallots = 25_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fabricateStorePool synthesizes n dense-serial ballots with deterministic
// line payloads. The store layer never interprets them, so the ablation can
// build million-ballot pools without paying EA setup's cryptography.
func fabricateStorePool(n, m int) []*store.BallotData {
	out := make([]*store.BallotData, n)
	for i := range out {
		b := &store.BallotData{Serial: uint64(i) + 1} //nolint:gosec // positive
		for part := 0; part < 2; part++ {
			b.Lines[part] = make([]store.Line, m)
			for row := 0; row < m; row++ {
				l := &b.Lines[part][row]
				binary.BigEndian.PutUint64(l.Hash[:], b.Serial)
				l.Hash[8], l.Hash[9] = byte(part), byte(row)
				binary.BigEndian.PutUint64(l.Salt[:], b.Serial^0xFEED)
				binary.BigEndian.PutUint64(l.Share[:], b.Serial*131+uint64(row))
			}
		}
		out[i] = b
	}
	return out
}

// storeTasks builds the protocol-shaped access stream: every serial appears
// Touches times, each occurrence scattered within Window tasks of its
// siblings, the stream otherwise advancing through the pool once.
func storeTasks(cfg StoreAblationConfig) []uint64 {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5702e)) //nolint:gosec // workload gen
	tasks := make([]uint64, 0, cfg.Ballots*cfg.Touches)
	for s := uint64(1); s <= uint64(cfg.Ballots); s++ { //nolint:gosec // positive
		for t := 0; t < cfg.Touches; t++ {
			tasks = append(tasks, s)
		}
	}
	for i := range tasks {
		span := cfg.Window
		if rest := len(tasks) - i; rest < span {
			span = rest
		}
		j := i + rng.IntN(span)
		tasks[i], tasks[j] = tasks[j], tasks[i]
	}
	return tasks
}

// measureStorePoint runs the full task stream through st and returns
// gets/sec. Fixed work (not a fixed duration) keeps the columns directly
// comparable.
func measureStorePoint(st store.Store, tasks []uint64, workers int) (float64, error) {
	var next atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(tasks)) {
					return
				}
				bd, err := st.Get(tasks[i])
				if err != nil {
					errCh <- err
					return
				}
				if bd.Serial != tasks[i] {
					errCh <- fmt.Errorf("store returned serial %d for %d", bd.Serial, tasks[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	return float64(len(tasks)) / elapsed.Seconds(), nil
}

// RunStoreAblation measures the ballot-store read path across the four
// configurations of the paper's storage ablation — in-memory (database
// eliminated), one flat file (the uncached database stand-in), the
// segmented store, and the segmented store behind the admission-controlled
// LRU sized below the pool. Every column serves the identical
// protocol-shaped workload; the cache column's win over flat-disk is the
// effect the paper reports when fronting the database with a cache, and it
// is the ratio the CI baseline gates.
func RunStoreAblation(cfg StoreAblationConfig) ([]StorePoint, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ddemos-store-ablation")
		if err != nil {
			return nil, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
	}
	pool := fabricateStorePool(cfg.Ballots, cfg.Options)
	tasks := storeTasks(cfg)

	flatPath := filepath.Join(dir, "flat.store")
	segDir := filepath.Join(dir, "segments")
	if err := os.RemoveAll(segDir); err != nil {
		return nil, err
	}
	_ = os.Remove(flatPath)
	flat, err := store.CreateDisk(flatPath, pool)
	if err != nil {
		return nil, err
	}
	defer func() { _ = flat.Close() }()
	seg, err := store.CreateSegmented(segDir, pool, store.WriterOptions{SegmentBallots: cfg.SegmentBallots})
	if err != nil {
		return nil, err
	}
	defer func() { _ = seg.Close() }()
	// The cache column opens its own handles so the uncached segmented
	// column's reads do not warm or contend with it.
	segForCache, err := store.OpenSegmented(segDir)
	if err != nil {
		return nil, err
	}
	cached, err := store.NewCached(segForCache, store.CachedOptions{MaxBytes: cfg.CacheBytes})
	if err != nil {
		_ = segForCache.Close()
		return nil, err
	}
	defer func() { _ = cached.Close() }()

	type column struct {
		name string
		st   store.Store
	}
	cols := []column{
		{"mem", store.NewMem(pool)},
		{"flat-disk", flat},
		{"segmented", seg},
		{"segmented+cache", cached},
	}
	points := make([]StorePoint, 0, len(cols))
	var flatTput float64
	for _, col := range cols {
		tput, err := measureStorePoint(col.st, tasks, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("store ablation (%s): %w", col.name, err)
		}
		pt := StorePoint{Config: col.name, GetsPerSec: tput}
		if col.name == "flat-disk" {
			flatTput = tput
		}
		if col.name == "segmented+cache" {
			pt.HitRate = cached.Stats().HitRate()
		}
		points = append(points, pt)
	}
	for i := range points {
		if flatTput > 0 {
			points[i].Speedup = points[i].GetsPerSec / flatTput
		}
	}
	return points, nil
}

// PrintStoreAblation formats the ablation, one row per configuration.
func PrintStoreAblation(w io.Writer, points []StorePoint, cfg StoreAblationConfig) {
	cfg = cfg.withDefaults()
	poolBytes := int64(cfg.Ballots) * int64(2*cfg.Options) * 136 //nolint:gosec // line bytes
	fmt.Fprintf(w, "# Store ablation: ballot read path, %d-ballot pool (m=%d, ~%dMiB) vs %dMiB cache, %d touches/serial\n",
		cfg.Ballots, cfg.Options, poolBytes>>20, cfg.CacheBytes>>20, cfg.Touches)
	fmt.Fprintf(w, "%-18s %-16s %-10s %-10s\n", "config", "gets/sec", "vs-flat", "hit-rate")
	for _, p := range points {
		hit := "-"
		if p.Config == "segmented+cache" {
			hit = fmt.Sprintf("%.2f", p.HitRate)
		}
		fmt.Fprintf(w, "%-18s %-16.0f %-10.2f %-10s\n", p.Config, p.GetsPerSec, p.Speedup, hit)
	}
}

// RunStoreElectionAblation is the end-to-end flavour: the same LAN
// vote-collection workload over each store configuration, throughput in
// receipts per second. The pool again outgrows the cache.
func RunStoreElectionAblation(ballots, votes, clients, nv int, cacheBytes int64) ([]StorePoint, error) {
	configs := []struct {
		name string
		mut  func(*Config)
	}{
		{"mem", func(c *Config) {}},
		{"flat-disk", func(c *Config) { c.Disk = true }},
		{"segmented", func(c *Config) { c.Segmented = true }},
		{"segmented+cache", func(c *Config) { c.Segmented = true; c.StoreCacheBytes = cacheBytes }},
	}
	points := make([]StorePoint, 0, len(configs))
	var flatTput float64
	for _, cc := range configs {
		cfg := Config{
			Ballots: ballots, Options: 2, VC: nv,
			Clients: clients, Votes: votes,
			Seed: "store-ablation-" + cc.name,
		}
		cc.mut(&cfg)
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("store election ablation (%s): %w", cc.name, err)
		}
		pt := StorePoint{Config: cc.name, GetsPerSec: res.Throughput}
		if cc.name == "flat-disk" {
			flatTput = res.Throughput
		}
		points = append(points, pt)
	}
	for i := range points {
		if flatTput > 0 {
			points[i].Speedup = points[i].GetsPerSec / flatTput
		}
	}
	return points, nil
}

// PrintStoreElectionAblation formats the end-to-end sweep.
func PrintStoreElectionAblation(w io.Writer, points []StorePoint, ballots int, cacheBytes int64) {
	fmt.Fprintf(w, "# Store ablation (election): LAN vote collection vs store configuration (%d-ballot pool, %dMiB cache)\n",
		ballots, cacheBytes>>20)
	fmt.Fprintf(w, "%-18s %-16s %-10s\n", "config", "votes/sec", "vs-flat")
	for _, p := range points {
		fmt.Fprintf(w, "%-18s %-16.1f %-10.2f\n", p.Config, p.GetsPerSec, p.Speedup)
	}
}
