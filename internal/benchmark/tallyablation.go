package benchmark

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"ddemos/internal/auditor"
	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
)

// TallyPoint is one column of the publish-phase tally ablation: the same
// trustee posts combined (and the same board audited) under one pipeline
// configuration.
type TallyPoint struct {
	Config     string        // sequential | parallel | parallel+batched
	CombineSec float64       // wall time of the successful combine attempt
	AuditSec   float64       // wall time of a full auditor pass
	Speedup    float64       // sequential combine time / this combine time
	Attempts   int64         // combine attempts the node needed
	Fallbacks  int64         // batch chunks that fell back to per-element checks
	Result     *bb.Result    // published result (columns must agree)
	Audit      time.Duration // raw audit duration (AuditSec rounded source)
}

// TallyAblationConfig tunes RunTallyAblation.
type TallyAblationConfig struct {
	// Ballots is the pool size (default 10000). Every unvoted ballot still
	// costs two audited parts, so combine work scales with the pool, not
	// the turnout — exactly the regime the batch verifier targets.
	Ballots int
	// Votes is the turnout (default 500).
	Votes int
	// Trustees is Nt (default 3; ht defaults to ⌊Nt/2⌋+1).
	Trustees int
	// Workers bounds the parallel columns' worker pools (0 = GOMAXPROCS).
	Workers int
	// Seed makes the election deterministic (default "tally-ablation").
	Seed string
}

func (c TallyAblationConfig) withDefaults() TallyAblationConfig {
	if c.Ballots <= 0 {
		c.Ballots = 10_000
	}
	if c.Votes <= 0 {
		c.Votes = 500
	}
	if c.Votes > c.Ballots {
		c.Votes = c.Ballots
	}
	if c.Trustees <= 0 {
		c.Trustees = 3
	}
	if c.Seed == "" {
		c.Seed = "tally-ablation"
	}
	return c
}

// tallyFixture is the shared election state every ablation column replays:
// the agreed vote set with enough VC signatures, the master-key shares, and
// the honest trustee posts, all computed once.
type tallyFixture struct {
	data  *ea.ElectionData
	set   []vc.VotedBallot
	sigs  [][]byte
	posts []*bb.TrusteePost
}

// buildTallyFixture runs EA setup and synthesizes the publish-phase inputs
// directly — no VC nodes, no network. The vote set is built from the ballot
// secrets (serial i votes part i%2, option i%m), signed with the VC keys the
// manifest advertises, so BB ingress validation is exercised for real.
func buildTallyFixture(cfg TallyAblationConfig) (*tallyFixture, error) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "tally-ablation-" + cfg.Seed,
		Options:     []string{"alpha", "beta"},
		NumBallots:  cfg.Ballots,
		NumVC:       4,
		NumBB:       1,
		NumTrustees: cfg.Trustees,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	m := len(data.Manifest.Options)
	set := make([]vc.VotedBallot, 0, cfg.Votes)
	for i := 0; i < cfg.Votes; i++ {
		b := data.Ballots[i]
		part, opt := i%2, i%m
		set = append(set, vc.VotedBallot{
			Serial: b.Serial,
			Code:   b.Parts[part].Lines[opt].VoteCode,
		})
	}
	sort.Slice(set, func(i, j int) bool { return set[i].Serial < set[j].Serial })

	f := &tallyFixture{data: data, set: set}
	f.sigs = make([][]byte, data.Manifest.FaultyVC()+1)
	for vi := range f.sigs {
		f.sigs[vi] = vc.SignVoteSetWith(data.VC[vi].Private, data.Manifest.ElectionID, set)
	}

	// Compute the honest posts once against a scratch node; every column
	// replays the same bytes.
	scratch, err := f.bootNode()
	if err != nil {
		return nil, err
	}
	reader := bb.NewReader([]bb.API{scratch})
	ht := data.Manifest.TrusteeThreshold
	f.posts = make([]*bb.TrusteePost, ht)
	for i := range f.posts {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			return nil, err
		}
		tr.Workers = cfg.Workers
		if f.posts[i], err = tr.ComputePost(reader); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// bootNode starts a fresh BB node and feeds it the agreed vote set and
// enough master-key shares to publish the cast data.
func (f *tallyFixture) bootNode() (*bb.Node, error) {
	node, err := bb.NewNode(f.data.BB)
	if err != nil {
		return nil, err
	}
	for vi, s := range f.sigs {
		if err := node.SubmitVoteSet(vi, f.set, s); err != nil {
			return nil, fmt.Errorf("vote set from vc %d: %w", vi, err)
		}
	}
	for vi := 0; vi < f.data.Manifest.ReceiptThreshold(); vi++ {
		if err := node.SubmitMskShare(f.data.VC[vi].Msk); err != nil {
			return nil, fmt.Errorf("msk share %d: %w", vi, err)
		}
	}
	if _, err := node.Cast(); err != nil {
		return nil, fmt.Errorf("cast data not published: %w", err)
	}
	return node, nil
}

// runTallyColumn replays the fixture's posts against a fresh node under one
// pipeline configuration and measures the combine and a full audit.
func (f *tallyFixture) runTallyColumn(name string, workers int, noBatch bool) (TallyPoint, error) {
	node, err := f.bootNode()
	if err != nil {
		return TallyPoint{}, fmt.Errorf("tally ablation (%s): %w", name, err)
	}
	node.CombineWorkers = workers
	node.DisableBatchVerify = noBatch
	for _, p := range f.posts {
		if err := node.SubmitTrusteePost(p); err != nil {
			return TallyPoint{}, fmt.Errorf("tally ablation (%s): post %d: %w", name, p.Trustee, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := node.WaitResult(ctx)
	if err != nil {
		return TallyPoint{}, fmt.Errorf("tally ablation (%s): %w", name, err)
	}
	snap := node.Metrics()

	reader := bb.NewReader([]bb.API{node})
	auditStart := time.Now()
	rep, err := auditor.AuditWith(reader, nil, auditor.Options{Workers: workers, DisableBatchVerify: noBatch})
	auditTime := time.Since(auditStart)
	if err != nil {
		return TallyPoint{}, fmt.Errorf("tally ablation (%s): audit: %w", name, err)
	}
	if !rep.OK() {
		return TallyPoint{}, fmt.Errorf("tally ablation (%s): audit failed: %v", name, rep.Failures[0])
	}
	return TallyPoint{
		Config:     name,
		CombineSec: snap.CombineTime.Seconds(),
		AuditSec:   auditTime.Seconds(),
		Attempts:   snap.CombineAttempts,
		Fallbacks:  snap.BatchFallbacks,
		Result:     res,
		Audit:      auditTime,
	}, nil
}

// RunTallyAblation measures the publish-phase combine and the auditor over
// the same election under three pipeline configurations: sequential
// per-element verification (the seed's behaviour), parallel per-element
// verification, and the full parallel + batch-verified pipeline. The
// parallel+batched speedup over sequential is the `tally-speedup` ratio the
// CI baseline gates; on a single-CPU runner it comes almost entirely from
// the batched random-linear-combination check, so the gate is insensitive
// to core count.
func RunTallyAblation(cfg TallyAblationConfig) ([]TallyPoint, error) {
	cfg = cfg.withDefaults()
	f, err := buildTallyFixture(cfg)
	if err != nil {
		return nil, err
	}
	cols := []struct {
		name    string
		workers int
		noBatch bool
	}{
		{"sequential", 1, true},
		{"parallel", cfg.Workers, true},
		{"parallel+batched", cfg.Workers, false},
	}
	points := make([]TallyPoint, 0, len(cols))
	var seqCombine float64
	for _, col := range cols {
		pt, err := f.runTallyColumn(col.name, col.workers, col.noBatch)
		if err != nil {
			return nil, err
		}
		if col.name == "sequential" {
			seqCombine = pt.CombineSec
		}
		if pt.CombineSec > 0 && seqCombine > 0 {
			pt.Speedup = seqCombine / pt.CombineSec
		}
		points = append(points, pt)
	}
	// All columns verified the same perfectly-binding commitments, so their
	// results must agree bit-for-bit.
	for _, pt := range points[1:] {
		for j := range pt.Result.Counts {
			if pt.Result.Counts[j] != points[0].Result.Counts[j] {
				return nil, fmt.Errorf("tally ablation: %s counts diverge from sequential", pt.Config)
			}
		}
	}
	return points, nil
}

// PrintTallyAblation formats the ablation, one row per configuration.
func PrintTallyAblation(w io.Writer, points []TallyPoint, cfg TallyAblationConfig) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Tally ablation: publish-phase combine + audit, %d ballots / %d votes / %d trustees\n",
		cfg.Ballots, cfg.Votes, cfg.Trustees)
	fmt.Fprintf(w, "%-18s %-12s %-12s %-10s %-9s %-9s\n",
		"config", "combine-sec", "audit-sec", "speedup", "attempts", "fallbacks")
	for _, p := range points {
		fmt.Fprintf(w, "%-18s %-12.3f %-12.3f %-10.2f %-9d %-9d\n",
			p.Config, p.CombineSec, p.AuditSec, p.Speedup, p.Attempts, p.Fallbacks)
	}
}

// ByzantinePoint is one row of the Byzantine tally sweep: the combine cost
// of a publish phase with k garbage-share trustees submitting first.
type ByzantinePoint struct {
	Garbage    int     // garbage trustees whose posts arrive before any honest post
	CombineSec float64 // total combine time across all attempts
	Attempts   int64   // combine attempts until the result published
	Blames     int64   // trustees the blame protocol pinned
}

// RunByzantineTallySweep measures how combine cost grows with the number of
// garbage-share trustees. Garbage posts are submitted first so every
// combine attempt until blame completes is poisoned — the seed's
// exponential subset search made this the worst case; the blame protocol
// keeps it linear in k (one failed attempt plus per-row classification per
// round of blame).
func RunByzantineTallySweep(cfg TallyAblationConfig, maxGarbage int) ([]ByzantinePoint, error) {
	cfg = cfg.withDefaults()
	f, err := buildTallyFixture(cfg)
	if err != nil {
		return nil, err
	}
	nt := cfg.Trustees
	ht := f.data.Manifest.TrusteeThreshold
	if maxGarbage < 0 {
		maxGarbage = 0
	}
	if maxGarbage > nt-ht {
		maxGarbage = nt - ht
	}
	// Honest posts for every trustee, plus garbage twins for the first
	// maxGarbage positions (the only ones the sweep poisons).
	scratch, err := f.bootNode()
	if err != nil {
		return nil, err
	}
	scratchReader := bb.NewReader([]bb.API{scratch})
	honest := make([]*bb.TrusteePost, nt)
	garbage := make([]*bb.TrusteePost, nt)
	for i := 0; i < nt; i++ {
		tr, err := trustee.New(f.data.Trustees[i])
		if err != nil {
			return nil, err
		}
		tr.Workers = cfg.Workers
		if i < len(f.posts) && f.posts[i] != nil {
			honest[i] = f.posts[i]
		} else if honest[i], err = tr.ComputePost(scratchReader); err != nil {
			return nil, err
		}
		if i < maxGarbage {
			tr.SetByzantine(trustee.GarbageShares)
			if garbage[i], err = tr.ComputePost(scratchReader); err != nil {
				return nil, err
			}
		}
	}

	points := make([]ByzantinePoint, 0, maxGarbage+1)
	for k := 0; k <= maxGarbage; k++ {
		node, err := f.bootNode()
		if err != nil {
			return nil, err
		}
		node.CombineWorkers = cfg.Workers
		// k garbage posts first, then honest posts until a result is
		// possible: the node must blame its way out of k poisoned attempts.
		for i := 0; i < k; i++ {
			if err := node.SubmitTrusteePost(garbage[i]); err != nil {
				return nil, fmt.Errorf("byzantine sweep (k=%d): garbage post: %w", k, err)
			}
		}
		for i := k; i < nt; i++ {
			if err := node.SubmitTrusteePost(honest[i]); err != nil {
				return nil, fmt.Errorf("byzantine sweep (k=%d): honest post: %w", k, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		_, err = node.WaitResult(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("byzantine sweep (k=%d): %w", k, err)
		}
		snap := node.Metrics()
		points = append(points, ByzantinePoint{
			Garbage:    k,
			CombineSec: snap.CombineTime.Seconds(),
			Attempts:   snap.CombineAttempts,
			Blames:     snap.BadPostBlames,
		})
	}
	return points, nil
}

// PrintByzantineTallySweep formats the sweep, one row per garbage count.
func PrintByzantineTallySweep(w io.Writer, points []ByzantinePoint, cfg TallyAblationConfig) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Byzantine tally sweep: combine cost vs garbage trustees (%d ballots, Nt=%d)\n",
		cfg.Ballots, cfg.Trustees)
	fmt.Fprintf(w, "%-9s %-12s %-9s %-9s\n", "garbage", "combine-sec", "attempts", "blames")
	for _, p := range points {
		fmt.Fprintf(w, "%-9d %-12.3f %-9d %-9d\n", p.Garbage, p.CombineSec, p.Attempts, p.Blames)
	}
}
