// Package clock abstracts wall-clock access. The paper's only timing
// assumption outside liveness analysis is that VC nodes know the election
// start and end times (§III-C); making the clock injectable lets tests and
// the simulator drive election phases deterministically.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real reads the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Fake is a manually advanced clock for tests and simulations. The zero
// value starts at the zero time; use NewFake to start elsewhere.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a fake clock set to start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Set jumps the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}
