// Package clock abstracts wall-clock access. The paper's only timing
// assumption outside liveness analysis is that VC nodes know the election
// start and end times (§III-C); making the clock injectable lets tests and
// the simulator drive election phases deterministically.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Timer is a pending callback scheduled through a Timers clock. Stop
// reports whether it prevented the callback from firing.
type Timer interface {
	Stop() bool
}

// Timers is a Clock that can also schedule callbacks in its own time
// domain: real timers on Real, virtual-time events on the simulator's
// clock. Components with internal timeouts (Memnet delivery, Batcher flush
// windows, election phases) schedule through this interface so a simulation
// can own every timer in the system.
type Timers interface {
	Clock
	// AfterFunc calls fn once the clock has advanced by d.
	AfterFunc(d time.Duration, fn func()) Timer
}

// AfterFunc schedules fn on c when c supports timers, and on the real
// clock otherwise — the fallback for components handed a bare Clock.
func AfterFunc(c Clock, d time.Duration, fn func()) Timer {
	if t, ok := c.(Timers); ok {
		return t.AfterFunc(d, fn)
	}
	return realTimer{time.AfterFunc(d, fn)}
}

// Real reads the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Timers with a real time.Timer.
func (Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Fake is a manually advanced clock for tests and simulations. The zero
// value starts at the zero time; use NewFake to start elsewhere. Timers
// scheduled with AfterFunc fire synchronously inside the Advance or Set
// call that crosses their deadline.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFake returns a fake clock set to start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d, firing any timers it crosses.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.fireLocked()
}

// Set jumps the clock to t, firing any timers it crosses. Moving the clock
// backwards does not un-fire timers.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.now = t
	f.fireLocked()
}

// AfterFunc implements Timers: fn runs once Advance or Set moves the clock
// to or past now+d. A non-positive d fires fn immediately (synchronously).
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	if d <= 0 {
		fn()
		return (*fakeTimer)(nil)
	}
	f.mu.Lock()
	ft := &fakeTimer{f: f, at: f.now.Add(d), fn: fn}
	f.timers = append(f.timers, ft)
	f.mu.Unlock()
	return ft
}

// fireLocked pops and runs every due timer in deadline order. Callbacks run
// outside the lock (via unlock) so they may schedule new timers; the lock is
// NOT reacquired, so callers must treat fireLocked as consuming the lock.
func (f *Fake) fireLocked() {
	var due []*fakeTimer
	keep := f.timers[:0]
	for _, ft := range f.timers {
		if ft.stopped {
			continue // drop: a stopped timer must not accumulate
		}
		if !ft.at.After(f.now) {
			ft.fired = true
			due = append(due, ft)
		} else {
			keep = append(keep, ft)
		}
	}
	for i := len(keep); i < len(f.timers); i++ {
		f.timers[i] = nil
	}
	f.timers = keep
	f.mu.Unlock()
	// One Advance may cross several deadlines; fire them as virtual time
	// would have, not in registration order.
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, ft := range due {
		ft.fn()
	}
}

type fakeTimer struct {
	f       *Fake
	at      time.Time
	fn      func()
	stopped bool
	fired   bool
}

// Stop implements Timer. The timer is unlinked immediately, so stopping
// timers on a clock nobody advances does not accumulate dead entries.
func (ft *fakeTimer) Stop() bool {
	if ft == nil {
		return false // already fired inline by a non-positive AfterFunc
	}
	ft.f.mu.Lock()
	defer ft.f.mu.Unlock()
	if ft.fired || ft.stopped {
		return false
	}
	ft.stopped = true
	for i, other := range ft.f.timers {
		if other == ft {
			last := len(ft.f.timers) - 1
			ft.f.timers[i] = ft.f.timers[last]
			ft.f.timers[last] = nil
			ft.f.timers = ft.f.timers[:last]
			break
		}
	}
	return true
}
