package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	var c Real
	t1 := c.Now()
	t2 := c.Now()
	if t2.Before(t1) {
		t.Fatal("real clock went backwards")
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatal("fake clock not at start time")
	}
	f.Advance(time.Hour)
	if !f.Now().Equal(start.Add(time.Hour)) {
		t.Fatal("Advance did not move the clock")
	}
	jump := start.Add(48 * time.Hour)
	f.Set(jump)
	if !f.Now().Equal(jump) {
		t.Fatal("Set did not jump the clock")
	}
}

func TestFakeClockConcurrentAccess(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			f.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Now()
	}
	<-done
	if f.Now().Sub(time.Unix(0, 0)) != time.Second {
		t.Fatal("concurrent advances lost updates")
	}
}
