package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	var c Real
	t1 := c.Now()
	t2 := c.Now()
	if t2.Before(t1) {
		t.Fatal("real clock went backwards")
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatal("fake clock not at start time")
	}
	f.Advance(time.Hour)
	if !f.Now().Equal(start.Add(time.Hour)) {
		t.Fatal("Advance did not move the clock")
	}
	jump := start.Add(48 * time.Hour)
	f.Set(jump)
	if !f.Now().Equal(jump) {
		t.Fatal("Set did not jump the clock")
	}
}

func TestFakeTimers(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	f := NewFake(start)
	var fired []string
	f.AfterFunc(time.Minute, func() { fired = append(fired, "1m") })
	f.AfterFunc(time.Hour, func() { fired = append(fired, "1h") })
	stopme := f.AfterFunc(30*time.Minute, func() { fired = append(fired, "30m") })

	f.Advance(time.Second)
	if len(fired) != 0 {
		t.Fatalf("timers fired early: %v", fired)
	}
	if !stopme.Stop() {
		t.Fatal("Stop on a pending timer must report true")
	}
	if stopme.Stop() {
		t.Fatal("second Stop must report false")
	}
	f.Advance(time.Minute)
	if len(fired) != 1 || fired[0] != "1m" {
		t.Fatalf("after 1m: fired = %v", fired)
	}
	f.Set(start.Add(2 * time.Hour))
	if len(fired) != 2 || fired[1] != "1h" {
		t.Fatalf("after jump: fired = %v (stopped timer must not fire)", fired)
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	// One Advance crossing several deadlines must fire them as virtual
	// time would have, regardless of registration order.
	f := NewFake(time.Unix(0, 0))
	var order []string
	f.AfterFunc(2*time.Minute, func() { order = append(order, "late") })
	f.AfterFunc(time.Minute, func() { order = append(order, "early") })
	f.Advance(time.Hour)
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("fired in order %v, want [early late]", order)
	}
}

func TestFakeTimerImmediateAndReschedule(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	ran := false
	tm := f.AfterFunc(0, func() { ran = true })
	if !ran {
		t.Fatal("non-positive AfterFunc must fire inline")
	}
	if tm.Stop() {
		t.Fatal("Stop after inline fire must report false")
	}
	// A callback may schedule a follow-up timer (periodic probes do this).
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 3 {
			f.AfterFunc(time.Second, hop)
		}
	}
	f.AfterFunc(time.Second, hop)
	for i := 0; i < 5; i++ {
		f.Advance(time.Second)
	}
	if hops != 3 {
		t.Fatalf("chained timer ran %d times, want 3", hops)
	}
}

func TestAfterFuncFallsBackToRealClock(t *testing.T) {
	// A bare Clock without timer support schedules on the real clock.
	done := make(chan struct{})
	tm := AfterFunc(bareClock{}, time.Microsecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fallback real timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire must report false")
	}
	// And a Timers implementation is used directly.
	f := NewFake(time.Unix(0, 0))
	ran := false
	AfterFunc(f, time.Second, func() { ran = true })
	f.Advance(2 * time.Second)
	if !ran {
		t.Fatal("AfterFunc did not route to the fake clock")
	}
}

type bareClock struct{}

func (bareClock) Now() time.Time { return time.Now() }

func TestFakeClockConcurrentAccess(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			f.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Now()
	}
	<-done
	if f.Now().Sub(time.Unix(0, 0)) != time.Second {
		t.Fatal("concurrent advances lost updates")
	}
}
