package consensus

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ddemos/internal/wire"
)

// Batch runs many binary-consensus instances concurrently, aggregating all
// outgoing per-instance messages into batched wire.Consensus frames — the
// paper's "binary consensus operating in batches of arbitrary size" (§V).
//
// Usage: create with NewBatch, feed inbound messages via Handle, start with
// Start, and await Results. The out callback is invoked (serially per flush)
// with batched messages to broadcast to all peers; the caller owns delivery.
type Batch struct {
	n, f  int
	self  uint16
	count uint32
	coin  Coin
	out   func(*wire.Consensus)

	mu       sync.Mutex
	started  bool
	inst     []*abaInstance
	pending  int
	results  []byte
	done     chan struct{}
	flushBuf map[groupKey][]uint32
}

type groupKey struct {
	step  uint8
	round uint16
	value uint8
}

// NewBatch creates a driver for `count` instances among n nodes tolerating f
// Byzantine faults. self is this node's index in [0, n). The out callback
// receives batched messages to broadcast to the other n-1 nodes; it must not
// call back into the Batch.
func NewBatch(n, f int, self uint16, count uint32, coin Coin, out func(*wire.Consensus)) (*Batch, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("consensus: n=%d does not tolerate f=%d (need n > 3f)", n, f)
	}
	if int(self) >= n {
		return nil, fmt.Errorf("consensus: self=%d out of range", self)
	}
	if n > 64 {
		return nil, errors.New("consensus: at most 64 nodes supported (bitmask sender sets)")
	}
	b := &Batch{
		n: n, f: f, self: self, count: count,
		coin:     coin,
		out:      out,
		inst:     make([]*abaInstance, count),
		pending:  int(count),
		results:  make([]byte, count),
		done:     make(chan struct{}),
		flushBuf: make(map[groupKey][]uint32),
	}
	for i := range b.inst {
		b.inst[i] = newABAInstance()
	}
	if count == 0 {
		close(b.done)
	}
	return b, nil
}

// Start begins all instances with the given inputs (one 0/1 byte per
// instance).
func (b *Batch) Start(inputs []byte) error {
	if uint32(len(inputs)) != b.count {
		return fmt.Errorf("consensus: %d inputs for %d instances", len(inputs), b.count)
	}
	for i, v := range inputs {
		if v > 1 {
			return fmt.Errorf("consensus: input %d is not binary", i)
		}
	}
	b.mu.Lock()
	if b.started {
		b.mu.Unlock()
		return errors.New("consensus: already started")
	}
	b.started = true
	for i, v := range inputs {
		inst := b.inst[i]
		inst.est = v
		b.startRound(uint32(i), inst, 1) //nolint:gosec // i < count
	}
	msgs := b.flushLocked()
	b.mu.Unlock()
	b.emit(msgs)
	return nil
}

// Handle processes a batched consensus message from peer `from`.
func (b *Batch) Handle(from uint16, msg *wire.Consensus) {
	if int(from) >= b.n {
		return
	}
	b.mu.Lock()
	if !b.started {
		// Batches are created before any message can arrive (the caller
		// buffers until Start); be tolerant anyway.
		b.mu.Unlock()
		return
	}
	for gi := range msg.Groups {
		g := &msg.Groups[gi]
		if g.Value > 1 {
			continue
		}
		for _, idx := range g.Instances {
			if idx >= b.count {
				continue
			}
			b.deliver(from, idx, g.Step, g.Round, g.Value)
		}
	}
	msgs := b.flushLocked()
	b.mu.Unlock()
	b.emit(msgs)
}

// Results blocks until every instance has decided, returning the decision
// vector.
func (b *Batch) Results(ctx context.Context) ([]byte, error) {
	select {
	case <-b.done:
		out := make([]byte, len(b.results))
		copy(out, b.results)
		return out, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("consensus: awaiting decisions: %w", ctx.Err())
	}
}

// Decided returns how many instances have decided so far.
func (b *Batch) Decided() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.count) - b.pending
}

// --- internal -------------------------------------------------------------

// queue an outgoing per-instance protocol message for the next flush.
func (b *Batch) send(idx uint32, step uint8, round uint16, value byte) {
	k := groupKey{step: step, round: round, value: value}
	b.flushBuf[k] = append(b.flushBuf[k], idx)
	// Self-delivery: a node is one of the n parties and must process its own
	// broadcasts.
	b.deliver(b.self, idx, step, round, value)
}

func (b *Batch) flushLocked() []*wire.Consensus {
	if len(b.flushBuf) == 0 {
		return nil
	}
	msg := &wire.Consensus{Sender: b.self, Groups: make([]wire.ConsensusGroup, 0, len(b.flushBuf))}
	for k, idxs := range b.flushBuf {
		msg.Groups = append(msg.Groups, wire.ConsensusGroup{
			Step: k.step, Round: k.round, Value: k.value, Instances: idxs,
		})
	}
	b.flushBuf = make(map[groupKey][]uint32)
	return []*wire.Consensus{msg}
}

func (b *Batch) emit(msgs []*wire.Consensus) {
	for _, m := range msgs {
		b.out(m)
	}
}

func (b *Batch) deliver(from uint16, idx uint32, step uint8, round uint16, value byte) {
	inst := b.inst[idx]
	if inst.halted {
		return
	}
	switch step {
	case wire.StepBVal:
		b.onBVal(from, idx, inst, round, value)
	case wire.StepAux:
		b.onAux(from, idx, inst, round, value)
	case wire.StepDecide:
		b.onDecide(from, idx, inst, value)
	}
}

func (b *Batch) startRound(idx uint32, inst *abaInstance, round uint16) {
	inst.round = round
	r := inst.getRound(round)
	if !r.bvalSent[inst.est] {
		r.bvalSent[inst.est] = true
		b.send(idx, wire.StepBVal, round, inst.est)
	}
	// Messages for this round may have arrived while we were in an earlier
	// round; thresholds could already be satisfied.
	b.progressRound(idx, inst, round)
}

func (b *Batch) onBVal(from uint16, idx uint32, inst *abaInstance, round uint16, v byte) {
	if round == 0 || round > inst.round+maxRoundAhead {
		return
	}
	r := inst.getRound(round)
	bit := uint64(1) << from
	if r.bvalRecv[v]&bit != 0 {
		return
	}
	r.bvalRecv[v] |= bit
	cnt := popcount(r.bvalRecv[v])
	// Relay after f+1 distinct BVALs (so honest values propagate), add to
	// bin_values after 2f+1.
	if cnt >= b.f+1 && !r.bvalSent[v] {
		r.bvalSent[v] = true
		b.send(idx, wire.StepBVal, round, v)
	}
	if cnt >= 2*b.f+1 && !r.binValues[v] {
		r.binValues[v] = true
		b.progressRound(idx, inst, round)
	}
}

func (b *Batch) onAux(from uint16, idx uint32, inst *abaInstance, round uint16, v byte) {
	if round == 0 || round > inst.round+maxRoundAhead {
		return
	}
	r := inst.getRound(round)
	bit := uint64(1) << from
	if r.auxFrom&bit != 0 {
		return // one AUX per sender per round
	}
	r.auxFrom |= bit
	r.auxRecv[v] |= bit
	b.progressRound(idx, inst, round)
}

// progressRound checks whether the current round of an instance can advance:
// bin_values non-empty triggers the AUX broadcast; n-f AUXes with values
// covered by bin_values complete the round.
func (b *Batch) progressRound(idx uint32, inst *abaInstance, round uint16) {
	if inst.halted || round != inst.round {
		return
	}
	r := inst.getRound(round)
	if !r.auxSent {
		w := byte(255)
		switch {
		case r.binValues[inst.est]:
			w = inst.est // prefer own estimate when certified
		case r.binValues[0]:
			w = 0
		case r.binValues[1]:
			w = 1
		}
		if w != 255 {
			r.auxSent = true
			r.auxValue = w
			b.send(idx, wire.StepAux, round, w)
		}
	}
	if !r.auxSent {
		return
	}
	// Count AUX messages whose value is in bin_values.
	var covered uint64
	vals := [2]bool{}
	for v := byte(0); v <= 1; v++ {
		if r.binValues[v] && r.auxRecv[v] != 0 {
			covered |= r.auxRecv[v]
			vals[v] = true
		}
	}
	if popcount(covered) < b.n-b.f {
		return
	}
	// Round completes.
	c := b.coin.Flip(idx, round)
	switch {
	case vals[0] != vals[1]: // single value v
		var v byte
		if vals[1] {
			v = 1
		}
		inst.est = v
		if v == c && !inst.decided {
			b.decide(idx, inst, v)
		}
	default: // both values seen
		inst.est = c
	}
	if inst.halted {
		return
	}
	// Free completed-round state for decided-in-round-1 instances to bound
	// memory across hundreds of thousands of instances.
	delete(inst.rounds, round-1)
	b.startRound(idx, inst, round+1)
}

func (b *Batch) decide(idx uint32, inst *abaInstance, v byte) {
	if inst.decided {
		return
	}
	inst.decided = true
	inst.value = v
	b.results[idx] = v
	b.pending--
	if !inst.decideSent {
		inst.decideSent = true
		b.send(idx, wire.StepDecide, 0, v)
	}
	if b.pending == 0 {
		close(b.done)
	}
}

func (b *Batch) onDecide(from uint16, idx uint32, inst *abaInstance, v byte) {
	bit := uint64(1) << from
	if inst.decideFrom&bit != 0 {
		return
	}
	inst.decideFrom |= bit
	inst.decideRecv[v] |= bit
	cnt := popcount(inst.decideRecv[v])
	// f+1 DECIDEs contain one from an honest decider: safe to adopt.
	if cnt >= b.f+1 && !inst.decided {
		b.decide(idx, inst, v)
	}
	// 2f+1 DECIDEs mean every honest node will eventually decide without our
	// help: halt the instance.
	if cnt >= 2*b.f+1 {
		inst.halted = true
		inst.rounds = nil
	}
}

// maxRoundAhead bounds how far ahead of our current round we accept
// messages, limiting memory a Byzantine flooder can consume.
const maxRoundAhead = 8

type abaInstance struct {
	round      uint16
	est        byte
	decided    bool
	halted     bool
	value      byte
	decideSent bool
	decideFrom uint64
	decideRecv [2]uint64
	rounds     map[uint16]*roundState
}

type roundState struct {
	bvalRecv  [2]uint64 // sender bitmasks per value
	bvalSent  [2]bool
	binValues [2]bool
	auxFrom   uint64
	auxRecv   [2]uint64
	auxSent   bool
	auxValue  byte
}

func newABAInstance() *abaInstance {
	return &abaInstance{rounds: make(map[uint16]*roundState, 2)}
}

func (i *abaInstance) getRound(r uint16) *roundState {
	if i.rounds == nil {
		i.rounds = make(map[uint16]*roundState, 2)
	}
	rs, ok := i.rounds[r]
	if !ok {
		rs = &roundState{}
		i.rounds[r] = rs
	}
	return rs
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
