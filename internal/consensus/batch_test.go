package consensus

import (
	"context"
	"sync"
	"testing"
	"time"

	"ddemos/internal/wire"
)

// harness wires n Batch drivers together with a direct in-memory mesh,
// optionally mutating or suppressing traffic per sender (Byzantine/crash
// simulation).
type harness struct {
	n, f    int
	batches []*Batch
	mu      sync.Mutex
	queue   []queued
	// silent suppresses all outbound traffic from a node (crash fault).
	silent map[uint16]bool
	// corrupt flips the value of every outbound group from a node.
	corrupt map[uint16]bool
}

type queued struct {
	from uint16
	to   uint16
	msg  *wire.Consensus
}

func newHarness(t *testing.T, n, f int, count uint32, coin Coin) *harness {
	t.Helper()
	h := &harness{n: n, f: f, silent: map[uint16]bool{}, corrupt: map[uint16]bool{}}
	h.batches = make([]*Batch, n)
	for i := 0; i < n; i++ {
		self := uint16(i)
		b, err := NewBatch(n, f, self, count, coin, func(m *wire.Consensus) {
			h.broadcast(self, m)
		})
		if err != nil {
			t.Fatal(err)
		}
		h.batches[i] = b
	}
	return h
}

func (h *harness) broadcast(from uint16, m *wire.Consensus) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.silent[from] {
		return
	}
	msg := m
	if h.corrupt[from] {
		msg = &wire.Consensus{Sender: m.Sender, Groups: make([]wire.ConsensusGroup, len(m.Groups))}
		for i, g := range m.Groups {
			g.Value = 1 - g.Value
			msg.Groups[i] = g
		}
	}
	for to := 0; to < h.n; to++ {
		if uint16(to) == from {
			continue
		}
		h.queue = append(h.queue, queued{from: from, to: uint16(to), msg: msg})
	}
}

// pump delivers queued messages until quiescence.
func (h *harness) pump() {
	for {
		h.mu.Lock()
		if len(h.queue) == 0 {
			h.mu.Unlock()
			return
		}
		q := h.queue[0]
		h.queue = h.queue[1:]
		h.mu.Unlock()
		h.batches[q.to].Handle(q.from, q.msg)
	}
}

func (h *harness) start(t *testing.T, inputs [][]byte) {
	t.Helper()
	for i, b := range h.batches {
		if h.silent[uint16(i)] {
			continue
		}
		if err := b.Start(inputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	h.pump()
}

func (h *harness) results(t *testing.T, i int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := h.batches[i].Results(ctx)
	if err != nil {
		t.Fatalf("node %d: %v", i, err)
	}
	return res
}

func uniform(n int, count int, v byte) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		row := make([]byte, count)
		for j := range row {
			row[j] = v
		}
		out[i] = row
	}
	return out
}

func TestValidityAllZero(t *testing.T) {
	h := newHarness(t, 4, 1, 10, NewHashCoin([]byte("t")))
	h.start(t, uniform(4, 10, 0))
	for i := 0; i < 4; i++ {
		for inst, v := range h.results(t, i) {
			if v != 0 {
				t.Fatalf("node %d instance %d decided %d, want 0", i, inst, v)
			}
		}
	}
}

func TestValidityAllOne(t *testing.T) {
	h := newHarness(t, 4, 1, 10, NewHashCoin([]byte("t")))
	h.start(t, uniform(4, 10, 1))
	for i := 0; i < 4; i++ {
		for inst, v := range h.results(t, i) {
			if v != 1 {
				t.Fatalf("node %d instance %d decided %d, want 1", i, inst, v)
			}
		}
	}
}

func TestAgreementMixedInputs(t *testing.T) {
	// Node i inputs i%2 per instance; all nodes must agree on something.
	const n, count = 4, 32
	h := newHarness(t, n, 1, count, NewHashCoin([]byte("mixed")))
	inputs := make([][]byte, n)
	for i := range inputs {
		row := make([]byte, count)
		for j := range row {
			row[j] = byte((i + j) % 2)
		}
		inputs[i] = row
	}
	h.start(t, inputs)
	ref := h.results(t, 0)
	for i := 1; i < n; i++ {
		res := h.results(t, i)
		for j := range res {
			if res[j] != ref[j] {
				t.Fatalf("disagreement instance %d: node0=%d node%d=%d", j, ref[j], i, res[j])
			}
		}
	}
}

func TestCrashFaultTolerance(t *testing.T) {
	// One silent node out of 4 (f=1): the rest must still decide.
	const n, count = 4, 16
	h := newHarness(t, n, 1, count, NewHashCoin([]byte("crash")))
	h.silent[3] = true
	inputs := uniform(n, count, 1)
	h.start(t, inputs)
	for i := 0; i < 3; i++ {
		for inst, v := range h.results(t, i) {
			if v != 1 {
				t.Fatalf("node %d instance %d decided %d, want 1", i, inst, v)
			}
		}
	}
}

func TestByzantineValueFlipper(t *testing.T) {
	// A node that flips every value it sends must not break agreement or
	// validity among the honest nodes.
	const n, count = 4, 16
	h := newHarness(t, n, 1, count, NewHashCoin([]byte("byz")))
	h.corrupt[2] = true
	h.start(t, uniform(n, count, 1))
	for _, i := range []int{0, 1, 3} {
		for inst, v := range h.results(t, i) {
			if v != 1 {
				t.Fatalf("honest node %d instance %d decided %d, want 1 (validity)", i, inst, v)
			}
		}
	}
}

func TestSevenNodesTwoCrashes(t *testing.T) {
	const n, f, count = 7, 2, 8
	h := newHarness(t, n, f, count, NewHashCoin([]byte("seven")))
	h.silent[5] = true
	h.silent[6] = true
	h.start(t, uniform(n, count, 0))
	for i := 0; i < 5; i++ {
		for inst, v := range h.results(t, i) {
			if v != 0 {
				t.Fatalf("node %d instance %d decided %d", i, inst, v)
			}
		}
	}
}

func TestMixedInputsWithByzantine(t *testing.T) {
	const n, f, count = 7, 2, 16
	h := newHarness(t, n, f, count, NewHashCoin([]byte("mixed-byz")))
	h.corrupt[6] = true
	inputs := make([][]byte, n)
	for i := range inputs {
		row := make([]byte, count)
		for j := range row {
			row[j] = byte((i * j) % 2)
		}
		inputs[i] = row
	}
	h.start(t, inputs)
	ref := h.results(t, 0)
	for _, i := range []int{1, 2, 3, 4, 5} {
		res := h.results(t, i)
		for j := range res {
			if res[j] != ref[j] {
				t.Fatalf("disagreement at instance %d between honest nodes", j)
			}
		}
	}
}

func TestLocalCoinTerminates(t *testing.T) {
	const n, count = 4, 8
	h := newHarness(t, n, 1, count, LocalCoin{})
	inputs := make([][]byte, n)
	for i := range inputs {
		row := make([]byte, count)
		for j := range row {
			row[j] = byte((i + j) % 2)
		}
		inputs[i] = row
	}
	h.start(t, inputs)
	// pump until everyone decides (local coin may need several rounds; the
	// harness pump is synchronous so one call suffices for quiescence, but
	// messages triggered by decisions may need further pumping).
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, b := range h.batches {
			if b.Decided() != count {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		h.pump()
	}
	ref := h.results(t, 0)
	for i := 1; i < n; i++ {
		res := h.results(t, i)
		for j := range res {
			if res[j] != ref[j] {
				t.Fatalf("disagreement instance %d", j)
			}
		}
	}
}

func TestLargeBatch(t *testing.T) {
	// 20k instances, unanimous inputs: exercises the batching path the vote
	// set consensus uses for big elections.
	const n, count = 4, 20000
	h := newHarness(t, n, 1, count, NewHashCoin([]byte("large")))
	h.start(t, uniform(n, count, 1))
	for i := 0; i < n; i++ {
		res := h.results(t, i)
		for inst, v := range res {
			if v != 1 {
				t.Fatalf("node %d instance %d decided %d", i, inst, v)
			}
		}
	}
}

func TestZeroInstances(t *testing.T) {
	b, err := NewBatch(4, 1, 0, 0, LocalCoin{}, func(*wire.Consensus) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	res, err := b.Results(ctx)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := NewBatch(3, 1, 0, 1, LocalCoin{}, func(*wire.Consensus) {}); err == nil {
		t.Fatal("n=3f must be rejected")
	}
	if _, err := NewBatch(4, 1, 9, 1, LocalCoin{}, func(*wire.Consensus) {}); err == nil {
		t.Fatal("self out of range must be rejected")
	}
	if _, err := NewBatch(100, 33, 0, 1, LocalCoin{}, func(*wire.Consensus) {}); err == nil {
		t.Fatal("n>64 must be rejected")
	}
}

func TestStartValidation(t *testing.T) {
	b, err := NewBatch(4, 1, 0, 2, LocalCoin{}, func(*wire.Consensus) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start([]byte{1}); err == nil {
		t.Fatal("wrong input length must fail")
	}
	if err := b.Start([]byte{0, 2}); err == nil {
		t.Fatal("non-binary input must fail")
	}
	if err := b.Start([]byte{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start([]byte{0, 1}); err == nil {
		t.Fatal("double start must fail")
	}
}

func TestHandleIgnoresGarbage(t *testing.T) {
	b, err := NewBatch(4, 1, 0, 4, NewHashCoin([]byte("g")), func(*wire.Consensus) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range sender, instance, value, and absurd round: all ignored.
	b.Handle(99, &wire.Consensus{Sender: 99, Groups: []wire.ConsensusGroup{{Step: wire.StepBVal, Round: 1, Value: 0, Instances: []uint32{0}}}})
	b.Handle(1, &wire.Consensus{Sender: 1, Groups: []wire.ConsensusGroup{
		{Step: wire.StepBVal, Round: 1, Value: 7, Instances: []uint32{0}},
		{Step: wire.StepBVal, Round: 1, Value: 0, Instances: []uint32{4000}},
		{Step: wire.StepBVal, Round: 9999, Value: 0, Instances: []uint32{0}},
		{Step: 77, Round: 1, Value: 0, Instances: []uint32{0}},
	}})
	if b.Decided() != 0 {
		t.Fatal("garbage must not cause decisions")
	}
}

func TestHashCoinDeterministic(t *testing.T) {
	c1 := NewHashCoin([]byte("seed"))
	c2 := NewHashCoin([]byte("seed"))
	for i := uint32(0); i < 100; i++ {
		if c1.Flip(i, 1) != c2.Flip(i, 1) {
			t.Fatal("hash coin must be deterministic")
		}
		if v := c1.Flip(i, 1); v > 1 {
			t.Fatal("coin must be binary")
		}
	}
	// Roughly balanced.
	ones := 0
	for i := uint32(0); i < 1000; i++ {
		ones += int(c1.Flip(i, 2))
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("coin is biased: %d/1000 ones", ones)
	}
}

func TestLocalCoinBinary(t *testing.T) {
	var c LocalCoin
	for i := 0; i < 100; i++ {
		if v := c.Flip(0, 0); v > 1 {
			t.Fatal("local coin must be binary")
		}
	}
}

func BenchmarkBatchConsensusUnanimous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := &harness{n: 4, f: 1, silent: map[uint16]bool{}, corrupt: map[uint16]bool{}}
		h.batches = make([]*Batch, 4)
		coin := NewHashCoin([]byte("bench"))
		for j := 0; j < 4; j++ {
			self := uint16(j)
			batch, err := NewBatch(4, 1, self, 1000, coin, func(m *wire.Consensus) {
				h.broadcast(self, m)
			})
			if err != nil {
				b.Fatal(err)
			}
			h.batches[j] = batch
		}
		inputs := uniform(4, 1000, 1)
		for j, bb := range h.batches {
			if err := bb.Start(inputs[j]); err != nil {
				b.Fatal(err)
			}
		}
		h.pump()
		for _, bb := range h.batches {
			if bb.Decided() != 1000 {
				b.Fatal("not all decided")
			}
		}
	}
}
