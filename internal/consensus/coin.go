// Package consensus implements asynchronous binary Byzantine consensus for
// f < n/3, plus the batched multi-instance driver the Vote Set Consensus
// protocol runs over all ballots at election end (§III-E, §V).
//
// The single-instance protocol is the BV-broadcast consensus of
// Mostéfaoui–Moumen–Raynal (PODC'14): signature-free, optimal resilience,
// terminating with probability 1 given a common coin. It provides exactly
// the binary-consensus contract the paper's vote-set-consensus correctness
// argument relies on (agreement, validity — unanimous honest input decides
// that input — and termination). See DESIGN.md for why this stands in for
// Bracha's protocol from the paper's prototype.
//
// Each instance additionally runs a Bracha-style termination gadget:
// deciders broadcast DECIDE; f+1 matching DECIDEs let a node decide without
// finishing its round, and 2f+1 let it halt, so every instance shuts down
// cleanly instead of looping forever.
package consensus

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
)

// Coin supplies the per-(instance, round) coin flips that randomize
// consensus. Implementations must return 0 or 1.
type Coin interface {
	Flip(instance uint32, round uint16) byte
}

// HashCoin is a deterministic coin shared by all nodes that derive it from
// the same seed (e.g. the election ID). It behaves as a common coin:
// all nodes see the same flips, which gives constant expected rounds. Its
// flips are predictable by the adversary, so it trades the theoretical
// worst-case adversarial schedule for speed — acceptable here because the
// network schedule in both the simulator and a deployment does not consult
// the coin. LocalCoin is the fallback with no predictability.
type HashCoin struct {
	seed [32]byte
}

// NewHashCoin derives a coin from seed bytes.
func NewHashCoin(seed []byte) *HashCoin {
	c := &HashCoin{}
	c.seed = sha256.Sum256(append([]byte("ddemos/coin/"), seed...))
	return c
}

// Flip implements Coin.
func (c *HashCoin) Flip(instance uint32, round uint16) byte {
	var buf [38]byte
	copy(buf[:32], c.seed[:])
	binary.BigEndian.PutUint32(buf[32:36], instance)
	binary.BigEndian.PutUint16(buf[36:], round)
	sum := sha256.Sum256(buf[:])
	return sum[0] & 1
}

// LocalCoin flips an independent uniform coin per call (Ben-Or style).
// Termination is then probabilistic with expected exponential rounds under
// a worst-case adversary, but fast in practice when honest inputs dominate.
type LocalCoin struct{}

// Flip implements Coin.
func (LocalCoin) Flip(uint32, uint16) byte {
	var b [1]byte
	_, _ = rand.Read(b[:])
	return b[0] & 1
}
