package consensus

import (
	"context"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"ddemos/internal/wire"
)

// shuffledHarness delivers messages in adversarially shuffled order: the
// queue is drained from random positions, modelling an asynchronous network
// scheduler. Agreement/validity must hold under every schedule.
type shuffledHarness struct {
	n, f    int
	batches []*Batch
	mu      sync.Mutex
	queue   []queued
	rng     *rand.Rand
}

func newShuffledHarness(t *testing.T, n, f int, count uint32, coin Coin, seed uint64) *shuffledHarness {
	t.Helper()
	h := &shuffledHarness{n: n, f: f, rng: rand.New(rand.NewPCG(seed, 77))} //nolint:gosec // test
	h.batches = make([]*Batch, n)
	for i := 0; i < n; i++ {
		self := uint16(i) //nolint:gosec // small
		b, err := NewBatch(n, f, self, count, coin, func(m *wire.Consensus) {
			h.mu.Lock()
			defer h.mu.Unlock()
			for to := 0; to < h.n; to++ {
				if uint16(to) == self { //nolint:gosec // small
					continue
				}
				h.queue = append(h.queue, queued{from: self, to: uint16(to), msg: m}) //nolint:gosec // small
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		h.batches[i] = b
	}
	return h
}

// pump delivers queued messages in random order until quiescence.
func (h *shuffledHarness) pump() {
	for {
		h.mu.Lock()
		if len(h.queue) == 0 {
			h.mu.Unlock()
			return
		}
		i := h.rng.IntN(len(h.queue))
		q := h.queue[i]
		h.queue[i] = h.queue[len(h.queue)-1]
		h.queue = h.queue[:len(h.queue)-1]
		h.mu.Unlock()
		h.batches[q.to].Handle(q.from, q.msg)
	}
}

func TestPropertyAgreementUnderRandomSchedules(t *testing.T) {
	// 20 random schedules × random inputs: all honest nodes must agree on
	// every instance, and unanimous instances must decide the common input.
	const n, f, count = 4, 1, 12
	for seed := uint64(0); seed < 20; seed++ {
		coin := NewHashCoin([]byte{byte(seed)})
		h := newShuffledHarness(t, n, f, count, coin, seed)
		inRng := rand.New(rand.NewPCG(seed, 99)) //nolint:gosec // test
		inputs := make([][]byte, n)
		for i := range inputs {
			row := make([]byte, count)
			for j := range row {
				row[j] = byte(inRng.IntN(2))
			}
			inputs[i] = row
		}
		for i, b := range h.batches {
			if err := b.Start(inputs[i]); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			h.pump()
			done := true
			for _, b := range h.batches {
				if b.Decided() != count {
					done = false
				}
			}
			if done {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: consensus did not terminate", seed)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ref, err := h.batches[0].Results(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			res, err := h.batches[i].Results(ctx)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			for j := range res {
				if res[j] != ref[j] {
					t.Fatalf("seed %d instance %d: disagreement", seed, j)
				}
			}
		}
		// Validity on unanimous instances.
		for j := 0; j < count; j++ {
			allSame := true
			for i := 1; i < n; i++ {
				if inputs[i][j] != inputs[0][j] {
					allSame = false
				}
			}
			if allSame && ref[j] != inputs[0][j] {
				t.Fatalf("seed %d instance %d: validity violated (all input %d, decided %d)",
					seed, j, inputs[0][j], ref[j])
			}
		}
	}
}

func TestPropertyAgreementWithMessageLoss(t *testing.T) {
	// Drop 20% of messages on first delivery attempt but retry later —
	// modelling retransmission. (The protocol itself assumes eventual
	// delivery, which the VC layer realizes by multicast retries.)
	const n, f, count = 4, 1, 8
	coin := NewHashCoin([]byte("loss"))
	h := newShuffledHarness(t, n, f, count, coin, 5)
	inputs := uniform(n, count, 1)
	for i, b := range h.batches {
		if err := b.Start(inputs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Randomized pump already reorders arbitrarily; duplicate a sample of
	// messages to model retransmission-induced duplication as well.
	h.mu.Lock()
	dup := make([]queued, 0, len(h.queue)/5)
	for i, q := range h.queue {
		if i%5 == 0 {
			dup = append(dup, q)
		}
	}
	h.queue = append(h.queue, dup...)
	h.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h.pump()
		done := true
		for _, b := range h.batches {
			if b.Decided() != count {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("did not terminate")
		}
	}
	for i, b := range h.batches {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		res, err := b.Results(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range res {
			if v != 1 {
				t.Fatalf("node %d instance %d decided %d (validity under duplication)", i, j, v)
			}
		}
	}
}
