package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/sim"
)

// bbCanonical renders the subset-independent part of a Result; honest
// replicas must agree on it regardless of which trustee subsets their
// combines used.
func bbCanonical(res *bb.Result) string {
	c := *res
	c.Trustees = nil
	return fmt.Sprintf("%v", c)
}

// TestElectionSurvivesBBRestart runs the full pipeline with a durable
// cluster and hard-stops BB node 0 between the push-to-BB phase and the
// trustee publish phase: the relaunched incarnation must rebuild its
// accepted vote sets, msk shares and published cast data from its journal
// alone, accept the trustee posts, and publish a result canonically equal
// to the never-crashed replicas — all through the Reader's forwarding
// handles, which must follow the restart transparently.
func TestElectionSurvivesBBRestart(t *testing.T) {
	data := testData(t, 6)
	c, err := NewCluster(data, Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	votes := []int{0, 1, 1, 0, -1, 2}
	castAll(t, c, votes)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sets, err := c.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PushToBB(sets); err != nil {
		t.Fatal(err)
	}

	// Process death after the cast data went out. The cluster keeps
	// serving reads meanwhile: fb+1 = 2 of the remaining replicas agree.
	c.StopBB(0)
	if _, err := c.Reader.Cast(); err != nil {
		t.Fatalf("majority read with one BB stopped: %v", err)
	}

	if err := c.RestartBB(0); err != nil {
		t.Fatal(err)
	}
	// The recovered incarnation republished the cast data from journaled
	// submissions alone — no network, no peer transfer (BB nodes never
	// talk to each other).
	if _, err := c.BB(0).Cast(); err != nil {
		t.Fatalf("recovered BB lost the cast data: %v", err)
	}

	if err := c.RunTrustees(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{2, 2, 1})

	recovered, err := c.BB(0).Result()
	if err != nil {
		t.Fatalf("recovered BB published no result: %v", err)
	}
	witness, err := c.BB(1).Result()
	if err != nil {
		t.Fatal(err)
	}
	if bbCanonical(recovered) != bbCanonical(witness) {
		t.Fatal("recovered replica's result diverges from a never-crashed replica")
	}
}

// Compile-time checks: the BB fault surface plugs into the scenario
// machinery exactly like the cluster's VC surface does.
var (
	_ sim.Surface   = (*BBFaultSurface)(nil)
	_ sim.Restarter = (*BBFaultSurface)(nil)
)

// TestBBFaultSurfaceDrivesRestart drives the sim adapter methods directly:
// StopNode/RestartNode must compose with a live pipeline, Crash/Restore
// must degrade to the same stop/relaunch semantics (BB replicas hold no
// volatile protocol state worth isolating), and Partition must be a no-op
// (BB nodes never talk to each other, so there is no link to cut).
func TestBBFaultSurfaceDrivesRestart(t *testing.T) {
	data := testData(t, 4)
	c, err := NewCluster(data, Options{DataDir: t.TempDir(), JournalPool: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	votes := []int{0, 1, 2, 1}
	castAll(t, c, votes)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sets, err := c.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PushToBB(sets); err != nil {
		t.Fatal(err)
	}

	surface := c.BBFaults()
	surface.Partition(0, 1, true) // must not affect anything
	surface.StopNode(1)
	surface.Crash(2) // degrades to a hard stop
	surface.RestartNode(1)
	surface.Restore(2)
	surface.Partition(0, 1, false)

	for i := 1; i <= 2; i++ {
		if _, err := c.BB(i).Cast(); err != nil {
			t.Fatalf("BB %d after fault-surface restart: %v", i, err)
		}
	}

	if err := c.RunTrustees(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{1, 2, 1})
}
