// Package core wires all subsystems into a runnable election: Nv Vote
// Collector nodes over the (simulated or real) network, Nb Bulletin Board
// replicas, Nt trustees, and the phase sequencing of the full pipeline —
// vote collection, vote-set consensus, push-to-BB with encrypted tally, and
// result publication (the four phases of the paper's Fig. 5c).
//
// The cluster is also the fault-injection surface: any VC node can be
// crashed or made Byzantine, any BB node can lie to readers, any trustee
// can post garbage — each exercising one threshold of the threat model
// (§III-C).
package core

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/clock"
	"ddemos/internal/consensus"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/store"
	"ddemos/internal/transport"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
)

// Options configures cluster construction.
type Options struct {
	// Sim, when set, runs the whole cluster in the driver's virtual time:
	// the Memnet delivers on the driver's event queue, batch-flush windows
	// are driver events, and the election clock is the driver's. The
	// caller runs the driver (sim.Driver.Spin or Elapse) alongside the
	// test; ClosePolls jumps the driver clock past the voting end.
	Sim *sim.Driver
	// Network defaults to a fresh LAN-profile Memnet (on the Sim driver's
	// timers when Sim is set).
	Network *transport.Memnet
	// LinkProfile overrides the default profile of a fresh network
	// (ignored when Network is provided).
	LinkProfile *transport.LinkProfile
	// Clock defaults to the Sim driver's clock when Sim is set, otherwise
	// to a fake clock set inside the voting window, letting the caller
	// drive phases; pass clock.Real{} for wall-clock elections.
	Clock clock.Clock
	// Authenticated wraps inter-VC channels with Ed25519 signing (the
	// paper's authenticated channels). Costs one sign+verify per message —
	// or per batch when BatchWindow is set.
	Authenticated bool
	// BatchWindow enables the batched message pipeline when > 0: outgoing
	// inter-VC messages to the same peer are coalesced for up to this window
	// into one wire.Batch frame (and, with Authenticated, one signature).
	// Zero keeps the unbatched per-message path.
	BatchWindow time.Duration
	// BatchMaxMessages flushes a batch early once it holds this many
	// messages (default 128; only meaningful with BatchWindow > 0).
	BatchMaxMessages int
	// VCByzantine assigns fault modes to VC nodes by index.
	VCByzantine map[int]vc.Byzantine
	// LyingBB marks BB nodes (by index) that serve corrupted reads.
	LyingBB map[int]bool
	// ByzantineTrustees marks trustees (by index) that post garbage shares.
	ByzantineTrustees map[int]trustee.Byzantine
	// Stores optionally supplies a custom ballot store per VC node index
	// (e.g. the disk or segmented store for the Fig. 5a experiment).
	Stores map[int]store.Store
	// StoreCache wraps every supplied ballot store with the byte-bounded
	// admission-controlled LRU (store.Cached) of this many bytes — the
	// paper's cache-vs-database knob for pools that outgrow memory. The
	// cache is per node incarnation (a restarted node comes back cold) and
	// is ignored for nodes using the default in-memory store, which has
	// nothing to cache.
	StoreCache int64
	// Workers sizes each VC node's message-processing pool.
	Workers int
	// DataDir, when set, gives every VC node a durable runtime-state
	// journal (WAL + snapshot) under <DataDir>/vc-<i> and every BB node
	// one under <DataDir>/bb-<i>, recovered at construction — the paper's
	// crash-and-rejoin deployment property. RestartVC and RestartBB
	// relaunch nodes from them in place.
	DataDir string
	// Fsync makes journaled nodes sync before every ack instead of on the
	// batched group-commit cadence.
	Fsync bool
	// SnapshotEvery overrides the journal's snapshot threshold (records
	// between snapshot+truncate cycles; 0 = adaptive cadence).
	SnapshotEvery int
	// JournalPool selects the sharded journal backend when > 1: that many
	// WAL lanes hashed by ballot serial, each with its own group-commit
	// fsync loop and copy-on-write snapshots — the runtime-state analogue
	// of the paper's Fig. 5a connection-pool sweep.
	JournalPool int
	// JournalPolicy selects the journal-append-error ack policy
	// (vc.PolicyAvailable or vc.PolicyStrict).
	JournalPolicy vc.AckPolicy
	// Consensus selects the vote-set-consensus engine for every VC node:
	// "interlocked" (default, the paper's per-ballot protocol) or "acs"
	// (BKR common-subset; see vc.ParseEngine).
	Consensus string
}

// Cluster is a fully wired in-process election deployment.
type Cluster struct {
	Data     *ea.ElectionData
	Net      *transport.Memnet
	Clock    clock.Clock
	VCs      []*vc.Node
	BBs      []*bb.Node
	Trustees []*trustee.Trustee
	Reader   *bb.Reader

	fake *clock.Fake
	sim  *sim.Driver
	opts Options // retained for in-place node restarts

	// vcMu guards VCs against in-place restarts swapping entries. Code
	// paths that never run concurrently with RestartVC (benchmark
	// workloads, phase drivers) may read the slice directly; anything that
	// can race a restart goes through VC(i).
	vcMu sync.RWMutex
	// bbMu plays the same role for BBs against RestartBB. The Reader is
	// built over forwarding handles (bbRef), so it always reaches the
	// current incarnation without rebuilding.
	bbMu sync.RWMutex

	// PhaseDurations records the measured wall time of each completed
	// phase, keyed by phase name (Fig. 5c).
	phaseMu        sync.Mutex
	PhaseDurations map[string]time.Duration
}

// Phase names for PhaseDurations (the series of Fig. 5c).
const (
	PhaseVoteCollection   = "vote collection"
	PhaseVoteSetConsensus = "vote set consensus"
	PhasePushAndTally     = "push to BB and encrypted tally"
	PhasePublishResult    = "publish result"
)

// NewCluster boots all components from setup data.
func NewCluster(data *ea.ElectionData, opts Options) (*Cluster, error) {
	if data == nil {
		return nil, errors.New("core: missing election data")
	}
	c := &Cluster{
		Data:           data,
		PhaseDurations: make(map[string]time.Duration),
	}
	c.sim = opts.Sim
	c.Net = opts.Network
	if c.Net == nil {
		lp := transport.LANProfile
		if opts.LinkProfile != nil {
			lp = *opts.LinkProfile
		}
		if c.sim != nil {
			c.Net = transport.NewMemnetWithTimers(lp, c.sim)
		} else {
			c.Net = transport.NewMemnet(lp)
		}
	}
	c.Clock = opts.Clock
	if c.Clock == nil {
		if c.sim != nil {
			c.Clock = c.sim
		} else {
			fake := clock.NewFake(data.Manifest.VotingStart.Add(time.Minute))
			c.Clock = fake
			c.fake = fake
		}
	} else if f, ok := c.Clock.(*clock.Fake); ok {
		c.fake = f
	}

	// VC nodes.
	man := data.Manifest
	c.opts = opts
	c.VCs = make([]*vc.Node, man.NumVC)
	for i := 0; i < man.NumVC; i++ {
		node, err := c.buildVC(i)
		if err != nil {
			return nil, err
		}
		c.VCs[i] = node
	}

	// BB nodes (skipped in VC-only setups).
	if data.BB != nil {
		for i := 0; i < man.NumBB; i++ {
			node, err := c.buildBB(i)
			if err != nil {
				return nil, err
			}
			c.BBs = append(c.BBs, node)
		}
		// The Reader holds forwarding handles, not node pointers, so a
		// majority read started after RestartBB reaches the recovered
		// incarnation instead of the closed one.
		apis := make([]bb.API, len(c.BBs))
		for i := range c.BBs {
			apis[i] = bbRef{c: c, index: i}
		}
		c.Reader = bb.NewReader(apis)
		for i := 0; i < man.NumTrustees; i++ {
			tr, err := trustee.New(data.Trustees[i])
			if err != nil {
				return nil, fmt.Errorf("core: building trustee %d: %w", i, err)
			}
			if mode, ok := opts.ByzantineTrustees[i]; ok {
				tr.SetByzantine(mode)
			}
			c.Trustees = append(c.Trustees, tr)
		}
	}
	return c, nil
}

// buildVC constructs, recovers (when DataDir is set) and starts VC node i —
// shared by construction and in-place restart.
func (c *Cluster) buildVC(i int) (*vc.Node, error) {
	data, opts, man := c.Data, c.opts, c.Data.Manifest
	// Endpoint stack: network → Signed → Batcher, so a coalesced batch
	// is framed and signed exactly once (DESIGN.md, "Batched message
	// pipeline").
	var ep transport.Endpoint = c.Net.Endpoint(transport.NodeID(i)) //nolint:gosec // <=64
	if opts.Authenticated {
		pubs := make(map[transport.NodeID]ed25519.PublicKey, man.NumVC)
		for j, p := range man.VCPublics {
			pubs[transport.NodeID(j)] = p //nolint:gosec // <=64
		}
		ep = transport.NewSigned(ep, data.VC[i].Private, pubs)
	}
	if opts.BatchWindow > 0 {
		bopts := transport.BatcherOptions{
			Window:      opts.BatchWindow,
			MaxMessages: opts.BatchMaxMessages,
		}
		if c.sim != nil {
			bopts.Timers = c.sim
		}
		ep = transport.NewBatcher(ep, bopts)
	}
	st := opts.Stores[i]
	if st != nil && opts.StoreCache > 0 {
		cached, err := store.NewCached(st, store.CachedOptions{MaxBytes: opts.StoreCache})
		if err != nil {
			return nil, fmt.Errorf("core: caching store for vc %d: %w", i, err)
		}
		st = cached
	}
	engine, err := vc.ParseEngine(opts.Consensus)
	if err != nil {
		return nil, err
	}
	node, err := vc.New(vc.Config{
		Init:      data.VC[i],
		Store:     st,
		Endpoint:  ep,
		Clock:     c.Clock,
		Coin:      consensus.NewHashCoin([]byte(man.ElectionID)),
		Engine:    engine,
		Byzantine: opts.VCByzantine[i],
		Workers:   opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building vc %d: %w", i, err)
	}
	if opts.DataDir != "" {
		dir := filepath.Join(opts.DataDir, fmt.Sprintf("vc-%d", i))
		jopts := vc.JournalOptions{
			Fsync:         opts.Fsync,
			SnapshotEvery: opts.SnapshotEvery,
			Pool:          opts.JournalPool,
			Policy:        opts.JournalPolicy,
		}
		if err := node.RecoverWithOptions(dir, jopts); err != nil {
			return nil, fmt.Errorf("core: recovering vc %d: %w", i, err)
		}
	}
	node.Start()
	return node, nil
}

// buildBB constructs and, when DataDir is set, recovers BB node i from its
// journal — shared by construction and in-place restart.
func (c *Cluster) buildBB(i int) (*bb.Node, error) {
	opts := c.opts
	node, err := bb.NewNode(c.Data.BB)
	if err != nil {
		return nil, fmt.Errorf("core: building bb %d: %w", i, err)
	}
	node.Lying = opts.LyingBB[i]
	if opts.DataDir != "" {
		dir := filepath.Join(opts.DataDir, fmt.Sprintf("bb-%d", i))
		jopts := vc.JournalOptions{
			Fsync:         opts.Fsync,
			SnapshotEvery: opts.SnapshotEvery,
			Pool:          opts.JournalPool,
			Policy:        opts.JournalPolicy,
		}
		if err := node.RecoverWithOptions(dir, jopts); err != nil {
			return nil, fmt.Errorf("core: recovering bb %d: %w", i, err)
		}
	}
	return node, nil
}

// VC returns the current incarnation of VC node i (restarts swap it).
func (c *Cluster) VC(i int) *vc.Node {
	c.vcMu.RLock()
	defer c.vcMu.RUnlock()
	return c.VCs[i]
}

// BB returns the current incarnation of BB node i (restarts swap it).
func (c *Cluster) BB(i int) *bb.Node {
	c.bbMu.RLock()
	defer c.bbMu.RUnlock()
	return c.BBs[i]
}

// bbSnapshot copies the current BB incarnations for iteration.
func (c *Cluster) bbSnapshot() []*bb.Node {
	c.bbMu.RLock()
	defer c.bbMu.RUnlock()
	return append([]*bb.Node(nil), c.BBs...)
}

// bbRef is a forwarding bb.API handle bound to a slot, not an incarnation.
type bbRef struct {
	c     *Cluster
	index int
}

func (r bbRef) Manifest() (ea.Manifest, error)     { return r.c.BB(r.index).Manifest() }
func (r bbRef) Init() (*ea.BBInit, error)          { return r.c.BB(r.index).Init() }
func (r bbRef) VoteSet() ([]vc.VotedBallot, error) { return r.c.BB(r.index).VoteSet() }
func (r bbRef) Cast() (*bb.CastData, error)        { return r.c.BB(r.index).Cast() }
func (r bbRef) Result() (*bb.Result, error)        { return r.c.BB(r.index).Result() }

// Stop shuts everything down.
func (c *Cluster) Stop() {
	c.vcMu.RLock()
	nodes := append([]*vc.Node(nil), c.VCs...)
	c.vcMu.RUnlock()
	for _, n := range nodes {
		n.Stop()
	}
	for _, n := range c.bbSnapshot() {
		n.Close()
	}
	_ = c.Net.Close()
}

// CrashVC isolates a VC node from the network (crash fault).
func (c *Cluster) CrashVC(index int) {
	c.Net.Isolate(transport.NodeID(index), true) //nolint:gosec // <=64
}

// RestoreVC reconnects a previously crashed VC node.
func (c *Cluster) RestoreVC(index int) {
	c.Net.Isolate(transport.NodeID(index), false) //nolint:gosec // <=64
}

// StopVC hard-stops a VC node: goroutines halted, volatile state dropped —
// process death, as opposed to CrashVC's network isolation. With DataDir
// set, RestartVC brings it back from its journal.
func (c *Cluster) StopVC(index int) {
	c.VC(index).Stop()
}

// RestartVC relaunches a (typically stopped) VC node in place: a fresh
// incarnation on the same network identity, its runtime ballot state
// recovered from the node's WAL + snapshot. Without a DataDir the node
// comes back empty — the paper's permanent-crash regime.
func (c *Cluster) RestartVC(index int) error {
	c.VC(index).Stop() // idempotent if already stopped
	node, err := c.buildVC(index)
	if err != nil {
		return err
	}
	c.vcMu.Lock()
	c.VCs[index] = node
	c.vcMu.Unlock()
	return nil
}

// StopBB hard-stops a BB node: its combine worker halted, journal closed,
// volatile state dropped — process death for the replicated service. With
// DataDir set, RestartBB brings it back from its journal.
func (c *Cluster) StopBB(index int) {
	c.BB(index).Close()
}

// RestartBB relaunches a (typically stopped) BB node in place: a fresh
// incarnation recovered from <DataDir>/bb-<i>'s snapshot + WAL, with the
// combine worker re-kicked if the replayed posts already hold a publishable
// subset. Without a DataDir the node comes back empty and must be re-fed.
// The Reader's forwarding handle picks up the new incarnation immediately.
func (c *Cluster) RestartBB(index int) error {
	c.BB(index).Close() // idempotent if already stopped
	node, err := c.buildBB(index)
	if err != nil {
		return err
	}
	c.bbMu.Lock()
	c.BBs[index] = node
	c.bbMu.Unlock()
	return nil
}

// BBFaults returns the scenario fault surface addressing BB nodes, so
// sim-driven schedules can kill and recover replicas of the bulletin board
// the way the Cluster itself exposes VC faults. BB nodes never talk to each
// other (the paper's no-cooperation replication model), so Partition is a
// no-op, and Crash/Restore degrade to stop/restart — a BB replica has no
// network identity to isolate in-process.
func (c *Cluster) BBFaults() *BBFaultSurface { return &BBFaultSurface{c: c} }

// BBFaultSurface implements sim.Surface and sim.Restarter over BB indices.
type BBFaultSurface struct {
	c *Cluster
}

// Crash implements sim.Surface; for BBs it is a hard stop.
func (s *BBFaultSurface) Crash(index int) { s.c.StopBB(index) }

// Restore implements sim.Surface; for BBs it is a journal recovery.
func (s *BBFaultSurface) Restore(index int) { _ = s.c.RestartBB(index) }

// Partition implements sim.Surface; BB nodes share no channels to cut.
func (s *BBFaultSurface) Partition(a, b int, on bool) {}

// StopNode implements sim.Restarter.
func (s *BBFaultSurface) StopNode(index int) { s.c.StopBB(index) }

// RestartNode implements sim.Restarter; a failed restart leaves the node
// stopped (the scenario then observes a permanent crash).
func (s *BBFaultSurface) RestartNode(index int) { _ = s.c.RestartBB(index) }

// Crash implements sim.Surface (scenario-driven fault schedules).
func (c *Cluster) Crash(index int) { c.CrashVC(index) }

// Restore implements sim.Surface.
func (c *Cluster) Restore(index int) { c.RestoreVC(index) }

// StopNode implements sim.Restarter.
func (c *Cluster) StopNode(index int) { c.StopVC(index) }

// RestartNode implements sim.Restarter; a failed restart leaves the node
// stopped (the scenario then observes a permanent crash).
func (c *Cluster) RestartNode(index int) { _ = c.RestartVC(index) }

// Partition implements sim.Surface: block (or heal) traffic between two VC
// nodes.
func (c *Cluster) Partition(a, b int, on bool) {
	c.Net.Partition(transport.NodeID(a), transport.NodeID(b), on) //nolint:gosec // <=64
}

// ClosePolls advances the election clock past the voting end: the sim
// driver's clock in virtual-time runs, the fake clock otherwise (no-op with
// a real clock — callers then wait for the real end time).
func (c *Cluster) ClosePolls() {
	end := c.Data.Manifest.VotingEnd.Add(time.Second)
	switch {
	case c.sim != nil:
		c.sim.JumpTo(end)
	case c.fake != nil:
		c.fake.Set(end)
	}
}

// recordPhase stores a phase duration.
func (c *Cluster) recordPhase(name string, d time.Duration) {
	c.phaseMu.Lock()
	defer c.phaseMu.Unlock()
	c.PhaseDurations[name] = d
}

// RunVoteSetConsensus closes the polls and drives vote-set consensus on all
// non-skipped VC nodes concurrently, returning each node's agreed set
// (identical across honest nodes, per the consensus guarantee).
func (c *Cluster) RunVoteSetConsensus(ctx context.Context, skip map[int]bool) (map[int][]vc.VotedBallot, error) {
	c.ClosePolls()
	start := time.Now()
	type res struct {
		set []vc.VotedBallot
		err error
	}
	c.vcMu.RLock()
	vcs := append([]*vc.Node(nil), c.VCs...)
	c.vcMu.RUnlock()
	results := make([]res, len(vcs))
	var wg sync.WaitGroup
	for i, n := range vcs {
		if skip[i] {
			continue
		}
		wg.Add(1)
		go func(i int, n *vc.Node) {
			defer wg.Done()
			set, err := n.VoteSetConsensus(ctx)
			results[i] = res{set, err}
		}(i, n)
	}
	wg.Wait()
	c.recordPhase(PhaseVoteSetConsensus, time.Since(start))
	sets := make(map[int][]vc.VotedBallot, len(vcs))
	var firstErr error
	for i := range results {
		if skip[i] {
			continue
		}
		if results[i].err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: vc %d consensus: %w", i, results[i].err)
			}
			continue
		}
		sets[i] = results[i].set
	}
	if len(sets) == 0 {
		if firstErr == nil {
			firstErr = errors.New("core: no vc node ran consensus")
		}
		return nil, firstErr
	}
	return sets, nil
}

// PushToBB has every non-skipped VC node submit its final vote set and msk
// share to every BB node; the phase ends when every BB node has published
// the cast data (encrypted tally available).
func (c *Cluster) PushToBB(sets map[int][]vc.VotedBallot) error {
	if len(c.BBs) == 0 {
		return errors.New("core: cluster has no BB nodes")
	}
	start := time.Now()
	c.vcMu.RLock()
	vcs := append([]*vc.Node(nil), c.VCs...)
	c.vcMu.RUnlock()
	bbs := c.bbSnapshot()
	for i, n := range vcs {
		set, ok := sets[i]
		if !ok {
			continue
		}
		sg := n.SignVoteSet(set)
		for _, bnode := range bbs {
			if err := bnode.SubmitVoteSet(i, set, sg); err != nil {
				return fmt.Errorf("core: vc %d pushing set: %w", i, err)
			}
			if err := bnode.SubmitMskShare(n.MskShare()); err != nil {
				return fmt.Errorf("core: vc %d pushing msk share: %w", i, err)
			}
		}
	}
	for i, bnode := range bbs {
		if _, err := bnode.Cast(); err != nil {
			return fmt.Errorf("core: bb %d did not publish cast data: %w", i, err)
		}
	}
	c.recordPhase(PhasePushAndTally, time.Since(start))
	return nil
}

// RunTrustees computes and submits every trustee's post, then waits for the
// BB nodes to publish the combined result.
func (c *Cluster) RunTrustees() error {
	start := time.Now()
	bbs := c.bbSnapshot()
	var wg sync.WaitGroup
	errs := make([]error, len(c.Trustees))
	for i, tr := range c.Trustees {
		wg.Add(1)
		go func(i int, tr *trustee.Trustee) {
			defer wg.Done()
			errs[i] = tr.PublishTo(c.Reader, bbs)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: trustee %d: %w", i, err)
		}
	}
	// Combination runs in a background worker per BB node, so submission
	// returning does not mean the result exists yet; wait for each honest
	// node to publish (bounded, in case a Byzantine trustee mix leaves a
	// node without a valid subset).
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for i := range bbs {
		// Re-resolve the slot at wait time: a replica restarted while the
		// trustees were posting is awaited on its recovered incarnation, not
		// the closed one (whose result channel would never fire).
		bnode := c.BB(i)
		if bnode.Lying {
			continue
		}
		if _, err := bnode.WaitResult(waitCtx); err != nil {
			return fmt.Errorf("core: bb %d did not publish a result: %w", i, err)
		}
	}
	c.recordPhase(PhasePublishResult, time.Since(start))
	return nil
}

// RunPipeline drives the three post-election phases after votes were cast:
// vote-set consensus, push to BB, trustee tally. Returns the final result
// read by majority.
func (c *Cluster) RunPipeline(ctx context.Context) (*bb.Result, error) {
	sets, err := c.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		return nil, err
	}
	if err := c.PushToBB(sets); err != nil {
		return nil, err
	}
	if err := c.RunTrustees(); err != nil {
		return nil, err
	}
	return c.Reader.Result()
}

// RecordVoteCollection stores the measured duration of the vote-collection
// phase (driven by the caller, who controls the client workload).
func (c *Cluster) RecordVoteCollection(d time.Duration) {
	c.recordPhase(PhaseVoteCollection, d)
}

// Phases returns a copy of the recorded phase durations.
func (c *Cluster) Phases() map[string]time.Duration {
	c.phaseMu.Lock()
	defer c.phaseMu.Unlock()
	out := make(map[string]time.Duration, len(c.PhaseDurations))
	for k, v := range c.PhaseDurations {
		out[k] = v
	}
	return out
}
