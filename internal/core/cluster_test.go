package core

import (
	"context"
	"testing"
	"time"

	"ddemos/internal/auditor"
	"ddemos/internal/ballot"
	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/trustee"
	"ddemos/internal/vc"
	"ddemos/internal/voter"
)

func testData(t *testing.T, numBallots int, opts ...func(*ea.Params)) *ea.ElectionData {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	p := ea.Params{
		ElectionID:  "core-test",
		Options:     []string{"alice", "bob", "carol"},
		NumBallots:  numBallots,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(2 * time.Hour),
		Seed:        []byte("core-test-seed"),
	}
	for _, o := range opts {
		o(&p)
	}
	data, err := ea.Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// castAll has voter i vote for option votes[i] (or abstain when -1),
// returning the cast results.
func castAll(t *testing.T, c *Cluster, votes []int) []*voter.CastResult {
	t.Helper()
	results := make([]*voter.CastResult, len(votes))
	services := make([]voter.Service, len(c.VCs))
	for i, n := range c.VCs {
		services[i] = n
	}
	for i, opt := range votes {
		if opt < 0 {
			continue
		}
		cl := &voter.Client{
			Ballot:   c.Data.Ballots[i],
			Services: services,
			Patience: 5 * time.Second,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		res, err := cl.Cast(ctx, opt)
		cancel()
		if err != nil {
			t.Fatalf("voter %d: %v", i, err)
		}
		results[i] = res
	}
	return results
}

func wantCounts(t *testing.T, res *bb.Result, want []int64) {
	t.Helper()
	if len(res.Counts) != len(want) {
		t.Fatalf("counts arity %d, want %d", len(res.Counts), len(want))
	}
	for i, w := range want {
		if res.Counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d (all: %v)", i, res.Counts[i], w, res.Counts)
		}
	}
}

func TestFullElectionPipeline(t *testing.T) {
	data := testData(t, 10)
	c, err := NewCluster(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// 10 ballots: 4×alice, 3×bob, 1×carol, 2 abstentions.
	votes := []int{0, 0, 0, 0, 1, 1, 1, 2, -1, -1}
	start := time.Now()
	results := castAll(t, c, votes)
	c.RecordVoteCollection(time.Since(start))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{4, 3, 1})

	// Every voter's post-election verification passes.
	services := make([]voter.Service, len(c.VCs))
	for i, n := range c.VCs {
		services[i] = n
	}
	for i, r := range results {
		if r == nil {
			continue
		}
		cl := &voter.Client{Ballot: c.Data.Ballots[i], Services: services}
		if err := cl.Verify(c.Reader, r); err != nil {
			t.Fatalf("voter %d verification: %v", i, err)
		}
	}

	// A full third-party audit with delegated packages passes.
	var pkgs []*ballot.AuditPackage
	for i, r := range results {
		cl := &voter.Client{Ballot: c.Data.Ballots[i]}
		pkg, err := cl.AuditPackage(r)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	report, err := auditor.Audit(c.Reader, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit failed: %v", report.Failures)
	}
	if report.BallotsChecked != 10 || report.DelegatedChecks != 10 {
		t.Fatalf("audit coverage wrong: %+v", report)
	}

	// All phases were recorded.
	phases := c.Phases()
	for _, name := range []string{PhaseVoteCollection, PhaseVoteSetConsensus, PhasePushAndTally, PhasePublishResult} {
		if phases[name] <= 0 {
			t.Fatalf("phase %q not recorded", name)
		}
	}
}

// TestElectionSurvivesVCRestart crashes a journaled VC node mid-election —
// a hard stop, volatile state gone — restarts it from its WAL/snapshot, and
// requires the election to complete with the restarted node participating:
// its pre-crash receipts reproduce byte-identically, it serves as responder
// again, and it joins vote-set consensus with its recovered certified set.
func TestElectionSurvivesVCRestart(t *testing.T) {
	data := testData(t, 6)
	c, err := NewCluster(data, Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	start := time.Now()
	// Phase 1: ballots 0 and 1, with node 1 the responder for ballot 0.
	cast := func(ballotIdx, opt, at int) *voter.CastResult {
		t.Helper()
		cl := &voter.Client{
			Ballot:   c.Data.Ballots[ballotIdx],
			Services: []voter.Service{c.VC(at)},
			Patience: 5 * time.Second,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		res, err := cl.Cast(ctx, opt)
		if err != nil {
			t.Fatalf("ballot %d at vc %d: %v", ballotIdx, at, err)
		}
		return res
	}
	r0 := cast(0, 0, 1)
	cast(1, 1, 0)

	// Phase 2: node 1 dies. Collection continues — fv=1 of Nv=4.
	c.StopVC(1)
	cast(2, 2, 0)
	cast(3, 0, 2)

	// Phase 3: node 1 comes back from its journal.
	if err := c.RestartVC(1); err != nil {
		t.Fatal(err)
	}
	// Pre-crash receipt reproduces at the restarted node, from recovered
	// state alone (same code, same ballot — the Voted fast path).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	r0again, err := c.VC(1).SubmitVote(ctx, r0.Serial, r0.Code)
	cancel()
	if err != nil {
		t.Fatalf("resubmission at restarted node: %v", err)
	}
	if string(r0again) != string(r0.Receipt) {
		t.Fatalf("receipt changed across restart: %x != %x", r0again, r0.Receipt)
	}
	// The restarted node serves as responder for a fresh ballot.
	cast(4, 1, 1)
	c.RecordVoteCollection(time.Since(start))

	// The pipeline completes with the restarted node in consensus.
	pctx, pcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer pcancel()
	res, err := c.RunPipeline(pctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{2, 2, 1})
}

func TestElectionWithAllFaultsAtThreshold(t *testing.T) {
	// Simultaneously: 1 Byzantine VC of 4 (fv=1), 1 lying BB of 3 (fb=1),
	// 1 garbage trustee of 3 (ht=2). The election must still complete,
	// verify, and audit clean.
	data := testData(t, 6)
	c, err := NewCluster(data, Options{
		VCByzantine:       map[int]vc.Byzantine{3: vc.ShareCorruptor},
		LyingBB:           map[int]bool{0: true},
		ByzantineTrustees: map[int]trustee.Byzantine{2: trustee.GarbageShares},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	votes := []int{0, 1, 2, 0, -1, 1}
	castAll(t, c, votes)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{2, 2, 1})

	report, err := auditor.Audit(c.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit failed: %v", report.Failures)
	}
}

func TestElectionWithCrashedVC(t *testing.T) {
	data := testData(t, 4)
	c, err := NewCluster(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.CrashVC(2)

	votes := []int{0, 1, -1, -1}
	castAll(t, c, votes)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sets, err := c.RunVoteSetConsensus(ctx, map[int]bool{2: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PushToBB(sets); err != nil {
		t.Fatal(err)
	}
	if err := c.RunTrustees(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{1, 1, 0})
}

func TestAuthenticatedChannels(t *testing.T) {
	data := testData(t, 3)
	c, err := NewCluster(data, Options{Authenticated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	castAll(t, c, []int{0, 1, 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{1, 1, 1})
}

func TestBatchedPipelineFullElection(t *testing.T) {
	// The batched message pipeline (Signed + Batcher endpoints) must run the
	// complete election — collection, vote-set consensus, push, tally —
	// exactly like the unbatched path.
	data := testData(t, 4)
	c, err := NewCluster(data, Options{
		Authenticated:    true,
		BatchWindow:      500 * time.Microsecond,
		BatchMaxMessages: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	castAll(t, c, []int{0, 1, 2, 0})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{2, 1, 1})
}

func TestBatchedUnauthenticatedPipeline(t *testing.T) {
	// Batching without channel authentication (the knob combinations are
	// independent).
	data := testData(t, 3)
	c, err := NewCluster(data, Options{BatchWindow: 300 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	castAll(t, c, []int{2, 2, 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{0, 1, 2})
}

func TestSafetyReceiptImpliesTallied(t *testing.T) {
	// Theorem 2's contract: a receipt in hand implies the vote is published
	// and tallied — even when the responder crashes right after answering
	// and a Byzantine node lies during consensus.
	data := testData(t, 3)
	c, err := NewCluster(data, Options{
		VCByzantine: map[int]vc.Byzantine{3: vc.ConsensusLiar},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	results := castAll(t, c, []int{1, -1, -1})
	// Crash the responder after the receipt was issued.
	c.CrashVC(0)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sets, err := c.RunVoteSetConsensus(ctx, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PushToBB(sets); err != nil {
		t.Fatal(err)
	}
	if err := c.RunTrustees(); err != nil {
		t.Fatal(err)
	}
	voteSet, err := c.Reader.VoteSet()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, vb := range voteSet {
		if vb.Serial == results[0].Serial && string(vb.Code) == string(results[0].Code) {
			found = true
		}
	}
	if !found {
		t.Fatal("receipt issued but vote not in the published set (safety violation)")
	}
	res, err := c.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{0, 1, 0})
}

func TestLivenessPatientVoterBlacklistsCrashedNodes(t *testing.T) {
	// Theorem 1's mechanism: a [d]-patient voter retries and succeeds as
	// long as one honest VC node is reachable among her attempts.
	data := testData(t, 1)
	c, err := NewCluster(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	// Crash one node (= fv): the voter may hit it first, must recover.
	c.CrashVC(1)

	services := make([]voter.Service, len(c.VCs))
	for i, n := range c.VCs {
		services[i] = n
	}
	cl := &voter.Client{
		Ballot:   c.Data.Ballots[0],
		Services: services,
		Patience: 400 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cl.Cast(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts > len(c.VCs) {
		t.Fatalf("voter needed %d attempts for %d nodes", res.Attempts, len(c.VCs))
	}
}

func TestMajorityReaderDefeatsLyingBB(t *testing.T) {
	// Runs on the sim harness: inter-VC latency is virtual-time events, so
	// the test cannot flake on wall-clock timer scheduling under load.
	data := testData(t, 3)
	drv := sim.New(sim.Config{Start: data.Manifest.VotingStart.Add(time.Minute)})
	c, err := NewCluster(data, Options{Sim: drv, LyingBB: map[int]bool{1: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	stop := drv.Spin()
	defer stop()
	castAll(t, c, []int{0, 0, 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The reader result must be the honest one despite the liar.
	wantCounts(t, res, []int64{2, 1, 0})

	// Reading the lying node directly shows corrupted data — proving the
	// majority reader did real work. Wait for its publish first: RunTrustees
	// deliberately skips lying nodes, so a direct read races the node's
	// background combine worker.
	direct, err := c.BBs[1].WaitResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Counts[0] == res.Counts[0] && direct.Counts[1] == res.Counts[1] {
		t.Fatal("lying BB returned honest data; test is vacuous")
	}
}

func TestTalliesAreDeterministicAcrossBBNodes(t *testing.T) {
	data := testData(t, 4)
	c, err := NewCluster(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	castAll(t, c, []int{2, 2, 2, 0})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.RunPipeline(ctx); err != nil {
		t.Fatal(err)
	}
	var ref *bb.Result
	for i, n := range c.BBs {
		res, err := n.Result()
		if err != nil {
			t.Fatalf("bb %d: %v", i, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for j := range ref.Counts {
			if res.Counts[j] != ref.Counts[j] {
				t.Fatalf("bb %d disagrees on counts", i)
			}
		}
	}
	wantCounts(t, ref, []int64{1, 0, 3})
}
