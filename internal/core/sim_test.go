package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
	"ddemos/internal/vc"
)

// The cluster is the scenario layer's fault surface.
var _ sim.Surface = (*Cluster)(nil)

// newSimCluster builds a cluster in the driver's virtual time and starts
// the driver's spin loop for the test's lifetime.
func newSimCluster(t *testing.T, numBallots int, drv *sim.Driver, opts Options) *Cluster {
	t.Helper()
	data := testData(t, numBallots)
	opts.Sim = drv
	c, err := NewCluster(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	t.Cleanup(drv.Spin())
	return c
}

func TestWANElectionRunsInVirtualTime(t *testing.T) {
	// A full election over the paper's 25 ms WAN profile: in virtual time
	// the latency shows up on the driver's clock, not the wall.
	drv := sim.New(sim.Config{})
	wan := transport.WANProfile
	c := newSimCluster(t, 6, drv, Options{LinkProfile: &wan})

	castAll(t, c, []int{0, 1, 0, 2, 0, -1})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{3, 1, 1})
	// The protocol did many WAN round trips; the virtual clock must show
	// them (votes alone cost >= 2 hops of 25ms each).
	if el := drv.Elapsed(); el < 50*time.Millisecond {
		t.Fatalf("virtual clock advanced only %v over a WAN election", el)
	}
}

func TestBatchedAuthenticatedElectionOnSim(t *testing.T) {
	// The full production stack — Signed + Batcher endpoints — with every
	// timer (link latency, flush windows) on the virtual clock.
	drv := sim.New(sim.Config{})
	c := newSimCluster(t, 4, drv, Options{
		Authenticated:    true,
		BatchWindow:      500 * time.Microsecond,
		BatchMaxMessages: 32,
	})
	castAll(t, c, []int{0, 1, 2, 0})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := c.RunPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, res, []int64{2, 1, 1})
}

// TestScenarioDrivenElectionSafety drives a seeded fault schedule — crash
// windows and partitions during the voting phase — while voters race it,
// with the at-most-one-UCERT invariant probed continuously. After the
// faults heal, the pipeline runs and Theorem 2's contract is checked: every
// receipt issued is a vote in the published set with the correct receipt
// bytes.
func TestScenarioDrivenElectionSafety(t *testing.T) {
	const numBallots = 6
	for _, seed := range []uint64{7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			drv := sim.New(sim.Config{})
			c := newSimCluster(t, numBallots, drv, Options{})
			scen := sim.RandomScenario(seed, sim.ScenarioConfig{
				NumNodes: len(c.VCs),
				Duration: 30 * time.Millisecond,
			})
			scen.Install(drv, c)
			probeViolations := scen.InstallProbes(drv, []sim.Probe{{
				Name:  "at-most-one-ucert",
				Every: 2 * time.Millisecond,
				Check: func() error { return vc.CertAgreement(c.VCs, numBallots) },
			}})

			// Voters race the fault schedule: each submits directly to one VC
			// node with a virtual-time deadline. Receipts may starve (crashed
			// responders are not retried here) — safety must hold regardless.
			type outcome struct {
				serial  uint64
				option  int
				receipt []byte
			}
			var mu sync.Mutex
			var got []outcome
			var wg sync.WaitGroup
			for b := 0; b < numBallots; b++ {
				wg.Add(1)
				go func(b int) {
					defer wg.Done()
					serial := uint64(b + 1)
					option := b % 3
					code, err := c.Data.Ballots[b].CodeFor(ballot.PartA, option)
					if err != nil {
						t.Error(err)
						return
					}
					ctx, cancel := drv.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					r, err := c.VCs[b%len(c.VCs)].SubmitVote(ctx, serial, code)
					if err != nil {
						return // starved by the fault schedule: allowed
					}
					mu.Lock()
					got = append(got, outcome{serial, option, r})
					mu.Unlock()
				}(b)
			}
			wg.Wait()

			// Receipt validity: what the voter holds is the ballot's true
			// receipt line.
			for _, o := range got {
				want := c.Data.Ballots[o.serial-1].Parts[ballot.PartA].Lines[o.option].Receipt
				if !bytes.Equal(o.receipt, want) {
					t.Errorf("ballot %d: corrupted receipt", o.serial)
				}
			}

			// Voters may all resolve before the fault schedule has finished;
			// healing a fault that has not fired yet would be a no-op and the
			// pipeline would race live faults. Wait (wall-clock poll, virtual
			// progress) until every scheduled fault has executed.
			deadline := time.Now().Add(30 * time.Second)
			for len(drv.Trace()) < len(scen.Faults) {
				if time.Now().After(deadline) {
					t.Fatalf("fault schedule never completed: %d/%d fired", len(drv.Trace()), len(scen.Faults))
				}
				time.Sleep(time.Millisecond)
			}

			// Heal everything, close polls, run the pipeline.
			for _, f := range scen.Faults {
				if f.Kind == sim.FaultCrash {
					c.RestoreVC(f.A)
				}
				if f.Kind == sim.FaultPartitionForm {
					c.Partition(f.A, f.B, false)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			sets, err := c.RunVoteSetConsensus(ctx, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.PushToBB(sets); err != nil {
				t.Fatal(err)
			}
			if err := c.RunTrustees(); err != nil {
				t.Fatal(err)
			}

			// Theorem 2: receipt in hand => vote in the published set.
			voteSet, err := c.Reader.VoteSet()
			if err != nil {
				t.Fatal(err)
			}
			published := make(map[uint64]bool, len(voteSet))
			for _, vb := range voteSet {
				published[vb.Serial] = true
			}
			for _, o := range got {
				if !published[o.serial] {
					t.Errorf("seed %d: ballot %d has a receipt but is not in the published set", seed, o.serial)
				}
			}
			if !probeViolations.Empty() {
				t.Fatalf("seed %d: probe violations: %v", seed, probeViolations.List())
			}
		})
	}
}
