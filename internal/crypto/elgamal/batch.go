package elgamal

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"

	"ddemos/internal/crypto/group"
)

// batchVerifyThreshold is the batch size below which VerifyOpeningsBatch
// falls back to per-element checks: the multi-scalar multiplication only
// amortizes its fixed costs past a few dozen terms. Variable in tests.
var batchVerifyThreshold = 32

// batchGammaBits is the size of the random linear-combination coefficients.
// 128 bits keep the false-accept probability at 2^-128 while halving the
// scalar length fed to the multi-scalar multiplications.
const batchGammaBits = 128

// VerifyOpeningsBatch checks VerifyOpening(cts[i], ms[i], rs[i]) for all i
// with a single random-linear-combination test: for fresh random γᵢ it
// verifies
//
//	Σ γᵢ·Aᵢ == (Σ γᵢ·rᵢ)·G
//	Σ γᵢ·Bᵢ == (Σ γᵢ·mᵢ)·G + (Σ γᵢ·rᵢ)·P
//
// via two multi-scalar multiplications. If every individual opening is
// valid, the batch always accepts; if any is invalid, the batch accepts
// with probability 2^-128 (an adversary would have to predict γ, which is
// sampled after the openings are fixed). rnd defaults to crypto/rand.
//
// A false return only means at least one opening failed — use
// VerifyOpening to locate it.
func (k CommitmentKey) VerifyOpeningsBatch(cts []Ciphertext, ms, rs []*big.Int, rnd io.Reader) (bool, error) {
	n := len(cts)
	if len(ms) != n || len(rs) != n {
		return false, errors.New("elgamal: batch length mismatch")
	}
	if n == 0 {
		return true, nil
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	if n < batchVerifyThreshold {
		for i := range cts {
			if !k.VerifyOpening(cts[i], ms[i], rs[i]) {
				return false, nil
			}
		}
		return true, nil
	}

	order := group.Order()
	bound := new(big.Int).Lsh(big.NewInt(1), batchGammaBits)
	gammas := make([]*big.Int, n)
	as := make([]group.Point, n)
	bs := make([]group.Point, n)
	sm := new(big.Int)
	sr := new(big.Int)
	tmp := new(big.Int)
	for i := range cts {
		g, err := rand.Int(rnd, bound)
		if err != nil {
			return false, err
		}
		gammas[i] = g
		as[i] = cts[i].A
		bs[i] = cts[i].B
		sm.Add(sm, tmp.Mul(g, ms[i]))
		sr.Add(sr, tmp.Mul(g, rs[i]))
	}
	sm.Mod(sm, order)
	sr.Mod(sr, order)

	lhsA := group.MultiScalarMulVartime(as, gammas)
	if !lhsA.Equal(group.BaseMul(sr)) {
		return false, nil
	}
	lhsB := group.MultiScalarMulVartime(bs, gammas)
	rhsB := group.BaseMul(sm).Add(k.P.Mul(sr))
	return lhsB.Equal(rhsB), nil
}
