package elgamal

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"testing"
)

// detRand yields deterministic bytes so batch γ sampling is reproducible.
type detRand struct {
	state [32]byte
	buf   []byte
}

func newDetRand(seed []byte) *detRand {
	return &detRand{state: sha256.Sum256(seed)}
}

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		if len(d.buf) == 0 {
			d.state = sha256.Sum256(d.state[:])
			d.buf = append(d.buf[:0], d.state[:]...)
		}
		p[i] = d.buf[0]
		d.buf = d.buf[1:]
	}
	return len(p), nil
}

func makeOpenings(t testing.TB, k CommitmentKey, n int, seed []byte) ([]Ciphertext, []*big.Int, []*big.Int) {
	rnd := newDetRand(seed)
	cts := make([]Ciphertext, n)
	ms := make([]*big.Int, n)
	rs := make([]*big.Int, n)
	for i := range cts {
		var err error
		ms[i] = big.NewInt(int64(i % 3))
		cts[i], rs[i], err = k.Encrypt(ms[i], rnd)
		if err != nil {
			t.Fatal(err)
		}
	}
	return cts, ms, rs
}

func TestVerifyOpeningsBatchAcceptsValid(t *testing.T) {
	k := DeriveCommitmentKey("batch-test")
	for _, n := range []int{0, 1, 5, batchVerifyThreshold, 100} {
		cts, ms, rs := makeOpenings(t, k, n, []byte("valid"))
		ok, err := k.VerifyOpeningsBatch(cts, ms, rs, newDetRand([]byte("gamma")))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("n=%d: valid batch rejected", n)
		}
	}
}

func TestVerifyOpeningsBatchRejectsInvalid(t *testing.T) {
	k := DeriveCommitmentKey("batch-test")
	for _, n := range []int{1, 5, batchVerifyThreshold, 100} {
		for _, corrupt := range []string{"m", "r", "A", "B"} {
			cts, ms, rs := makeOpenings(t, k, n, []byte("invalid"))
			i := n / 2
			switch corrupt {
			case "m":
				ms[i] = new(big.Int).Add(ms[i], big.NewInt(1))
			case "r":
				rs[i] = new(big.Int).Add(rs[i], big.NewInt(1))
			case "A":
				cts[i].A = cts[i].A.Add(cts[i].A)
			case "B":
				cts[i].B = cts[i].B.Add(cts[i].B)
			}
			ok, err := k.VerifyOpeningsBatch(cts, ms, rs, newDetRand([]byte("gamma")))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("n=%d corrupt=%s: invalid batch accepted", n, corrupt)
			}
		}
	}
}

func TestVerifyOpeningsBatchLengthMismatch(t *testing.T) {
	k := DeriveCommitmentKey("batch-test")
	cts, ms, rs := makeOpenings(t, k, 3, []byte("len"))
	if _, err := k.VerifyOpeningsBatch(cts, ms[:2], rs, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := k.VerifyOpeningsBatch(cts, ms, rs[:2], nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// FuzzBatchOpeningVerify checks the defining property of the batch: its
// verdict matches per-element verification (the 2^-128 false-accept slice
// is unreachable for a fuzzer that cannot invert SHA-256).
func FuzzBatchOpeningVerify(f *testing.F) {
	f.Add([]byte("seed"), uint8(8), uint16(0), uint8(0))
	f.Add([]byte("seed2"), uint8(40), uint16(3), uint8(1))
	f.Add([]byte("x"), uint8(1), uint16(1), uint8(2))
	f.Add([]byte("y"), uint8(33), uint16(7), uint8(3))
	f.Fuzz(func(t *testing.T, seed []byte, n uint8, corrupt uint16, mode uint8) {
		if n == 0 || n > 48 {
			t.Skip()
		}
		// Exercise both the fallback and MSM paths regardless of n.
		old := batchVerifyThreshold
		if mode&1 == 0 {
			batchVerifyThreshold = 0
		}
		defer func() { batchVerifyThreshold = old }()

		k := DeriveCommitmentKey("fuzz-batch")
		cts, ms, rs := makeOpenings(t, k, int(n), seed)
		if corrupt != 0 {
			i := int(corrupt) % int(n)
			var delta [8]byte
			binary.BigEndian.PutUint64(delta[:], uint64(corrupt))
			switch mode >> 1 & 1 {
			case 0:
				ms[i] = new(big.Int).Add(ms[i], new(big.Int).SetBytes(delta[:]))
			default:
				rs[i] = new(big.Int).Add(rs[i], big.NewInt(int64(corrupt)))
			}
		}
		want := true
		for i := range cts {
			if !k.VerifyOpening(cts[i], ms[i], rs[i]) {
				want = false
				break
			}
		}
		got, err := k.VerifyOpeningsBatch(cts, ms, rs, newDetRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("batched=%v per-element=%v (n=%d corrupt=%d mode=%d)", got, want, n, corrupt, mode)
		}
	})
}
