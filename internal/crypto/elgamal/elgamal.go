// Package elgamal implements lifted (exponential) ElGamal encryption over
// P-256, used as the additively homomorphic option-encoding commitment
// scheme of the paper (§III-B): the i-th election option is encoded as the
// unit vector e_i and committed to as a vector of ciphertexts that
// element-wise encrypt that vector.
//
// A ciphertext for message m with randomness r under key P is
//
//	(A, B) = (r*G, m*G + r*P).
//
// Used as a commitment, nobody ever decrypts: an opening is the pair (m, r)
// and verification is re-encryption. Ciphertexts add component-wise, so the
// sum of the commitments of the cast votes commits to the element-wise sum
// of the encoded unit vectors — exactly the tally.
//
// The commitment key P is derived by hashing, so no party knows its discrete
// log and the scheme is binding even against the Election Authority.
package elgamal

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"ddemos/internal/crypto/group"
)

// CommitmentKey is the public ElGamal key P used for option-encoding
// commitments.
type CommitmentKey struct {
	P group.Point
}

// DeriveCommitmentKey deterministically derives the commitment key for an
// election. Hash derivation guarantees nobody (including the EA) knows
// log_G(P), which makes commitments binding.
func DeriveCommitmentKey(electionID string) CommitmentKey {
	return CommitmentKey{P: group.HashToPoint("ddemos/v1/elgamal-key", []byte(electionID))}
}

// Ciphertext is a lifted ElGamal ciphertext (A, B).
type Ciphertext struct {
	A, B group.Point
}

// Encrypt produces a ciphertext of integer message m with fresh randomness
// from rnd, returning the ciphertext and the randomness (needed for the
// opening and the zero-knowledge proofs).
func (k CommitmentKey) Encrypt(m *big.Int, rnd io.Reader) (Ciphertext, *big.Int, error) {
	r, err := group.RandScalar(rnd)
	if err != nil {
		return Ciphertext{}, nil, err
	}
	return k.EncryptWith(m, r), r, nil
}

// EncryptWith produces the deterministic ciphertext for message m and
// randomness r.
func (k CommitmentKey) EncryptWith(m, r *big.Int) Ciphertext {
	return Ciphertext{
		A: group.BaseMul(r),
		B: group.BaseMul(m).Add(k.P.Mul(r)),
	}
}

// VerifyOpening checks that ct is an encryption of (m, r).
func (k CommitmentKey) VerifyOpening(ct Ciphertext, m, r *big.Int) bool {
	want := k.EncryptWith(m, r)
	return ct.A.Equal(want.A) && ct.B.Equal(want.B)
}

// Add returns the component-wise sum of two ciphertexts, an encryption of
// the sum of the messages under the sum of the randomness.
func (c Ciphertext) Add(o Ciphertext) Ciphertext {
	return Ciphertext{A: c.A.Add(o.A), B: c.B.Add(o.B)}
}

// Equal reports ciphertext equality.
func (c Ciphertext) Equal(o Ciphertext) bool {
	return c.A.Equal(o.A) && c.B.Equal(o.B)
}

// Bytes returns a canonical encoding (66 bytes: both compressed points).
func (c Ciphertext) Bytes() []byte {
	out := make([]byte, 0, 66)
	out = append(out, c.A.Bytes()...)
	out = append(out, c.B.Bytes()...)
	return out
}

// DecodeCiphertext parses the encoding produced by Bytes. Identity points
// (1 byte) never appear in honest ciphertexts, so only the 33+33 layout is
// accepted.
func DecodeCiphertext(b []byte) (Ciphertext, error) {
	if len(b) != 66 {
		return Ciphertext{}, fmt.Errorf("elgamal: ciphertext encoding must be 66 bytes, got %d", len(b))
	}
	a, err := group.DecodePoint(b[:33])
	if err != nil {
		return Ciphertext{}, err
	}
	bb, err := group.DecodePoint(b[33:])
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{A: a, B: bb}, nil
}

// VectorCiphertext commits to an integer vector (element-wise encryption).
// In D-DEMOS the vector is a unit vector e_i encoding option i.
type VectorCiphertext []Ciphertext

// VectorOpening is the opening of a VectorCiphertext.
type VectorOpening struct {
	Ms []*big.Int // messages
	Rs []*big.Int // randomness
}

// EncryptUnitVector commits to the unit vector of length m with the 1 at
// position hot (0-based).
func (k CommitmentKey) EncryptUnitVector(m, hot int, rnd io.Reader) (VectorCiphertext, VectorOpening, error) {
	if hot < 0 || hot >= m {
		return nil, VectorOpening{}, fmt.Errorf("elgamal: hot index %d out of range [0,%d)", hot, m)
	}
	cts := make(VectorCiphertext, m)
	op := VectorOpening{Ms: make([]*big.Int, m), Rs: make([]*big.Int, m)}
	for j := 0; j < m; j++ {
		msg := big.NewInt(0)
		if j == hot {
			msg = big.NewInt(1)
		}
		ct, r, err := k.Encrypt(msg, rnd)
		if err != nil {
			return nil, VectorOpening{}, err
		}
		cts[j] = ct
		op.Ms[j] = msg
		op.Rs[j] = r
	}
	return cts, op, nil
}

// Add returns the component-wise sum of two vector ciphertexts.
func (v VectorCiphertext) Add(o VectorCiphertext) (VectorCiphertext, error) {
	if len(v) != len(o) {
		return nil, errors.New("elgamal: vector length mismatch")
	}
	out := make(VectorCiphertext, len(v))
	for i := range v {
		out[i] = v[i].Add(o[i])
	}
	return out, nil
}

// VerifyVectorOpening checks an opening against a vector ciphertext.
func (k CommitmentKey) VerifyVectorOpening(v VectorCiphertext, op VectorOpening) bool {
	if len(v) != len(op.Ms) || len(v) != len(op.Rs) {
		return false
	}
	for i := range v {
		if !k.VerifyOpening(v[i], op.Ms[i], op.Rs[i]) {
			return false
		}
	}
	return true
}

// HotIndex returns the position of the single 1 in an opened unit vector, or
// an error if the opening is not a unit vector.
func (op VectorOpening) HotIndex() (int, error) {
	hot := -1
	one := big.NewInt(1)
	for i, m := range op.Ms {
		switch {
		case m.Sign() == 0:
		case m.Cmp(one) == 0:
			if hot != -1 {
				return 0, errors.New("elgamal: more than one hot position")
			}
			hot = i
		default:
			return 0, fmt.Errorf("elgamal: message at %d is not a bit", i)
		}
	}
	if hot == -1 {
		return 0, errors.New("elgamal: all-zero vector")
	}
	return hot, nil
}

// SumOpenings adds openings component-wise (the opening of the sum of the
// corresponding ciphertexts).
func SumOpenings(ops ...VectorOpening) (VectorOpening, error) {
	if len(ops) == 0 {
		return VectorOpening{}, errors.New("elgamal: no openings")
	}
	m := len(ops[0].Ms)
	out := VectorOpening{Ms: make([]*big.Int, m), Rs: make([]*big.Int, m)}
	for j := 0; j < m; j++ {
		out.Ms[j] = new(big.Int)
		out.Rs[j] = new(big.Int)
	}
	for _, op := range ops {
		if len(op.Ms) != m || len(op.Rs) != m {
			return VectorOpening{}, errors.New("elgamal: opening length mismatch")
		}
		for j := 0; j < m; j++ {
			out.Ms[j] = group.AddScalar(out.Ms[j], op.Ms[j])
			out.Rs[j] = group.AddScalar(out.Rs[j], op.Rs[j])
		}
	}
	return out, nil
}
