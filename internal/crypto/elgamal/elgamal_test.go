package elgamal

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"ddemos/internal/crypto/group"
)

var testKey = DeriveCommitmentKey("test-election")

func TestEncryptVerifyOpening(t *testing.T) {
	for _, m := range []int64{0, 1, 2, 1000} {
		ct, r, err := testKey.Encrypt(big.NewInt(m), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if !testKey.VerifyOpening(ct, big.NewInt(m), r) {
			t.Fatalf("valid opening of %d rejected", m)
		}
		if testKey.VerifyOpening(ct, big.NewInt(m+1), r) {
			t.Fatal("wrong message accepted")
		}
		if testKey.VerifyOpening(ct, big.NewInt(m), group.AddScalar(r, big.NewInt(1))) {
			t.Fatal("wrong randomness accepted")
		}
	}
}

func TestKeyDerivationDeterministicAndSeparated(t *testing.T) {
	if !DeriveCommitmentKey("x").P.Equal(DeriveCommitmentKey("x").P) {
		t.Fatal("key derivation must be deterministic")
	}
	if DeriveCommitmentKey("x").P.Equal(DeriveCommitmentKey("y").P) {
		t.Fatal("different elections must have different keys")
	}
}

func TestHomomorphicAddition(t *testing.T) {
	c1, r1, _ := testKey.Encrypt(big.NewInt(3), rand.Reader)
	c2, r2, _ := testKey.Encrypt(big.NewInt(4), rand.Reader)
	sum := c1.Add(c2)
	if !testKey.VerifyOpening(sum, big.NewInt(7), group.AddScalar(r1, r2)) {
		t.Fatal("ciphertext addition is not homomorphic")
	}
}

func TestCiphertextEncodingRoundTrip(t *testing.T) {
	ct, _, _ := testKey.Encrypt(big.NewInt(1), rand.Reader)
	got, err := DecodeCiphertext(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ct) {
		t.Fatal("round trip changed ciphertext")
	}
	if _, err := DecodeCiphertext([]byte{1, 2, 3}); err == nil {
		t.Fatal("short encoding must be rejected")
	}
	bad := ct.Bytes()
	bad[1] ^= 0xff
	if _, err := DecodeCiphertext(bad); err == nil {
		// flipping a byte may still decode to a valid point; only fail if it
		// decodes AND equals the original
		got2, _ := DecodeCiphertext(bad)
		if got2.Equal(ct) {
			t.Fatal("corrupted encoding decoded to original")
		}
	}
}

func TestEncryptUnitVector(t *testing.T) {
	const m = 5
	for hot := 0; hot < m; hot++ {
		v, op, err := testKey.EncryptUnitVector(m, hot, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != m {
			t.Fatalf("want %d ciphertexts, got %d", m, len(v))
		}
		if !testKey.VerifyVectorOpening(v, op) {
			t.Fatal("unit vector opening rejected")
		}
		got, err := op.HotIndex()
		if err != nil {
			t.Fatal(err)
		}
		if got != hot {
			t.Fatalf("hot index %d, want %d", got, hot)
		}
	}
	if _, _, err := testKey.EncryptUnitVector(3, 3, rand.Reader); err == nil {
		t.Fatal("out-of-range hot index must fail")
	}
	if _, _, err := testKey.EncryptUnitVector(3, -1, rand.Reader); err == nil {
		t.Fatal("negative hot index must fail")
	}
}

func TestVectorTallying(t *testing.T) {
	// Simulate 6 voters over 3 options: votes 0,1,1,2,1,0 -> tally [2,3,1].
	const m = 3
	votes := []int{0, 1, 1, 2, 1, 0}
	var agg VectorCiphertext
	var ops []VectorOpening
	for _, v := range votes {
		ct, op, err := testKey.EncryptUnitVector(m, v, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
		if agg == nil {
			agg = ct
			continue
		}
		agg, err = agg.Add(ct)
		if err != nil {
			t.Fatal(err)
		}
	}
	total, err := SumOpenings(ops...)
	if err != nil {
		t.Fatal(err)
	}
	if !testKey.VerifyVectorOpening(agg, total) {
		t.Fatal("aggregate opening rejected")
	}
	want := []int64{2, 3, 1}
	for j, w := range want {
		if total.Ms[j].Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("tally[%d] = %v, want %d", j, total.Ms[j], w)
		}
	}
}

func TestVectorAddLengthMismatch(t *testing.T) {
	v1, _, _ := testKey.EncryptUnitVector(2, 0, rand.Reader)
	v2, _, _ := testKey.EncryptUnitVector(3, 0, rand.Reader)
	if _, err := v1.Add(v2); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestHotIndexRejectsNonUnitVectors(t *testing.T) {
	cases := []VectorOpening{
		{Ms: []*big.Int{big.NewInt(0), big.NewInt(0)}, Rs: []*big.Int{big.NewInt(0), big.NewInt(0)}},
		{Ms: []*big.Int{big.NewInt(1), big.NewInt(1)}, Rs: []*big.Int{big.NewInt(0), big.NewInt(0)}},
		{Ms: []*big.Int{big.NewInt(2), big.NewInt(0)}, Rs: []*big.Int{big.NewInt(0), big.NewInt(0)}},
	}
	for i, op := range cases {
		if _, err := op.HotIndex(); err == nil {
			t.Fatalf("case %d: non-unit vector accepted", i)
		}
	}
}

func TestSumOpeningsValidation(t *testing.T) {
	if _, err := SumOpenings(); err == nil {
		t.Fatal("empty sum must fail")
	}
	a := VectorOpening{Ms: []*big.Int{big.NewInt(1)}, Rs: []*big.Int{big.NewInt(1)}}
	b := VectorOpening{Ms: []*big.Int{big.NewInt(1), big.NewInt(0)}, Rs: []*big.Int{big.NewInt(1), big.NewInt(0)}}
	if _, err := SumOpenings(a, b); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestPropertyHomomorphism(t *testing.T) {
	rng := group.NewDRBG([]byte("elgamal-prop"))
	f := func(a, b uint16) bool {
		ca, ra, err := testKey.Encrypt(big.NewInt(int64(a)), rng)
		if err != nil {
			return false
		}
		cb, rb, err := testKey.Encrypt(big.NewInt(int64(b)), rng)
		if err != nil {
			return false
		}
		return testKey.VerifyOpening(ca.Add(cb), big.NewInt(int64(a)+int64(b)), group.AddScalar(ra, rb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncryptBit(b *testing.B) {
	rng := group.NewDRBG([]byte("bench"))
	one := big.NewInt(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := testKey.Encrypt(one, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyOpening(b *testing.B) {
	ct, r, _ := testKey.Encrypt(big.NewInt(1), rand.Reader)
	one := big.NewInt(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !testKey.VerifyOpening(ct, one, r) {
			b.Fatal("must verify")
		}
	}
}
