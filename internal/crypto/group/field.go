// P-256 base-field arithmetic on 4×64-bit limbs in Montgomery form,
// private to the variable-time multi-scalar multiplication below. The
// standard library's curve API performs every point operation through
// marshal/unmarshal conversions (~7µs per addition on the reference
// machine), which makes any addition-heavy algorithm built on it slower
// than repeated ScalarMult calls; batch verification only pays off with a
// field multiplication in the tens of nanoseconds, hence this dedicated
// implementation.
//
// All functions here are variable-time. They are used exclusively to
// verify public data (commitment openings, audit rows), never with
// secrets, so timing leaks are harmless.
package group

import (
	"encoding/binary"
	"math/big"
	"math/bits"
)

// fe is a field element modulo the P-256 prime p, little-endian limbs,
// kept in Montgomery form (value·2^256 mod p) except where noted.
type fe [4]uint64

// p256P is the prime p = 2^256 - 2^224 + 2^192 + 2^96 - 1 (raw form).
// Its low limb is 2^64-1, so the Montgomery factor -p^{-1} mod 2^64 is 1
// and the reduction step needs no extra multiplication.
var p256P = fe{0xffffffffffffffff, 0x00000000ffffffff, 0x0000000000000000, 0xffffffff00000001}

var (
	feRR  fe // R² mod p: multiply by this to enter Montgomery form
	feOne fe // 1 in Montgomery form (R mod p)
)

func init() {
	p := curve.Params().P
	r2 := new(big.Int).Lsh(big.NewInt(1), 512)
	feRR = feFromSaturated(r2.Mod(r2, p))
	r1 := new(big.Int).Lsh(big.NewInt(1), 256)
	feOne = feFromSaturated(r1.Mod(r1, p))
}

// feFromSaturated loads a big.Int in [0, p) into raw (non-Montgomery) limbs.
func feFromSaturated(v *big.Int) fe {
	var buf [32]byte
	v.FillBytes(buf[:])
	return fe{
		binary.BigEndian.Uint64(buf[24:32]),
		binary.BigEndian.Uint64(buf[16:24]),
		binary.BigEndian.Uint64(buf[8:16]),
		binary.BigEndian.Uint64(buf[0:8]),
	}
}

// feToMont converts a coordinate in [0, p) to Montgomery form.
func feToMont(v *big.Int) fe {
	raw := feFromSaturated(v)
	var out fe
	feMul(&out, &raw, &feRR)
	return out
}

// feToBig converts a Montgomery-form element back to a big.Int.
func feToBig(x *fe) *big.Int {
	one := fe{1}
	var raw fe
	feMul(&raw, x, &one) // Montgomery-multiply by 1 strips the R factor
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:8], raw[3])
	binary.BigEndian.PutUint64(buf[8:16], raw[2])
	binary.BigEndian.PutUint64(buf[16:24], raw[1])
	binary.BigEndian.PutUint64(buf[24:32], raw[0])
	return new(big.Int).SetBytes(buf[:])
}

// feMul sets z = x·y·R^{-1} mod p (Montgomery multiplication). Fully
// unrolled: Comba column products, then four REDC rounds. The reduction
// exploits p's limb structure — the quotient digit is the low limb
// (-p^{-1} ≡ 1 mod 2^64) and p[2] = 0 drops one multiplication per round.
func feMul(z, x, y *fe) {
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	y0, y1, y2, y3 := y[0], y[1], y[2], y[3]

	var t0, t1, t2, t3, t4, t5, t6, t7 uint64
	var a0, a1, a2, c uint64
	var hi, lo uint64

	// column 0
	a0, t0 = bits.Mul64(x0, y0)
	a1, a2 = 0, 0

	// column 1: x0·y1 + x1·y0
	hi, lo = bits.Mul64(x0, y1)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x1, y0)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	t1, a0, a1, a2 = a0, a1, a2, 0

	// column 2: x0·y2 + x1·y1 + x2·y0
	hi, lo = bits.Mul64(x0, y2)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x1, y1)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x2, y0)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	t2, a0, a1, a2 = a0, a1, a2, 0

	// column 3: x0·y3 + x1·y2 + x2·y1 + x3·y0
	hi, lo = bits.Mul64(x0, y3)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x1, y2)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x2, y1)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x3, y0)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	t3, a0, a1, a2 = a0, a1, a2, 0

	// column 4: x1·y3 + x2·y2 + x3·y1
	hi, lo = bits.Mul64(x1, y3)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x2, y2)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x3, y1)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	t4, a0, a1, a2 = a0, a1, a2, 0

	// column 5: x2·y3 + x3·y2
	hi, lo = bits.Mul64(x2, y3)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	hi, lo = bits.Mul64(x3, y2)
	a0, c = bits.Add64(a0, lo, 0)
	a1, c = bits.Add64(a1, hi, c)
	a2 += c
	t5, a0, a1 = a0, a1, a2

	// column 6: x3·y3
	hi, lo = bits.Mul64(x3, y3)
	a0, c = bits.Add64(a0, lo, 0)
	a1, _ = bits.Add64(a1, hi, c)
	t6, t7 = a0, a1

	// REDC rounds. Each round i adds m·p at limb offset i (m = t[i]),
	// zeroing t[i]; p = {2^64-1, 2^32-1, 0, 2^64-2^32+1}.
	var extra, carry uint64

	// round 0: m = t0
	m := t0
	hi, lo = bits.Mul64(m, p256P[0])
	_, c = bits.Add64(t0, lo, 0)
	hi += c
	carry = hi
	hi, lo = bits.Mul64(m, p256P[1])
	t1, c = bits.Add64(t1, lo, 0)
	hi += c
	t1, c = bits.Add64(t1, carry, 0)
	hi += c
	carry = hi
	t2, carry = bits.Add64(t2, carry, 0)
	hi, lo = bits.Mul64(m, p256P[3])
	t3, c = bits.Add64(t3, lo, 0)
	hi += c
	t3, c = bits.Add64(t3, carry, 0)
	hi += c
	carry = hi
	t4, c = bits.Add64(t4, carry, 0)
	t5, c = bits.Add64(t5, 0, c)
	t6, c = bits.Add64(t6, 0, c)
	t7, c = bits.Add64(t7, 0, c)
	extra += c

	// round 1: m = t1
	m = t1
	hi, lo = bits.Mul64(m, p256P[0])
	_, c = bits.Add64(t1, lo, 0)
	hi += c
	carry = hi
	hi, lo = bits.Mul64(m, p256P[1])
	t2, c = bits.Add64(t2, lo, 0)
	hi += c
	t2, c = bits.Add64(t2, carry, 0)
	hi += c
	carry = hi
	t3, carry = bits.Add64(t3, carry, 0)
	hi, lo = bits.Mul64(m, p256P[3])
	t4, c = bits.Add64(t4, lo, 0)
	hi += c
	t4, c = bits.Add64(t4, carry, 0)
	hi += c
	carry = hi
	t5, c = bits.Add64(t5, carry, 0)
	t6, c = bits.Add64(t6, 0, c)
	t7, c = bits.Add64(t7, 0, c)
	extra += c

	// round 2: m = t2
	m = t2
	hi, lo = bits.Mul64(m, p256P[0])
	_, c = bits.Add64(t2, lo, 0)
	hi += c
	carry = hi
	hi, lo = bits.Mul64(m, p256P[1])
	t3, c = bits.Add64(t3, lo, 0)
	hi += c
	t3, c = bits.Add64(t3, carry, 0)
	hi += c
	carry = hi
	t4, carry = bits.Add64(t4, carry, 0)
	hi, lo = bits.Mul64(m, p256P[3])
	t5, c = bits.Add64(t5, lo, 0)
	hi += c
	t5, c = bits.Add64(t5, carry, 0)
	hi += c
	carry = hi
	t6, c = bits.Add64(t6, carry, 0)
	t7, c = bits.Add64(t7, 0, c)
	extra += c

	// round 3: m = t3
	m = t3
	hi, lo = bits.Mul64(m, p256P[0])
	_, c = bits.Add64(t3, lo, 0)
	hi += c
	carry = hi
	hi, lo = bits.Mul64(m, p256P[1])
	t4, c = bits.Add64(t4, lo, 0)
	hi += c
	t4, c = bits.Add64(t4, carry, 0)
	hi += c
	carry = hi
	t5, carry = bits.Add64(t5, carry, 0)
	hi, lo = bits.Mul64(m, p256P[3])
	t6, c = bits.Add64(t6, lo, 0)
	hi += c
	t6, c = bits.Add64(t6, carry, 0)
	hi += c
	carry = hi
	t7, c = bits.Add64(t7, carry, 0)
	extra += c

	// The REDC output t4..t7 (+ extra·2^256) is < 2p; subtract p once when
	// needed (extra == 1 means the value certainly exceeds p).
	var b uint64
	var s fe
	s[0], b = bits.Sub64(t4, p256P[0], 0)
	s[1], b = bits.Sub64(t5, p256P[1], b)
	s[2], b = bits.Sub64(t6, p256P[2], b)
	s[3], b = bits.Sub64(t7, p256P[3], b)
	if extra != 0 || b == 0 {
		*z = s
	} else {
		*z = fe{t4, t5, t6, t7}
	}
}

// feSqr sets z = x² (no dedicated squaring formula; feMul is fast enough).
func feSqr(z, x *fe) { feMul(z, x, x) }

// feAdd sets z = x + y mod p.
func feAdd(z, x, y *fe) {
	var c uint64
	var o fe
	o[0], c = bits.Add64(x[0], y[0], 0)
	o[1], c = bits.Add64(x[1], y[1], c)
	o[2], c = bits.Add64(x[2], y[2], c)
	o[3], c = bits.Add64(x[3], y[3], c)
	var b uint64
	var s fe
	s[0], b = bits.Sub64(o[0], p256P[0], 0)
	s[1], b = bits.Sub64(o[1], p256P[1], b)
	s[2], b = bits.Sub64(o[2], p256P[2], b)
	s[3], b = bits.Sub64(o[3], p256P[3], b)
	if c != 0 || b == 0 {
		*z = s
	} else {
		*z = o
	}
}

// feSub sets z = x - y mod p.
func feSub(z, x, y *fe) {
	var b uint64
	var o fe
	o[0], b = bits.Sub64(x[0], y[0], 0)
	o[1], b = bits.Sub64(x[1], y[1], b)
	o[2], b = bits.Sub64(x[2], y[2], b)
	o[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		o[0], c = bits.Add64(o[0], p256P[0], 0)
		o[1], c = bits.Add64(o[1], p256P[1], c)
		o[2], c = bits.Add64(o[2], p256P[2], c)
		o[3], _ = bits.Add64(o[3], p256P[3], c)
	}
	*z = o
}

// feIsZero reports x == 0 (works in any form; zero is zero in both).
func feIsZero(x *fe) bool { return x[0]|x[1]|x[2]|x[3] == 0 }
