// Package group wraps the NIST P-256 elliptic-curve group with the scalar
// and point arithmetic the rest of the system needs: lifted-ElGamal
// commitments, Pedersen commitments, Shamir sharing over the scalar field,
// and hash-to-point derivation of independent generators.
//
// All scalar arithmetic is performed modulo the group order q. Points are
// immutable values; the identity (point at infinity) is represented by the
// zero Point.
package group

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	curve = elliptic.P256()
	// q is the group order (order of the base point).
	q = curve.Params().N

	// ErrInvalidPoint is returned when decoding bytes that are not a valid
	// compressed P-256 point.
	ErrInvalidPoint = errors.New("group: invalid point encoding")
	// ErrInvalidScalar is returned when decoding bytes that are not a valid
	// scalar in [0, q).
	ErrInvalidScalar = errors.New("group: invalid scalar encoding")
)

// Order returns a copy of the group order q.
func Order() *big.Int { return new(big.Int).Set(q) }

// Point is an element of the P-256 group. The zero value is the identity.
type Point struct {
	x, y *big.Int
}

// IsIdentity reports whether p is the point at infinity.
func (p Point) IsIdentity() bool { return p.x == nil || p.x.Sign() == 0 && p.y.Sign() == 0 }

// Equal reports whether two points are the same group element.
func (p Point) Equal(r Point) bool {
	if p.IsIdentity() || r.IsIdentity() {
		return p.IsIdentity() == r.IsIdentity()
	}
	return p.x.Cmp(r.x) == 0 && p.y.Cmp(r.y) == 0
}

// Add returns p + r.
func (p Point) Add(r Point) Point {
	if p.IsIdentity() {
		return r
	}
	if r.IsIdentity() {
		return p
	}
	// elliptic.Curve.Add does not handle P + (-P); check explicitly.
	if p.x.Cmp(r.x) == 0 && p.y.Cmp(r.y) != 0 {
		return Point{}
	}
	x, y := curve.Add(p.x, p.y, r.x, r.y)
	return Point{x, y}
}

// Neg returns -p.
func (p Point) Neg() Point {
	if p.IsIdentity() {
		return p
	}
	ny := new(big.Int).Sub(curve.Params().P, p.y)
	ny.Mod(ny, curve.Params().P)
	return Point{new(big.Int).Set(p.x), ny}
}

// Sub returns p - r.
func (p Point) Sub(r Point) Point { return p.Add(r.Neg()) }

// Mul returns k*p for scalar k.
func (p Point) Mul(k *big.Int) Point {
	if p.IsIdentity() {
		return Point{}
	}
	kk := new(big.Int).Mod(k, q)
	if kk.Sign() == 0 {
		return Point{}
	}
	x, y := curve.ScalarMult(p.x, p.y, kk.Bytes())
	return Point{x, y}
}

// Bytes returns the compressed SEC1 encoding of p. The identity encodes as a
// single zero byte.
func (p Point) Bytes() []byte {
	if p.IsIdentity() {
		return []byte{0}
	}
	return elliptic.MarshalCompressed(curve, p.x, p.y)
}

// String implements fmt.Stringer for debugging output.
func (p Point) String() string {
	if p.IsIdentity() {
		return "Point(identity)"
	}
	return fmt.Sprintf("Point(%x…)", p.Bytes()[:8])
}

// GobEncode implements gob.GobEncoder, so initialization data containing
// points can be serialized for on-disk distribution and HTTP transport.
func (p Point) GobEncode() ([]byte, error) { return p.Bytes(), nil }

// GobDecode implements gob.GobDecoder.
func (p *Point) GobDecode(b []byte) error {
	q, err := DecodePoint(b)
	if err != nil {
		return err
	}
	*p = q
	return nil
}

// DecodePoint parses the compressed encoding produced by Point.Bytes.
func DecodePoint(b []byte) (Point, error) {
	if len(b) == 1 && b[0] == 0 {
		return Point{}, nil
	}
	x, y := elliptic.UnmarshalCompressed(curve, b)
	if x == nil {
		return Point{}, ErrInvalidPoint
	}
	return Point{x, y}, nil
}

// Base returns the standard base point G.
func Base() Point {
	return Point{new(big.Int).Set(curve.Params().Gx), new(big.Int).Set(curve.Params().Gy)}
}

// BaseMul returns k*G using the optimized fixed-base multiplication.
func BaseMul(k *big.Int) Point {
	kk := new(big.Int).Mod(k, q)
	if kk.Sign() == 0 {
		return Point{}
	}
	x, y := curve.ScalarBaseMult(kk.Bytes())
	return Point{x, y}
}

// HashToPoint deterministically derives a group element from domain/msg by
// try-and-increment on SHA-256 outputs. Nobody knows the discrete log of the
// result with respect to G (or any other hash-derived point), which makes it
// suitable as an independent generator or an ElGamal commitment key.
func HashToPoint(domain string, msg []byte) Point {
	h := sha256.New()
	var ctr [4]byte
	for i := uint32(0); ; i++ {
		h.Reset()
		binary.BigEndian.PutUint32(ctr[:], i)
		h.Write([]byte(domain))
		h.Write(msg)
		h.Write(ctr[:])
		digest := h.Sum(nil)
		// Interpret as x coordinate candidate; attempt both y parities.
		buf := make([]byte, 33)
		buf[0] = 2 + byte(i&1)
		copy(buf[1:], digest)
		x, y := elliptic.UnmarshalCompressed(curve, buf)
		if x != nil {
			return Point{x, y}
		}
	}
}

// altBase is the fixed second generator H used for Pedersen commitments.
var altBase = HashToPoint("ddemos/v1/pedersen-h", nil)

// AltBase returns the system-wide second generator H with unknown discrete
// log relative to G.
func AltBase() Point { return altBase }

// RandScalar returns a uniform scalar in [0, q) read from rnd.
func RandScalar(rnd io.Reader) (*big.Int, error) {
	k, err := rand.Int(rnd, q)
	if err != nil {
		return nil, fmt.Errorf("group: sampling scalar: %w", err)
	}
	return k, nil
}

// HashToScalar derives a scalar from the given byte chunks, domain separated.
// The output is uniform enough for Fiat–Shamir style challenges: we hash to
// 384 bits and reduce, making the bias negligible.
func HashToScalar(domain string, chunks ...[]byte) *big.Int {
	h := sha256.New()
	h.Write([]byte(domain))
	for _, c := range chunks {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(c)))
		h.Write(n[:])
		h.Write(c)
	}
	d1 := h.Sum(nil)
	h.Reset()
	h.Write([]byte("ddemos/expand"))
	h.Write(d1)
	d2 := h.Sum(nil)
	wide := append(d1, d2[:16]...)
	return new(big.Int).Mod(new(big.Int).SetBytes(wide), q)
}

// ScalarBytes returns the canonical 32-byte big-endian encoding of k mod q.
func ScalarBytes(k *big.Int) []byte {
	kk := new(big.Int).Mod(k, q)
	out := make([]byte, 32)
	kk.FillBytes(out)
	return out
}

// DecodeScalar parses a canonical 32-byte scalar encoding.
func DecodeScalar(b []byte) (*big.Int, error) {
	if len(b) != 32 {
		return nil, ErrInvalidScalar
	}
	k := new(big.Int).SetBytes(b)
	if k.Cmp(q) >= 0 {
		return nil, ErrInvalidScalar
	}
	return k, nil
}

// Scalar arithmetic helpers (all mod q).

// AddScalar returns a+b mod q.
func AddScalar(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Add(a, b), q)
}

// SubScalar returns a-b mod q.
func SubScalar(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Sub(a, b), q)
}

// MulScalar returns a*b mod q.
func MulScalar(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), q)
}

// NegScalar returns -a mod q.
func NegScalar(a *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Neg(a), q)
}

// InvScalar returns a^-1 mod q, or an error if a ≡ 0.
func InvScalar(a *big.Int) (*big.Int, error) {
	aa := new(big.Int).Mod(a, q)
	if aa.Sign() == 0 {
		return nil, errors.New("group: inverse of zero scalar")
	}
	return new(big.Int).ModInverse(aa, q), nil
}
