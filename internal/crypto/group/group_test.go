package group

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBasePointOnCurve(t *testing.T) {
	g := Base()
	if g.IsIdentity() {
		t.Fatal("base point must not be identity")
	}
	if !g.Equal(Base()) {
		t.Fatal("Base() not stable")
	}
}

func TestAddSubNeg(t *testing.T) {
	k1, _ := RandScalar(rand.Reader)
	k2, _ := RandScalar(rand.Reader)
	p1 := BaseMul(k1)
	p2 := BaseMul(k2)

	sum := p1.Add(p2)
	want := BaseMul(AddScalar(k1, k2))
	if !sum.Equal(want) {
		t.Fatal("point addition does not match scalar addition")
	}
	if !sum.Sub(p2).Equal(p1) {
		t.Fatal("subtraction is not inverse of addition")
	}
	if !p1.Add(p1.Neg()).IsIdentity() {
		t.Fatal("p + (-p) must be identity")
	}
}

func TestIdentityLaws(t *testing.T) {
	var id Point
	k, _ := RandScalar(rand.Reader)
	p := BaseMul(k)
	if !id.Add(p).Equal(p) || !p.Add(id).Equal(p) {
		t.Fatal("identity must be neutral for addition")
	}
	if !p.Mul(big.NewInt(0)).IsIdentity() {
		t.Fatal("0*p must be identity")
	}
	if !id.Mul(k).IsIdentity() {
		t.Fatal("k*identity must be identity")
	}
}

func TestMulMatchesRepeatedAdd(t *testing.T) {
	p := Base()
	acc := Point{}
	for i := 1; i <= 8; i++ {
		acc = acc.Add(p)
		if !acc.Equal(Base().Mul(big.NewInt(int64(i)))) {
			t.Fatalf("k=%d: repeated addition disagrees with Mul", i)
		}
	}
}

func TestBaseMulMatchesMul(t *testing.T) {
	for i := 0; i < 16; i++ {
		k, _ := RandScalar(rand.Reader)
		if !BaseMul(k).Equal(Base().Mul(k)) {
			t.Fatal("BaseMul disagrees with generic Mul")
		}
	}
}

func TestPointEncodingRoundTrip(t *testing.T) {
	cases := []Point{{}, Base(), AltBase()}
	k, _ := RandScalar(rand.Reader)
	cases = append(cases, BaseMul(k))
	for _, p := range cases {
		got, err := DecodePoint(p.Bytes())
		if err != nil {
			t.Fatalf("decode(%v): %v", p, err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip changed point %v", p)
		}
	}
}

func TestDecodePointRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {2, 3}, bytes.Repeat([]byte{0xff}, 33)} {
		if _, err := DecodePoint(b); err == nil {
			t.Fatalf("decode(%x) should fail", b)
		}
	}
}

func TestScalarEncodingRoundTrip(t *testing.T) {
	for i := 0; i < 16; i++ {
		k, _ := RandScalar(rand.Reader)
		got, err := DecodeScalar(ScalarBytes(k))
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(k) != 0 {
			t.Fatal("scalar round trip mismatch")
		}
	}
	// ScalarBytes reduces mod q, so q encodes as 0 and decodes successfully.
	zero, err := DecodeScalar(ScalarBytes(Order()))
	if err != nil || zero.Sign() != 0 {
		t.Fatal("q must reduce to the zero scalar")
	}
}

func TestDecodeScalarRejectsOutOfRange(t *testing.T) {
	raw := make([]byte, 32)
	Order().FillBytes(raw)
	if _, err := DecodeScalar(raw); err == nil {
		t.Fatal("scalar >= q must be rejected")
	}
	if _, err := DecodeScalar([]byte{1, 2, 3}); err == nil {
		t.Fatal("short encoding must be rejected")
	}
}

func TestAltBaseIndependent(t *testing.T) {
	if AltBase().Equal(Base()) {
		t.Fatal("H must differ from G")
	}
	if AltBase().IsIdentity() {
		t.Fatal("H must not be identity")
	}
	if !AltBase().Equal(HashToPoint("ddemos/v1/pedersen-h", nil)) {
		t.Fatal("H must be deterministic")
	}
}

func TestHashToPointDomainSeparation(t *testing.T) {
	p1 := HashToPoint("a", []byte("x"))
	p2 := HashToPoint("b", []byte("x"))
	p3 := HashToPoint("a", []byte("y"))
	if p1.Equal(p2) || p1.Equal(p3) {
		t.Fatal("different domains/messages must give different points")
	}
}

func TestHashToScalarStable(t *testing.T) {
	a := HashToScalar("d", []byte("m1"), []byte("m2"))
	b := HashToScalar("d", []byte("m1"), []byte("m2"))
	if a.Cmp(b) != 0 {
		t.Fatal("HashToScalar must be deterministic")
	}
	// Length prefixing: ("ab","c") != ("a","bc").
	c := HashToScalar("d", []byte("ab"), []byte("c"))
	d := HashToScalar("d", []byte("a"), []byte("bc"))
	if c.Cmp(d) == 0 {
		t.Fatal("chunk boundaries must be domain separated")
	}
}

func TestScalarFieldProperties(t *testing.T) {
	f := func(a0, b0, c0 int64) bool {
		a, b, c := big.NewInt(a0), big.NewInt(b0), big.NewInt(c0)
		// distributivity: a*(b+c) == a*b + a*c (mod q)
		left := MulScalar(a, AddScalar(b, c))
		right := AddScalar(MulScalar(a, b), MulScalar(a, c))
		return left.Cmp(right) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvScalar(t *testing.T) {
	k, _ := RandScalar(rand.Reader)
	if k.Sign() == 0 {
		k = big.NewInt(1)
	}
	inv, err := InvScalar(k)
	if err != nil {
		t.Fatal(err)
	}
	if MulScalar(k, inv).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("k * k^-1 != 1")
	}
	if _, err := InvScalar(big.NewInt(0)); err == nil {
		t.Fatal("inverse of zero must fail")
	}
}

func TestDRBGDeterministic(t *testing.T) {
	a := NewDRBG([]byte("seed"))
	b := NewDRBG([]byte("seed"))
	ba := make([]byte, 100)
	bb := make([]byte, 100)
	if _, err := a.Read(ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed must give same stream")
	}
	c := NewDRBG([]byte("other"))
	bc := make([]byte, 100)
	if _, err := c.Read(bc); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba, bc) {
		t.Fatal("different seeds must differ")
	}
}

func TestDRBGScalarSampling(t *testing.T) {
	d := NewDRBG([]byte("scalars"))
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		k, err := RandScalar(d)
		if err != nil {
			t.Fatal(err)
		}
		s := string(ScalarBytes(k))
		if seen[s] {
			t.Fatal("duplicate scalar from DRBG")
		}
		seen[s] = true
	}
}

func BenchmarkBaseMul(b *testing.B) {
	k, _ := RandScalar(rand.Reader)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BaseMul(k)
	}
}

func BenchmarkPointMul(b *testing.B) {
	k, _ := RandScalar(rand.Reader)
	p := AltBase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Mul(k)
	}
}
