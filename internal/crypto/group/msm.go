// Variable-time multi-scalar multiplication (Pippenger's bucket method)
// over Jacobian coordinates. This is the engine behind batched opening
// verification: one Σ γᵢ·Pᵢ evaluation replaces hundreds of independent
// ScalarMult calls, and the Jacobian formulas amortize the per-operation
// inversion the affine API pays on every Add.
package group

import "math/big"

// jacPoint is a point in Jacobian coordinates (X/Z², Y/Z³) with
// Montgomery-form field elements. The point at infinity has Z = 0.
type jacPoint struct {
	x, y, z fe
}

func (p *jacPoint) isInf() bool { return feIsZero(&p.z) }

// double sets p = 2p ("dbl-2001-b" for a = -3, 3M + 5S).
func (p *jacPoint) double() {
	if p.isInf() {
		return
	}
	var delta, gamma, beta, alpha, t1, t2 fe
	feSqr(&delta, &p.z)
	feSqr(&gamma, &p.y)
	feMul(&beta, &p.x, &gamma)
	feSub(&t1, &p.x, &delta)
	feAdd(&t2, &p.x, &delta)
	feMul(&alpha, &t1, &t2)
	feAdd(&t1, &alpha, &alpha)
	feAdd(&alpha, &t1, &alpha) // alpha = 3(X-δ)(X+δ)

	var z3 fe
	feAdd(&z3, &p.y, &p.z)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &gamma)
	feSub(&z3, &z3, &delta)

	var x3, t8 fe
	feSqr(&x3, &alpha)
	feAdd(&t8, &beta, &beta) // 2β
	feAdd(&t8, &t8, &t8)     // 4β
	beta4 := t8
	feAdd(&t8, &t8, &t8) // 8β
	feSub(&x3, &x3, &t8)

	var y3 fe
	feSub(&t2, &beta4, &x3)
	feMul(&y3, &alpha, &t2)
	feSqr(&t2, &gamma)
	feAdd(&t2, &t2, &t2)
	feAdd(&t2, &t2, &t2)
	feAdd(&t2, &t2, &t2) // 8γ²
	feSub(&y3, &y3, &t2)

	p.x, p.y, p.z = x3, y3, z3
}

// addMixed sets p = p + (ax, ay) where the addend is affine in Montgomery
// form ("madd-2007-bl", 7M + 4S).
func (p *jacPoint) addMixed(ax, ay *fe) {
	if p.isInf() {
		p.x, p.y, p.z = *ax, *ay, feOne
		return
	}
	var z1z1, u2, s2, h fe
	feSqr(&z1z1, &p.z)
	feMul(&u2, ax, &z1z1)
	feMul(&s2, ay, &p.z)
	feMul(&s2, &s2, &z1z1)
	feSub(&h, &u2, &p.x)
	if feIsZero(&h) {
		if s2 == p.y {
			p.double()
			return
		}
		p.z = fe{} // P + (-P)
		return
	}
	var hh, i, j, r, v fe
	feSqr(&hh, &h)
	feAdd(&i, &hh, &hh)
	feAdd(&i, &i, &i) // 4H²
	feMul(&j, &h, &i)
	feSub(&r, &s2, &p.y)
	feAdd(&r, &r, &r)
	feMul(&v, &p.x, &i)

	var x3, y3, z3, t fe
	feSqr(&x3, &r)
	feSub(&x3, &x3, &j)
	feSub(&x3, &x3, &v)
	feSub(&x3, &x3, &v)
	feSub(&t, &v, &x3)
	feMul(&y3, &r, &t)
	feMul(&t, &p.y, &j)
	feSub(&y3, &y3, &t)
	feSub(&y3, &y3, &t)
	feAdd(&z3, &p.z, &h)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &z1z1)
	feSub(&z3, &z3, &hh)

	p.x, p.y, p.z = x3, y3, z3
}

// add sets p = p + q ("add-2007-bl", 11M + 5S).
func (p *jacPoint) add(q *jacPoint) {
	if q.isInf() {
		return
	}
	if p.isInf() {
		*p = *q
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, r fe
	feSqr(&z1z1, &p.z)
	feSqr(&z2z2, &q.z)
	feMul(&u1, &p.x, &z2z2)
	feMul(&u2, &q.x, &z1z1)
	feMul(&s1, &p.y, &q.z)
	feMul(&s1, &s1, &z2z2)
	feMul(&s2, &q.y, &p.z)
	feMul(&s2, &s2, &z1z1)
	feSub(&h, &u2, &u1)
	if feIsZero(&h) {
		if s1 == s2 {
			p.double()
			return
		}
		p.z = fe{} // P + (-P)
		return
	}
	var i, j, v fe
	feAdd(&i, &h, &h)
	feSqr(&i, &i) // (2H)²
	feMul(&j, &h, &i)
	feSub(&r, &s2, &s1)
	feAdd(&r, &r, &r)
	feMul(&v, &u1, &i)

	var x3, y3, z3, t fe
	feSqr(&x3, &r)
	feSub(&x3, &x3, &j)
	feSub(&x3, &x3, &v)
	feSub(&x3, &x3, &v)
	feSub(&t, &v, &x3)
	feMul(&y3, &r, &t)
	feMul(&t, &s1, &j)
	feAdd(&t, &t, &t)
	feSub(&y3, &y3, &t)
	feAdd(&z3, &p.z, &q.z)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &z1z1)
	feSub(&z3, &z3, &z2z2)
	feMul(&z3, &z3, &h)

	p.x, p.y, p.z = x3, y3, z3
}

// toAffine converts back to the package's affine representation with a
// single modular inversion.
func (p *jacPoint) toAffine() Point {
	if p.isInf() {
		return Point{}
	}
	pm := curve.Params().P
	zb := feToBig(&p.z)
	zi := new(big.Int).ModInverse(zb, pm)
	zi2 := new(big.Int).Mod(new(big.Int).Mul(zi, zi), pm)
	zi3 := new(big.Int).Mod(new(big.Int).Mul(zi2, zi), pm)
	x := new(big.Int).Mod(new(big.Int).Mul(feToBig(&p.x), zi2), pm)
	y := new(big.Int).Mod(new(big.Int).Mul(feToBig(&p.y), zi3), pm)
	return Point{x: x, y: y}
}

// msmWindow picks the Pippenger window width for n points.
func msmWindow(n int) int {
	switch {
	case n < 16:
		return 3
	case n < 64:
		return 4
	case n < 256:
		return 6
	case n < 1024:
		return 7
	default:
		return 8
	}
}

// digit extracts c bits of k starting at bit position start.
func msmDigit(k *[4]uint64, start, c int) uint64 {
	limb := start >> 6
	off := start & 63
	d := k[limb] >> uint(off)
	if off+c > 64 && limb+1 < 4 {
		d |= k[limb+1] << uint(64-off)
	}
	return d & (1<<uint(c) - 1)
}

// MultiScalarMulVartime computes Σ scalars[i]·points[i] over the shorter of
// the two slices. Scalars are reduced modulo the group order; identity
// points and zero scalars are skipped. The implementation is
// variable-time and must only be used to verify public data — never with
// secret scalars.
func MultiScalarMulVartime(points []Point, scalars []*big.Int) Point {
	n := len(points)
	if len(scalars) < n {
		n = len(scalars)
	}
	type entry struct {
		ax, ay fe
		k      [4]uint64
	}
	entries := make([]entry, 0, n)
	maxBits := 0
	for i := 0; i < n; i++ {
		if points[i].IsIdentity() {
			continue
		}
		k := scalars[i]
		if k.Sign() < 0 || k.Cmp(q) >= 0 {
			k = new(big.Int).Mod(k, q)
		}
		if k.Sign() == 0 {
			continue
		}
		var e entry
		e.ax = feToMont(points[i].x)
		e.ay = feToMont(points[i].y)
		raw := feFromSaturated(k) // scalar < q < 2^256: limbs only, no field semantics
		e.k = [4]uint64(raw)
		if bl := k.BitLen(); bl > maxBits {
			maxBits = bl
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return Point{}
	}

	c := msmWindow(len(entries))
	buckets := make([]jacPoint, 1<<uint(c)-1)
	var acc jacPoint
	for start := ((maxBits+c-1)/c - 1) * c; start >= 0; start -= c {
		for i := 0; i < c; i++ {
			acc.double()
		}
		for i := range buckets {
			buckets[i] = jacPoint{}
		}
		for ei := range entries {
			if d := msmDigit(&entries[ei].k, start, c); d != 0 {
				buckets[d-1].addMixed(&entries[ei].ax, &entries[ei].ay)
			}
		}
		// Σ d·bucket[d] via suffix sums: running accumulates the suffix,
		// sum accumulates Σ running.
		var running, sum jacPoint
		for d := len(buckets) - 1; d >= 0; d-- {
			running.add(&buckets[d])
			sum.add(&running)
		}
		acc.add(&sum)
	}
	return acc.toAffine()
}
