package group

import (
	"crypto/sha256"
	"math/big"
	"testing"
)

// detRand yields deterministic pseudo-random bytes for test vectors.
type detRand struct {
	state [32]byte
	buf   []byte
}

func newDetRand(seed string) *detRand {
	return &detRand{state: sha256.Sum256([]byte(seed))}
}

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		if len(d.buf) == 0 {
			d.state = sha256.Sum256(d.state[:])
			d.buf = append(d.buf[:0], d.state[:]...)
		}
		p[i] = d.buf[0]
		d.buf = d.buf[1:]
	}
	return len(p), nil
}

func TestFieldArithmeticMatchesBigInt(t *testing.T) {
	p := curve.Params().P
	rnd := newDetRand("field-diff")
	vals := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
	}
	for i := 0; i < 20; i++ {
		v, err := RandScalar(rnd)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v.Mod(v, p))
	}
	for i, a := range vals {
		am := feToMont(a)
		if got := feToBig(&am); got.Cmp(a) != 0 {
			t.Fatalf("roundtrip %d: got %v want %v", i, got, a)
		}
		for j, b := range vals {
			bm := feToMont(b)
			var s, d, m fe
			feAdd(&s, &am, &bm)
			feSub(&d, &am, &bm)
			feMul(&m, &am, &bm)
			wantS := new(big.Int).Mod(new(big.Int).Add(a, b), p)
			wantD := new(big.Int).Mod(new(big.Int).Sub(a, b), p)
			wantM := new(big.Int).Mod(new(big.Int).Mul(a, b), p)
			if got := feToBig(&s); got.Cmp(wantS) != 0 {
				t.Fatalf("add %d+%d: got %v want %v", i, j, got, wantS)
			}
			if got := feToBig(&d); got.Cmp(wantD) != 0 {
				t.Fatalf("sub %d-%d: got %v want %v", i, j, got, wantD)
			}
			if got := feToBig(&m); got.Cmp(wantM) != 0 {
				t.Fatalf("mul %d*%d: got %v want %v", i, j, got, wantM)
			}
		}
	}
}

func TestJacobianMatchesAffine(t *testing.T) {
	rnd := newDetRand("jacobian-diff")
	pts := make([]Point, 6)
	for i := range pts {
		k, err := RandScalar(rnd)
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = BaseMul(k)
	}
	for i, a := range pts {
		var ja jacPoint
		ja.x, ja.y, ja.z = feToMont(a.x), feToMont(a.y), feOne

		dbl := ja
		dbl.double()
		if got, want := dbl.toAffine(), a.Add(a); !got.Equal(want) {
			t.Fatalf("double %d mismatch", i)
		}
		for j, b := range pts {
			ax, ay := feToMont(b.x), feToMont(b.y)
			mix := ja
			mix.addMixed(&ax, &ay)
			want := a.Add(b)
			if got := mix.toAffine(); !got.Equal(want) {
				t.Fatalf("addMixed %d+%d mismatch", i, j)
			}
			var jb jacPoint
			jb.x, jb.y, jb.z = feToMont(b.x), feToMont(b.y), feOne
			// Give the operands distinct Z to exercise the general path.
			gen := ja
			gen.double()
			gen.add(&jb)
			if got, want := gen.toAffine(), a.Add(a).Add(b); !got.Equal(want) {
				t.Fatalf("add %d+%d mismatch", i, j)
			}
		}
		// P + (-P) must hit infinity in both formulas.
		neg := a.Neg()
		nx, ny := feToMont(neg.x), feToMont(neg.y)
		inf := ja
		inf.addMixed(&nx, &ny)
		if !inf.isInf() {
			t.Fatalf("addMixed P+(-P) not infinity")
		}
		var jn jacPoint
		jn.x, jn.y, jn.z = nx, ny, feOne
		inf2 := ja
		inf2.add(&jn)
		if !inf2.isInf() {
			t.Fatalf("add P+(-P) not infinity")
		}
	}
}

func msmNaive(points []Point, scalars []*big.Int) Point {
	var acc Point
	for i := range points {
		acc = acc.Add(points[i].Mul(scalars[i]))
	}
	return acc
}

func TestMultiScalarMulVartimeMatchesNaive(t *testing.T) {
	rnd := newDetRand("msm-diff")
	for _, n := range []int{1, 2, 3, 7, 17, 40, 65, 130} {
		points := make([]Point, n)
		scalars := make([]*big.Int, n)
		for i := range points {
			k, err := RandScalar(rnd)
			if err != nil {
				t.Fatal(err)
			}
			points[i] = BaseMul(k)
			s, err := RandScalar(rnd)
			if err != nil {
				t.Fatal(err)
			}
			scalars[i] = s
		}
		// Fold in edge cases: identity point, zero scalar, scalar >= q,
		// tiny scalar, a point/-point pair with equal scalars.
		if n >= 7 {
			points[0] = Point{}
			scalars[1] = big.NewInt(0)
			scalars[2] = new(big.Int).Add(Order(), big.NewInt(5))
			scalars[3] = big.NewInt(1)
			points[4] = points[5].Neg()
			scalars[4] = new(big.Int).Set(scalars[5])
			points[6] = points[5]
		}
		want := msmNaive(points, scalars)
		got := MultiScalarMulVartime(points, scalars)
		if !got.Equal(want) {
			t.Fatalf("n=%d: msm mismatch", n)
		}
	}
}

func TestMultiScalarMulVartimeDegenerate(t *testing.T) {
	if got := MultiScalarMulVartime(nil, nil); !got.IsIdentity() {
		t.Fatal("empty msm should be identity")
	}
	g := Base()
	if got := MultiScalarMulVartime([]Point{g}, []*big.Int{big.NewInt(0)}); !got.IsIdentity() {
		t.Fatal("zero-scalar msm should be identity")
	}
	if got := MultiScalarMulVartime([]Point{{}}, []*big.Int{big.NewInt(3)}); !got.IsIdentity() {
		t.Fatal("identity-point msm should be identity")
	}
	// Cancelling pair: k·G + k·(-G) = identity.
	k := big.NewInt(123456789)
	if got := MultiScalarMulVartime([]Point{g, g.Neg()}, []*big.Int{k, k}); !got.IsIdentity() {
		t.Fatal("cancelling msm should be identity")
	}
	// Single huge-bit-length scalar: q-1.
	qm1 := new(big.Int).Sub(Order(), big.NewInt(1))
	if got := MultiScalarMulVartime([]Point{g}, []*big.Int{qm1}); !got.Equal(BaseMul(qm1)) {
		t.Fatal("q-1 msm mismatch")
	}
}

func BenchmarkMultiScalarMul(b *testing.B) {
	rnd := newDetRand("msm-bench")
	const n = 2048
	points := make([]Point, n)
	scalars := make([]*big.Int, n)
	for i := range points {
		k, _ := RandScalar(rnd)
		points[i] = BaseMul(k)
		s, _ := RandScalar(rnd)
		scalars[i] = new(big.Int).Rsh(s, 128) // 128-bit like batch γ
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiScalarMulVartime(points, scalars)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/point")
}
