package group

import (
	"crypto/sha256"
	"encoding/binary"
)

// DRBG is a deterministic byte stream derived from a seed via SHA-256 in
// counter mode. It implements io.Reader and is used to make election setup
// and tests reproducible. It is NOT a substitute for crypto/rand in
// production elections; the Election Authority accepts any io.Reader and
// defaults to crypto/rand.
type DRBG struct {
	key [32]byte
	ctr uint64
	buf []byte
}

// NewDRBG creates a deterministic reader seeded from the given bytes.
func NewDRBG(seed []byte) *DRBG {
	d := &DRBG{}
	d.key = sha256.Sum256(append([]byte("ddemos/drbg/"), seed...))
	return d
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			var block [40]byte
			copy(block[:32], d.key[:])
			binary.BigEndian.PutUint64(block[32:], d.ctr)
			d.ctr++
			sum := sha256.Sum256(block[:])
			d.buf = sum[:]
		}
		k := copy(p, d.buf)
		d.buf = d.buf[k:]
		p = p[k:]
	}
	return n, nil
}
