package pedersen

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"

	"ddemos/internal/crypto/group"
)

// openBatchThreshold mirrors elgamal's batch cutoff: below it, per-element
// Open calls beat the fixed cost of a multi-scalar multiplication.
var openBatchThreshold = 32

// OpenBatch checks Open(cs[i], ms[i], rs[i]) for all i with one random
// linear combination: for fresh 128-bit γᵢ it verifies
//
//	Σ γᵢ·Cᵢ == (Σ γᵢ·mᵢ)·G + (Σ γᵢ·rᵢ)·H
//
// with a single multi-scalar multiplication. A valid batch always accepts;
// a batch with any invalid opening accepts with probability 2^-128. rnd
// defaults to crypto/rand. A false return does not locate the failure —
// fall back to Open per element for that.
func OpenBatch(cs []group.Point, ms, rs []*big.Int, rnd io.Reader) (bool, error) {
	n := len(cs)
	if len(ms) != n || len(rs) != n {
		return false, errors.New("pedersen: batch length mismatch")
	}
	if n == 0 {
		return true, nil
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	if n < openBatchThreshold {
		for i := range cs {
			if !Open(cs[i], ms[i], rs[i]) {
				return false, nil
			}
		}
		return true, nil
	}

	order := group.Order()
	bound := new(big.Int).Lsh(big.NewInt(1), 128)
	gammas := make([]*big.Int, n)
	sm := new(big.Int)
	sr := new(big.Int)
	tmp := new(big.Int)
	for i := range cs {
		g, err := rand.Int(rnd, bound)
		if err != nil {
			return false, err
		}
		gammas[i] = g
		sm.Add(sm, tmp.Mul(g, ms[i]))
		sr.Add(sr, tmp.Mul(g, rs[i]))
	}
	sm.Mod(sm, order)
	sr.Mod(sr, order)

	lhs := group.MultiScalarMulVartime(cs, gammas)
	rhs := group.BaseMul(sm).Add(group.AltBase().Mul(sr))
	return lhs.Equal(rhs), nil
}
