package pedersen

import (
	"crypto/sha256"
	"math/big"
	"testing"

	"ddemos/internal/crypto/group"
)

type detRand struct {
	state [32]byte
	buf   []byte
}

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		if len(d.buf) == 0 {
			d.state = sha256.Sum256(d.state[:])
			d.buf = append(d.buf[:0], d.state[:]...)
		}
		p[i] = d.buf[0]
		d.buf = d.buf[1:]
	}
	return len(p), nil
}

func makeCommitments(t *testing.T, n int, seed string) ([]group.Point, []*big.Int, []*big.Int) {
	t.Helper()
	rnd := &detRand{state: sha256.Sum256([]byte(seed))}
	cs := make([]group.Point, n)
	ms := make([]*big.Int, n)
	rs := make([]*big.Int, n)
	for i := range cs {
		m, err := group.RandScalar(rnd)
		if err != nil {
			t.Fatal(err)
		}
		r, err := group.RandScalar(rnd)
		if err != nil {
			t.Fatal(err)
		}
		ms[i], rs[i] = m, r
		cs[i] = Commit(m, r)
	}
	return cs, ms, rs
}

func TestOpenBatch(t *testing.T) {
	for _, n := range []int{0, 1, 7, openBatchThreshold, 90} {
		cs, ms, rs := makeCommitments(t, n, "pedersen-batch")
		rnd := &detRand{state: sha256.Sum256([]byte("gamma"))}
		ok, err := OpenBatch(cs, ms, rs, rnd)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("n=%d: valid batch rejected", n)
		}
		if n == 0 {
			continue
		}
		ms[n/2] = new(big.Int).Add(ms[n/2], big.NewInt(1))
		ok, err = OpenBatch(cs, ms, rs, rnd)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("n=%d: invalid batch accepted", n)
		}
	}
}

func TestOpenBatchLengthMismatch(t *testing.T) {
	cs, ms, rs := makeCommitments(t, 3, "len")
	if _, err := OpenBatch(cs, ms[:2], rs, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := OpenBatch(cs, ms, rs[:1], nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
