// Package pedersen implements Pedersen commitments and Pedersen's verifiable
// secret sharing (VSS) over P-256, the scheme the paper names in §III-B for
// splitting election data among the trustees.
//
// A commitment to m with blinding r is C = m*G + r*H where H is a second
// generator of unknown discrete log. Commitments are perfectly hiding,
// computationally binding, and additively homomorphic:
// Commit(a, r) + Commit(b, s) = Commit(a+b, r+s).
//
// Pedersen VSS deals a secret s with threshold t by sharing s and a blinding
// value with two polynomials and publishing commitments to the coefficient
// pairs; every shareholder can verify its share against the public
// commitments without any interaction, and shares remain additively
// homomorphic.
package pedersen

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
)

// Commit computes m*G + r*H.
func Commit(m, r *big.Int) group.Point {
	return group.BaseMul(m).Add(group.AltBase().Mul(r))
}

// Open verifies that c is a commitment to (m, r).
func Open(c group.Point, m, r *big.Int) bool {
	return c.Equal(Commit(m, r))
}

// VSSShare is one shareholder's share of a Pedersen VSS dealing: a value
// share and a blinding share at the same evaluation point.
type VSSShare struct {
	Index uint32
	Value *big.Int // f(index)
	Blind *big.Int // g(index)
}

// VSSDealing is the public output of a dealing: commitments to the
// coefficient pairs of the two polynomials.
type VSSDealing struct {
	// Commitments[j] = a_j*G + b_j*H for polynomial coefficients a_j, b_j.
	Commitments []group.Point
}

// Threshold returns the reconstruction threshold of the dealing.
func (d *VSSDealing) Threshold() int { return len(d.Commitments) }

// SecretCommitment returns the commitment to the dealt secret (coefficient 0).
func (d *VSSDealing) SecretCommitment() (group.Point, error) {
	if len(d.Commitments) == 0 {
		return group.Point{}, errors.New("pedersen: empty dealing")
	}
	return d.Commitments[0], nil
}

// Deal shares secret with threshold t among n parties. It returns the public
// dealing (for verification) and the n private shares.
func Deal(secret *big.Int, t, n int, rnd io.Reader) (*VSSDealing, []VSSShare, error) {
	if t < 1 || t > n {
		return nil, nil, fmt.Errorf("pedersen: invalid threshold t=%d n=%d", t, n)
	}
	if secret.Sign() < 0 || secret.Cmp(group.Order()) >= 0 {
		return nil, nil, errors.New("pedersen: secret out of field range")
	}
	f := make([]*big.Int, t) // value polynomial
	g := make([]*big.Int, t) // blinding polynomial
	f[0] = new(big.Int).Set(secret)
	var err error
	if g[0], err = group.RandScalar(rnd); err != nil {
		return nil, nil, err
	}
	for j := 1; j < t; j++ {
		if f[j], err = group.RandScalar(rnd); err != nil {
			return nil, nil, err
		}
		if g[j], err = group.RandScalar(rnd); err != nil {
			return nil, nil, err
		}
	}
	dealing := &VSSDealing{Commitments: make([]group.Point, t)}
	for j := 0; j < t; j++ {
		dealing.Commitments[j] = Commit(f[j], g[j])
	}
	shares := make([]VSSShare, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = VSSShare{
			Index: uint32(i),
			Value: shamir.Eval(f, uint32(i)),
			Blind: shamir.Eval(g, uint32(i)),
		}
	}
	return dealing, shares, nil
}

// Verify checks a share against the public dealing:
// Value*G + Blind*H == Σ_j Commitments[j] * index^j.
func Verify(d *VSSDealing, s VSSShare) bool {
	if s.Index == 0 || len(d.Commitments) == 0 {
		return false
	}
	left := Commit(s.Value, s.Blind)
	right := group.Point{}
	xPow := big.NewInt(1)
	x := big.NewInt(int64(s.Index))
	for _, c := range d.Commitments {
		right = right.Add(c.Mul(xPow))
		xPow = group.MulScalar(xPow, x)
	}
	return left.Equal(right)
}

// Combine reconstructs the secret (and its blinding value) from at least t
// verified shares.
func Combine(shares []VSSShare, t int) (secret, blind *big.Int, err error) {
	if len(shares) < t {
		return nil, nil, fmt.Errorf("pedersen: have %d shares, need %d", len(shares), t)
	}
	use := shares[:t]
	vals := make([]shamir.Share, t)
	blinds := make([]shamir.Share, t)
	for i, s := range use {
		vals[i] = shamir.Share{Index: s.Index, Value: s.Value}
		blinds[i] = shamir.Share{Index: s.Index, Value: s.Blind}
	}
	if secret, err = shamir.Combine(vals, t); err != nil {
		return nil, nil, err
	}
	if blind, err = shamir.Combine(blinds, t); err != nil {
		return nil, nil, err
	}
	return secret, blind, nil
}

// AddShares adds two shares of different dealings (same index), producing a
// share of the sum of the secrets. The corresponding dealings' commitments
// add element-wise.
func AddShares(a, b VSSShare) (VSSShare, error) {
	if a.Index != b.Index {
		return VSSShare{}, fmt.Errorf("pedersen: adding shares with indices %d and %d", a.Index, b.Index)
	}
	return VSSShare{
		Index: a.Index,
		Value: group.AddScalar(a.Value, b.Value),
		Blind: group.AddScalar(a.Blind, b.Blind),
	}, nil
}

// AddDealings combines the public parts of two dealings with equal
// thresholds so that shares added via AddShares verify against the result.
func AddDealings(a, b *VSSDealing) (*VSSDealing, error) {
	if len(a.Commitments) != len(b.Commitments) {
		return nil, errors.New("pedersen: dealings have different thresholds")
	}
	out := &VSSDealing{Commitments: make([]group.Point, len(a.Commitments))}
	for i := range a.Commitments {
		out.Commitments[i] = a.Commitments[i].Add(b.Commitments[i])
	}
	return out, nil
}
