package pedersen

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"ddemos/internal/crypto/group"
)

func TestCommitOpen(t *testing.T) {
	m := big.NewInt(42)
	r, _ := group.RandScalar(rand.Reader)
	c := Commit(m, r)
	if !Open(c, m, r) {
		t.Fatal("valid opening rejected")
	}
	if Open(c, big.NewInt(43), r) {
		t.Fatal("wrong message accepted")
	}
	if Open(c, m, group.AddScalar(r, big.NewInt(1))) {
		t.Fatal("wrong blinding accepted")
	}
}

func TestCommitHomomorphic(t *testing.T) {
	a, b := big.NewInt(10), big.NewInt(32)
	ra, _ := group.RandScalar(rand.Reader)
	rb, _ := group.RandScalar(rand.Reader)
	sum := Commit(a, ra).Add(Commit(b, rb))
	if !Open(sum, big.NewInt(42), group.AddScalar(ra, rb)) {
		t.Fatal("homomorphic addition broken")
	}
}

func TestCommitHiding(t *testing.T) {
	// Different blinding, same message must give different commitments
	// (perfect hiding means every commitment is equally likely, so two
	// independent ones should virtually never collide).
	m := big.NewInt(7)
	r1, _ := group.RandScalar(rand.Reader)
	r2, _ := group.RandScalar(rand.Reader)
	if Commit(m, r1).Equal(Commit(m, r2)) {
		t.Fatal("commitments with different blinding collided")
	}
}

func TestVSSDealVerifyCombine(t *testing.T) {
	secret := big.NewInt(123456)
	dealing, shares, err := Deal(secret, 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if !Verify(dealing, s) {
			t.Fatalf("valid share %d failed verification", s.Index)
		}
	}
	got, _, err := Combine(shares[2:], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("reconstruction mismatch")
	}
	sc, err := dealing.SecretCommitment()
	if err != nil {
		t.Fatal(err)
	}
	_, blind, err := Combine(shares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !Open(sc, secret, blind) {
		t.Fatal("secret commitment does not open to reconstructed values")
	}
}

func TestVSSDetectsTamperedShare(t *testing.T) {
	dealing, shares, err := Deal(big.NewInt(99), 2, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bad := shares[0]
	bad.Value = group.AddScalar(bad.Value, big.NewInt(1))
	if Verify(dealing, bad) {
		t.Fatal("tampered value share passed verification")
	}
	bad2 := shares[1]
	bad2.Blind = group.AddScalar(bad2.Blind, big.NewInt(1))
	if Verify(dealing, bad2) {
		t.Fatal("tampered blinding share passed verification")
	}
	bad3 := shares[2]
	bad3.Index = 0
	if Verify(dealing, bad3) {
		t.Fatal("zero-index share passed verification")
	}
}

func TestVSSHomomorphicAddition(t *testing.T) {
	d1, s1, err := Deal(big.NewInt(100), 3, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	d2, s2, err := Deal(big.NewInt(23), 3, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	dSum, err := AddDealings(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	sumShares := make([]VSSShare, 4)
	for i := range s1 {
		s, err := AddShares(s1[i], s2[i])
		if err != nil {
			t.Fatal(err)
		}
		sumShares[i] = s
		if !Verify(dSum, s) {
			t.Fatalf("summed share %d fails verification against summed dealing", s.Index)
		}
	}
	got, _, err := Combine(sumShares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(123)) != 0 {
		t.Fatalf("homomorphic sum = %v, want 123", got)
	}
}

func TestVSSInvalidParams(t *testing.T) {
	if _, _, err := Deal(big.NewInt(1), 0, 3, rand.Reader); err == nil {
		t.Fatal("t=0 must fail")
	}
	if _, _, err := Deal(big.NewInt(1), 4, 3, rand.Reader); err == nil {
		t.Fatal("t>n must fail")
	}
	if _, _, err := Deal(group.Order(), 2, 3, rand.Reader); err == nil {
		t.Fatal("secret >= q must fail")
	}
	if _, err := AddShares(VSSShare{Index: 1}, VSSShare{Index: 2}); err == nil {
		t.Fatal("index mismatch must fail")
	}
	if _, err := AddDealings(&VSSDealing{Commitments: make([]group.Point, 2)}, &VSSDealing{Commitments: make([]group.Point, 3)}); err == nil {
		t.Fatal("threshold mismatch must fail")
	}
}

func TestVSSCombineTooFew(t *testing.T) {
	_, shares, err := Deal(big.NewInt(5), 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Combine(shares[:2], 3); err == nil {
		t.Fatal("2-of-3 reconstruction must fail")
	}
}

func TestPropertyVSS(t *testing.T) {
	rng := group.NewDRBG([]byte("pedersen-prop"))
	f := func(raw [8]byte, tRaw, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		th := int(tRaw)%n + 1
		secret := new(big.Int).SetBytes(raw[:])
		dealing, shares, err := Deal(secret, th, n, rng)
		if err != nil {
			return false
		}
		for _, s := range shares {
			if !Verify(dealing, s) {
				return false
			}
		}
		got, _, err := Combine(shares, th)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommit(b *testing.B) {
	m := big.NewInt(1)
	r, _ := group.RandScalar(rand.Reader)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Commit(m, r)
	}
}

func BenchmarkVSSVerifyShare(b *testing.B) {
	dealing, shares, _ := Deal(big.NewInt(5), 3, 4, rand.Reader)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Verify(dealing, shares[0]) {
			b.Fatal("share must verify")
		}
	}
}
