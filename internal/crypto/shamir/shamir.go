// Package shamir implements Shamir secret sharing over the P-256 scalar
// field Z_q, the building block the paper uses for receipt shares, master-key
// shares and trustee shares.
//
// A (t, n) sharing splits a secret into n shares so that any t reconstruct
// the secret and any t-1 reveal nothing (information-theoretically). Shares
// are additively homomorphic: adding corresponding shares of two secrets
// yields shares of the sum, which is what lets trustees tally
// homomorphically (§III-B of the paper).
//
// The paper's implementation (§V) realizes "verifiable secret sharing with
// honest dealer" by having the Election Authority sign every share; the
// signing lives in package ea so this package stays a pure field-arithmetic
// substrate.
package shamir

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"ddemos/internal/crypto/group"
)

// Share is one point (x=Index, y=Value) on the dealing polynomial.
// Index is 1-based; index 0 would expose the secret itself.
type Share struct {
	Index uint32
	Value *big.Int
}

var (
	// ErrThreshold indicates an invalid (t, n) combination.
	ErrThreshold = errors.New("shamir: threshold must satisfy 1 <= t <= n")
	// ErrTooFewShares indicates reconstruction was attempted with fewer
	// shares than the threshold used at dealing time.
	ErrTooFewShares = errors.New("shamir: not enough shares")
	// ErrDuplicateShare indicates two shares with the same index.
	ErrDuplicateShare = errors.New("shamir: duplicate share index")
)

// Split deals secret into n shares with reconstruction threshold t, using
// randomness from rnd. The secret must be in [0, q).
func Split(secret *big.Int, t, n int, rnd io.Reader) ([]Share, error) {
	if t < 1 || t > n {
		return nil, fmt.Errorf("%w: t=%d n=%d", ErrThreshold, t, n)
	}
	if secret.Sign() < 0 || secret.Cmp(group.Order()) >= 0 {
		return nil, errors.New("shamir: secret out of field range")
	}
	// polynomial p(x) = secret + a1*x + ... + a_{t-1}*x^{t-1}
	coeffs := make([]*big.Int, t)
	coeffs[0] = new(big.Int).Set(secret)
	for i := 1; i < t; i++ {
		c, err := group.RandScalar(rnd)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = Share{Index: uint32(i), Value: Eval(coeffs, uint32(i))}
	}
	return shares, nil
}

// Eval evaluates the polynomial given by coeffs (constant term first) at x,
// mod q, via Horner's rule.
func Eval(coeffs []*big.Int, x uint32) *big.Int {
	xx := big.NewInt(int64(x))
	acc := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = group.AddScalar(group.MulScalar(acc, xx), coeffs[i])
	}
	return acc
}

// Combine reconstructs the secret from at least t shares via Lagrange
// interpolation at x=0. All provided shares are used; callers should pass
// exactly the shares they trust.
func Combine(shares []Share, t int) (*big.Int, error) {
	if len(shares) < t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), t)
	}
	use := shares[:t]
	seen := make(map[uint32]bool, t)
	for _, s := range use {
		if s.Index == 0 {
			return nil, errors.New("shamir: share index must be nonzero")
		}
		if seen[s.Index] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateShare, s.Index)
		}
		seen[s.Index] = true
	}
	secret := new(big.Int)
	for i, si := range use {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(int64(si.Index))
		for j, sj := range use {
			if i == j {
				continue
			}
			xj := big.NewInt(int64(sj.Index))
			num = group.MulScalar(num, xj)
			den = group.MulScalar(den, group.SubScalar(xj, xi))
		}
		invDen, err := group.InvScalar(den)
		if err != nil {
			return nil, err
		}
		lag := group.MulScalar(num, invDen)
		secret = group.AddScalar(secret, group.MulScalar(si.Value, lag))
	}
	return secret, nil
}

// LagrangeCoefficients returns the interpolation weights λ_i at x=0 for the
// given share indices, so that secret = Σ λ_i * value_i. Useful when the
// same share set reconstructs many secrets (trustee tally combination).
func LagrangeCoefficients(indices []uint32) ([]*big.Int, error) {
	seen := make(map[uint32]bool, len(indices))
	for _, idx := range indices {
		if idx == 0 {
			return nil, errors.New("shamir: index must be nonzero")
		}
		if seen[idx] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateShare, idx)
		}
		seen[idx] = true
	}
	out := make([]*big.Int, len(indices))
	for i, xiU := range indices {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(int64(xiU))
		for j, xjU := range indices {
			if i == j {
				continue
			}
			xj := big.NewInt(int64(xjU))
			num = group.MulScalar(num, xj)
			den = group.MulScalar(den, group.SubScalar(xj, xi))
		}
		invDen, err := group.InvScalar(den)
		if err != nil {
			return nil, err
		}
		out[i] = group.MulScalar(num, invDen)
	}
	return out, nil
}

// AddShares returns the element-wise sum of two shares with the same index,
// which is a valid share of the sum of the two underlying secrets.
func AddShares(a, b Share) (Share, error) {
	if a.Index != b.Index {
		return Share{}, fmt.Errorf("shamir: adding shares with indices %d and %d", a.Index, b.Index)
	}
	return Share{Index: a.Index, Value: group.AddScalar(a.Value, b.Value)}, nil
}

// SecretToScalar embeds an arbitrary byte secret (up to 31 bytes, e.g. the
// 64-bit receipts and the 128-bit AES master key) into a field element with
// a length prefix so it round-trips exactly.
func SecretToScalar(secret []byte) (*big.Int, error) {
	if len(secret) > 30 {
		return nil, errors.New("shamir: secret too long to embed (max 30 bytes)")
	}
	buf := make([]byte, len(secret)+1)
	buf[0] = byte(len(secret))
	copy(buf[1:], secret)
	return new(big.Int).SetBytes(buf), nil
}

// ScalarToSecret reverses SecretToScalar.
func ScalarToSecret(v *big.Int) ([]byte, error) {
	b := v.Bytes()
	if len(b) == 0 {
		// The empty secret embeds as the zero scalar (length prefix 0).
		return []byte{}, nil
	}
	n := int(b[0])
	if n != len(b)-1 {
		return nil, fmt.Errorf("shamir: embedded length %d does not match payload %d", n, len(b)-1)
	}
	out := make([]byte, n)
	copy(out, b[1:])
	return out, nil
}
