package shamir

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"ddemos/internal/crypto/group"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	cases := []struct{ t, n int }{{1, 1}, {2, 3}, {3, 4}, {5, 7}, {11, 16}}
	for _, c := range cases {
		secret, _ := group.RandScalar(rand.Reader)
		shares, err := Split(secret, c.t, c.n, rand.Reader)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.t, c.n, err)
		}
		if len(shares) != c.n {
			t.Fatalf("want %d shares, got %d", c.n, len(shares))
		}
		got, err := Combine(shares, c.t)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("(%d,%d): reconstruction mismatch", c.t, c.n)
		}
	}
}

func TestCombineAnySubset(t *testing.T) {
	secret := big.NewInt(424242)
	shares, err := Split(secret, 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {2, 3, 4}, {0, 2, 4}, {4, 1, 3}}
	for _, idx := range subsets {
		sub := []Share{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
		got, err := Combine(sub, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("subset %v: mismatch", idx)
		}
	}
}

func TestCombineTooFewShares(t *testing.T) {
	secret := big.NewInt(7)
	shares, _ := Split(secret, 3, 5, rand.Reader)
	if _, err := Combine(shares[:2], 3); err == nil {
		t.Fatal("combining 2 of 3 must fail")
	}
}

func TestTwoSharesLeakNothingStructural(t *testing.T) {
	// With threshold 3, reconstructing from 2 shares plus a forged third
	// should give an unrelated value (we cannot test information-theoretic
	// secrecy directly, but we can check the interpolation is not degenerate).
	secret := big.NewInt(123456789)
	shares, _ := Split(secret, 3, 5, rand.Reader)
	forged := Share{Index: 5, Value: big.NewInt(1)}
	got, err := Combine([]Share{shares[0], shares[1], forged}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) == 0 {
		t.Fatal("forged share should not reconstruct the true secret")
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	secret := big.NewInt(1)
	shares, _ := Split(secret, 2, 3, rand.Reader)
	if _, err := Combine([]Share{shares[0], shares[0]}, 2); err == nil {
		t.Fatal("duplicate share index must be rejected")
	}
}

func TestInvalidThresholds(t *testing.T) {
	secret := big.NewInt(1)
	for _, c := range []struct{ t, n int }{{0, 3}, {4, 3}, {-1, 2}} {
		if _, err := Split(secret, c.t, c.n, rand.Reader); err == nil {
			t.Fatalf("(%d,%d) must be rejected", c.t, c.n)
		}
	}
}

func TestSecretOutOfRange(t *testing.T) {
	if _, err := Split(group.Order(), 2, 3, rand.Reader); err == nil {
		t.Fatal("secret >= q must be rejected")
	}
	if _, err := Split(big.NewInt(-1), 2, 3, rand.Reader); err == nil {
		t.Fatal("negative secret must be rejected")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	a := big.NewInt(1111)
	b := big.NewInt(2222)
	sa, _ := Split(a, 3, 4, rand.Reader)
	sb, _ := Split(b, 3, 4, rand.Reader)
	sum := make([]Share, 4)
	for i := range sa {
		s, err := AddShares(sa[i], sb[i])
		if err != nil {
			t.Fatal(err)
		}
		sum[i] = s
	}
	got, err := Combine(sum[:3], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(3333)) != 0 {
		t.Fatalf("homomorphic sum = %v, want 3333", got)
	}
}

func TestAddSharesIndexMismatch(t *testing.T) {
	if _, err := AddShares(Share{Index: 1, Value: big.NewInt(1)}, Share{Index: 2, Value: big.NewInt(1)}); err == nil {
		t.Fatal("mismatched indices must be rejected")
	}
}

func TestLagrangeCoefficients(t *testing.T) {
	secret := big.NewInt(987654321)
	shares, _ := Split(secret, 3, 5, rand.Reader)
	idx := []uint32{shares[1].Index, shares[3].Index, shares[4].Index}
	lam, err := LagrangeCoefficients(idx)
	if err != nil {
		t.Fatal(err)
	}
	acc := new(big.Int)
	for i, s := range []Share{shares[1], shares[3], shares[4]} {
		acc = group.AddScalar(acc, group.MulScalar(lam[i], s.Value))
	}
	if acc.Cmp(secret) != 0 {
		t.Fatal("lagrange combination mismatch")
	}
}

func TestLagrangeRejectsBadIndices(t *testing.T) {
	if _, err := LagrangeCoefficients([]uint32{1, 1}); err == nil {
		t.Fatal("duplicate indices must fail")
	}
	if _, err := LagrangeCoefficients([]uint32{0, 1}); err == nil {
		t.Fatal("zero index must fail")
	}
}

func TestSecretEmbeddingRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{0},
		{0, 0, 0},
		{0xff},
		bytes.Repeat([]byte{0xab}, 8),  // receipt-sized
		bytes.Repeat([]byte{0xcd}, 16), // AES-key-sized
		bytes.Repeat([]byte{0x01}, 30),
	}
	for _, sec := range cases {
		v, err := SecretToScalar(sec)
		if err != nil {
			t.Fatalf("embed %x: %v", sec, err)
		}
		got, err := ScalarToSecret(v)
		if err != nil {
			t.Fatalf("extract %x: %v", sec, err)
		}
		if !bytes.Equal(got, sec) {
			t.Fatalf("round trip %x -> %x", sec, got)
		}
	}
	if _, err := SecretToScalar(bytes.Repeat([]byte{1}, 31)); err == nil {
		t.Fatal("31-byte secret must be rejected")
	}
}

func TestSecretEmbeddingThroughSharing(t *testing.T) {
	receipt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	v, err := SecretToScalar(receipt)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := Split(v, 3, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Combine(shares[1:], 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScalarToSecret(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, receipt) {
		t.Fatal("receipt did not survive share/reconstruct")
	}
}

func TestPropertySplitCombine(t *testing.T) {
	rng := group.NewDRBG([]byte("prop"))
	f := func(raw [16]byte, tRaw, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		th := int(tRaw)%n + 1
		secret := new(big.Int).SetBytes(raw[:])
		shares, err := Split(secret, th, n, rng)
		if err != nil {
			return false
		}
		got, err := Combine(shares, th)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplit4(b *testing.B) {
	secret := big.NewInt(123)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, 3, 4, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine4(b *testing.B) {
	secret := big.NewInt(123)
	shares, _ := Split(secret, 3, 4, rand.Reader)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares, 3); err != nil {
			b.Fatal(err)
		}
	}
}
