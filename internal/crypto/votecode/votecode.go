// Package votecode implements the vote-code hiding commitments of §III-D:
//
//   - On the Bulletin Board, vote codes are stored encrypted under the
//     election master key msk with AES-128-CBC and a random IV (the paper's
//     AES-128-CBC$), so BB data is public from the start without enabling
//     vote-code theft. H_msk = SHA256(msk, salt) lets every BB node check
//     that the key reconstructed from VC shares is the right one.
//
//   - On Vote Collector nodes, each vote code is committed to as
//     H = SHA256(vote-code, salt) so a VC node can validate a submitted code
//     locally (no network round trip) while never storing codes in clear.
package votecode

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

const (
	// KeySize is the AES-128 master key length in bytes.
	KeySize = 16
	// CodeSize is the vote-code length: 160-bit random numbers per §III-D.
	CodeSize = 20
	// ReceiptSize is the receipt length: 64-bit random numbers per §III-D.
	ReceiptSize = 8
	// SaltSize is the salt length for hash commitments.
	SaltSize = 8
)

// ErrCiphertextFormat is returned for malformed encrypted vote codes.
var ErrCiphertextFormat = errors.New("votecode: malformed ciphertext")

// Encrypt encrypts a vote code under msk with AES-128-CBC and a fresh random
// IV (prepended to the output). PKCS#7 padding is applied.
func Encrypt(msk []byte, code []byte, rnd io.Reader) ([]byte, error) {
	block, err := aes.NewCipher(msk)
	if err != nil {
		return nil, fmt.Errorf("votecode: %w", err)
	}
	padLen := aes.BlockSize - len(code)%aes.BlockSize
	padded := make([]byte, len(code)+padLen)
	copy(padded, code)
	for i := len(code); i < len(padded); i++ {
		padded[i] = byte(padLen)
	}
	out := make([]byte, aes.BlockSize+len(padded))
	iv := out[:aes.BlockSize]
	if _, err := io.ReadFull(rnd, iv); err != nil {
		return nil, fmt.Errorf("votecode: sampling IV: %w", err)
	}
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out[aes.BlockSize:], padded)
	return out, nil
}

// Decrypt reverses Encrypt.
func Decrypt(msk []byte, blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(msk)
	if err != nil {
		return nil, fmt.Errorf("votecode: %w", err)
	}
	if len(blob) < 2*aes.BlockSize || len(blob)%aes.BlockSize != 0 {
		return nil, ErrCiphertextFormat
	}
	iv := blob[:aes.BlockSize]
	ct := blob[aes.BlockSize:]
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	padLen := int(pt[len(pt)-1])
	if padLen < 1 || padLen > aes.BlockSize || padLen > len(pt) {
		return nil, ErrCiphertextFormat
	}
	for _, b := range pt[len(pt)-padLen:] {
		if int(b) != padLen {
			return nil, ErrCiphertextFormat
		}
	}
	return pt[:len(pt)-padLen], nil
}

// HashCommit computes the salted commitment SHA256(code || salt) used by VC
// nodes to validate vote codes locally.
func HashCommit(code, salt []byte) [32]byte {
	h := sha256.New()
	h.Write(code)
	h.Write(salt)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// VerifyCommit checks a code against a salted hash commitment in constant
// time with respect to the hash comparison.
func VerifyCommit(commit [32]byte, code, salt []byte) bool {
	got := HashCommit(code, salt)
	return subtleEqual(commit[:], got[:])
}

// KeyCheck computes H_msk = SHA256(msk || salt), given to BB nodes at setup
// so they can verify a reconstructed master key.
func KeyCheck(msk, salt []byte) [32]byte {
	return HashCommit(msk, salt)
}

// VerifyKey checks a candidate master key against H_msk.
func VerifyKey(check [32]byte, msk, salt []byte) bool {
	return VerifyCommit(check, msk, salt)
}

func subtleEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// NewCode samples a fresh 160-bit vote code.
func NewCode(rnd io.Reader) ([]byte, error) {
	return randBytes(rnd, CodeSize)
}

// NewReceipt samples a fresh 64-bit receipt.
func NewReceipt(rnd io.Reader) ([]byte, error) {
	return randBytes(rnd, ReceiptSize)
}

// NewSalt samples a fresh 64-bit salt.
func NewSalt(rnd io.Reader) ([]byte, error) {
	return randBytes(rnd, SaltSize)
}

// NewKey samples a fresh AES-128 master key.
func NewKey(rnd io.Reader) ([]byte, error) {
	return randBytes(rnd, KeySize)
}

func randBytes(rnd io.Reader, n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rnd, b); err != nil {
		return nil, fmt.Errorf("votecode: sampling %d bytes: %w", n, err)
	}
	return b, nil
}

// Equal compares two codes/receipts without leaking timing.
func Equal(a, b []byte) bool { return subtleEqual(a, b) }
