package votecode

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"ddemos/internal/crypto/group"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	msk, err := NewKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewCode(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Encrypt(msk, code, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(msk, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, code) {
		t.Fatal("round trip mismatch")
	}
}

func TestEncryptRandomized(t *testing.T) {
	msk, _ := NewKey(rand.Reader)
	code, _ := NewCode(rand.Reader)
	b1, _ := Encrypt(msk, code, rand.Reader)
	b2, _ := Encrypt(msk, code, rand.Reader)
	if bytes.Equal(b1, b2) {
		t.Fatal("CBC$ must randomize: two encryptions of same code collided")
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	msk1, _ := NewKey(rand.Reader)
	msk2, _ := NewKey(rand.Reader)
	code, _ := NewCode(rand.Reader)
	blob, _ := Encrypt(msk1, code, rand.Reader)
	got, err := Decrypt(msk2, blob)
	// CBC has no integrity; either padding fails or we get garbage.
	if err == nil && bytes.Equal(got, code) {
		t.Fatal("wrong key decrypted to original code")
	}
}

func TestDecryptMalformed(t *testing.T) {
	msk, _ := NewKey(rand.Reader)
	for _, blob := range [][]byte{nil, {1, 2, 3}, make([]byte, 16), make([]byte, 17), make([]byte, 33)} {
		if _, err := Decrypt(msk, blob); err == nil {
			t.Fatalf("blob of len %d must be rejected", len(blob))
		}
	}
}

func TestEncryptBadKey(t *testing.T) {
	if _, err := Encrypt([]byte{1, 2, 3}, []byte("code"), rand.Reader); err == nil {
		t.Fatal("short key must be rejected")
	}
	if _, err := Decrypt([]byte{1, 2, 3}, make([]byte, 32)); err == nil {
		t.Fatal("short key must be rejected on decrypt")
	}
}

func TestHashCommitVerify(t *testing.T) {
	code, _ := NewCode(rand.Reader)
	salt, _ := NewSalt(rand.Reader)
	c := HashCommit(code, salt)
	if !VerifyCommit(c, code, salt) {
		t.Fatal("valid commitment rejected")
	}
	other, _ := NewCode(rand.Reader)
	if VerifyCommit(c, other, salt) {
		t.Fatal("wrong code accepted")
	}
	otherSalt, _ := NewSalt(rand.Reader)
	if VerifyCommit(c, code, otherSalt) {
		t.Fatal("wrong salt accepted")
	}
}

func TestKeyCheck(t *testing.T) {
	msk, _ := NewKey(rand.Reader)
	salt, _ := NewSalt(rand.Reader)
	h := KeyCheck(msk, salt)
	if !VerifyKey(h, msk, salt) {
		t.Fatal("valid key rejected")
	}
	bad, _ := NewKey(rand.Reader)
	if VerifyKey(h, bad, salt) {
		t.Fatal("wrong key accepted")
	}
}

func TestSizes(t *testing.T) {
	code, _ := NewCode(rand.Reader)
	if len(code) != 20 {
		t.Fatalf("vote code must be 160 bits, got %d bytes", len(code))
	}
	r, _ := NewReceipt(rand.Reader)
	if len(r) != 8 {
		t.Fatalf("receipt must be 64 bits, got %d bytes", len(r))
	}
	s, _ := NewSalt(rand.Reader)
	if len(s) != 8 {
		t.Fatalf("salt must be 64 bits, got %d bytes", len(s))
	}
	k, _ := NewKey(rand.Reader)
	if len(k) != 16 {
		t.Fatalf("msk must be 128 bits, got %d bytes", len(k))
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]byte{1, 2}, []byte{1, 2}) {
		t.Fatal("equal slices reported unequal")
	}
	if Equal([]byte{1, 2}, []byte{1, 3}) || Equal([]byte{1}, []byte{1, 2}) {
		t.Fatal("unequal slices reported equal")
	}
}

func TestPropertyEncryptDecrypt(t *testing.T) {
	rng := group.NewDRBG([]byte("votecode-prop"))
	msk, _ := NewKey(rng)
	f := func(payload []byte) bool {
		if len(payload) == 0 || len(payload) > 64 {
			return true // skip: codes are fixed-size in practice
		}
		blob, err := Encrypt(msk, payload, rng)
		if err != nil {
			return false
		}
		got, err := Decrypt(msk, blob)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashCommitVerify(b *testing.B) {
	code, _ := NewCode(rand.Reader)
	salt, _ := NewSalt(rand.Reader)
	c := HashCommit(code, salt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !VerifyCommit(c, code, salt) {
			b.Fatal("must verify")
		}
	}
}

func BenchmarkEncryptCode(b *testing.B) {
	msk, _ := NewKey(rand.Reader)
	code, _ := NewCode(rand.Reader)
	rng := group.NewDRBG([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(msk, code, rng); err != nil {
			b.Fatal(err)
		}
	}
}
