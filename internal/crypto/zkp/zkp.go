// Package zkp implements the zero-knowledge proofs of ballot correctness
// from §III-B of the paper: Chaum–Pedersen proofs composed with Sigma-OR to
// show that every option-encoding ciphertext encrypts 0 or 1, and that each
// ballot part's encodings sum to exactly the allowed number of selections.
//
// The protocol is the three-move sigma protocol, split across the election
// exactly as the paper describes:
//
//  1. At setup the EA computes the first moves (commitments) and posts them
//     on the Bulletin Board.
//  2. The challenge is NOT Fiat–Shamir: it is extracted from the voters' A/B
//     part choices collected during the election (the voters' coins), giving
//     min-entropy θ when θ honest voters participate.
//  3. The final move is produced jointly by the trustees after the election.
//
// Step 3 works without interaction because every final-move value is an
// affine function α·c + β of the (public, post-election) challenge c. The EA
// secret-shares the coefficient pairs (α, β) among the trustees at setup;
// each trustee evaluates the affine form on its shares, and Lagrange
// combination of the results yields the final move. No trustee minority
// learns which OR branch was simulated — i.e., the content of any
// commitment.
package zkp

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
)

// BitCommit is the first move of the 0-or-1 OR proof for one ciphertext.
// (T0A, T0B) commits for the "encrypts 0" branch, (T1A, T1B) for "encrypts 1".
type BitCommit struct {
	T0A, T0B group.Point
	T1A, T1B group.Point
}

// BitCoeffs are the affine coefficients of the final move as functions of
// the challenge c: each output value equals A*c + B (mod q). They contain
// the witness and MUST stay secret; the EA secret-shares them among the
// trustees and then destroys them.
type BitCoeffs struct {
	AC0, BC0 *big.Int // c0 = AC0*c + BC0
	AC1, BC1 *big.Int // c1 = AC1*c + BC1
	AZ0, BZ0 *big.Int // z0 = AZ0*c + BZ0
	AZ1, BZ1 *big.Int // z1 = AZ1*c + BZ1
}

// BitFinal is the final move of the OR proof: per-branch challenges and
// responses. Valid iff C0+C1 == c and both branch verification equations
// hold.
type BitFinal struct {
	C0, C1, Z0, Z1 *big.Int
}

// NewBitProofFor creates the first move and coefficients for ciphertext ct
// encrypting bit m (0 or 1) with randomness r under key. The real branch is
// proven honestly; the other branch is simulated backwards from a random
// (challenge, response) pair chosen at setup.
func NewBitProofFor(key elgamal.CommitmentKey, ct elgamal.Ciphertext, m int, r *big.Int, rnd io.Reader) (BitCommit, BitCoeffs, error) {
	if m != 0 && m != 1 {
		return BitCommit{}, BitCoeffs{}, fmt.Errorf("zkp: message %d is not a bit", m)
	}
	w, err := group.RandScalar(rnd)
	if err != nil {
		return BitCommit{}, BitCoeffs{}, err
	}
	cSim, err := group.RandScalar(rnd)
	if err != nil {
		return BitCommit{}, BitCoeffs{}, err
	}
	zSim, err := group.RandScalar(rnd)
	if err != nil {
		return BitCommit{}, BitCoeffs{}, err
	}

	// Statement second points: branch 0 proves (A, B) = (rG, rP);
	// branch 1 proves (A, B-G) = (rG, rP).
	b0 := ct.B
	b1 := ct.B.Sub(group.Base())

	realTA := group.BaseMul(w)
	realTB := key.P.Mul(w)

	var com BitCommit
	var cf BitCoeffs
	zero := new(big.Int)
	one := big.NewInt(1)
	// β coefficient of the real response: z = w + (c - cSim)*r
	//   = r*c + (w - cSim*r)  -> α = r, β = w - cSim*r.
	alphaReal := new(big.Int).Set(r)
	betaReal := group.SubScalar(w, group.MulScalar(cSim, r))

	if m == 0 {
		// Real branch 0, simulated branch 1.
		simTA := group.BaseMul(zSim).Sub(ct.A.Mul(cSim))
		simTB := key.P.Mul(zSim).Sub(b1.Mul(cSim))
		com = BitCommit{T0A: realTA, T0B: realTB, T1A: simTA, T1B: simTB}
		cf = BitCoeffs{
			AC0: one, BC0: group.NegScalar(cSim), // c0 = c - cSim
			AC1: zero, BC1: cSim, // c1 = cSim
			AZ0: alphaReal, BZ0: betaReal,
			AZ1: zero, BZ1: zSim,
		}
	} else {
		// Real branch 1, simulated branch 0.
		simTA := group.BaseMul(zSim).Sub(ct.A.Mul(cSim))
		simTB := key.P.Mul(zSim).Sub(b0.Mul(cSim))
		com = BitCommit{T0A: simTA, T0B: simTB, T1A: realTA, T1B: realTB}
		cf = BitCoeffs{
			AC0: zero, BC0: cSim,
			AC1: one, BC1: group.NegScalar(cSim),
			AZ0: zero, BZ0: zSim,
			AZ1: alphaReal, BZ1: betaReal,
		}
	}
	return com, cf, nil
}

// Finalize evaluates the affine final move at challenge c. It works equally
// on the true coefficients (producing the true final move) and on secret
// shares of them (producing a share of the final move).
func (cf BitCoeffs) Finalize(c *big.Int) BitFinal {
	eval := func(a, b *big.Int) *big.Int { return group.AddScalar(group.MulScalar(a, c), b) }
	return BitFinal{
		C0: eval(cf.AC0, cf.BC0),
		C1: eval(cf.AC1, cf.BC1),
		Z0: eval(cf.AZ0, cf.BZ0),
		Z1: eval(cf.AZ1, cf.BZ1),
	}
}

// VerifyBit checks a completed 0-or-1 proof for ct under challenge c.
func VerifyBit(key elgamal.CommitmentKey, ct elgamal.Ciphertext, com BitCommit, fin BitFinal, c *big.Int) bool {
	if fin.C0 == nil || fin.C1 == nil || fin.Z0 == nil || fin.Z1 == nil {
		return false
	}
	if group.AddScalar(fin.C0, fin.C1).Cmp(new(big.Int).Mod(c, group.Order())) != 0 {
		return false
	}
	b0 := ct.B
	b1 := ct.B.Sub(group.Base())
	// Branch 0: z0*G == T0A + c0*A ; z0*P == T0B + c0*B.
	if !group.BaseMul(fin.Z0).Equal(com.T0A.Add(ct.A.Mul(fin.C0))) {
		return false
	}
	if !key.P.Mul(fin.Z0).Equal(com.T0B.Add(b0.Mul(fin.C0))) {
		return false
	}
	// Branch 1: z1*G == T1A + c1*A ; z1*P == T1B + c1*(B-G).
	if !group.BaseMul(fin.Z1).Equal(com.T1A.Add(ct.A.Mul(fin.C1))) {
		return false
	}
	if !key.P.Mul(fin.Z1).Equal(com.T1B.Add(b1.Mul(fin.C1))) {
		return false
	}
	return true
}

// SumCommit is the first move of the Chaum–Pedersen proof that a ballot
// part's encodings sum to exactly k selections.
type SumCommit struct {
	TA, TB group.Point
}

// SumCoeffs are the affine coefficients of the sum proof response:
// z = A*c + B.
type SumCoeffs struct {
	A, B *big.Int
}

// SumFinal is the response of the sum proof.
type SumFinal struct {
	Z *big.Int
}

// NewSumProof proves that the component-wise sum of a part's ciphertexts is
// an encryption of k (the number of selections) — equivalently that
// (ΣA, ΣB - k*G) is a DDH tuple with witness rSum = Σ randomness.
func NewSumProof(key elgamal.CommitmentKey, rSum *big.Int, rnd io.Reader) (SumCommit, SumCoeffs, error) {
	w, err := group.RandScalar(rnd)
	if err != nil {
		return SumCommit{}, SumCoeffs{}, err
	}
	return SumCommit{TA: group.BaseMul(w), TB: key.P.Mul(w)},
		SumCoeffs{A: new(big.Int).Set(rSum), B: w}, nil
}

// Finalize evaluates the sum-proof response at challenge c (works on shares
// as well, like BitCoeffs.Finalize).
func (cf SumCoeffs) Finalize(c *big.Int) SumFinal {
	return SumFinal{Z: group.AddScalar(group.MulScalar(cf.A, c), cf.B)}
}

// VerifySum checks a completed sum proof: cts must element-wise sum to an
// encryption of k.
func VerifySum(key elgamal.CommitmentKey, cts elgamal.VectorCiphertext, k int, com SumCommit, fin SumFinal, c *big.Int) bool {
	if fin.Z == nil || len(cts) == 0 {
		return false
	}
	sum := cts[0]
	for _, ct := range cts[1:] {
		sum = sum.Add(ct)
	}
	sumA := sum.A
	sumB := sum.B.Sub(group.BaseMul(big.NewInt(int64(k))))
	if !group.BaseMul(fin.Z).Equal(com.TA.Add(sumA.Mul(c))) {
		return false
	}
	if !key.P.Mul(fin.Z).Equal(com.TB.Add(sumB.Mul(c))) {
		return false
	}
	return true
}

// --- Distributed finalization -------------------------------------------

// ShareBitCoeffs secret-shares the eight coefficient scalars with threshold
// t among n trustees. Shares[i] belongs to trustee i+1 (share index i+1).
func ShareBitCoeffs(cf BitCoeffs, t, n int, rnd io.Reader) ([]BitCoeffs, error) {
	fields := []*big.Int{cf.AC0, cf.BC0, cf.AC1, cf.BC1, cf.AZ0, cf.BZ0, cf.AZ1, cf.BZ1}
	sharesPer := make([][]shamir.Share, len(fields))
	for i, v := range fields {
		s, err := shamir.Split(new(big.Int).Mod(v, group.Order()), t, n, rnd)
		if err != nil {
			return nil, err
		}
		sharesPer[i] = s
	}
	out := make([]BitCoeffs, n)
	for j := 0; j < n; j++ {
		out[j] = BitCoeffs{
			AC0: sharesPer[0][j].Value, BC0: sharesPer[1][j].Value,
			AC1: sharesPer[2][j].Value, BC1: sharesPer[3][j].Value,
			AZ0: sharesPer[4][j].Value, BZ0: sharesPer[5][j].Value,
			AZ1: sharesPer[6][j].Value, BZ1: sharesPer[7][j].Value,
		}
	}
	return out, nil
}

// IndexedBitFinal is one trustee's final-move share with its share index.
type IndexedBitFinal struct {
	Index uint32
	Final BitFinal
}

// CombineBitFinals reconstructs the true final move from at least t trustee
// shares via Lagrange interpolation.
func CombineBitFinals(shares []IndexedBitFinal, t int) (BitFinal, error) {
	if len(shares) < t {
		return BitFinal{}, fmt.Errorf("zkp: have %d final shares, need %d", len(shares), t)
	}
	use := shares[:t]
	idx := make([]uint32, t)
	for i, s := range use {
		idx[i] = s.Index
	}
	lam, err := shamir.LagrangeCoefficients(idx)
	if err != nil {
		return BitFinal{}, err
	}
	combine := func(get func(BitFinal) *big.Int) *big.Int {
		acc := new(big.Int)
		for i, s := range use {
			acc = group.AddScalar(acc, group.MulScalar(lam[i], get(s.Final)))
		}
		return acc
	}
	return BitFinal{
		C0: combine(func(f BitFinal) *big.Int { return f.C0 }),
		C1: combine(func(f BitFinal) *big.Int { return f.C1 }),
		Z0: combine(func(f BitFinal) *big.Int { return f.Z0 }),
		Z1: combine(func(f BitFinal) *big.Int { return f.Z1 }),
	}, nil
}

// ShareSumCoeffs secret-shares the sum-proof coefficients.
func ShareSumCoeffs(cf SumCoeffs, t, n int, rnd io.Reader) ([]SumCoeffs, error) {
	sa, err := shamir.Split(new(big.Int).Mod(cf.A, group.Order()), t, n, rnd)
	if err != nil {
		return nil, err
	}
	sb, err := shamir.Split(new(big.Int).Mod(cf.B, group.Order()), t, n, rnd)
	if err != nil {
		return nil, err
	}
	out := make([]SumCoeffs, n)
	for j := 0; j < n; j++ {
		out[j] = SumCoeffs{A: sa[j].Value, B: sb[j].Value}
	}
	return out, nil
}

// IndexedSumFinal is one trustee's sum-proof response share.
type IndexedSumFinal struct {
	Index uint32
	Final SumFinal
}

// CombineSumFinals reconstructs the sum-proof response from t shares.
func CombineSumFinals(shares []IndexedSumFinal, t int) (SumFinal, error) {
	if len(shares) < t {
		return SumFinal{}, fmt.Errorf("zkp: have %d final shares, need %d", len(shares), t)
	}
	use := shares[:t]
	idx := make([]uint32, t)
	for i, s := range use {
		idx[i] = s.Index
	}
	lam, err := shamir.LagrangeCoefficients(idx)
	if err != nil {
		return SumFinal{}, err
	}
	acc := new(big.Int)
	for i, s := range use {
		acc = group.AddScalar(acc, group.MulScalar(lam[i], s.Final.Z))
	}
	return SumFinal{Z: acc}, nil
}

// --- Voter-coin challenge derivation -------------------------------------

// MasterChallenge condenses the voters' coins (one byte per voted ballot in
// serial order: 0 for part A, 1 for part B) into the election challenge
// seed. With θ honest voters the coins have min-entropy θ, which bounds the
// soundness error by 2^-θ (§IV-C of the paper).
func MasterChallenge(electionID string, coins []byte) []byte {
	sum := group.HashToScalar("ddemos/v1/master-challenge", []byte(electionID), coins)
	return group.ScalarBytes(sum)
}

// DeriveChallenge expands the master challenge into the per-proof challenge
// for a specific (serial, part, row, col) proof instance: row is the
// position of the commitment on the shuffled BB list, col the ciphertext
// position within the commitment vector (or SumProofCol for the row's
// sum-is-one proof).
func DeriveChallenge(master []byte, serial uint64, part uint8, row, col int) *big.Int {
	var buf [17]byte
	binary.BigEndian.PutUint64(buf[:8], serial)
	buf[8] = part
	binary.BigEndian.PutUint32(buf[9:13], uint32(row)) //nolint:gosec // row is small
	binary.BigEndian.PutUint32(buf[13:], uint32(col))  //nolint:gosec // col is small
	return group.HashToScalar("ddemos/v1/proof-challenge", master, buf[:])
}

// SumProofCol is the pseudo-column used to derive the challenge for a
// commitment's sum-is-one proof.
const SumProofCol = 0xffffff
