package zkp

import (
	"crypto/rand"
	"math/big"
	"testing"

	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/group"
)

var key = elgamal.DeriveCommitmentKey("zkp-test")

func challenge() *big.Int {
	master := MasterChallenge("zkp-test", []byte{0, 1, 1, 0})
	return DeriveChallenge(master, 1, 0, 0, 0)
}

func TestBitProofBothBranches(t *testing.T) {
	c := challenge()
	for m := 0; m <= 1; m++ {
		ct, r, err := key.Encrypt(big.NewInt(int64(m)), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		com, cf, err := NewBitProofFor(key, ct, m, r, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		fin := cf.Finalize(c)
		if !VerifyBit(key, ct, com, fin, c) {
			t.Fatalf("valid proof for bit %d rejected", m)
		}
	}
}

func TestBitProofRejectsNonBit(t *testing.T) {
	ct, r, _ := key.Encrypt(big.NewInt(2), rand.Reader)
	if _, _, err := NewBitProofFor(key, ct, 2, r, rand.Reader); err == nil {
		t.Fatal("m=2 must be rejected by the prover")
	}
}

func TestBitProofSoundness(t *testing.T) {
	// A ciphertext of 2 cannot be proven: forge a proof by running the
	// honest prover with a lie and check verification fails.
	c := challenge()
	ct, r, _ := key.Encrypt(big.NewInt(2), rand.Reader)
	// Lie: claim it encrypts 1.
	com, cf, err := NewBitProofFor(key, ct, 1, r, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	fin := cf.Finalize(c)
	if VerifyBit(key, ct, com, fin, c) {
		t.Fatal("proof for non-bit ciphertext verified")
	}
}

func TestBitProofWrongChallengeFails(t *testing.T) {
	c := challenge()
	ct, r, _ := key.Encrypt(big.NewInt(1), rand.Reader)
	com, cf, _ := NewBitProofFor(key, ct, 1, r, rand.Reader)
	fin := cf.Finalize(c)
	other := group.AddScalar(c, big.NewInt(1))
	if VerifyBit(key, ct, com, fin, other) {
		t.Fatal("proof verified under wrong challenge")
	}
}

func TestBitProofTamperedFinalFails(t *testing.T) {
	c := challenge()
	ct, r, _ := key.Encrypt(big.NewInt(0), rand.Reader)
	com, cf, _ := NewBitProofFor(key, ct, 0, r, rand.Reader)
	fin := cf.Finalize(c)

	bad := fin
	bad.Z0 = group.AddScalar(fin.Z0, big.NewInt(1))
	if VerifyBit(key, ct, com, bad, c) {
		t.Fatal("tampered z0 accepted")
	}
	bad = fin
	bad.C0 = group.AddScalar(fin.C0, big.NewInt(1))
	if VerifyBit(key, ct, com, bad, c) {
		t.Fatal("tampered c0 accepted")
	}
	if VerifyBit(key, ct, com, BitFinal{}, c) {
		t.Fatal("nil final accepted")
	}
}

func TestBitProofMismatchedCiphertextFails(t *testing.T) {
	c := challenge()
	ct1, r1, _ := key.Encrypt(big.NewInt(1), rand.Reader)
	ct2, _, _ := key.Encrypt(big.NewInt(1), rand.Reader)
	com, cf, _ := NewBitProofFor(key, ct1, 1, r1, rand.Reader)
	fin := cf.Finalize(c)
	if VerifyBit(key, ct2, com, fin, c) {
		t.Fatal("proof transplanted to different ciphertext accepted")
	}
}

func TestSumProof(t *testing.T) {
	c := challenge()
	// Unit vector of length 4, hot position 2: sums to 1.
	cts, op, err := key.EncryptUnitVector(4, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rSum := new(big.Int)
	for _, r := range op.Rs {
		rSum = group.AddScalar(rSum, r)
	}
	com, cf, err := NewSumProof(key, rSum, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	fin := cf.Finalize(c)
	if !VerifySum(key, cts, 1, com, fin, c) {
		t.Fatal("valid sum proof rejected")
	}
	if VerifySum(key, cts, 2, com, fin, c) {
		t.Fatal("sum proof for wrong k accepted")
	}
	bad := fin
	bad.Z = group.AddScalar(fin.Z, big.NewInt(1))
	if VerifySum(key, cts, 1, com, bad, c) {
		t.Fatal("tampered sum response accepted")
	}
	if VerifySum(key, nil, 1, com, fin, c) {
		t.Fatal("empty ciphertext vector accepted")
	}
}

func TestSumProofKSelections(t *testing.T) {
	// k-out-of-m extension: two hot positions, sum = 2.
	c := challenge()
	ct1, op1, _ := key.EncryptUnitVector(4, 0, rand.Reader)
	ct2, op2, _ := key.EncryptUnitVector(4, 3, rand.Reader)
	cts, err := ct1.Add(ct2)
	if err != nil {
		t.Fatal(err)
	}
	rSum := new(big.Int)
	for _, r := range append(op1.Rs, op2.Rs...) {
		rSum = group.AddScalar(rSum, r)
	}
	com, cf, _ := NewSumProof(key, rSum, rand.Reader)
	fin := cf.Finalize(c)
	if !VerifySum(key, cts, 2, com, fin, c) {
		t.Fatal("k=2 sum proof rejected")
	}
}

func TestDistributedBitFinalization(t *testing.T) {
	// EA shares coefficients among 5 trustees, threshold 3. Any 3 trustees'
	// finalized shares must combine to a verifying final move.
	c := challenge()
	ct, r, _ := key.Encrypt(big.NewInt(1), rand.Reader)
	com, cf, _ := NewBitProofFor(key, ct, 1, r, rand.Reader)

	shares, err := ShareBitCoeffs(cf, 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	finShares := make([]IndexedBitFinal, 0, 3)
	for _, i := range []int{4, 1, 2} { // arbitrary trustee subset
		finShares = append(finShares, IndexedBitFinal{
			Index: uint32(i + 1),
			Final: shares[i].Finalize(c),
		})
	}
	fin, err := CombineBitFinals(finShares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyBit(key, ct, com, fin, c) {
		t.Fatal("distributed finalization did not reproduce a valid proof")
	}
}

func TestDistributedBitFinalizationTooFewShares(t *testing.T) {
	c := challenge()
	ct, r, _ := key.Encrypt(big.NewInt(0), rand.Reader)
	_, cf, _ := NewBitProofFor(key, ct, 0, r, rand.Reader)
	shares, _ := ShareBitCoeffs(cf, 3, 5, rand.Reader)
	two := []IndexedBitFinal{
		{Index: 1, Final: shares[0].Finalize(c)},
		{Index: 2, Final: shares[1].Finalize(c)},
	}
	if _, err := CombineBitFinals(two, 3); err == nil {
		t.Fatal("2-of-3 combination must fail")
	}
}

func TestDistributedSumFinalization(t *testing.T) {
	c := challenge()
	cts, op, _ := key.EncryptUnitVector(3, 1, rand.Reader)
	rSum := new(big.Int)
	for _, r := range op.Rs {
		rSum = group.AddScalar(rSum, r)
	}
	com, cf, _ := NewSumProof(key, rSum, rand.Reader)
	shares, err := ShareSumCoeffs(cf, 2, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	finShares := []IndexedSumFinal{
		{Index: 3, Final: shares[2].Finalize(c)},
		{Index: 1, Final: shares[0].Finalize(c)},
	}
	fin, err := CombineSumFinals(finShares, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifySum(key, cts, 1, com, fin, c) {
		t.Fatal("distributed sum finalization failed")
	}
	if _, err := CombineSumFinals(finShares[:1], 2); err == nil {
		t.Fatal("too few shares must fail")
	}
}

func TestChallengeDerivation(t *testing.T) {
	m1 := MasterChallenge("e", []byte{0, 1})
	m2 := MasterChallenge("e", []byte{0, 1})
	m3 := MasterChallenge("e", []byte{1, 1})
	m4 := MasterChallenge("f", []byte{0, 1})
	if string(m1) != string(m2) {
		t.Fatal("master challenge must be deterministic")
	}
	if string(m1) == string(m3) || string(m1) == string(m4) {
		t.Fatal("master challenge must depend on coins and election id")
	}
	c1 := DeriveChallenge(m1, 1, 0, 0, 0)
	c2 := DeriveChallenge(m1, 1, 0, 1, 0)
	c3 := DeriveChallenge(m1, 1, 1, 0, 0)
	c4 := DeriveChallenge(m1, 2, 0, 0, 0)
	if c1.Cmp(c2) == 0 || c1.Cmp(c3) == 0 || c1.Cmp(c4) == 0 {
		t.Fatal("per-proof challenges must be distinct across instances")
	}
}

func BenchmarkNewBitProof(b *testing.B) {
	ct, r, _ := key.Encrypt(big.NewInt(1), rand.Reader)
	rng := group.NewDRBG([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := NewBitProofFor(key, ct, 1, r, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyBit(b *testing.B) {
	c := challenge()
	ct, r, _ := key.Encrypt(big.NewInt(1), rand.Reader)
	com, cf, _ := NewBitProofFor(key, ct, 1, r, rand.Reader)
	fin := cf.Finalize(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !VerifyBit(key, ct, com, fin, c) {
			b.Fatal("must verify")
		}
	}
}
