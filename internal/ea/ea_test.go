package ea

import (
	"bytes"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/votecode"
	"ddemos/internal/crypto/zkp"
)

func testParams() Params {
	return Params{
		ElectionID:  "test-election-1",
		Options:     []string{"alpha", "beta", "gamma"},
		NumBallots:  8,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: time.Now(),
		VotingEnd:   time.Now().Add(time.Hour),
		Seed:        []byte("deterministic-test-seed"),
	}
}

func TestValidateDefaults(t *testing.T) {
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TrusteeThreshold != 2 {
		t.Fatalf("default ht = %d, want 2", p.TrusteeThreshold)
	}
	if p.MaxSelections != 1 {
		t.Fatalf("default k = %d, want 1", p.MaxSelections)
	}
	if p.FaultyVC() != 1 {
		t.Fatalf("fv = %d, want 1", p.FaultyVC())
	}
	if p.FaultyBB() != 1 {
		t.Fatalf("fb = %d, want 1", p.FaultyBB())
	}
}

func TestValidateRejections(t *testing.T) {
	base := testParams()
	cases := []func(*Params){
		func(p *Params) { p.ElectionID = "" },
		func(p *Params) { p.Options = []string{"solo"} },
		func(p *Params) { p.NumBallots = 0 },
		func(p *Params) { p.NumVC = 3 },
		func(p *Params) { p.NumVC = 100 },
		func(p *Params) { p.NumBB = 0 },
		func(p *Params) { p.NumTrustees = 0 },
		func(p *Params) { p.TrusteeThreshold = 9 },
		func(p *Params) { p.MaxSelections = 5 },
		func(p *Params) { p.VotingEnd = p.VotingStart },
	}
	for i, mutate := range cases {
		p := base
		p.Options = append([]string(nil), base.Options...)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestSetupShapes(t *testing.T) {
	p := testParams()
	data, err := Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Ballots) != p.NumBallots {
		t.Fatalf("ballots = %d", len(data.Ballots))
	}
	if len(data.VC) != p.NumVC {
		t.Fatalf("vc inits = %d", len(data.VC))
	}
	if len(data.Trustees) != p.NumTrustees {
		t.Fatalf("trustee inits = %d", len(data.Trustees))
	}
	if data.BB == nil || len(data.BB.Ballots) != p.NumBallots {
		t.Fatal("bb init missing or wrong size")
	}
	m := len(p.Options)
	for i, b := range data.Ballots {
		if b.Serial != uint64(i+1) {
			t.Fatalf("serial %d at index %d", b.Serial, i)
		}
		for part := 0; part < 2; part++ {
			if len(b.Parts[part].Lines) != m {
				t.Fatalf("ballot %d part %d has %d lines", b.Serial, part, len(b.Parts[part].Lines))
			}
			for _, l := range b.Parts[part].Lines {
				if len(l.VoteCode) != votecode.CodeSize || len(l.Receipt) != votecode.ReceiptSize {
					t.Fatal("line sizes wrong")
				}
			}
		}
	}
}

func TestVoteCodesUniquePerBallot(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data.Ballots {
		seen := map[string]bool{}
		for part := 0; part < 2; part++ {
			for _, l := range b.Parts[part].Lines {
				if seen[string(l.VoteCode)] {
					t.Fatalf("ballot %d: duplicate vote code", b.Serial)
				}
				seen[string(l.VoteCode)] = true
			}
		}
	}
}

func TestVCInitValidatesVoteCodes(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Every ballot line's code must hash-match exactly one stored line of
	// the corresponding part, at the same row for every VC node.
	for _, b := range data.Ballots {
		for part := 0; part < 2; part++ {
			for _, l := range b.Parts[part].Lines {
				row := -1
				vc0 := data.VC[0].Ballots[b.Serial-1]
				for r, sl := range vc0.Lines[part] {
					if votecode.VerifyCommit(sl.Hash, l.VoteCode, sl.Salt[:]) {
						if row != -1 {
							t.Fatalf("code matches two rows")
						}
						row = r
					}
				}
				if row == -1 {
					t.Fatalf("ballot %d part %d: code not found in VC store", b.Serial, part)
				}
				for _, vcInit := range data.VC[1:] {
					sl := vcInit.Ballots[b.Serial-1].Lines[part][row]
					if !votecode.VerifyCommit(sl.Hash, l.VoteCode, sl.Salt[:]) {
						t.Fatal("row mismatch across VC nodes")
					}
				}
			}
		}
	}
}

func TestReceiptSharesReconstruct(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	hv := data.Manifest.ReceiptThreshold()
	b := data.Ballots[2]
	l := b.Parts[ballot.PartB].Lines[1]
	// Find the row for this code.
	row := -1
	for r, sl := range data.VC[0].Ballots[b.Serial-1].Lines[1] {
		if votecode.VerifyCommit(sl.Hash, l.VoteCode, sl.Salt[:]) {
			row = r
		}
	}
	if row < 0 {
		t.Fatal("row not found")
	}
	shares := make([]shamir.Share, 0, hv)
	for i := 0; i < hv; i++ {
		sl := data.VC[i].Ballots[b.Serial-1].Lines[1][row]
		v, err := group.DecodeScalar(sl.Share[:])
		if err != nil {
			t.Fatal(err)
		}
		share := shamir.Share{Index: uint32(i + 1), Value: v}
		if !VerifyReceiptShare(data.Manifest.EAPublic, sl.ShareSig[:], data.Manifest.ElectionID, b.Serial, sl.Hash, share) {
			t.Fatalf("share sig invalid for node %d", i)
		}
		shares = append(shares, share)
	}
	rec, err := shamir.Combine(shares, hv)
	if err != nil {
		t.Fatal(err)
	}
	receipt, err := shamir.ScalarToSecret(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receipt, l.Receipt) {
		t.Fatalf("reconstructed %x want %x", receipt, l.Receipt)
	}
}

func TestMskSharesReconstructAndDecrypt(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	hv := data.Manifest.ReceiptThreshold()
	shares := make([]shamir.Share, 0, hv)
	for i := 0; i < hv; i++ {
		ms := data.VC[i].Msk
		share := shamir.Share{Index: ms.Index, Value: ms.Value}
		if !VerifyMskShare(data.Manifest.EAPublic, ms.Sig, data.Manifest.ElectionID, share) {
			t.Fatalf("msk share sig invalid for node %d", i)
		}
		shares = append(shares, share)
	}
	v, err := shamir.Combine(shares, hv)
	if err != nil {
		t.Fatal(err)
	}
	msk, err := shamir.ScalarToSecret(v)
	if err != nil {
		t.Fatal(err)
	}
	if !votecode.VerifyKey(data.BB.HMsk, msk, data.BB.SaltMsk[:]) {
		t.Fatal("reconstructed msk fails H_msk check")
	}
	// Decrypt every BB row and match against ballot codes.
	for _, bbb := range data.BB.Ballots {
		b := data.Ballots[bbb.Serial-1]
		for part := 0; part < 2; part++ {
			found := map[string]bool{}
			for _, row := range bbb.Parts[part] {
				code, err := votecode.Decrypt(msk, row.EncCode)
				if err != nil {
					t.Fatal(err)
				}
				found[string(code)] = true
			}
			for _, l := range b.Parts[part].Lines {
				if !found[string(l.VoteCode)] {
					t.Fatalf("ballot %d part %d: code missing from BB", b.Serial, part)
				}
			}
		}
	}
}

func TestTrusteeSharesOpenCommitments(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	man := &data.Manifest
	ck := man.CommitmentKey()
	ht := man.TrusteeThreshold
	bbb := data.BB.Ballots[0]
	for part := 0; part < 2; part++ {
		for rowIdx, row := range bbb.Parts[part] {
			m := len(row.Commitment)
			for col := 0; col < m; col++ {
				mShares := make([]shamir.Share, 0, ht)
				rShares := make([]shamir.Share, 0, ht)
				for ti := 0; ti < ht; ti++ {
					tr := data.Trustees[ti].Ballots[0].Parts[part][rowIdx]
					mShares = append(mShares, shamir.Share{Index: uint32(ti + 1), Value: tr.MShares[col]})
					rShares = append(rShares, shamir.Share{Index: uint32(ti + 1), Value: tr.RShares[col]})
				}
				mv, err := shamir.Combine(mShares, ht)
				if err != nil {
					t.Fatal(err)
				}
				rv, err := shamir.Combine(rShares, ht)
				if err != nil {
					t.Fatal(err)
				}
				if !ck.VerifyOpening(row.Commitment[col], mv, rv) {
					t.Fatalf("part %d row %d col %d: opening does not verify", part, rowIdx, col)
				}
			}
		}
	}
}

func TestTrusteeSharesFinalizeProofs(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	man := &data.Manifest
	ck := man.CommitmentKey()
	ht := man.TrusteeThreshold
	master := zkp.MasterChallenge(man.ElectionID, []byte{1, 0, 1})
	bbb := data.BB.Ballots[3]
	serial := bbb.Serial
	for part := 0; part < 2; part++ {
		for rowIdx, row := range bbb.Parts[part] {
			m := len(row.Commitment)
			for col := 0; col < m; col++ {
				c := zkp.DeriveChallenge(master, serial, uint8(part), rowIdx, col)
				finals := make([]zkp.IndexedBitFinal, 0, ht)
				for ti := 0; ti < ht; ti++ {
					tr := data.Trustees[ti].Ballots[serial-1].Parts[part][rowIdx]
					finals = append(finals, zkp.IndexedBitFinal{
						Index: uint32(ti + 1),
						Final: tr.BitCoeffs[col].Finalize(c),
					})
				}
				fin, err := zkp.CombineBitFinals(finals, ht)
				if err != nil {
					t.Fatal(err)
				}
				if !zkp.VerifyBit(ck, row.Commitment[col], row.BitCommits[col], fin, c) {
					t.Fatalf("bit proof part %d row %d col %d fails", part, rowIdx, col)
				}
			}
			// Sum proof.
			c := zkp.DeriveChallenge(master, serial, uint8(part), rowIdx, zkp.SumProofCol)
			finals := make([]zkp.IndexedSumFinal, 0, ht)
			for ti := 0; ti < ht; ti++ {
				tr := data.Trustees[ti].Ballots[serial-1].Parts[part][rowIdx]
				finals = append(finals, zkp.IndexedSumFinal{
					Index: uint32(ti + 1),
					Final: tr.SumCoeffs.Finalize(c),
				})
			}
			fin, err := zkp.CombineSumFinals(finals, ht)
			if err != nil {
				t.Fatal(err)
			}
			if !zkp.VerifySum(ck, row.Commitment, 1, row.SumCommit, fin, c) {
				t.Fatalf("sum proof part %d row %d fails", part, rowIdx)
			}
		}
	}
}

func TestSetupDeterministicWithSeed(t *testing.T) {
	p := testParams()
	d1, err := Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Ballots {
		for part := 0; part < 2; part++ {
			for j := range d1.Ballots[i].Parts[part].Lines {
				l1 := d1.Ballots[i].Parts[part].Lines[j]
				l2 := d2.Ballots[i].Parts[part].Lines[j]
				if !bytes.Equal(l1.VoteCode, l2.VoteCode) || !bytes.Equal(l1.Receipt, l2.Receipt) {
					t.Fatal("seeded setup not deterministic")
				}
			}
		}
	}
}

func TestSetupVCOnly(t *testing.T) {
	p := testParams()
	p.VCOnly = true
	data, err := Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	if data.BB != nil || data.Trustees != nil {
		t.Fatal("VCOnly must skip BB and trustee payloads")
	}
	if len(data.VC) != p.NumVC || data.VC[0].Ballots[0] == nil {
		t.Fatal("VC payloads missing")
	}
}

func TestManifestOptionIndex(t *testing.T) {
	data, err := Setup(testParams())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := data.Manifest.OptionIndex("beta")
	if err != nil || idx != 1 {
		t.Fatalf("idx=%d err=%v", idx, err)
	}
	if _, err := data.Manifest.OptionIndex("nope"); err == nil {
		t.Fatal("unknown option must fail")
	}
}
