package ea

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sync"

	"ddemos/internal/ballot"
	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/votecode"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/sig"
	"ddemos/internal/store"
)

// shareParts is the canonical signed-parts layout for share signatures —
// the single source for signShare, verifyShare and ReceiptShareItem, so the
// single-message and batch verification paths can never desynchronize.
func shareParts(electionID string, serial uint64, extra []byte, share shamir.Share) [][]byte {
	return [][]byte{
		[]byte(electionID), sig.Uint64Bytes(serial), extra,
		sig.Uint64Bytes(uint64(share.Index)), group.ScalarBytes(share.Value),
	}
}

func signShare(priv ed25519.PrivateKey, domain, electionID string, serial uint64, extra []byte, share shamir.Share) []byte {
	return sig.Sign(priv, domain, shareParts(electionID, serial, extra, share)...)
}

func verifyShare(pub ed25519.PublicKey, sigBytes []byte, domain, electionID string, serial uint64, extra []byte, share shamir.Share) bool {
	return sig.Verify(pub, sigBytes, domain, shareParts(electionID, serial, extra, share)...)
}

// Setup runs the Election Authority: it generates all keys, ballots and
// component initialization data for the given parameters. Ballots are
// processed in parallel across CPUs; with Params.Seed set the output is
// fully deterministic regardless of parallelism (each ballot derives its
// own DRBG).
func Setup(p Params) (*ElectionData, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	masterRnd := newRand(p.Seed, "master", 0)

	// Keys for every component (no external PKI, §III-D).
	eaKeys, err := sig.NewKeyPair(masterRnd)
	if err != nil {
		return nil, err
	}
	vcKeys := make([]sig.KeyPair, p.NumVC)
	vcPubs := make([]ed25519.PublicKey, p.NumVC)
	for i := range vcKeys {
		if vcKeys[i], err = sig.NewKeyPair(masterRnd); err != nil {
			return nil, err
		}
		vcPubs[i] = vcKeys[i].Public
	}
	trusteeKeys := make([]sig.KeyPair, p.NumTrustees)
	trusteePubs := make([]ed25519.PublicKey, p.NumTrustees)
	for i := range trusteeKeys {
		if trusteeKeys[i], err = sig.NewKeyPair(masterRnd); err != nil {
			return nil, err
		}
		trusteePubs[i] = trusteeKeys[i].Public
	}

	manifest := Manifest{
		ElectionID:       p.ElectionID,
		Options:          append([]string(nil), p.Options...),
		NumBallots:       p.NumBallots,
		NumVC:            p.NumVC,
		NumBB:            p.NumBB,
		NumTrustees:      p.NumTrustees,
		TrusteeThreshold: p.TrusteeThreshold,
		MaxSelections:    p.MaxSelections,
		VotingStart:      p.VotingStart,
		VotingEnd:        p.VotingEnd,
		EAPublic:         eaKeys.Public,
		VCPublics:        vcPubs,
		TrusteePublics:   trusteePubs,
	}

	// Master key for vote-code encryption, shared (Nv-fv, Nv) among VC
	// nodes; H_msk authenticates it for the BB nodes.
	msk, err := votecode.NewKey(masterRnd)
	if err != nil {
		return nil, err
	}
	saltMsk, err := votecode.NewSalt(masterRnd)
	if err != nil {
		return nil, err
	}
	mskScalar, err := shamir.SecretToScalar(msk)
	if err != nil {
		return nil, err
	}
	hv := manifest.ReceiptThreshold()
	mskShares, err := shamir.Split(mskScalar, hv, p.NumVC, masterRnd)
	if err != nil {
		return nil, err
	}

	data := &ElectionData{
		Manifest: manifest,
		Ballots:  make([]*ballot.Ballot, p.NumBallots),
		VC:       make([]*VCInit, p.NumVC),
	}
	for i := range data.VC {
		data.VC[i] = &VCInit{
			Manifest: manifest,
			Index:    i,
			Private:  vcKeys[i].Private,
			Msk: MskShare{
				Index: mskShares[i].Index,
				Value: mskShares[i].Value,
				Sig:   SignMskShare(eaKeys.Private, p.ElectionID, mskShares[i]),
			},
			Ballots: make([]*store.BallotData, p.NumBallots),
		}
	}
	if !p.VCOnly {
		data.BB = &BBInit{Manifest: manifest, Ballots: make([]BBBallot, p.NumBallots)}
		data.BB.HMsk = votecode.KeyCheck(msk, saltMsk)
		copy(data.BB.SaltMsk[:], saltMsk)
		data.Trustees = make([]*TrusteeInit, p.NumTrustees)
		for i := range data.Trustees {
			data.Trustees[i] = &TrusteeInit{
				Manifest: manifest,
				Index:    i,
				Private:  trusteeKeys[i].Private,
				Ballots:  make([]TrusteeBallot, p.NumBallots),
			}
		}
	}

	// Per-ballot generation, parallel across CPUs.
	gen := &ballotGen{
		p:       &p,
		ck:      manifest.CommitmentKey(),
		eaPriv:  eaKeys.Private,
		msk:     msk,
		hv:      hv,
		m:       len(p.Options),
		data:    data,
		hasSeed: p.Seed != nil,
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > p.NumBallots {
		workers = p.NumBallots
	}
	serials := make(chan uint64, workers*2)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for serial := range serials {
				if err := gen.one(serial); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for s := uint64(1); s <= uint64(p.NumBallots); s++ {
		serials <- s
	}
	close(serials)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return data, nil
}

// newRand builds the randomness source for a scope: a deterministic DRBG if
// a seed is set, crypto/rand otherwise.
func newRand(seed []byte, scope string, serial uint64) io.Reader {
	if seed == nil {
		return rand.Reader
	}
	buf := make([]byte, 0, len(seed)+len(scope)+8)
	buf = append(buf, seed...)
	buf = append(buf, scope...)
	buf = binary.BigEndian.AppendUint64(buf, serial)
	return group.NewDRBG(buf)
}

type ballotGen struct {
	p       *Params
	ck      elgamal.CommitmentKey
	eaPriv  ed25519.PrivateKey
	msk     []byte
	hv      int
	m       int
	data    *ElectionData
	hasSeed bool
}

// one generates ballot `serial` and all derived per-component data, writing
// into the pre-allocated slots (no cross-ballot contention).
func (g *ballotGen) one(serial uint64) error {
	var rnd io.Reader
	if g.hasSeed {
		rnd = newRand(g.p.Seed, "ballot", serial)
	} else {
		rnd = rand.Reader
	}
	b := &ballot.Ballot{Serial: serial}
	vcData := make([]*store.BallotData, len(g.data.VC))
	for i := range vcData {
		vcData[i] = &store.BallotData{Serial: serial}
	}
	var bbBallot BBBallot
	var trusteeBallots []TrusteeBallot
	full := g.data.BB != nil
	if full {
		bbBallot.Serial = serial
		trusteeBallots = make([]TrusteeBallot, len(g.data.Trustees))
		for i := range trusteeBallots {
			trusteeBallots[i].Serial = serial
		}
	}

	seenCodes := make(map[string]bool, 2*g.m)
	for part := 0; part < 2; part++ {
		lines := make([]ballot.Line, g.m)
		for opt := 0; opt < g.m; opt++ {
			code, err := votecode.NewCode(rnd)
			if err != nil {
				return err
			}
			for seenCodes[string(code)] { // enforce per-ballot uniqueness
				if code, err = votecode.NewCode(rnd); err != nil {
					return err
				}
			}
			seenCodes[string(code)] = true
			receipt, err := votecode.NewReceipt(rnd)
			if err != nil {
				return err
			}
			lines[opt] = ballot.Line{VoteCode: code, Option: g.p.Options[opt], Receipt: receipt}
		}
		// Shuffle rows so BB position leaks nothing about the option.
		perm, err := randPerm(rnd, g.m)
		if err != nil {
			return err
		}
		mRows := g.m
		for i := range vcData {
			vcData[i].Lines[part] = make([]store.Line, mRows)
		}
		var bbRows []BBRow
		if full {
			bbRows = make([]BBRow, mRows)
		}
		for row := 0; row < mRows; row++ {
			optIdx := perm[row]
			line := &lines[optIdx]
			salt, err := votecode.NewSalt(rnd)
			if err != nil {
				return err
			}
			hash := votecode.HashCommit(line.VoteCode, salt)

			// Receipt sharing (Nv-fv, Nv) with EA-signed shares.
			rScalar, err := shamir.SecretToScalar(line.Receipt)
			if err != nil {
				return err
			}
			rShares, err := shamir.Split(rScalar, g.hv, len(g.data.VC), rnd)
			if err != nil {
				return err
			}
			for i := range vcData {
				sl := &vcData[i].Lines[part][row]
				sl.Hash = hash
				copy(sl.Salt[:], salt)
				copy(sl.Share[:], group.ScalarBytes(rShares[i].Value))
				copy(sl.ShareSig[:], SignReceiptShare(g.eaPriv, g.p.ElectionID, serial, hash, rShares[i]))
			}

			if !full {
				continue
			}
			// BB payload: encrypted code, option-encoding commitment, ZK
			// first moves.
			encCode, err := votecode.Encrypt(g.msk, line.VoteCode, rnd)
			if err != nil {
				return err
			}
			cts, opening, err := g.ck.EncryptUnitVector(g.m, optIdx, rnd)
			if err != nil {
				return err
			}
			bitCommits := make([]zkp.BitCommit, g.m)
			bitCoeffs := make([]zkp.BitCoeffs, g.m)
			rSum := new(big.Int)
			for col := 0; col < g.m; col++ {
				mBit := 0
				if opening.Ms[col].Sign() != 0 {
					mBit = 1
				}
				com, cf, err := zkp.NewBitProofFor(g.ck, cts[col], mBit, opening.Rs[col], rnd)
				if err != nil {
					return err
				}
				bitCommits[col] = com
				bitCoeffs[col] = cf
				rSum = group.AddScalar(rSum, opening.Rs[col])
			}
			sumCommit, sumCoeffs, err := zkp.NewSumProof(g.ck, rSum, rnd)
			if err != nil {
				return err
			}
			bbRows[row] = BBRow{
				EncCode:    encCode,
				Commitment: cts,
				BitCommits: bitCommits,
				SumCommit:  sumCommit,
			}

			// Trustee shares: openings and proof coefficients.
			nt, ht := g.p.NumTrustees, g.p.TrusteeThreshold
			tRows := make([]TrusteeRow, nt)
			for ti := range tRows {
				tRows[ti] = TrusteeRow{
					MShares:   make([]*big.Int, g.m),
					RShares:   make([]*big.Int, g.m),
					BitCoeffs: make([]zkp.BitCoeffs, g.m),
				}
			}
			for col := 0; col < g.m; col++ {
				mShares, err := shamir.Split(opening.Ms[col], ht, nt, rnd)
				if err != nil {
					return err
				}
				rShares, err := shamir.Split(opening.Rs[col], ht, nt, rnd)
				if err != nil {
					return err
				}
				cfShares, err := zkp.ShareBitCoeffs(bitCoeffs[col], ht, nt, rnd)
				if err != nil {
					return err
				}
				for ti := 0; ti < nt; ti++ {
					tRows[ti].MShares[col] = mShares[ti].Value
					tRows[ti].RShares[col] = rShares[ti].Value
					tRows[ti].BitCoeffs[col] = cfShares[ti]
				}
			}
			sumShares, err := zkp.ShareSumCoeffs(sumCoeffs, ht, nt, rnd)
			if err != nil {
				return err
			}
			for ti := 0; ti < nt; ti++ {
				tRows[ti].SumCoeffs = sumShares[ti]
			}
			for ti := range trusteeBallots {
				if trusteeBallots[ti].Parts[part] == nil {
					trusteeBallots[ti].Parts[part] = make([]TrusteeRow, mRows)
				}
				trusteeBallots[ti].Parts[part][row] = tRows[ti]
			}
		}
		if full {
			bbBallot.Parts[part] = bbRows
		}
		b.Parts[part] = ballot.Part{Lines: lines}
	}

	idx := serial - 1
	g.data.Ballots[idx] = b
	for i := range g.data.VC {
		g.data.VC[i].Ballots[idx] = vcData[i]
	}
	if full {
		g.data.BB.Ballots[idx] = bbBallot
		for ti := range g.data.Trustees {
			g.data.Trustees[ti].Ballots[idx] = trusteeBallots[ti]
		}
	}
	return nil
}

// randPerm is a Fisher–Yates shuffle driven by the setup randomness source.
func randPerm(rnd io.Reader, n int) ([]int, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var buf [8]byte
	for i := n - 1; i > 0; i-- {
		if _, err := io.ReadFull(rnd, buf[:]); err != nil {
			return nil, fmt.Errorf("ea: shuffling: %w", err)
		}
		j := int(binary.BigEndian.Uint64(buf[:]) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}
