package ea

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"ddemos/internal/ballot"
	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/votecode"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/sig"
	"ddemos/internal/store"
)

// shareParts is the canonical signed-parts layout for share signatures —
// the single source for signShare, verifyShare and ReceiptShareItem, so the
// single-message and batch verification paths can never desynchronize.
func shareParts(electionID string, serial uint64, extra []byte, share shamir.Share) [][]byte {
	return [][]byte{
		[]byte(electionID), sig.Uint64Bytes(serial), extra,
		sig.Uint64Bytes(uint64(share.Index)), group.ScalarBytes(share.Value),
	}
}

func signShare(priv ed25519.PrivateKey, domain, electionID string, serial uint64, extra []byte, share shamir.Share) []byte {
	return sig.Sign(priv, domain, shareParts(electionID, serial, extra, share)...)
}

func verifyShare(pub ed25519.PublicKey, sigBytes []byte, domain, electionID string, serial uint64, extra []byte, share shamir.Share) bool {
	return sig.Verify(pub, sigBytes, domain, shareParts(electionID, serial, extra, share)...)
}

// Setup runs the Election Authority: it generates all keys, ballots and
// component initialization data for the given parameters, holding the whole
// pool in memory. Ballots are processed in parallel across CPUs; with
// Params.Seed set the output is fully deterministic regardless of
// parallelism (each ballot derives its own DRBG).
//
// Setup is the materialized form of SetupStream: pools that do not fit in
// memory stream through SetupStream instead, which produces byte-identical
// per-ballot data in serial order without ever holding more than the
// reorder window.
func Setup(p Params) (*ElectionData, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ballots := make([]*ballot.Ballot, p.NumBallots)
	vcBallots := make([][]*store.BallotData, p.NumVC)
	for i := range vcBallots {
		vcBallots[i] = make([]*store.BallotData, p.NumBallots)
	}
	var bbBallots []BBBallot
	var trusteeBallots [][]TrusteeBallot
	if !p.VCOnly {
		bbBallots = make([]BBBallot, p.NumBallots)
		trusteeBallots = make([][]TrusteeBallot, p.NumTrustees)
		for i := range trusteeBallots {
			trusteeBallots[i] = make([]TrusteeBallot, p.NumBallots)
		}
	}
	sd, err := SetupStream(p, StreamOptions{}, func(e *Emission) error {
		idx := e.Serial - 1
		ballots[idx] = e.Voter
		for i := range vcBallots {
			vcBallots[i][idx] = e.VC[i]
		}
		if e.BB != nil {
			bbBallots[idx] = *e.BB
		}
		for i := range e.Trustees {
			trusteeBallots[i][idx] = e.Trustees[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	data := &ElectionData{
		Manifest: sd.Manifest,
		Ballots:  ballots,
		VC:       sd.VC,
		BB:       sd.BB,
		Trustees: sd.Trustees,
	}
	for i, v := range data.VC {
		v.Ballots = vcBallots[i]
	}
	if data.BB != nil {
		data.BB.Ballots = bbBallots
		for i, t := range data.Trustees {
			t.Ballots = trusteeBallots[i]
		}
	}
	return data, nil
}

// setupComponents generates everything that is O(components), not
// O(ballots): the key pairs, the manifest, the master key and its shares,
// and the slim (ballot-less) per-component initialization payloads. The
// master randomness consumption order is frozen — it is what makes seeded
// setups reproducible across the Setup and SetupStream routes.
func setupComponents(p *Params) (*StreamData, *ballotGen, error) {
	masterRnd := newRand(p.Seed, "master", 0)

	// Keys for every component (no external PKI, §III-D).
	eaKeys, err := sig.NewKeyPair(masterRnd)
	if err != nil {
		return nil, nil, err
	}
	vcKeys := make([]sig.KeyPair, p.NumVC)
	vcPubs := make([]ed25519.PublicKey, p.NumVC)
	for i := range vcKeys {
		if vcKeys[i], err = sig.NewKeyPair(masterRnd); err != nil {
			return nil, nil, err
		}
		vcPubs[i] = vcKeys[i].Public
	}
	trusteeKeys := make([]sig.KeyPair, p.NumTrustees)
	trusteePubs := make([]ed25519.PublicKey, p.NumTrustees)
	for i := range trusteeKeys {
		if trusteeKeys[i], err = sig.NewKeyPair(masterRnd); err != nil {
			return nil, nil, err
		}
		trusteePubs[i] = trusteeKeys[i].Public
	}

	manifest := Manifest{
		ElectionID:       p.ElectionID,
		Options:          append([]string(nil), p.Options...),
		NumBallots:       p.NumBallots,
		NumVC:            p.NumVC,
		NumBB:            p.NumBB,
		NumTrustees:      p.NumTrustees,
		TrusteeThreshold: p.TrusteeThreshold,
		MaxSelections:    p.MaxSelections,
		VotingStart:      p.VotingStart,
		VotingEnd:        p.VotingEnd,
		EAPublic:         eaKeys.Public,
		VCPublics:        vcPubs,
		TrusteePublics:   trusteePubs,
	}

	// Master key for vote-code encryption, shared (Nv-fv, Nv) among VC
	// nodes; H_msk authenticates it for the BB nodes.
	msk, err := votecode.NewKey(masterRnd)
	if err != nil {
		return nil, nil, err
	}
	saltMsk, err := votecode.NewSalt(masterRnd)
	if err != nil {
		return nil, nil, err
	}
	mskScalar, err := shamir.SecretToScalar(msk)
	if err != nil {
		return nil, nil, err
	}
	hv := manifest.ReceiptThreshold()
	mskShares, err := shamir.Split(mskScalar, hv, p.NumVC, masterRnd)
	if err != nil {
		return nil, nil, err
	}

	sd := &StreamData{
		Manifest: manifest,
		VC:       make([]*VCInit, p.NumVC),
	}
	for i := range sd.VC {
		sd.VC[i] = &VCInit{
			Manifest: manifest,
			Index:    i,
			Private:  vcKeys[i].Private,
			Msk: MskShare{
				Index: mskShares[i].Index,
				Value: mskShares[i].Value,
				Sig:   SignMskShare(eaKeys.Private, p.ElectionID, mskShares[i]),
			},
		}
	}
	if !p.VCOnly {
		sd.BB = &BBInit{Manifest: manifest}
		sd.BB.HMsk = votecode.KeyCheck(msk, saltMsk)
		copy(sd.BB.SaltMsk[:], saltMsk)
		sd.Trustees = make([]*TrusteeInit, p.NumTrustees)
		for i := range sd.Trustees {
			sd.Trustees[i] = &TrusteeInit{
				Manifest: manifest,
				Index:    i,
				Private:  trusteeKeys[i].Private,
			}
		}
	}

	gen := &ballotGen{
		p:       p,
		ck:      manifest.CommitmentKey(),
		eaPriv:  eaKeys.Private,
		msk:     msk,
		hv:      hv,
		m:       len(p.Options),
		numVC:   p.NumVC,
		full:    !p.VCOnly,
		numT:    p.NumTrustees,
		hasSeed: p.Seed != nil,
	}
	return sd, gen, nil
}

// newRand builds the randomness source for a scope: a deterministic DRBG if
// a seed is set, crypto/rand otherwise.
func newRand(seed []byte, scope string, serial uint64) io.Reader {
	if seed == nil {
		return rand.Reader
	}
	buf := make([]byte, 0, len(seed)+len(scope)+8)
	buf = append(buf, seed...)
	buf = append(buf, scope...)
	buf = binary.BigEndian.AppendUint64(buf, serial)
	return group.NewDRBG(buf)
}

type ballotGen struct {
	p       *Params
	ck      elgamal.CommitmentKey
	eaPriv  ed25519.PrivateKey
	msk     []byte
	hv      int
	m       int
	numVC   int
	full    bool
	numT    int
	hasSeed bool
}

// one generates ballot `serial` and all derived per-component data as a
// self-contained Emission (no shared state; safe to call concurrently).
func (g *ballotGen) one(serial uint64) (*Emission, error) {
	var rnd io.Reader
	if g.hasSeed {
		rnd = newRand(g.p.Seed, "ballot", serial)
	} else {
		rnd = rand.Reader
	}
	b := &ballot.Ballot{Serial: serial}
	vcData := make([]*store.BallotData, g.numVC)
	for i := range vcData {
		vcData[i] = &store.BallotData{Serial: serial}
	}
	var bbBallot BBBallot
	var trusteeBallots []TrusteeBallot
	full := g.full
	if full {
		bbBallot.Serial = serial
		trusteeBallots = make([]TrusteeBallot, g.numT)
		for i := range trusteeBallots {
			trusteeBallots[i].Serial = serial
		}
	}

	seenCodes := make(map[string]bool, 2*g.m)
	for part := 0; part < 2; part++ {
		lines := make([]ballot.Line, g.m)
		for opt := 0; opt < g.m; opt++ {
			code, err := votecode.NewCode(rnd)
			if err != nil {
				return nil, err
			}
			for seenCodes[string(code)] { // enforce per-ballot uniqueness
				if code, err = votecode.NewCode(rnd); err != nil {
					return nil, err
				}
			}
			seenCodes[string(code)] = true
			receipt, err := votecode.NewReceipt(rnd)
			if err != nil {
				return nil, err
			}
			lines[opt] = ballot.Line{VoteCode: code, Option: g.p.Options[opt], Receipt: receipt}
		}
		// Shuffle rows so BB position leaks nothing about the option.
		perm, err := randPerm(rnd, g.m)
		if err != nil {
			return nil, err
		}
		mRows := g.m
		for i := range vcData {
			vcData[i].Lines[part] = make([]store.Line, mRows)
		}
		var bbRows []BBRow
		if full {
			bbRows = make([]BBRow, mRows)
		}
		for row := 0; row < mRows; row++ {
			optIdx := perm[row]
			line := &lines[optIdx]
			salt, err := votecode.NewSalt(rnd)
			if err != nil {
				return nil, err
			}
			hash := votecode.HashCommit(line.VoteCode, salt)

			// Receipt sharing (Nv-fv, Nv) with EA-signed shares.
			rScalar, err := shamir.SecretToScalar(line.Receipt)
			if err != nil {
				return nil, err
			}
			rShares, err := shamir.Split(rScalar, g.hv, g.numVC, rnd)
			if err != nil {
				return nil, err
			}
			for i := range vcData {
				sl := &vcData[i].Lines[part][row]
				sl.Hash = hash
				copy(sl.Salt[:], salt)
				copy(sl.Share[:], group.ScalarBytes(rShares[i].Value))
				copy(sl.ShareSig[:], SignReceiptShare(g.eaPriv, g.p.ElectionID, serial, hash, rShares[i]))
			}

			if !full {
				continue
			}
			// BB payload: encrypted code, option-encoding commitment, ZK
			// first moves.
			encCode, err := votecode.Encrypt(g.msk, line.VoteCode, rnd)
			if err != nil {
				return nil, err
			}
			cts, opening, err := g.ck.EncryptUnitVector(g.m, optIdx, rnd)
			if err != nil {
				return nil, err
			}
			bitCommits := make([]zkp.BitCommit, g.m)
			bitCoeffs := make([]zkp.BitCoeffs, g.m)
			rSum := new(big.Int)
			for col := 0; col < g.m; col++ {
				mBit := 0
				if opening.Ms[col].Sign() != 0 {
					mBit = 1
				}
				com, cf, err := zkp.NewBitProofFor(g.ck, cts[col], mBit, opening.Rs[col], rnd)
				if err != nil {
					return nil, err
				}
				bitCommits[col] = com
				bitCoeffs[col] = cf
				rSum = group.AddScalar(rSum, opening.Rs[col])
			}
			sumCommit, sumCoeffs, err := zkp.NewSumProof(g.ck, rSum, rnd)
			if err != nil {
				return nil, err
			}
			bbRows[row] = BBRow{
				EncCode:    encCode,
				Commitment: cts,
				BitCommits: bitCommits,
				SumCommit:  sumCommit,
			}

			// Trustee shares: openings and proof coefficients.
			nt, ht := g.p.NumTrustees, g.p.TrusteeThreshold
			tRows := make([]TrusteeRow, nt)
			for ti := range tRows {
				tRows[ti] = TrusteeRow{
					MShares:   make([]*big.Int, g.m),
					RShares:   make([]*big.Int, g.m),
					BitCoeffs: make([]zkp.BitCoeffs, g.m),
				}
			}
			for col := 0; col < g.m; col++ {
				mShares, err := shamir.Split(opening.Ms[col], ht, nt, rnd)
				if err != nil {
					return nil, err
				}
				rShares, err := shamir.Split(opening.Rs[col], ht, nt, rnd)
				if err != nil {
					return nil, err
				}
				cfShares, err := zkp.ShareBitCoeffs(bitCoeffs[col], ht, nt, rnd)
				if err != nil {
					return nil, err
				}
				for ti := 0; ti < nt; ti++ {
					tRows[ti].MShares[col] = mShares[ti].Value
					tRows[ti].RShares[col] = rShares[ti].Value
					tRows[ti].BitCoeffs[col] = cfShares[ti]
				}
			}
			sumShares, err := zkp.ShareSumCoeffs(sumCoeffs, ht, nt, rnd)
			if err != nil {
				return nil, err
			}
			for ti := 0; ti < nt; ti++ {
				tRows[ti].SumCoeffs = sumShares[ti]
			}
			for ti := range trusteeBallots {
				if trusteeBallots[ti].Parts[part] == nil {
					trusteeBallots[ti].Parts[part] = make([]TrusteeRow, mRows)
				}
				trusteeBallots[ti].Parts[part][row] = tRows[ti]
			}
		}
		if full {
			bbBallot.Parts[part] = bbRows
		}
		b.Parts[part] = ballot.Part{Lines: lines}
	}

	e := &Emission{Serial: serial, Voter: b, VC: vcData}
	if full {
		e.BB = &bbBallot
		e.Trustees = trusteeBallots
	}
	return e, nil
}

// randPerm is a Fisher–Yates shuffle driven by the setup randomness source.
func randPerm(rnd io.Reader, n int) ([]int, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var buf [8]byte
	for i := n - 1; i > 0; i-- {
		if _, err := io.ReadFull(rnd, buf[:]); err != nil {
			return nil, fmt.Errorf("ea: shuffling: %w", err)
		}
		j := int(binary.BigEndian.Uint64(buf[:]) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}
