package ea

import (
	"fmt"
	"runtime"
	"sync"

	"ddemos/internal/ballot"
	"ddemos/internal/store"
)

// Emission is everything the EA derives from one ballot: the voter-facing
// ballot sheet, the per-VC store records, and (unless Params.VCOnly) the BB
// row payload and per-trustee opening shares. Emissions are produced in
// strict serial order, so a sink can stream each one to disk and drop it —
// the whole pool never has to exist in memory at once.
type Emission struct {
	Serial   uint64
	Voter    *ballot.Ballot
	VC       []*store.BallotData // one per VC node, indexed by VC index
	BB       *BBBallot           // nil when Params.VCOnly
	Trustees []TrusteeBallot     // one per trustee; empty when Params.VCOnly
}

// StreamData is the O(components) part of a setup: the manifest and the
// per-component initialization payloads with their Ballots slices left nil.
// The per-ballot data flows through the SetupStream sink instead.
type StreamData struct {
	Manifest Manifest
	VC       []*VCInit
	BB       *BBInit        // nil when Params.VCOnly
	Trustees []*TrusteeInit // nil when Params.VCOnly
}

// StreamOptions tunes the SetupStream pipeline. The zero value is ready to
// use.
type StreamOptions struct {
	// Workers is the number of concurrent ballot generators; 0 means
	// GOMAXPROCS.
	Workers int
	// Window bounds how many ballots may be in flight (generated but not
	// yet emitted) at once — the reorder buffer between parallel workers
	// and the strictly-ordered sink. 0 means DefaultStreamWindow. Peak
	// memory of a streaming setup is O(Window + segment), independent of
	// NumBallots.
	Window int
	// OnComponents, when set, is called with the completed StreamData
	// after key/component generation and before the first ballot is
	// emitted — the hook a streaming sink uses to write slim init headers
	// ahead of the per-ballot values. An error aborts the setup.
	OnComponents func(*StreamData) error
}

// DefaultStreamWindow is the default reorder-window size: large enough to
// keep every core busy even when per-ballot generation times vary, small
// next to any segment size.
const DefaultStreamWindow = 256

// SetupStream runs EA setup with O(window) memory: components and keys are
// generated first (returned as StreamData), then ballots are generated in
// parallel and the sink is called exactly once per ballot in strict serial
// order (1..NumBallots). If the sink returns an error the stream stops and
// SetupStream returns that error.
//
// With Params.Seed set the emitted data is byte-identical to Setup's for
// the same Params, regardless of Workers/Window: each ballot derives its
// own DRBG from (seed, serial) and the master randomness is consumed before
// any ballot work starts.
func SetupStream(p Params, opts StreamOptions, sink func(*Emission) error) (*StreamData, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, fmt.Errorf("ea: SetupStream requires a sink")
	}
	sd, gen, err := setupComponents(&p)
	if err != nil {
		return nil, err
	}
	if opts.OnComponents != nil {
		if err := opts.OnComponents(sd); err != nil {
			return nil, err
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.NumBallots {
		workers = p.NumBallots
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	if window < workers {
		window = workers
	}
	if window > p.NumBallots {
		window = p.NumBallots
	}
	if p.NumBallots == 0 {
		return sd, nil
	}

	// Ordered-futures pipeline: the dispatcher assigns each serial a slot
	// (a one-shot result channel) and pushes the slot onto `slots` in
	// serial order while workers race on `work`; the sequencer drains
	// `slots` in order, so emissions reach the sink strictly ordered while
	// at most `window` ballots are in flight. `done` tears everything down
	// on the first error.
	type slot struct {
		serial uint64
		res    chan *Emission
	}
	var (
		slots    = make(chan slot, window)
		work     = make(chan slot)
		done     = make(chan struct{})
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(done)
		})
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // dispatcher
		defer wg.Done()
		defer close(slots)
		defer close(work)
		for s := uint64(1); s <= uint64(p.NumBallots); s++ {
			sl := slot{serial: s, res: make(chan *Emission, 1)}
			select {
			case slots <- sl:
			case <-done:
				return
			}
			select {
			case work <- sl:
			case <-done:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { // worker
			defer wg.Done()
			for sl := range work {
				e, err := gen.one(sl.serial)
				if err != nil {
					fail(err)
					return
				}
				select {
				case sl.res <- e:
				case <-done:
					return
				}
			}
		}()
	}

	// Sequencer: runs on the caller's goroutine so sink needs no locking.
	for sl := range slots {
		select {
		case <-done: // tearing down — just drain the remaining slots
			continue
		default:
		}
		select {
		case e := <-sl.res:
			if err := sink(e); err != nil {
				fail(err)
			}
		case <-done:
		}
	}
	wg.Wait()
	return sd, firstErr
}
