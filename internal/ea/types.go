// Package ea implements the Election Authority of §III-D: the setup-only
// component that generates every ballot, every key pair and the
// initialization data of all VC nodes, BB nodes and trustees, and is then
// destroyed. Setup returns plain data structures; nothing of the EA's
// internal state (the master key, vote codes in clear, commitment openings,
// proof witnesses) survives outside the per-component payloads that are
// supposed to hold them.
package ea

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/big"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/crypto/elgamal"
	"ddemos/internal/crypto/shamir"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/sig"
	"ddemos/internal/store"
)

// Params configures an election.
type Params struct {
	// ElectionID is the globally unique election identifier; the ElGamal
	// commitment key and consensus coin are derived from it.
	ElectionID string
	// Options are the m election options, in canonical (manifest) order.
	Options []string
	// NumBallots is n, the number of eligible voters.
	NumBallots int
	// NumVC is Nv. The tolerated Byzantine VC nodes are fv = ⌊(Nv-1)/3⌋.
	NumVC int
	// NumBB is Nb; fb = ⌊(Nb-1)/2⌋ may be Byzantine.
	NumBB int
	// NumTrustees is Nt.
	NumTrustees int
	// TrusteeThreshold is ht, the number of honest trustees required to
	// produce the tally. Defaults to ⌊Nt/2⌋+1.
	TrusteeThreshold int
	// MaxSelections is k for k-out-of-m elections (paper §VI future work);
	// defaults to 1.
	MaxSelections int
	// VotingStart and VotingEnd delimit election hours.
	VotingStart, VotingEnd time.Time
	// VCOnly skips the BB/trustee cryptographic payload (commitments,
	// proofs, trustee shares), producing only what vote collection needs.
	// Used by the vote-collection-only benchmarks (Fig. 4, 5a, 5b).
	VCOnly bool
	// Seed, if non-nil, makes setup deterministic (tests, reproducible
	// benchmarks). Production elections must leave it nil to use
	// crypto/rand.
	Seed []byte
}

// FaultyVC returns fv = ⌊(Nv-1)/3⌋.
func (p *Params) FaultyVC() int { return (p.NumVC - 1) / 3 }

// FaultyBB returns fb = ⌊(Nb-1)/2⌋.
func (p *Params) FaultyBB() int { return (p.NumBB - 1) / 2 }

// Validate checks parameter consistency and fills defaults.
func (p *Params) Validate() error {
	if p.ElectionID == "" {
		return errors.New("ea: ElectionID is required")
	}
	if len(p.Options) < 2 {
		return fmt.Errorf("ea: need at least 2 options, have %d", len(p.Options))
	}
	if p.NumBallots < 1 {
		return errors.New("ea: need at least one ballot")
	}
	if p.NumVC < 4 {
		return fmt.Errorf("ea: need at least 4 VC nodes for fv>=1 (have %d)", p.NumVC)
	}
	if p.NumVC > 64 {
		return errors.New("ea: at most 64 VC nodes supported")
	}
	if p.NumBB < 1 {
		return errors.New("ea: need at least one BB node")
	}
	if p.NumTrustees < 1 {
		return errors.New("ea: need at least one trustee")
	}
	if p.TrusteeThreshold == 0 {
		p.TrusteeThreshold = p.NumTrustees/2 + 1
	}
	if p.TrusteeThreshold < 1 || p.TrusteeThreshold > p.NumTrustees {
		return fmt.Errorf("ea: trustee threshold %d out of range [1,%d]", p.TrusteeThreshold, p.NumTrustees)
	}
	if p.MaxSelections == 0 {
		p.MaxSelections = 1
	}
	if p.MaxSelections < 1 || p.MaxSelections > len(p.Options) {
		return fmt.Errorf("ea: max selections %d out of range [1,%d]", p.MaxSelections, len(p.Options))
	}
	if !p.VotingEnd.After(p.VotingStart) {
		return errors.New("ea: voting end must be after start")
	}
	return nil
}

// Manifest is the public election description, identical on every BB node.
type Manifest struct {
	ElectionID       string
	Options          []string
	NumBallots       int
	NumVC            int
	NumBB            int
	NumTrustees      int
	TrusteeThreshold int
	MaxSelections    int
	VotingStart      time.Time
	VotingEnd        time.Time

	EAPublic       ed25519.PublicKey
	VCPublics      []ed25519.PublicKey
	TrusteePublics []ed25519.PublicKey
}

// FaultyVC returns fv.
func (m *Manifest) FaultyVC() int { return (m.NumVC - 1) / 3 }

// FaultyBB returns fb.
func (m *Manifest) FaultyBB() int { return (m.NumBB - 1) / 2 }

// ReceiptThreshold returns Nv - fv, the shares needed to reconstruct a
// receipt (and the endorsements needed for a UCERT).
func (m *Manifest) ReceiptThreshold() int { return m.NumVC - m.FaultyVC() }

// CommitmentKey re-derives the election's option-encoding commitment key.
func (m *Manifest) CommitmentKey() elgamal.CommitmentKey {
	return elgamal.DeriveCommitmentKey(m.ElectionID)
}

// OptionIndex returns the manifest position of an option name.
func (m *Manifest) OptionIndex(option string) (int, error) {
	for i, o := range m.Options {
		if o == option {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ea: option %q not in manifest", option)
}

// MskShare is one VC node's share of the master key, signed by the EA.
type MskShare struct {
	Index uint32
	Value *big.Int
	Sig   []byte
}

// VCInit is the initialization payload for one Vote Collector node.
type VCInit struct {
	Manifest Manifest
	// Index is the node's 0-based index; its share index is Index+1.
	Index   int
	Private ed25519.PrivateKey
	Msk     MskShare
	// Ballots is the node's ballot store content (hash commitments, salts,
	// receipt shares), rows in the same shuffled order as the BB. Legacy
	// whole-pool payloads carry it inline; segment-emitting setups leave it
	// nil and set BallotsDir instead.
	Ballots []*store.BallotData
	// BallotsDir, when non-empty, points at a pre-built segment directory
	// (store.OpenSegmented layout) holding the node's ballot pool, so the
	// VC boots without ever decoding the pool into memory.
	BallotsDir string
}

// BBRow is one ⟨encrypted vote code, payload⟩ tuple on the shuffled list of
// a ballot part (§III-D BB initialization data).
type BBRow struct {
	// EncCode is the AES-128-CBC$ encryption of the row's vote code.
	EncCode []byte
	// Commitment element-wise encrypts the unit vector of the row's option.
	Commitment elgamal.VectorCiphertext
	// BitCommits are the ZK first moves proving each vector element is a
	// bit; SumCommit proves the elements sum to one.
	BitCommits []zkp.BitCommit
	SumCommit  zkp.SumCommit
}

// BBBallot is the BB payload for one ballot.
type BBBallot struct {
	Serial uint64
	Parts  [2][]BBRow
}

// BBInit is the (identical) initialization payload of every BB node.
type BBInit struct {
	Manifest Manifest
	// HMsk = SHA256(msk || SaltMsk) authenticates the reconstructed master
	// key.
	HMsk    [32]byte
	SaltMsk [8]byte
	// Ballots[i] holds serial i+1.
	Ballots []BBBallot
}

// TrusteeRow holds one trustee's shares for one BB row: the shares of the
// commitment opening (message and randomness per vector element) and the
// shares of the ZK final-move coefficients.
type TrusteeRow struct {
	MShares   []*big.Int
	RShares   []*big.Int
	BitCoeffs []zkp.BitCoeffs
	SumCoeffs zkp.SumCoeffs
}

// TrusteeBallot is one trustee's shares for one ballot.
type TrusteeBallot struct {
	Serial uint64
	Parts  [2][]TrusteeRow
}

// TrusteeInit is the initialization payload for one trustee.
type TrusteeInit struct {
	Manifest Manifest
	// Index is the trustee's 0-based index; its share index is Index+1.
	Index   int
	Private ed25519.PrivateKey
	Ballots []TrusteeBallot
}

// ElectionData is everything Setup produces. Ballots go to voters over the
// out-of-scope secure distribution channel; the rest initializes the system
// components. After distributing these payloads the EA must be destroyed.
type ElectionData struct {
	Manifest Manifest
	Ballots  []*ballot.Ballot
	VC       []*VCInit
	BB       *BBInit
	Trustees []*TrusteeInit
}

// Receipt share signature binding. The EA signs every receipt share with
// the line's hash commitment so any VC node can verify a disclosed share
// against its own store (§V: "VSS with honest dealer").
const (
	receiptShareDomain = "ddemos/v1/receipt-share"
	mskShareDomain     = "ddemos/v1/msk-share"
)

// ReceiptShareDomain exposes the receipt-share signature domain for batch
// verification (sig.VerifyMany) in the VC message pipeline.
const ReceiptShareDomain = receiptShareDomain

// ReceiptShareItem builds the sig.VerifyMany item for one receipt-share
// signature, letting VC nodes validate a whole batch of disclosed shares in
// one pass instead of per-message sig.Verify calls.
func ReceiptShareItem(pub ed25519.PublicKey, sigBytes []byte, electionID string, serial uint64, lineHash [32]byte, share shamir.Share) sig.Item {
	return sig.Item{Pub: pub, Sig: sigBytes, Parts: shareParts(electionID, serial, lineHash[:], share)}
}

// SignReceiptShare produces the EA signature for a receipt share.
func SignReceiptShare(priv ed25519.PrivateKey, electionID string, serial uint64, lineHash [32]byte, share shamir.Share) []byte {
	return signShare(priv, receiptShareDomain, electionID, serial, lineHash[:], share)
}

// VerifyReceiptShare checks a receipt share signature.
func VerifyReceiptShare(pub ed25519.PublicKey, sigBytes []byte, electionID string, serial uint64, lineHash [32]byte, share shamir.Share) bool {
	return verifyShare(pub, sigBytes, receiptShareDomain, electionID, serial, lineHash[:], share)
}

// SignMskShare produces the EA signature for a master-key share.
func SignMskShare(priv ed25519.PrivateKey, electionID string, share shamir.Share) []byte {
	return signShare(priv, mskShareDomain, electionID, 0, nil, share)
}

// VerifyMskShare checks a master-key share signature.
func VerifyMskShare(pub ed25519.PublicKey, sigBytes []byte, electionID string, share shamir.Share) bool {
	return verifyShare(pub, sigBytes, mskShareDomain, electionID, 0, nil, share)
}
