package httpapi

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/vc"
)

// newTestCluster builds a small running election and HTTP servers for one
// VC and one BB node — the fixture for the API-contract tests.
func newTestCluster(t *testing.T) (*ea.ElectionData, *core.Cluster, *httptest.Server, *httptest.Server) {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "api-test",
		Options:     []string{"yes", "no"},
		NumBallots:  4,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("api-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.New(sim.Config{Start: start.Add(time.Minute)})
	cluster, err := core.NewCluster(data, core.Options{Sim: drv})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	t.Cleanup(drv.Spin())

	vcSrv := httptest.NewServer(VCHandler(cluster.VCs[0]))
	t.Cleanup(vcSrv.Close)
	bbSrv := httptest.NewServer(BBHandler(cluster.BBs[0]))
	t.Cleanup(bbSrv.Close)
	return data, cluster, vcSrv, bbSrv
}

// decodeEnvelope reads an error response's body as the raw JSON envelope,
// including the legacy "error" mirror the typed decoder ignores.
func decodeEnvelope(t *testing.T, resp *http.Response) (env struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Error   string `json:"error"`
}) {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v", err)
	}
	return env
}

// TestErrorEnvelopeRoundTrip pins the uniform error contract on both
// handlers: every error path emits {code, message} (with the legacy "error"
// mirror), and the clients surface it as a typed *APIError whose code the
// caller can branch on.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	_, _, vcSrv, bbSrv := newTestCluster(t)
	ctx := context.Background()

	// VC: malformed JSON → bad_request, on the wire.
	resp, err := http.Post(vcSrv.URL+"/v1/vote", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed vote status = %d", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if env.Code != CodeBadRequest || env.Message == "" || env.Error != env.Message {
		t.Fatalf("envelope = %+v", env)
	}

	// VC: protocol-level rejection → typed vote_rejected through the client.
	vcClient := &VCClient{BaseURL: vcSrv.URL}
	_, err = vcClient.SubmitVote(ctx, 999, []byte("no-such-code"))
	if !HasCode(err, CodeVoteRejected) {
		t.Fatalf("unknown serial error = %v", err)
	}
	if ae, ok := AsAPIError(err); !ok || ae.Status != http.StatusConflict || ae.Message == "" {
		t.Fatalf("typed error = %+v", err)
	}

	// BB: unpublished data → typed not_found through the client.
	bbClient := &BBClient{BaseURL: bbSrv.URL}
	if _, err := bbClient.Result(ctx); !HasCode(err, CodeNotFound) {
		t.Fatalf("unpublished result error = %v", err)
	}

	// BB: undecodable submission body → bad_request; a decodable one the
	// node refuses (bad signature) → bad_submission.
	resp, err = http.Post(bbSrv.URL+"/v1/submit/voteset", "application/octet-stream",
		strings.NewReader("not gob at all"))
	if err != nil {
		t.Fatal(err)
	}
	if env := decodeEnvelope(t, resp); env.Code != CodeBadRequest {
		t.Fatalf("garbage gob envelope = %+v", env)
	}
	err = bbClient.SubmitVoteSet(ctx, 0, nil, []byte("forged signature"))
	if !HasCode(err, CodeBadSubmission) {
		t.Fatalf("forged vote set error = %v", err)
	}

	// Non-envelope error bodies (proxies, legacy servers) stay debuggable
	// under CodeUnknown with the body preserved.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text failure", http.StatusBadGateway)
	}))
	defer legacy.Close()
	_, err = (&BBClient{BaseURL: legacy.URL}).Manifest(ctx)
	ae, ok := AsAPIError(err)
	if !ok || ae.Code != CodeUnknown || ae.Status != http.StatusBadGateway ||
		!strings.Contains(ae.Message, "plain text failure") {
		t.Fatalf("legacy body error = %v", err)
	}
}

// TestContextCancellationEveryClientMethod drives every client method
// against a handler that never answers: the caller's context deadline must
// abort each call — no method may fall back to a transport-level wait.
func TestContextCancellationEveryClientMethod(t *testing.T) {
	release := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold the request open until the client gives up
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer stall.Close()
	defer close(release) // unblock straggling handlers so Close can drain

	vcClient := &VCClient{BaseURL: stall.URL}
	bbClient := &BBClient{BaseURL: stall.URL}
	calls := map[string]func(ctx context.Context) error{
		"VCClient.SubmitVote": func(ctx context.Context) error {
			_, err := vcClient.SubmitVote(ctx, 1, []byte("code"))
			return err
		},
		"VCClient.Metrics":  func(ctx context.Context) error { _, err := vcClient.Metrics(ctx); return err },
		"BBClient.Manifest": func(ctx context.Context) error { _, err := bbClient.Manifest(ctx); return err },
		"BBClient.Init":     func(ctx context.Context) error { _, err := bbClient.Init(ctx); return err },
		"BBClient.VoteSet":  func(ctx context.Context) error { _, err := bbClient.VoteSet(ctx); return err },
		"BBClient.Cast":     func(ctx context.Context) error { _, err := bbClient.Cast(ctx); return err },
		"BBClient.Result":   func(ctx context.Context) error { _, err := bbClient.Result(ctx); return err },
		"BBClient.Metrics":  func(ctx context.Context) error { _, err := bbClient.Metrics(ctx); return err },
		"BBClient.SubmitVoteSet": func(ctx context.Context) error {
			return bbClient.SubmitVoteSet(ctx, 0, nil, nil)
		},
		"BBClient.SubmitMskShare": func(ctx context.Context) error {
			return bbClient.SubmitMskShare(ctx, ea.MskShare{})
		},
		"BBClient.SubmitTrusteePost": func(ctx context.Context) error {
			return bbClient.SubmitTrusteePost(ctx, &bb.TrusteePost{})
		},
	}
	for name, call := range calls {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := call(ctx)
			if err == nil {
				t.Fatal("stalled request must fail")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error does not carry the context deadline: %v", err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
		})
	}

	// The bound bb.API view inherits its context's cancellation too.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := bbClient.API(ctx).Manifest(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bound API view error = %v", err)
	}
}

// TestUnversionedAliasCompat pins the one-release alias contract: every
// pre-v1 path answers exactly like its /v1/ twin — except the BB's
// unversioned GET /metrics, which deliberately keeps its legacy gob body
// while /v1/metrics serves JSON.
func TestUnversionedAliasCompat(t *testing.T) {
	data, _, vcSrv, bbSrv := newTestCluster(t)
	ctx := context.Background()

	// Voting through the unversioned POST /vote still works and returns
	// the same receipt the ballot carries.
	b := data.Ballots[0]
	body, _ := json.Marshal(VoteRequest{Serial: b.Serial, Code: ballotCodeHex(b.Parts[0].Lines[0].VoteCode)})
	resp, err := http.Post(vcSrv.URL+"/vote", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unversioned /vote status = %d", resp.StatusCode)
	}
	var vr VoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if vr.Receipt != ballotCodeHex(b.Parts[0].Lines[0].Receipt) {
		t.Fatalf("receipt = %q", vr.Receipt)
	}

	// Unversioned and versioned BB reads answer identically — same status,
	// byte-identical body. /voteset is pre-consensus here, so the pair also
	// pins that the 404 envelope is aliased like the 200 gob bodies.
	for _, path := range []string{"/manifest", "/init", "/voteset"} {
		aStatus, aliased := rawGet(t, bbSrv.URL+path)
		vStatus, versioned := rawGet(t, bbSrv.URL+"/v1"+path)
		if aStatus != vStatus || !bytes.Equal(aliased, versioned) {
			t.Fatalf("GET %s (%d) diverges from its /v1 twin (%d)", path, aStatus, vStatus)
		}
	}

	// VC metrics exist only under /v1 (it is a new endpoint, no alias to
	// keep); both roles serve the same JSON scrape format there.
	vcClient := &VCClient{BaseURL: vcSrv.URL}
	if _, err := vcClient.Metrics(ctx); err != nil {
		t.Fatalf("vc /v1/metrics: %v", err)
	}
	bbClient := &BBClient{BaseURL: bbSrv.URL}
	if _, err := bbClient.Metrics(ctx); err != nil {
		t.Fatalf("bb /v1/metrics: %v", err)
	}

	// BB unversioned /metrics keeps the legacy gob body for old scrapers.
	_, legacyBody := rawGet(t, bbSrv.URL+"/metrics")
	var snap bb.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(legacyBody)).Decode(&snap); err != nil {
		t.Fatalf("unversioned bb /metrics is no longer gob: %v", err)
	}
	_, vcMetricsBody := rawGet(t, vcSrv.URL+"/v1/metrics")
	var vcSnap vc.Snapshot
	if err := json.Unmarshal(vcMetricsBody, &vcSnap); err != nil {
		t.Fatalf("vc /v1/metrics is not JSON: %v", err)
	}
	if vcSnap.VotesAccepted < 1 {
		t.Fatalf("vc snapshot did not count the vote: %+v", vcSnap)
	}

	// Error envelopes are identical on aliased paths, legacy "error" key
	// included.
	resp, err = http.Post(vcSrv.URL+"/vote", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	env := decodeEnvelope(t, resp)
	if env.Code != CodeBadRequest || env.Error != env.Message {
		t.Fatalf("aliased-path envelope = %+v", env)
	}
}

func rawGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func ballotCodeHex(b []byte) string { return hex.EncodeToString(b) }
