package httpapi

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Timeouts separates connection establishment from whole-request deadlines.
// A recovering or restarting node should fail fast at dial time (so clients
// rotate to a live node) while still allowing a slow-but-progressing
// request its full budget; a single flat client timeout cannot express
// that, and retries against a dead node then pile up for the whole flat
// window.
type Timeouts struct {
	// Dial bounds TCP connection establishment (default DefaultDialTimeout).
	// Clients with the default dial timeout share one process-wide
	// connection pool; a custom Dial gets a private pool.
	Dial time.Duration
	// Request bounds the whole request including body (default 30s for VC
	// voting, 60s for BB reads); a caller context with an earlier deadline
	// wins.
	Request time.Duration
}

// DefaultDialTimeout bounds connection establishment for every client that
// does not pick its own; it doubles as the TLS handshake budget.
const DefaultDialTimeout = 3 * time.Second

// NewTransport returns the tuned *http.Transport all httpapi clients run
// on: keep-alives on, a deep idle pool per host (a load generator holding
// hundreds of in-flight votes against a handful of VC nodes must reuse
// connections, or it re-dials per call and exhausts ephemeral ports), and
// a dedicated dial timeout so the overall deadline can ride on each
// request's context instead of client.Timeout.
func NewTransport(dial time.Duration) *http.Transport {
	if dial <= 0 {
		dial = DefaultDialTimeout
	}
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   dial,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout: dial,
		MaxIdleConns:        0, // no global cap; per-host governs
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}
}

// NewPooledClient wraps NewTransport in an *http.Client suitable for
// sharing across many VCClient/BBClient values (set it as their HTTP
// field): one connection pool for the whole process.
func NewPooledClient(dial time.Duration) *http.Client {
	return &http.Client{Transport: NewTransport(dial)}
}

// sharedClient is the process-wide default pool. Every client constructed
// with zero Timeouts.Dial and nil HTTP lands here, so a process full of
// per-URL client values still holds exactly one transport.
var (
	sharedOnce   sync.Once
	sharedPooled *http.Client
)

func sharedClient() *http.Client {
	sharedOnce.Do(func() { sharedPooled = NewPooledClient(DefaultDialTimeout) })
	return sharedPooled
}

// clientCore is the shared plumbing under VCClient and BBClient: transport
// selection, request-context deadlines, and the uniform error-envelope
// decode. The zero value is ready to use.
type clientCore struct {
	once   sync.Once
	client *http.Client
}

// pick resolves the *http.Client for a request: an explicit override wins,
// the package-shared pool serves the default dial timeout, and a custom
// dial timeout gets a lazily-built private pool (cached per client value).
func (cc *clientCore) pick(override *http.Client, dial time.Duration) *http.Client {
	if override != nil {
		return override
	}
	if dial <= 0 || dial == DefaultDialTimeout {
		return sharedClient()
	}
	cc.once.Do(func() { cc.client = NewPooledClient(dial) })
	return cc.client
}

// requestCtx bounds ctx by the request timeout (an earlier caller deadline
// wins).
func requestCtx(ctx context.Context, request time.Duration) (context.Context, context.CancelFunc) {
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < request {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, request)
}

// do issues one request with the two-deadline model and returns the
// response; the returned cancel must be called after the body is consumed.
func (cc *clientCore) do(ctx context.Context, override *http.Client, to Timeouts, defaultRequest time.Duration,
	method, url, contentType string, body io.Reader) (*http.Response, context.CancelFunc, error) {
	request := to.Request
	if request <= 0 {
		request = defaultRequest
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := requestCtx(ctx, request)
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := cc.pick(override, to.Dial).Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// getGob fetches url and gob-decodes a 200 body into v; any other status
// decodes the error envelope into a typed *APIError.
func (cc *clientCore) getGob(ctx context.Context, override *http.Client, to Timeouts, defaultRequest time.Duration,
	url string, v any) error {
	resp, cancel, err := cc.do(ctx, override, to, defaultRequest, http.MethodGet, url, "", nil)
	if err != nil {
		return fmt.Errorf("httpapi: get %s: %w", url, err)
	}
	defer cancel()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return gob.NewDecoder(resp.Body).Decode(v)
}

// getJSON fetches url and JSON-decodes a 200 body into v (the metrics
// endpoints); errors decode the envelope.
func (cc *clientCore) getJSON(ctx context.Context, override *http.Client, to Timeouts, defaultRequest time.Duration,
	url string, v any) error {
	resp, cancel, err := cc.do(ctx, override, to, defaultRequest, http.MethodGet, url, "", nil)
	if err != nil {
		return fmt.Errorf("httpapi: get %s: %w", url, err)
	}
	defer cancel()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

// postGob gob-encodes v to url and expects a 2xx; anything else decodes
// the error envelope.
func (cc *clientCore) postGob(ctx context.Context, override *http.Client, to Timeouts, defaultRequest time.Duration,
	url string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	resp, cancel, err := cc.do(ctx, override, to, defaultRequest, http.MethodPost, url, "application/octet-stream", &buf)
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", url, err)
	}
	defer cancel()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	return nil
}
