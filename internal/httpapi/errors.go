package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Error codes carried in the uniform JSON error envelope. Clients branch on
// the code (via AsAPIError / HasCode), never on message text.
const (
	// CodeBadRequest: the body could not be parsed (malformed JSON, bad
	// hex, undecodable gob).
	CodeBadRequest = "bad_request"
	// CodeVoteRejected: the VC node refused the vote at the protocol level
	// (already voted with a different code, outside voting hours, unknown
	// serial, strict-journal refusal).
	CodeVoteRejected = "vote_rejected"
	// CodeNotFound: the requested data is not (yet) published — trustees
	// and auditors poll until it appears.
	CodeNotFound = "not_found"
	// CodeBadSubmission: the BB node refused a write (bad signature,
	// equivocation, wrong election).
	CodeBadSubmission = "bad_submission"
	// CodeUnknown is the client-side fallback when a non-envelope body
	// (proxy error page, legacy server) comes back on an error status.
	CodeUnknown = "unknown"
)

// ErrorEnvelope is the uniform JSON error body of every endpoint: a stable
// machine-readable code plus a human-readable message. LegacyError mirrors
// Message under the pre-v1 "error" key so clients that predate the
// envelope (they read VoteResponse.Error) keep failing loudly; it is
// removed together with the unversioned path aliases.
type ErrorEnvelope struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	LegacyError string `json:"error,omitempty"`
}

// APIError is the typed client-side error decoded from an ErrorEnvelope.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // envelope code (CodeUnknown for non-envelope bodies)
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: %s: %s (HTTP %d)", e.Code, e.Message, e.Status)
}

// AsAPIError unwraps err to the typed *APIError, if any.
func AsAPIError(err error) (*APIError, bool) {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// HasCode reports whether err carries the given envelope code.
func HasCode(err error, code string) bool {
	ae, ok := AsAPIError(err)
	return ok && ae.Code == code
}

// writeError emits the uniform envelope. Every handler error path funnels
// through here so clients see one shape regardless of endpoint.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorEnvelope{Code: code, Message: message, LegacyError: message})
}

// decodeAPIError turns a non-2xx response into a typed error: envelope
// bodies become their code/message, anything else (proxy pages, legacy
// text bodies) is surfaced verbatim under CodeUnknown so it stays
// debuggable.
func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Message}
	}
	msg := strings.TrimSpace(string(bytes.TrimSpace(body)))
	if msg == "" {
		msg = resp.Status
	}
	return &APIError{Status: resp.StatusCode, Code: CodeUnknown, Message: msg}
}
