// Package httpapi provides the HTTP servers and clients for multi-process
// deployments: the VC voter-facing endpoint (a plain POST — voters need no
// special software, §I), the BB read/write API, and the gob encoding of
// initialization payloads the ddemos-ea tool writes to disk.
//
// # API versioning
//
// Every route lives under /v1/. The unversioned paths the first release
// shipped remain registered as aliases of their /v1/ twins for one release
// and then go away; new clients and deployments must use /v1/. The one
// deliberate exception is the BB's unversioned GET /metrics, which keeps
// its legacy gob body for old scrapers while GET /v1/metrics serves JSON —
// the format both roles' metrics endpoints share, so operators and the
// load generator scrape VC and BB nodes uniformly.
//
// Errors are a uniform JSON envelope {code, message} (ErrorEnvelope) on
// every endpoint; clients surface them as typed *APIError values and
// branch on the code, never on message text.
package httpapi

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/vc"
)

// WriteGobFile serializes v to path atomically: the value is encoded to a
// temp file in the same directory, fsynced, and renamed over path (then the
// directory is synced), so a crash or full disk mid-write can never leave a
// torn payload behind — either the old file survives intact or the new one
// is complete. Same pattern as store.WriteWALFile.
func WriteGobFile(path string, v any) error {
	w, err := CreateGobStream(path)
	if err != nil {
		return err
	}
	if err := w.Encode(v); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// ReadGobFile deserializes path into v.
func ReadGobFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("httpapi: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	return nil
}

// handleBoth registers h under the versioned path and its unversioned
// alias (kept for one release; see the package comment).
func handleBoth(mux *http.ServeMux, method, path string, h http.HandlerFunc) {
	mux.HandleFunc(method+" /v1"+path, h)
	mux.HandleFunc(method+" "+path, h)
}

// --- VC voter endpoint -----------------------------------------------------

// VoteRequest is the voter-facing JSON body: a serial number and a hex vote
// code, nothing else (no cryptography client-side).
type VoteRequest struct {
	Serial uint64 `json:"serial"`
	Code   string `json:"code"`
}

// VoteResponse returns the hex receipt. Errors arrive as an ErrorEnvelope
// with a non-2xx status instead.
type VoteResponse struct {
	Receipt string `json:"receipt"`
}

// VCHandler serves the public API of a VC node: POST /v1/vote for voters
// and GET /v1/metrics for operators and the load harness (journal, store
// and per-phase timing counters from vc.Snapshot, as JSON — parity with
// the BB handler, so both roles scrape uniformly).
func VCHandler(node *vc.Node) http.Handler {
	mux := http.NewServeMux()
	handleBoth(mux, http.MethodPost, "/vote", func(w http.ResponseWriter, r *http.Request) {
		var req VoteRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed request")
			return
		}
		code, err := hex.DecodeString(req.Code)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed vote code")
			return
		}
		receipt, err := node.SubmitVote(r.Context(), req.Serial, code)
		if err != nil {
			writeError(w, http.StatusConflict, CodeVoteRejected, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, VoteResponse{Receipt: hex.EncodeToString(receipt)})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := node.Metrics()
		writeJSON(w, http.StatusOK, &s)
	})
	return mux
}

// VCClient is a voter.Service over HTTP, built on the shared client core:
// context on every method, the two-deadline Timeouts model, and the
// process-shared tuned transport (unless HTTP or Timeouts.Dial overrides
// it).
type VCClient struct {
	BaseURL string
	// HTTP overrides the transport entirely (Timeouts.Dial then unused).
	HTTP *http.Client
	// Timeouts tunes dial vs whole-request deadlines (zero = defaults:
	// DefaultDialTimeout dial on the shared pool, 30s request).
	Timeouts Timeouts

	core clientCore
}

const vcDefaultRequest = 30 * time.Second

// SubmitVote implements voter.Service.
func (c *VCClient) SubmitVote(ctx context.Context, serial uint64, code []byte) ([]byte, error) {
	body, err := json.Marshal(VoteRequest{Serial: serial, Code: hex.EncodeToString(code)})
	if err != nil {
		return nil, err
	}
	resp, cancel, err := c.core.do(ctx, c.HTTP, c.Timeouts, vcDefaultRequest,
		http.MethodPost, c.BaseURL+"/v1/vote", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("httpapi: vote: %w", err)
	}
	defer cancel()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var vr VoteResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&vr); err != nil {
		return nil, fmt.Errorf("httpapi: vote response: %w", err)
	}
	return hex.DecodeString(vr.Receipt)
}

// Metrics fetches the node's operational counters from GET /v1/metrics.
func (c *VCClient) Metrics(ctx context.Context) (*vc.Snapshot, error) {
	var s vc.Snapshot
	if err := c.core.getJSON(ctx, c.HTTP, c.Timeouts, vcDefaultRequest, c.BaseURL+"/v1/metrics", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// --- BB read/write API -------------------------------------------------------

// BBHandler serves a BB node: gob-encoded reads on public paths, verified
// writes (the submissions carry their own signatures; the BB node verifies
// them, §III-G), and JSON metrics on GET /v1/metrics.
func BBHandler(node *bb.Node) http.Handler {
	mux := http.NewServeMux()
	serve := func(path string, get func() (any, error)) {
		handleBoth(mux, http.MethodGet, path, func(w http.ResponseWriter, r *http.Request) {
			v, err := get()
			if err != nil {
				writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_ = gob.NewEncoder(w).Encode(v)
		})
	}
	serve("/manifest", func() (any, error) { m, err := node.Manifest(); return &m, err })
	serve("/init", func() (any, error) { return node.Init() })
	serve("/voteset", func() (any, error) { return node.VoteSet() })
	serve("/cast", func() (any, error) { return node.Cast() })
	serve("/result", func() (any, error) { return node.Result() })

	// Metrics: /v1/metrics is JSON (the uniform scrape format shared with
	// the VC handler); the unversioned /metrics keeps the legacy gob body
	// for pre-v1 scrapers — the one alias that is not byte-identical.
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := node.Metrics()
		writeJSON(w, http.StatusOK, &s)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s := node.Metrics()
		w.Header().Set("Content-Type", "application/octet-stream")
		_ = gob.NewEncoder(w).Encode(&s)
	})

	submit := func(path string, accept func(r *http.Request) error) {
		handleBoth(mux, http.MethodPost, path, func(w http.ResponseWriter, r *http.Request) {
			if err := accept(r); err != nil {
				code, status := CodeBadSubmission, http.StatusBadRequest
				if _, ok := err.(gobDecodeError); ok {
					code = CodeBadRequest
				}
				writeError(w, status, code, err.Error())
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
	}
	submit("/submit/voteset", func(r *http.Request) error {
		var sub VoteSetSubmission
		if err := gob.NewDecoder(r.Body).Decode(&sub); err != nil {
			return gobDecodeError{err}
		}
		return node.SubmitVoteSet(sub.VCIndex, sub.Set, sub.Sig)
	})
	submit("/submit/mskshare", func(r *http.Request) error {
		var share ea.MskShare
		if err := gob.NewDecoder(r.Body).Decode(&share); err != nil {
			return gobDecodeError{err}
		}
		return node.SubmitMskShare(share)
	})
	submit("/submit/trusteepost", func(r *http.Request) error {
		var post bb.TrusteePost
		if err := gob.NewDecoder(r.Body).Decode(&post); err != nil {
			return gobDecodeError{err}
		}
		return node.SubmitTrusteePost(&post)
	})
	return mux
}

// gobDecodeError marks an undecodable submission body, so the handler maps
// it to CodeBadRequest instead of CodeBadSubmission.
type gobDecodeError struct{ err error }

func (e gobDecodeError) Error() string { return e.err.Error() }
func (e gobDecodeError) Unwrap() error { return e.err }

// VoteSetSubmission is the gob body of /v1/submit/voteset.
type VoteSetSubmission struct {
	VCIndex int
	Set     []vc.VotedBallot
	Sig     []byte
}

// BBClient is the BB node client over HTTP, built on the shared client
// core: every method takes a context.Context, with the two-deadline
// Timeouts model and the process-shared tuned transport. The context-free
// bb.API view the majority reader consumes is obtained with API(ctx).
type BBClient struct {
	BaseURL string
	// HTTP overrides the transport entirely (Timeouts.Dial then unused).
	HTTP *http.Client
	// Timeouts tunes dial vs whole-request deadlines (zero = defaults:
	// DefaultDialTimeout dial on the shared pool, 60s request).
	Timeouts Timeouts

	core clientCore
}

const bbDefaultRequest = 60 * time.Second

func (c *BBClient) get(ctx context.Context, path string, v any) error {
	return c.core.getGob(ctx, c.HTTP, c.Timeouts, bbDefaultRequest, c.BaseURL+path, v)
}

func (c *BBClient) post(ctx context.Context, path string, v any) error {
	return c.core.postGob(ctx, c.HTTP, c.Timeouts, bbDefaultRequest, c.BaseURL+path, v)
}

// Manifest fetches the election manifest.
func (c *BBClient) Manifest(ctx context.Context) (ea.Manifest, error) {
	var m ea.Manifest
	err := c.get(ctx, "/v1/manifest", &m)
	return m, err
}

// Init fetches the BB initialization data.
func (c *BBClient) Init(ctx context.Context) (*ea.BBInit, error) {
	var v ea.BBInit
	if err := c.get(ctx, "/v1/init", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// VoteSet fetches the agreed vote set.
func (c *BBClient) VoteSet(ctx context.Context) ([]vc.VotedBallot, error) {
	var v []vc.VotedBallot
	err := c.get(ctx, "/v1/voteset", &v)
	return v, err
}

// Cast fetches the published cast data.
func (c *BBClient) Cast(ctx context.Context) (*bb.CastData, error) {
	var v bb.CastData
	if err := c.get(ctx, "/v1/cast", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Result fetches the published result.
func (c *BBClient) Result(ctx context.Context) (*bb.Result, error) {
	var v bb.Result
	if err := c.get(ctx, "/v1/result", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Metrics fetches the node's operational counters (publish-phase ingress
// and combine statistics) from GET /v1/metrics. Not part of bb.API: it is
// operator tooling, not election data.
func (c *BBClient) Metrics(ctx context.Context) (*bb.Snapshot, error) {
	var s bb.Snapshot
	if err := c.core.getJSON(ctx, c.HTTP, c.Timeouts, bbDefaultRequest, c.BaseURL+"/v1/metrics", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// SubmitVoteSet pushes a VC node's final set.
func (c *BBClient) SubmitVoteSet(ctx context.Context, vcIndex int, set []vc.VotedBallot, sig []byte) error {
	return c.post(ctx, "/v1/submit/voteset", &VoteSetSubmission{VCIndex: vcIndex, Set: set, Sig: sig})
}

// SubmitMskShare pushes a VC node's master-key share.
func (c *BBClient) SubmitMskShare(ctx context.Context, share ea.MskShare) error {
	return c.post(ctx, "/v1/submit/mskshare", &share)
}

// SubmitTrusteePost pushes a trustee post.
func (c *BBClient) SubmitTrusteePost(ctx context.Context, post *bb.TrusteePost) error {
	return c.post(ctx, "/v1/submit/trusteepost", post)
}

// API binds ctx to the client and returns the context-free bb.API view
// that bb.Reader (and everything else written against bb.API) consumes.
// The bound context caps every call made through the view — the replacement
// for the removed Ctx field.
func (c *BBClient) API(ctx context.Context) bb.API { return &boundBB{c: c, ctx: ctx} }

// boundBB adapts BBClient's context-taking methods onto the context-free
// bb.API interface by carrying one bound context.
type boundBB struct {
	c   *BBClient
	ctx context.Context
}

var _ bb.API = (*boundBB)(nil)

func (b *boundBB) Manifest() (ea.Manifest, error)     { return b.c.Manifest(b.ctx) }
func (b *boundBB) Init() (*ea.BBInit, error)          { return b.c.Init(b.ctx) }
func (b *boundBB) VoteSet() ([]vc.VotedBallot, error) { return b.c.VoteSet(b.ctx) }
func (b *boundBB) Cast() (*bb.CastData, error)        { return b.c.Cast(b.ctx) }
func (b *boundBB) Result() (*bb.Result, error)        { return b.c.Result(b.ctx) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
