// Package httpapi provides the HTTP servers and clients for multi-process
// deployments: the VC voter-facing endpoint (a plain POST — voters need no
// special software, §I), the BB read/write API, and the gob encoding of
// initialization payloads the ddemos-ea tool writes to disk.
package httpapi

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/ea"
	"ddemos/internal/vc"
)

// WriteGobFile serializes v to path.
func WriteGobFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("httpapi: create %s: %w", path, err)
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		_ = f.Close()
		return fmt.Errorf("httpapi: encode %s: %w", path, err)
	}
	return f.Close()
}

// ReadGobFile deserializes path into v.
func ReadGobFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("httpapi: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	return nil
}

// --- VC voter endpoint -----------------------------------------------------

// VoteRequest is the voter-facing JSON body: a serial number and a hex vote
// code, nothing else (no cryptography client-side).
type VoteRequest struct {
	Serial uint64 `json:"serial"`
	Code   string `json:"code"`
}

// VoteResponse returns the hex receipt.
type VoteResponse struct {
	Receipt string `json:"receipt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// VCHandler serves the public voting endpoint for a VC node.
func VCHandler(node *vc.Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /vote", func(w http.ResponseWriter, r *http.Request) {
		var req VoteRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, VoteResponse{Error: "malformed request"})
			return
		}
		code, err := hex.DecodeString(req.Code)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, VoteResponse{Error: "malformed vote code"})
			return
		}
		receipt, err := node.SubmitVote(r.Context(), req.Serial, code)
		if err != nil {
			writeJSON(w, http.StatusConflict, VoteResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, VoteResponse{Receipt: hex.EncodeToString(receipt)})
	})
	return mux
}

// Timeouts separates connection establishment from whole-request deadlines.
// A recovering or restarting node should fail fast at dial time (so clients
// rotate to a live node) while still allowing a slow-but-progressing
// request its full budget; a single flat client timeout cannot express
// that, and retries against a dead node then pile up for the whole flat
// window.
type Timeouts struct {
	// Dial bounds TCP connection establishment (default 3s for VC voting,
	// 5s for BB reads).
	Dial time.Duration
	// Request bounds the whole request including body (default 30s for VC
	// voting, 60s for BB reads); a caller context with an earlier deadline
	// wins.
	Request time.Duration
}

func (t Timeouts) withDefaults(dial, request time.Duration) Timeouts {
	if t.Dial <= 0 {
		t.Dial = dial
	}
	if t.Request <= 0 {
		t.Request = request
	}
	return t
}

// newHTTPClient builds a client with a dedicated dial timeout; the overall
// deadline rides on each request's context instead of client.Timeout, so
// caller contexts compose. Built once per VCClient/BBClient (not per
// request): the transport owns the keep-alive connection pool, and a fresh
// transport every call would strand one idle connection per request.
func newHTTPClient(dial time.Duration) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: dial}).DialContext,
			TLSHandshakeTimeout: dial,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// requestCtx bounds ctx by the request timeout (an earlier caller deadline
// wins).
func requestCtx(ctx context.Context, request time.Duration) (context.Context, context.CancelFunc) {
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < request {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, request)
}

// VCClient is a voter.Service over HTTP.
type VCClient struct {
	BaseURL string
	// HTTP overrides the transport entirely (Timeouts.Dial then unused).
	HTTP *http.Client
	// Timeouts tunes dial vs whole-request deadlines (zero = defaults).
	Timeouts Timeouts

	clientOnce sync.Once
	client     *http.Client
}

// SubmitVote implements voter.Service.
func (c *VCClient) SubmitVote(ctx context.Context, serial uint64, code []byte) ([]byte, error) {
	to := c.Timeouts.withDefaults(3*time.Second, 30*time.Second)
	ctx, cancel := requestCtx(ctx, to.Request)
	defer cancel()
	body, err := json.Marshal(VoteRequest{Serial: serial, Code: hex.EncodeToString(code)})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/vote", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient(to).Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: vote: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return nil, fmt.Errorf("httpapi: vote response: %w", err)
	}
	var vr VoteResponse
	if err := json.Unmarshal(respBody, &vr); err != nil {
		// Non-JSON bodies (proxy errors, 404 pages) get surfaced verbatim
		// instead of as a confusing unmarshal error.
		return nil, fmt.Errorf("httpapi: vote response %s: %q", resp.Status, bytes.TrimSpace(respBody))
	}
	if vr.Error != "" {
		return nil, fmt.Errorf("httpapi: vc: %s", vr.Error)
	}
	return hex.DecodeString(vr.Receipt)
}

func (c *VCClient) httpClient(to Timeouts) *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.clientOnce.Do(func() { c.client = newHTTPClient(to.Dial) })
	return c.client
}

// --- BB read/write API -------------------------------------------------------

// BBHandler serves a BB node: gob-encoded reads on public paths, verified
// writes (the submissions carry their own signatures; the BB node verifies
// them, §III-G).
func BBHandler(node *bb.Node) http.Handler {
	mux := http.NewServeMux()
	serve := func(path string, get func() (any, error)) {
		mux.HandleFunc("GET "+path, func(w http.ResponseWriter, r *http.Request) {
			v, err := get()
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_ = gob.NewEncoder(w).Encode(v)
		})
	}
	serve("/manifest", func() (any, error) { m, err := node.Manifest(); return &m, err })
	serve("/init", func() (any, error) { return node.Init() })
	serve("/voteset", func() (any, error) { return node.VoteSet() })
	serve("/cast", func() (any, error) { return node.Cast() })
	serve("/result", func() (any, error) { return node.Result() })
	serve("/metrics", func() (any, error) { s := node.Metrics(); return &s, nil })

	mux.HandleFunc("POST /submit/voteset", func(w http.ResponseWriter, r *http.Request) {
		var sub VoteSetSubmission
		if err := gob.NewDecoder(r.Body).Decode(&sub); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := node.SubmitVoteSet(sub.VCIndex, sub.Set, sub.Sig); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /submit/mskshare", func(w http.ResponseWriter, r *http.Request) {
		var share ea.MskShare
		if err := gob.NewDecoder(r.Body).Decode(&share); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := node.SubmitMskShare(share); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /submit/trusteepost", func(w http.ResponseWriter, r *http.Request) {
		var post bb.TrusteePost
		if err := gob.NewDecoder(r.Body).Decode(&post); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := node.SubmitTrusteePost(&post); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// VoteSetSubmission is the gob body of /submit/voteset.
type VoteSetSubmission struct {
	VCIndex int
	Set     []vc.VotedBallot
	Sig     []byte
}

// BBClient implements bb.API over HTTP, so bb.Reader (the majority reader)
// works transparently against remote nodes. Every request is context-aware
// (Ctx bounds all calls; bb.API itself is context-free) with separate dial
// and whole-request deadlines, so election-end pushes retried against a
// restarting node fail fast instead of piling up.
type BBClient struct {
	BaseURL string
	// HTTP overrides the transport entirely (Timeouts.Dial then unused).
	HTTP *http.Client
	// Timeouts tunes dial vs whole-request deadlines (zero = defaults).
	Timeouts Timeouts
	// Ctx, when set, bounds every request (bb.API methods take no context).
	Ctx context.Context

	clientOnce sync.Once
	client     *http.Client
}

var _ bb.API = (*BBClient)(nil)

func (c *BBClient) baseCtx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *BBClient) httpClient(to Timeouts) *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.clientOnce.Do(func() { c.client = newHTTPClient(to.Dial) })
	return c.client
}

func (c *BBClient) do(method, path, contentType string, body io.Reader) (*http.Response, context.CancelFunc, error) {
	to := c.Timeouts.withDefaults(5*time.Second, 60*time.Second)
	ctx, cancel := requestCtx(c.baseCtx(), to.Request)
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient(to).Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

func (c *BBClient) get(path string, v any) error {
	resp, cancel, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return fmt.Errorf("httpapi: get %s: %w", path, err)
	}
	defer cancel()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("httpapi: get %s: %s (%s)", path, resp.Status, bytes.TrimSpace(msg))
	}
	return gob.NewDecoder(resp.Body).Decode(v)
}

func (c *BBClient) post(path string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	resp, cancel, err := c.do(http.MethodPost, path, "application/octet-stream", &buf)
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", path, err)
	}
	defer cancel()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("httpapi: post %s: %s (%s)", path, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Manifest implements bb.API.
func (c *BBClient) Manifest() (ea.Manifest, error) {
	var m ea.Manifest
	err := c.get("/manifest", &m)
	return m, err
}

// Init implements bb.API.
func (c *BBClient) Init() (*ea.BBInit, error) {
	var v ea.BBInit
	if err := c.get("/init", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// VoteSet implements bb.API.
func (c *BBClient) VoteSet() ([]vc.VotedBallot, error) {
	var v []vc.VotedBallot
	err := c.get("/voteset", &v)
	return v, err
}

// Cast implements bb.API.
func (c *BBClient) Cast() (*bb.CastData, error) {
	var v bb.CastData
	if err := c.get("/cast", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Result implements bb.API.
func (c *BBClient) Result() (*bb.Result, error) {
	var v bb.Result
	if err := c.get("/result", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Metrics fetches the node's operational counters (publish-phase ingress
// and combine statistics). Not part of bb.API: it is operator tooling, not
// election data.
func (c *BBClient) Metrics() (*bb.Snapshot, error) {
	var v bb.Snapshot
	if err := c.get("/metrics", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// SubmitVoteSet pushes a VC node's final set.
func (c *BBClient) SubmitVoteSet(vcIndex int, set []vc.VotedBallot, sig []byte) error {
	return c.post("/submit/voteset", &VoteSetSubmission{VCIndex: vcIndex, Set: set, Sig: sig})
}

// SubmitMskShare pushes a VC node's master-key share.
func (c *BBClient) SubmitMskShare(share ea.MskShare) error {
	return c.post("/submit/mskshare", &share)
}

// SubmitTrusteePost pushes a trustee post.
func (c *BBClient) SubmitTrusteePost(post *bb.TrusteePost) error {
	return c.post("/submit/trusteepost", post)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
