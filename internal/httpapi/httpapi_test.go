package httpapi

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ddemos/internal/auditor"
	"ddemos/internal/bb"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/sim"
	"ddemos/internal/trustee"
	"ddemos/internal/voter"
)

// TestHTTPDeploymentEndToEnd runs a full election where voters, the vote-set
// push, the trustees and the auditor all go through the HTTP layer — the
// exact plumbing the cmd/ tools use (inter-VC stays on the simulated
// network; cmd/ddemos-vc swaps in TCP, which transport tests cover). The
// inter-VC network runs on the sim harness so delivery timing cannot flake
// under parallel test load.
func TestHTTPDeploymentEndToEnd(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "http-test",
		Options:     []string{"yes", "no"},
		NumBallots:  6,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("http-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.New(sim.Config{Start: start.Add(time.Minute)})
	cluster, err := core.NewCluster(data, core.Options{Sim: drv})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	stopSim := drv.Spin()
	defer stopSim()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// VC nodes behind HTTP.
	var services []voter.Service
	for _, n := range cluster.VCs {
		srv := httptest.NewServer(VCHandler(n))
		defer srv.Close()
		services = append(services, &VCClient{BaseURL: srv.URL})
	}
	// BB nodes behind HTTP.
	var apis []bb.API
	var bbClients []*BBClient
	for _, n := range cluster.BBs {
		srv := httptest.NewServer(BBHandler(n))
		defer srv.Close()
		c := &BBClient{BaseURL: srv.URL}
		apis = append(apis, c.API(ctx))
		bbClients = append(bbClients, c)
	}
	reader := bb.NewReader(apis)
	votes := []int{0, 1, 0, 0}
	results := make([]*voter.CastResult, len(votes))
	for i, opt := range votes {
		cl := &voter.Client{Ballot: data.Ballots[i], Services: services, Patience: 10 * time.Second}
		res, err := cl.Cast(ctx, opt)
		if err != nil {
			t.Fatalf("voter %d over http: %v", i, err)
		}
		results[i] = res
	}

	// Invalid submissions get clean HTTP errors.
	badClient := services[0]
	if _, err := badClient.SubmitVote(ctx, 999, []byte("nope")); err == nil {
		t.Fatal("bad vote must fail over http")
	}

	// Close polls, consensus in-process, push over HTTP.
	sets, err := cluster.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range cluster.VCs {
		set := sets[i]
		sg := n.SignVoteSet(set)
		for _, c := range bbClients {
			if err := c.SubmitVoteSet(ctx, i, set, sg); err != nil {
				t.Fatalf("vc %d push: %v", i, err)
			}
			if err := c.SubmitMskShare(ctx, n.MskShare()); err != nil {
				t.Fatalf("vc %d msk: %v", i, err)
			}
		}
	}

	// Trustees read + post over HTTP.
	for i := range cluster.Trustees {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		post, err := tr.ComputePost(reader)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range bbClients {
			if err := c.SubmitTrusteePost(ctx, post); err != nil {
				t.Fatalf("trustee %d post: %v", i, err)
			}
		}
	}

	// Result + voter verification + audit, all through the HTTP reader.
	result, err := reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	if result.Counts[0] != 3 || result.Counts[1] != 1 {
		t.Fatalf("counts = %v", result.Counts)
	}
	cl := &voter.Client{Ballot: data.Ballots[0], Services: services}
	if err := cl.Verify(reader, results[0]); err != nil {
		t.Fatalf("voter verify over http: %v", err)
	}
	report, err := auditor.Audit(reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit over http failed: %v", report.Failures)
	}
}

// TestMixedLocalAndHTTPReaderMajority is the transport-level regression
// test for the reader bucketing fix: a Reader over one in-process node and
// one HTTP client serving the *same* replica state must count the two
// replies as agreeing even though the HTTP reply's big.Ints went through a
// gob decode (which normalizes zero values to a representation
// reflect.DeepEqual distinguishes from arithmetic results). With the third
// replica down, fb+1 = 2 identical replies are required — before the fix
// this exact deployment shape spuriously returned ErrNoMajority.
func TestMixedLocalAndHTTPReaderMajority(t *testing.T) {
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "mixed-reader-test",
		Options:     []string{"yes", "no"},
		NumBallots:  3,
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 3,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("mixed-reader-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := sim.New(sim.Config{Start: start.Add(time.Minute)})
	cluster, err := core.NewCluster(data, core.Options{Sim: drv})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	stopSim := drv.Spin()
	defer stopSim()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var services []voter.Service
	for _, n := range cluster.VCs {
		services = append(services, n)
	}
	// Everyone votes "yes": the "no" tally is a computed zero, the exact
	// value whose in-memory and gob-decoded representations diverge.
	for i := 0; i < 3; i++ {
		cl := &voter.Client{Ballot: data.Ballots[i], Services: services, Patience: 10 * time.Second}
		if _, err := cl.Cast(ctx, 0); err != nil {
			t.Fatalf("voter %d: %v", i, err)
		}
	}
	if _, err := cluster.RunPipeline(ctx); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(BBHandler(cluster.BBs[1]))
	defer srv.Close()
	dead := httptest.NewServer(BBHandler(cluster.BBs[2]))
	dead.Close() // connection refused: the "down replica" of the triple

	mixed := bb.NewReader([]bb.API{
		cluster.BBs[0],
		(&BBClient{BaseURL: srv.URL}).API(ctx),
		(&BBClient{BaseURL: dead.URL}).API(ctx),
	})
	res, err := mixed.Result()
	if err != nil {
		t.Fatalf("mixed local/HTTP majority read: %v", err)
	}
	if res.Counts[0] != 3 || res.Counts[1] != 0 {
		t.Fatalf("counts = %v", res.Counts)
	}
	if _, err := mixed.VoteSet(); err != nil {
		t.Fatalf("mixed vote-set read: %v", err)
	}
	if _, err := mixed.Cast(); err != nil {
		t.Fatalf("mixed cast read: %v", err)
	}
}

func TestGobFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.gob")
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "gob-test",
		Options:     []string{"a", "b"},
		NumBallots:  2,
		NumVC:       4,
		NumBB:       1,
		NumTrustees: 1,
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("gob"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGobFile(path, &data.Manifest); err != nil {
		t.Fatal(err)
	}
	var got ea.Manifest
	if err := ReadGobFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.ElectionID != "gob-test" || len(got.VCPublics) != 4 {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	// Full BBInit (with points and big.Ints) must survive too.
	bbPath := filepath.Join(t.TempDir(), "bb.gob")
	if err := WriteGobFile(bbPath, data.BB); err != nil {
		t.Fatal(err)
	}
	var bbInit ea.BBInit
	if err := ReadGobFile(bbPath, &bbInit); err != nil {
		t.Fatal(err)
	}
	if len(bbInit.Ballots) != 2 {
		t.Fatal("bb init mangled")
	}
	orig := data.BB.Ballots[0].Parts[0][0].Commitment[0]
	got2 := bbInit.Ballots[0].Parts[0][0].Commitment[0]
	if !orig.A.Equal(got2.A) || !orig.B.Equal(got2.B) {
		t.Fatal("ciphertext points mangled by gob")
	}
	if err := ReadGobFile(filepath.Join(t.TempDir(), "missing.gob"), &got); err == nil {
		t.Fatal("missing file must fail")
	}
}

// TestClientTimeoutsSeparateDialFromRequest verifies the two-deadline
// client model: a dead address fails within the dial budget (not the whole
// request budget), and a caller context that is already cancelled aborts a
// request immediately.
func TestClientTimeoutsSeparateDialFromRequest(t *testing.T) {
	// 192.0.2.0/24 is TEST-NET-1: packets go nowhere, so the dial hangs
	// until its own timeout — exactly the recovery-retry pile-up scenario.
	dead := &VCClient{
		BaseURL:  "http://192.0.2.1:9",
		Timeouts: Timeouts{Dial: 150 * time.Millisecond, Request: 30 * time.Second},
	}
	start := time.Now()
	_, err := dead.SubmitVote(context.Background(), 1, []byte("code"))
	if err == nil {
		t.Fatal("vote against a dead address must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial failure took %v: dial timeout did not apply", elapsed)
	}

	deadBB := &BBClient{
		BaseURL:  "http://192.0.2.1:9",
		Timeouts: Timeouts{Dial: 150 * time.Millisecond, Request: 30 * time.Second},
	}
	start = time.Now()
	if _, err := deadBB.Manifest(context.Background()); err == nil {
		t.Fatal("read against a dead address must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bb dial failure took %v: dial timeout did not apply", elapsed)
	}

	// A caller context deadline earlier than the request budget wins.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dead.SubmitVote(ctx, 1, []byte("code")); err == nil {
		t.Fatal("cancelled context must abort the vote")
	}
	cancelledBB := &BBClient{BaseURL: "http://192.0.2.1:9",
		Timeouts: Timeouts{Dial: time.Second, Request: time.Second}}
	if _, err := cancelledBB.Manifest(ctx); err == nil {
		t.Fatal("cancelled context must abort bb reads")
	}
}
