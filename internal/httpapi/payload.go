package httpapi

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ddemos/internal/ballot"
	"ddemos/internal/ea"
)

// Streaming init payloads.
//
// Legacy EA payloads are one gob value holding the whole pool
// ([]*ballot.Ballot in ballots.gob; BBInit/TrusteeInit with populated
// Ballots), so both ends need O(pool) memory just to move data. Streamed
// payloads keep the gob stream but split it into values: a slim header
// value first (the init struct with Ballots nil, or BallotsStreamHeader for
// the voter pool), then one value per ballot in serial order. A reader can
// consume them one at a time; a writer emits them as setup generates them.
//
// BBInit/TrusteeInit readers sniff the format for free: decode the struct,
// and if Ballots is empty while the manifest says the pool is not, the
// per-ballot values follow on the stream. ballots.gob needs an explicit
// header because its legacy form is a bare slice.

// BallotsStreamMagic marks a streamed ballots.gob; legacy files hold a bare
// []*ballot.Ballot gob value instead.
const BallotsStreamMagic = "ddemos-ballots-stream-v1"

// BallotsStreamHeader is the first gob value of a streamed ballots.gob;
// NumBallots *ballot.Ballot values follow in serial order.
type BallotsStreamHeader struct {
	Magic      string
	NumBallots int
}

// GobStream writes a sequence of gob values to a file atomically: values
// are encoded to a temp file in the target directory and Close fsyncs it,
// renames it over the final path, and syncs the directory. A crash before
// Close leaves at most a stray temp file, never a torn payload.
type GobStream struct {
	path    string
	tmpName string
	f       *os.File
	bw      *bufio.Writer
	enc     *gob.Encoder
}

// CreateGobStream starts an atomic gob stream destined for path.
func CreateGobStream(path string) (*GobStream, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("httpapi: temp for %s: %w", path, err)
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	return &GobStream{path: path, tmpName: tmp.Name(), f: tmp, bw: bw, enc: gob.NewEncoder(bw)}, nil
}

// Encode appends one gob value to the stream.
func (w *GobStream) Encode(v any) error {
	if err := w.enc.Encode(v); err != nil {
		return fmt.Errorf("httpapi: encode %s: %w", w.path, err)
	}
	return nil
}

// Close flushes, fsyncs, and atomically publishes the file at its final
// path.
func (w *GobStream) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return fmt.Errorf("httpapi: flush %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("httpapi: sync %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		_ = os.Remove(w.tmpName)
		return fmt.Errorf("httpapi: close %s: %w", w.path, err)
	}
	if err := os.Rename(w.tmpName, w.path); err != nil {
		_ = os.Remove(w.tmpName)
		return fmt.Errorf("httpapi: rename %s: %w", w.path, err)
	}
	// Sync the directory so the rename itself survives power loss.
	if d, err := os.Open(filepath.Dir(w.path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Abort discards the stream without publishing anything.
func (w *GobStream) Abort() {
	_ = w.f.Close()
	_ = os.Remove(w.tmpName)
}

// ReadBallotsFile loads a voter ballot pool from either format: a streamed
// file (BallotsStreamHeader + per-ballot values) or a legacy bare
// []*ballot.Ballot gob.
func ReadBallotsFile(path string) ([]*ballot.Ballot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("httpapi: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	dec := gob.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	var hdr BallotsStreamHeader
	if err := dec.Decode(&hdr); err == nil && hdr.Magic == BallotsStreamMagic {
		ballots := make([]*ballot.Ballot, 0, hdr.NumBallots)
		for i := 0; i < hdr.NumBallots; i++ {
			var b ballot.Ballot
			if err := dec.Decode(&b); err != nil {
				return nil, fmt.Errorf("httpapi: decode %s ballot %d/%d: %w", path, i+1, hdr.NumBallots, err)
			}
			ballots = append(ballots, &b)
		}
		return ballots, nil
	}
	// Legacy format: one gob value holding the whole slice.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("httpapi: rewind %s: %w", path, err)
	}
	var ballots []*ballot.Ballot
	if err := gob.NewDecoder(bufio.NewReaderSize(f, 1<<20)).Decode(&ballots); err != nil {
		return nil, fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	return ballots, nil
}

// ReadBBInitFile loads a BB initialization payload from either format. A
// streamed file carries the slim BBInit first and NumBallots BBBallot
// values after it; a legacy file carries everything in the struct.
func ReadBBInitFile(path string) (*ea.BBInit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("httpapi: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	dec := gob.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	var init ea.BBInit
	if err := dec.Decode(&init); err != nil {
		return nil, fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	if len(init.Ballots) == 0 && init.Manifest.NumBallots > 0 {
		init.Ballots = make([]ea.BBBallot, 0, init.Manifest.NumBallots)
		for i := 0; i < init.Manifest.NumBallots; i++ {
			var b ea.BBBallot
			if err := dec.Decode(&b); err != nil {
				return nil, fmt.Errorf("httpapi: decode %s bb ballot %d/%d: %w", path, i+1, init.Manifest.NumBallots, err)
			}
			init.Ballots = append(init.Ballots, b)
		}
	}
	return &init, nil
}

// ReadTrusteeInitFile loads a trustee initialization payload from either
// format (same convention as ReadBBInitFile).
func ReadTrusteeInitFile(path string) (*ea.TrusteeInit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("httpapi: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	dec := gob.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	var init ea.TrusteeInit
	if err := dec.Decode(&init); err != nil {
		return nil, fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	if len(init.Ballots) == 0 && init.Manifest.NumBallots > 0 {
		init.Ballots = make([]ea.TrusteeBallot, 0, init.Manifest.NumBallots)
		for i := 0; i < init.Manifest.NumBallots; i++ {
			var b ea.TrusteeBallot
			if err := dec.Decode(&b); err != nil {
				return nil, fmt.Errorf("httpapi: decode %s trustee ballot %d/%d: %w", path, i+1, init.Manifest.NumBallots, err)
			}
			init.Ballots = append(init.Ballots, b)
		}
	}
	return &init, nil
}
