package httpapi

import (
	"os"
	"path/filepath"
	"testing"
)

type payloadDoc struct {
	Name  string
	Count int
}

// TestWriteGobFileTornWriteSurvives is the torn-setup regression: the old
// WriteGobFile opened the destination with os.Create and encoded into it
// directly, so a failure mid-encode (or a crash) left a truncated gob at
// the final path — a VC booting from it would fail (or worse, a partially
// decoded init). The rewrite stages through a temp file with fsync+rename:
// a failed write must leave the previous file byte-intact and no debris.
func TestWriteGobFileTornWriteSurvives(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "init.gob")

	want := payloadDoc{Name: "first", Count: 42}
	if err := WriteGobFile(path, &want); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// gob cannot encode a channel: the encode fails after the stream is
	// open, exactly the mid-write failure a torn setup produces.
	type unencodable struct{ C chan int }
	if err := WriteGobFile(path, &unencodable{C: make(chan int)}); err == nil {
		t.Fatal("encoding a channel must fail")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous file must survive a failed rewrite: %v", err)
	}
	if string(after) != string(before) {
		t.Fatal("failed rewrite corrupted the previous file")
	}
	var got payloadDoc
	if err := ReadGobFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	// No temp-file debris: the aborted write must clean up after itself.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "init.gob" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("aborted write left debris: %v", names)
	}
}

// TestWriteGobFileReplacesAtomically: a successful rewrite fully replaces
// the previous contents (no append, no partial overlay).
func TestWriteGobFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "init.gob")
	if err := WriteGobFile(path, &payloadDoc{Name: "old", Count: 1}); err != nil {
		t.Fatal(err)
	}
	want := payloadDoc{Name: "new-and-longer-than-before", Count: 2}
	if err := WriteGobFile(path, &want); err != nil {
		t.Fatal(err)
	}
	var got payloadDoc
	if err := ReadGobFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}
