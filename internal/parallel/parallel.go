// Package parallel provides a minimal fixed-size worker pool for data-
// parallel loops. It exists so the tally pipeline (bb combine, trustee
// post construction, auditor verification) shares one tested helper
// instead of three hand-rolled goroutine fans.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) for every i in [0, n), spread across up to `workers`
// goroutines, and returns when all calls complete. workers <= 0 means
// GOMAXPROCS. With one worker (or n <= 1) it runs inline, so single-
// threaded callers pay no goroutine overhead.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}
