package parallel

import (
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 63, 1000} {
			counts := make([]atomic.Int32, n)
			Run(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestRunInlineForSingleWorker(t *testing.T) {
	// With one worker the calls must run on the caller's goroutine, in
	// order — callers rely on this for deterministic single-threaded runs.
	var order []int
	Run(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5 calls", len(order))
	}
}
