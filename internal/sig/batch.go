package sig

import (
	"crypto/ed25519"
	"crypto/sha512"
	"encoding/binary"
	"runtime"
	"sync"
)

// Batch signing and verification. Two complementary amortizations serve the
// batched message pipeline (DESIGN.md, "Batched message pipeline"):
//
//   - SignBatch/VerifyBatch: one Ed25519 signature over the digest of a
//     whole batch of messages from a single signer. This is what the
//     authenticated channel layer uses — a flushed transport batch costs one
//     signature and one verification regardless of how many protocol
//     messages it carries.
//   - VerifyMany: verification of many independent (signer, message,
//     signature) tuples at once — the fallback for mixed-sender batches such
//     as a worker's backlog of ENDORSEMENTs, where each signature must stand
//     on its own because it later becomes UCERT evidence. Identical tuples
//     are verified once and large batches fan out across CPUs.
//
// True cofactored Ed25519 batch verification (one multi-scalar equation for
// k signatures) needs curve internals crypto/ed25519 does not expose; the
// dedup + parallel path keeps the API shape so the arithmetic can be swapped
// in without touching callers.

// batchDigest hashes a batch of messages into one 64-byte digest with
// the package's canonical length framing (count || len‖msg ...).
func batchDigest(msgs [][]byte) []byte {
	h := sha512.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(msgs)))
	h.Write(n[:])
	hashFramed(h, msgs...)
	return h.Sum(nil)
}

// SignBatch signs one signature over the digest of a batch of messages, all
// from the same signer. Verification requires the identical batch in the
// identical order.
func SignBatch(priv ed25519.PrivateKey, domain string, msgs ...[]byte) []byte {
	return Sign(priv, domain, batchDigest(msgs))
}

// VerifyBatch checks a signature produced by SignBatch.
func VerifyBatch(pub ed25519.PublicKey, sigBytes []byte, domain string, msgs ...[]byte) bool {
	return Verify(pub, sigBytes, domain, batchDigest(msgs))
}

// Item is one signature to check in VerifyMany: a signature over the
// domain-separated parts, expected from Pub.
type Item struct {
	Pub   ed25519.PublicKey
	Sig   []byte
	Parts [][]byte
}

// verifyManyParallelMin is the batch size from which VerifyMany fans out
// across CPUs; below it the goroutine handoff costs more than it saves.
const verifyManyParallelMin = 8

// VerifyMany verifies many independent signatures under one domain and
// reports each item's validity. Duplicate items (same key, signature and
// message) are verified once; batches of verifyManyParallelMin or more fan
// out across min(GOMAXPROCS, len) workers. This is the mixed-sender batch
// path: each signature stays individually attributable.
func VerifyMany(domain string, items []Item) []bool {
	ok := make([]bool, len(items))
	if len(items) == 0 {
		return ok
	}
	if len(items) == 1 {
		// The unbatched steady state: one message per pump round must not
		// pay for fingerprinting and dedup bookkeeping.
		it := &items[0]
		ok[0] = Verify(it.Pub, it.Sig, domain, it.Parts...)
		return ok
	}
	// Dedup: duplicated endorsements (network-level duplication, responder
	// retries) resolve to one verification.
	type dupKey string
	first := make(map[dupKey]int, len(items))
	dupOf := make([]int, len(items))
	for i := range items {
		k := dupKey(itemFingerprint(&items[i]))
		if j, seen := first[k]; seen {
			dupOf[i] = j
		} else {
			first[k] = i
			dupOf[i] = i
		}
	}
	verify := func(i int) {
		it := &items[i]
		ok[i] = Verify(it.Pub, it.Sig, domain, it.Parts...)
	}
	uniques := make([]int, 0, len(first))
	for i := range items {
		if dupOf[i] == i {
			uniques = append(uniques, i)
		}
	}
	if len(uniques) < verifyManyParallelMin {
		for _, i := range uniques {
			verify(i)
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(uniques) {
			workers = len(uniques)
		}
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					if next == len(uniques) {
						mu.Unlock()
						return
					}
					i := uniques[next]
					next++
					mu.Unlock()
					verify(i)
				}
			}()
		}
		wg.Wait()
	}
	for i := range items {
		if dupOf[i] != i {
			ok[i] = ok[dupOf[i]]
		}
	}
	return ok
}

// itemFingerprint builds the dedup key for VerifyMany using the package's
// canonical length framing.
func itemFingerprint(it *Item) []byte {
	h := sha512.New()
	hashFramed(h, it.Pub, it.Sig)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(it.Parts)))
	h.Write(n[:])
	hashFramed(h, it.Parts...)
	return h.Sum(nil)
}
