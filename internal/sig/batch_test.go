package sig

import (
	"testing"
)

func TestSignBatchRoundTrip(t *testing.T) {
	kp, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	sg := SignBatch(kp.Private, "test/batch", msgs...)
	if !VerifyBatch(kp.Public, sg, "test/batch", msgs...) {
		t.Fatal("valid batch signature rejected")
	}
	if VerifyBatch(kp.Public, sg, "test/other", msgs...) {
		t.Fatal("wrong domain accepted")
	}
	if VerifyBatch(kp.Public, sg, "test/batch", msgs[0], msgs[1]) {
		t.Fatal("shorter batch accepted")
	}
	if VerifyBatch(kp.Public, sg, "test/batch", msgs[1], msgs[0], msgs[2]) {
		t.Fatal("reordered batch accepted")
	}
	// The length framing must distinguish ("ab", "c") from ("a", "bc").
	s2 := SignBatch(kp.Private, "test/batch", []byte("ab"), []byte("c"))
	if VerifyBatch(kp.Public, s2, "test/batch", []byte("a"), []byte("bc")) {
		t.Fatal("ambiguous batch framing")
	}
}

func TestVerifyMany(t *testing.T) {
	const domain = "test/many"
	keys := make([]KeyPair, 3)
	for i := range keys {
		kp, err := NewKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp
	}
	var items []Item
	var want []bool
	// A mixed-sender batch: valid, invalid, duplicated and cross-signed
	// items interleaved, well past the parallel fan-out threshold.
	for i := 0; i < 40; i++ {
		kp := keys[i%len(keys)]
		msg := []byte{byte(i)}
		sg := Sign(kp.Private, domain, msg)
		switch i % 4 {
		case 0, 1: // valid
			items = append(items, Item{Pub: kp.Public, Sig: sg, Parts: [][]byte{msg}})
			want = append(want, true)
		case 2: // signature from the wrong key
			other := keys[(i+1)%len(keys)]
			items = append(items, Item{Pub: other.Public, Sig: sg, Parts: [][]byte{msg}})
			want = append(want, false)
		case 3: // exact duplicate of the previous valid item
			prev := items[len(items)-3]
			items = append(items, prev)
			want = append(want, want[len(want)-3])
		}
	}
	got := VerifyMany(domain, items)
	if len(got) != len(items) {
		t.Fatalf("%d results for %d items", len(got), len(items))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestVerifyManySmallAndEmpty(t *testing.T) {
	if got := VerifyMany("d", nil); len(got) != 0 {
		t.Fatal("non-empty result for empty batch")
	}
	kp, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("x")
	items := []Item{
		{Pub: kp.Public, Sig: Sign(kp.Private, "d", msg), Parts: [][]byte{msg}},
		{Pub: kp.Public, Sig: []byte("short"), Parts: [][]byte{msg}},
	}
	got := VerifyMany("d", items)
	if !got[0] || got[1] {
		t.Fatalf("got %v want [true false]", got)
	}
}
