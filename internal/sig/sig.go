// Package sig provides domain-separated Ed25519 signing helpers. The
// Election Authority generates every key pair in the system (§III-D: no
// external PKI), and all inter-node authentication reduces to these
// signatures.
package sig

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"io"
)

// KeyPair bundles an Ed25519 key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// NewKeyPair generates a key pair from rnd.
func NewKeyPair(rnd io.Reader) (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rnd)
	if err != nil {
		return KeyPair{}, fmt.Errorf("sig: generating key: %w", err)
	}
	return KeyPair{Public: pub, Private: priv}, nil
}

// The canonical framing of this package: every part is prefixed with its
// u64 big-endian length, so no two distinct part sequences collide.
// appendFramed builds framed byte strings (signed messages); hashFramed
// streams the identical framing into a hash (batch digests, fingerprints).
// The two must stay byte-for-byte equivalent.

func appendFramed(buf []byte, parts ...[]byte) []byte {
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		buf = append(buf, n[:]...)
		buf = append(buf, p...)
	}
	return buf
}

func hashFramed(h io.Writer, parts ...[]byte) {
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		_, _ = h.Write(n[:])
		_, _ = h.Write(p)
	}
}

// message builds the canonical, length-prefixed byte string for a domain and
// parts, so that no two distinct (domain, parts) tuples collide.
func message(domain string, parts [][]byte) []byte {
	size := 8 + len(domain)
	for _, p := range parts {
		size += 8 + len(p)
	}
	buf := appendFramed(make([]byte, 0, size), []byte(domain))
	return appendFramed(buf, parts...)
}

// Sign signs the domain-separated message.
func Sign(priv ed25519.PrivateKey, domain string, parts ...[]byte) []byte {
	return ed25519.Sign(priv, message(domain, parts))
}

// Verify checks a signature produced by Sign.
func Verify(pub ed25519.PublicKey, sigBytes []byte, domain string, parts ...[]byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sigBytes) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, message(domain, parts), sigBytes)
}

// Uint64Bytes is a helper for signing integer fields.
func Uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
