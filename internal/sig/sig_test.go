package sig

import (
	"testing"

	"ddemos/internal/crypto/group"
)

func TestSignVerify(t *testing.T) {
	kp, err := NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Sign(kp.Private, "domain", []byte("a"), []byte("b"))
	if !Verify(kp.Public, s, "domain", []byte("a"), []byte("b")) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	kp, _ := NewKeyPair(nil)
	s := Sign(kp.Private, "domain", []byte("a"), []byte("b"))
	if Verify(kp.Public, s, "other", []byte("a"), []byte("b")) {
		t.Fatal("wrong domain accepted")
	}
	if Verify(kp.Public, s, "domain", []byte("a"), []byte("c")) {
		t.Fatal("wrong payload accepted")
	}
	if Verify(kp.Public, s, "domain", []byte("a")) {
		t.Fatal("missing part accepted")
	}
	other, _ := NewKeyPair(nil)
	if Verify(other.Public, s, "domain", []byte("a"), []byte("b")) {
		t.Fatal("wrong key accepted")
	}
	bad := append([]byte(nil), s...)
	bad[0] ^= 1
	if Verify(kp.Public, bad, "domain", []byte("a"), []byte("b")) {
		t.Fatal("corrupted signature accepted")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	kp, _ := NewKeyPair(nil)
	s := Sign(kp.Private, "d")
	if Verify(nil, s, "d") {
		t.Fatal("nil key accepted")
	}
	if Verify(kp.Public, nil, "d") {
		t.Fatal("nil signature accepted")
	}
	if Verify(kp.Public, s[:10], "d") {
		t.Fatal("short signature accepted")
	}
	if Verify(kp.Public[:5], s, "d") {
		t.Fatal("short key accepted")
	}
}

func TestChunkBoundariesAreDomainSeparated(t *testing.T) {
	// ("ab","c") must not verify as ("a","bc"): length prefixing matters
	// because protocol fields are attacker-influenced.
	kp, _ := NewKeyPair(nil)
	s := Sign(kp.Private, "d", []byte("ab"), []byte("c"))
	if Verify(kp.Public, s, "d", []byte("a"), []byte("bc")) {
		t.Fatal("chunk boundary confusion")
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	rng1 := group.NewDRBG([]byte("seed"))
	rng2 := group.NewDRBG([]byte("seed"))
	k1, err := NewKeyPair(rng1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKeyPair(rng2)
	if err != nil {
		t.Fatal(err)
	}
	if string(k1.Public) != string(k2.Public) {
		t.Fatal("same seed produced different keys")
	}
}

func TestUint64Bytes(t *testing.T) {
	b := Uint64Bytes(0x0102030405060708)
	if len(b) != 8 || b[0] != 1 || b[7] != 8 {
		t.Fatalf("encoding wrong: %x", b)
	}
}

func BenchmarkSign(b *testing.B) {
	kp, _ := NewKeyPair(nil)
	payload := []byte("endorse-serial-code")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sign(kp.Private, "d", payload)
	}
}

func BenchmarkVerify(b *testing.B) {
	kp, _ := NewKeyPair(nil)
	payload := []byte("endorse-serial-code")
	s := Sign(kp.Private, "d", payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Public, s, "d", payload) {
			b.Fatal("must verify")
		}
	}
}
