// Package sim is a discrete-event simulation harness for the election
// stack. A Driver owns a virtual clock and an ordered event queue; Memnet
// delivery delays, Batcher flush windows and election-phase boundaries all
// become events on that queue, so an entire election — LAN or WAN latency,
// jitter, batching, fault schedules — runs in simulated time: a 25 ms WAN
// hop costs no wall-clock sleep, and a two-hour voting window collapses to
// however long the CPU work inside it takes.
//
// The paper's liveness and safety arguments (§III-C, §IV) quantify over
// adversarial schedules; this package makes those schedules first-class test
// inputs. A Scenario (scenario.go) is a seed-reproducible schedule of faults
// over election time plus continuously-evaluated invariant probes, and the
// Driver records a trace of every labeled event it executes, so a failing
// schedule is replayable from its seed alone.
//
// Concurrency model: nodes keep their real goroutines (pumps, worker pools,
// blocked voters); only time is virtual. The Driver executes events from a
// single goroutine and, before advancing the clock, waits for the system to
// settle (no new events being scheduled), so in-flight reactions to one
// event land before the clock jumps to the next. Event order on the queue —
// and therefore the labeled trace — is deterministic: events fire ordered by
// (virtual time, schedule order). Node-internal goroutine interleaving
// remains the scheduler's business, exactly as on a real network.
package sim

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/clock"
)

// DefaultStart is the virtual epoch used when Config.Start is zero: a date
// comfortably inside the test elections' voting windows.
var DefaultStart = time.Date(2026, 6, 10, 8, 1, 0, 0, time.UTC)

// Config tunes a Driver. The zero value is usable. The Driver itself is
// randomness-free: scenario generation (sim.RandomScenario) and network
// fault draws (transport.Memnet.Reseed) carry the seeds.
type Config struct {
	// Start is the initial virtual time (default DefaultStart).
	Start time.Time
	// MicroJump is the advance distance below which the clock moves with
	// no quiescence wait at all (default 1ms of virtual time): skipping a
	// few hundred microseconds of virtual latency only delays a reaction's
	// timestamp by the same few hundred microseconds, and jitter-spread
	// deliveries advance in these micro-hops thousands of times per run.
	MicroJump time.Duration
	// QuickSettle is the poll interval used to detect quiescence before
	// short clock advances (default 20µs).
	QuickSettle time.Duration
	// StrongSettle is the poll interval before long jumps — timeouts,
	// phase boundaries, scenario faults — where mistaking mid-flight work
	// for quiescence would skip protocol steps (default 200µs).
	StrongSettle time.Duration
	// LongJump is the advance distance beyond which the strong settle is
	// used (default 10ms of virtual time: protocol rounds and fault
	// schedules advance in sub-10ms hops, timeouts and phase boundaries in
	// seconds).
	LongJump time.Duration
}

// TraceEvent is one executed labeled event. At is the scheduled virtual
// offset from the driver's start; ExecAt is the virtual clock when the
// event actually ran (later than At only when a JumpTo overshot it — a
// fault firing after the polls closed, say). Seq records schedule order
// for debugging; the trace hash covers (At, ExecAt, Label) in execution
// order.
type TraceEvent struct {
	Seq    uint64
	At     time.Duration
	ExecAt time.Duration
	Label  string
}

// Driver is the discrete-event scheduler. It implements clock.Timers, so it
// plugs directly into every component that takes an injectable clock.
type Driver struct {
	start        time.Time
	microJump    time.Duration
	quickSettle  time.Duration
	strongSettle time.Duration
	longJump     time.Duration

	mu    sync.Mutex
	now   time.Time
	queue eventQueue
	seq   uint64
	trace []TraceEvent

	// activity counts scheduling actions; the settle loop watches it to
	// decide when in-flight reactions have landed.
	activity atomic.Uint64
	wake     chan struct{}

	// runMu serializes event execution: either a Spin loop or an Elapse
	// caller owns it, never both.
	runMu sync.Mutex
}

var _ clock.Timers = (*Driver)(nil)

// New builds a Driver.
func New(cfg Config) *Driver {
	if cfg.Start.IsZero() {
		cfg.Start = DefaultStart
	}
	if cfg.MicroJump <= 0 {
		cfg.MicroJump = time.Millisecond
	}
	if cfg.QuickSettle <= 0 {
		cfg.QuickSettle = 20 * time.Microsecond
	}
	if cfg.StrongSettle <= 0 {
		cfg.StrongSettle = 200 * time.Microsecond
	}
	if cfg.LongJump <= 0 {
		cfg.LongJump = 10 * time.Millisecond
	}
	return &Driver{
		start:        cfg.Start,
		microJump:    cfg.MicroJump,
		quickSettle:  cfg.QuickSettle,
		strongSettle: cfg.StrongSettle,
		longJump:     cfg.LongJump,
		now:          cfg.Start,
		wake:         make(chan struct{}, 1),
	}
}

// Now implements clock.Clock: the current virtual time.
func (d *Driver) Now() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Elapsed is the virtual time since the driver started.
func (d *Driver) Elapsed() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now.Sub(d.start)
}

// AfterFunc implements clock.Timers: fn runs as an (unlabeled, untraced)
// event once the virtual clock reaches now+dur.
func (d *Driver) AfterFunc(dur time.Duration, fn func()) clock.Timer {
	return d.schedule(dur, "", fn)
}

// Schedule queues a labeled event at now+dur. Labeled events are recorded
// in the trace when they execute — scenario faults and probes use this so
// the same seed provably produces the same schedule.
func (d *Driver) Schedule(dur time.Duration, label string, fn func()) clock.Timer {
	return d.schedule(dur, label, fn)
}

func (d *Driver) schedule(dur time.Duration, label string, fn func()) *event {
	if dur < 0 {
		dur = 0
	}
	d.mu.Lock()
	ev := &event{d: d, at: d.now.Add(dur), seq: d.seq, label: label, fn: fn}
	d.seq++
	heap.Push(&d.queue, ev)
	d.mu.Unlock()
	d.bump()
	return ev
}

// bump notes scheduling activity and wakes an idle run loop.
func (d *Driver) bump() {
	d.activity.Add(1)
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// JumpTo moves the virtual clock forward to t (never backward): the
// simulation analogue of clock.Fake.Set, used to close the polls. Events
// scheduled before t still execute — late, like messages in flight when a
// real deadline passes.
func (d *Driver) JumpTo(t time.Time) {
	d.mu.Lock()
	if t.After(d.now) {
		d.now = t
	}
	d.mu.Unlock()
	d.bump()
}

// Spin starts a background loop that executes events as they become due,
// advancing the virtual clock whenever the system is quiescent — the mode
// used while concurrent test goroutines (voters, consensus phases) interact
// with the cluster. The returned stop function halts the loop and waits for
// it to exit.
func (d *Driver) Spin() (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.runMu.Lock()
		defer d.runMu.Unlock()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			if d.step(maxTime) {
				continue
			}
			// Queue drained and system settled: sleep until new work.
			select {
			case <-stopCh:
				return
			case <-d.wake:
			}
		}
	}()
	return func() {
		close(stopCh)
		d.bump() // unblock a loop waiting on wake
		<-done
	}
}

// Elapse synchronously advances the virtual clock by dur, executing every
// event that falls due on the way — the mode for step-by-step unit tests
// (flush windows, timer expiry). Must not be called while a Spin loop runs.
func (d *Driver) Elapse(dur time.Duration) {
	d.runMu.Lock()
	defer d.runMu.Unlock()
	// Let whatever the caller just set in motion land first, so Elapse(0)
	// is a true settle point even though micro-jumps skip the wait.
	d.settle(false)
	d.mu.Lock()
	target := d.now.Add(dur)
	d.mu.Unlock()
	for d.step(target) {
	}
	d.mu.Lock()
	if target.After(d.now) {
		d.now = target
	}
	d.mu.Unlock()
}

// Settle blocks until the system is quiescent at the current virtual time:
// all due events executed and no new ones being scheduled. Must not be
// called while a Spin loop runs.
func (d *Driver) Settle() { d.Elapse(0) }

// maxTime is "no limit" for step.
var maxTime = time.Unix(1<<62-1, 0)

// step executes the next event due at or before limit, advancing the clock
// if needed once the system settles. Returns false when no such event
// exists (after settling, so a reaction in flight gets to schedule one).
func (d *Driver) step(limit time.Time) bool {
	if ev, ok := d.popDue(limit, false); ok {
		d.exec(ev)
		return true
	}
	// Nothing due at the current clock: wait for in-flight reactions to
	// land, then advance to the next event. How carefully to wait depends
	// on how far the clock would jump — a long jump that outruns a
	// mid-verification worker would fire timeouts that should have lost
	// the race, so long jumps settle harder; micro-jumps (jitter-spread
	// deliveries) skip the wait entirely, since being outrun only shifts a
	// reaction's timestamp by the same few hundred microseconds.
	if jump := d.jumpAfter(limit); jump > d.microJump {
		d.settle(jump > d.longJump)
	}
	ev, ok := d.popDue(limit, true)
	if !ok {
		return false
	}
	d.exec(ev)
	return true
}

// jumpAfter reports how far the clock would advance to reach the next
// event (or limit when the queue is empty).
func (d *Driver) jumpAfter(limit time.Time) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropStoppedLocked()
	if len(d.queue) > 0 && d.queue[0].at.Before(limit) {
		return d.queue[0].at.Sub(d.now)
	}
	if limit == maxTime {
		return 0 // empty queue, no limit: nothing to jump to
	}
	return limit.Sub(d.now)
}

// popDue pops the next runnable event with at <= now, or — when advance is
// set — jumps the clock to the next event within limit and pops it.
func (d *Driver) popDue(limit time.Time, advance bool) (*event, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropStoppedLocked()
	if len(d.queue) == 0 {
		return nil, false
	}
	ev := d.queue[0]
	if ev.at.After(d.now) {
		if !advance || ev.at.After(limit) {
			return nil, false
		}
		d.now = ev.at
	}
	heap.Pop(&d.queue)
	ev.fired = true
	if ev.label != "" {
		d.trace = append(d.trace, TraceEvent{
			Seq: ev.seq, At: ev.at.Sub(d.start), ExecAt: d.now.Sub(d.start), Label: ev.label,
		})
	}
	return ev, true
}

// dropStoppedLocked discards cancelled events sitting at the queue head.
func (d *Driver) dropStoppedLocked() {
	for len(d.queue) > 0 && d.queue[0].stopped {
		heap.Pop(&d.queue)
	}
}

// exec runs one event's callback outside all driver locks.
func (d *Driver) exec(ev *event) { ev.fn() }

// settle waits until the activity counter holds still: the moment when
// everything the last events set in motion has scheduled its follow-ups.
func (d *Driver) settle(strong bool) {
	poll, need := d.quickSettle, 2
	if strong {
		// A long jump that wins a race against a descheduled goroutine
		// would fire a timeout that should have lost, so demand stability
		// across a ~2ms window before jumping far.
		poll, need = d.strongSettle, 8
	}
	last := d.activity.Load()
	stable := 0
	for stable < need {
		for i := 0; i < 16; i++ {
			runtime.Gosched()
		}
		time.Sleep(poll)
		cur := d.activity.Load()
		if cur == last {
			stable++
		} else {
			last, stable = cur, 0
		}
	}
}

// WithTimeout derives a context cancelled at virtual time now+dur — the
// sim-path replacement for context.WithTimeout, so a starved protocol run
// ends when the simulation reaches its deadline, not after a wall-clock
// sleep. Like the real thing, Err reports context.DeadlineExceeded when
// the (virtual) deadline fires, and Deadline reports the virtual deadline.
func (d *Driver) WithTimeout(parent context.Context, dur time.Duration) (context.Context, context.CancelFunc) {
	inner, cancel := context.WithCancelCause(parent)
	tm := d.schedule(dur, "", func() { cancel(context.DeadlineExceeded) })
	// Report the scheduled event's own time (a racing Spin loop may have
	// advanced the clock between entry and scheduling), floored by an
	// earlier parent deadline, matching context.WithTimeout's contract.
	deadline := tm.at
	if pd, ok := parent.Deadline(); ok && pd.Before(deadline) {
		deadline = pd
	}
	ctx := virtualDeadlineCtx{Context: inner, deadline: deadline}
	return ctx, func() {
		tm.Stop()
		cancel(context.Canceled)
	}
}

// virtualDeadlineCtx makes a cause-cancelled context look like a deadline
// context: ctx.Err() is context.DeadlineExceeded when the virtual deadline
// event fired, so sim-path timeouts wrap into the same errors as real ones.
type virtualDeadlineCtx struct {
	context.Context
	deadline time.Time
}

// Deadline reports the virtual deadline (on the driver's timeline).
func (c virtualDeadlineCtx) Deadline() (time.Time, bool) { return c.deadline, true }

// Err translates a deadline-caused cancellation back to DeadlineExceeded.
func (c virtualDeadlineCtx) Err() error {
	err := c.Context.Err()
	if err != nil && context.Cause(c.Context) == context.DeadlineExceeded {
		return context.DeadlineExceeded
	}
	return err
}

// Trace returns a copy of the labeled events executed so far.
func (d *Driver) Trace() []TraceEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TraceEvent, len(d.trace))
	copy(out, d.trace)
	return out
}

// TraceHash digests the labeled event trace — (scheduled offset, executed
// offset, label) in execution order. Two runs of the same seeded scenario
// produce the same hash; a mismatch means the executed schedule itself
// diverged (different faults, a different order, or faults fired at
// different virtual times). Unlabeled events (message deliveries, probe
// ticks) are deliberately excluded: their interleaving reflects real
// goroutine scheduling, which the harness does not promise to replay —
// only the fault schedule and its timing are the replayable contract.
func (d *Driver) TraceHash() [32]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := sha256.New()
	var buf [8]byte
	for _, te := range d.trace {
		binary.BigEndian.PutUint64(buf[:], uint64(te.At)) //nolint:gosec // offset >= 0
		h.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], uint64(te.ExecAt)) //nolint:gosec // offset >= 0
		h.Write(buf[:])
		h.Write([]byte(te.Label))
		h.Write([]byte{0})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// event is one queue entry, ordered by (at, seq). It implements clock.Timer
// so AfterFunc callers can cancel it. stopped and fired are guarded by the
// owning driver's mu.
type event struct {
	d       *Driver
	at      time.Time
	seq     uint64
	label   string
	fn      func()
	stopped bool
	fired   bool
}

// Stop implements clock.Timer. The event stays queued but is skipped.
func (ev *event) Stop() bool {
	ev.d.mu.Lock()
	defer ev.d.mu.Unlock()
	if ev.fired || ev.stopped {
		return false
	}
	ev.stopped = true
	return true
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
