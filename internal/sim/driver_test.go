package sim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestElapseRunsEventsInVirtualOrder(t *testing.T) {
	d := New(Config{})
	var order []string
	d.AfterFunc(3*time.Millisecond, func() { order = append(order, "c") })
	d.AfterFunc(time.Millisecond, func() { order = append(order, "a") })
	d.AfterFunc(2*time.Millisecond, func() { order = append(order, "b") })
	// Same-time events run in schedule order.
	d.AfterFunc(2*time.Millisecond, func() { order = append(order, "b2") })
	start := d.Now()
	d.Elapse(10 * time.Millisecond)
	if got := d.Now().Sub(start); got != 10*time.Millisecond {
		t.Fatalf("clock advanced %v, want 10ms", got)
	}
	want := []string{"a", "b", "b2", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestElapseStopsAtLimit(t *testing.T) {
	d := New(Config{})
	fired := false
	d.AfterFunc(time.Hour, func() { fired = true })
	d.Elapse(time.Minute)
	if fired {
		t.Fatal("event beyond the elapse window fired")
	}
	d.Elapse(time.Hour)
	if !fired {
		t.Fatal("event within the elapse window did not fire")
	}
}

func TestTimerStop(t *testing.T) {
	d := New(Config{})
	fired := false
	tm := d.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending event must report true")
	}
	if tm.Stop() {
		t.Fatal("double Stop must report false")
	}
	d.Elapse(time.Second)
	if fired {
		t.Fatal("stopped event fired")
	}
}

func TestEventsScheduleFollowUps(t *testing.T) {
	// An event scheduling another event (message → reply → reply...) is the
	// core simulation pattern; chains must run within one Elapse.
	d := New(Config{})
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 5 {
			d.AfterFunc(time.Millisecond, hop)
		}
	}
	d.AfterFunc(time.Millisecond, hop)
	d.Elapse(10 * time.Millisecond)
	if hops != 5 {
		t.Fatalf("chain ran %d hops, want 5", hops)
	}
}

func TestSpinDrivesCrossGoroutineWork(t *testing.T) {
	// A blocked "voter" goroutine waits for a reply that only materializes
	// through two virtual-latency hops; the spin loop must advance the clock
	// and deliver it without any wall-clock sleeps proportional to latency.
	d := New(Config{})
	stop := d.Spin()
	defer stop()

	reply := make(chan time.Time, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Request takes 25ms (virtual WAN hop), response another 25ms.
		d.AfterFunc(25*time.Millisecond, func() {
			d.AfterFunc(25*time.Millisecond, func() { reply <- d.Now() })
		})
	}()
	wg.Wait()
	select {
	case at := <-reply:
		if got := at.Sub(DefaultStart); got != 50*time.Millisecond {
			t.Fatalf("reply at +%v, want +50ms", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("spin loop never delivered the reply")
	}
}

func TestWithTimeoutFiresAtVirtualDeadline(t *testing.T) {
	d := New(Config{})
	stop := d.Spin()
	defer stop()

	ctx, cancel := d.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("virtual deadline never fired (10s wall-clock)")
	}
	if context.Cause(ctx) != context.DeadlineExceeded {
		t.Fatalf("cause = %v, want DeadlineExceeded", context.Cause(ctx))
	}
	if err := ctx.Err(); err != context.DeadlineExceeded {
		t.Fatalf("Err() = %v, want DeadlineExceeded (same contract as context.WithTimeout)", err)
	}
	if dl, ok := ctx.Deadline(); !ok || !dl.Equal(DefaultStart.Add(5*time.Second)) {
		t.Fatalf("Deadline() = %v, %v; want the virtual deadline", dl, ok)
	}
	if d.Now().Sub(DefaultStart) < 5*time.Second {
		t.Fatalf("clock at +%v, deadline was +5s", d.Now().Sub(DefaultStart))
	}

	// Cancelling first stops the deadline event.
	ctx2, cancel2 := d.WithTimeout(context.Background(), time.Hour)
	cancel2()
	<-ctx2.Done()
	if context.Cause(ctx2) != context.Canceled {
		t.Fatalf("cause = %v, want Canceled", context.Cause(ctx2))
	}
	if err := ctx2.Err(); err != context.Canceled {
		t.Fatalf("Err() = %v, want Canceled", err)
	}
}

func TestJumpToMovesOnlyForward(t *testing.T) {
	d := New(Config{})
	end := DefaultStart.Add(2 * time.Hour)
	d.JumpTo(end)
	if !d.Now().Equal(end) {
		t.Fatalf("JumpTo did not move the clock: %v", d.Now())
	}
	d.JumpTo(DefaultStart)
	if !d.Now().Equal(end) {
		t.Fatal("JumpTo moved the clock backwards")
	}
	// Events stranded before the jump still execute on the next step.
	fired := false
	d.mu.Lock()
	d.queue = append(d.queue, &event{d: d, at: DefaultStart.Add(time.Minute), fn: func() { fired = true }})
	d.mu.Unlock()
	d.Settle()
	if !fired {
		t.Fatal("pre-jump event never executed")
	}
}

func TestTraceRecordsLabeledEventsOnly(t *testing.T) {
	d := New(Config{})
	d.AfterFunc(time.Millisecond, func() {})                   // unlabeled: untraced
	d.Schedule(2*time.Millisecond, "fault:crash:1", func() {}) // labeled
	d.Schedule(3*time.Millisecond, "fault:restore:1", func() {})
	d.Elapse(5 * time.Millisecond)
	tr := d.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d events, want 2: %v", len(tr), tr)
	}
	if tr[0].Label != "fault:crash:1" || tr[0].At != 2*time.Millisecond {
		t.Fatalf("trace[0] = %+v", tr[0])
	}
	if tr[1].Label != "fault:restore:1" || tr[1].At != 3*time.Millisecond {
		t.Fatalf("trace[1] = %+v", tr[1])
	}
	if d.TraceHash() == (New(Config{})).TraceHash() {
		t.Fatal("non-empty trace hashes equal to empty trace")
	}
}
