package sim

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// Surface is the fault-injection surface a Scenario drives. core.Cluster
// implements it for full elections; test harnesses implement it for
// subsystem-level clusters. Node indices are the cluster's own.
type Surface interface {
	// Crash makes node i unreachable (all traffic dropped).
	Crash(i int)
	// Restore reconnects a crashed node.
	Restore(i int)
	// Partition blocks (on) or heals (off) traffic between a and b.
	Partition(a, b int, on bool)
}

// Restarter is the optional Surface extension for crash-restart scenarios:
// unlike Crash/Restore (a network-level isolation that preserves volatile
// state), StopNode kills the node outright — goroutines stopped, memory
// gone — and RestartNode relaunches it from whatever it persisted. Surfaces
// without durable state can fall back to isolation semantics (Install does
// so automatically when the surface does not implement this).
type Restarter interface {
	// StopNode hard-stops node i, losing all volatile state.
	StopNode(i int)
	// RestartNode relaunches a stopped node from its persisted state.
	RestartNode(i int)
}

// FaultKind is one scheduled fault type.
type FaultKind uint8

// Fault kinds.
const (
	// FaultCrash isolates a node.
	FaultCrash FaultKind = iota
	// FaultRestore reconnects a node crashed earlier in the schedule.
	FaultRestore
	// FaultPartitionForm blocks traffic between two nodes.
	FaultPartitionForm
	// FaultPartitionHeal restores traffic between two nodes.
	FaultPartitionHeal
	// FaultStop kills a node outright: process death, volatile state lost
	// (Restarter surfaces only; degrades to FaultCrash otherwise).
	FaultStop
	// FaultRestart relaunches a stopped node from its persisted state —
	// the crash-recovery scenario class the durable VC journal enables.
	FaultRestart
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestore:
		return "restore"
	case FaultPartitionForm:
		return "partition"
	case FaultPartitionHeal:
		return "heal"
	case FaultStop:
		return "stop"
	case FaultRestart:
		return "restart"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is one scheduled fault: Kind applied to node A (and B for
// partitions) at virtual offset At from scenario install.
type Fault struct {
	At   time.Duration
	Kind FaultKind
	A, B int
}

// Label is the fault's trace label.
func (f Fault) Label() string {
	switch f.Kind {
	case FaultPartitionForm, FaultPartitionHeal:
		return fmt.Sprintf("fault:%s:%d-%d", f.Kind, f.A, f.B)
	default:
		return fmt.Sprintf("fault:%s:%d", f.Kind, f.A)
	}
}

// ScenarioConfig bounds random scenario generation.
type ScenarioConfig struct {
	// NumNodes is the cluster size faults are drawn over.
	NumNodes int
	// Byzantine reserves this many node seats as Byzantine — the paper's
	// threshold is fv = ⌈Nv/3⌉−1. The scenario only picks which nodes;
	// the harness decides the behaviour (Equivocator, ShareCorruptor, …).
	Byzantine int
	// Duration is the window faults are scheduled within (default 40ms of
	// virtual time — long against LAN latencies, instant on the wall).
	Duration time.Duration
	// MaxCrashWindows bounds crash/restore pairs (default 2; negative
	// disables crash windows entirely).
	MaxCrashWindows int
	// MaxPartitions bounds partition form/heal pairs (default 2; negative
	// disables partitions entirely).
	MaxPartitions int
	// MaxRestartWindows bounds stop/restart pairs (default 0: crash-restart
	// scenarios opt in, because they require a Restarter surface with
	// per-node durable state to be meaningful). Restart windows are drawn
	// over nodes not already used by crash windows, so the two levers
	// never fight over one node.
	MaxRestartWindows int
}

func (cfg ScenarioConfig) withDefaults() ScenarioConfig {
	if cfg.Duration <= 0 {
		cfg.Duration = 40 * time.Millisecond
	}
	switch {
	case cfg.MaxCrashWindows == 0:
		cfg.MaxCrashWindows = 2
	case cfg.MaxCrashWindows < 0:
		cfg.MaxCrashWindows = 0
	}
	switch {
	case cfg.MaxPartitions == 0:
		cfg.MaxPartitions = 2
	case cfg.MaxPartitions < 0:
		cfg.MaxPartitions = 0
	}
	return cfg
}

// Scenario is a declarative, seed-reproducible schedule of faults over
// election time. The same (seed, config) always yields the same scenario;
// Install schedules its faults as labeled (traced) events, so a failing run
// is replayed by rebuilding the scenario from the logged seed.
type Scenario struct {
	Seed      uint64
	NumNodes  int
	Byzantine []int // node indices reserved for Byzantine behaviour
	WAN       bool  // suggests the WAN link profile to the harness
	Duration  time.Duration
	Faults    []Fault
}

// RandomScenario derives a scenario deterministically from seed.
func RandomScenario(seed uint64, cfg ScenarioConfig) Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(seed, 0xD0DE)) //nolint:gosec // simulation only
	s := Scenario{
		Seed:     seed,
		NumNodes: cfg.NumNodes,
		WAN:      rng.IntN(4) == 0,
		Duration: cfg.Duration,
	}
	if cfg.Byzantine > 0 && cfg.NumNodes > 0 {
		perm := rng.Perm(cfg.NumNodes)
		s.Byzantine = append(s.Byzantine, perm[:min(cfg.Byzantine, cfg.NumNodes)]...)
		sort.Ints(s.Byzantine)
	}
	window := func() (from, to time.Duration) {
		a := time.Duration(rng.Int64N(int64(cfg.Duration)))
		b := time.Duration(rng.Int64N(int64(cfg.Duration)))
		if a > b {
			a, b = b, a
		}
		return a, b
	}
	// Crash windows target distinct nodes and partition windows distinct
	// pairs: Surface.Crash/Partition are boolean levers with no nesting
	// count, so two overlapping windows on the same target would let the
	// inner window's heal cut the outer one short.
	crashed := 0
	var perm []int
	if cfg.NumNodes >= 1 {
		n := min(rng.IntN(cfg.MaxCrashWindows+1), cfg.NumNodes)
		perm = rng.Perm(cfg.NumNodes)
		for i := 0; i < n; i++ {
			from, to := window()
			s.Faults = append(s.Faults,
				Fault{At: from, Kind: FaultCrash, A: perm[i]},
				Fault{At: to, Kind: FaultRestore, A: perm[i]})
		}
		crashed = n
	}
	// Restart windows (opt-in): a node dies mid-schedule and comes back
	// from its persisted state before the schedule ends. Drawn only when
	// MaxRestartWindows > 0, so the rng stream — and therefore every
	// schedule generated by older configs — is unchanged.
	if cfg.MaxRestartWindows > 0 && cfg.NumNodes > crashed {
		avail := perm[crashed:]
		n := min(rng.IntN(cfg.MaxRestartWindows+1), len(avail))
		for i := 0; i < n; i++ {
			from, to := window()
			s.Faults = append(s.Faults,
				Fault{At: from, Kind: FaultStop, A: avail[i]},
				Fault{At: to, Kind: FaultRestart, A: avail[i]})
		}
	}
	if cfg.NumNodes >= 2 { // partitions need two distinct nodes
		var pairs [][2]int
		for a := 0; a < cfg.NumNodes; a++ {
			for b := a + 1; b < cfg.NumNodes; b++ {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		n := min(rng.IntN(cfg.MaxPartitions+1), len(pairs))
		for i := 0; i < n; i++ {
			from, to := window()
			s.Faults = append(s.Faults,
				Fault{At: from, Kind: FaultPartitionForm, A: pairs[i][0], B: pairs[i][1]},
				Fault{At: to, Kind: FaultPartitionHeal, A: pairs[i][0], B: pairs[i][1]})
		}
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].At < s.Faults[j].At })
	return s
}

// IsByzantine reports whether node i holds one of the Byzantine seats.
func (s Scenario) IsByzantine(i int) bool {
	for _, b := range s.Byzantine {
		if b == i {
			return true
		}
	}
	return false
}

// Install schedules every fault onto d as a labeled event against target.
// Call before starting traffic so trace sequence numbers are deterministic.
// Stop/restart faults need a Restarter surface; on a plain Surface they
// degrade to isolation (crash/restore) semantics.
func (s Scenario) Install(d *Driver, target Surface) {
	restarter, _ := target.(Restarter)
	for _, f := range s.Faults {
		f := f
		d.Schedule(f.At, f.Label(), func() {
			switch f.Kind {
			case FaultCrash:
				target.Crash(f.A)
			case FaultRestore:
				target.Restore(f.A)
			case FaultPartitionForm:
				target.Partition(f.A, f.B, true)
			case FaultPartitionHeal:
				target.Partition(f.A, f.B, false)
			case FaultStop:
				if restarter != nil {
					restarter.StopNode(f.A)
				} else {
					target.Crash(f.A)
				}
			case FaultRestart:
				if restarter != nil {
					restarter.RestartNode(f.A)
				} else {
					target.Restore(f.A)
				}
			}
		})
	}
}

// Probe is an invariant checked continuously while a scenario runs — the
// paper's safety properties (at most one UCERT per ballot, receipt
// validity, tally correctness) evaluated during the fault schedule rather
// than only at the end, so a transient violation cannot heal unobserved.
type Probe struct {
	Name string
	// Every is the virtual-time check period (default 1ms).
	Every time.Duration
	// Check returns an error describing the violation, or nil.
	Check func() error
}

// Violations collects probe failures across a scenario run.
type Violations struct {
	mu   sync.Mutex
	list []string
}

func (v *Violations) add(s string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.list = append(v.list, s)
}

// List returns the recorded violations.
func (v *Violations) List() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, len(v.list))
	copy(out, v.list)
	return out
}

// Empty reports whether no probe ever failed.
func (v *Violations) Empty() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.list) == 0
}

// InstallProbes schedules each probe to run every Probe.Every of virtual
// time for the scenario's duration (plus one final check at the end), and
// returns the collector the test asserts on after the run.
func (s Scenario) InstallProbes(d *Driver, probes []Probe) *Violations {
	v := &Violations{}
	for _, p := range probes {
		p := p
		if p.Every <= 0 {
			p.Every = time.Millisecond
		}
		run := func() {
			if err := p.Check(); err != nil {
				v.add(p.Name + ": " + err.Error())
			}
		}
		var arm func(off time.Duration)
		arm = func(off time.Duration) {
			if off >= s.Duration {
				// Final check exactly at the end of the schedule.
				d.AfterFunc(s.Duration-(off-p.Every), run)
				return
			}
			d.AfterFunc(p.Every, func() {
				run()
				arm(off + p.Every)
			})
		}
		arm(p.Every)
	}
	return v
}
