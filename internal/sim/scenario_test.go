package sim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// recordingSurface logs fault applications (thread-safe: faults fire on the
// driver goroutine, assertions on the test's).
type recordingSurface struct {
	mu  sync.Mutex
	ops []string
}

func (r *recordingSurface) log(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, s)
}
func (r *recordingSurface) Crash(i int)   { r.log("crash") }
func (r *recordingSurface) Restore(i int) { r.log("restore") }
func (r *recordingSurface) Partition(a, b int, on bool) {
	if on {
		r.log("partition")
	} else {
		r.log("heal")
	}
}

func TestRandomScenarioIsDeterministic(t *testing.T) {
	cfg := ScenarioConfig{NumNodes: 7, Byzantine: 2}
	for seed := uint64(1); seed <= 50; seed++ {
		a := RandomScenario(seed, cfg)
		b := RandomScenario(seed, cfg)
		if len(a.Faults) != len(b.Faults) || len(a.Byzantine) != len(b.Byzantine) || a.WAN != b.WAN {
			t.Fatalf("seed %d: scenarios differ: %+v vs %+v", seed, a, b)
		}
		for i := range a.Faults {
			if a.Faults[i] != b.Faults[i] {
				t.Fatalf("seed %d: fault %d differs: %+v vs %+v", seed, i, a.Faults[i], b.Faults[i])
			}
		}
		for i := range a.Byzantine {
			if a.Byzantine[i] != b.Byzantine[i] {
				t.Fatalf("seed %d: byzantine seats differ", seed)
			}
		}
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	// Different seeds must explore different schedules (sanity: generation
	// actually consumes the seed).
	cfg := ScenarioConfig{NumNodes: 7, Byzantine: 2}
	distinct := make(map[string]bool)
	for seed := uint64(1); seed <= 20; seed++ {
		s := RandomScenario(seed, cfg)
		key := ""
		for _, f := range s.Faults {
			key += f.Label() + f.At.String() + ";"
		}
		distinct[key] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("20 seeds produced only %d distinct schedules", len(distinct))
	}
}

func TestScenarioTraceHashReproducible(t *testing.T) {
	// The acceptance bar: same seed → identical executed event trace,
	// verified by hash, across fully independent driver runs.
	cfg := ScenarioConfig{NumNodes: 5, Byzantine: 1, Duration: 20 * time.Millisecond}
	for seed := uint64(1); seed <= 10; seed++ {
		s := RandomScenario(seed, cfg)
		run := func() [32]byte {
			d := New(Config{})
			s.Install(d, &recordingSurface{})
			d.Elapse(s.Duration + time.Millisecond)
			return d.TraceHash()
		}
		h1, h2 := run(), run()
		if h1 != h2 {
			t.Fatalf("seed %d: trace hash diverged across identical runs", seed)
		}
	}
}

func TestScenarioInstallAppliesFaultsInOrder(t *testing.T) {
	d := New(Config{})
	s := Scenario{
		NumNodes: 3,
		Duration: 10 * time.Millisecond,
		Faults: []Fault{
			{At: time.Millisecond, Kind: FaultCrash, A: 1},
			{At: 2 * time.Millisecond, Kind: FaultPartitionForm, A: 0, B: 2},
			{At: 5 * time.Millisecond, Kind: FaultPartitionHeal, A: 0, B: 2},
			{At: 7 * time.Millisecond, Kind: FaultRestore, A: 1},
		},
	}
	rec := &recordingSurface{}
	s.Install(d, rec)
	d.Elapse(s.Duration)
	want := []string{"crash", "partition", "heal", "restore"}
	if len(rec.ops) != len(want) {
		t.Fatalf("ops = %v, want %v", rec.ops, want)
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", rec.ops, want)
		}
	}
	tr := d.Trace()
	if len(tr) != 4 || tr[0].Label != "fault:crash:1" || tr[1].Label != "fault:partition:0-2" {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestProbesRunContinuouslyAndCollectViolations(t *testing.T) {
	d := New(Config{})
	s := Scenario{Duration: 10 * time.Millisecond}
	var checks int
	sick := false
	v := s.InstallProbes(d, []Probe{{
		Name:  "at-most-one-ucert",
		Every: time.Millisecond,
		Check: func() error {
			checks++
			if sick {
				return errors.New("two certificates for ballot 7")
			}
			return nil
		},
	}})
	d.Elapse(5 * time.Millisecond)
	if checks < 4 {
		t.Fatalf("probe ran %d times in 5ms, want >=4", checks)
	}
	if !v.Empty() {
		t.Fatalf("healthy run recorded violations: %v", v.List())
	}
	sick = true
	d.Elapse(10 * time.Millisecond)
	if v.Empty() {
		t.Fatal("violation not recorded")
	}
	list := v.List()
	if list[0] != "at-most-one-ucert: two certificates for ballot 7" {
		t.Fatalf("violation text = %q", list[0])
	}
}

func TestScenarioByzantineSeatsAtThreshold(t *testing.T) {
	s := RandomScenario(42, ScenarioConfig{NumNodes: 4, Byzantine: 1})
	if len(s.Byzantine) != 1 {
		t.Fatalf("byzantine seats = %v, want exactly 1", s.Byzantine)
	}
	if !s.IsByzantine(s.Byzantine[0]) || s.IsByzantine(s.Byzantine[0]+17) {
		t.Fatal("IsByzantine inconsistent with seat list")
	}
	// Partition faults never pair a node with itself.
	for seed := uint64(1); seed <= 100; seed++ {
		sc := RandomScenario(seed, ScenarioConfig{NumNodes: 4, Byzantine: 1})
		for _, f := range sc.Faults {
			if (f.Kind == FaultPartitionForm || f.Kind == FaultPartitionHeal) && f.A == f.B {
				t.Fatalf("seed %d: self-partition %+v", seed, f)
			}
			if f.At < 0 || f.At > sc.Duration {
				t.Fatalf("seed %d: fault outside window %+v", seed, f)
			}
		}
	}
}
