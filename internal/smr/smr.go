// Package smr implements the ablation baseline the paper argues against in
// §II: vote collection through state-machine-replication-style total
// ordering, where every vote must be sequenced by a Byzantine consensus
// instance before the client is acknowledged. D-DEMOS instead validates
// votes independently per node and only coordinates per-ballot uniqueness,
// so comparing the two quantifies the cost of total ordering.
//
// The baseline is deliberately generous to SMR: there is no leader, no view
// change and no request forwarding — each "replica" directly runs one
// binary consensus instance per request with unanimous inputs, which is a
// lower bound on what any BFT-total-order protocol must pay.
package smr

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"ddemos/internal/consensus"
	"ddemos/internal/transport"
	"ddemos/internal/wire"
)

// Node is one ordered-collection replica.
type Node struct {
	id   uint16
	n, f int
	base transport.NodeID // network id of replica 0
	ep   transport.Endpoint
	coin consensus.Coin

	mu      sync.Mutex
	slots   map[uint64]*consensus.Batch
	done    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// NewNode creates a replica. Replica i must own network id base+i, so a set
// of sequencers can share a network with other node families.
func NewNode(id uint16, n, f int, base transport.NodeID, ep transport.Endpoint, coin consensus.Coin) *Node {
	return &Node{
		id:    id,
		n:     n,
		f:     f,
		base:  base,
		ep:    ep,
		coin:  coin,
		slots: make(map[uint64]*consensus.Batch),
		done:  make(chan struct{}),
	}
}

// Start launches the message pump.
func (s *Node) Start() {
	s.wg.Add(1)
	go s.pump()
}

// Stop shuts the replica down.
func (s *Node) Stop() {
	s.stopped.Do(func() {
		close(s.done)
		_ = s.ep.Close()
	})
	s.wg.Wait()
}

// Order sequences one request (identified by slot, unique per request)
// through consensus, blocking until the slot is decided — the per-request
// cost every SMR-based design pays before acknowledging a vote.
func (s *Node) Order(ctx context.Context, slot uint64) error {
	b, err := s.slot(slot)
	if err != nil {
		return err
	}
	if _, err := b.Results(ctx); err != nil {
		return fmt.Errorf("smr: ordering slot %d: %w", slot, err)
	}
	return nil
}

// slot returns (creating and starting if needed) the consensus for a slot.
func (s *Node) slot(slot uint64) (*consensus.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.slots[slot]; ok {
		return b, nil
	}
	peers := make([]transport.NodeID, s.n)
	for i := range peers {
		peers[i] = s.base + transport.NodeID(i) //nolint:gosec // small
	}
	b, err := consensus.NewBatch(s.n, s.f, s.id, 1, s.coin, func(m *wire.Consensus) {
		frame := make([]byte, 8, 8+64)
		binary.BigEndian.PutUint64(frame, slot)
		frame = append(frame, wire.Encode(m)...)
		_ = transport.Multicast(s.ep, peers, frame)
	})
	if err != nil {
		return nil, err
	}
	s.slots[slot] = b
	if err := b.Start([]byte{1}); err != nil {
		return nil, err
	}
	return b, nil
}

func (s *Node) pump() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case env, ok := <-s.ep.Recv():
			if !ok {
				return
			}
			if len(env.Payload) < 9 {
				continue
			}
			slot := binary.BigEndian.Uint64(env.Payload[:8])
			msg, err := wire.Decode(env.Payload[8:])
			if err != nil {
				continue
			}
			cm, ok := msg.(*wire.Consensus)
			if !ok {
				continue
			}
			if env.From < s.base || int(env.From-s.base) >= s.n {
				continue
			}
			b, err := s.slot(slot)
			if err != nil {
				continue
			}
			b.Handle(uint16(env.From-s.base), cm) //nolint:gosec // small
		}
	}
}
