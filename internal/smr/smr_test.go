package smr

import (
	"context"
	"sync"
	"testing"
	"time"

	"ddemos/internal/consensus"
	"ddemos/internal/transport"
)

func newReplicas(t *testing.T, n, f int) ([]*Node, *transport.Memnet) {
	t.Helper()
	net := transport.NewMemnet(transport.LinkProfile{Latency: 100 * time.Microsecond})
	coin := consensus.NewHashCoin([]byte("smr-test"))
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(uint16(i), n, f, 0, net.Endpoint(transport.NodeID(i)), coin) //nolint:gosec // small
		nodes[i].Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		_ = net.Close()
	})
	return nodes, net
}

func TestOrderSingleSlot(t *testing.T) {
	nodes, _ := newReplicas(t, 4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nodes[0].Order(ctx, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOrderManySlotsConcurrently(t *testing.T) {
	nodes, _ := newReplicas(t, 4, 1)
	const slots = 50
	var wg sync.WaitGroup
	errs := make(chan error, slots)
	for s := uint64(1); s <= slots; s++ {
		wg.Add(1)
		go func(slot uint64) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			errs <- nodes[int(slot)%4].Order(ctx, slot)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestOrderSurvivesCrashFault(t *testing.T) {
	nodes, net := newReplicas(t, 4, 1)
	net.Isolate(3, true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := nodes[0].Order(ctx, 7); err != nil {
		t.Fatal(err)
	}
}

func TestOrderTimesOutBeyondThreshold(t *testing.T) {
	nodes, net := newReplicas(t, 4, 1)
	net.Isolate(2, true)
	net.Isolate(3, true)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := nodes[0].Order(ctx, 9); err == nil {
		t.Fatal("ordering must not complete with 2 of 4 replicas down")
	}
}
