package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Cached wraps any Store with a byte-bounded, admission-controlled LRU
// cache — the paper's "database eliminated" in-memory configuration scaled
// down to a fixed budget, so a node serving a pool that outgrows RAM still
// absorbs the protocol's per-ballot fan-in (the responder's validation,
// ENDORSE and VOTE_P handlers all Get the same serial within milliseconds)
// with one underlying read.
//
// Four properties shape the design:
//
//   - Single-flight loading: N concurrent Gets for one absent serial share
//     one inner read; the rest wait on it. Under the vote-time fan-in this
//     converts a thundering herd into one positional read.
//   - Byte-sized eviction: the bound is MaxBytes of cached ballot data, not
//     an entry count, because entry size varies with the option count m —
//     an entry-counted cache would use 8x the memory at m=16 as at m=2.
//     Entries above MaxBytes/8 are never admitted (one oversized record
//     cannot wipe the working set).
//   - Admission control (segmented LRU): a freshly loaded ballot enters a
//     probationary region capped at ~20% of the budget; only a second touch
//     promotes it into the protected region holding the rest. A one-shot
//     scan — an auditor streaming the pool — churns through probation and
//     never displaces the vote-time working set, while the protocol's
//     touch-again-within-milliseconds pattern promotes on its second access
//     and hits from then on.
//   - Sharding: the cache is split into serial-hashed shards, each with its
//     own lock, LRU lists and slice of the byte budget, so the hit path
//     does not serialize the node's worker pool behind one mutex at
//     millions of Gets per second.
//
// The returned *BallotData is shared between the cache and all callers and
// must be treated as immutable, matching Mem's sharing semantics.
type Cached struct {
	inner  Store
	max    int64 // total budget (sum of shard budgets)
	shards []cacheShard
	mask   uint64
	closed atomic.Bool

	hits       atomic.Int64
	misses     atomic.Int64
	shared     atomic.Int64
	evictions  atomic.Int64
	rejected   atomic.Int64
	promotions atomic.Int64
}

const (
	regionProbation = iota
	regionProtected
)

// cacheShard is one lock's worth of the cache: a probationary and a
// protected LRU list sharing one serial index.
type cacheShard struct {
	mu      sync.Mutex
	probMax int64 // probation byte budget (~20% of the shard)
	protMax int64 // protected byte budget (the rest)
	sizeCap int64 // entries above this are never admitted (global MaxBytes/8)
	prob    *list.List
	prot    *list.List
	entries map[uint64]*list.Element
	probBy  int64
	protBy  int64
	flights map[uint64]*flight
	_       [24]byte // keep neighbouring shards off one cache line
}

var _ Store = (*Cached)(nil)

// CachedOptions configures NewCached.
type CachedOptions struct {
	// MaxBytes bounds the cached ballot data across all shards (required,
	// > 0).
	MaxBytes int64
	// Shards is the number of independently locked cache shards, rounded up
	// to a power of two (default 16, minimum 1).
	Shards int
	// DisableAdmission turns off the probationary region: every loaded
	// entry goes straight into one LRU list over the full budget. Useful
	// when the access pattern is known to have no scan component.
	DisableAdmission bool
}

type centry struct {
	serial uint64
	bd     *BallotData
	cost   int64
	region int
}

type flight struct {
	done    chan struct{}
	bd      *BallotData
	err     error
	waiters int // Gets that joined after the flight took off
}

// NewCached wraps inner. Closing the Cached closes inner.
func NewCached(inner Store, opts CachedOptions) (*Cached, error) {
	if opts.MaxBytes <= 0 {
		return nil, fmt.Errorf("store: cache needs a positive byte bound")
	}
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	for n&(n-1) != 0 {
		n++
	}
	c := &Cached{
		inner:  inner,
		max:    opts.MaxBytes,
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1), //nolint:gosec // n >= 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		budget := opts.MaxBytes / int64(n)
		if budget < 1 {
			budget = 1
		}
		if opts.DisableAdmission {
			// Pure LRU: loads insert directly into the protected list.
			s.probMax, s.protMax = 0, budget
		} else {
			s.probMax = budget / 5
			s.protMax = budget - s.probMax
		}
		// Size admission: bounded by 1/8 of the whole budget, and by half
		// the shard budget so one entry can never own a shard outright.
		s.sizeCap = opts.MaxBytes / 8
		if half := budget / 2; s.sizeCap > half {
			s.sizeCap = half
		}
		s.prob = list.New()
		s.prot = list.New()
		s.entries = make(map[uint64]*list.Element)
		s.flights = make(map[uint64]*flight)
	}
	return c, nil
}

// shardFor mixes the serial (dense serials would otherwise stride) and
// picks the owning shard.
func (c *Cached) shardFor(serial uint64) *cacheShard {
	h := serial * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return &c.shards[(h>>32)&c.mask]
}

// ballotCost estimates an entry's resident size: the line payloads plus
// fixed per-entry overhead (struct, slice headers, map and list bookkeeping).
func ballotCost(bd *BallotData) int64 {
	const lineBytes = 32 + 8 + 32 + 64 // Line field bytes
	const overhead = 160
	return overhead + int64(len(bd.Lines[0])+len(bd.Lines[1]))*lineBytes
}

// Get implements Store.
func (c *Cached) Get(serial uint64) (*BallotData, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("store: read serial %d: store closed", serial)
	}
	s := c.shardFor(serial)
	s.mu.Lock()
	if el, ok := s.entries[serial]; ok {
		e := el.Value.(*centry)
		if e.region == regionProtected {
			s.prot.MoveToFront(el)
		} else {
			// Second touch: the reuse the admission policy was waiting
			// for. Promote out of probation into the protected region.
			c.promote(s, el, e)
		}
		bd := e.bd
		s.mu.Unlock()
		c.hits.Add(1)
		return bd, nil
	}
	if f, ok := s.flights[serial]; ok {
		// Someone is already reading this serial: wait for their result
		// instead of issuing a second positional read.
		f.waiters++
		s.mu.Unlock()
		<-f.done
		c.misses.Add(1)
		c.shared.Add(1)
		return f.bd, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[serial] = f
	s.mu.Unlock()

	bd, err := c.inner.Get(serial)
	f.bd, f.err = bd, err

	s.mu.Lock()
	delete(s.flights, serial)
	if err == nil && !c.closed.Load() {
		c.admit(s, serial, bd, f.waiters > 0)
	}
	s.mu.Unlock()
	close(f.done)
	c.misses.Add(1)
	return bd, err
}

// promote moves a probationary entry to the protected region, demoting the
// protected tail back to probation when the region overflows (classic
// segmented-LRU). Called with the shard lock held.
func (c *Cached) promote(s *cacheShard, el *list.Element, e *centry) {
	s.prob.Remove(el)
	s.probBy -= e.cost
	e.region = regionProtected
	s.entries[e.serial] = s.prot.PushFront(e)
	s.protBy += e.cost
	c.promotions.Add(1)
	c.trimProtected(s, e)
	c.evictProbation(s, e)
}

// trimProtected shrinks the protected list to its budget, demoting tails
// back to probation (classic segmented-LRU) — or evicting them outright
// when admission control is off and there is no probation region. Never
// touches keep. Called with the shard lock held.
func (c *Cached) trimProtected(s *cacheShard, keep *centry) {
	for s.protBy > s.protMax {
		back := s.prot.Back()
		if back == nil || back.Value.(*centry) == keep {
			break
		}
		d := back.Value.(*centry)
		s.prot.Remove(back)
		s.protBy -= d.cost
		if s.probMax > 0 {
			d.region = regionProbation
			s.entries[d.serial] = s.prob.PushFront(d)
			s.probBy += d.cost
		} else {
			delete(s.entries, d.serial)
			c.evictions.Add(1)
		}
	}
}

// evictProbation trims the probation list to its budget, never touching
// keep. Called with the shard lock held.
func (c *Cached) evictProbation(s *cacheShard, keep *centry) {
	for s.probBy > s.probMax {
		back := s.prob.Back()
		if back == nil || back.Value.(*centry) == keep {
			break
		}
		e := back.Value.(*centry)
		s.prob.Remove(back)
		delete(s.entries, e.serial)
		s.probBy -= e.cost
		c.evictions.Add(1)
	}
}

// admit places a freshly loaded ballot. Called with the shard lock held.
func (c *Cached) admit(s *cacheShard, serial uint64, bd *BallotData, sharedFlight bool) {
	cost := ballotCost(bd)
	if cost > s.sizeCap {
		// Size admission: a record bigger than 1/8 of the whole budget
		// would evict most of a working set for one entry's benefit.
		c.rejected.Add(1)
		return
	}
	e := &centry{serial: serial, bd: bd, cost: cost}
	if sharedFlight || s.probMax == 0 {
		// Concurrent Gets already proved reuse (or admission control is
		// off): straight into the protected region.
		e.region = regionProtected
		s.entries[serial] = s.prot.PushFront(e)
		s.protBy += cost
		c.trimProtected(s, e)
		c.evictProbation(s, e)
		return
	}
	e.region = regionProbation
	s.entries[serial] = s.prob.PushFront(e)
	s.probBy += cost
	c.evictProbation(s, e)
}

// Count implements Store.
func (c *Cached) Count() int { return c.inner.Count() }

// Close implements Store: drops the cache and closes the inner store. An
// in-flight inner read may complete concurrently; its waiters get its
// result, nothing is admitted afterwards (racing Gets on the inner store
// resolve to the inner store's own clean closed error).
func (c *Cached) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.prob.Init()
		s.prot.Init()
		s.entries = make(map[uint64]*list.Element)
		s.probBy, s.protBy = 0, 0
		s.mu.Unlock()
	}
	return c.inner.Close()
}

// CacheStats is a point-in-time copy of the cache counters.
type CacheStats struct {
	Hits       int64 // Gets served from the cache
	Misses     int64 // Gets that needed (or waited on) an inner read
	Shared     int64 // misses that joined another Get's in-flight read
	Evictions  int64 // entries displaced by the byte bound
	Rejected   int64 // loads size-admission declined to cache
	Promotions int64 // probation entries promoted by a second touch
	Bytes      int64 // current resident ballot bytes
	Entries    int64 // current resident entries
}

// HitRate is Hits / (Hits + Misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats snapshots the cache counters.
func (c *Cached) Stats() CacheStats {
	st := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Shared:     c.shared.Load(),
		Evictions:  c.evictions.Load(),
		Rejected:   c.rejected.Load(),
		Promotions: c.promotions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.probBy + s.protBy
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}
