package store

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// countingStore wraps a Store, counting inner Gets and optionally stalling
// them on a gate so a test can pile up racing callers.
type countingStore struct {
	Store
	gets atomic.Int64
	gate chan struct{} // when non-nil, Gets block until it closes
}

func (c *countingStore) Get(serial uint64) (*BallotData, error) {
	c.gets.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.Store.Get(serial)
}

func newCacheOver(t *testing.T, inner Store, maxBytes int64, pureLRU bool) *Cached {
	t.Helper()
	c, err := NewCached(inner, CachedOptions{MaxBytes: maxBytes, DisableAdmission: pureLRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newSingleShardCache builds a one-shard cache, so LRU order and byte
// accounting are exact rather than spread across shard budgets.
func newSingleShardCache(t *testing.T, inner Store, maxBytes int64, pureLRU bool) *Cached {
	t.Helper()
	c, err := NewCached(inner, CachedOptions{MaxBytes: maxBytes, Shards: 1, DisableAdmission: pureLRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheSingleFlight: N racing Gets for one absent serial cost exactly
// one inner read, and every caller gets the same data.
func TestCacheSingleFlight(t *testing.T) {
	ballots := fabricateBallots(1, 10, 2)
	inner := &countingStore{Store: NewMem(ballots), gate: make(chan struct{})}
	c := newCacheOver(t, inner, 1<<20, false)

	const racers = 32
	var wg sync.WaitGroup
	results := make([]*BallotData, racers)
	errs := make([]error, racers)
	var started sync.WaitGroup
	started.Add(racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			results[i], errs[i] = c.Get(5)
		}(i)
	}
	started.Wait() // all goroutines launched; one holds the gate, rest join
	close(inner.gate)
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("racer %d got a different ballot object", i)
		}
	}
	// The gate held the first flight open until every racer was launched,
	// but a racer may still have been scheduled after the flight finished
	// and hit the already-admitted entry — either way, far fewer inner
	// reads than callers, and in the common schedule exactly one.
	if got := inner.gets.Load(); got > 2 {
		t.Fatalf("%d inner reads for %d racing Gets, want 1 (2 tolerated)", got, racers)
	}
	st := c.Stats()
	if st.Hits+st.Misses != racers {
		t.Fatalf("stats cover %d Gets, want %d", st.Hits+st.Misses, racers)
	}
	if st.Shared == 0 {
		t.Fatal("no shared flights recorded for racing Gets")
	}
}

// TestCacheEvictionByteBound: the cache never holds more than MaxBytes and
// evicts in LRU order.
func TestCacheEvictionByteBound(t *testing.T) {
	const m = 2
	ballots := fabricateBallots(1, 100, m)
	cost := ballotCost(ballots[0])
	maxBytes := cost * 10 // room for exactly 10 entries
	inner := &countingStore{Store: NewMem(ballots)}
	c := newSingleShardCache(t, inner, maxBytes, true) // pure LRU: admission off

	for s := uint64(1); s <= 30; s++ {
		if _, err := c.Get(s); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > maxBytes {
		t.Fatalf("resident %d bytes exceeds bound %d", st.Bytes, maxBytes)
	}
	if st.Entries != 10 {
		t.Fatalf("resident %d entries, want 10", st.Entries)
	}
	if st.Evictions != 20 {
		t.Fatalf("%d evictions, want 20", st.Evictions)
	}
	// LRU order: the last 10 serials are resident (hits), older ones are not.
	before := c.Stats().Hits
	for s := uint64(21); s <= 30; s++ {
		if _, err := c.Get(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Hits - before; got != 10 {
		t.Fatalf("%d hits on the 10 most recent serials, want 10", got)
	}
	reads := inner.gets.Load()
	if _, err := c.Get(1); err != nil { // long evicted
		t.Fatal(err)
	}
	if inner.gets.Load() != reads+1 {
		t.Fatal("evicted serial did not trigger an inner read")
	}
}

// TestCacheAdmissionResistsScan: with the working set promoted into the
// protected region, a one-shot scan of the rest of the pool churns only
// probation and does not evict it.
func TestCacheAdmissionResistsScan(t *testing.T) {
	ballots := fabricateBallots(1, 1000, 2)
	cost := ballotCost(ballots[0])
	inner := &countingStore{Store: NewMem(ballots)}
	// Budget for 25 entries: probation holds 5, protected 20.
	c := newSingleShardCache(t, inner, cost*25, false)

	// Build a hot working set: serials 1..20, touched twice in quick
	// succession — the second touch promotes each out of probation.
	for s := uint64(1); s <= 20; s++ {
		for touch := 0; touch < 2; touch++ {
			if _, err := c.Get(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := c.Stats().Promotions; got != 20 {
		t.Fatalf("promotions = %d, want 20", got)
	}
	// One-shot scan over 500 cold serials: first touches only, confined to
	// the probationary region.
	for s := uint64(100); s < 600; s++ {
		if _, err := c.Get(s); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats().Hits
	for s := uint64(1); s <= 20; s++ {
		if _, err := c.Get(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Hits - before; got != 20 {
		t.Fatalf("working set survived with %d/20 hits after scan; admission failed", got)
	}
	if ev := c.Stats().Evictions; ev < 490 {
		t.Fatalf("scan evicted %d probation entries, want ~495 (scan must stay in probation)", ev)
	}
}

// TestCacheOversizedEntryNeverAdmitted: size admission — an entry costing
// more than MaxBytes/8 is served but not cached.
func TestCacheOversizedEntryNeverAdmitted(t *testing.T) {
	big := fabricateBallots(1, 3, 64) // 64 options: cost ~ 17KiB
	inner := &countingStore{Store: NewMem(big)}
	c := newSingleShardCache(t, inner, 32*1024, true)
	for i := 0; i < 3; i++ {
		if _, err := c.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("oversized entry cached (entries=%d hits=%d)", st.Entries, st.Hits)
	}
	if st.Rejected != 3 {
		t.Fatalf("rejected=%d, want 3", st.Rejected)
	}
}

// TestCacheGetRacingClose: Gets racing Close return either good data or a
// clean "store closed" error — never a panic or torn read. Runs over a real
// segmented store so the inner Close path (file handles) is exercised too.
func TestCacheGetRacingClose(t *testing.T) {
	ballots := fabricateBallots(1, 2000, 2)
	dir := t.TempDir()
	seg, err := CreateSegmented(dir, ballots, WriterOptions{SegmentBallots: 500})
	if err != nil {
		t.Fatal(err)
	}
	c := newCacheOver(t, seg, 1<<20, false)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for s := uint64(1); s <= 2000; s++ {
				bd, err := c.Get(s)
				if err != nil {
					if strings.Contains(err.Error(), "store closed") ||
						strings.Contains(err.Error(), "file already closed") {
						return // clean shutdown error: expected
					}
					t.Errorf("goroutine %d serial %d: %v", g, s, err)
					return
				}
				if bd.Serial != s {
					t.Errorf("goroutine %d: serial %d returned %d", g, s, bd.Serial)
					return
				}
			}
		}(g)
	}
	close(start)
	_ = c.Close() // races the readers by design
	wg.Wait()
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Get(1); err == nil {
		t.Fatal("Get after Close must fail")
	}
}

// TestCachedOverSegmentedEndToEnd: the composition the benchmark and the
// -store-cache flag run — cache over segments — returns correct data for a
// pool far larger than the cache.
func TestCachedOverSegmentedEndToEnd(t *testing.T) {
	ballots := fabricateBallots(1, 20_000, 2)
	seg, err := CreateSegmented(t.TempDir(), ballots, WriterOptions{SegmentBallots: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cost := ballotCost(ballots[0])
	c := newCacheOver(t, seg, cost*512, false) // ~2.5% of the pool
	defer func() { _ = c.Close() }()

	// Protocol-shaped access: every serial touched three times in a narrow
	// window (responder validate, ENDORSE, VOTE_P), streaming over a pool
	// 40x the cache.
	for s := uint64(1); s <= 20_000; s++ {
		for touch := 0; touch < 3; touch++ {
			checkBallot(t, c, ballots[s-1])
		}
	}
	st := c.Stats()
	if st.Bytes > cost*512 {
		t.Fatalf("resident %d bytes exceeds bound", st.Bytes)
	}
	// 3 touches per serial: the first misses into probation, the second
	// promotes (hit), the third hits protected — ~2/3 minus edge effects.
	if st.HitRate() < 0.50 {
		t.Fatalf("hit rate %.2f too low for 3-touch locality", st.HitRate())
	}
}
