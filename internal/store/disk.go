package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// Disk is a file-backed store with fixed-size records addressed directly by
// serial number (serials are dense, starting at firstSerial). It replaces
// the paper's PostgreSQL database for the large-pool experiments: lookups
// cost one positional read, and performance degrades gracefully as the pool
// outgrows the page cache (the Fig. 5a effect).
//
// File layout:
//
//	header: magic "DDVC" | version u16 | m u16 | firstSerial u64 | count u64
//	then count records of 2*m lines, each line Hash(32)|Salt(8)|Share(32)|Sig(64)
type Disk struct {
	mu          sync.RWMutex // guards f against Close racing Get
	f           *os.File
	m           int // options per part
	firstSerial uint64
	count       uint64
	bufs        sync.Pool // per-Get record buffers (*[]byte, 2*m*lineSize each)
}

var _ Store = (*Disk)(nil)

const (
	diskMagic    = "DDVC"
	diskVersion  = 1
	lineSize     = 32 + 8 + 32 + 64
	headerSize   = 4 + 2 + 2 + 8 + 8
	maxDiskLines = 1 << 16
)

// encodeDiskHeader builds the fixed file header (shared with the segment
// Writer, whose segment files are v1 flat stores for their serial range).
func encodeDiskHeader(m int, first, count uint64) []byte {
	header := make([]byte, headerSize)
	copy(header, diskMagic)
	binary.BigEndian.PutUint16(header[4:], diskVersion)
	binary.BigEndian.PutUint16(header[6:], uint16(m)) //nolint:gosec // small
	binary.BigEndian.PutUint64(header[8:], first)
	binary.BigEndian.PutUint64(header[16:], count)
	return header
}

// encodeRecord serializes one ballot's 2*m lines into rec (len 2*m*lineSize).
func encodeRecord(rec []byte, b *BallotData, m int) {
	off := 0
	for part := 0; part < 2; part++ {
		for row := 0; row < m; row++ {
			l := &b.Lines[part][row]
			copy(rec[off:], l.Hash[:])
			copy(rec[off+32:], l.Salt[:])
			copy(rec[off+40:], l.Share[:])
			copy(rec[off+72:], l.ShareSig[:])
			off += lineSize
		}
	}
}

// CreateDisk writes all ballots to path. Ballots must have dense serials
// (first, first+1, ...) in order, all with the same number of options.
func CreateDisk(path string, ballots []*BallotData) (*Disk, error) {
	if len(ballots) == 0 {
		return nil, fmt.Errorf("store: no ballots to write")
	}
	m := len(ballots[0].Lines[0])
	if m == 0 || m > maxDiskLines {
		return nil, fmt.Errorf("store: invalid option count %d", m)
	}
	first := ballots[0].Serial
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: create %s: %w", path, err)
	}
	if _, err := f.Write(encodeDiskHeader(m, first, uint64(len(ballots)))); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: write header: %w", err)
	}
	rec := make([]byte, 2*m*lineSize)
	for i, b := range ballots {
		if b.Serial != first+uint64(i) { //nolint:gosec // dense serials
			_ = f.Close()
			return nil, fmt.Errorf("store: serial %d not dense (want %d)", b.Serial, first+uint64(i))
		}
		if len(b.Lines[0]) != m || len(b.Lines[1]) != m {
			_ = f.Close()
			return nil, fmt.Errorf("store: ballot %d has inconsistent line count", b.Serial)
		}
		encodeRecord(rec, b, m)
		if _, err := f.Write(rec); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("store: write ballot %d: %w", b.Serial, err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: sync: %w", err)
	}
	return &Disk{f: f, m: m, firstSerial: first, count: uint64(len(ballots))}, nil
}

// OpenDisk opens an existing store file.
func OpenDisk(path string) (*Disk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	header := make([]byte, headerSize)
	if _, err := f.ReadAt(header, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if string(header[:4]) != diskMagic {
		_ = f.Close()
		return nil, fmt.Errorf("store: %s is not a ballot store", path)
	}
	if v := binary.BigEndian.Uint16(header[4:]); v != diskVersion {
		_ = f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	m := int(binary.BigEndian.Uint16(header[6:]))
	if m == 0 || m > maxDiskLines {
		_ = f.Close()
		return nil, fmt.Errorf("store: invalid option count %d", m)
	}
	count := binary.BigEndian.Uint64(header[16:])
	// Validate the size now, so a truncated or padded store surfaces here
	// as a clear error instead of as a confusing ReadAt failure at vote
	// time (or as silently unreadable trailing ballots).
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if count > uint64(1)<<40/uint64(2*m*lineSize) {
		_ = f.Close()
		return nil, fmt.Errorf("store: implausible ballot count %d", count)
	}
	want := int64(headerSize) + int64(count)*int64(2*m*lineSize) //nolint:gosec // bounded above
	if st.Size() != want {
		_ = f.Close()
		return nil, fmt.Errorf("store: %s holds %d bytes, want %d for %d ballots of %d options",
			path, st.Size(), want, count, m)
	}
	return &Disk{
		f:           f,
		m:           m,
		firstSerial: binary.BigEndian.Uint64(header[8:]),
		count:       count,
	}, nil
}

// Get implements Store via one positional read. Concurrent Gets share the
// read lock; only Close takes it exclusively, so a Get racing Close returns
// a clean error instead of dereferencing a nil file.
func (d *Disk) Get(serial uint64) (*BallotData, error) {
	if serial < d.firstSerial || serial >= d.firstSerial+d.count {
		return nil, fmt.Errorf("%w: serial %d", ErrNotFound, serial)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.f == nil {
		return nil, fmt.Errorf("store: read serial %d: store closed", serial)
	}
	recSize := int64(2 * d.m * lineSize)
	off := int64(headerSize) + int64(serial-d.firstSerial)*recSize
	// The read buffer is pooled: every Get used to allocate it fresh, which
	// at millions of ballots made the read path GC-bound before it was
	// IO-bound. The decoded BallotData still escapes to the caller.
	var rec []byte
	if p, ok := d.bufs.Get().(*[]byte); ok {
		rec = *p
	} else {
		rec = make([]byte, recSize)
	}
	defer d.bufs.Put(&rec)
	if _, err := d.f.ReadAt(rec, off); err != nil {
		return nil, fmt.Errorf("store: read serial %d: %w", serial, err)
	}
	b := &BallotData{Serial: serial}
	pos := 0
	for part := 0; part < 2; part++ {
		b.Lines[part] = make([]Line, d.m)
		for row := 0; row < d.m; row++ {
			l := &b.Lines[part][row]
			copy(l.Hash[:], rec[pos:])
			copy(l.Salt[:], rec[pos+32:])
			copy(l.Share[:], rec[pos+40:])
			copy(l.ShareSig[:], rec[pos+72:])
			pos += lineSize
		}
	}
	return b, nil
}

// Count implements Store.
func (d *Disk) Count() int { return int(d.count) } //nolint:gosec // test scale

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}
