package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Segmented is the millions-of-ballots ballot store: the pool is sharded by
// serial range across fixed-record segment files (ballots-<k>.seg, each a
// valid v1 flat store for its range) described by a MANIFEST.json. Lookups
// stay one positional read — segment index is computed, not searched — and
// EA setup can stream-write segments through a Writer without ever holding
// the whole pool in memory, which the single flat file's CreateDisk
// requires.
//
// Directory layout:
//
//	MANIFEST.json    segment directory (written last, atomically)
//	ballots-0.seg    serials [FirstSerial, FirstSerial+SegmentBallots)
//	ballots-1.seg    the next SegmentBallots serials
//	...              (only the final segment may be short)
//
// A crash while building leaves no manifest, so a partial directory fails
// to open instead of serving a truncated pool.
type Segmented struct {
	segs        []*Disk // index k serves serials [first+k*segBallots, ...)
	m           int
	firstSerial uint64
	count       uint64
	segBallots  uint64
}

var _ Store = (*Segmented)(nil)

// ManifestName is the segment-directory manifest file.
const ManifestName = "MANIFEST.json"

// DefaultSegmentBallots is the Writer's default ballots-per-segment.
const DefaultSegmentBallots = 100_000

// manifest is the serialized form of MANIFEST.json.
type manifest struct {
	Version        int               `json:"version"`
	Options        int               `json:"m"`
	FirstSerial    uint64            `json:"first_serial"`
	Count          uint64            `json:"count"`
	SegmentBallots uint64            `json:"segment_ballots"`
	Segments       []manifestSegment `json:"segments"`
}

type manifestSegment struct {
	File        string `json:"file"`
	FirstSerial uint64 `json:"first_serial"`
	Count       uint64 `json:"count"`
}

// OpenSegmented opens a segment directory written by a Writer.
func OpenSegmented(dir string) (*Segmented, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("store: segment manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("store: segment manifest %s: %w", dir, err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("store: unsupported segment manifest version %d", man.Version)
	}
	if man.SegmentBallots == 0 || len(man.Segments) == 0 {
		return nil, fmt.Errorf("store: segment manifest %s: empty", dir)
	}
	sort.Slice(man.Segments, func(i, j int) bool {
		return man.Segments[i].FirstSerial < man.Segments[j].FirstSerial
	})
	s := &Segmented{
		m:           man.Options,
		firstSerial: man.FirstSerial,
		count:       man.Count,
		segBallots:  man.SegmentBallots,
	}
	var total uint64
	next := man.FirstSerial
	for i, ms := range man.Segments {
		// Every segment but the last must hold exactly SegmentBallots, so
		// Get can compute the segment index instead of searching.
		if ms.FirstSerial != next {
			s.closeAll()
			return nil, fmt.Errorf("store: segment %s starts at serial %d, want %d (ranges must be dense)",
				ms.File, ms.FirstSerial, next)
		}
		// Get computes the owning segment as (serial-first)/SegmentBallots,
		// so every segment must hold exactly SegmentBallots records except
		// the last, which must hold between 1 and SegmentBallots — a longer
		// (or empty) tail would index past the segment slice at read time.
		if ms.Count != man.SegmentBallots && i != len(man.Segments)-1 {
			s.closeAll()
			return nil, fmt.Errorf("store: segment %s holds %d ballots, want %d (only the last segment may be short)",
				ms.File, ms.Count, man.SegmentBallots)
		}
		if ms.Count == 0 || ms.Count > man.SegmentBallots {
			s.closeAll()
			return nil, fmt.Errorf("store: segment %s holds %d ballots, want 1..%d",
				ms.File, ms.Count, man.SegmentBallots)
		}
		d, err := OpenDisk(filepath.Join(dir, ms.File))
		if err != nil {
			s.closeAll()
			return nil, err
		}
		if d.m != man.Options || d.firstSerial != ms.FirstSerial || d.count != ms.Count {
			_ = d.Close()
			s.closeAll()
			return nil, fmt.Errorf("store: segment %s header (m=%d first=%d count=%d) disagrees with manifest (m=%d first=%d count=%d)",
				ms.File, d.m, d.firstSerial, d.count, man.Options, ms.FirstSerial, ms.Count)
		}
		s.segs = append(s.segs, d)
		next += ms.Count
		total += ms.Count
	}
	if total != man.Count {
		s.closeAll()
		return nil, fmt.Errorf("store: segments hold %d ballots, manifest promises %d", total, man.Count)
	}
	return s, nil
}

func (s *Segmented) closeAll() {
	for _, d := range s.segs {
		_ = d.Close()
	}
}

// Get implements Store: the owning segment is computed from the serial (all
// segments but the last are full), then the segment performs one positional
// read. Concurrency and Close-racing safety are the per-segment Disk's.
func (s *Segmented) Get(serial uint64) (*BallotData, error) {
	if serial < s.firstSerial || serial >= s.firstSerial+s.count {
		return nil, fmt.Errorf("%w: serial %d", ErrNotFound, serial)
	}
	return s.segs[(serial-s.firstSerial)/s.segBallots].Get(serial)
}

// Count implements Store.
func (s *Segmented) Count() int { return int(s.count) } //nolint:gosec // bounded by open validation

// Segments returns the number of segment files.
func (s *Segmented) Segments() int { return len(s.segs) }

// Close implements Store, closing every segment.
func (s *Segmented) Close() error {
	var first error
	for _, d := range s.segs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriterOptions configures a streaming segment-store builder.
type WriterOptions struct {
	// SegmentBallots is the capacity of every segment but the last
	// (default DefaultSegmentBallots).
	SegmentBallots int
	// ClearStale removes leftover build debris (ballots-*.seg files and a
	// manifest temp file, as left by a crash mid-build) from the directory
	// instead of refusing it. A directory with a complete manifest is
	// refused either way — it is a live store, not debris.
	ClearStale bool
}

// Writer streams a ballot pool into a segment directory: Append writes each
// ballot straight through a buffered segment file and rotates at
// SegmentBallots, so building an N-ballot store needs O(segment) memory,
// not O(N) — EA setup can emit ballots as it generates them. Finish syncs
// the last segment and atomically writes the manifest; a crash before
// Finish leaves an unopenable (clearly partial) directory.
//
// Ballots must arrive with dense ascending serials and a consistent option
// count, exactly as CreateDisk requires. Writer is not safe for concurrent
// use.
type Writer struct {
	dir        string
	segBallots int

	m     int    // options per part, fixed by the first ballot
	first uint64 // first serial of the pool
	next  uint64 // next expected serial
	rec   []byte // reusable record buffer

	cur      *os.File // current segment (nil before first Append / after Finish)
	curFirst uint64
	curCount uint64
	segments []manifestSegment
	done     bool
}

// NewWriter starts a streaming build into dir (created if missing). The
// directory must not already contain a manifest, and — unless
// WriterOptions.ClearStale is set — must not contain leftover segment files
// from a crashed build either: rebuilding into a dirty directory would mix
// stale and fresh ballots-<k>.seg files, and a manifest written over them
// could then describe segments it never produced.
func NewWriter(dir string, opts WriterOptions) (*Writer, error) {
	if opts.SegmentBallots <= 0 {
		opts.SegmentBallots = DefaultSegmentBallots
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: segment dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a segment store", dir)
	}
	stale, err := staleBuildFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(stale) > 0 {
		if !opts.ClearStale {
			return nil, fmt.Errorf("store: %s holds %d leftover segment file(s) from an interrupted build (e.g. %s); remove them or set WriterOptions.ClearStale",
				dir, len(stale), filepath.Base(stale[0]))
		}
		for _, path := range stale {
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("store: clearing stale build file: %w", err)
			}
		}
	}
	return &Writer{dir: dir, segBallots: opts.SegmentBallots}, nil
}

// staleBuildFiles lists debris a crashed Writer can leave in dir: segment
// files without a manifest, and an orphaned manifest temp file.
func staleBuildFiles(dir string) ([]string, error) {
	segs, err := filepath.Glob(filepath.Join(dir, "ballots-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning segment dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); err == nil {
		segs = append(segs, filepath.Join(dir, ManifestName+".tmp"))
	}
	return segs, nil
}

// Append adds the next ballot to the store.
func (w *Writer) Append(b *BallotData) error {
	if w.done {
		return fmt.Errorf("store: writer already finished")
	}
	if w.cur == nil && w.next == 0 {
		// First ballot fixes the geometry.
		w.m = len(b.Lines[0])
		if w.m == 0 || w.m > maxDiskLines {
			return fmt.Errorf("store: invalid option count %d", w.m)
		}
		w.first = b.Serial
		w.next = b.Serial
		w.rec = make([]byte, 2*w.m*lineSize)
	}
	if b.Serial != w.next {
		return fmt.Errorf("store: serial %d not dense (want %d)", b.Serial, w.next)
	}
	if len(b.Lines[0]) != w.m || len(b.Lines[1]) != w.m {
		return fmt.Errorf("store: ballot %d has inconsistent line count", b.Serial)
	}
	if w.cur == nil {
		if err := w.openSegment(b.Serial); err != nil {
			return err
		}
	}
	encodeRecord(w.rec, b, w.m)
	if _, err := w.cur.Write(w.rec); err != nil {
		return fmt.Errorf("store: write ballot %d: %w", b.Serial, err)
	}
	w.next++
	w.curCount++
	if w.curCount == uint64(w.segBallots) { //nolint:gosec // positive
		return w.closeSegment()
	}
	return nil
}

// openSegment starts segment file len(w.segments), headered for first.
func (w *Writer) openSegment(first uint64) error {
	name := fmt.Sprintf("ballots-%d.seg", len(w.segments))
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	// The count field is patched in closeSegment once known; until the
	// manifest lands the directory is unopenable either way.
	if _, err := f.Write(encodeDiskHeader(w.m, first, 0)); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: segment header: %w", err)
	}
	w.cur, w.curFirst, w.curCount = f, first, 0
	return nil
}

// closeSegment patches the header count, syncs and records the segment.
func (w *Writer) closeSegment() error {
	hdr := encodeDiskHeader(w.m, w.curFirst, w.curCount)
	if _, err := w.cur.WriteAt(hdr, 0); err != nil {
		_ = w.cur.Close()
		return fmt.Errorf("store: patch segment header: %w", err)
	}
	if err := w.cur.Sync(); err != nil {
		_ = w.cur.Close()
		return fmt.Errorf("store: sync segment: %w", err)
	}
	if err := w.cur.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	w.segments = append(w.segments, manifestSegment{
		File:        fmt.Sprintf("ballots-%d.seg", len(w.segments)),
		FirstSerial: w.curFirst,
		Count:       w.curCount,
	})
	w.cur = nil
	return nil
}

// Finish seals the last segment, writes the manifest atomically and opens
// the finished store.
func (w *Writer) Finish() (*Segmented, error) {
	if w.done {
		return nil, fmt.Errorf("store: writer already finished")
	}
	w.done = true
	if w.cur != nil {
		if err := w.closeSegment(); err != nil {
			return nil, err
		}
	}
	if len(w.segments) == 0 {
		return nil, fmt.Errorf("store: no ballots written")
	}
	man := manifest{
		Version:        1,
		Options:        w.m,
		FirstSerial:    w.first,
		Count:          w.next - w.first,
		SegmentBallots: uint64(w.segBallots), //nolint:gosec // positive
		Segments:       w.segments,
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: segment manifest: %w", err)
	}
	// Temp + fsync + rename: the manifest appears complete or not at all.
	tmp := filepath.Join(w.dir, ManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("store: segment manifest: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: segment manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: segment manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, ManifestName)); err != nil {
		return nil, fmt.Errorf("store: segment manifest: %w", err)
	}
	if dir, err := os.Open(w.dir); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return OpenSegmented(w.dir)
}

// Abort discards an unfinished build's open segment file handle. Partial
// segment files are left behind (the missing manifest keeps the directory
// unopenable); callers remove the directory to reclaim space.
func (w *Writer) Abort() {
	w.done = true
	if w.cur != nil {
		_ = w.cur.Close()
		w.cur = nil
	}
}

// CreateSegmented stream-writes ballots (dense ascending serials) into a
// segment directory — the convenience form of Writer for pools already in
// memory.
func CreateSegmented(dir string, ballots []*BallotData, opts WriterOptions) (*Segmented, error) {
	w, err := NewWriter(dir, opts)
	if err != nil {
		return nil, err
	}
	for _, b := range ballots {
		if err := w.Append(b); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}
