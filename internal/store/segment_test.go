package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// fabricateBallots synthesizes a pool of n dense-serial ballots (m options
// per part) with deterministic distinguishable contents — the store layer
// never interprets the line payloads, so tests need no real crypto.
func fabricateBallots(first uint64, n, m int) []*BallotData {
	out := make([]*BallotData, n)
	for i := range out {
		b := &BallotData{Serial: first + uint64(i)}
		for part := 0; part < 2; part++ {
			b.Lines[part] = make([]Line, m)
			for row := 0; row < m; row++ {
				l := &b.Lines[part][row]
				binary.BigEndian.PutUint64(l.Hash[:], b.Serial)
				l.Hash[8] = byte(part)
				l.Hash[9] = byte(row)
				binary.BigEndian.PutUint64(l.Salt[:], b.Serial^0xDEAD)
				binary.BigEndian.PutUint64(l.Share[:], b.Serial*31+uint64(row))
				binary.BigEndian.PutUint64(l.ShareSig[:], b.Serial*37+uint64(part))
			}
		}
		out[i] = b
	}
	return out
}

func checkBallot(t *testing.T, st Store, want *BallotData) {
	t.Helper()
	got, err := st.Get(want.Serial)
	if err != nil {
		t.Fatalf("Get(%d): %v", want.Serial, err)
	}
	if got.Serial != want.Serial {
		t.Fatalf("Get(%d) returned serial %d", want.Serial, got.Serial)
	}
	for part := 0; part < 2; part++ {
		if len(got.Lines[part]) != len(want.Lines[part]) {
			t.Fatalf("serial %d part %d: %d lines, want %d",
				want.Serial, part, len(got.Lines[part]), len(want.Lines[part]))
		}
		for row := range want.Lines[part] {
			if got.Lines[part][row] != want.Lines[part][row] {
				t.Fatalf("serial %d part %d row %d differs", want.Serial, part, row)
			}
		}
	}
}

// TestSegmentedRoundTrip100k streams a >=100k-ballot pool through the
// Writer (small segments force many rotations), reopens the directory and
// spot-checks every region including both segment boundaries.
func TestSegmentedRoundTrip100k(t *testing.T) {
	const n, m, segBallots = 100_000, 2, 8192
	ballots := fabricateBallots(1, n, m)
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{SegmentBallots: segBallots})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range ballots {
		if err := w.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Serial, err)
		}
	}
	s, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = OpenSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if s.Count() != n {
		t.Fatalf("Count = %d, want %d", s.Count(), n)
	}
	wantSegs := (n + segBallots - 1) / segBallots
	if s.Segments() != wantSegs {
		t.Fatalf("Segments = %d, want %d", s.Segments(), wantSegs)
	}
	// Every ballot, full sweep — the round trip is the point of the test.
	for _, b := range ballots {
		checkBallot(t, s, b)
	}
	if _, err := s.Get(0); err == nil {
		t.Fatal("Get(0) should fail below the first serial")
	}
	if _, err := s.Get(n + 1); err == nil {
		t.Fatal("Get past the pool should fail")
	}
}

// TestSegmentFilesAreV1Stores opens an individual segment file with
// OpenDisk: the segment format is the v1 flat format for its range, so the
// old tooling keeps working on shards.
func TestSegmentFilesAreV1Stores(t *testing.T) {
	ballots := fabricateBallots(1, 100, 3)
	dir := t.TempDir()
	if s, err := CreateSegmented(dir, ballots, WriterOptions{SegmentBallots: 40}); err != nil {
		t.Fatal(err)
	} else {
		_ = s.Close()
	}
	// Middle segment holds serials 41..80.
	d, err := OpenDisk(filepath.Join(dir, "ballots-1.seg"))
	if err != nil {
		t.Fatalf("segment not a v1 store: %v", err)
	}
	defer func() { _ = d.Close() }()
	if d.Count() != 40 {
		t.Fatalf("segment count = %d, want 40", d.Count())
	}
	checkBallot(t, d, ballots[40])
	checkBallot(t, d, ballots[79])
	if _, err := d.Get(81); err == nil {
		t.Fatal("segment served a serial outside its range")
	}
}

// TestOpenDiskV1Compat round-trips the original single flat file — the v1
// path must keep working alongside the segmented store.
func TestOpenDiskV1Compat(t *testing.T) {
	ballots := fabricateBallots(7, 500, 4)
	path := filepath.Join(t.TempDir(), "flat.store")
	d, err := CreateDisk(path, ballots)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Close()
	d, err = OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	checkBallot(t, d, ballots[0])
	checkBallot(t, d, ballots[499])
}

// TestSegmentedCrashBeforeManifest: a build that dies before Finish leaves
// an unopenable directory, not a silently truncated pool.
func TestSegmentedCrashBeforeManifest(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, WriterOptions{SegmentBallots: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fabricateBallots(1, 25, 2) {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Abort() // no Finish: simulated crash
	if _, err := OpenSegmented(dir); err == nil {
		t.Fatal("partial build without manifest must not open")
	}
}

// TestSegmentedManifestMismatch: a manifest disagreeing with a segment
// header is rejected at open.
func TestSegmentedManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	if s, err := CreateSegmented(dir, fabricateBallots(1, 30, 2), WriterOptions{SegmentBallots: 10}); err != nil {
		t.Fatal(err)
	} else {
		_ = s.Close()
	}
	// Swap two segment files: headers no longer match the manifest ranges.
	a := filepath.Join(dir, "ballots-0.seg")
	b := filepath.Join(dir, "ballots-1.seg")
	tmp := filepath.Join(dir, "swap")
	for _, mv := range [][2]string{{a, tmp}, {b, a}, {tmp, b}} {
		if err := os.Rename(mv[0], mv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenSegmented(dir); err == nil {
		t.Fatal("swapped segments must not open")
	}
}

// TestSegmentedManifestOverhangRejected: a manifest whose last segment
// claims more ballots than SegmentBallots must fail at open — Get's
// computed segment index would otherwise run past the segment slice.
func TestSegmentedManifestOverhangRejected(t *testing.T) {
	dir := t.TempDir()
	// One 15-ballot segment (capacity 20): the only segment is the last.
	if s, err := CreateSegmented(dir, fabricateBallots(1, 15, 2), WriterOptions{SegmentBallots: 20}); err != nil {
		t.Fatal(err)
	} else {
		_ = s.Close()
	}
	manPath := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	// Claim a smaller segment size than the file holds: serials past the
	// claimed capacity would compute a segment index past the slice.
	raw = []byte(strings.Replace(string(raw), `"segment_ballots": 20`, `"segment_ballots": 8`, 1))
	if err := os.WriteFile(manPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSegmented(dir)
	if err == nil {
		// Without the open-time guard this is the crash: Get(14) indexes
		// segment (14-1)/8 = 1 of a 1-segment slice.
		_, _ = s.Get(14)
		_ = s.Close()
		t.Fatal("overhanging manifest must not open")
	}
}

// TestWriterRejectsSparseSerials: the dense-serial contract of CreateDisk
// holds for the streaming path too.
func TestWriterRejectsSparseSerials(t *testing.T) {
	w, err := NewWriter(t.TempDir(), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	ballots := fabricateBallots(1, 3, 2)
	if err := w.Append(ballots[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ballots[2]); err == nil {
		t.Fatal("sparse serial accepted")
	}
}

// TestWriterRefusesStaleBuild pins the crash-mid-build reboot cycle: a
// builder that dies before Finish leaves ballots-*.seg files and no
// manifest. A rebooted builder must not silently mix those stale segments
// with fresh ones — NewWriter refuses the directory until the caller opts
// into WriterOptions.ClearStale, and the cleared rebuild converges on a
// store holding exactly the fresh pool.
func TestWriterRefusesStaleBuild(t *testing.T) {
	dir := t.TempDir()

	// Crash a build mid-flight: three segments written, no manifest.
	w, err := NewWriter(dir, WriterOptions{SegmentBallots: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fabricateBallots(1, 25, 2) {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Abort() // simulated crash: debris stays on disk
	if segs, _ := filepath.Glob(filepath.Join(dir, "ballots-*.seg")); len(segs) == 0 {
		t.Fatal("crash simulation left no segment files; test premise broken")
	}

	// Reboot: a fresh builder must refuse the debris...
	if _, err := NewWriter(dir, WriterOptions{SegmentBallots: 10}); err == nil {
		t.Fatal("NewWriter accepted a directory with leftover segment files and no manifest")
	} else if !strings.Contains(err.Error(), "ClearStale") {
		t.Fatalf("refusal should name the ClearStale escape hatch, got: %v", err)
	}

	// ...and the explicit ClearStale rebuild must produce a clean store:
	// a *different* pool than the crashed build, so any surviving stale
	// segment would corrupt the count or the contents.
	w, err = NewWriter(dir, WriterOptions{SegmentBallots: 10, ClearStale: true})
	if err != nil {
		t.Fatalf("ClearStale rebuild: %v", err)
	}
	fresh := fabricateBallots(1, 42, 3)
	for _, b := range fresh {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = seg.Close() }()
	if seg.Count() != 42 {
		t.Fatalf("rebuilt store holds %d ballots, want 42", seg.Count())
	}
	for _, b := range fresh {
		checkBallot(t, seg, b)
	}
}

// TestWriterRefusesOrphanManifestTmp: a crash between manifest write and
// rename leaves MANIFEST.json.tmp — also build debris, also refused.
func TestWriterRefusesOrphanManifestTmp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName+".tmp"), []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(dir, WriterOptions{}); err == nil {
		t.Fatal("NewWriter accepted a directory with an orphaned manifest temp file")
	}
	w, err := NewWriter(dir, WriterOptions{ClearStale: true})
	if err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("ClearStale did not remove the orphaned manifest temp file")
	}
}

// TestStreamingBuildMemoryCeiling1M is the O(segment) claim at the
// millions-of-ballots scale: stream one million fabricated ballots through
// the Writer and bound the peak heap growth. The whole pool is ~400MB of
// records; the writer must hold only the current record buffer, so heap
// growth two orders of magnitude below the pool proves nothing accumulates.
func TestStreamingBuildMemoryCeiling1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-ballot streaming build: skipped in -short")
	}
	const (
		n       = 1_000_000
		ceiling = 64 << 20 // 64MiB, vs ~400MB of pool records
	)
	dir := t.TempDir()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	peak := base

	w, err := NewWriter(dir, WriterOptions{SegmentBallots: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := fabricateBallots(uint64(i)+1, 1, 2)[0] //nolint:gosec // positive
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		if i%25_000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	seg, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = seg.Close() }()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}

	if seg.Count() != n {
		t.Fatalf("store holds %d ballots, want %d", seg.Count(), n)
	}
	for _, serial := range []uint64{1, n / 2, n} {
		got, err := seg.Get(serial)
		if err != nil {
			t.Fatalf("Get(%d): %v", serial, err)
		}
		if got.Serial != serial {
			t.Fatalf("Get(%d) returned serial %d", serial, got.Serial)
		}
	}
	if grew := peak - base; grew > ceiling {
		t.Fatalf("streaming build peak heap grew %dMiB, ceiling %dMiB — the build is not O(segment)",
			grew>>20, ceiling>>20)
	}
}
