// Package store holds a Vote Collector node's initialization data: per
// ballot, per part, the shuffled ⟨hash-commitment, salt, receipt-share⟩
// lines of §III-D. Two implementations are provided: an in-memory map (the
// paper's "database eliminated" cache configuration used for the Fig. 4
// scalability runs) and a disk-backed fixed-record file (standing in for
// the paper's PostgreSQL store, exercised by the Fig. 5a pool-size sweep).
package store

import (
	"errors"
	"fmt"
)

// Line is one stored ballot line (one vote-code row on one part, in
// shuffled order).
type Line struct {
	Hash     [32]byte // SHA256(vote-code || salt)
	Salt     [8]byte
	Share    [32]byte // this node's receipt share (scalar, 32 bytes)
	ShareSig [64]byte // EA signature over the share
}

// BallotData is everything a VC node knows about one ballot at setup.
type BallotData struct {
	Serial uint64
	// Lines[part][row], rows in the same shuffled order as the BB payload.
	Lines [2][]Line
}

// Store is the ballot-data access interface used by the VC node. Get must
// be safe for concurrent use.
type Store interface {
	// Get returns the ballot data for serial, or ErrNotFound.
	Get(serial uint64) (*BallotData, error)
	// Count returns the number of ballots.
	Count() int
	// Close releases resources.
	Close() error
}

// ErrNotFound is returned for unknown serial numbers.
var ErrNotFound = errors.New("store: ballot not found")

// Mem is the in-memory store.
type Mem struct {
	ballots map[uint64]*BallotData
}

var _ Store = (*Mem)(nil)

// NewMem builds an in-memory store from setup data.
func NewMem(ballots []*BallotData) *Mem {
	m := &Mem{ballots: make(map[uint64]*BallotData, len(ballots))}
	for _, b := range ballots {
		m.ballots[b.Serial] = b
	}
	return m
}

// Get implements Store.
func (m *Mem) Get(serial uint64) (*BallotData, error) {
	b, ok := m.ballots[serial]
	if !ok {
		return nil, fmt.Errorf("%w: serial %d", ErrNotFound, serial)
	}
	return b, nil
}

// Count implements Store.
func (m *Mem) Count() int { return len(m.ballots) }

// Close implements Store.
func (m *Mem) Close() error { return nil }
