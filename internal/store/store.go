// Package store holds a Vote Collector node's initialization data: per
// ballot, per part, the shuffled ⟨hash-commitment, salt, receipt-share⟩
// lines of §III-D, plus the write-ahead log (wal.go) the VC journal builds
// on. Four Store implementations cover the paper's storage ablation and the
// millions-of-ballots target:
//
//   - Mem: an in-memory map — the paper's "database eliminated" cache
//     configuration used for the Fig. 4 scalability runs.
//   - Disk: one flat fixed-record file (v1), standing in for the paper's
//     PostgreSQL store; lookups cost one positional read.
//   - Segmented: the pool sharded by serial range across fixed-record
//     segment files plus a manifest. A streaming Writer lets EA setup emit
//     segments without holding the whole pool in memory; each segment file
//     is itself a valid v1 flat store, so OpenDisk keeps working.
//   - Cached: a byte-bounded, admission-controlled LRU over any Store with
//     single-flight loading, recovering most of Mem's speed on pools that
//     outgrow the budget (the cache-vs-database effect of Fig. 5a).
//
// See DESIGN.md "Ballot store read path" for the layout and the eviction /
// admission rationale, and benchmark.RunStoreAblation (ddemos-bench -fig
// store) for the measured mem / flat / segmented / segmented+cache columns.
package store

import (
	"errors"
	"fmt"
)

// Line is one stored ballot line (one vote-code row on one part, in
// shuffled order).
type Line struct {
	Hash     [32]byte // SHA256(vote-code || salt)
	Salt     [8]byte
	Share    [32]byte // this node's receipt share (scalar, 32 bytes)
	ShareSig [64]byte // EA signature over the share
}

// BallotData is everything a VC node knows about one ballot at setup.
type BallotData struct {
	Serial uint64
	// Lines[part][row], rows in the same shuffled order as the BB payload.
	Lines [2][]Line
}

// Store is the ballot-data access interface used by the VC node. Get must
// be safe for concurrent use.
type Store interface {
	// Get returns the ballot data for serial, or ErrNotFound.
	Get(serial uint64) (*BallotData, error)
	// Count returns the number of ballots.
	Count() int
	// Close releases resources.
	Close() error
}

// ErrNotFound is returned for unknown serial numbers.
var ErrNotFound = errors.New("store: ballot not found")

// Mem is the in-memory store.
type Mem struct {
	ballots map[uint64]*BallotData
}

var _ Store = (*Mem)(nil)

// NewMem builds an in-memory store from setup data.
func NewMem(ballots []*BallotData) *Mem {
	m := &Mem{ballots: make(map[uint64]*BallotData, len(ballots))}
	for _, b := range ballots {
		m.ballots[b.Serial] = b
	}
	return m
}

// Get implements Store.
func (m *Mem) Get(serial uint64) (*BallotData, error) {
	b, ok := m.ballots[serial]
	if !ok {
		return nil, fmt.Errorf("%w: serial %d", ErrNotFound, serial)
	}
	return b, nil
}

// Count implements Store.
func (m *Mem) Count() int { return len(m.ballots) }

// Close implements Store.
func (m *Mem) Close() error { return nil }
