package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func makeBallots(t *testing.T, first uint64, n, m int) []*BallotData {
	t.Helper()
	out := make([]*BallotData, n)
	for i := 0; i < n; i++ {
		b := &BallotData{Serial: first + uint64(i)}
		for part := 0; part < 2; part++ {
			b.Lines[part] = make([]Line, m)
			for row := 0; row < m; row++ {
				l := &b.Lines[part][row]
				l.Hash[0] = byte(i)
				l.Hash[1] = byte(part)
				l.Hash[2] = byte(row)
				l.Salt[0] = byte(i + 1)
				l.Share[0] = byte(row + 7)
				l.ShareSig[0] = byte(part + 9)
			}
		}
		out[i] = b
	}
	return out
}

func TestMemStore(t *testing.T) {
	ballots := makeBallots(t, 1, 10, 3)
	s := NewMem(ballots)
	defer func() { _ = s.Close() }()
	if s.Count() != 10 {
		t.Fatalf("count = %d", s.Count())
	}
	b, err := s.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Serial != 5 || len(b.Lines[0]) != 3 || len(b.Lines[1]) != 3 {
		t.Fatalf("got %+v", b)
	}
	if _, err := s.Get(99); err == nil {
		t.Fatal("unknown serial must fail")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vc.store")
	ballots := makeBallots(t, 1, 25, 4)
	d, err := CreateDisk(path, ballots)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 25 {
		t.Fatalf("count = %d", d.Count())
	}
	for _, serial := range []uint64{1, 13, 25} {
		got, err := d.Get(serial)
		if err != nil {
			t.Fatal(err)
		}
		want := ballots[serial-1]
		if got.Serial != want.Serial {
			t.Fatalf("serial %d != %d", got.Serial, want.Serial)
		}
		for part := 0; part < 2; part++ {
			for row := 0; row < 4; row++ {
				if got.Lines[part][row] != want.Lines[part][row] {
					t.Fatalf("serial %d part %d row %d mismatch", serial, part, row)
				}
			}
		}
	}
	if _, err := d.Get(0); err == nil {
		t.Fatal("serial 0 must fail")
	}
	if _, err := d.Get(26); err == nil {
		t.Fatal("serial 26 must fail")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close must be fine")
	}

	// Reopen and read again.
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	got, err := d2.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lines[1][2].Hash[0] != 6 || got.Lines[1][2].Hash[1] != 1 || got.Lines[1][2].Hash[2] != 2 {
		t.Fatalf("reopened store returned wrong data: %+v", got.Lines[1][2].Hash[:3])
	}
}

func TestDiskStoreValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateDisk(filepath.Join(dir, "x"), nil); err == nil {
		t.Fatal("empty ballots must fail")
	}
	// Non-dense serials.
	bad := makeBallots(t, 1, 3, 2)
	bad[2].Serial = 9
	if _, err := CreateDisk(filepath.Join(dir, "y"), bad); err == nil {
		t.Fatal("non-dense serials must fail")
	}
	// Inconsistent line counts.
	bad2 := makeBallots(t, 1, 2, 2)
	bad2[1].Lines[0] = bad2[1].Lines[0][:1]
	if _, err := CreateDisk(filepath.Join(dir, "z"), bad2); err == nil {
		t.Fatal("inconsistent lines must fail")
	}
}

func TestOpenDiskRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDisk(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
	path := filepath.Join(dir, "garbage")
	if err := writeFile(path, []byte("this is not a store file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("garbage file must fail")
	}
}

func TestDiskStoreConcurrentReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.store")
	ballots := makeBallots(t, 1, 100, 2)
	d, err := CreateDisk(path, ballots)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				serial := (seed+i)%100 + 1
				b, err := d.Get(serial)
				if err != nil {
					errs <- err
					return
				}
				if b.Serial != serial {
					errs <- ErrNotFound
					return
				}
			}
		}(uint64(g * 13))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOpenDiskRejectsTruncatedStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.store")
	ballots := makeBallots(t, 1, 10, 3)
	d, err := CreateDisk(path, ballots)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut half a record off the tail: the header still promises 10 ballots.
	if err := os.WriteFile(path, data[:len(data)-50], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("truncated store must be rejected at open, not at read time")
	}
	// Padding is just as wrong: trailing junk means the count lies.
	if err := os.WriteFile(path, append(data, 0xFF), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("padded store must be rejected at open")
	}
}

func TestDiskGetAfterCloseFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.store")
	d, err := CreateDisk(path, makeBallots(t, 1, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(1); err == nil {
		t.Fatal("get on a closed store must error, not crash")
	}
}

// TestDiskGetCloseRace drives Get concurrently with Close: every Get must
// either succeed or return an error — never nil-deref the closed file.
func TestDiskGetCloseRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.store")
	d, err := CreateDisk(path, makeBallots(t, 1, 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				_, _ = d.Get((seed+i)%50 + 1)
			}
		}(uint64(g))
	}
	_ = d.Close()
	wg.Wait()
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

func BenchmarkMemGet(b *testing.B) {
	ballots := make([]*BallotData, 10000)
	for i := range ballots {
		ballots[i] = &BallotData{Serial: uint64(i + 1)}
		ballots[i].Lines[0] = make([]Line, 4)
		ballots[i].Lines[1] = make([]Line, 4)
	}
	s := NewMem(ballots)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i%10000) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.store")
	ballots := make([]*BallotData, 10000)
	for i := range ballots {
		ballots[i] = &BallotData{Serial: uint64(i + 1)}
		ballots[i].Lines[0] = make([]Line, 4)
		ballots[i].Lines[1] = make([]Line, 4)
	}
	d, err := CreateDisk(path, ballots)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(uint64(i%10000) + 1); err != nil {
			b.Fatal(err)
		}
	}
}
