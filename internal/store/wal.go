package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// WAL is an append-only write-ahead log of opaque records, the durability
// substrate for a Vote Collector's runtime ballot state (the paper's VC
// deployment keeps this state in PostgreSQL so a crashed node can rejoin
// within the fault bound, §V; this file-backed log plays that role here).
//
// File layout:
//
//	header: magic "DDWL" | version u16 | reserved u16
//	then records of  length u32 | crc32(payload) u32 | payload
//
// Append writes each record with a single write(2) call, so everything
// appended before an ack survives a *process* crash; fsync is batched on a
// background cadence (group commit), so only a whole-machine failure can
// lose the last SyncEvery window. SyncEachAppend trades throughput for
// per-record durability.
//
// Replay tolerates a torn tail: a crash mid-write leaves a final record
// with a short header, short payload, or mismatched CRC, and replay stops
// at the last valid prefix. OpenWAL truncates the tear away so the next
// append extends a clean log.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	opts    WALOptions
	scratch []byte
	records int64
	dirty   bool
	err     error // first sync/write error, sticky

	kick    chan struct{}
	closeCh chan struct{}
	loopWG  sync.WaitGroup
}

// WALOptions tunes durability.
type WALOptions struct {
	// SyncEvery is the group-commit cadence: appended records are fsynced
	// at most this long after Append returns (default 2ms). Ignored when
	// SyncEachAppend is set.
	SyncEvery time.Duration
	// SyncEachAppend fsyncs before every Append returns (the -fsync flag
	// of ddemos-vc): per-record durability against power loss, at the cost
	// of one fsync per transition.
	SyncEachAppend bool
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 2 * time.Millisecond
	}
	return o
}

const (
	walMagic      = "DDWL"
	walVersion    = 1
	walHeaderSize = 4 + 2 + 2
	walFrameSize  = 4 + 4 // length + crc
	// MaxWALRecord bounds one record's payload; larger length fields mean
	// corruption, not a huge record.
	MaxWALRecord = 1 << 24
)

// ErrWALClosed is returned by operations on a closed WAL.
var ErrWALClosed = errors.New("store: wal closed")

// OpenWAL opens (creating if needed) the log at path, truncating any torn
// tail left by a crash, and positions for appending.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("store: open wal %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: stat wal %s: %w", path, err)
	}
	w := &WAL{
		f:       f,
		path:    path,
		opts:    opts.withDefaults(),
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}
	if st.Size() == 0 {
		if err := writeWALHeader(f); err != nil {
			_ = f.Close()
			return nil, err
		}
	} else {
		valid, n, err := scanWAL(f, nil)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		if valid < walHeaderSize {
			// The header itself is torn (a crash while the file was being
			// created): start over with an empty log.
			if err := f.Truncate(0); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("store: truncate torn wal header: %w", err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("store: seek wal: %w", err)
			}
			if err := writeWALHeader(f); err != nil {
				_ = f.Close()
				return nil, err
			}
			valid, n = walHeaderSize, 0
		} else if valid < st.Size() {
			// Torn tail from a crash mid-append: cut it away so the next
			// record extends a clean prefix.
			if err := f.Truncate(valid); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
			}
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("store: seek wal: %w", err)
		}
		w.records = int64(n)
	}
	if !w.opts.SyncEachAppend {
		w.loopWG.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

func canonicalWALHeader() []byte {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.BigEndian.PutUint16(hdr[4:], walVersion)
	return hdr
}

func writeWALHeader(f *os.File) error {
	if _, err := f.Write(canonicalWALHeader()); err != nil {
		return fmt.Errorf("store: write wal header: %w", err)
	}
	return nil
}

// Append durably logs one record (see the type comment for what "durably"
// means under each sync policy).
func (w *WAL) Append(payload []byte) error {
	return w.AppendBatch([][]byte{payload})
}

// AppendBatch logs several records with one write call (and, under
// SyncEachAppend, one fsync) — the journal-side analogue of the transport
// batch flush: transitions produced by one message batch coalesce into one
// syscall.
func (w *WAL) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrWALClosed
	}
	if w.err != nil {
		return w.err
	}
	w.scratch = w.scratch[:0]
	for _, p := range payloads {
		if len(p) > MaxWALRecord {
			return fmt.Errorf("store: wal record %d bytes exceeds limit", len(p))
		}
		w.scratch = binary.BigEndian.AppendUint32(w.scratch, uint32(len(p))) //nolint:gosec // bounded above
		w.scratch = binary.BigEndian.AppendUint32(w.scratch, crc32.ChecksumIEEE(p))
		w.scratch = append(w.scratch, p...)
	}
	if _, err := w.f.Write(w.scratch); err != nil {
		w.err = fmt.Errorf("store: wal append: %w", err)
		return w.err
	}
	w.records += int64(len(payloads))
	if w.opts.SyncEachAppend {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("store: wal sync: %w", err)
			return w.err
		}
		return nil
	}
	if !w.dirty {
		w.dirty = true
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.f == nil {
		return ErrWALClosed
	}
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("store: wal sync: %w", err)
		return w.err
	}
	w.dirty = false
	return nil
}

// syncLoop is the group-commit loop: it wakes on the first dirty append,
// sleeps one cadence so concurrent appends pile into the same fsync, and
// syncs.
func (w *WAL) syncLoop() {
	defer w.loopWG.Done()
	for {
		select {
		case <-w.closeCh:
			return
		case <-w.kick:
		}
		t := time.NewTimer(w.opts.SyncEvery)
		select {
		case <-w.closeCh:
			t.Stop()
			return
		case <-t.C:
		}
		w.mu.Lock()
		if w.f != nil && w.dirty && w.err == nil {
			_ = w.syncLocked()
		}
		w.mu.Unlock()
	}
}

// Records reports how many records the log holds (replayed + appended).
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Reset truncates the log to empty — called after the state it covers has
// been captured in a durable snapshot.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrWALClosed
	}
	if err := w.f.Truncate(walHeaderSize); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	if _, err := w.f.Seek(walHeaderSize, io.SeekStart); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	w.records = 0
	w.dirty = false
	return nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return nil
	}
	close(w.closeCh)
	err := w.syncLocked()
	cerr := w.f.Close()
	w.f = nil
	w.mu.Unlock()
	w.loopWG.Wait()
	if err != nil && !errors.Is(err, ErrWALClosed) {
		return err
	}
	return cerr
}

// scanWAL streams records from the current file start, calling fn (when
// non-nil) for each valid payload, and returns the byte length of the valid
// prefix plus the record count. A torn tail (short header, short payload,
// bad CRC) ends the scan without error; an fn error aborts the scan.
func scanWAL(f *os.File, fn func(payload []byte) error) (int64, int, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("store: seek wal: %w", err)
	}
	hdr := make([]byte, walHeaderSize)
	if n, err := io.ReadFull(f, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Shorter than a header. A crash mid-creation tears the header
			// write, leaving a strict prefix of the canonical bytes — treat
			// that as an empty log (callers rewrite the header). Anything
			// else this small is a foreign file and must not be clobbered.
			if bytes.HasPrefix(canonicalWALHeader(), hdr[:n]) {
				return 0, 0, nil
			}
			return 0, 0, fmt.Errorf("store: %s is not a wal file", f.Name())
		}
		return 0, 0, fmt.Errorf("store: wal header: %w", err)
	}
	if string(hdr[:4]) != walMagic {
		return 0, 0, fmt.Errorf("store: %s is not a wal file", f.Name())
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != walVersion {
		return 0, 0, fmt.Errorf("store: unsupported wal version %d", v)
	}
	valid := int64(walHeaderSize)
	count := 0
	frame := make([]byte, walFrameSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			return valid, count, nil // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(frame)
		crc := binary.BigEndian.Uint32(frame[4:])
		if n > MaxWALRecord {
			return valid, count, nil // corrupt length: treat as tear
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, count, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return valid, count, nil // torn or corrupt record
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, count, err
			}
		}
		valid += walFrameSize + int64(n)
		count++
	}
}

// ReplayWAL streams every valid record of the log at path into fn, in append
// order, tolerating a torn tail. A missing file replays zero records; a file
// that exists but is not a WAL is an error. Returns the record count.
func ReplayWAL(path string, fn func(payload []byte) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: open wal %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	_, n, err := scanWAL(f, fn)
	return n, err
}

// WriteWALFile atomically writes a complete record file (the snapshot side
// of snapshot+log recovery): records are framed exactly like a WAL, written
// to a temp file, fsynced, and renamed over path, so a crash mid-snapshot
// leaves the previous snapshot intact.
func WriteWALFile(path string, payloads [][]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
	}
	if err := writeWALHeader(tmp); err != nil {
		cleanup()
		return err
	}
	var buf []byte
	for _, p := range payloads {
		if len(p) > MaxWALRecord {
			cleanup()
			return fmt.Errorf("store: wal record %d bytes exceeds limit", len(p))
		}
		buf = buf[:0]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p))) //nolint:gosec // bounded above
		buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(p))
		buf = append(buf, p...)
		if _, err := tmp.Write(buf); err != nil {
			cleanup()
			return fmt.Errorf("store: snapshot write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// Sync the directory so the rename itself survives power loss.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
