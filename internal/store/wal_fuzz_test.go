package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL replay path. Invariants:
// replay never panics; whatever valid prefix it recovers survives a
// rewrite round trip (records out == records back in); and OpenWAL on the
// same bytes truncates to a prefix that replays identically.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed log, a torn one, and junk.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed")
	w, err := OpenWAL(path, WALOptions{SyncEachAppend: true})
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-record")} {
		if err := w.Append(p); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add([]byte("DDWL\x00\x01\x00\x00"))
	f.Add([]byte("garbage that is not a wal"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		in := filepath.Join(dir, "in")
		if err := os.WriteFile(in, data, 0o600); err != nil {
			t.Fatal(err)
		}
		var recovered [][]byte
		n, err := ReplayWAL(in, func(p []byte) error {
			recovered = append(recovered, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			return // not a wal at all: fine, as long as no panic
		}
		if n != len(recovered) {
			t.Fatalf("count %d != delivered %d", n, len(recovered))
		}
		// Round trip: rewriting the recovered records must replay equal.
		out := filepath.Join(dir, "out")
		if err := WriteWALFile(out, recovered); err != nil {
			t.Fatal(err)
		}
		var again [][]byte
		if _, err := ReplayWAL(out, func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(again) != len(recovered) {
			t.Fatalf("round trip: %d != %d records", len(again), len(recovered))
		}
		for i := range again {
			if !bytes.Equal(again[i], recovered[i]) {
				t.Fatalf("round trip record %d differs", i)
			}
		}
		// OpenWAL must accept the same bytes, truncate the tear, and leave
		// a log that replays the identical prefix.
		w, err := OpenWAL(in, WALOptions{})
		if err != nil {
			t.Fatalf("ReplayWAL accepted but OpenWAL rejected: %v", err)
		}
		if w.Records() != int64(n) {
			t.Fatalf("OpenWAL records %d != replay %d", w.Records(), n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
