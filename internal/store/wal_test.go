package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func replayAll(t *testing.T, path string) [][]byte {
	t.Helper()
	var out [][]byte
	n, err := ReplayWAL(path, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out) {
		t.Fatalf("replay reported %d records, delivered %d", n, len(out))
	}
	return out
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendBatch([][]byte{{}, []byte("after-empty")}); err != nil {
		t.Fatal(err)
	}
	want = append(want, []byte{}, []byte("after-empty"))
	if w.Records() != int64(len(want)) {
		t.Fatalf("records = %d, want %d", w.Records(), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestWALReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, WALOptions{SyncEachAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Records() != 1 {
		t.Fatalf("reopened records = %d", w2.Records())
	}
	if err := w2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("replay after reopen: %q", got)
	}
}

// TestWALTornTail simulates a crash mid-append at every possible cut point
// of the final record: replay must recover the intact prefix, and reopening
// must truncate the tear so new appends extend a clean log.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full")
	w, err := OpenWAL(full, WALOptions{SyncEachAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append([]byte("the-final-record-that-tears")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := walFrameSize + len("the-final-record-that-tears")
	for cut := 1; cut <= lastLen; cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d", cut))
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o600); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, torn)
		if len(got) != 3 {
			t.Fatalf("cut %d: replayed %d records, want 3", cut, len(got))
		}
		// Reopen: the tear must be truncated and the log appendable.
		w2, err := OpenWAL(torn, WALOptions{SyncEachAppend: true})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if w2.Records() != 3 {
			t.Fatalf("cut %d: reopened records = %d", cut, w2.Records())
		}
		if err := w2.Append([]byte("post-crash")); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got = replayAll(t, torn)
		if len(got) != 4 || string(got[3]) != "post-crash" {
			t.Fatalf("cut %d: after reopen+append replayed %q", cut, got)
		}
	}
}

func TestWALTornHeader(t *testing.T) {
	// A crash while the file was being created can leave fewer bytes than
	// the header. Replay must treat it as an empty log and reopen must
	// rebuild a usable file (the pooled journal rotates segments at
	// snapshot time, so fresh-file creation is a recurring crash point).
	dir := t.TempDir()
	for cut := 0; cut < walHeaderSize; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("hdr-%d", cut))
		if err := os.WriteFile(path, []byte("DDWL\x00\x01\x00\x00")[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, path); len(got) != 0 {
			t.Fatalf("cut %d: torn header replayed %d records", cut, len(got))
		}
		w, err := OpenWAL(path, WALOptions{SyncEachAppend: true})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if err := w.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, path); len(got) != 1 || string(got[0]) != "fresh" {
			t.Fatalf("cut %d: rebuilt log replayed %q", cut, got)
		}
	}
	// A small foreign file that is NOT a header prefix must be refused, not
	// clobbered: only genuine torn headers get the rebuild treatment.
	foreign := filepath.Join(dir, "foreign")
	if err := os.WriteFile(foreign, []byte("hi!"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(foreign, WALOptions{}); err == nil {
		t.Fatal("foreign sub-header file opened (and clobbered) as a wal")
	}
	if data, err := os.ReadFile(foreign); err != nil || string(data) != "hi!" {
		t.Fatalf("foreign file content changed: %q %v", data, err)
	}
	if _, err := ReplayWAL(foreign, nil); err == nil {
		t.Fatal("foreign sub-header file replayed as a wal")
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, WALOptions{SyncEachAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the third record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recSize := walFrameSize + 4
	data[walHeaderSize+2*recSize+walFrameSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 2 {
		t.Fatalf("replay past corruption: %d records, want 2", len(got))
	}
}

func TestWALRejectsGarbageAndOversize(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("not a wal file, definitely"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(garbage, WALOptions{}); err == nil {
		t.Fatal("garbage file must not open as a wal")
	}
	if _, err := ReplayWAL(garbage, nil); err == nil {
		t.Fatal("garbage file must not replay")
	}
	// Missing file replays empty.
	if n, err := ReplayWAL(filepath.Join(dir, "missing"), nil); err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
	// Oversized length field reads as a tear, not an allocation.
	huge := filepath.Join(dir, "huge")
	buf := make([]byte, walHeaderSize)
	copy(buf, walMagic)
	binary.BigEndian.PutUint16(buf[4:], walVersion)
	buf = binary.BigEndian.AppendUint32(buf, MaxWALRecord+1)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	if err := os.WriteFile(huge, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if n, err := ReplayWAL(huge, nil); err != nil || n != 0 {
		t.Fatalf("oversized record: n=%d err=%v", n, err)
	}
	w, err := OpenWAL(filepath.Join(dir, "fresh"), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	if err := w.Append(make([]byte, MaxWALRecord+1)); err == nil {
		t.Fatal("oversized append must fail")
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("records after reset = %d", w.Records())
	}
	if err := w.Append([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 1 || string(got[0]) != "survivor" {
		t.Fatalf("after reset replayed %q", got)
	}
}

func TestWALClosedOperationsFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
	if err := w.Append([]byte("x")); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync after close must fail")
	}
}

func TestWALConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, WALOptions{SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != goroutines*per {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*per)
	}
}

func TestWriteWALFileAtomicSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot")
	if err := WriteWALFile(path, [][]byte{[]byte("a"), []byte("bb"), {}}); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 3 || string(got[0]) != "a" || string(got[1]) != "bb" || len(got[2]) != 0 {
		t.Fatalf("snapshot replayed %q", got)
	}
	// Overwrite with new content: reads must see old or new, never a mix —
	// here just verify the replace lands and leaves no temp litter.
	if err := WriteWALFile(path, [][]byte{[]byte("v2")}); err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, path)
	if len(got) != 1 || string(got[0]) != "v2" {
		t.Fatalf("replaced snapshot replayed %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts WALOptions
	}{
		{"batched", WALOptions{}},
		{"fsync-each", WALOptions{SyncEachAppend: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w, err := OpenWAL(filepath.Join(b.TempDir(), "wal"), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = w.Close() }()
			payload := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
