package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"ddemos/internal/clock"
	"ddemos/internal/wire"
)

// DefaultBatchWindow is the flush window used when BatcherOptions does not
// pick one: one LAN round-trip, so coalescing never costs more latency than
// a single extra network hop.
const DefaultBatchWindow = 200 * time.Microsecond

// BatcherOptions tunes the coalescing behaviour of a Batcher.
type BatcherOptions struct {
	// Window is how long a queued message may wait for companions before
	// the batch is flushed (default DefaultBatchWindow).
	Window time.Duration
	// MaxMessages flushes a destination's queue as soon as it holds this
	// many messages (default 128, clamped to wire.MaxBatchFrames so every
	// flushed batch stays decodable at the receiver).
	MaxMessages int
	// MaxBytes flushes a destination's queue as soon as its payload bytes
	// reach this threshold (default 512 KiB), keeping batches under frame
	// limits on every transport.
	MaxBytes int
	// OnSendError, when set, observes every deferred-flush failure (timer
	// and shutdown flushes have no caller to return an error to; without a
	// hook those drops are invisible outside the SendErrors counter).
	OnSendError func(to NodeID, err error)
	// Timers schedules the flush-window timer (default the real clock).
	// Pass a sim.Driver or clock.Fake to drive flush windows in virtual
	// time.
	Timers clock.Timers
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.Window <= 0 {
		o.Window = DefaultBatchWindow
	}
	if o.MaxMessages <= 0 {
		o.MaxMessages = 128
	}
	if o.MaxMessages > wire.MaxBatchFrames {
		o.MaxMessages = wire.MaxBatchFrames
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 512 << 10
	}
	// Keep every encoded batch (payload + one possible frame over the
	// threshold + per-frame length prefixes) well under maxTCPFrame, or a
	// flush would be rejected by the receiving TCP read loop.
	if o.MaxBytes > maxTCPFrame/2 {
		o.MaxBytes = maxTCPFrame / 2
	}
	if o.Timers == nil {
		o.Timers = clock.Real{}
	}
	return o
}

// Batcher wraps an Endpoint and coalesces outgoing payloads per destination
// into wire.Batch envelopes: a payload waits at most Window for companions,
// and a queue flushes early when it reaches MaxMessages or MaxBytes. The
// receive path splits incoming Batch frames back into individual Envelopes,
// so the layers above see the ordinary one-message-per-envelope contract on
// both Memnet and TCP.
//
// Payloads must be wire frames (every inter-VC message is): the unbatching
// path distinguishes batches by the leading wire.Kind byte. Stacked outside
// a Signed endpoint, each flushed batch is signed and verified exactly once
// — the batch-signing amortization of DESIGN.md's pipeline.
//
// Send never blocks on the flush: timer flushes run on their own goroutine
// and threshold flushes run on the sender, each serialized per destination
// so per-link FIFO ordering is preserved.
type Batcher struct {
	inner Endpoint
	opts  BatcherOptions

	mu     sync.Mutex
	queues map[NodeID]*destQueue
	closed bool

	out  chan Envelope
	done chan struct{}

	batchesSent atomic.Int64
	msgsSent    atomic.Int64
	sendErrors  atomic.Int64
	badBatches  atomic.Int64
}

// destQueue buffers pending frames for one destination. sendMu serializes
// flushes per destination (it is acquired before the frames are taken, never
// while holding mu), so a threshold flush cannot overtake a timer flush on
// the same link.
type destQueue struct {
	frames [][]byte
	bytes  int
	timer  clock.Timer

	sendMu sync.Mutex
}

var _ Endpoint = (*Batcher)(nil)

// NewBatcher wraps inner with per-destination coalescing.
func NewBatcher(inner Endpoint, opts BatcherOptions) *Batcher {
	b := &Batcher{
		inner:  inner,
		opts:   opts.withDefaults(),
		queues: make(map[NodeID]*destQueue),
		out:    make(chan Envelope, 256),
		done:   make(chan struct{}),
	}
	go b.pump()
	return b
}

// ID implements Endpoint.
func (b *Batcher) ID() NodeID { return b.inner.ID() }

// Recv implements Endpoint, yielding unbatched individual messages.
func (b *Batcher) Recv() <-chan Envelope { return b.out }

// Send implements Endpoint: the payload is queued and flushed to the inner
// endpoint within the batch window. Errors from deferred flushes surface via
// SendErrors; an error is returned only when the batcher is already closed
// or when this call itself triggers a threshold flush that fails.
func (b *Batcher) Send(to NodeID, payload []byte) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	q, ok := b.queues[to]
	if !ok {
		q = &destQueue{}
		b.queues[to] = q
	}
	if len(payload) >= wire.MaxBatchableFrame {
		// Too large for a batch envelope's inner-frame cap (e.g. a whole
		// election's ANNOUNCE): flush what's queued to keep FIFO order,
		// then pass the frame through unwrapped.
		b.mu.Unlock()
		if err := b.flushQueue(to, q); err != nil {
			b.noteSendError(to, err)
		}
		q.sendMu.Lock()
		defer q.sendMu.Unlock()
		return b.inner.Send(to, payload)
	}
	q.frames = append(q.frames, payload)
	q.bytes += len(payload)
	full := len(q.frames) >= b.opts.MaxMessages || q.bytes >= b.opts.MaxBytes
	if !full && q.timer == nil {
		q.timer = b.opts.Timers.AfterFunc(b.opts.Window, func() {
			if err := b.flushQueue(to, q); err != nil {
				b.noteSendError(to, err)
			}
		})
	}
	b.mu.Unlock()
	if full {
		return b.flushQueue(to, q)
	}
	return nil
}

// flushQueue drains and delivers one destination's queue. The per-queue
// sendMu is taken before the frames are, so concurrent timer and threshold
// flushes cannot reorder batches on a link: whoever wins the lock takes
// everything pending, the loser finds the queue empty.
func (b *Batcher) flushQueue(to NodeID, q *destQueue) error {
	q.sendMu.Lock()
	defer q.sendMu.Unlock()
	return b.flushQueueLocked(to, q)
}

// flushQueueLocked is flushQueue with q.sendMu already held.
func (b *Batcher) flushQueueLocked(to NodeID, q *destQueue) error {
	b.mu.Lock()
	frames := q.frames
	q.frames = nil
	q.bytes = 0
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	b.mu.Unlock()
	if len(frames) == 0 {
		return nil
	}
	// Concurrent Sends may append past the thresholds between a flush
	// trigger and this drain (appends only block on sendMu after queueing),
	// so re-chunk here by both caps: no batch exceeds the configured
	// MaxMessages (≤ wire.MaxBatchFrames after withDefaults) or the
	// MaxBytes payload bound. A chunk always takes at least one frame — a
	// lone frame above MaxBytes still fits every transport, since batchable
	// frames are capped at wire.MaxBatchableFrame.
	var firstErr error
	for len(frames) > 0 {
		cut, bytes := 0, 0
		for cut < len(frames) && cut < b.opts.MaxMessages {
			if cut > 0 && bytes+len(frames[cut]) > b.opts.MaxBytes {
				break
			}
			bytes += len(frames[cut])
			cut++
		}
		chunk := frames[:cut]
		frames = frames[cut:]
		if err := b.inner.Send(to, wire.EncodeBatch(chunk)); err != nil {
			// Later chunks still get their attempt — the inner endpoint
			// redials on failure, so one dead connection must not drop the
			// rest of the queue the way it would not have dropped
			// individually-sent messages.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		b.batchesSent.Add(1)
		b.msgsSent.Add(int64(len(chunk)))
	}
	return firstErr
}

// Flush synchronously drains every destination queue (tests, shutdown).
func (b *Batcher) Flush() { b.flush(false) }

func (b *Batcher) flush(try bool) {
	b.mu.Lock()
	queues := make(map[NodeID]*destQueue, len(b.queues))
	for to, q := range b.queues {
		queues[to] = q
	}
	b.mu.Unlock()
	for to, q := range queues {
		if try {
			// Best-effort: an in-flight flush owns this link — possibly
			// blocked in a write to a peer that stopped reading — and
			// waiting for it would deadlock Close against the very
			// inner.Close that unblocks the write. Skip; the owner drains
			// the queue or errors out when the connection closes.
			if !q.sendMu.TryLock() {
				continue
			}
			err := b.flushQueueLocked(to, q)
			q.sendMu.Unlock()
			if err != nil {
				b.noteSendError(to, err)
			}
			continue
		}
		if err := b.flushQueue(to, q); err != nil {
			b.noteSendError(to, err)
		}
	}
}

// Close implements Endpoint: pending batches are flushed best-effort first.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	b.flush(true)
	close(b.done)
	return b.inner.Close()
}

// Stats reports (batches sent, messages sent): the coalescing ratio.
func (b *Batcher) Stats() (batches, msgs int64) {
	return b.batchesSent.Load(), b.msgsSent.Load()
}

// SendErrors reports how many deferred flushes failed.
func (b *Batcher) SendErrors() int64 { return b.sendErrors.Load() }

// noteSendError records a deferred-flush failure and surfaces it to the
// OnSendError hook, if any.
func (b *Batcher) noteSendError(to NodeID, err error) {
	b.sendErrors.Add(1)
	if b.opts.OnSendError != nil {
		b.opts.OnSendError(to, err)
	}
}

// BadBatches reports how many inbound batch envelopes failed to parse.
func (b *Batcher) BadBatches() int64 { return b.badBatches.Load() }

// pump splits inbound batch envelopes into individual messages.
func (b *Batcher) pump() {
	defer close(b.out)
	for env := range b.inner.Recv() {
		if !wire.IsBatchFrame(env.Payload) {
			if !b.emit(env) {
				return
			}
			continue
		}
		frames, err := wire.SplitBatch(env.Payload)
		if err != nil {
			b.badBatches.Add(1)
			continue
		}
		for _, f := range frames {
			if !b.emit(Envelope{From: env.From, To: env.To, Payload: f}) {
				return
			}
		}
	}
}

func (b *Batcher) emit(env Envelope) bool {
	select {
	case b.out <- env:
		return true
	case <-b.done:
		return false
	}
}
