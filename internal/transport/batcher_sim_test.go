package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ddemos/internal/clock"
	"ddemos/internal/sim"
	"ddemos/internal/wire"
)

// scriptedEndpoint is a recording inner endpoint whose first failFirst
// Sends return an error — the deterministic stand-in for a dead connection
// during a deferred flush.
type scriptedEndpoint struct {
	id NodeID

	mu        sync.Mutex
	sent      [][]byte
	failFirst int

	out  chan Envelope
	once sync.Once
}

func newScriptedEndpoint(id NodeID) *scriptedEndpoint {
	return &scriptedEndpoint{id: id, out: make(chan Envelope)}
}

func (s *scriptedEndpoint) ID() NodeID { return s.id }

func (s *scriptedEndpoint) Send(to NodeID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failFirst > 0 {
		s.failFirst--
		return errors.New("scripted send failure")
	}
	s.sent = append(s.sent, append([]byte(nil), payload...))
	return nil
}

func (s *scriptedEndpoint) Recv() <-chan Envelope { return s.out }

func (s *scriptedEndpoint) Close() error {
	s.once.Do(func() { close(s.out) })
	return nil
}

func (s *scriptedEndpoint) sentFrames() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.sent))
	copy(out, s.sent)
	return out
}

func TestBatcherWindowExpiresInVirtualTime(t *testing.T) {
	// The flush window is a virtual-time event: nothing leaves before the
	// clock crosses it, everything queued leaves exactly when it does.
	fake := clock.NewFake(time.Unix(1000, 0))
	inner := newScriptedEndpoint(1)
	b := NewBatcher(inner, BatcherOptions{Window: time.Millisecond, Timers: fake})
	defer func() { _ = b.Close() }()

	for i := 0; i < 3; i++ {
		if err := b.Send(2, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	fake.Advance(999 * time.Microsecond)
	if got := inner.sentFrames(); len(got) != 0 {
		t.Fatalf("flushed %d frames before the window expired", len(got))
	}
	fake.Advance(time.Microsecond)
	got := inner.sentFrames()
	if len(got) != 1 {
		t.Fatalf("window expiry sent %d frames, want 1 batch", len(got))
	}
	frames, err := wire.SplitBatch(got[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("batch carries %d frames, want 3", len(frames))
	}
	// The timer is disarmed after firing: advancing further sends nothing.
	fake.Advance(time.Hour)
	if len(inner.sentFrames()) != 1 {
		t.Fatal("expired timer flushed again")
	}
}

func TestBatcherThresholdFlushBeatsWindow(t *testing.T) {
	// MaxMessages and MaxBytes flush synchronously; the armed window timer
	// must then fire empty (no duplicate batch).
	fake := clock.NewFake(time.Unix(1000, 0))
	inner := newScriptedEndpoint(1)
	b := NewBatcher(inner, BatcherOptions{Window: time.Millisecond, MaxMessages: 2, Timers: fake})
	defer func() { _ = b.Close() }()

	if err := b.Send(2, testFrame(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(2, testFrame(1)); err != nil { // hits MaxMessages
		t.Fatal(err)
	}
	if got := inner.sentFrames(); len(got) != 1 {
		t.Fatalf("threshold flush sent %d frames without any clock advance, want 1", len(got))
	}
	fake.Advance(time.Hour)
	if got := inner.sentFrames(); len(got) != 1 {
		t.Fatalf("window fired a duplicate flush: %d frames", len(got))
	}

	// MaxBytes: the second small frame crosses the byte cap, and the flush
	// re-chunks under it — two unwrapped singletons, no clock advance.
	inner2 := newScriptedEndpoint(1)
	b2 := NewBatcher(inner2, BatcherOptions{Window: time.Millisecond, MaxBytes: 16, Timers: fake})
	defer func() { _ = b2.Close() }()
	if err := b2.Send(2, testFrame(0)); err != nil {
		t.Fatal(err)
	}
	if err := b2.Send(2, testFrame(1)); err != nil {
		t.Fatal(err)
	}
	got2 := inner2.sentFrames()
	if len(got2) != 2 {
		t.Fatalf("byte-threshold flush sent %d frames, want 2 byte-capped chunks", len(got2))
	}
	for _, f := range got2 {
		if wire.IsBatchFrame(f) {
			t.Fatal("byte-capped singleton chunk must pass through unwrapped")
		}
	}
}

func TestBatcherWindowRearmsAfterThresholdFlush(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	inner := newScriptedEndpoint(1)
	b := NewBatcher(inner, BatcherOptions{Window: time.Millisecond, MaxMessages: 2, Timers: fake})
	defer func() { _ = b.Close() }()

	if err := b.Send(2, testFrame(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(2, testFrame(1)); err != nil { // threshold flush
		t.Fatal(err)
	}
	if err := b.Send(2, testFrame(2)); err != nil { // below threshold: waits
		t.Fatal(err)
	}
	if got := inner.sentFrames(); len(got) != 1 {
		t.Fatalf("straggler flushed early: %d frames", len(got))
	}
	fake.Advance(time.Millisecond)
	got := inner.sentFrames()
	if len(got) != 2 {
		t.Fatalf("straggler not flushed by the re-armed window: %d frames", len(got))
	}
	if wire.IsBatchFrame(got[1]) {
		t.Fatal("singleton straggler must pass through unwrapped")
	}
}

func TestBatcherDeferredFlushErrorSurfacesAndDropsOnlyThatChunk(t *testing.T) {
	// A timer flush has no caller to hand its error to: it must land in
	// SendErrors and the OnSendError hook, and a failed chunk must not
	// stop later chunks from being attempted.
	fake := clock.NewFake(time.Unix(1000, 0))
	inner := newScriptedEndpoint(1)
	var hookMu sync.Mutex
	var hooked []NodeID
	b := NewBatcher(inner, BatcherOptions{
		Window:      time.Millisecond,
		MaxMessages: 2,
		Timers:      fake,
		OnSendError: func(to NodeID, err error) {
			hookMu.Lock()
			hooked = append(hooked, to)
			hookMu.Unlock()
		},
	})
	defer func() { _ = b.Close() }()

	// Deferred (timer) flush fails: error is counted and hooked, not lost.
	inner.mu.Lock()
	inner.failFirst = 1
	inner.mu.Unlock()
	if err := b.Send(2, testFrame(0)); err != nil {
		t.Fatal(err)
	}
	fake.Advance(time.Millisecond)
	if got := b.SendErrors(); got != 1 {
		t.Fatalf("SendErrors = %d, want 1", got)
	}
	hookMu.Lock()
	if len(hooked) != 1 || hooked[0] != 2 {
		t.Fatalf("OnSendError saw %v, want [2]", hooked)
	}
	hookMu.Unlock()

	// Later chunks still get their attempt after an earlier chunk errors:
	// queue five frames directly (as a concurrent burst would) so the
	// flush re-chunks into [2][2][1], and fail only the first chunk.
	b.mu.Lock()
	q := &destQueue{}
	b.queues[3] = q
	for i := 0; i < 5; i++ {
		f := testFrame(10 + i)
		q.frames = append(q.frames, f)
		q.bytes += len(f)
	}
	b.mu.Unlock()
	inner.mu.Lock()
	inner.failFirst = 1
	before := len(inner.sent)
	inner.mu.Unlock()
	if err := b.flushQueue(3, q); err == nil {
		t.Fatal("flush must report the failed chunk")
	}
	delivered := inner.sentFrames()[before:]
	if len(delivered) != 2 {
		t.Fatalf("delivered %d chunks after the failure, want 2", len(delivered))
	}
	gotMsgs := 0
	for _, d := range delivered {
		frames, err := wire.SplitBatch(d)
		if err != nil {
			// A one-frame chunk passes through unwrapped.
			gotMsgs++
			continue
		}
		gotMsgs += len(frames)
	}
	if gotMsgs != 3 {
		t.Fatalf("surviving chunks carried %d messages, want 3 (first chunk of 2 dropped)", gotMsgs)
	}
}

func TestBatcherEndToEndOverVirtualMemnet(t *testing.T) {
	// Full virtual-time path: sim driver owns both the flush window and
	// the link latency; one Elapse call moves the messages end to end.
	drv := sim.New(sim.Config{})
	net := NewMemnetWithTimers(LinkProfile{Latency: 200 * time.Microsecond}, drv)
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: 500 * time.Microsecond, Timers: drv})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: 500 * time.Microsecond, Timers: drv})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	const total = 5
	for i := 0; i < total; i++ {
		if err := a.Send(2, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	drv.Elapse(2 * time.Millisecond) // window + latency, with margin
	for i := 0; i < total; i++ {
		env := recvWithTimeout(t, b, 5*time.Second)
		m, err := wire.Decode(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Endorse).Serial; got != uint64(i) {
			t.Fatalf("message %d arrived as %d (FIFO broken)", i, got)
		}
	}
	if msgs, _ := net.Stats(); msgs != 1 {
		t.Fatalf("network saw %d frames, want 1 coalesced batch", msgs)
	}
}
