package transport

import (
	"testing"
	"time"

	"ddemos/internal/wire"
)

// testFrame builds a valid wire frame (the Batcher's payload contract).
func testFrame(i int) []byte {
	return wire.Encode(&wire.Endorse{Serial: uint64(i), Code: []byte{byte(i), byte(i >> 8)}}) //nolint:gosec // test data
}

func TestBatcherCoalescesWithinWindow(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: 20 * time.Millisecond})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: 20 * time.Millisecond})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	const total = 10
	for i := 0; i < total; i++ {
		if err := a.Send(2, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		env := recvWithTimeout(t, b, time.Second)
		m, err := wire.Decode(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Endorse).Serial; got != uint64(i) {
			t.Fatalf("message %d arrived as %d", i, got)
		}
		if env.From != 1 || env.To != 2 {
			t.Fatalf("bad route %+v", env)
		}
	}
	// All ten messages must have crossed the network as one frame.
	if msgs, _ := net.Stats(); msgs != 1 {
		t.Fatalf("network saw %d frames, want 1", msgs)
	}
	if batches, msgs := a.Stats(); batches != 1 || msgs != total {
		t.Fatalf("batcher stats: %d batches %d msgs", batches, msgs)
	}
}

func TestBatcherFlushesOnMaxMessages(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	// A window far too long to fire during the test: only the size
	// threshold can flush.
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: time.Hour, MaxMessages: 4})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: time.Hour})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	for i := 0; i < 4; i++ {
		if err := a.Send(2, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		recvWithTimeout(t, b, time.Second)
	}
	if msgs, _ := net.Stats(); msgs != 1 {
		t.Fatalf("network saw %d frames, want 1", msgs)
	}
}

func TestBatcherFlushesOnMaxBytes(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: time.Hour, MaxBytes: 16})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: time.Hour})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	if err := a.Send(2, testFrame(1)); err != nil { // 15 bytes: below threshold
		t.Fatal(err)
	}
	if err := a.Send(2, testFrame(2)); err != nil { // crosses MaxBytes
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	recvWithTimeout(t, b, time.Second)
}

func TestBatcherSingletonPassesThroughUnwrapped(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: time.Millisecond})
	raw := net.Endpoint(2) // receiver without a Batcher
	defer func() { _ = a.Close() }()

	frame := testFrame(7)
	if err := a.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, raw, time.Second)
	if string(env.Payload) != string(frame) {
		t.Fatalf("singleton batch rewrote the frame: %x", env.Payload)
	}
}

func TestBatcherPerDestinationQueues(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: 5 * time.Millisecond})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: 5 * time.Millisecond})
	c := NewBatcher(net.Endpoint(3), BatcherOptions{Window: 5 * time.Millisecond})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	defer func() { _ = c.Close() }()

	for i := 0; i < 6; i++ {
		dst := NodeID(2 + NodeID(i%2))
		if err := a.Send(dst, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		recvWithTimeout(t, b, time.Second)
		recvWithTimeout(t, c, time.Second)
	}
	if msgs, _ := net.Stats(); msgs != 2 {
		t.Fatalf("network saw %d frames, want 2 (one per destination)", msgs)
	}
}

func TestBatcherCloseFlushesPending(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: time.Hour})
	b := net.Endpoint(2)
	if err := a.Send(2, testFrame(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	if err := a.Send(2, testFrame(2)); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestBatcherDropsGarbageBatches(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	raw := net.Endpoint(1)
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: time.Millisecond})
	defer func() { _ = b.Close() }()

	garbage := []byte{byte(wire.KindBatch), 0xff, 0xff} // bad version/truncated
	if err := raw.Send(2, garbage); err != nil {
		t.Fatal(err)
	}
	if err := raw.Send(2, testFrame(3)); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, b, time.Second)
	m, err := wire.Decode(env.Payload)
	if err != nil || m.(*wire.Endorse).Serial != 3 {
		t.Fatalf("got %v %v", m, err)
	}
	if b.BadBatches() != 1 {
		t.Fatalf("bad batches = %d, want 1", b.BadBatches())
	}
}

func TestBatcherOverSignedOneSignaturePerBatch(t *testing.T) {
	// Stack order endpoint → Signed → Batcher: the batch is signed once and
	// verified once, and unbatching yields the individual messages.
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	keys, pubs := makeKeys(t, 2)
	window := 20 * time.Millisecond
	a := NewBatcher(NewSigned(net.Endpoint(0), keys[0].Private, pubs), BatcherOptions{Window: window})
	b := NewBatcher(NewSigned(net.Endpoint(1), keys[1].Private, pubs), BatcherOptions{Window: window})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	const total = 8
	for i := 0; i < total; i++ {
		if err := a.Send(1, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		env := recvWithTimeout(t, b, time.Second)
		m, err := wire.Decode(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Endorse).Serial; got != uint64(i) {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
	// One network frame: 64-byte signature + one batch envelope.
	msgs, bytes := net.Stats()
	if msgs != 1 {
		t.Fatalf("network saw %d frames, want 1", msgs)
	}
	var inner int64
	for i := 0; i < total; i++ {
		inner += int64(len(testFrame(i)))
	}
	if overhead := bytes - inner; overhead > 64+6*int64(total)+16 {
		t.Fatalf("batch overhead %d bytes for %d messages", overhead, total)
	}
}

func TestBatcherOverTCP(t *testing.T) {
	srv, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewTCPNode(1, "127.0.0.1:0", map[NodeID]string{0: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	a := NewBatcher(cli, BatcherOptions{Window: 10 * time.Millisecond})
	b := NewBatcher(srv, BatcherOptions{Window: 10 * time.Millisecond})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	const total = 20
	for i := 0; i < total; i++ {
		if err := a.Send(0, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		env := recvWithTimeout(t, b, 2*time.Second)
		m, err := wire.Decode(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*wire.Endorse).Serial; got != uint64(i) {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestBatcherOversizedFramePassesThrough(t *testing.T) {
	// Frames at or above wire.MaxBatchableFrame cannot travel inside a
	// Batch envelope (the decoder caps inner frames): they must flush the
	// queue (FIFO) and pass through unwrapped — the whole-election ANNOUNCE
	// case.
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: time.Hour})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: time.Hour})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	small := testFrame(1)
	big := wire.Encode(&wire.Announce{Sender: 1, Entries: []wire.AnnounceEntry{{
		Serial: 1, Code: make([]byte, wire.MaxBatchableFrame),
	}}})
	if len(big) < wire.MaxBatchableFrame {
		t.Fatalf("test frame too small: %d", len(big))
	}
	if err := a.Send(2, small); err != nil { // queued behind an hour-long window
		t.Fatal(err)
	}
	if err := a.Send(2, big); err != nil { // must flush `small` first, then pass through
		t.Fatal(err)
	}
	env := recvWithTimeout(t, b, time.Second)
	if string(env.Payload) != string(small) {
		t.Fatalf("queued frame not flushed first (got %d bytes)", len(env.Payload))
	}
	env = recvWithTimeout(t, b, time.Second)
	if len(env.Payload) != len(big) {
		t.Fatalf("oversized frame mangled: got %d want %d bytes", len(env.Payload), len(big))
	}
	if b.BadBatches() != 0 {
		t.Fatalf("bad batches = %d", b.BadBatches())
	}
}

func TestBatcherFaultInjectionWholeBatches(t *testing.T) {
	// Memnet faults operate on whole frames, so with batching a drop or a
	// duplication hits an entire batch. Every delivered message must still
	// arrive intact and correctly attributed.
	net := NewMemnet(LinkProfile{DupRate: 0.3, Jitter: 500 * time.Microsecond})
	defer func() { _ = net.Close() }()
	a := NewBatcher(net.Endpoint(1), BatcherOptions{Window: time.Millisecond, MaxMessages: 5})
	b := NewBatcher(net.Endpoint(2), BatcherOptions{Window: time.Millisecond, MaxMessages: 5})
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()

	const total = 50
	for i := 0; i < total; i++ {
		if err := a.Send(2, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]int)
	deadline := time.After(5 * time.Second)
	for len(seen) < total {
		select {
		case env := <-b.Recv():
			m, err := wire.Decode(env.Payload)
			if err != nil {
				t.Fatal(err)
			}
			e := m.(*wire.Endorse)
			if e.Code[0] != byte(e.Serial) {
				t.Fatalf("payload corrupted: %+v", e)
			}
			seen[e.Serial]++
		case <-deadline:
			t.Fatalf("only %d/%d distinct messages delivered", len(seen), total)
		}
	}
	// With DupRate 0.3 some batch must have been duplicated wholesale;
	// duplicated batches duplicate every inner message.
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Log("no duplicated batch observed (possible but unlikely)")
	}
}

func BenchmarkBatcherSend(b *testing.B) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	src := NewBatcher(net.Endpoint(0), BatcherOptions{Window: 100 * time.Microsecond})
	dst := NewBatcher(net.Endpoint(1), BatcherOptions{Window: 100 * time.Microsecond})
	defer func() { _ = src.Close() }()
	defer func() { _ = dst.Close() }()
	frame := testFrame(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range dst.Recv() { //nolint:revive // drain
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(1, frame); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = src.Close()
	_ = dst.Close()
	<-done
}
