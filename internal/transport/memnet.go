package transport

import (
	"math/rand/v2"
	"sync"
	"time"

	"ddemos/internal/clock"
)

// LinkProfile describes the behaviour of a directed link in the simulated
// network.
type LinkProfile struct {
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the probability a message is silently dropped.
	DropRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
}

// Common profiles matching the paper's testbeds: a Gigabit LAN and the
// netem-emulated WAN with 25 ms per-packet latency (§V).
var (
	LANProfile = LinkProfile{Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}
	WANProfile = LinkProfile{Latency: 25 * time.Millisecond, Jitter: 2 * time.Millisecond}
)

// Memnet is an in-process simulated network. Messages between endpoints are
// delivered asynchronously after the link's configured delay; links can
// drop, duplicate and reorder (via jitter), and nodes can be partitioned.
type Memnet struct {
	mu         sync.Mutex
	defaultLP  LinkProfile
	links      map[[2]NodeID]LinkProfile
	eps        map[NodeID]*memEndpoint
	blocked    map[[2]NodeID]bool
	isolated   map[NodeID]bool
	rng        *rand.Rand
	timers     clock.Timers
	closed     bool
	totalSent  int64
	totalBytes int64
}

// NewMemnet creates a simulated network with the given default link profile,
// delivering on real timers.
func NewMemnet(def LinkProfile) *Memnet {
	return NewMemnetWithTimers(def, clock.Real{})
}

// NewMemnetWithTimers creates a simulated network whose delivery delays are
// scheduled on tm — pass a sim.Driver to run the network in virtual time,
// where a 25 ms WAN hop costs no wall-clock wait and delivery order is the
// driver's deterministic event order.
func NewMemnetWithTimers(def LinkProfile, tm clock.Timers) *Memnet {
	return &Memnet{
		defaultLP: def,
		links:     make(map[[2]NodeID]LinkProfile),
		eps:       make(map[NodeID]*memEndpoint),
		blocked:   make(map[[2]NodeID]bool),
		isolated:  make(map[NodeID]bool),
		timers:    tm,
		// The RNG drives fault injection, not cryptography.
		rng: rand.New(rand.NewPCG(0xD0D0, 0xCACA)), //nolint:gosec // simulation only
	}
}

// Reseed re-seeds the fault-injection RNG so a scenario's drop/dup/jitter
// draws are reproducible from its seed.
func (n *Memnet) Reseed(s1, s2 uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = rand.New(rand.NewPCG(s1, s2)) //nolint:gosec // simulation only
}

// SetLink overrides the profile of the directed link from -> to.
func (n *Memnet) SetLink(from, to NodeID, lp LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]NodeID{from, to}] = lp
}

// SetDefault changes the default profile for links without an override.
func (n *Memnet) SetDefault(lp LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLP = lp
}

// Partition blocks all traffic between a and b (both directions) when on is
// true, and restores it when false.
func (n *Memnet) Partition(a, b NodeID, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if on {
		n.blocked[[2]NodeID{a, b}] = true
		n.blocked[[2]NodeID{b, a}] = true
	} else {
		delete(n.blocked, [2]NodeID{a, b})
		delete(n.blocked, [2]NodeID{b, a})
	}
}

// Isolate blocks (or restores) all traffic to and from id, simulating a
// crashed or unreachable node. Isolation is tracked separately from
// pairwise partitions, so crash windows and partition windows compose:
// restoring a crashed node does not heal partitions it is part of, and
// healing a partition does not reconnect a crashed node.
func (n *Memnet) Isolate(id NodeID, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if on {
		n.isolated[id] = true
	} else {
		delete(n.isolated, id)
	}
}

// Stats returns the total number of messages and payload bytes sent so far.
func (n *Memnet) Stats() (msgs, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalSent, n.totalBytes
}

// Endpoint registers (or returns) the endpoint for id. A closed endpoint is
// replaced by a fresh one — a restarted node re-attaches under its old
// identity, exactly like a process rebinding its listen address.
func (n *Memnet) Endpoint(id NodeID) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[id]; ok && !ep.isDead() {
		return ep
	}
	ep := &memEndpoint{
		id:     id,
		net:    n,
		out:    make(chan Envelope, 256),
		wake:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	n.eps[id] = ep
	go ep.pump()
	return ep
}

// Close shuts the network down. Pending deliveries are dropped.
func (n *Memnet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// profileFor returns the effective link profile from -> to.
func (n *Memnet) profileFor(from, to NodeID) LinkProfile {
	if lp, ok := n.links[[2]NodeID{from, to}]; ok {
		return lp
	}
	return n.defaultLP
}

// send schedules delivery of payload on the from->to link.
func (n *Memnet) send(from, to NodeID, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.eps[to]
	if !ok {
		n.mu.Unlock()
		return ErrUnknownPeer
	}
	if n.blocked[[2]NodeID{from, to}] || n.isolated[from] || n.isolated[to] {
		// Silently dropped: an unreachable peer looks identical to a lossy
		// link from the sender's perspective.
		n.mu.Unlock()
		return nil
	}
	lp := n.profileFor(from, to)
	copies := 1
	if lp.DropRate > 0 && n.rng.Float64() < lp.DropRate {
		copies = 0
	} else if lp.DupRate > 0 && n.rng.Float64() < lp.DupRate {
		copies = 2
	}
	delays := make([]time.Duration, 0, copies)
	for i := 0; i < copies; i++ {
		d := lp.Latency
		if lp.Jitter > 0 {
			d += time.Duration(n.rng.Int64N(int64(lp.Jitter)))
		}
		delays = append(delays, d)
	}
	n.totalSent++
	n.totalBytes += int64(len(payload))
	n.mu.Unlock()

	env := Envelope{From: from, To: to, Payload: payload}
	for _, d := range delays {
		if d <= 0 {
			dst.enqueue(env)
			continue
		}
		// No delivery tracking: a closed endpoint drops late enqueues, and
		// waiting on deliveries scheduled on an injected (virtual) timer
		// would hang teardown when the driver stops first.
		n.timers.AfterFunc(d, func() { dst.enqueue(env) })
	}
	return nil
}

// memEndpoint buffers incoming messages in an unbounded queue so senders
// never block, then pumps them into the Recv channel.
type memEndpoint struct {
	id  NodeID
	net *Memnet

	mu     sync.Mutex
	queue  []Envelope
	dead   bool
	out    chan Envelope
	wake   chan struct{}
	closed chan struct{}
}

var _ Endpoint = (*memEndpoint)(nil)

// ID implements Endpoint.
func (e *memEndpoint) ID() NodeID { return e.id }

// isDead reports whether Close was called.
func (e *memEndpoint) isDead() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}

// Send implements Endpoint.
func (e *memEndpoint) Send(to NodeID, payload []byte) error {
	return e.net.send(e.id, to, payload)
}

// Recv implements Endpoint.
func (e *memEndpoint) Recv() <-chan Envelope { return e.out }

// Close implements Endpoint.
func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return nil
	}
	e.dead = true
	close(e.closed)
	e.mu.Unlock()
	return nil
}

func (e *memEndpoint) enqueue(env Envelope) {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, env)
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// pump moves messages from the unbounded queue to the Recv channel.
func (e *memEndpoint) pump() {
	defer close(e.out)
	for {
		e.mu.Lock()
		var env Envelope
		have := false
		if len(e.queue) > 0 {
			env = e.queue[0]
			e.queue = e.queue[1:]
			have = true
		}
		e.mu.Unlock()
		if have {
			select {
			case e.out <- env:
			case <-e.closed:
				return
			}
			continue
		}
		select {
		case <-e.wake:
		case <-e.closed:
			return
		}
	}
}
