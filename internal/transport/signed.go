package transport

import (
	"crypto/ed25519"
	"encoding/binary"
	"sync/atomic"

	"ddemos/internal/sig"
)

// Signed wraps an Endpoint with Ed25519 message authentication. Every
// outgoing payload is signed with one signature over the digest of
// (from, to, payload); incoming messages with missing or invalid signatures
// are counted and dropped, which is how the paper's authenticated channels
// neutralize network-level spoofing. Stacked under a Batcher, the payload is
// a whole coalesced batch, so a flush costs one signature and one
// verification no matter how many protocol messages it carries.
type Signed struct {
	inner   Endpoint
	priv    ed25519.PrivateKey
	pubs    map[NodeID]ed25519.PublicKey
	out     chan Envelope
	dropped atomic.Int64
}

var _ Endpoint = (*Signed)(nil)

// sigDomain is the channel-authentication domain. v2: the signature covers
// the batch digest of (route, payload) via sig.SignBatch, so whole-batch
// payloads are prehashed once.
const sigDomain = "ddemos/v2/channel"

// NewSigned wraps inner. pubs must contain the public key of every peer this
// endpoint will receive from.
func NewSigned(inner Endpoint, priv ed25519.PrivateKey, pubs map[NodeID]ed25519.PublicKey) *Signed {
	s := &Signed{
		inner: inner,
		priv:  priv,
		pubs:  pubs,
		out:   make(chan Envelope, 256),
	}
	go s.pump()
	return s
}

// ID implements Endpoint.
func (s *Signed) ID() NodeID { return s.inner.ID() }

// Send implements Endpoint: prepends a 64-byte signature to the payload.
func (s *Signed) Send(to NodeID, payload []byte) error {
	sg := sig.SignBatch(s.priv, sigDomain, routeBytes(s.ID(), to), payload)
	framed := make([]byte, 0, len(sg)+len(payload))
	framed = append(framed, sg...)
	framed = append(framed, payload...)
	return s.inner.Send(to, framed)
}

// Recv implements Endpoint, yielding only authenticated messages.
func (s *Signed) Recv() <-chan Envelope { return s.out }

// Close implements Endpoint.
func (s *Signed) Close() error { return s.inner.Close() }

// Dropped reports how many inbound messages failed authentication.
func (s *Signed) Dropped() int64 { return s.dropped.Load() }

func (s *Signed) pump() {
	defer close(s.out)
	for env := range s.inner.Recv() {
		if len(env.Payload) < ed25519.SignatureSize {
			s.dropped.Add(1)
			continue
		}
		sg := env.Payload[:ed25519.SignatureSize]
		body := env.Payload[ed25519.SignatureSize:]
		pub, ok := s.pubs[env.From]
		if !ok || !sig.VerifyBatch(pub, sg, sigDomain, routeBytes(env.From, env.To), body) {
			s.dropped.Add(1)
			continue
		}
		s.out <- Envelope{From: env.From, To: env.To, Payload: body}
	}
}

func routeBytes(from, to NodeID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint16(b[:2], uint16(from))
	binary.BigEndian.PutUint16(b[2:], uint16(to))
	return b[:]
}
