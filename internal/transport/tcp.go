package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPNode is an Endpoint implemented over real TCP connections for
// multi-process deployments. Frames are length-prefixed:
//
//	uint32 length | uint16 from | payload
//
// Connections are established lazily per peer and re-dialed with backoff on
// failure. A hello frame (length 2, the sender id) opens every inbound
// connection.
type TCPNode struct {
	id    NodeID
	ln    net.Listener
	peers map[NodeID]string // id -> address

	mu      sync.Mutex
	conns   map[NodeID]*outConn
	inbound map[net.Conn]struct{}
	out     chan Envelope
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// outConn is one outbound connection with its own write lock: frames to the
// same peer serialize (no interleaved frames), while a blocked write to one
// slow peer cannot stall sends to the others.
type outConn struct {
	c       net.Conn
	writeMu sync.Mutex
}

var _ Endpoint = (*TCPNode)(nil)

const maxTCPFrame = 64 << 20

// NewTCPNode starts listening on listenAddr and prepares to dial the given
// peers (id -> host:port).
func NewTCPNode(id NodeID, listenAddr string, peers map[NodeID]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := &TCPNode{
		id:      id,
		ln:      ln,
		peers:   peers,
		conns:   make(map[NodeID]*outConn),
		inbound: make(map[net.Conn]struct{}),
		out:     make(chan Envelope, 1024),
		done:    make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the actual listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID implements Endpoint.
func (n *TCPNode) ID() NodeID { return n.id }

// Recv implements Endpoint.
func (n *TCPNode) Recv() <-chan Envelope { return n.out }

// Send implements Endpoint. A write error evicts the cached connection and
// the send is retried once over a fresh dial: a peer that restarted would
// otherwise eat one errored write per cached conn before traffic flows
// again. (A dead conn's first write can still succeed into the OS buffer
// and be lost silently — only retransmission above this layer covers that.)
func (n *TCPNode) Send(to NodeID, payload []byte) error {
	frame := make([]byte, 6+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(2+len(payload))) //nolint:gosec // bounded
	binary.BigEndian.PutUint16(frame[4:], uint16(n.id))
	copy(frame[6:], payload)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		oc, err := n.conn(to)
		if err != nil {
			return err
		}
		oc.writeMu.Lock()
		_, err = oc.c.Write(frame)
		oc.writeMu.Unlock()
		if err == nil {
			return nil
		}
		// Evict (unless a fresh conn already replaced it) and retry.
		n.mu.Lock()
		if n.conns[to] == oc {
			delete(n.conns, to)
		}
		n.mu.Unlock()
		_ = oc.c.Close()
		lastErr = err
	}
	return fmt.Errorf("transport: send to %d: %w", to, lastErr)
}

// Close implements Endpoint.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	conns := make([]net.Conn, 0, len(n.conns)+len(n.inbound))
	for _, oc := range n.conns {
		conns = append(conns, oc.c)
	}
	// Accepted connections must be closed too, or their readLoops block on
	// reads from still-open peers and Close deadlocks on wg.Wait.
	for c := range n.inbound {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	_ = n.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.out)
	return nil
}

func (n *TCPNode) conn(to NodeID) (*outConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if oc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return oc, nil
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPeer
	}
	var c net.Conn
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		c, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		select {
		case <-n.done:
			return nil, ErrClosed
		case <-time.After(time.Duration(50*(attempt+1)) * time.Millisecond):
		}
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d at %s: %w", to, addr, err)
	}
	// Hello frame announcing who we are.
	hello := make([]byte, 6)
	binary.BigEndian.PutUint32(hello, 2)
	binary.BigEndian.PutUint16(hello[4:], uint16(n.id))
	if _, err := c.Write(hello); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: hello to %d: %w", to, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		_ = c.Close()
		return existing, nil
	}
	oc := &outConn{c: c}
	n.conns[to] = oc
	return oc, nil
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	var header [4]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		length := binary.BigEndian.Uint32(header[:])
		if length < 2 || length > maxTCPFrame {
			return
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		from := NodeID(binary.BigEndian.Uint16(body[:2]))
		payload := body[2:]
		if len(payload) == 0 {
			continue // hello frame
		}
		select {
		case n.out <- Envelope{From: from, To: n.id, Payload: payload}:
		case <-n.done:
			return
		}
	}
}
