// Package transport is the asynchronous communications stack of the system
// (the paper's Netty-based ACS, §V): message-oriented, connectionless from
// the application's point of view, with authenticated inter-node channels.
//
// Two interchangeable networks are provided:
//
//   - Memnet: an in-process simulated network with configurable per-link
//     latency, jitter, drop, duplication and partitions. It stands in for
//     the paper's Gigabit-LAN cluster and the netem-emulated WAN, and adds
//     the fault injection used by the test suite.
//   - TCP: a real TCP transport with length-prefixed frames for multi-process
//     deployments (cmd/ddemos-vc and friends).
//
// The Signed wrapper adds Ed25519 authentication using the EA-issued node
// keys, realizing the paper's "private and authenticated channels" between
// VC nodes without external PKI.
//
// The Batcher wrapper coalesces outgoing payloads per destination within a
// flush window into single wire.Batch frames and splits inbound batches back
// into individual envelopes — the transport stage of the batched message
// pipeline (DESIGN.md). Stacking order is endpoint → Signed → Batcher, so an
// entire batch is authenticated by one signature.
package transport

import (
	"errors"
	"fmt"
)

// NodeID identifies a node on a network.
type NodeID uint16

// Envelope is a received message.
type Envelope struct {
	From    NodeID
	To      NodeID
	Payload []byte
}

// Endpoint is one node's attachment to a network. Send is asynchronous and
// never blocks on the receiver; Recv yields incoming messages until the
// endpoint is closed.
type Endpoint interface {
	ID() NodeID
	Send(to NodeID, payload []byte) error
	Recv() <-chan Envelope
	Close() error
}

// Multicast sends payload to every id in targets except the sender itself.
// It keeps going on per-target errors and returns the first one encountered
// (messages to crashed peers are expected to fail; retransmission is the
// caller's policy).
func Multicast(ep Endpoint, targets []NodeID, payload []byte) error {
	var first error
	for _, t := range targets {
		if t == ep.ID() {
			continue
		}
		if err := ep.Send(t, payload); err != nil && first == nil {
			first = fmt.Errorf("transport: multicast to %d: %w", t, err)
		}
	}
	return first
}

// ErrClosed is returned by operations on a closed endpoint or network.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an unregistered node.
var ErrUnknownPeer = errors.New("transport: unknown peer")
