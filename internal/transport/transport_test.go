package transport

import (
	"crypto/ed25519"
	"fmt"
	"sync"
	"testing"
	"time"

	"ddemos/internal/sig"
)

func recvWithTimeout(t *testing.T, ep Endpoint, d time.Duration) Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		return env
	case <-time.After(d):
		t.Fatal("timed out waiting for message")
	}
	return Envelope{}
}

func TestMemnetBasicDelivery(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	if err := a.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, b, time.Second)
	if env.From != 1 || env.To != 2 || string(env.Payload) != "hello" {
		t.Fatalf("got %+v", env)
	}
}

func TestMemnetUnknownPeer(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	if err := a.Send(99, []byte("x")); err == nil {
		t.Fatal("send to unknown peer must fail")
	}
}

func TestMemnetLatency(t *testing.T) {
	net := NewMemnet(LinkProfile{Latency: 30 * time.Millisecond})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	start := time.Now()
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestMemnetDrop(t *testing.T) {
	net := NewMemnet(LinkProfile{DropRate: 1.0})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("message should have been dropped")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMemnetDuplicate(t *testing.T) {
	net := NewMemnet(LinkProfile{DupRate: 1.0})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	recvWithTimeout(t, b, time.Second) // the duplicate
}

func TestMemnetPartition(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	net.Partition(1, 2, true)
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err) // partition is silent, like a lossy link
	}
	select {
	case <-b.Recv():
		t.Fatal("partitioned message delivered")
	case <-time.After(50 * time.Millisecond):
	}
	net.Partition(1, 2, false)
	if err := a.Send(2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, b, time.Second)
	if string(env.Payload) != "y" {
		t.Fatalf("got %q", env.Payload)
	}
}

func TestMemnetIsolate(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	c := net.Endpoint(3)
	net.Isolate(2, true)
	_ = a.Send(2, []byte("x"))
	_ = b.Send(3, []byte("y"))
	select {
	case <-b.Recv():
		t.Fatal("isolated node received")
	case <-c.Recv():
		t.Fatal("isolated node sent")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMemnetIsolationAndPartitionCompose(t *testing.T) {
	// Crash (Isolate) and partition are independent levers: healing a
	// partition must not reconnect a crashed node, and restoring a crashed
	// node must not heal a partition it was part of. Scenario schedules
	// overlap the two freely and rely on this.
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)

	net.Isolate(2, true)
	net.Partition(1, 2, true)
	net.Partition(1, 2, false) // heal while node 2 is still crashed
	_ = a.Send(2, []byte("x"))
	select {
	case <-b.Recv():
		t.Fatal("partition heal reconnected a crashed node")
	case <-time.After(50 * time.Millisecond):
	}

	net.Partition(1, 2, true)
	net.Isolate(2, false) // restore the node while the partition is live
	_ = a.Send(2, []byte("y"))
	select {
	case <-b.Recv():
		t.Fatal("restoring a crashed node healed a live partition")
	case <-time.After(50 * time.Millisecond):
	}

	net.Partition(1, 2, false)
	if err := a.Send(2, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if env := recvWithTimeout(t, b, time.Second); string(env.Payload) != "z" {
		t.Fatalf("got %q after full heal", env.Payload)
	}
}

func TestMemnetPerLinkProfile(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	net.SetLink(1, 2, LinkProfile{DropRate: 1.0})
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	_ = a.Send(2, []byte("dropped"))
	if err := b.Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, a, time.Second)
	if string(env.Payload) != "ok" {
		t.Fatalf("got %q", env.Payload)
	}
}

func TestMemnetManyMessagesOrderedDelivery(t *testing.T) {
	// With zero latency/jitter, messages on one link stay ordered.
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	a := net.Endpoint(1)
	b := net.Endpoint(2)
	const total = 1000
	for i := 0; i < total; i++ {
		if err := a.Send(2, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		env := recvWithTimeout(t, b, time.Second)
		got := int(env.Payload[0]) | int(env.Payload[1])<<8
		if got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestMemnetConcurrentSenders(t *testing.T) {
	net := NewMemnet(LinkProfile{Latency: time.Millisecond, Jitter: time.Millisecond})
	defer func() { _ = net.Close() }()
	const senders = 8
	const per = 100
	dst := net.Endpoint(0)
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		ep := net.Endpoint(NodeID(s))
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(0, []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		recvWithTimeout(t, dst, 2*time.Second)
	}
	msgs, bytes := net.Stats()
	if msgs != senders*per || bytes != senders*per {
		t.Fatalf("stats: %d msgs %d bytes", msgs, bytes)
	}
}

func TestMemnetClosedNetworkRejectsSend(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	a := net.Endpoint(1)
	net.Endpoint(2)
	_ = net.Close()
	if err := a.Send(2, []byte("x")); err == nil {
		t.Fatal("send on closed network must fail")
	}
}

func TestMulticast(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	eps := make([]Endpoint, 4)
	ids := make([]NodeID, 4)
	for i := range eps {
		eps[i] = net.Endpoint(NodeID(i))
		ids[i] = NodeID(i)
	}
	if err := Multicast(eps[0], ids, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		env := recvWithTimeout(t, eps[i], time.Second)
		if string(env.Payload) != "all" {
			t.Fatalf("node %d got %q", i, env.Payload)
		}
	}
	// Sender must not receive its own multicast.
	select {
	case <-eps[0].Recv():
		t.Fatal("sender received own multicast")
	case <-time.After(20 * time.Millisecond):
	}
}

func makeKeys(t *testing.T, n int) ([]sig.KeyPair, map[NodeID]ed25519.PublicKey) {
	t.Helper()
	keys := make([]sig.KeyPair, n)
	pubs := make(map[NodeID]ed25519.PublicKey, n)
	for i := range keys {
		kp, err := sig.NewKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp
		pubs[NodeID(i)] = kp.Public
	}
	return keys, pubs
}

func TestSignedEndpointRoundTrip(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	keys, pubs := makeKeys(t, 2)
	a := NewSigned(net.Endpoint(0), keys[0].Private, pubs)
	b := NewSigned(net.Endpoint(1), keys[1].Private, pubs)
	if err := a.Send(1, []byte("signed")); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, b, time.Second)
	if string(env.Payload) != "signed" || env.From != 0 {
		t.Fatalf("got %+v", env)
	}
	if b.Dropped() != 0 {
		t.Fatal("no drops expected")
	}
}

func TestSignedEndpointRejectsForgery(t *testing.T) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	keys, pubs := makeKeys(t, 3)
	b := NewSigned(net.Endpoint(1), keys[1].Private, pubs)
	// Node 2 signs with its own key but claims... it IS node 2, so instead
	// forge: raw endpoint 0 sends junk without a signature.
	raw := net.Endpoint(0)
	if err := raw.Send(1, []byte("unsigned junk")); err != nil {
		t.Fatal(err)
	}
	// And node 2 sends a message signed with the wrong key for its id by
	// constructing a Signed endpoint with a mismatched private key.
	evil := NewSigned(net.Endpoint(2), keys[0].Private, pubs)
	if err := evil.Send(1, []byte("forged")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Recv():
		t.Fatalf("forged message delivered: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if b.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", b.Dropped())
	}
}

func TestSignedEndpointCannotReplayAcrossRoutes(t *testing.T) {
	// A signature for route 0->1 must not verify on route 0->2: capture a
	// signed frame and replay it to another destination.
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	keys, pubs := makeKeys(t, 3)
	a := NewSigned(net.Endpoint(0), keys[0].Private, pubs)
	b := NewSigned(net.Endpoint(1), keys[1].Private, pubs)
	c := NewSigned(net.Endpoint(2), keys[2].Private, pubs)

	if err := a.Send(1, []byte("for b only")); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, b, time.Second)
	// Adversary re-signs nothing; it just forwards the authenticated payload
	// via a raw endpoint pretending to be node 0.
	raw := net.Endpoint(3)
	_ = raw
	// Rebuild the signed frame: we don't have it (b strips it), so simulate
	// the replay by signing for route 0->1 and delivering to 2 through the
	// raw network. The Signed layer at 2 must reject it.
	sg := sig.SignBatch(keys[0].Private, sigDomain, routeBytes(0, 1), env.Payload)
	frame := append(append([]byte{}, sg...), env.Payload...)
	if err := net.Endpoint(0).Send(2, frame); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-c.Recv():
		t.Fatalf("replayed message accepted: %+v", got)
	case <-time.After(100 * time.Millisecond):
	}
	if c.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", c.Dropped())
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	a, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewTCPNode(1, "127.0.0.1:0", map[NodeID]string{0: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	a.peers = map[NodeID]string{1: b.Addr()}

	if err := b.Send(0, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	env := recvWithTimeout(t, a, 2*time.Second)
	if string(env.Payload) != "over tcp" || env.From != 1 {
		t.Fatalf("got %+v", env)
	}
	// And the reverse direction.
	if err := a.Send(1, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	env = recvWithTimeout(t, b, 2*time.Second)
	if string(env.Payload) != "reply" {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Send(9, []byte("x")); err == nil {
		t.Fatal("unknown peer must fail")
	}
}

func TestTCPManyMessages(t *testing.T) {
	a, err := NewTCPNode(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewTCPNode(1, "127.0.0.1:0", map[NodeID]string{0: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	const total = 500
	for i := 0; i < total; i++ {
		if err := b.Send(0, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		env := recvWithTimeout(t, a, 2*time.Second)
		if string(env.Payload) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("message %d: got %q", i, env.Payload)
		}
	}
}

func BenchmarkMemnetSendRecv(b *testing.B) {
	net := NewMemnet(LinkProfile{})
	defer func() { _ = net.Close() }()
	src := net.Endpoint(0)
	dst := net.Endpoint(1)
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(1, payload); err != nil {
			b.Fatal(err)
		}
		<-dst.Recv()
	}
}
