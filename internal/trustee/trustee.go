// Package trustee implements the trustees of §III-H: the Nt share-holding
// parties who, after the election, read the agreed vote set from the
// Bulletin Board (by majority), validate it, and jointly produce — without
// ever reconstructing any secret locally —
//
//   - the openings of every audit row (unused ballot parts and both parts
//     of unvoted ballots),
//   - the final moves of the zero-knowledge proofs for every used part
//     (under the voter-coin challenge), and
//   - their share T_ℓ of the opening of the homomorphic tally.
//
// Any ht honest trustees suffice; fewer than ht shares reveal nothing.
package trustee

import (
	"errors"
	"fmt"
	"math/big"

	"ddemos/internal/bb"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/ea"
	"ddemos/internal/sig"
)

// Byzantine selects trustee fault injection for tests.
type Byzantine int

// Trustee behaviours.
const (
	// Honest follows the protocol.
	Honest Byzantine = iota
	// GarbageShares posts random-looking shares under a valid signature
	// (the attack BB subset search must reject).
	GarbageShares
)

// Trustee is one trustee.
type Trustee struct {
	init *ea.TrusteeInit
	byz  Byzantine
}

// New builds a trustee from its initialization data.
func New(init *ea.TrusteeInit) (*Trustee, error) {
	if init == nil {
		return nil, errors.New("trustee: missing init data")
	}
	return &Trustee{init: init}, nil
}

// SetByzantine enables fault injection (tests only).
func (t *Trustee) SetByzantine(b Byzantine) { t.byz = b }

// Index returns the trustee's 0-based index.
func (t *Trustee) Index() int { return t.init.Index }

// ComputePost reads the election outcome from the BB (majority) and
// produces this trustee's post.
func (t *Trustee) ComputePost(reader *bb.Reader) (*bb.TrusteePost, error) {
	cast, err := reader.Cast()
	if err != nil {
		return nil, fmt.Errorf("trustee %d: reading cast data: %w", t.init.Index, err)
	}
	return t.post(cast)
}

// post derives the trustee's contribution from the published cast data.
func (t *Trustee) post(cast *bb.CastData) (*bb.TrusteePost, error) {
	man := &t.init.Manifest
	m := len(man.Options)
	master := zkp.MasterChallenge(man.ElectionID, cast.Coins)

	// Validate the vote set the way §III-H prescribes: a ballot with both
	// parts marked voted, or with more than MaxSelections codes on a part,
	// is invalid and treated as unvoted (both parts opened, no tally
	// contribution).
	marks := make(map[uint64][]bb.CastMark, len(cast.Marks))
	for _, mk := range cast.Marks {
		marks[mk.Serial] = append(marks[mk.Serial], mk)
	}
	usedPartOf := make(map[uint64]int, len(marks))
	for serial, ms := range marks {
		part := int(ms[0].Part)
		valid := len(ms) <= man.MaxSelections
		for _, mk := range ms {
			if int(mk.Part) != part {
				valid = false // both parts used: discard ballot
			}
		}
		if valid {
			usedPartOf[serial] = part
		}
	}

	post := &bb.TrusteePost{
		Trustee:    t.init.Index,
		ShareIndex: uint32(t.init.Index) + 1, //nolint:gosec // small
		TallyMs:    zeroScalars(m),
		TallyRs:    zeroScalars(m),
	}

	for bi := range t.init.Ballots {
		tb := &t.init.Ballots[bi]
		usedPart, voted := usedPartOf[tb.Serial]
		for part := 0; part < 2; part++ {
			rows := tb.Parts[part]
			if voted && part == usedPart {
				// Used part: finalize proofs for every row.
				for row := range rows {
					tr := &rows[row]
					bits := make([]zkp.BitFinal, m)
					for col := 0; col < m; col++ {
						c := zkp.DeriveChallenge(master, tb.Serial, uint8(part), row, col) //nolint:gosec // part<2
						bits[col] = tr.BitCoeffs[col].Finalize(c)
					}
					cSum := zkp.DeriveChallenge(master, tb.Serial, uint8(part), row, zkp.SumProofCol) //nolint:gosec // part<2
					post.Proofs = append(post.Proofs, bb.ProofFinalShare{
						Serial: tb.Serial, Part: uint8(part), Row: row, //nolint:gosec // part<2
						Bits: bits, Sum: tr.SumCoeffs.Finalize(cSum),
					})
				}
				// Tally share: add the cast rows' opening shares (additive
				// homomorphism of the secret sharing, §III-B).
				for _, mk := range marks[tb.Serial] {
					tr := &rows[mk.Row]
					for col := 0; col < m; col++ {
						post.TallyMs[col] = group.AddScalar(post.TallyMs[col], tr.MShares[col])
						post.TallyRs[col] = group.AddScalar(post.TallyRs[col], tr.RShares[col])
					}
				}
				continue
			}
			// Audit part: disclose opening shares.
			for row := range rows {
				tr := &rows[row]
				post.Openings = append(post.Openings, bb.OpeningShare{
					Serial: tb.Serial, Part: uint8(part), Row: row, //nolint:gosec // part<2
					Ms: cloneScalars(tr.MShares), Rs: cloneScalars(tr.RShares),
				})
			}
		}
	}

	if t.byz == GarbageShares {
		for i := range post.TallyMs {
			post.TallyMs[i] = group.AddScalar(post.TallyMs[i], big.NewInt(1337))
		}
		if len(post.Openings) > 0 {
			post.Openings[0].Ms[0] = group.AddScalar(post.Openings[0].Ms[0], big.NewInt(7))
		}
	}

	hash := bb.HashPost(man.ElectionID, post)
	post.Sig = sig.Sign(t.init.Private, "ddemos/v1/trustee-post", hash[:])
	return post, nil
}

// PublishTo computes the post once and submits it to every BB node.
func (t *Trustee) PublishTo(reader *bb.Reader, nodes []*bb.Node) error {
	post, err := t.ComputePost(reader)
	if err != nil {
		return err
	}
	var firstErr error
	for _, n := range nodes {
		if err := n.SubmitTrusteePost(post); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trustee %d: submitting post: %w", t.init.Index, err)
		}
	}
	return firstErr
}

func zeroScalars(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}

func cloneScalars(in []*big.Int) []*big.Int {
	out := make([]*big.Int, len(in))
	for i, v := range in {
		out[i] = new(big.Int).Set(v)
	}
	return out
}
