// Package trustee implements the trustees of §III-H: the Nt share-holding
// parties who, after the election, read the agreed vote set from the
// Bulletin Board (by majority), validate it, and jointly produce — without
// ever reconstructing any secret locally —
//
//   - the openings of every audit row (unused ballot parts and both parts
//     of unvoted ballots),
//   - the final moves of the zero-knowledge proofs for every used part
//     (under the voter-coin challenge), and
//   - their share T_ℓ of the opening of the homomorphic tally.
//
// Any ht honest trustees suffice; fewer than ht shares reveal nothing.
package trustee

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"ddemos/internal/bb"
	"ddemos/internal/crypto/group"
	"ddemos/internal/crypto/zkp"
	"ddemos/internal/ea"
	"ddemos/internal/parallel"
	"ddemos/internal/sig"
)

// Byzantine selects trustee fault injection for tests.
type Byzantine int

// Trustee behaviours.
const (
	// Honest follows the protocol.
	Honest Byzantine = iota
	// GarbageShares posts random-looking shares under a valid signature
	// (the attack the BB blame protocol must pin on this trustee).
	GarbageShares
	// Equivocate posts the honest shares to even-indexed BB nodes and a
	// differently-signed corrupted post to odd-indexed ones — the strongest
	// per-trustee attack, since no single node sees an invalid signature.
	Equivocate
)

// Trustee is one trustee.
type Trustee struct {
	init *ea.TrusteeInit
	byz  Byzantine

	// Workers bounds the parallelism of post computation
	// (0 = GOMAXPROCS).
	Workers int
}

// New builds a trustee from its initialization data.
func New(init *ea.TrusteeInit) (*Trustee, error) {
	if init == nil {
		return nil, errors.New("trustee: missing init data")
	}
	return &Trustee{init: init}, nil
}

// SetByzantine enables fault injection (tests only).
func (t *Trustee) SetByzantine(b Byzantine) { t.byz = b }

// Index returns the trustee's 0-based index.
func (t *Trustee) Index() int { return t.init.Index }

// ComputePost reads the election outcome from the BB (majority) and
// produces this trustee's post.
func (t *Trustee) ComputePost(reader *bb.Reader) (*bb.TrusteePost, error) {
	cast, err := reader.Cast()
	if err != nil {
		return nil, fmt.Errorf("trustee %d: reading cast data: %w", t.init.Index, err)
	}
	return t.post(cast)
}

// post derives the trustee's contribution from the published cast data.
// Ballots are independent, so the per-ballot work runs in parallel; the
// merge happens in ballot order, keeping the post byte-identical to a
// sequential computation (TestTrusteePostIsDeterministic relies on this).
func (t *Trustee) post(cast *bb.CastData) (*bb.TrusteePost, error) {
	man := &t.init.Manifest
	m := len(man.Options)
	master := zkp.MasterChallenge(man.ElectionID, cast.Coins)

	// Validate the vote set the way §III-H prescribes, sharing the exact
	// helper BB nodes use so trustees and BB can never diverge on which
	// rows enter the tally.
	used := bb.UsedParts(man.MaxSelections, cast.Marks)
	marks := make(map[uint64][]bb.CastMark, len(cast.Marks))
	for _, mk := range cast.Marks {
		marks[mk.Serial] = append(marks[mk.Serial], mk)
	}

	type ballotOut struct {
		openings []bb.OpeningShare
		proofs   []bb.ProofFinalShare
		tallyMs  []*big.Int
		tallyRs  []*big.Int
	}
	outs := make([]ballotOut, len(t.init.Ballots))
	parallel.Run(t.Workers, len(t.init.Ballots), func(bi int) {
		out := &outs[bi]
		tb := &t.init.Ballots[bi]
		usedPart, voted := used[tb.Serial]
		for part := 0; part < 2; part++ {
			rows := tb.Parts[part]
			if voted && uint8(part) == usedPart { //nolint:gosec // part<2
				// Used part: finalize proofs for every row.
				for row := range rows {
					tr := &rows[row]
					bits := make([]zkp.BitFinal, m)
					for col := 0; col < m; col++ {
						c := zkp.DeriveChallenge(master, tb.Serial, uint8(part), row, col) //nolint:gosec // part<2
						bits[col] = tr.BitCoeffs[col].Finalize(c)
					}
					cSum := zkp.DeriveChallenge(master, tb.Serial, uint8(part), row, zkp.SumProofCol) //nolint:gosec // part<2
					out.proofs = append(out.proofs, bb.ProofFinalShare{
						Serial: tb.Serial, Part: uint8(part), Row: row, //nolint:gosec // part<2
						Bits: bits, Sum: tr.SumCoeffs.Finalize(cSum),
					})
				}
				// Tally share: add the cast rows' opening shares (additive
				// homomorphism of the secret sharing, §III-B).
				for _, mk := range marks[tb.Serial] {
					tr := &rows[mk.Row]
					if out.tallyMs == nil {
						out.tallyMs, out.tallyRs = zeroScalars(m), zeroScalars(m)
					}
					for col := 0; col < m; col++ {
						out.tallyMs[col] = group.AddScalar(out.tallyMs[col], tr.MShares[col])
						out.tallyRs[col] = group.AddScalar(out.tallyRs[col], tr.RShares[col])
					}
				}
				continue
			}
			// Audit part: disclose opening shares.
			for row := range rows {
				tr := &rows[row]
				out.openings = append(out.openings, bb.OpeningShare{
					Serial: tb.Serial, Part: uint8(part), Row: row, //nolint:gosec // part<2
					Ms: cloneScalars(tr.MShares), Rs: cloneScalars(tr.RShares),
				})
			}
		}
	})

	post := &bb.TrusteePost{
		Trustee:    t.init.Index,
		ShareIndex: uint32(t.init.Index) + 1, //nolint:gosec // small
		TallyMs:    zeroScalars(m),
		TallyRs:    zeroScalars(m),
	}
	for bi := range outs {
		out := &outs[bi]
		post.Openings = append(post.Openings, out.openings...)
		post.Proofs = append(post.Proofs, out.proofs...)
		if out.tallyMs != nil {
			for col := 0; col < m; col++ {
				post.TallyMs[col] = group.AddScalar(post.TallyMs[col], out.tallyMs[col])
				post.TallyRs[col] = group.AddScalar(post.TallyRs[col], out.tallyRs[col])
			}
		}
	}

	if t.byz == GarbageShares {
		// The perturbation must be trustee-dependent, as genuinely garbage
		// shares would be: with a shared constant, two garbage trustees'
		// deviations can cancel under Lagrange coefficients (e.g. λ₁=+2,
		// λ₃=−2 in the subset {1,3,4}), making the pair indistinguishable
		// from honest — a collusion the blame protocol explicitly does not
		// defend against (see DESIGN.md).
		delta := garbageDelta(t.init.Index)
		for i := range post.TallyMs {
			post.TallyMs[i] = group.AddScalar(post.TallyMs[i], delta)
		}
		if len(post.Openings) > 0 {
			post.Openings[0].Ms[0] = group.AddScalar(post.Openings[0].Ms[0], delta)
		}
	}

	t.signPost(post)
	return post, nil
}

// garbageDelta derives a pseudorandom per-trustee perturbation scalar.
func garbageDelta(index int) *big.Int {
	h := sha256.Sum256([]byte(fmt.Sprintf("ddemos/test/garbage-shares/%d", index)))
	return new(big.Int).Mod(new(big.Int).SetBytes(h[:]), group.Order())
}

func (t *Trustee) signPost(post *bb.TrusteePost) {
	hash := bb.HashPost(t.init.Manifest.ElectionID, post)
	post.Sig = sig.Sign(t.init.Private, "ddemos/v1/trustee-post", hash[:])
}

// equivocatePost builds the corrupted twin an Equivocate trustee sends to
// odd-indexed BB nodes: same shape (so it passes ingress validation),
// perturbed shares, fresh valid signature.
func (t *Trustee) equivocatePost(honest *bb.TrusteePost) *bb.TrusteePost {
	alt := *honest
	alt.TallyMs = cloneScalars(honest.TallyMs)
	alt.TallyMs[0] = group.AddScalar(alt.TallyMs[0], big.NewInt(13))
	if len(honest.Openings) > 0 {
		alt.Openings = append([]bb.OpeningShare(nil), honest.Openings...)
		o := alt.Openings[0]
		o.Ms = cloneScalars(o.Ms)
		o.Ms[0] = group.AddScalar(o.Ms[0], big.NewInt(13))
		alt.Openings[0] = o
	}
	t.signPost(&alt)
	return &alt
}

// PublishTo computes the post once and submits it to every BB node.
func (t *Trustee) PublishTo(reader *bb.Reader, nodes []*bb.Node) error {
	post, err := t.ComputePost(reader)
	if err != nil {
		return err
	}
	var alt *bb.TrusteePost
	if t.byz == Equivocate {
		alt = t.equivocatePost(post)
	}
	var firstErr error
	for i, n := range nodes {
		p := post
		if alt != nil && i%2 == 1 {
			p = alt
		}
		if err := n.SubmitTrusteePost(p); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trustee %d: submitting post: %w", t.init.Index, err)
		}
	}
	return firstErr
}

func zeroScalars(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}

func cloneScalars(in []*big.Int) []*big.Int {
	out := make([]*big.Int, len(in))
	for i, v := range in {
		out[i] = new(big.Int).Set(v)
	}
	return out
}
