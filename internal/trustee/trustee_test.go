package trustee_test

import (
	"context"
	"testing"
	"time"

	"ddemos/internal/bb"
	"ddemos/internal/core"
	"ddemos/internal/ea"
	"ddemos/internal/trustee"
	"ddemos/internal/voter"
)

// setup runs an election through the push-to-BB phase, leaving the trustee
// phase to the tests.
func setup(t *testing.T, votes []int) (*core.Cluster, *ea.ElectionData) {
	t.Helper()
	start := time.Date(2026, 6, 10, 8, 0, 0, 0, time.UTC)
	data, err := ea.Setup(ea.Params{
		ElectionID:  "trustee-test",
		Options:     []string{"a", "b", "c"},
		NumBallots:  len(votes),
		NumVC:       4,
		NumBB:       3,
		NumTrustees: 5, // ht defaults to 3
		VotingStart: start,
		VotingEnd:   start.Add(time.Hour),
		Seed:        []byte("trustee-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := core.NewCluster(data, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	services := make([]voter.Service, len(cluster.VCs))
	for i, n := range cluster.VCs {
		services[i] = n
	}
	for i, opt := range votes {
		if opt < 0 {
			continue
		}
		cl := &voter.Client{Ballot: data.Ballots[i], Services: services, Patience: 10 * time.Second}
		if _, err := cl.Cast(ctx, opt); err != nil {
			t.Fatal(err)
		}
	}
	sets, err := cluster.RunVoteSetConsensus(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.PushToBB(sets); err != nil {
		t.Fatal(err)
	}
	return cluster, data
}

// waitResults blocks until every honest BB node publishes its result;
// combination runs in a background worker, so PublishTo returning does not
// mean the results exist yet.
func waitResults(t *testing.T, cluster *core.Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, node := range cluster.BBs {
		if node.Lying {
			continue
		}
		if _, err := node.WaitResult(ctx); err != nil {
			t.Fatalf("bb %d did not publish a result: %v", i, err)
		}
	}
}

func TestThresholdOfTrusteesSuffices(t *testing.T) {
	// Only ht = 3 of 5 trustees participate: the result must still publish.
	cluster, data := setup(t, []int{0, 2, 2, -1})
	for _, i := range []int{4, 0, 2} {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.PublishTo(cluster.Reader, cluster.BBs); err != nil {
			t.Fatal(err)
		}
	}
	waitResults(t, cluster)
	res, err := cluster.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 1 || res.Counts[2] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

func TestBelowThresholdRevealsNothing(t *testing.T) {
	// ht-1 posts: no result may appear (and no partial tally leaks).
	cluster, data := setup(t, []int{1, 1})
	for _, i := range []int{0, 1} {
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.PublishTo(cluster.Reader, cluster.BBs); err != nil {
			t.Fatal(err)
		}
	}
	for i, node := range cluster.BBs {
		if _, err := node.Result(); err == nil {
			t.Fatalf("bb %d published a result with ht-1 trustee posts", i)
		}
	}
}

func TestTrusteePostIsDeterministic(t *testing.T) {
	// The same trustee computing twice must produce identical posts (no
	// hidden randomness: everything derives from init shares + BB data).
	cluster, data := setup(t, []int{0, -1})
	tr, err := trustee.New(data.Trustees[0])
	if err != nil {
		t.Fatal(err)
	}
	p1, err := tr.ComputePost(cluster.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tr.ComputePost(cluster.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if bb.HashPost("trustee-test", p1) != bb.HashPost("trustee-test", p2) {
		t.Fatal("trustee post not deterministic")
	}
}

func TestGarbageTrusteeIsExcluded(t *testing.T) {
	cluster, data := setup(t, []int{1, 0, 1})
	for i := 0; i < 4; i++ { // 4 posts: 1 garbage + 3 honest >= ht
		tr, err := trustee.New(data.Trustees[i])
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			tr.SetByzantine(trustee.GarbageShares)
		}
		if err := tr.PublishTo(cluster.Reader, cluster.BBs); err != nil {
			t.Fatal(err)
		}
	}
	waitResults(t, cluster)
	res, err := cluster.Reader.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 1 || res.Counts[1] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
	for _, idx := range res.Trustees {
		if idx == 1 {
			t.Fatal("garbage trustee's shares used in the published result")
		}
	}
}
