package vc

import (
	"context"
	"fmt"
	"sync"

	"ddemos/internal/acs"
	"ddemos/internal/clock"
	"ddemos/internal/consensus"
	"ddemos/internal/wire"
)

// ConsensusEngine decides, per ballot, whether it belongs in the agreed vote
// set. It is the replaceable core of VoteSetConsensus: the surrounding
// protocol — ANNOUNCE dispersal, the restart-recovery channel (dup-ANNOUNCE
// echo, VSC-FINAL adoption), RECOVER for missing codes, and the journaled
// result — is engine-agnostic and lives in vsc.go.
//
// Lifecycle: the engine is constructed when consensus is installed (so it
// can absorb traffic from peers that raced ahead), Start is called once the
// announce quorum is in, and Results blocks for the decision vector: one
// 0/1 byte per ballot, index serial-1. All honest nodes' engines must
// return identical vectors. Handle receives every engine-kind frame routed
// to the node; engines ignore kinds they do not speak.
type ConsensusEngine interface {
	// Start begins agreement. proposal is this node's certified vote set as
	// it would announce it; inputs is the per-ballot 0/1 vector derived from
	// it. Engines use whichever representation their protocol binds to.
	Start(proposal []wire.AnnounceEntry, inputs []byte) error
	// Handle processes one inbound engine frame from peer `from`.
	Handle(from uint16, msg wire.Message)
	// Results blocks until every ballot is decided.
	Results(ctx context.Context) ([]byte, error)
}

// EngineConfig is everything a consensus engine may depend on, injected so
// engines stay free of node internals (and of this package: internal/acs
// satisfies ConsensusEngine without importing vc).
type EngineConfig struct {
	N, F    int    // cluster size and fault bound
	Self    uint16 // this node's index
	Ballots uint32 // ballot pool size

	Coin  consensus.Coin // shared deterministic coin
	Clock clock.Clock    // the node's (possibly virtual) timer domain

	// Send multicasts an encoded frame to the other N-1 nodes.
	Send func(frame []byte)
	// Validate is a pure check that an announce entry carries a well-formed
	// uniqueness certificate — identical at every honest node.
	Validate func(entry *wire.AnnounceEntry) bool
	// Adopt installs a certified code into the node and its journal.
	Adopt func(entry *wire.AnnounceEntry) bool
}

// EngineFactory builds a ConsensusEngine for one election run.
type EngineFactory func(cfg EngineConfig) (ConsensusEngine, error)

// ParseEngine resolves a -consensus flag value to a factory. The empty
// string selects the paper's interlocked protocol.
func ParseEngine(name string) (EngineFactory, error) {
	switch name {
	case "", "interlocked":
		return InterlockedEngine, nil
	case "acs":
		return ACSEngine, nil
	default:
		return nil, fmt.Errorf("vc: unknown consensus engine %q (want interlocked or acs)", name)
	}
}

// InterlockedEngine is the paper's §III-E protocol: one binary-consensus
// instance per ballot, batched (internal/consensus), seeded by the ANNOUNCE
// dispersal the engine-agnostic layer already ran.
func InterlockedEngine(cfg EngineConfig) (ConsensusEngine, error) {
	batch, err := consensus.NewBatch(cfg.N, cfg.F, cfg.Self, cfg.Ballots, cfg.Coin, func(m *wire.Consensus) {
		cfg.Send(wire.Encode(m))
	})
	if err != nil {
		return nil, err
	}
	return &interlockedEngine{batch: batch}, nil
}

// ACSEngine is the BKR Agreement-on-Common-Subset engine (internal/acs):
// reliable broadcast of each node's candidate set plus one binary-agreement
// instance per broadcaster.
func ACSEngine(cfg EngineConfig) (ConsensusEngine, error) {
	return acs.New(acs.Config{
		N: cfg.N, F: cfg.F, Self: cfg.Self, Ballots: cfg.Ballots,
		Coin: cfg.Coin, Clock: cfg.Clock,
		Send: cfg.Send, Validate: cfg.Validate, Adopt: cfg.Adopt,
	})
}

// interlockedEngine adapts consensus.Batch to the engine interface. The
// batch drops traffic that arrives before Start, so frames are buffered
// until then (peers that reached their announce quorum first start early).
type interlockedEngine struct {
	batch *consensus.Batch

	mu           sync.Mutex
	started      bool
	preStart     []*wire.Consensus
	preStartFrom []uint16
}

// Start implements ConsensusEngine: the proposal is unused — the batch
// binds to the per-ballot inputs vector.
func (e *interlockedEngine) Start(_ []wire.AnnounceEntry, inputs []byte) error {
	if err := e.batch.Start(inputs); err != nil {
		return err
	}
	e.mu.Lock()
	msgs := e.preStart
	froms := e.preStartFrom
	e.preStart, e.preStartFrom = nil, nil
	e.started = true
	e.mu.Unlock()
	for i, m := range msgs {
		e.batch.Handle(froms[i], m)
	}
	return nil
}

// Handle implements ConsensusEngine.
func (e *interlockedEngine) Handle(from uint16, msg wire.Message) {
	m, ok := msg.(*wire.Consensus)
	if !ok {
		return
	}
	e.mu.Lock()
	if !e.started {
		if len(e.preStart) < maxVscBuffer {
			e.preStart = append(e.preStart, m)
			e.preStartFrom = append(e.preStartFrom, from)
		}
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	e.batch.Handle(from, m)
}

// Results implements ConsensusEngine.
func (e *interlockedEngine) Results(ctx context.Context) ([]byte, error) {
	return e.batch.Results(ctx)
}
