package vc

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ddemos/internal/ballot"
	"ddemos/internal/sim"
	"ddemos/internal/transport"
)

// sweepEngine rotates the vote-set-consensus engine across sweep seeds.
// It keys on seed/2 so the rotation is decorrelated from sweepStack's
// seed%2 batched/raw split — over any four consecutive seeds every
// engine×stack combination runs.
func sweepEngine(seed uint64) (string, EngineFactory) {
	if (seed/2)%2 == 0 {
		return "interlocked", InterlockedEngine
	}
	return "acs", ACSEngine
}

// runConsensusAll drives VoteSetConsensus on every non-skipped node with
// the starvation-retry loop the consensus scenarios share: a first attempt
// can starve virtually on a loaded -race runner (or die with a restart),
// and every retry re-announces, so attempts converge once a quorum
// finished. Returns each node's agreed set (nil at skipped indexes).
func runConsensusAll(t *testing.T, c *cluster, seed uint64, skip map[int]bool, numVC int) [][]VotedBallot {
	t.Helper()
	results := make([][]VotedBallot, numVC)
	errs := make([]error, numVC)
	var wg sync.WaitGroup
	for i := 0; i < numVC; i++ {
		if skip[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := c.drv.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			results[i], errs[i] = c.node(i).VoteSetConsensus(ctx)
		}(i)
	}
	wg.Wait()
	for i := 0; i < numVC; i++ {
		if skip[i] || errs[i] == nil {
			continue
		}
		deadline := time.Now().Add(120 * time.Second)
		for {
			ctx, cancel := c.drv.WithTimeout(context.Background(), 5*time.Second)
			set, err := c.node(i).VoteSetConsensus(ctx)
			cancel()
			if err == nil {
				results[i] = set
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: node %d never completed consensus: %v", seed, i, err)
			}
			if errors.Is(err, ErrStopped) {
				time.Sleep(2 * time.Millisecond) // restart not yet fired
			}
		}
	}
	return results
}

// runEngineScenario is one seed of the engine-rotation sweep: a seeded
// crash/partition/WAN/Byzantine fault schedule runs over the collection
// phase while conflicting codes race for every ballot (at-most-one-UCERT
// probe live, receipts checked), then — schedule complete, faults healed —
// every honest node runs vote-set consensus on the engine the seed selects.
// The links keep jitter, duplication and the WAN profile but not drops:
// both engines assume the paper's reliable inter-VC channels during the
// consensus phase, and drop-tolerance of the collection phase is the
// threshold sweep's job. Every honest node must return a byte-identical
// vote set that contains every ballot a receipt was issued for.
func runEngineScenario(t *testing.T, seed uint64, stats *sweepStats) {
	const (
		numVC      = 4
		numBallots = 3
	)
	engName, engine := sweepEngine(seed)
	// Rotate the Byzantine seat's behaviour: mostly Equivocator (the
	// collection-phase attack the probes watch), every third seed a
	// ConsensusLiar — the consensus-phase attack, which for the ACS engine
	// means broadcasting an empty candidate set and for the interlocked
	// engine means inverted inputs.
	byzMode := Equivocator
	if seed%3 == 0 {
		byzMode = ConsensusLiar
	}
	scen := sim.RandomScenario(seed, sim.ScenarioConfig{
		NumNodes:  numVC,
		Byzantine: 1,
		Duration:  10 * time.Millisecond,
	})
	byz := make(map[int]Byzantine, len(scen.Byzantine))
	skip := make(map[int]bool, len(scen.Byzantine))
	for _, b := range scen.Byzantine {
		byz[b] = byzMode
		skip[b] = true
	}
	lp := scenarioLink(scen)
	lp.DropRate = 0
	c := newSimClusterJE(t, seed, byz, numBallots, numVC, lp, sweepStack(seed),
		nil, JournalOptions{}, engine)
	scen.Install(c.drv, c)
	violations := scen.InstallProbes(c.drv, []sim.Probe{{
		Name:  "at-most-one-ucert",
		Every: 2 * time.Millisecond,
		Check: func() error { return c.checkCertAgreement(numBallots) },
	}})
	outcomes := driveConflictingSubmissions(t, c, scen, seed, 0xE16E, numBallots, numVC)

	// Wait until the whole fault schedule has executed (wall-clock poll,
	// virtual progress): consensus below must start on a healed network.
	deadline := time.Now().Add(30 * time.Second)
	for len(c.drv.Trace()) < len(scen.Faults) {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: fault schedule never completed", seed)
		}
		time.Sleep(time.Millisecond)
	}

	winners := tallyOutcomes(t, c, seed, outcomes, violations, stats, numBallots)

	results := runConsensusAll(t, c, seed, skip, numVC)
	var want [32]byte
	first := -1
	for i := 0; i < numVC; i++ {
		if skip[i] {
			continue
		}
		h := CanonicalVoteSetHash(c.data.Manifest.ElectionID, results[i])
		if first < 0 {
			first, want = i, h
			continue
		}
		if h != want {
			t.Errorf("seed %d (%s): node %d returned a different vote set than node %d",
				seed, engName, i, first)
		}
	}
	// Receipt inclusion: a receipt proves a UCERT existed at the submission
	// node, which announces it, so every honest node inputs/broadcasts it —
	// both engines must land it in the agreed set.
	voted := make(map[uint64]bool, numBallots)
	for _, vb := range results[first] {
		voted[vb.Serial] = true
	}
	for serial := range winners {
		if !voted[serial] {
			t.Errorf("seed %d (%s): ballot %d has a receipt but is missing from the agreed set",
				seed, engName, serial)
		}
	}
}

// TestScenarioSweepConsensusEngines sweeps ≥100 seeded fault schedules with
// the vote-set-consensus engine rotating across seeds (see sweepEngine):
// half the seeds agree via the paper's interlocked per-ballot protocol,
// half via the BKR/ACS engine, under the same crash/partition/WAN/Byzantine
// mixes, probes and receipt checks as the threshold sweep. Replay one seed
// with -run 'TestScenarioSweepConsensusEngines/seed=N'; CI adds a rotating
// seed via DDEMOS_ACS_SEED.
func TestScenarioSweepConsensusEngines(t *testing.T) {
	numSeeds := 100
	if testing.Short() {
		numSeeds = 20
	}
	seeds := make([]uint64, 0, numSeeds+1)
	for s := uint64(1); s <= uint64(numSeeds); s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("DDEMOS_ACS_SEED"); v != "" {
		extra, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DDEMOS_ACS_SEED = %q: %v", v, err)
		}
		t.Logf("rotating engine-sweep seed from environment: %d", extra)
		seeds = append(seeds, extra)
	}
	stats := &sweepStats{}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEngineScenario(t, seed, stats)
		})
	}
	t.Logf("engine sweep: %d scenarios, %d receipts issued, %d submissions starved",
		stats.scenarios, stats.receipts, stats.starved)
	if stats.receipts < stats.scenarios/2 {
		t.Fatalf("only %d receipts across %d scenarios: liveness collapsed", stats.receipts, stats.scenarios)
	}
}

// TestConsensusEngineDifferential runs one seeded election twice — same
// election data, same sim seed, same vote schedule — once on the
// interlocked engine and once on the ACS engine, and demands the two
// protocols are observationally equivalent: every node of both runs agrees
// on byte-identical vote sets (canonical hash over serial‖code), and on
// both engines a full stop/recover cycle after consensus reproduces each
// node's StateHash exactly — the ACS result must journal and recover
// through the same engine-agnostic path as the interlocked one. (The raw
// hashes are not compared *across* engines: a UCERT pins any n−f of the
// endorsement signatures, so two runs legally differ in which subset each
// cert carries even when every decision matches.)
func TestConsensusEngineDifferential(t *testing.T) {
	const (
		seed       = 3
		numVC      = 4
		numBallots = 6
	)
	type outcome struct {
		setHash    [32]byte
		setLen     int
		electionID string
	}
	run := func(t *testing.T, engine EngineFactory) outcome {
		rng := rand.New(rand.NewPCG(seed, 0xD1FF)) //nolint:gosec // test schedule only
		lp := transport.LinkProfile{Latency: 200 * time.Microsecond, Jitter: time.Millisecond, DupRate: 0.10}
		c := newSimClusterJE(t, seed, nil, numBallots, numVC, lp, sweepStack(seed),
			journalDirs(t, numVC), sweepJournalOptions(seed), engine)
		for b := 0; b < numBallots; b++ {
			serial := uint64(b + 1)
			at := rng.IntN(numVC)
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				if _, err = c.simVote(serial, ballot.PartA, b%2, at); err == nil {
					break
				}
			}
			if err != nil {
				t.Fatalf("vote %d: %v", serial, err)
			}
		}
		results := runConsensusAll(t, c, seed, nil, numVC)
		h := CanonicalVoteSetHash(c.data.Manifest.ElectionID, results[0])
		for i := 1; i < numVC; i++ {
			if CanonicalVoteSetHash(c.data.Manifest.ElectionID, results[i]) != h {
				t.Fatalf("node %d disagrees with node 0 within one engine", i)
			}
		}
		// Post-recovery state: stop every node and relaunch it from its
		// journal — the recovered incarnation must hash identically to the
		// one that died, consensus result included.
		for i := 0; i < numVC; i++ {
			pre := c.node(i).StateHash()
			c.StopNode(i)
			c.RestartNode(i)
			if got := c.node(i).StateHash(); got != pre {
				t.Errorf("node %d: post-recovery state hash differs from pre-stop state", i)
			}
		}
		return outcome{h, len(results[0]), c.data.Manifest.ElectionID}
	}

	var interlocked, acs outcome
	t.Run("interlocked", func(t *testing.T) { interlocked = run(t, InterlockedEngine) })
	t.Run("acs", func(t *testing.T) { acs = run(t, ACSEngine) })
	if interlocked.setLen != numBallots {
		t.Errorf("interlocked engine agreed on %d ballots, want %d", interlocked.setLen, numBallots)
	}
	if interlocked.setHash != acs.setHash {
		t.Errorf("engines disagree: interlocked and ACS vote sets are not byte-identical")
	}
}
